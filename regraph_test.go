package regraph_test

import (
	"testing"

	"regraph"
)

// TestFacadeEndToEnd exercises the public API exactly as the README's
// quickstart does.
func TestFacadeEndToEnd(t *testing.T) {
	g := regraph.Essembly()
	mx := regraph.NewMatrix(g)

	// RQ: Example 2.2.
	q1 := regraph.RQ{
		From: regraph.MustPredicate("job = biologist, sp = cloning"),
		To:   regraph.MustPredicate("job = doctor"),
		Expr: regraph.MustRegex("fa{2} fn"),
	}
	pairs := q1.EvalMatrix(g, mx)
	if len(pairs) != 4 {
		t.Fatalf("Q1 returned %d pairs, want 4", len(pairs))
	}

	// PQ: the (C,B)+(B,D) fragment of Example 2.3.
	q2 := regraph.NewPQ()
	c := q2.AddNode("C", regraph.MustPredicate("job = biologist"))
	b := q2.AddNode("B", regraph.MustPredicate("job = doctor"))
	d := q2.AddNode("D", regraph.MustPredicate("uid = Alice001"))
	q2.AddEdge(c, b, regraph.MustRegex("fn"))
	q2.AddEdge(b, d, regraph.MustRegex("fn"))
	res := regraph.JoinMatch(g, q2, regraph.EvalOptions{Matrix: mx})
	if res.Empty() {
		t.Fatal("pattern should match")
	}
	if got := regraph.SplitMatch(g, q2, regraph.EvalOptions{}); !got.Equal(res) {
		t.Error("SplitMatch disagrees with JoinMatch through the facade")
	}

	// Static analyses.
	if !regraph.PQEquivalent(q2, q2) {
		t.Error("query should be self-equivalent")
	}
	m := regraph.Minimize(q2)
	if !regraph.PQEquivalent(m, q2) {
		t.Error("minimized query should stay equivalent")
	}
	if !regraph.RQContains(q1, regraph.RQ{
		From: regraph.MustPredicate("job = biologist"),
		To:   regraph.Predicate{},
		Expr: regraph.MustRegex("fa{2} fn"),
	}) {
		t.Error("RQ with weaker predicates should contain q1")
	}
}

// TestFacadeExtensions exercises the future-work layer through the public
// API: incremental maintenance, general regexes (RQ and PQ), and the
// reachability filter.
func TestFacadeExtensions(t *testing.T) {
	g := regraph.Essembly()

	// Incremental maintenance.
	q := regraph.NewPQ()
	c := q.AddNode("C", regraph.MustPredicate("job = biologist"))
	b := q.AddNode("B", regraph.MustPredicate("job = doctor"))
	q.AddEdge(c, b, regraph.MustRegex("fn"))
	inc, err := regraph.NewIncremental(g, q)
	if err != nil {
		t.Fatal(err)
	}
	before := inc.Result().Size()
	c1, _ := g.NodeByName("C1")
	b1, _ := g.NodeByName("B1")
	inc.InsertEdge(c1, b1, "fn")
	if inc.Result().Size() != before+1 {
		t.Errorf("insertion should add one pair: %d -> %d", before, inc.Result().Size())
	}

	// General-regex RQ.
	frq := regraph.FullRQ{
		From: regraph.MustPredicate("job = doctor"),
		To:   regraph.MustPredicate("uid = Alice001"),
		Expr: regraph.MustFullRegex("(fa|fn)+"),
	}
	if pairs := frq.Eval(g); len(pairs) != 2 {
		t.Errorf("full-regex RQ found %d pairs, want 2 (B1, B2 -fn-> D1)", len(pairs))
	}

	// General-regex PQ.
	fpq := regraph.NewFullPQ()
	fb := fpq.AddNode("B", regraph.MustPredicate("job = doctor"))
	fd := fpq.AddNode("D", regraph.MustPredicate("uid = Alice001"))
	fpq.AddEdge(fb, fd, regraph.MustFullRegex("fn | fa fn"))
	if res := fpq.Eval(g); res.Empty() || len(res.MatchSet(fb)) != 2 {
		t.Errorf("full-regex PQ mat(B) = %v", res.MatchSet(fb))
	}

	// Reachability filter on the cache.
	g2 := regraph.Essembly() // unmutated copy
	ix := regraph.NewReachIndex(g2, 2)
	ca := regraph.NewCache(g2, 64)
	ca.SetFilter(ix)
	rq := regraph.RQ{
		From: regraph.MustPredicate("uid = Alice001"),
		To:   regraph.MustPredicate("job = doctor"),
		Expr: regraph.MustRegex("sn"),
	}
	if pairs := rq.EvalBiBFS(g2, ca); len(pairs) != 0 {
		t.Errorf("no sn path from Alice to a doctor; got %v", pairs)
	}
}

func TestFacadeGenerators(t *testing.T) {
	if g := regraph.SyntheticGraph(1, 50, 100, 2, []string{"x", "y"}); g.NumNodes() != 50 {
		t.Error("SyntheticGraph shape")
	}
	if g := regraph.YouTubeGraph(1, 0.02); g.NumNodes() != 167 {
		t.Errorf("YouTubeGraph scale: %d nodes", g.NumNodes())
	}
	if g := regraph.TerrorGraph(1); g.NumNodes() != 818 {
		t.Error("TerrorGraph shape")
	}
	g := regraph.NewGraph()
	a := g.AddNode("a", nil)
	b := g.AddNode("b", nil)
	g.AddEdge(a, b, "e")
	ca := regraph.NewCache(g, 16)
	q := regraph.RQ{Expr: regraph.MustRegex("e")}
	if got := q.EvalBiBFS(g, ca); len(got) != 1 {
		t.Errorf("cache-backed RQ = %v", got)
	}
}
