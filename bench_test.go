// Benchmarks regenerating every table and figure of the paper's
// evaluation (Section 6), one per figure, plus the ablation studies called
// out in DESIGN.md. Each benchmark iteration runs the full parameter sweep
// of its figure and reports the paper-style series through -v output of
// cmd/experiments; here the aggregate wall time is what testing.B records.
//
// Dataset scale is controlled by REGRAPH_BENCH_SCALE (default 0.25 of the
// paper's sizes — every curve's shape is preserved; see EXPERIMENTS.md)
// and the per-point query count by REGRAPH_BENCH_QUERIES.
package regraph_test

import (
	"sync"
	"testing"

	"regraph/internal/bench"
)

var (
	envOnce  sync.Once
	sharedEn *bench.Env
)

// benchEnv shares datasets and distance matrices across benchmarks, as
// cmd/experiments does (the paper likewise amortizes its M-Index across
// queries).
func benchEnv() *bench.Env {
	envOnce.Do(func() {
		sharedEn = bench.NewEnv(bench.DefaultConfig())
	})
	return sharedEn
}

func runDriver(b *testing.B, fn func(*bench.Env) *bench.Table) {
	b.Helper()
	env := benchEnv()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab := fn(env)
		if len(tab.Rows) == 0 {
			b.Fatal("driver produced no rows")
		}
	}
}

// Exp-1: effectiveness (Fig. 9).

func BenchmarkFig9aRealLifeQueries(b *testing.B)   { runDriver(b, bench.Fig9a) }
func BenchmarkFig9bFMeasure(b *testing.B)          { runDriver(b, bench.Fig9b) }
func BenchmarkFig9cEffectivenessTime(b *testing.B) { runDriver(b, bench.Fig9c) }

// Exp-2: minimization (Fig. 10a).

func BenchmarkFig10aMinimization(b *testing.B) { runDriver(b, bench.Fig10a) }

// Exp-3: RQ evaluation methods (Fig. 10b).

func BenchmarkFig10bRQ(b *testing.B) { runDriver(b, bench.Fig10b) }

// Exp-4: PQ efficiency on YouTube (Fig. 11).

func BenchmarkFig11aVaryVp(b *testing.B)    { runDriver(b, bench.Fig11a) }
func BenchmarkFig11bVaryEp(b *testing.B)    { runDriver(b, bench.Fig11b) }
func BenchmarkFig11cVaryPred(b *testing.B)  { runDriver(b, bench.Fig11c) }
func BenchmarkFig11dVaryBound(b *testing.B) { runDriver(b, bench.Fig11d) }

// Exp-4: PQ scalability on synthetic graphs (Fig. 12).

func BenchmarkFig12aVaryV(b *testing.B)    { runDriver(b, bench.Fig12a) }
func BenchmarkFig12bVaryE(b *testing.B)    { runDriver(b, bench.Fig12b) }
func BenchmarkFig12cVaryVp(b *testing.B)   { runDriver(b, bench.Fig12c) }
func BenchmarkFig12dVaryEp(b *testing.B)   { runDriver(b, bench.Fig12d) }
func BenchmarkFig12eVaryPred(b *testing.B) { runDriver(b, bench.Fig12e) }
func BenchmarkFig12fSubIso(b *testing.B)   { runDriver(b, bench.Fig12f) }

// Engine: batch RQ throughput, serial loop vs resident worker pool.

func BenchmarkEngineBatch(b *testing.B) { runDriver(b, bench.EngineBatch) }

// Engine: candidate scan vs inverted index + predicate memo (ISSUE 3).

func BenchmarkEngineBatchMemo(b *testing.B) { runDriver(b, bench.EngineMemo) }

// Streaming session vs RunBatch (ISSUE 4): wall times per configuration
// plus the retained-answer-bytes side metrics, which are forwarded
// through ReportMetric so BENCH_session.json records the memory story
// alongside ns/op.
func BenchmarkEngineSession(b *testing.B) {
	env := benchEnv()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab := bench.EngineSession(env)
		if len(tab.Rows) == 0 {
			b.Fatal("driver produced no rows")
		}
		for unit, v := range tab.Metrics {
			b.ReportMetric(v, unit)
		}
	}
}

// HTTP/NDJSON serving layer vs in-process session (ISSUE 5): wall times
// for the same count-only batch both ways, plus the wire-overhead
// factor forwarded through ReportMetric so BENCH_server.json records it
// alongside ns/op.
func BenchmarkServerThroughput(b *testing.B) {
	env := benchEnv()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab := bench.ServerThroughput(env)
		if len(tab.Rows) == 0 {
			b.Fatal("driver produced no rows")
		}
		for unit, v := range tab.Metrics {
			b.ReportMetric(v, unit)
		}
	}
}

// Distance backends (ISSUE 6): 2-hop labels vs matrix vs cold cache on
// the single-atom RQ workload, at the configured scale and on a graph
// whose matrix exceeds that scale's byte budget. Label build time,
// bytes/node and the cold-cache-over-twohop factor are forwarded
// through ReportMetric into BENCH_twohop.json.
func BenchmarkTwoHop(b *testing.B) {
	env := benchEnv()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab := bench.TwoHop(env)
		if len(tab.Rows) == 0 {
			b.Fatal("driver produced no rows")
		}
		for unit, v := range tab.Metrics {
			b.ReportMetric(v, unit)
		}
	}
}

// QoS under open-loop load (ISSUE 7): a loopback rgserve with
// adaptive admission driven below, at and above its calibrated
// saturation rate by internal/loadgen. The per-rate offered/achieved
// QPS, exact p50/p99/p999 and shed/deadline-miss rates are forwarded
// through ReportMetric so BENCH_load.json records the saturation story.
func BenchmarkServerLoad(b *testing.B) {
	env := benchEnv()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab := bench.ServerLoad(env)
		if len(tab.Rows) == 0 {
			b.Fatal("driver produced no rows")
		}
		for unit, v := range tab.Metrics {
			b.ReportMetric(v, unit)
		}
	}
}

// Served write path (ISSUE 9): incremental attribute-index maintenance
// (candidx.WithChanges vs a full Build, per graph size) and mixed
// read/write throughput of the generation engine against a
// stop-the-world rebuild baseline. The per-size speedup and the
// read-QPS ratio are forwarded through ReportMetric so
// BENCH_mutate.json records both write-path stories.
func BenchmarkMutate(b *testing.B) {
	env := benchEnv()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab := bench.Mutate(env)
		if len(tab.Rows) == 0 {
			b.Fatal("driver produced no rows")
		}
		for unit, v := range tab.Metrics {
			b.ReportMetric(v, unit)
		}
	}
}

// Durable write path (ISSUE 10): commit throughput of the same
// mutation stream with the write-ahead log under each fsync policy
// (none, interval, always) against the no-WAL engine. The per-policy
// commit QPS is forwarded through ReportMetric so BENCH_wal.json
// records what each durability promise costs next to BENCH_mutate's
// in-memory commit rates.
func BenchmarkWAL(b *testing.B) {
	env := benchEnv()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab := bench.WAL(env)
		if len(tab.Rows) == 0 {
			b.Fatal("driver produced no rows")
		}
		for unit, v := range tab.Metrics {
			b.ReportMetric(v, unit)
		}
	}
}

// Replica router tier (ISSUE 8): open-loop throughput scaling at 1, 2
// and 4 single-worker replicas behind one router, plus the fault
// schedule (one of two replicas RST-killed for the middle third of the
// run). The per-row achieved QPS, the 2-vs-1 scaling factor and the
// fault-vs-fault-free QPS ratio are forwarded through ReportMetric so
// BENCH_cluster.json records the scaling and fault-tolerance story.
func BenchmarkCluster(b *testing.B) {
	env := benchEnv()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab := bench.Cluster(env)
		if len(tab.Rows) == 0 {
			b.Fatal("driver produced no rows")
		}
		for unit, v := range tab.Metrics {
			b.ReportMetric(v, unit)
		}
	}
}

// Ablations (DESIGN.md §5).

func BenchmarkAblationContainment(b *testing.B) { runDriver(b, bench.AblationContainment) }
func BenchmarkAblationTopoOrder(b *testing.B)   { runDriver(b, bench.AblationTopoOrder) }
func BenchmarkAblationCache(b *testing.B)       { runDriver(b, bench.AblationCache) }
func BenchmarkAblationFilter(b *testing.B)      { runDriver(b, bench.AblationFilter) }
func BenchmarkAblationIncremental(b *testing.B) { runDriver(b, bench.AblationIncremental) }
