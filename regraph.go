// Package regraph is a Go implementation of the query classes and
// algorithms of Fan, Li, Ma, Tang and Wu, "Adding Regular Expressions to
// Graph Reachability and Pattern Queries" (ICDE 2011; extended version in
// Frontiers of Computer Science 6(3), 2012).
//
// It provides, over directed data graphs whose nodes carry attribute
// tuples and whose edges carry types ("colors"):
//
//   - Reachability queries (RQ): source/destination predicates plus a path
//     constraint from the restricted regular-expression subclass
//     F ::= c | c{k} | c+ | F F, evaluated with a per-color distance
//     matrix (quadratic time) or bi-directional search with an LRU
//     distance cache.
//   - Graph pattern queries (PQ): pattern graphs whose every edge is an
//     RQ, matched under the paper's revised graph simulation; two
//     cubic-time evaluation algorithms, JoinMatch and SplitMatch.
//   - Static analyses: containment, equivalence and minimization of RQs
//     and PQs, all in low polynomial time.
//
// # Quick start
//
//	g := regraph.NewGraph()
//	alice := g.AddNode("alice", map[string]string{"job": "doctor"})
//	bob := g.AddNode("bob", map[string]string{"job": "biologist"})
//	g.AddEdge(bob, alice, "fn")
//
//	q := regraph.RQ{
//		From: regraph.MustPredicate("job = biologist"),
//		To:   regraph.MustPredicate("job = doctor"),
//		Expr: regraph.MustRegex("fn{2}"),
//	}
//	pairs := q.EvalBFS(g) // [{bob alice}]
//	_ = pairs
//
// See examples/ for complete programs and DESIGN.md for the mapping from
// paper sections to packages.
package regraph

import (
	"context"

	"regraph/internal/candidx"
	"regraph/internal/contain"
	"regraph/internal/dist"
	"regraph/internal/engine"
	"regraph/internal/gen"
	"regraph/internal/graph"
	"regraph/internal/mutate"
	"regraph/internal/pattern"
	"regraph/internal/predicate"
	"regraph/internal/reach"
	"regraph/internal/reachidx"
	"regraph/internal/rex"
	"regraph/internal/rexfull"
	"regraph/internal/server"
)

// Core graph types.
type (
	// Graph is a directed data graph with typed edges and attributed
	// nodes.
	Graph = graph.Graph
	// NodeID identifies a data-graph node.
	NodeID = graph.NodeID
	// ColorID identifies an interned edge color.
	ColorID = graph.ColorID
)

// Query types.
type (
	// RQ is a reachability query (paper Section 2).
	RQ = reach.Query
	// Pair is one RQ answer: a (source, destination) node pair.
	Pair = reach.Pair
	// PQ is a graph pattern query (paper Section 2).
	PQ = pattern.Query
	// PQResult is a pattern query answer: one pair set per pattern edge.
	PQResult = pattern.Result
	// EvalOptions selects matrix-backed or search-backed evaluation.
	EvalOptions = pattern.Options
	// Regex is a subclass-F regular expression.
	Regex = rex.Expr
	// Predicate is a conjunction of attribute comparisons.
	Predicate = predicate.Pred
	// Matrix is the per-color all-pairs shortest-distance index.
	Matrix = dist.Matrix
	// Cache is the LRU distance cache for matrix-free evaluation.
	Cache = dist.Cache
	// DistBackend is the pluggable distance oracle behind single-atom
	// evaluation: Matrix, Cache and TwoHop all implement it, and
	// EngineOptions.Backend accepts any of them (or a caller-supplied
	// implementation honoring the same exactness contract).
	DistBackend = dist.Backend
	// TwoHop is the 2-hop-labeling distance index: per-color sorted hub
	// labels answering Dist by sorted merge — between Matrix and Cache
	// in both space and lookup cost. See NewTwoHop.
	TwoHop = dist.TwoHop
	// CAtom is one compiled atom of a subclass-F expression: an interned
	// color layer plus an occurrence bound.
	CAtom = dist.CAtom
	// Scratch is a reusable per-worker search arena for the runtime
	// evaluation primitives; see NewScratch.
	Scratch = dist.Scratch
)

// Candidate-index types (see NewCandidateIndex / NewCandidateMemo).
type (
	// CandidateSource supplies predicate candidate sets to the
	// evaluators (RQ.EvalMatrixWith and friends, EvalOptions.Cands)
	// without scanning all nodes. CandidateIndex and CandidateMemo
	// implement it; answers must be identical to the linear scan's.
	CandidateSource = reach.CandidateSource
	// CandidateIndex is the per-graph attribute inverted index: sorted
	// posting columns split into numeric and lexicographic value
	// domains (predicate.Compare's exact semantics), answering a clause
	// by binary search and a conjunction by bitset intersection in
	// O(log|V| + k) instead of the O(|V|·clauses) scan. A snapshot —
	// rebuild (or use CandidateMemo) after mutating the graph.
	CandidateIndex = candidx.Index
	// CandidateMemo is an epoch-validated predicate→candidates cache
	// over a CandidateIndex: repeated predicates are map hits, and any
	// graph mutation invalidates both index and cache before the next
	// answer. NewEngine builds one automatically and shares it across
	// its worker pool.
	CandidateMemo = candidx.Memo
)

// Engine types.
type (
	// Engine is the resident concurrent query engine: one graph, one
	// shared Matrix or Cache, a bounded worker pool with per-worker
	// scratch arenas. Safe for concurrent use; see NewEngine.
	Engine = engine.Engine
	// EngineOptions configures NewEngine: worker count and the shared
	// distance structure (Matrix, Cache, or an auto-created cache).
	EngineOptions = engine.Options
	// BatchRequest is one query of an Engine batch or Session: exactly
	// one of its RQ/PQ fields must be set. Setting its Emit callback on
	// an RQ streams the answer pairs instead of materializing them.
	BatchRequest = engine.Request
	// BatchResult is the answer to one BatchRequest, tagged with the
	// originating request id (the batch index for RunBatch, the
	// Submit-returned id for a Session) and the evaluation latency.
	BatchResult = engine.Result
	// Session is a streaming query session over an Engine (see
	// Engine.Open): Submit admits requests under an in-flight bound
	// (back-pressure), Results streams answers in completion order, and
	// context cancellation stops in-flight evaluators at periodic
	// checkpoints and drains without goroutine leaks.
	Session = engine.Session
	// SessionOptions configures Engine.Open: the admission bound
	// (MaxInFlight, which also caps resident answer memory) and the
	// Results buffer.
	SessionOptions = engine.SessionOptions
	// SessionStats is a Session.Stats snapshot: submission/completion/
	// cancellation counters, in-flight and queue-depth gauges, and a
	// per-query latency summary.
	SessionStats = engine.SessionStats
)

// Write-path types (see Engine.Apply, Engine.Subscribe and DESIGN.md §13).
type (
	// Mutation is one graph mutation op — add_node, set_attr, add_edge
	// or remove_edge — as decoded from the NDJSON mutation log (or its
	// qlang text form) and applied by Engine.Apply. Each op of a batch
	// applies or fails individually.
	Mutation = mutate.Op
	// MutationAck is the per-op outcome of an applied batch: the op's id,
	// the generation it committed as, or its error.
	MutationAck = mutate.Ack
	// MutationCommit reports one Engine.Apply batch: the acks in op
	// order, the committed generation and the graph size after it.
	MutationCommit = engine.Commit
	// StandingQuery is a registered standing pattern query
	// (Engine.Subscribe): its answer is maintained incrementally across
	// committed generations and every change is pushed as a
	// StandingUpdate on its Updates channel.
	StandingQuery = engine.Standing
	// StandingUpdate is one pushed delta answer: the full result at the
	// committed generation plus the per-edge pair sets that entered and
	// left it.
	StandingUpdate = engine.StandingUpdate
)

// ErrEngineReadOnly is returned by Engine.Apply when the engine was
// built around externally owned distance structures (an explicit
// Matrix/Cache/Backend or ReachFilter): the engine cannot rebuild what
// it does not own, so such configurations serve queries only. Select
// backends by name (EngineOptions.BackendKind, AutoBackend, or the
// default cache) to keep an engine writable.
var ErrEngineReadOnly = engine.ErrReadOnly

// ErrSessionClosed is returned by Session.Submit after Close (or after
// the session's context was cancelled and the session drained).
var ErrSessionClosed = engine.ErrSessionClosed

// ErrDeadlineExpired is the Result.Err of a request whose Deadline
// passed while it was still queued: the session shed it without
// spending a worker on it. errors.Is(err, context.DeadlineExceeded)
// also matches, so callers that only care about "missed the deadline"
// need one check; compare against ErrDeadlineExpired itself to
// distinguish a queue shed from an evaluation abandoned mid-flight.
var ErrDeadlineExpired = engine.ErrDeadlineExpired

// Serving types (the HTTP/NDJSON front end; see NewServer).
type (
	// Server serves an Engine over HTTP speaking the NDJSON wire format:
	// POST /v1/query streams request lines in and response lines out in
	// completion order, POST /v1/mutate streams mutation ops in and acks
	// out (each chunk committing one snapshot-isolated generation),
	// POST /v1/subscribe follows a standing pattern query with pushed
	// delta lines, GET /v1/stats snapshots the serving counters,
	// GET /healthz reports liveness. cmd/rgserve is the ready-made
	// binary; cmd/rgquery -remote is the matching client.
	Server = server.Server
	// ServerOptions configures NewServer: per-stream admission bound
	// (the wire-level flow control) and the server-side stream deadline.
	ServerOptions = server.Options
	// ServerStats is a Server.Stats snapshot (the /v1/stats payload).
	ServerStats = server.Stats
)

// NewGraph returns an empty data graph.
func NewGraph() *Graph { return graph.New() }

// NewPQ returns an empty pattern query; add nodes with AddNode and edges
// with AddEdge.
func NewPQ() *PQ { return pattern.New() }

// ParseRegex parses a subclass-F regular expression, e.g. "fa{2} fn" or
// "ic{2} dc+".
func ParseRegex(s string) (Regex, error) { return rex.Parse(s) }

// MustRegex is ParseRegex but panics on error.
func MustRegex(s string) Regex { return rex.MustParse(s) }

// ParsePredicate parses a node predicate, e.g. `job = doctor, age > 300`.
func ParsePredicate(s string) (Predicate, error) { return predicate.Parse(s) }

// MustPredicate is ParsePredicate but panics on error.
func MustPredicate(s string) Predicate { return predicate.MustParse(s) }

// NewMatrix precomputes the distance matrix of Section 4: one layer per
// edge color plus a wildcard layer, O((m+1)|V|^2) space. Share it across
// queries on the same graph.
func NewMatrix(g *Graph) *Matrix { return dist.NewMatrix(g) }

// NewCache creates an LRU distance cache for graphs too large for a
// matrix.
func NewCache(g *Graph, capacity int) *Cache { return dist.NewCache(g, capacity) }

// NewTwoHop builds the 2-hop label index for every color layer (plus
// the wildcard layer) with degree-ranked pruned landmark BFS,
// parallelized across layers. Distances agree bit-for-bit with
// NewMatrix's at a fraction of its (m+1)·|V|² memory on sparse graphs;
// pass it as EngineOptions.Backend or to RQ.EvalBackend.
func NewTwoHop(g *Graph) *TwoHop { return dist.NewTwoHop(g) }

// NewTwoHopBudget is NewTwoHop under a context and a label-storage
// byte budget (0 = unlimited): construction aborts with
// ErrTwoHopBudget when the labels exceed the budget, and with ctx's
// error on cancellation.
func NewTwoHopBudget(ctx context.Context, g *Graph, maxBytes int64) (*TwoHop, error) {
	return dist.NewTwoHopBudget(ctx, g, maxBytes)
}

// ErrTwoHopBudget reports that 2-hop label construction exceeded its
// byte budget; fall back to a Cache (see EngineOptions.AutoBackend,
// which does exactly that).
var ErrTwoHopBudget = dist.ErrTwoHopBudget

// PredictMatrixBytes returns the exact bytes NewMatrix would allocate
// for g — (m+1)·|V|²·4 — without allocating them; the quantity
// EngineOptions.AutoBackend compares against its MemoryBudget.
func PredictMatrixBytes(g *Graph) int64 { return dist.PredictMatrixBytes(g) }

// NewEngine builds a resident query engine over g: RQs and PQs are
// evaluated concurrently across a bounded worker pool, every worker
// reusing a persistent Scratch arena against the engine's shared
// distance backend (an explicit Matrix, Cache or DistBackend, the
// AutoBackend memory-budget heuristic, or the default auto-created
// cache). Engine.Open starts a streaming Session (Submit/Results with
// back-pressure and context cancellation); Engine.RunBatch evaluates
// one whole batch at a time. Once the engine exists, mutate the graph
// only through Engine.Apply — each batch commits as a copy-on-write
// generation, readers keep their pinned snapshot, and the construction
// graph itself must no longer be touched. Conflicting options (two
// backends at once, a
// CacheSize that would be ignored, a filter the backend cannot hold)
// return an error wrapping ErrEngineOptions.
func NewEngine(g *Graph, opts EngineOptions) (*Engine, error) { return engine.New(g, opts) }

// MustEngine is NewEngine for statically known-valid configurations;
// it panics on a configuration error.
func MustEngine(g *Graph, opts EngineOptions) *Engine { return engine.MustNew(g, opts) }

// ErrEngineOptions is the sentinel every NewEngine configuration error
// wraps.
var ErrEngineOptions = engine.ErrOptions

// NewCandidateIndex builds the attribute inverted index for the
// graph's current state. Pass it (or a CandidateMemo) to
// RQ.EvalMatrixWith / RQ.EvalBFSScratchWith / RQ.EvalBiBFSScratchWith
// or EvalOptions.Cands to replace every O(|V|) predicate scan with an
// indexed lookup; candidate sets are bit-identical to the scan's.
func NewCandidateIndex(g *Graph) *CandidateIndex { return candidx.Build(g) }

// NewCandidateMemo wraps a CandidateIndex in a concurrency-safe
// predicate→candidates cache invalidated by the graph's mutation epoch.
// Prefer this over a bare index when queries repeat predicates or the
// graph mutates between queries.
func NewCandidateMemo(g *Graph) *CandidateMemo { return candidx.NewMemo(g) }

// NewScratch returns an empty search arena. The scratch-accepting
// evaluation APIs (RQ.EvalBFSScratch, RQ.EvalBiBFSScratch,
// ForwardClosureScratch, EvalOptions.Scratch) draw every BFS buffer,
// seed bitset and closure frontier from it instead of the heap, so one
// goroutine evaluating queries back to back allocates only answers. A
// Scratch must not be shared between goroutines; NewEngine manages one
// per worker automatically.
func NewScratch() *Scratch { return dist.NewScratch() }

// CompileRegex resolves a subclass-F expression's atoms against a
// graph's interned colors. ok is false when the expression mentions a
// color the graph does not have (its language is then empty over this
// graph) or when the expression is the invalid zero value.
func CompileRegex(g *Graph, e Regex) (atoms []CAtom, ok bool) { return dist.Compile(g, e) }

// ForwardClosureScratch marks every node reachable from some node of
// src via a path whose color string matches the compiled atom chain,
// using s for every internal buffer. The returned slice is owned by s:
// it is valid only until the next closure or search call on s — copy it
// to retain it.
func ForwardClosureScratch(g *Graph, src []bool, atoms []CAtom, s *Scratch) []bool {
	return dist.ForwardClosureScratch(g, src, atoms, s)
}

// BackwardClosureScratch marks every node from which some node of dst
// is reachable via a path matching the atom chain. Same ownership rules
// as ForwardClosureScratch.
func BackwardClosureScratch(g *Graph, dst []bool, atoms []CAtom, s *Scratch) []bool {
	return dist.BackwardClosureScratch(g, dst, atoms, s)
}

// JoinMatch evaluates a pattern query with the join-based algorithm of
// Section 5.1. Pass EvalOptions{Matrix: m} for the quadratic-lookup
// configuration or EvalOptions{Cache: c} (or zero options) for runtime
// search.
func JoinMatch(g *Graph, q *PQ, opts EvalOptions) *PQResult {
	return pattern.JoinMatch(g, q, opts)
}

// SplitMatch evaluates a pattern query with the partition-refinement
// algorithm of Section 5.2. Same answers as JoinMatch.
func SplitMatch(g *Graph, q *PQ, opts EvalOptions) *PQResult {
	return pattern.SplitMatch(g, q, opts)
}

// RQContains reports Q1 ⊑ Q2 for reachability queries (Proposition 3.3).
func RQContains(q1, q2 RQ) bool { return contain.RQContains(q1, q2) }

// RQEquivalent reports Q1 ≡ Q2 for reachability queries.
func RQEquivalent(q1, q2 RQ) bool { return contain.RQEquivalent(q1, q2) }

// PQContains reports Q1 ⊑ Q2 for pattern queries via revised graph
// similarity (Lemma 3.1, Theorem 3.2).
func PQContains(q1, q2 *PQ) bool { return contain.Contains(q1, q2) }

// PQEquivalent reports Q1 ≡ Q2 for pattern queries.
func PQEquivalent(q1, q2 *PQ) bool { return contain.Equivalent(q1, q2) }

// Minimize returns a minimum equivalent pattern query (algorithm minPQs,
// Theorem 3.4) — the paper's query-optimization strategy.
func Minimize(q *PQ) *PQ { return contain.Minimize(q) }

// ---- extensions beyond the paper's core (its stated future work) ----------

// Incremental maintains a pattern query's answer under edge and node
// insertions and deletions without re-evaluating from scratch — the
// paper's principal future-work item (Section 7).
type Incremental = pattern.Incremental

// NewIncremental evaluates q once over g and returns a maintenance engine;
// mutate the graph only through the engine's InsertEdge / DeleteEdge /
// InsertNode methods.
func NewIncremental(g *Graph, q *PQ) (*Incremental, error) {
	return pattern.NewIncremental(g, q)
}

// FullRegex is a general regular expression over edge colors (union,
// star, grouping — beyond subclass F). Containment and minimization are
// PSPACE-complete for this class and deliberately not provided; see
// package rexfull.
type FullRegex = rexfull.Expr

// FullRQ is a reachability query whose path constraint is a general
// regular expression, evaluated by product-automaton search.
type FullRQ = rexfull.Query

// ParseFullRegex parses a general regular expression such as
// "(fa|fn)* sa+".
func ParseFullRegex(s string) (FullRegex, error) { return rexfull.Parse(s) }

// MustFullRegex is ParseFullRegex but panics on error.
func MustFullRegex(s string) FullRegex { return rexfull.MustParse(s) }

// FullPQ is a graph pattern query whose edges carry general regular
// expressions — the PQ half of the future-work extension. Same matching
// semantics (revised graph simulation), polynomial evaluation; no
// containment or minimization (PSPACE-complete for this class).
type FullPQ = rexfull.Pattern

// FullPQResult is the answer of a FullPQ.
type FullPQResult = rexfull.PatternResult

// NewFullPQ returns an empty general-regex pattern query.
func NewFullPQ() *FullPQ { return rexfull.NewPattern() }

// ReachIndex is a GRAIL-style interval-labeling reachability filter:
// sound negative answers let the runtime search skip hopeless pairs.
type ReachIndex = reachidx.Index

// NewReachIndex builds the filter with k randomized traversals per color
// layer; install it on a Cache with SetFilter.
func NewReachIndex(g *Graph, k int) *ReachIndex { return reachidx.Build(g, k) }

// Essembly returns the Fig. 1 example network (see internal/gen).
func Essembly() *Graph { return gen.Essembly() }

// SyntheticGraph generates a seeded random data graph with the given
// shape, `attrs` integer attributes per node and the given edge colors.
func SyntheticGraph(seed int64, nodes, edges, attrs int, colors []string) *Graph {
	return gen.Synthetic(seed, nodes, edges, attrs, colors)
}

// YouTubeGraph generates the YouTube-like dataset of the paper's
// experiments at the given scale (1.0 = the paper's 8,350 nodes / 30,391
// edges).
func YouTubeGraph(seed int64, scale float64) *Graph { return gen.YouTube(seed, scale) }

// TerrorGraph generates the terrorist-organization collaboration network
// of the paper's experiments (818 nodes, 1,600 edges).
func TerrorGraph(seed int64) *Graph { return gen.Terror(seed) }

// NewServer wraps an engine in the HTTP/NDJSON query service. Mount
// Handler() on any listener (or call ListenAndServe), stop with
// Shutdown — graceful drain first, forced session cancellation only
// when the context expires.
func NewServer(e *Engine, opts ServerOptions) *Server { return server.New(e, opts) }
