// Quickstart: build a small typed graph, run a reachability query and a
// pattern query, and minimize a redundant pattern.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"regraph"
)

func main() {
	// A little collaboration network: edges are typed "works_with" (w) or
	// "advises" (a).
	g := regraph.NewGraph()
	ann := g.AddNode("ann", map[string]string{"role": "professor", "field": "db"})
	bob := g.AddNode("bob", map[string]string{"role": "phd", "field": "db"})
	cho := g.AddNode("cho", map[string]string{"role": "phd", "field": "ml"})
	dee := g.AddNode("dee", map[string]string{"role": "engineer", "field": "db"})
	g.AddEdge(ann, bob, "a")
	g.AddEdge(ann, cho, "a")
	g.AddEdge(bob, dee, "w")
	g.AddEdge(cho, dee, "w")
	g.AddEdge(dee, bob, "w")

	// Reachability query: professors connected to engineers by one advice
	// edge followed by at most two works-with edges.
	q := regraph.RQ{
		From: regraph.MustPredicate("role = professor"),
		To:   regraph.MustPredicate("role = engineer"),
		Expr: regraph.MustRegex("a w{2}"),
	}
	fmt.Println("reachability:", q)
	for _, p := range q.EvalBFS(g) {
		fmt.Printf("  %s -> %s\n", g.Node(p.From).Name, g.Node(p.To).Name)
	}

	// Pattern query: a professor advising a DB student who works with an
	// engineer — matched by graph simulation, so one pattern node may
	// match many data nodes.
	pq := regraph.NewPQ()
	prof := pq.AddNode("Prof", regraph.MustPredicate("role = professor"))
	stud := pq.AddNode("Stud", regraph.MustPredicate("role = phd, field = db"))
	eng := pq.AddNode("Eng", regraph.MustPredicate("role = engineer"))
	pq.AddEdge(prof, stud, regraph.MustRegex("a"))
	pq.AddEdge(stud, eng, regraph.MustRegex("w+"))

	mx := regraph.NewMatrix(g) // precomputed index, shared across queries
	res := regraph.JoinMatch(g, pq, regraph.EvalOptions{Matrix: mx})
	fmt.Println("pattern matches:")
	fmt.Print(res.String(g))

	// Static analysis: a pattern with two interchangeable student nodes
	// minimizes to the one above.
	big := regraph.NewPQ()
	p2 := big.AddNode("Prof", regraph.MustPredicate("role = professor"))
	s1 := big.AddNode("S1", regraph.MustPredicate("role = phd, field = db"))
	s2 := big.AddNode("S2", regraph.MustPredicate("role = phd, field = db"))
	e2 := big.AddNode("Eng", regraph.MustPredicate("role = engineer"))
	big.AddEdge(p2, s1, regraph.MustRegex("a"))
	big.AddEdge(p2, s2, regraph.MustRegex("a"))
	big.AddEdge(s1, e2, regraph.MustRegex("w+"))
	big.AddEdge(s2, e2, regraph.MustRegex("w+"))
	min := regraph.Minimize(big)
	fmt.Printf("minimization: size %d -> %d, equivalent: %v\n",
		big.Size(), min.Size(), regraph.PQEquivalent(big, min))
}
