// YouTube: recommendation-network analytics over the YouTube-like dataset
// (the paper's first real-life dataset, Exp-1 Q1). Demonstrates pattern
// queries whose edges distinguish friend recommendations from stranger
// references, query minimization as an optimizer, and the LRU distance
// cache for matrix-free evaluation.
//
//	go run ./examples/youtube
package main

import (
	"fmt"
	"time"

	"regraph"
)

func main() {
	g := regraph.YouTubeGraph(1, 0.25)
	fmt.Printf("video network: %d videos, %d links, types %v\n\n",
		g.NumNodes(), g.NumEdges(), g.Colors())

	t0 := time.Now()
	mx := regraph.NewMatrix(g)
	fmt.Printf("distance matrix built in %v\n\n", time.Since(t0).Round(time.Millisecond))

	// Q1-style pattern: well-commented film videos connected to Davedays
	// uploads through friend references, which in turn lead to popular
	// low-noise videos.
	q := regraph.NewPQ()
	film := q.AddNode("Film", regraph.MustPredicate(`cat = "Film & Animation", com > 20, age > 300`))
	dave := q.AddNode("Dave", regraph.MustPredicate("uid = Davedays"))
	hit := q.AddNode("Hit", regraph.MustPredicate("view > 160000, com < 300"))
	q.AddEdge(film, dave, regraph.MustRegex("fr{5}"))
	q.AddEdge(dave, hit, regraph.MustRegex("fr fc"))

	t0 = time.Now()
	res := regraph.JoinMatch(g, q, regraph.EvalOptions{Matrix: mx})
	fmt.Printf("pattern evaluated in %v; %d total matched pairs\n",
		time.Since(t0).Round(time.Millisecond), res.Size())
	for _, u := range []int{film, dave, hit} {
		fmt.Printf("  %-4s matches %d videos\n", q.Node(u).Name, len(res.MatchSet(u)))
	}

	// A deliberately redundant version of the same pattern (duplicated
	// branch), minimized away by minPQs before evaluation.
	redundant := regraph.NewPQ()
	f2 := redundant.AddNode("Film", q.Node(film).Pred)
	d2 := redundant.AddNode("Dave", q.Node(dave).Pred)
	d3 := redundant.AddNode("Dave2", q.Node(dave).Pred)
	h2 := redundant.AddNode("Hit", q.Node(hit).Pred)
	redundant.AddEdge(f2, d2, regraph.MustRegex("fr{5}"))
	redundant.AddEdge(f2, d3, regraph.MustRegex("fr{5}"))
	redundant.AddEdge(d2, h2, regraph.MustRegex("fr fc"))
	redundant.AddEdge(d3, h2, regraph.MustRegex("fr fc"))
	min := regraph.Minimize(redundant)
	fmt.Printf("\nminPQs: redundant pattern size %d -> %d (equivalent: %v)\n",
		redundant.Size(), min.Size(), regraph.PQEquivalent(redundant, min))

	tRed := timeIt(func() { regraph.JoinMatch(g, redundant, regraph.EvalOptions{Matrix: mx}) })
	tMin := timeIt(func() { regraph.JoinMatch(g, min, regraph.EvalOptions{Matrix: mx}) })
	fmt.Printf("evaluation: %.3fs unminimized vs %.3fs minimized\n", tRed, tMin)

	// Matrix-free evaluation with the LRU distance cache (for graphs too
	// large to hold the matrix), plus its hit statistics.
	ca := regraph.NewCache(g, 1<<14)
	rq := regraph.RQ{
		From: regraph.MustPredicate(`cat = "Film & Animation", com > 20`),
		To:   regraph.MustPredicate("uid = Davedays"),
		Expr: regraph.MustRegex("fr{5}"),
	}
	pairs := rq.EvalBiBFS(g, ca)
	hits, misses := ca.Stats()
	fmt.Printf("\ncache-mode RQ: %d pairs (cache: %d hits, %d misses)\n", len(pairs), hits, misses)
}

func timeIt(fn func()) float64 {
	t0 := time.Now()
	fn()
	return time.Since(t0).Seconds()
}
