// Terror: intelligence-analysis queries over the terrorist-organization
// collaboration network (the paper's second real-life dataset, Exp-1).
// Shows a multi-hop regex pattern centered on one organization and
// compares the answer against the bounded-simulation baseline, which
// ignores collaboration types and therefore over-matches.
//
//	go run ./examples/terror
package main

import (
	"fmt"

	"regraph"
)

func main() {
	g := regraph.TerrorGraph(1)
	fmt.Printf("terror network: %d organizations, %d collaboration edges\n\n",
		g.NumNodes(), g.NumEdges())
	mx := regraph.NewMatrix(g)

	// Organizations attacking business targets by armed assault that are
	// connected to Hamas through up to two international collaborations
	// followed by a chain of domestic ones (the paper's Q2 style:
	// ic{2} dc+).
	q := regraph.NewPQ()
	a := q.AddNode("A", regraph.MustPredicate(`at = "Armed Assault", tt = Business`))
	h := q.AddNode("Hamas", regraph.MustPredicate("gn = Hamas"))
	d := q.AddNode("D", regraph.MustPredicate(`tt = "Private Citizens & Property"`))
	q.AddEdge(a, h, regraph.MustRegex("ic{2} dc+"))
	q.AddEdge(h, d, regraph.MustRegex("ic{2} dc+"))

	res := regraph.JoinMatch(g, q, regraph.EvalOptions{Matrix: mx})
	if res.Empty() {
		fmt.Println("no organizations satisfy the pattern")
		return
	}
	aIdx, _ := q.NodeIndex("A")
	dIdx, _ := q.NodeIndex("D")
	fmt.Printf("organizations reaching Hamas via ic{2} dc+: %d\n", len(res.MatchSet(aIdx)))
	for i, v := range res.MatchSet(aIdx) {
		if i == 5 {
			fmt.Println("  ...")
			break
		}
		at := g.Attrs(v)
		fmt.Printf("  %s (country %s)\n", g.Node(v).Name, at["country"])
	}
	fmt.Printf("organizations Hamas reaches via ic{2} dc+: %d\n", len(res.MatchSet(dIdx)))

	// The reachability-query view of the same question, evaluated three
	// ways; all agree.
	rq := regraph.RQ{
		From: regraph.MustPredicate(`at = "Armed Assault", tt = Business`),
		To:   regraph.MustPredicate("gn = Hamas"),
		Expr: regraph.MustRegex("ic{2} dc+"),
	}
	dm := rq.EvalMatrix(g, mx)
	bfs := rq.EvalBFS(g)
	bi := rq.EvalBiBFS(g, regraph.NewCache(g, 4096))
	fmt.Printf("\nRQ answers: matrix=%d, bfs=%d, bi-bfs=%d pairs\n", len(dm), len(bfs), len(bi))

	// What a type-blind query would claim: replace the expressions by
	// plain "within k hops" (bounded simulation). Every regex match
	// remains a match, but untyped chains sneak in — the paper's
	// precision argument.
	blind := regraph.NewPQ()
	a2 := blind.AddNode("A", regraph.MustPredicate(`at = "Armed Assault", tt = Business`))
	h2 := blind.AddNode("Hamas", regraph.MustPredicate("gn = Hamas"))
	d2 := blind.AddNode("D", regraph.MustPredicate(`tt = "Private Citizens & Property"`))
	blind.AddEdge(a2, h2, regraph.MustRegex("_+"))
	blind.AddEdge(h2, d2, regraph.MustRegex("_+"))
	blindRes := regraph.JoinMatch(g, blind, regraph.EvalOptions{Matrix: mx})
	fmt.Printf("type-blind pattern matches %d source organizations (regex-aware: %d)\n",
		len(blindRes.MatchSet(a2)), len(res.MatchSet(aIdx)))
}
