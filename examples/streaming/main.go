// Streaming: maintaining a pattern query's answer over a changing graph —
// the paper's principal future-work item (Section 7: "data graphs are
// frequently modified, and it is too costly to re-evaluate PQs in
// cubic time ... every time the graphs are updated").
//
// A small moderation scenario: a social network receives friendship and
// endorsement edges in a stream, and a standing pattern query watches for
// "an organizer endorsed within two hops by a sponsor who is also a
// friend-of-a-friend of a reviewer". The incremental engine keeps the
// answer current after every update; the program cross-checks each state
// against a from-scratch evaluation.
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"time"

	"regraph"
)

func main() {
	g := regraph.NewGraph()
	// Seed population.
	people := []struct{ name, role string }{
		{"olga", "organizer"}, {"omar", "organizer"},
		{"sana", "sponsor"}, {"sven", "sponsor"},
		{"rita", "reviewer"}, {"ravi", "reviewer"},
		{"finn", "member"}, {"faye", "member"},
	}
	ids := map[string]regraph.NodeID{}
	for _, p := range people {
		ids[p.name] = g.AddNode(p.name, map[string]string{"role": p.role})
	}
	// Initial edges: one complete chain so every edge color exists.
	g.AddEdge(ids["sana"], ids["olga"], "endorses")
	g.AddEdge(ids["rita"], ids["finn"], "friend")
	g.AddEdge(ids["finn"], ids["sana"], "friend")

	// The standing query.
	q := regraph.NewPQ()
	rev := q.AddNode("Reviewer", regraph.MustPredicate("role = reviewer"))
	spo := q.AddNode("Sponsor", regraph.MustPredicate("role = sponsor"))
	org := q.AddNode("Organizer", regraph.MustPredicate("role = organizer"))
	q.AddEdge(rev, spo, regraph.MustRegex("friend{2}"))
	q.AddEdge(spo, org, regraph.MustRegex("endorses{2}"))

	inc, err := regraph.NewIncremental(g, q)
	if err != nil {
		panic(err)
	}
	report := func(event string) {
		res := inc.Result()
		fresh := regraph.JoinMatch(g, q, regraph.EvalOptions{})
		status := "OK"
		if !res.Equal(fresh) {
			status = "DIVERGED (bug!)"
		}
		fmt.Printf("%-44s answer size %d  [cross-check %s]\n", event, res.Size(), status)
	}
	report("initial state:")

	// The stream.
	type update struct {
		kind            string
		from, to, color string
		nodeName, role  string
	}
	stream := []update{
		{kind: "edge", from: "ravi", to: "faye", color: "friend"},
		{kind: "edge", from: "faye", to: "sven", color: "friend"},
		{kind: "edge", from: "sven", to: "omar", color: "endorses"},
		{kind: "node", nodeName: "nils", role: "organizer"},
		{kind: "edge", from: "sana", to: "nils", color: "endorses"},
		{kind: "del", from: "finn", to: "sana", color: "friend"},
		{kind: "edge", from: "finn", to: "sven", color: "friend"},
	}
	for _, u := range stream {
		t0 := time.Now()
		switch u.kind {
		case "edge":
			inc.InsertEdge(ids[u.from], ids[u.to], u.color)
			report(fmt.Sprintf("+ %s -%s-> %s (%.1fµs):", u.from, u.color, u.to,
				float64(time.Since(t0).Microseconds())))
		case "del":
			if err := inc.DeleteEdge(ids[u.from], ids[u.to], u.color); err != nil {
				panic(err)
			}
			report(fmt.Sprintf("- %s -%s-> %s (%.1fµs):", u.from, u.color, u.to,
				float64(time.Since(t0).Microseconds())))
		case "node":
			ids[u.nodeName] = inc.InsertNode(u.nodeName, map[string]string{"role": u.role})
			report(fmt.Sprintf("+ node %s [%s] (%.1fµs):", u.nodeName, u.role,
				float64(time.Since(t0).Microseconds())))
		}
	}

	fmt.Println("\nfinal matches:")
	fmt.Print(inc.Result().String(g))
}
