// Essembly: the paper's running example (Fig. 1) end to end — the debate
// network G, reachability query Q1 (Example 2.2) and pattern query Q2
// (Example 2.3), with the exact answers the paper reports.
//
//	go run ./examples/essembly
package main

import (
	"fmt"

	"regraph"
)

func main() {
	g := regraph.Essembly()
	fmt.Printf("Fig. 1 network: %d nodes, %d edges, relationship types %v\n\n",
		g.NumNodes(), g.NumEdges(), g.Colors())
	mx := regraph.NewMatrix(g)

	// Q1 (Example 2.2): biologists supporting cloning who reach a doctor
	// via at most two friends-allies edges followed by one friends-nemeses
	// edge. Expected answer: (C1,B1), (C1,B2), (C2,B1), (C2,B2).
	q1 := regraph.RQ{
		From: regraph.MustPredicate("job = biologist, sp = cloning"),
		To:   regraph.MustPredicate("job = doctor"),
		Expr: regraph.MustRegex("fa{2} fn"),
	}
	fmt.Println("Q1:", q1)
	for _, p := range q1.EvalMatrix(g, mx) {
		fmt.Printf("  %s -> %s\n", g.Node(p.From).Name, g.Node(p.To).Name)
	}

	// Q2 (Example 2.3): Alice's view of the debate. Five edges; note how
	// the edge (C,D) maps to the path C3 -fa-> C1 -sa-> D1, i.e. a single
	// pattern edge matches a multi-edge path.
	q2 := regraph.NewPQ()
	b := q2.AddNode("B", regraph.MustPredicate("job = doctor, dsp = cloning"))
	c := q2.AddNode("C", regraph.MustPredicate("job = biologist, sp = cloning"))
	d := q2.AddNode("D", regraph.MustPredicate("uid = Alice001"))
	q2.AddEdge(b, c, regraph.MustRegex("sn"))
	q2.AddEdge(b, d, regraph.MustRegex("fn"))
	q2.AddEdge(c, b, regraph.MustRegex("fn"))
	q2.AddEdge(c, c, regraph.MustRegex("fa{3}"))
	q2.AddEdge(c, d, regraph.MustRegex("fa{2} sa{2}"))

	fmt.Println("\nQ2 (pattern, revised graph simulation):")
	res := regraph.JoinMatch(g, q2, regraph.EvalOptions{Matrix: mx})
	fmt.Print(res.String(g))

	// The same answer without any precomputed index (bi-directional
	// runtime search), and via the split-based algorithm.
	ca := regraph.NewCache(g, 1024)
	res2 := regraph.SplitMatch(g, q2, regraph.EvalOptions{Cache: ca})
	fmt.Printf("\nSplitMatch (cache mode) agrees: %v\n", res.Equal(res2))

	// Why C1 is not a match for C: there is a path C1 -fa-> C2 -fa-> C1
	// -sa-> D1 satisfying fa{2} sa{2}, but C1 has no fn edge to a doctor,
	// so the simulation prunes it — exactly the paper's point about
	// matching semantics.
	cIdx, _ := q2.NodeIndex("C")
	fmt.Print("mat(C) = ")
	for _, v := range res.MatchSet(cIdx) {
		fmt.Print(g.Node(v).Name, " ")
	}
	fmt.Println()
}
