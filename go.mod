module regraph

go 1.24
