package dist

import (
	"context"
	"sync"

	"regraph/internal/graph"
)

// Scratch is a reusable per-worker arena for the runtime search
// primitives: BFS distance and queue buffers, the ping-pong bitsets the
// closures advance through, a single-source seed bitset, and a free list
// of retainable bitsets. Every allocation the closure and bi-directional
// search paths used to make per call is drawn from here instead, so a
// worker that evaluates queries back to back (internal/engine, the bench
// workloads) reaches a steady state of zero allocations per query.
//
// A Scratch is NOT safe for concurrent use: it is owned by exactly one
// goroutine at a time. Give each worker its own (engine workers do), or
// borrow one from the package pool with GetScratch/PutScratch.
type Scratch struct {
	d     []int32        // BFS distances (boundedImage, forward side of BiDist)
	d2    []int32        // backward-side distances of BiDist
	queue []graph.NodeID // BFS queue of boundedImage
	q1    []graph.NodeID // BiDist frontier buffers, rotated level by level
	q2    []graph.NodeID
	q3    []graph.NodeID
	cur   []bool // closure ping-pong buffers
	next  []bool
	seed  []bool   // single-source seed bitset (Seed)
	free  [][]bool // recycled retainable bitsets (Bitset/Recycle)

	// Cancellation binding (BindContext): while ctx is non-nil, the
	// search primitives poll it at periodic checkpoints and bail out
	// early; ctxHit latches the first observed cancellation so later
	// checks are a plain field read.
	ctx    context.Context
	ctxHit bool
}

// NewScratch returns an empty arena; buffers grow on first use and are
// retained for the arena's lifetime.
func NewScratch() *Scratch { return &Scratch{} }

// scratchPool recycles arenas for the convenience entry points
// (ForwardClosure, BiDist, Cache.Dist) that do not take an explicit
// Scratch.
var scratchPool = sync.Pool{New: func() any { return NewScratch() }}

// GetScratch borrows an arena from the package pool. Return it with
// PutScratch once no slice obtained from it is referenced anymore.
func GetScratch() *Scratch { return scratchPool.Get().(*Scratch) }

// PutScratch returns an arena to the package pool.
func PutScratch(s *Scratch) {
	// Never park a stale context in the pool: a later borrower must not
	// inherit another query's cancellation.
	s.ctx, s.ctxHit = nil, false
	scratchPool.Put(s)
}

// BindContext attaches a context to the arena: until the returned
// function restores the previous binding, the search primitives running
// on s (the boundedImage BFS loop, the BiDist frontier expansion, the
// closure chains) poll the context at periodic checkpoints and abandon
// the search when it is cancelled, leaving garbage in their result
// buffers. Callers detect that with Canceled and must discard the
// partial results. Contexts that can never be cancelled (nil,
// context.Background, context.TODO) are not bound at all, so the
// checkpoints stay free for non-cancellable evaluation. Always defer
// the unbind so a pooled or worker-resident arena is never left with a
// dead query's context.
func (s *Scratch) BindContext(ctx context.Context) (unbind func()) {
	prevCtx, prevHit := s.ctx, s.ctxHit
	if ctx != nil && ctx.Done() != nil {
		s.ctx = ctx
	} else {
		s.ctx = nil
	}
	s.ctxHit = false
	return func() { s.ctx, s.ctxHit = prevCtx, prevHit }
}

// Canceled reports whether the context bound to the arena has been
// cancelled, checking it directly (not strided) and latching the first
// observation. With no binding it is always false. Evaluators call this
// at loop boundaries and after closure calls to decide whether the
// buffers they just filled are real answers or abandoned garbage.
func (s *Scratch) Canceled() bool {
	if s.ctx == nil {
		return false
	}
	if s.ctxHit {
		return true
	}
	if s.ctx.Err() != nil {
		s.ctxHit = true
		return true
	}
	return false
}

// int32Buf returns *buf resized to n, reallocating only on growth.
func int32Buf(buf *[]int32, n int) []int32 {
	if cap(*buf) < n {
		*buf = make([]int32, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

func boolBuf(buf *[]bool, n int) []bool {
	if cap(*buf) < n {
		*buf = make([]bool, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// Seed returns a zeroed scratch-owned bitset of length n, intended for
// one-node source/destination seeds: set the bit, run a closure, clear
// the bit again. The same buffer is returned every call (zeroed), so at
// most one seed per Scratch is live at a time.
func (s *Scratch) Seed(n int) []bool {
	b := boolBuf(&s.seed, n)
	clear(b)
	return b
}

// Bitset checks a zeroed bitset of length n out of the arena's free
// list. Unlike closure results it remains valid across further closure
// calls; hand it back with Recycle when done.
func (s *Scratch) Bitset(n int) []bool {
	for i := len(s.free) - 1; i >= 0; i-- {
		b := s.free[i]
		if cap(b) >= n {
			s.free[i] = s.free[len(s.free)-1]
			s.free = s.free[:len(s.free)-1]
			b = b[:n]
			clear(b)
			return b
		}
	}
	return make([]bool, n)
}

// maxFreeBitsets bounds the recycled-bitset free list. One query can
// legitimately retain thousands of bitsets at once (a huge candidate
// set on a large graph), but a resident worker arena must not park that
// O(cands·|V|) high-water mark forever; beyond the cap, Recycle drops
// buffers for the GC and only the steady-state working set is kept.
const maxFreeBitsets = 64

// Recycle returns a bitset obtained from Bitset to the free list.
func (s *Scratch) Recycle(b []bool) {
	if len(s.free) >= maxFreeBitsets {
		return
	}
	s.free = append(s.free, b)
}

// ForwardClosureScratch is ForwardClosure with an explicit arena: the
// atom chain is pushed forward from the source set entirely within s's
// buffers. The result always has length g.NumNodes() — a shorter src is
// treated as false beyond its length. The returned slice is owned by
// s — it is valid only until the next closure or search call on s; copy
// it (e.g. into s.Bitset) to retain it.
func ForwardClosureScratch(g *graph.Graph, src []bool, atoms []CAtom, s *Scratch) []bool {
	n := g.NumNodes()
	cur := boolBuf(&s.cur, n)
	clear(cur)
	copy(cur, src)
	for _, a := range atoms {
		if s.Canceled() {
			return cur
		}
		out := boolBuf(&s.next, n)
		boundedImageInto(g, cur, a, true, out, s)
		s.cur, s.next = s.next, s.cur
		cur = out
	}
	return cur
}

// BackwardClosureScratch is BackwardClosure with an explicit arena; the
// same sizing and ownership rules as ForwardClosureScratch apply.
func BackwardClosureScratch(g *graph.Graph, dst []bool, atoms []CAtom, s *Scratch) []bool {
	n := g.NumNodes()
	cur := boolBuf(&s.cur, n)
	clear(cur)
	copy(cur, dst)
	for i := len(atoms) - 1; i >= 0; i-- {
		if s.Canceled() {
			return cur
		}
		out := boolBuf(&s.next, n)
		boundedImageInto(g, cur, atoms[i], false, out, s)
		s.cur, s.next = s.next, s.cur
		cur = out
	}
	return cur
}

// BiDistScratch is BiDist with an explicit arena: the two frontier
// queues and distance arrays come from s instead of the heap.
func BiDistScratch(g *graph.Graph, c graph.ColorID, v1, v2 graph.NodeID, s *Scratch) int32 {
	n := g.NumNodes()
	df := int32Buf(&s.d, n)
	db := int32Buf(&s.d2, n)
	for i := 0; i < n; i++ {
		df[i] = graph.Unreachable
		db[i] = graph.Unreachable
	}
	df[v1] = 0
	db[v2] = 0
	fwd := append(s.q1[:0], v1)
	bwd := append(s.q2[:0], v2)
	spare := s.q3[:0]
	var levF, levB int32
	best := graph.Unreachable
	for len(fwd) > 0 || len(bwd) > 0 {
		// Safe cutoff: any path not yet proposed bridges two unfinished
		// levels, so its length is at least levF+levB.
		if best != graph.Unreachable && levF+levB >= best {
			break
		}
		if s.Canceled() {
			// Abandoned query: best may not be the shortest distance yet.
			// Callers that bound the context discard it (and the cache
			// never stores it; see Cache.DistScratch).
			break
		}
		// The adjacency loops are inline (no visitor callbacks) for the
		// same reason as boundedImageInto: escaping closures were a
		// per-call allocation on the cache-miss path.
		forward := len(bwd) == 0 || (len(fwd) > 0 && len(fwd) <= len(bwd))
		if forward {
			next := spare[:0]
			for i, v := range fwd {
				if i&cancelMask == cancelMask && s.Canceled() {
					break
				}
				for _, e := range g.Out(v) {
					if c != graph.AnyColor && e.Color != c {
						continue
					}
					// Candidates are only proposed on edge relaxations,
					// so the v1 == v2 overlap at distance 0 (the empty
					// path) is never counted.
					w := e.To
					if db[w] != graph.Unreachable {
						if cand := df[v] + 1 + db[w]; best == graph.Unreachable || cand < best {
							best = cand
						}
					}
					if df[w] == graph.Unreachable {
						df[w] = df[v] + 1
						next = append(next, w)
					}
				}
			}
			spare, fwd = fwd, next
			levF++
		} else {
			next := spare[:0]
			for i, v := range bwd {
				if i&cancelMask == cancelMask && s.Canceled() {
					break
				}
				for _, e := range g.In(v) {
					if c != graph.AnyColor && e.Color != c {
						continue
					}
					w := e.To
					if df[w] != graph.Unreachable {
						if cand := df[w] + 1 + db[v]; best == graph.Unreachable || cand < best {
							best = cand
						}
					}
					if db[w] == graph.Unreachable {
						db[w] = db[v] + 1
						next = append(next, w)
					}
				}
			}
			spare, bwd = bwd, next
			levB++
		}
	}
	// Keep the (possibly grown) frontier buffers for the next call.
	s.q1, s.q2, s.q3 = fwd, bwd, spare
	return best
}
