package dist

import (
	"sync"

	"regraph/internal/graph"
)

// Filter is a sound negative reachability oracle, the hook through which
// a GRAIL-style interval index (internal/reachidx) fronts the runtime
// search: when MaybeReaches returns false, no non-empty path of that
// color exists and the bi-directional search is skipped entirely.
// Positive answers are "maybe" and fall through to the search.
type Filter interface {
	MaybeReaches(c graph.ColorID, v1, v2 graph.NodeID) bool
}

// Cache is the LRU distance cache of Section 4: single-color distance
// lookups for graphs too large to hold a Matrix. A hit is O(1); a miss
// runs the bi-directional search (BiDist) and caches the result, so
// workloads that re-ask about the same pairs — the paper's "frequently
// asked queries" — approach matrix speed at O(capacity) space.
//
// Cache is safe for concurrent use.
type Cache struct {
	g *graph.Graph

	mu       sync.Mutex
	capacity int
	entries  map[cacheKey]*cacheEntry
	head     *cacheEntry // most recently used
	tail     *cacheEntry // least recently used
	filter   Filter
	hits     int
	misses   int
	filtered int
}

type cacheKey struct {
	c      graph.ColorID
	v1, v2 graph.NodeID
}

type cacheEntry struct {
	key        cacheKey
	d          int32
	prev, next *cacheEntry
}

// NewCache creates a distance cache holding at most capacity pair
// distances (at least one).
func NewCache(g *graph.Graph, capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		g:        g,
		capacity: capacity,
		entries:  make(map[cacheKey]*cacheEntry, capacity),
	}
}

// SetFilter installs a reachability filter consulted before both the
// cache and the search; nil removes it.
func (ca *Cache) SetFilter(f Filter) {
	ca.mu.Lock()
	ca.filter = f
	ca.mu.Unlock()
}

// Dist returns the shortest non-empty distance from v1 to v2 over color c
// (graph.AnyColor for any edge), or graph.Unreachable. Results agree
// exactly with Matrix.Dist. On a miss the search borrows its buffers
// from the package scratch pool; workers that own an arena should call
// DistScratch instead.
func (ca *Cache) Dist(c graph.ColorID, v1, v2 graph.NodeID) int32 {
	return ca.DistScratch(c, v1, v2, nil)
}

// DistScratch is Dist with an explicit search arena for the miss path
// (nil borrows one from the package pool). The cache's own state is
// protected by its mutex either way; the arena is only touched by the
// calling goroutine, so per-worker arenas keep concurrent readers from
// contending on anything but the LRU lock itself.
func (ca *Cache) DistScratch(c graph.ColorID, v1, v2 graph.NodeID, s *Scratch) int32 {
	key := cacheKey{c, v1, v2}
	ca.mu.Lock()
	// The filter check shares the critical section with the map lookup:
	// MaybeReaches is a read-only O(k) probe, and one lock per call keeps
	// the hot path's contention down.
	if ca.filter != nil && !ca.filter.MaybeReaches(c, v1, v2) {
		ca.filtered++
		ca.mu.Unlock()
		return graph.Unreachable
	}
	if e, ok := ca.entries[key]; ok {
		ca.hits++
		ca.moveToFront(e)
		d := e.d
		ca.mu.Unlock()
		return d
	}
	ca.misses++
	ca.mu.Unlock()
	// The search runs outside the lock; concurrent misses on the same
	// pair just compute it twice and store the same value.
	if s == nil {
		s = GetScratch()
		defer PutScratch(s)
	}
	d := BiDistScratch(ca.g, c, v1, v2, s)
	if s.Canceled() {
		// The search was abandoned by a cancelled context bound to s: d is
		// not necessarily the shortest distance, so it must never enter
		// the cache (every entry is exact by contract).
		return d
	}
	ca.mu.Lock()
	if _, ok := ca.entries[key]; !ok {
		e := &cacheEntry{key: key, d: d}
		ca.entries[key] = e
		ca.pushFront(e)
		if len(ca.entries) > ca.capacity {
			ca.evict()
		}
	}
	ca.mu.Unlock()
	return d
}

// Stats returns the hit and miss counts since creation. Filtered pairs
// count as neither: no distance was looked up or computed for them.
func (ca *Cache) Stats() (hits, misses int) {
	ca.mu.Lock()
	defer ca.mu.Unlock()
	return ca.hits, ca.misses
}

// Filtered returns how many lookups the reachability filter refuted
// without a search.
func (ca *Cache) Filtered() int {
	ca.mu.Lock()
	defer ca.mu.Unlock()
	return ca.filtered
}

// ---- intrusive LRU list (callers hold ca.mu) ------------------------------

func (ca *Cache) pushFront(e *cacheEntry) {
	e.prev = nil
	e.next = ca.head
	if ca.head != nil {
		ca.head.prev = e
	}
	ca.head = e
	if ca.tail == nil {
		ca.tail = e
	}
}

func (ca *Cache) unlink(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		ca.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		ca.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (ca *Cache) moveToFront(e *cacheEntry) {
	if ca.head == e {
		return
	}
	ca.unlink(e)
	ca.pushFront(e)
}

func (ca *Cache) evict() {
	lru := ca.tail
	if lru == nil {
		return
	}
	ca.unlink(lru)
	delete(ca.entries, lru.key)
}
