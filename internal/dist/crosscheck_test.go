// Black-box cross-checks of the whole evaluation stack over the dist
// substrate: the three RQ evaluation methods must return identical pair
// sets, and JoinMatch must agree with SplitMatch under every
// configuration, on seeded synthetic graphs with generated workloads.
package dist_test

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"regraph/internal/dist"
	"regraph/internal/gen"
	"regraph/internal/graph"
	"regraph/internal/pattern"
	"regraph/internal/reach"
)

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func pairSet(ps []reach.Pair) string {
	ss := make([]string, len(ps))
	for i, p := range ps {
		ss[i] = fmt.Sprintf("%d->%d", p.From, p.To)
	}
	sort.Strings(ss)
	return fmt.Sprint(ss)
}

// TestRQEvaluatorsAgreeOnSynthetic: EvalMatrix, EvalBFS and EvalBiBFS on
// generated RQ workloads over seeded synthetic graphs.
func TestRQEvaluatorsAgreeOnSynthetic(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		g := gen.Synthetic(seed, 150, 500, 3, gen.DefaultColors)
		mx := dist.NewMatrix(g)
		ca := dist.NewCache(g, 256)
		rng := newRand(seed)
		for k := 0; k < 6; k++ {
			q := gen.RQ(g, 2, 4, 1+k%3, rng)
			a := pairSet(q.EvalMatrix(g, mx))
			b := pairSet(q.EvalBFS(g))
			c := pairSet(q.EvalBiBFS(g, ca))
			if a != b || b != c {
				t.Fatalf("seed %d query %v disagree:\n matrix=%s\n bfs=%s\n bibfs=%s", seed, q, a, b, c)
			}
		}
	}
}

// TestJoinSplitAgreeOnSynthetic: JoinMatch ≡ SplitMatch on generated
// pattern queries, in matrix, cache and plain-search configurations.
func TestJoinSplitAgreeOnSynthetic(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		g := gen.Synthetic(seed, 120, 400, 3, gen.DefaultColors)
		mx := dist.NewMatrix(g)
		ca := dist.NewCache(g, 256)
		rng := newRand(seed * 977)
		for k := 0; k < 4; k++ {
			q := gen.Query(g, gen.Spec{Nodes: 3 + k, Edges: 4 + k, Preds: 2, Bound: 3, Colors: 2}, rng)
			for _, cfg := range []struct {
				name string
				opts pattern.Options
			}{
				{"matrix", pattern.Options{Matrix: mx}},
				{"cache", pattern.Options{Cache: ca}},
				{"plain", pattern.Options{}},
			} {
				join := pattern.JoinMatch(g, q, cfg.opts)
				split := pattern.SplitMatch(g, q, cfg.opts)
				if !join.Equal(split) {
					t.Fatalf("seed %d %s: JoinMatch != SplitMatch\npattern %v\njoin  %s\nsplit %s",
						seed, cfg.name, q, join.String(g), split.String(g))
				}
			}
		}
	}
}

// TestMatrixAgreesOnRealDatasets spot-checks the matrix against the
// runtime search on the generated Terror dataset.
func TestMatrixAgreesOnRealDatasets(t *testing.T) {
	g := gen.Terror(1)
	mx := dist.NewMatrix(g)
	ic, _ := g.ColorID("ic")
	rng := newRand(11)
	for i := 0; i < 500; i++ {
		v1 := graph.NodeID(rng.Intn(g.NumNodes()))
		v2 := graph.NodeID(rng.Intn(g.NumNodes()))
		if got, want := dist.BiDist(g, ic, v1, v2), mx.Dist(ic, v1, v2); got != want {
			t.Fatalf("BiDist(ic, %d, %d) = %d, matrix %d", v1, v2, got, want)
		}
	}
}
