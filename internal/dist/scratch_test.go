package dist

import (
	"testing"

	"regraph/internal/graph"
	"regraph/internal/rex"
)

// TestClosureShortSource: the closure APIs size their buffers by
// g.NumNodes(), not len(src) — a seed bitset shorter than the node
// count must still reach nodes beyond its length.
func TestClosureShortSource(t *testing.T) {
	g := graph.New()
	a := g.AddNode("a", nil) // node 0
	g.AddNode("b", nil)      // node 1
	c := g.AddNode("c", nil) // node 2
	g.AddEdge(a, c, "e")     // 0 -> 2
	g.AddEdge(c, a, "e")     // 2 -> 0
	atoms, ok := Compile(g, rex.MustParse("e{2}"))
	if !ok {
		t.Fatal("compile failed")
	}
	s := NewScratch()
	res := ForwardClosureScratch(g, []bool{true}, atoms, s)
	if len(res) != g.NumNodes() {
		t.Fatalf("result length %d, want %d", len(res), g.NumNodes())
	}
	// 0 -e-> 2 -e-> 0: within bound 2, both 0 and 2 are reached.
	if !res[0] || !res[2] || res[1] {
		t.Fatalf("ForwardClosureScratch(short src) = %v, want [true false true]", res)
	}
	bres := BackwardClosureScratch(g, []bool{true}, atoms, s)
	if len(bres) != g.NumNodes() || !bres[0] || !bres[2] || bres[1] {
		t.Fatalf("BackwardClosureScratch(short dst) = %v, want [true false true]", bres)
	}
	if got := ForwardClosure(g, []bool{true}, atoms); len(got) != g.NumNodes() || !got[2] {
		t.Fatalf("ForwardClosure(short src) = %v", got)
	}
}
