package dist

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"regraph/internal/graph"
	"regraph/internal/rex"
)

func ctxTestGraph() (*graph.Graph, []CAtom) {
	r := rand.New(rand.NewSource(1))
	g := graph.New()
	const n = 300
	for i := 0; i < n; i++ {
		g.AddNode(fmt.Sprintf("n%d", i), nil)
	}
	colors := []string{"a", "b"}
	for i := 0; i < 1200; i++ {
		g.AddEdge(graph.NodeID(r.Intn(n)), graph.NodeID(r.Intn(n)), colors[r.Intn(2)])
	}
	atoms, ok := Compile(g, rex.MustParse("a+ b+"))
	if !ok {
		panic("compile failed")
	}
	return g, atoms
}

// TestClosureCtxLive: with a live context the ctx variants agree exactly
// with the plain closures.
func TestClosureCtxLive(t *testing.T) {
	g, atoms := ctxTestGraph()
	s := NewScratch()
	src := make([]bool, g.NumNodes())
	src[0], src[17] = true, true

	want := ForwardClosure(g, src, atoms)
	got, err := ForwardClosureCtx(context.Background(), g, src, atoms, s)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("forward closure differs at node %d", i)
		}
	}
	wantB := BackwardClosure(g, src, atoms)
	gotB, err := BackwardClosureCtx(context.Background(), g, src, atoms, s)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantB {
		if wantB[i] != gotB[i] {
			t.Fatalf("backward closure differs at node %d", i)
		}
	}
}

// TestClosureCtxCancelled: a dead context aborts the search with its
// error, and the arena is left unbound (a later plain call works).
func TestClosureCtxCancelled(t *testing.T) {
	g, atoms := ctxTestGraph()
	s := NewScratch()
	src := make([]bool, g.NumNodes())
	src[0] = true
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := ForwardClosureCtx(ctx, g, src, atoms, s); err != context.Canceled {
		t.Fatalf("forward: err = %v, want context.Canceled", err)
	}
	if _, err := BackwardClosureCtx(ctx, g, src, atoms, s); err != context.Canceled {
		t.Fatalf("backward: err = %v, want context.Canceled", err)
	}
	if _, err := BiDistCtx(ctx, g, graph.AnyColor, 0, 5, s); err != context.Canceled {
		t.Fatalf("bidist: err = %v, want context.Canceled", err)
	}
	// The binding must not leak into subsequent plain calls on the arena.
	if s.Canceled() {
		t.Fatal("arena still reports cancelled after unbind")
	}
	want := ForwardClosure(g, src, atoms)
	got := ForwardClosureScratch(g, src, atoms, s)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("post-cancel plain closure differs at node %d", i)
		}
	}
}

// TestCacheDistCtxNoPollution: a cancelled miss must not store a
// (possibly wrong) distance; the next lookup recomputes and agrees with
// the uncached search.
func TestCacheDistCtxNoPollution(t *testing.T) {
	g, _ := ctxTestGraph()
	ca := NewCache(g, 64)
	s := NewScratch()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := ca.DistCtx(ctx, graph.AnyColor, 3, 250, s); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if hits, misses := ca.Stats(); hits != 0 || misses != 1 {
		t.Fatalf("stats after cancelled miss: hits=%d misses=%d", hits, misses)
	}
	want := BiDist(g, graph.AnyColor, 3, 250)
	got, err := ca.DistCtx(context.Background(), graph.AnyColor, 3, 250, s)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("post-cancel dist = %d, want %d", got, want)
	}
	// And the good value is now cached.
	if d := ca.Dist(graph.AnyColor, 3, 250); d != want {
		t.Fatalf("cached dist = %d, want %d", d, want)
	}
}
