package dist

import (
	"runtime"
	"sync"

	"regraph/internal/graph"
)

// Matrix is the per-color all-pairs distance index of Section 4: one
// layer per edge color plus a wildcard layer, (m+1)·|V|² int32 entries.
// Each layer is a flat row-major []int32, so Dist is a single
// bounds-checked load — the paper's O(1) lookup made literal. Entry
// (v1, v2) holds the length of the shortest non-empty path from v1 to v2
// over the layer's edges, or graph.Unreachable.
//
// A Matrix is immutable after construction and safe for concurrent use.
type Matrix struct {
	n      int
	layers [][]int32 // one per color, wildcard layer last
}

// csr is a compact forward adjacency for one color layer, built once per
// layer so the per-source BFS workers never touch the graph's lazy
// (non-thread-safe) color index.
type csr struct {
	rowStart []int32
	dst      []graph.NodeID
}

func buildCSR(g *graph.Graph, c graph.ColorID) csr {
	n := g.NumNodes()
	cs := csr{rowStart: make([]int32, n+1)}
	for v := 0; v < n; v++ {
		deg := 0
		for _, e := range g.Out(graph.NodeID(v)) {
			if c == graph.AnyColor || e.Color == c {
				deg++
			}
		}
		cs.rowStart[v+1] = cs.rowStart[v] + int32(deg)
	}
	cs.dst = make([]graph.NodeID, cs.rowStart[n])
	fill := make([]int32, n)
	copy(fill, cs.rowStart[:n])
	for v := 0; v < n; v++ {
		for _, e := range g.Out(graph.NodeID(v)) {
			if c == graph.AnyColor || e.Color == c {
				cs.dst[fill[v]] = e.To
				fill[v]++
			}
		}
	}
	return cs
}

// NewMatrix precomputes every layer with one BFS per (layer, source) in
// O((m+1)·|V|·(|V|+|E|)) work, parallelized across GOMAXPROCS workers.
// Work is sharded by source-row chunks within each layer, so construction
// scales with cores even on graphs with few colors.
func NewMatrix(g *graph.Graph) *Matrix {
	return newMatrix(g, runtime.GOMAXPROCS(0))
}

// newMatrixSerial is the single-threaded build, kept as the baseline for
// the parallel-speedup benchmark and as a cross-check oracle in tests.
func newMatrixSerial(g *graph.Graph) *Matrix {
	return newMatrix(g, 1)
}

func newMatrix(g *graph.Graph, workers int) *Matrix {
	n := g.NumNodes()
	m := g.NumColors()
	mx := &Matrix{n: n, layers: make([][]int32, m+1)}
	adjs := make([]csr, m+1)
	for l := 0; l <= m; l++ {
		c := graph.ColorID(l)
		if l == m {
			c = graph.AnyColor
		}
		adjs[l] = buildCSR(g, c)
		mx.layers[l] = make([]int32, n*n)
	}
	if n == 0 {
		return mx
	}

	type task struct{ layer, lo, hi int }
	const chunk = 64
	tasks := make(chan task, workers)
	var wg sync.WaitGroup
	if workers < 1 {
		workers = 1
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			queue := make([]graph.NodeID, 0, n)
			for t := range tasks {
				for src := t.lo; src < t.hi; src++ {
					bfsRow(adjs[t.layer], graph.NodeID(src),
						mx.layers[t.layer][src*n:(src+1)*n], queue)
				}
			}
		}()
	}
	for l := 0; l <= m; l++ {
		for lo := 0; lo < n; lo += chunk {
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			tasks <- task{l, lo, hi}
		}
	}
	close(tasks)
	wg.Wait()
	return mx
}

// bfsRow fills one matrix row: shortest non-empty distances from src over
// one layer. row is the src-th slice of the flat layer; queue is a
// reusable scratch buffer.
func bfsRow(adj csr, src graph.NodeID, row []int32, queue []graph.NodeID) {
	for i := range row {
		row[i] = graph.Unreachable
	}
	row[src] = 0
	queue = append(queue[:0], src)
	// Shortest non-empty cycle through src: every reachable node is
	// dequeued exactly once with all its out-edges scanned, so edges
	// closing back on src are all observed.
	cycle := graph.Unreachable
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		dv := row[v]
		for _, w := range adj.dst[adj.rowStart[v]:adj.rowStart[v+1]] {
			if w == src && (cycle == graph.Unreachable || dv+1 < cycle) {
				cycle = dv + 1
			}
			if row[w] == graph.Unreachable {
				row[w] = dv + 1
				queue = append(queue, w)
			}
		}
	}
	row[src] = cycle
}

// Dist returns the shortest non-empty distance from v1 to v2 over edges
// of color c (any edge when c is graph.AnyColor), or graph.Unreachable.
func (mx *Matrix) Dist(c graph.ColorID, v1, v2 graph.NodeID) int32 {
	l := mx.layers[len(mx.layers)-1]
	if c != graph.AnyColor {
		l = mx.layers[c]
	}
	return l[int(v1)*mx.n+int(v2)]
}

// Size returns the matrix memory footprint in bytes — the
// O((m+1)·|V|²) space cost the cache-based method avoids.
func (mx *Matrix) Size() int64 {
	var total int64
	for _, l := range mx.layers {
		total += int64(len(l)) * 4
	}
	return total
}
