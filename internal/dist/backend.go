package dist

import (
	"context"

	"regraph/internal/graph"
)

// Backend is the engine-facing distance oracle: the one primitive every
// evaluation method reduces to — the shortest non-empty distance from v1
// to v2 over one color layer (graph.AnyColor for any edge), or
// graph.Unreachable. Matrix, Cache and TwoHop all satisfy it, so the
// evaluators (reach.StreamBackend, pattern.Options.Backend) and the
// engine select among them without knowing which one they hold.
//
// Contract:
//
//   - Results are exact and identical across implementations: for any
//     graph, Backend.Dist must agree bit-for-bit with Matrix.Dist.
//   - Implementations are safe for concurrent use by multiple
//     goroutines.
//   - DistScratch is Dist with an explicit per-worker search arena for
//     implementations that search on demand (Cache misses); index-backed
//     implementations ignore s. A nil s borrows from the package pool.
//   - Cancellation flows through the arena: callers that need it bind a
//     context with Scratch.BindContext (as reach.StreamBackend does) and
//     searching implementations observe it at their checkpoints. O(1)
//     and O(label) lookups ignore it — they finish faster than a poll.
type Backend interface {
	Dist(c graph.ColorID, v1, v2 graph.NodeID) int32
	DistScratch(c graph.ColorID, v1, v2 graph.NodeID, s *Scratch) int32
}

// Statically assert the three shipped backends satisfy the interface.
var (
	_ Backend = (*Matrix)(nil)
	_ Backend = (*Cache)(nil)
	_ Backend = (*TwoHop)(nil)
)

// DistScratch satisfies Backend for the precomputed matrix; the lookup
// is O(1), so the arena is ignored.
func (mx *Matrix) DistScratch(c graph.ColorID, v1, v2 graph.NodeID, _ *Scratch) int32 {
	return mx.Dist(c, v1, v2)
}

// DistCtx is the matrix's ctx-aware face, for symmetry with
// Cache.DistCtx: the lookup cannot be abandoned, so the error is ctx's
// error only when it was already cancelled on entry.
func (mx *Matrix) DistCtx(ctx context.Context, c graph.ColorID, v1, v2 graph.NodeID, _ *Scratch) (int32, error) {
	if ctx != nil && ctx.Err() != nil {
		return graph.Unreachable, ctx.Err()
	}
	return mx.Dist(c, v1, v2), nil
}

// MatrixBytes predicts the distance-matrix footprint for a graph with
// the given node and color counts: (m+1)·|V|²·4 bytes. This is the
// quantity the engine's automatic backend selection compares against
// its memory budget — at large |V| it crosses any real budget long
// before allocation would be attempted.
func MatrixBytes(nodes, colors int) int64 {
	n := int64(nodes)
	return int64(colors+1) * n * n * 4
}

// PredictMatrixBytes is MatrixBytes for a concrete graph.
func PredictMatrixBytes(g *graph.Graph) int64 {
	return MatrixBytes(g.NumNodes(), g.NumColors())
}
