package dist

import (
	"context"

	"regraph/internal/graph"
)

// This file is the context-aware face of the runtime search primitives.
// The underlying loops (boundedImageInto, BiDistScratch, the closure
// chains) poll a context bound to their Scratch at periodic checkpoints
// (every cancelMask+1 node expansions and between atoms/levels), so an
// abandoned query stops burning its worker within microseconds instead
// of finishing a possibly graph-sized BFS. These wrappers bind the
// context for one call and translate "abandoned" into the context's
// error; evaluators that make many search calls per query (internal/
// reach, internal/pattern) instead bind once with Scratch.BindContext
// and check Scratch.Canceled at their own loop boundaries.

// ForwardClosureCtx is ForwardClosureScratch with cancellation: when ctx
// is cancelled mid-search the closure is abandoned and ctx's error is
// returned; the returned slice is then garbage and must be ignored. The
// result slice is owned by s exactly as with ForwardClosureScratch.
func ForwardClosureCtx(ctx context.Context, g *graph.Graph, src []bool, atoms []CAtom, s *Scratch) ([]bool, error) {
	unbind := s.BindContext(ctx)
	defer unbind()
	res := ForwardClosureScratch(g, src, atoms, s)
	if s.Canceled() {
		return nil, ctx.Err()
	}
	return res, nil
}

// BackwardClosureCtx is BackwardClosureScratch with cancellation; same
// contract as ForwardClosureCtx.
func BackwardClosureCtx(ctx context.Context, g *graph.Graph, dst []bool, atoms []CAtom, s *Scratch) ([]bool, error) {
	unbind := s.BindContext(ctx)
	defer unbind()
	res := BackwardClosureScratch(g, dst, atoms, s)
	if s.Canceled() {
		return nil, ctx.Err()
	}
	return res, nil
}

// BiDistCtx is BiDistScratch with cancellation: the frontier expansion
// observes ctx between levels and every cancelMask+1 expansions within a
// level. On cancellation the returned distance is meaningless and ctx's
// error is non-nil.
func BiDistCtx(ctx context.Context, g *graph.Graph, c graph.ColorID, v1, v2 graph.NodeID, s *Scratch) (int32, error) {
	unbind := s.BindContext(ctx)
	defer unbind()
	d := BiDistScratch(g, c, v1, v2, s)
	if s.Canceled() {
		return graph.Unreachable, ctx.Err()
	}
	return d, nil
}

// DistCtx is Cache.DistScratch with cancellation: a hit is returned
// immediately; a miss runs the bi-directional search under ctx, and a
// search abandoned by cancellation is neither returned nor stored (the
// cache only ever holds exact distances).
func (ca *Cache) DistCtx(ctx context.Context, c graph.ColorID, v1, v2 graph.NodeID, s *Scratch) (int32, error) {
	if s == nil {
		s = GetScratch()
		defer PutScratch(s)
	}
	unbind := s.BindContext(ctx)
	defer unbind()
	d := ca.DistScratch(c, v1, v2, s)
	if s.Canceled() {
		return graph.Unreachable, ctx.Err()
	}
	return d, nil
}
