package dist

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"regraph/internal/graph"
	"regraph/internal/reachidx"
)

// TestTwoHopMatchesMatrix: the three backends must agree bit-for-bit on
// every (layer, pair) — including the non-empty diagonal and
// unreachable pairs — over random graphs. This is the Backend
// contract's equivalence clause made executable.
func TestTwoHopMatchesMatrix(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randGraph(r, 1+r.Intn(30), r.Intn(90), []string{"a", "b", "c"})
		mx := NewMatrix(g)
		th := NewTwoHop(g)
		ca := NewCache(g, 1<<12)
		for _, c := range allLayers(g) {
			for v1 := 0; v1 < g.NumNodes(); v1++ {
				for v2 := 0; v2 < g.NumNodes(); v2++ {
					want := mx.Dist(c, graph.NodeID(v1), graph.NodeID(v2))
					if got := th.Dist(c, graph.NodeID(v1), graph.NodeID(v2)); got != want {
						t.Logf("seed %d: twohop layer %d pair (%d,%d) = %d, matrix %d", seed, c, v1, v2, got, want)
						return false
					}
					if got := ca.Dist(c, graph.NodeID(v1), graph.NodeID(v2)); got != want {
						t.Logf("seed %d: cache layer %d pair (%d,%d) = %d, matrix %d", seed, c, v1, v2, got, want)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestTwoHopBackendInterface: all three backends answer identically
// through the Backend interface with and without an arena.
func TestTwoHopBackendInterface(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	g := randGraph(r, 25, 70, []string{"x", "y"})
	mx := NewMatrix(g)
	backends := []Backend{mx, NewTwoHop(g), NewCache(g, 64)}
	s := NewScratch()
	for _, c := range allLayers(g) {
		for v1 := 0; v1 < g.NumNodes(); v1++ {
			for v2 := 0; v2 < g.NumNodes(); v2++ {
				want := mx.Dist(c, graph.NodeID(v1), graph.NodeID(v2))
				for i, be := range backends {
					if got := be.DistScratch(c, graph.NodeID(v1), graph.NodeID(v2), s); got != want {
						t.Fatalf("backend %d layer %d pair (%d,%d) = %d, want %d", i, c, v1, v2, got, want)
					}
				}
			}
		}
	}
}

// TestTwoHopFilter: with the GRAIL interval index installed as a front
// filter the answers must not change (it is a sound negative-only
// oracle), and refuted pairs must be counted.
func TestTwoHopFilter(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	// Sparse graph: plenty of genuinely unreachable pairs to refute.
	g := randGraph(r, 40, 30, []string{"a", "b"})
	mx := NewMatrix(g)
	th := NewTwoHop(g)
	th.SetFilter(reachidx.Build(g, 2))
	for _, c := range allLayers(g) {
		for v1 := 0; v1 < g.NumNodes(); v1++ {
			for v2 := 0; v2 < g.NumNodes(); v2++ {
				want := mx.Dist(c, graph.NodeID(v1), graph.NodeID(v2))
				if got := th.Dist(c, graph.NodeID(v1), graph.NodeID(v2)); got != want {
					t.Fatalf("filtered twohop layer %d pair (%d,%d) = %d, want %d", c, v1, v2, got, want)
				}
			}
		}
	}
	if th.Filtered() == 0 {
		t.Fatal("filter never fired on a sparse graph")
	}
	th.SetFilter(nil)
	if got := th.Dist(graph.AnyColor, 0, 1); got != mx.Dist(graph.AnyColor, 0, 1) {
		t.Fatalf("after removing filter: got %d", got)
	}
}

// TestTwoHopCtxCancel: a context cancelled before/during construction
// must abort the build with the context's error, not return a partial
// index.
func TestTwoHopCtxCancel(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	g := randGraph(r, 60, 200, []string{"a", "b", "c"})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	th, err := NewTwoHopCtx(ctx, g)
	if th != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled build: th=%v err=%v", th, err)
	}
}

// TestTwoHopBudget: a budget far below the label footprint aborts with
// ErrTwoHopBudget; a generous budget builds the full, correct index.
func TestTwoHopBudget(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	g := randGraph(r, 50, 150, []string{"a", "b"})
	if th, err := NewTwoHopBudget(context.Background(), g, 64); th != nil || !errors.Is(err, ErrTwoHopBudget) {
		t.Fatalf("tiny budget: th=%v err=%v", th, err)
	}
	th, err := NewTwoHopBudget(context.Background(), g, 1<<30)
	if err != nil {
		t.Fatalf("generous budget: %v", err)
	}
	if th.Size() > 1<<30 || th.Entries() == 0 {
		t.Fatalf("implausible index: size=%d entries=%d", th.Size(), th.Entries())
	}
	mx := NewMatrix(g)
	for _, c := range allLayers(g) {
		for v1 := 0; v1 < g.NumNodes(); v1++ {
			for v2 := 0; v2 < g.NumNodes(); v2++ {
				if th.Dist(c, graph.NodeID(v1), graph.NodeID(v2)) != mx.Dist(c, graph.NodeID(v1), graph.NodeID(v2)) {
					t.Fatalf("budgeted build differs at layer %d pair (%d,%d)", c, v1, v2)
				}
			}
		}
	}
}

// TestTwoHopConcurrent: one shared index queried from many goroutines
// (run under -race in CI) — TwoHop is immutable after construction, so
// concurrent readers must see identical answers with no synchronization.
func TestTwoHopConcurrent(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	g := randGraph(r, 40, 160, []string{"a", "b", "c"})
	mx := NewMatrix(g)
	th := NewTwoHop(g)
	th.SetFilter(reachidx.Build(g, 2))
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rr := rand.New(rand.NewSource(seed))
			s := NewScratch()
			layers := allLayers(g)
			for i := 0; i < 2000; i++ {
				c := layers[rr.Intn(len(layers))]
				v1 := graph.NodeID(rr.Intn(g.NumNodes()))
				v2 := graph.NodeID(rr.Intn(g.NumNodes()))
				if got, want := th.DistScratch(c, v1, v2, s), mx.Dist(c, v1, v2); got != want {
					select {
					case errs <- "concurrent mismatch":
					default:
					}
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}
}

// TestMatrixBytes: the engine's auto-selection quantity must match the
// actual allocation Matrix makes.
func TestMatrixBytes(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	g := randGraph(r, 17, 40, []string{"a", "b", "c"})
	if got, want := PredictMatrixBytes(g), NewMatrix(g).Size(); got != want {
		t.Fatalf("PredictMatrixBytes = %d, Matrix.Size = %d", got, want)
	}
}

// TestTwoHopDistCtx: already-cancelled contexts surface the error; live
// ones pass through to the lookup.
func TestTwoHopDistCtx(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	g := randGraph(r, 10, 25, []string{"a"})
	th := NewTwoHop(g)
	mx := NewMatrix(g)
	d, err := th.DistCtx(context.Background(), graph.AnyColor, 0, 1, nil)
	if err != nil || d != mx.Dist(graph.AnyColor, 0, 1) {
		t.Fatalf("live ctx: d=%d err=%v", d, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := th.DistCtx(ctx, graph.AnyColor, 0, 1, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ctx: err=%v", err)
	}
	if _, err := mx.DistCtx(ctx, graph.AnyColor, 0, 1, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("matrix cancelled ctx: err=%v", err)
	}
}
