// Package dist is the distance substrate shared by every query class of
// the paper (Section 4): the per-color all-pairs distance matrix, the LRU
// distance cache backed by bi-directional search, and the bounded
// multi-source BFS closures used by the runtime evaluation methods.
//
// All distances follow the paper's path semantics: paths are non-empty,
// so the distance from a node to itself is the length of its shortest
// non-empty cycle (or Unreachable). Every operation is parameterized by a
// color layer: a concrete graph.ColorID restricts paths to edges of that
// color, graph.AnyColor (the wildcard "_") allows every edge.
//
// A subclass-F expression is compiled into a chain of CAtom values, one
// per atom; an atom is satisfied by a pair (v1, v2) when the shortest
// non-empty path from v1 to v2 over the atom's color layer has length
// within the atom's bound. See DESIGN.md for the layer layout and the
// concurrency model of the matrix build.
package dist

import (
	"regraph/internal/graph"
	"regraph/internal/rex"
)

// cancelMask strides the cancellation checkpoints of the innermost BFS
// loops: a bound context is polled once per cancelMask+1 node
// expansions, keeping the checkpoint a mask-and-branch on the hot path
// while an abandoned query still stops within microseconds.
const cancelMask = 1<<10 - 1

// CAtom is a compiled subclass-F atom: the interned color layer it runs
// on and its occurrence bound (rex.Unbounded for "c+").
type CAtom struct {
	Color graph.ColorID
	Max   int
}

// Sat reports whether a shortest non-empty distance d satisfies the
// atom's bound: 1 <= d <= Max (any d >= 1 when unbounded). Unreachable
// distances (negative) never satisfy.
func (a CAtom) Sat(d int32) bool {
	if d < 1 {
		return false
	}
	// Compare in int: bounds above MaxInt32 parse fine on 64-bit and must
	// not truncate negative.
	return a.Max == rex.Unbounded || int(d) <= a.Max
}

// SatMatrix is Sat against the precomputed distance matrix: a single O(1)
// lookup per pair.
func (a CAtom) SatMatrix(mx *Matrix, v1, v2 graph.NodeID) bool {
	return a.Sat(mx.Dist(a.Color, v1, v2))
}

// Compile resolves an expression's atoms against a graph's interned
// colors. ok is false when the expression mentions a concrete color the
// graph does not have (its language is then empty over this graph) or
// when the expression is the invalid zero value.
func Compile(g *graph.Graph, e rex.Expr) ([]CAtom, bool) {
	atoms := e.Atoms()
	if len(atoms) == 0 {
		return nil, false
	}
	out := make([]CAtom, len(atoms))
	for i, a := range atoms {
		c, ok := g.ColorID(a.Color)
		if !ok {
			return nil, false
		}
		out[i] = CAtom{Color: c, Max: a.Max}
	}
	return out, true
}

// boundedImageInto computes one atom step of a closure: out is filled
// with the set of nodes w with a non-empty path from some node of src to
// w, over the atom's color layer, of length within the atom's bound.
// With forward=false, paths run from w into src instead (the backward
// image). out must not alias src; BFS buffers come from s.
//
// The adjacency loops scan g.Out/g.In directly — never the graph's lazy
// per-color index, so concurrent readers stay race-free — and are
// written inline rather than through visitor callbacks: the escaping
// closures were the dominant per-query allocation (one closure plus
// capture cells per BFS), and this is the innermost loop of every
// runtime-search evaluation.
func boundedImageInto(g *graph.Graph, src []bool, a CAtom, forward bool, out []bool, s *Scratch) {
	n := g.NumNodes()
	limit := int32(n) // paths beyond |V| hops revisit a node
	if a.Max != rex.Unbounded && a.Max < n {
		limit = int32(a.Max)
	}
	c := a.Color
	// Multi-source BFS from src; d holds the shortest distance from the
	// set (0 on the sources themselves).
	d := int32Buf(&s.d, n)
	for i := range d {
		d[i] = graph.Unreachable
	}
	queue := s.queue[:0]
	for v := range src {
		if src[v] {
			d[v] = 0
			queue = append(queue, graph.NodeID(v))
		}
	}
	for head := 0; head < len(queue); head++ {
		if head&cancelMask == cancelMask && s.Canceled() {
			// Abandoned query: stop expanding. out is garbage from here on;
			// the evaluator that bound the context discards it.
			s.queue = queue
			return
		}
		v := queue[head]
		dv := d[v]
		if dv >= limit {
			continue
		}
		var edges []graph.Edge
		if forward {
			edges = g.Out(v)
		} else {
			edges = g.In(v)
		}
		for _, e := range edges {
			if c != graph.AnyColor && e.Color != c {
				continue
			}
			if w := e.To; d[w] == graph.Unreachable {
				d[w] = dv + 1
				queue = append(queue, w)
			}
		}
	}
	s.queue = queue // keep the grown buffer
	for v := range out {
		out[v] = d[v] >= 1 && d[v] <= limit
	}
	// Source nodes have d = 0, but the atom requires a non-empty path:
	// the shortest one ends with an edge from some reached node, so it is
	// 1 + min over the node's in-neighbors (over this layer) of d.
	for v := range src {
		if !src[v] || out[v] {
			continue
		}
		best := graph.Unreachable
		var edges []graph.Edge
		if forward {
			edges = g.In(graph.NodeID(v))
		} else {
			edges = g.Out(graph.NodeID(v))
		}
		for _, e := range edges {
			if c != graph.AnyColor && e.Color != c {
				continue
			}
			if dp := d[e.To]; dp != graph.Unreachable && (best == graph.Unreachable || dp+1 < best) {
				best = dp + 1
			}
		}
		if best >= 1 && best <= limit {
			out[v] = true
		}
	}
}

// ForwardClosure pushes an atom chain forward from a source set: the
// result (always g.NumNodes() long) marks every node reachable from
// some source via a path whose color string matches the chain. An empty
// chain returns the sources themselves (the empty path). The returned
// slice is freshly allocated; hot paths should use
// ForwardClosureScratch instead.
func ForwardClosure(g *graph.Graph, src []bool, atoms []CAtom) []bool {
	s := GetScratch()
	defer PutScratch(s)
	res := ForwardClosureScratch(g, src, atoms, s)
	out := make([]bool, len(res))
	copy(out, res)
	return out
}

// BackwardClosure pushes an atom chain backward from a destination set:
// the result (always g.NumNodes() long) marks every node from which
// some destination is reachable via a path matching the chain. See
// ForwardClosure about allocation.
func BackwardClosure(g *graph.Graph, dst []bool, atoms []CAtom) []bool {
	s := GetScratch()
	defer PutScratch(s)
	res := BackwardClosureScratch(g, dst, atoms, s)
	out := make([]bool, len(res))
	copy(out, res)
	return out
}

// BiDist computes the shortest non-empty distance from v1 to v2 over one
// color layer with bi-directional BFS: the two frontiers are expanded
// level by level (smaller side first) and every scanned edge that bridges
// them proposes a path length. This is the runtime search the LRU cache
// falls back to on a miss. Buffers come from the package scratch pool;
// hot paths with a worker arena should call BiDistScratch directly.
func BiDist(g *graph.Graph, c graph.ColorID, v1, v2 graph.NodeID) int32 {
	s := GetScratch()
	defer PutScratch(s)
	return BiDistScratch(g, c, v1, v2, s)
}

// BiReach reports whether some path from v1 to v2 matches the whole atom
// chain, by runtime search only: the chain is split in the middle, the
// prefix is pushed forward from v1, the suffix backward from v2, and the
// two node sets are intersected.
func BiReach(g *graph.Graph, atoms []CAtom, v1, v2 graph.NodeID) bool {
	if len(atoms) == 0 {
		return v1 == v2
	}
	s := GetScratch()
	defer PutScratch(s)
	if len(atoms) == 1 {
		return atoms[0].Sat(BiDistScratch(g, atoms[0].Color, v1, v2, s))
	}
	n := g.NumNodes()
	mid := len(atoms) / 2
	seed := s.Seed(n)
	seed[v1] = true
	// The forward prefix closure must survive the backward suffix closure
	// (both ping-pong through s.cur/s.next), so park it in a retained
	// bitset for the intersection.
	fwd := s.Bitset(n)
	copy(fwd, ForwardClosureScratch(g, seed, atoms[:mid], s))
	defer s.Recycle(fwd)
	seed[v1] = false
	seed[v2] = true
	bwd := BackwardClosureScratch(g, seed, atoms[mid:], s)
	for i := range fwd {
		if fwd[i] && bwd[i] {
			return true
		}
	}
	return false
}

// ReachMatrix is BiReach against the precomputed matrix: the reachable
// set is advanced one atom at a time with O(1) pair lookups, finishing
// with a membership test against v2.
func ReachMatrix(g *graph.Graph, mx *Matrix, atoms []CAtom, v1, v2 graph.NodeID) bool {
	if len(atoms) == 0 {
		return v1 == v2
	}
	if len(atoms) == 1 {
		return atoms[0].SatMatrix(mx, v1, v2)
	}
	n := g.NumNodes()
	cur := []graph.NodeID{v1}
	for i, a := range atoms {
		if i == len(atoms)-1 {
			for _, v := range cur {
				if a.SatMatrix(mx, v, v2) {
					return true
				}
			}
			return false
		}
		var next []graph.NodeID
		for w := 0; w < n; w++ {
			for _, v := range cur {
				if a.SatMatrix(mx, v, graph.NodeID(w)) {
					next = append(next, graph.NodeID(w))
					break
				}
			}
		}
		if len(next) == 0 {
			return false
		}
		cur = next
	}
	return false
}
