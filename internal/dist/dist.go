// Package dist is the distance substrate shared by every query class of
// the paper (Section 4): the per-color all-pairs distance matrix, the LRU
// distance cache backed by bi-directional search, and the bounded
// multi-source BFS closures used by the runtime evaluation methods.
//
// All distances follow the paper's path semantics: paths are non-empty,
// so the distance from a node to itself is the length of its shortest
// non-empty cycle (or Unreachable). Every operation is parameterized by a
// color layer: a concrete graph.ColorID restricts paths to edges of that
// color, graph.AnyColor (the wildcard "_") allows every edge.
//
// A subclass-F expression is compiled into a chain of CAtom values, one
// per atom; an atom is satisfied by a pair (v1, v2) when the shortest
// non-empty path from v1 to v2 over the atom's color layer has length
// within the atom's bound. See DESIGN.md for the layer layout and the
// concurrency model of the matrix build.
package dist

import (
	"regraph/internal/graph"
	"regraph/internal/rex"
)

// CAtom is a compiled subclass-F atom: the interned color layer it runs
// on and its occurrence bound (rex.Unbounded for "c+").
type CAtom struct {
	Color graph.ColorID
	Max   int
}

// Sat reports whether a shortest non-empty distance d satisfies the
// atom's bound: 1 <= d <= Max (any d >= 1 when unbounded). Unreachable
// distances (negative) never satisfy.
func (a CAtom) Sat(d int32) bool {
	if d < 1 {
		return false
	}
	// Compare in int: bounds above MaxInt32 parse fine on 64-bit and must
	// not truncate negative.
	return a.Max == rex.Unbounded || int(d) <= a.Max
}

// SatMatrix is Sat against the precomputed distance matrix: a single O(1)
// lookup per pair.
func (a CAtom) SatMatrix(mx *Matrix, v1, v2 graph.NodeID) bool {
	return a.Sat(mx.Dist(a.Color, v1, v2))
}

// Compile resolves an expression's atoms against a graph's interned
// colors. ok is false when the expression mentions a concrete color the
// graph does not have (its language is then empty over this graph) or
// when the expression is the invalid zero value.
func Compile(g *graph.Graph, e rex.Expr) ([]CAtom, bool) {
	atoms := e.Atoms()
	if len(atoms) == 0 {
		return nil, false
	}
	out := make([]CAtom, len(atoms))
	for i, a := range atoms {
		c, ok := g.ColorID(a.Color)
		if !ok {
			return nil, false
		}
		out[i] = CAtom{Color: c, Max: a.Max}
	}
	return out, true
}

// eachSucc visits the successors of v over one color layer by scanning
// the adjacency list directly. This deliberately avoids the graph's lazy
// per-color index so concurrent readers stay race-free.
func eachSucc(g *graph.Graph, v graph.NodeID, c graph.ColorID, fn func(graph.NodeID)) {
	for _, e := range g.Out(v) {
		if c == graph.AnyColor || e.Color == c {
			fn(e.To)
		}
	}
}

// eachPred visits the predecessors of v over one color layer.
func eachPred(g *graph.Graph, v graph.NodeID, c graph.ColorID, fn func(graph.NodeID)) {
	for _, e := range g.In(v) {
		if c == graph.AnyColor || e.Color == c {
			fn(e.To)
		}
	}
}

// boundedImage computes one atom step of a closure: the set of nodes w
// with a non-empty path from some node of src to w, over the atom's color
// layer, of length within the atom's bound. With forward=false, paths run
// from w into src instead (the backward image).
func boundedImage(g *graph.Graph, src []bool, a CAtom, forward bool) []bool {
	n := g.NumNodes()
	limit := int32(n) // paths beyond |V| hops revisit a node
	if a.Max != rex.Unbounded && a.Max < n {
		limit = int32(a.Max)
	}
	step := eachSucc
	back := eachPred
	if !forward {
		step, back = eachPred, eachSucc
	}
	// Multi-source BFS from src; d holds the shortest distance from the
	// set (0 on the sources themselves).
	d := make([]int32, n)
	for i := range d {
		d[i] = graph.Unreachable
	}
	var queue []graph.NodeID
	for v := range src {
		if src[v] {
			d[v] = 0
			queue = append(queue, graph.NodeID(v))
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if d[v] >= limit {
			continue
		}
		step(g, v, a.Color, func(w graph.NodeID) {
			if d[w] == graph.Unreachable {
				d[w] = d[v] + 1
				queue = append(queue, w)
			}
		})
	}
	out := make([]bool, n)
	for v := range out {
		if d[v] >= 1 && d[v] <= limit {
			out[v] = true
		}
	}
	// Source nodes have d = 0, but the atom requires a non-empty path:
	// the shortest one ends with an edge from some reached node, so it is
	// 1 + min over the node's in-neighbors (over this layer) of d.
	for v := range src {
		if !src[v] || out[v] {
			continue
		}
		best := graph.Unreachable
		back(g, graph.NodeID(v), a.Color, func(p graph.NodeID) {
			if dp := d[p]; dp != graph.Unreachable && (best == graph.Unreachable || dp+1 < best) {
				best = dp + 1
			}
		})
		if best >= 1 && best <= limit {
			out[v] = true
		}
	}
	return out
}

// ForwardClosure pushes an atom chain forward from a source set: the
// result marks every node reachable from some source via a path whose
// color string matches the chain. An empty chain returns the sources
// themselves (the empty path).
func ForwardClosure(g *graph.Graph, src []bool, atoms []CAtom) []bool {
	cur := append([]bool(nil), src...)
	for _, a := range atoms {
		cur = boundedImage(g, cur, a, true)
	}
	return cur
}

// BackwardClosure pushes an atom chain backward from a destination set:
// the result marks every node from which some destination is reachable
// via a path matching the chain.
func BackwardClosure(g *graph.Graph, dst []bool, atoms []CAtom) []bool {
	cur := append([]bool(nil), dst...)
	for i := len(atoms) - 1; i >= 0; i-- {
		cur = boundedImage(g, cur, atoms[i], false)
	}
	return cur
}

// BiDist computes the shortest non-empty distance from v1 to v2 over one
// color layer with bi-directional BFS: the two frontiers are expanded
// level by level (smaller side first) and every scanned edge that bridges
// them proposes a path length. This is the runtime search the LRU cache
// falls back to on a miss.
func BiDist(g *graph.Graph, c graph.ColorID, v1, v2 graph.NodeID) int32 {
	n := g.NumNodes()
	df := make([]int32, n)
	db := make([]int32, n)
	for i := 0; i < n; i++ {
		df[i] = graph.Unreachable
		db[i] = graph.Unreachable
	}
	df[v1] = 0
	db[v2] = 0
	fwd := []graph.NodeID{v1}
	bwd := []graph.NodeID{v2}
	var levF, levB int32
	best := graph.Unreachable
	for len(fwd) > 0 || len(bwd) > 0 {
		// Safe cutoff: any path not yet proposed bridges two unfinished
		// levels, so its length is at least levF+levB.
		if best != graph.Unreachable && levF+levB >= best {
			break
		}
		forward := len(bwd) == 0 || (len(fwd) > 0 && len(fwd) <= len(bwd))
		if forward {
			var next []graph.NodeID
			for _, v := range fwd {
				eachSucc(g, v, c, func(w graph.NodeID) {
					// Candidates are only proposed on edge relaxations,
					// so the v1 == v2 overlap at distance 0 (the empty
					// path) is never counted.
					if db[w] != graph.Unreachable {
						if cand := df[v] + 1 + db[w]; best == graph.Unreachable || cand < best {
							best = cand
						}
					}
					if df[w] == graph.Unreachable {
						df[w] = df[v] + 1
						next = append(next, w)
					}
				})
			}
			fwd = next
			levF++
		} else {
			var next []graph.NodeID
			for _, v := range bwd {
				eachPred(g, v, c, func(w graph.NodeID) {
					if df[w] != graph.Unreachable {
						if cand := df[w] + 1 + db[v]; best == graph.Unreachable || cand < best {
							best = cand
						}
					}
					if db[w] == graph.Unreachable {
						db[w] = db[v] + 1
						next = append(next, w)
					}
				})
			}
			bwd = next
			levB++
		}
	}
	return best
}

// BiReach reports whether some path from v1 to v2 matches the whole atom
// chain, by runtime search only: the chain is split in the middle, the
// prefix is pushed forward from v1, the suffix backward from v2, and the
// two node sets are intersected.
func BiReach(g *graph.Graph, atoms []CAtom, v1, v2 graph.NodeID) bool {
	if len(atoms) == 0 {
		return v1 == v2
	}
	if len(atoms) == 1 {
		return atoms[0].Sat(BiDist(g, atoms[0].Color, v1, v2))
	}
	n := g.NumNodes()
	src := make([]bool, n)
	src[v1] = true
	dst := make([]bool, n)
	dst[v2] = true
	mid := len(atoms) / 2
	fwd := ForwardClosure(g, src, atoms[:mid])
	bwd := BackwardClosure(g, dst, atoms[mid:])
	for i := range fwd {
		if fwd[i] && bwd[i] {
			return true
		}
	}
	return false
}

// ReachMatrix is BiReach against the precomputed matrix: the reachable
// set is advanced one atom at a time with O(1) pair lookups, finishing
// with a membership test against v2.
func ReachMatrix(g *graph.Graph, mx *Matrix, atoms []CAtom, v1, v2 graph.NodeID) bool {
	if len(atoms) == 0 {
		return v1 == v2
	}
	if len(atoms) == 1 {
		return atoms[0].SatMatrix(mx, v1, v2)
	}
	n := g.NumNodes()
	cur := []graph.NodeID{v1}
	for i, a := range atoms {
		if i == len(atoms)-1 {
			for _, v := range cur {
				if a.SatMatrix(mx, v, v2) {
					return true
				}
			}
			return false
		}
		var next []graph.NodeID
		for w := 0; w < n; w++ {
			for _, v := range cur {
				if a.SatMatrix(mx, v, graph.NodeID(w)) {
					next = append(next, graph.NodeID(w))
					break
				}
			}
		}
		if len(next) == 0 {
			return false
		}
		cur = next
	}
	return false
}
