package dist

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"regraph/internal/graph"
	"regraph/internal/rex"
)

// randGraph builds a seeded random graph over the given colors. It is
// hand-rolled here because internal/gen depends (via pattern) on this
// package.
func randGraph(r *rand.Rand, n, e int, colors []string) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddNode(fmt.Sprintf("n%d", i), nil)
	}
	for i := 0; i < e; i++ {
		g.AddEdge(graph.NodeID(r.Intn(n)), graph.NodeID(r.Intn(n)), colors[r.Intn(len(colors))])
	}
	return g
}

func allLayers(g *graph.Graph) []graph.ColorID {
	out := []graph.ColorID{graph.AnyColor}
	for c := 0; c < g.NumColors(); c++ {
		out = append(out, graph.ColorID(c))
	}
	return out
}

// TestParallelMatrixMatchesSerial: the concurrent build must produce
// exactly the serial build's layers.
func TestParallelMatrixMatchesSerial(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randGraph(r, 1+r.Intn(30), r.Intn(90), []string{"a", "b", "c"})
		par := NewMatrix(g)
		ser := newMatrixSerial(g)
		for _, c := range allLayers(g) {
			for v1 := 0; v1 < g.NumNodes(); v1++ {
				for v2 := 0; v2 < g.NumNodes(); v2++ {
					if par.Dist(c, graph.NodeID(v1), graph.NodeID(v2)) != ser.Dist(c, graph.NodeID(v1), graph.NodeID(v2)) {
						t.Logf("seed %d: layer %d pair (%d,%d) differs", seed, c, v1, v2)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestMatrixSelfDistance: the diagonal holds the shortest non-empty
// cycle, not zero.
func TestMatrixSelfDistance(t *testing.T) {
	g := graph.New()
	a := g.AddNode("a", nil)
	b := g.AddNode("b", nil)
	c := g.AddNode("c", nil)
	d := g.AddNode("d", nil)
	g.AddEdge(a, b, "x")
	g.AddEdge(b, a, "x") // 2-cycle a <-> b
	g.AddEdge(c, c, "x") // self-loop
	g.AddEdge(c, d, "x") // d: acyclic
	mx := NewMatrix(g)
	x, _ := g.ColorID("x")
	for _, tc := range []struct {
		v    graph.NodeID
		want int32
	}{{a, 2}, {b, 2}, {c, 1}, {d, graph.Unreachable}} {
		if got := mx.Dist(x, tc.v, tc.v); got != tc.want {
			t.Errorf("Dist(%v, %v) = %d, want %d", tc.v, tc.v, got, tc.want)
		}
	}
	if got := mx.Dist(graph.AnyColor, a, a); got != 2 {
		t.Errorf("wildcard self distance = %d, want 2", got)
	}
}

// TestMatrixRespectsColors: a path of mixed colors must not register on
// any single-color layer.
func TestMatrixRespectsColors(t *testing.T) {
	g := graph.New()
	a := g.AddNode("a", nil)
	b := g.AddNode("b", nil)
	c := g.AddNode("c", nil)
	g.AddEdge(a, b, "x")
	g.AddEdge(b, c, "y")
	mx := NewMatrix(g)
	x, _ := g.ColorID("x")
	y, _ := g.ColorID("y")
	if got := mx.Dist(x, a, c); got != graph.Unreachable {
		t.Errorf("x-layer a->c = %d, want unreachable", got)
	}
	if got := mx.Dist(y, a, c); got != graph.Unreachable {
		t.Errorf("y-layer a->c = %d, want unreachable", got)
	}
	if got := mx.Dist(graph.AnyColor, a, c); got != 2 {
		t.Errorf("wildcard a->c = %d, want 2", got)
	}
}

// TestBiDistAgreesWithMatrix: the runtime bi-directional search must
// reproduce every matrix entry, on every layer, including diagonals.
func TestBiDistAgreesWithMatrix(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randGraph(r, 1+r.Intn(18), r.Intn(50), []string{"a", "b"})
		mx := NewMatrix(g)
		for _, c := range allLayers(g) {
			for v1 := 0; v1 < g.NumNodes(); v1++ {
				for v2 := 0; v2 < g.NumNodes(); v2++ {
					want := mx.Dist(c, graph.NodeID(v1), graph.NodeID(v2))
					got := BiDist(g, c, graph.NodeID(v1), graph.NodeID(v2))
					if got != want {
						t.Logf("seed %d: BiDist(%d, %d->%d) = %d, matrix %d", seed, c, v1, v2, got, want)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestCompile(t *testing.T) {
	g := graph.New()
	a := g.AddNode("a", nil)
	b := g.AddNode("b", nil)
	g.AddEdge(a, b, "x")
	atoms, ok := Compile(g, rex.MustParse("x{3} _+"))
	if !ok || len(atoms) != 2 {
		t.Fatalf("Compile = %v, %v", atoms, ok)
	}
	x, _ := g.ColorID("x")
	if atoms[0].Color != x || atoms[0].Max != 3 {
		t.Errorf("atom 0 = %+v", atoms[0])
	}
	if atoms[1].Color != graph.AnyColor || atoms[1].Max != rex.Unbounded {
		t.Errorf("atom 1 = %+v", atoms[1])
	}
	if _, ok := Compile(g, rex.MustParse("nosuch")); ok {
		t.Error("unknown color must not compile")
	}
	if _, ok := Compile(g, rex.Expr{}); ok {
		t.Error("zero expression must not compile")
	}
}

func TestCAtomSat(t *testing.T) {
	bounded := CAtom{Color: 0, Max: 3}
	unbounded := CAtom{Color: 0, Max: rex.Unbounded}
	for _, tc := range []struct {
		a    CAtom
		d    int32
		want bool
	}{
		{bounded, graph.Unreachable, false},
		{bounded, 0, false}, // empty paths never satisfy an atom
		{bounded, 1, true},
		{bounded, 3, true},
		{bounded, 4, false},
		{unbounded, graph.Unreachable, false},
		{unbounded, 1, true},
		{unbounded, 1 << 20, true},
		// Bounds above MaxInt32 parse fine on 64-bit and must not
		// truncate negative.
		{CAtom{Color: 0, Max: 3_000_000_000}, 1, true},
	} {
		if got := tc.a.Sat(tc.d); got != tc.want {
			t.Errorf("%+v.Sat(%d) = %v, want %v", tc.a, tc.d, got, tc.want)
		}
	}
}

// chainReachBrute checks v1 -> v2 over an atom chain by depth-first
// enumeration of block lengths, the direct reading of the subclass-F
// semantics. Exponential, fine at test sizes.
func chainReachBrute(g *graph.Graph, atoms []CAtom, v1, v2 graph.NodeID) bool {
	if len(atoms) == 0 {
		return v1 == v2
	}
	a := atoms[0]
	limit := g.NumNodes()
	if a.Max != rex.Unbounded && a.Max < limit {
		limit = a.Max
	}
	// BFS frontier per step count over this color.
	cur := map[graph.NodeID]bool{v1: true}
	seenAt := map[graph.NodeID]bool{}
	for step := 1; step <= limit; step++ {
		next := map[graph.NodeID]bool{}
		for v := range cur {
			for _, e := range g.Out(v) {
				if a.Color == graph.AnyColor || e.Color == a.Color {
					next[e.To] = true
				}
			}
		}
		for w := range next {
			if !seenAt[w] {
				seenAt[w] = true
				if chainReachBrute(g, atoms[1:], w, v2) {
					return true
				}
			}
		}
		cur = next
		if len(cur) == 0 {
			break
		}
	}
	return false
}

// TestClosuresAndBiReachAgainstBrute: ForwardClosure, BackwardClosure,
// BiReach and ReachMatrix must all agree with the brute-force semantics
// on random graphs and random atom chains.
func TestClosuresAndBiReachAgainstBrute(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randGraph(r, 2+r.Intn(9), r.Intn(25), []string{"a", "b"})
		mx := NewMatrix(g)
		n := g.NumNodes()
		nAtoms := 1 + r.Intn(3)
		atoms := make([]CAtom, nAtoms)
		for i := range atoms {
			c := graph.ColorID(r.Intn(g.NumColors() + 1))
			if int(c) == g.NumColors() {
				c = graph.AnyColor
			}
			m := 1 + r.Intn(3)
			if r.Intn(5) == 0 {
				m = rex.Unbounded
			}
			atoms[i] = CAtom{Color: c, Max: m}
		}
		for v1 := 0; v1 < n; v1++ {
			src := make([]bool, n)
			src[v1] = true
			fc := ForwardClosure(g, src, atoms)
			for v2 := 0; v2 < n; v2++ {
				want := chainReachBrute(g, atoms, graph.NodeID(v1), graph.NodeID(v2))
				if fc[v2] != want {
					t.Logf("seed %d: ForwardClosure(%d)[%d] = %v, want %v (atoms %+v)", seed, v1, v2, fc[v2], want, atoms)
					return false
				}
				dst := make([]bool, n)
				dst[v2] = true
				if got := BackwardClosure(g, dst, atoms)[v1]; got != want {
					t.Logf("seed %d: BackwardClosure(%d)[%d] = %v, want %v", seed, v2, v1, got, want)
					return false
				}
				if got := BiReach(g, atoms, graph.NodeID(v1), graph.NodeID(v2)); got != want {
					t.Logf("seed %d: BiReach(%d,%d) = %v, want %v (atoms %+v)", seed, v1, v2, got, want, atoms)
					return false
				}
				if got := ReachMatrix(g, mx, atoms, graph.NodeID(v1), graph.NodeID(v2)); got != want {
					t.Logf("seed %d: ReachMatrix(%d,%d) = %v, want %v (atoms %+v)", seed, v1, v2, got, want, atoms)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestClosureEmptyChain: an empty chain is the empty path — the closure
// is the source set itself, as a fresh slice.
func TestClosureEmptyChain(t *testing.T) {
	g := graph.New()
	a := g.AddNode("a", nil)
	b := g.AddNode("b", nil)
	g.AddEdge(a, b, "x")
	src := []bool{true, false}
	fc := ForwardClosure(g, src, nil)
	if !fc[0] || fc[1] {
		t.Errorf("empty-chain closure = %v, want src", fc)
	}
	fc[1] = true
	if src[1] {
		t.Error("closure must not alias the caller's source set")
	}
}

// TestMultiSourceClosureIncludesSources: a source reached from another
// source via a non-empty path must be in the image (depth-0 marking must
// not mask it).
func TestMultiSourceClosureIncludesSources(t *testing.T) {
	g := graph.New()
	x := g.AddNode("x", nil)
	y := g.AddNode("y", nil)
	g.AddNode("z", nil)
	g.AddEdge(y, x, "a")
	atoms := []CAtom{{Color: 0, Max: 3}}
	src := []bool{true, true, false} // {x, y}
	fc := ForwardClosure(g, src, atoms)
	if !fc[x] {
		t.Error("x is reachable from source y in one hop; must be in the image")
	}
	if fc[y] {
		t.Error("y has no incoming a-edge; must not be in the image")
	}
}

// TestHugeBoundBehavesAsUnbounded: a bound beyond int32 (and beyond |V|)
// must behave like c+, not overflow into an unsatisfiable atom.
func TestHugeBoundBehavesAsUnbounded(t *testing.T) {
	g := graph.New()
	a := g.AddNode("a", nil)
	b := g.AddNode("b", nil)
	g.AddEdge(a, b, "x")
	atoms := []CAtom{{Color: 0, Max: 3_000_000_000}}
	src := []bool{true, false}
	if fc := ForwardClosure(g, src, atoms); !fc[b] {
		t.Error("huge-bound atom must still reach the direct successor")
	}
	if !BiReach(g, atoms, a, b) {
		t.Error("BiReach must agree")
	}
}

func TestCacheLRUAndStats(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	g := randGraph(r, 12, 30, []string{"a"})
	a, _ := g.ColorID("a")
	ca := NewCache(g, 4)
	mx := NewMatrix(g)

	// First pass: all misses; second pass over the same 3 pairs: all hits
	// (capacity 4 keeps them resident).
	pairs := [][2]graph.NodeID{{0, 1}, {2, 3}, {4, 5}}
	for pass := 0; pass < 2; pass++ {
		for _, p := range pairs {
			if got, want := ca.Dist(a, p[0], p[1]), mx.Dist(a, p[0], p[1]); got != want {
				t.Fatalf("cache Dist(%d,%d) = %d, want %d", p[0], p[1], got, want)
			}
		}
	}
	hits, misses := ca.Stats()
	if hits != 3 || misses != 3 {
		t.Errorf("Stats = (%d, %d), want (3, 3)", hits, misses)
	}

	// Sweep many distinct pairs through a capacity-1 cache: every lookup
	// of a new pair must evict, but answers stay exact.
	small := NewCache(g, 1)
	for v1 := 0; v1 < g.NumNodes(); v1++ {
		for v2 := 0; v2 < g.NumNodes(); v2++ {
			if got, want := small.Dist(a, graph.NodeID(v1), graph.NodeID(v2)), mx.Dist(a, graph.NodeID(v1), graph.NodeID(v2)); got != want {
				t.Fatalf("capacity-1 cache Dist(%d,%d) = %d, want %d", v1, v2, got, want)
			}
		}
	}
	if h, _ := small.Stats(); h != 0 {
		t.Errorf("distinct-pair sweep through capacity 1 should never hit, got %d hits", h)
	}
}

// exactFilter is a Filter built from the matrix itself: refutes exactly
// the unreachable pairs.
type exactFilter struct{ mx *Matrix }

func (f exactFilter) MaybeReaches(c graph.ColorID, v1, v2 graph.NodeID) bool {
	return f.mx.Dist(c, v1, v2) >= 0
}

func TestCacheFilter(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	g := randGraph(r, 14, 18, []string{"a", "b"})
	mx := NewMatrix(g)
	ca := NewCache(g, 64)
	ca.SetFilter(exactFilter{mx})
	a, _ := g.ColorID("a")
	unreachable := 0
	for v1 := 0; v1 < g.NumNodes(); v1++ {
		for v2 := 0; v2 < g.NumNodes(); v2++ {
			want := mx.Dist(a, graph.NodeID(v1), graph.NodeID(v2))
			if got := ca.Dist(a, graph.NodeID(v1), graph.NodeID(v2)); got != want {
				t.Fatalf("filtered Dist(%d,%d) = %d, want %d", v1, v2, got, want)
			}
			if want == graph.Unreachable {
				unreachable++
			}
		}
	}
	if got := ca.Filtered(); got != unreachable {
		t.Errorf("Filtered = %d, want %d (one per unreachable pair)", got, unreachable)
	}
	_, misses := ca.Stats()
	total := g.NumNodes() * g.NumNodes()
	if misses != total-unreachable {
		t.Errorf("misses = %d, want %d (filtered pairs skip the search)", misses, total-unreachable)
	}
}

func TestMatrixSize(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	g := randGraph(r, 10, 20, []string{"a", "b"})
	mx := NewMatrix(g)
	want := int64(g.NumColors()+1) * 10 * 10 * 4
	if got := mx.Size(); got != want {
		t.Errorf("Size = %d, want %d", got, want)
	}
}
