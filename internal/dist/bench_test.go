package dist

import (
	"math/rand"
	"testing"

	"regraph/internal/graph"
)

// benchGraph is a mid-sized synthetic graph: large enough that the
// per-source BFS work dominates the CSR setup, small enough for CI.
func benchGraph() *graph.Graph {
	r := rand.New(rand.NewSource(42))
	return randGraph(r, 1200, 6000, []string{"a", "b", "c", "d"})
}

// BenchmarkNewMatrixParallel measures the default concurrent matrix
// build; compare against BenchmarkNewMatrixSerial to see the multi-core
// speedup (on a single-core host the two are expected to tie).
func BenchmarkNewMatrixParallel(b *testing.B) {
	g := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewMatrix(g)
	}
}

func BenchmarkNewMatrixSerial(b *testing.B) {
	g := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		newMatrixSerial(g)
	}
}

// BenchmarkMatrixDist measures the O(1) lookup hot path.
func BenchmarkMatrixDist(b *testing.B) {
	g := benchGraph()
	mx := NewMatrix(g)
	a, _ := g.ColorID("a")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mx.Dist(a, 3, 17)
	}
}
