package dist

import (
	"context"
	"errors"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"regraph/internal/graph"
)

// TwoHop is the 2-hop-labeling distance backend (Cohen, Halperin,
// Kaplan, Zwick, SODA 2002): the middle point of the space/time
// trade-off between the (m+1)·|V|² Matrix and the search-per-miss
// Cache. For every color layer each node v carries two sorted label
// lists — Lout(v), hubs v reaches, and Lin(v), hubs that reach v —
// such that every shortest path is witnessed by a common hub:
//
//	d(u, v) = min over h ∈ Lout(u) ∩ Lin(v) of dOut(u, h) + dIn(h, v).
//
// Labels are built with pruned landmark BFS in descending-degree order
// (Akiba, Iwata, Yoshida, SIGMOD 2013): high-degree hubs cover most
// shortest paths, so later landmarks' searches are pruned against the
// labels already built and label lists stay short on real graphs. A
// query is one sorted-merge over two short arrays — no graph traversal,
// no locks, no per-query allocation.
//
// Distances agree bit-for-bit with Matrix.Dist, including the paper's
// non-empty-path diagonal: labels internally hold standard (possibly
// empty-path) distances, and a per-layer self[] array — the shortest
// non-empty cycle through each node, derived from the labels after
// construction — serves Dist(c, v, v).
//
// A TwoHop is immutable after construction and safe for concurrent use.
type TwoHop struct {
	n      int
	layers []thLayer // one per color, wildcard layer last

	filter   atomic.Pointer[Filter]
	filtered atomic.Int64
}

// thLayer stores one color layer's labels flat, matrix.go-style: node
// v's in-labels are (inHub, inDist)[inStart[v]:inStart[v+1]], sorted by
// hub rank ascending (construction appends landmarks in rank order, so
// the arrays are born sorted). Hubs are stored as landmark *ranks*, not
// node IDs — ranks are what both sides of the sorted merge share.
type thLayer struct {
	inStart  []int32 // len n+1
	outStart []int32 // len n+1
	inHub    []int32
	inDist   []int32
	outHub   []int32
	outDist  []int32
	self     []int32 // shortest non-empty cycle through v, or Unreachable
}

// ErrTwoHopBudget is returned when label construction exceeds the byte
// budget passed to NewTwoHopBudget: the graph's shortest-path structure
// does not compress into 2-hop labels within the allowance, and the
// caller (the engine's auto-selection) should fall back to the Cache.
var ErrTwoHopBudget = errors.New("dist: 2-hop label index exceeds memory budget")

// NewTwoHop builds the label index for every color layer plus the
// wildcard layer, parallelized across layers. It cannot fail: with no
// budget and no context the build always runs to completion.
func NewTwoHop(g *graph.Graph) *TwoHop {
	th, _ := NewTwoHopBudget(context.Background(), g, 0)
	return th
}

// NewTwoHopCtx is NewTwoHop under a context: cancellation mid-build
// abandons all layers and returns ctx's error.
func NewTwoHopCtx(ctx context.Context, g *graph.Graph) (*TwoHop, error) {
	return NewTwoHopBudget(ctx, g, 0)
}

// NewTwoHopBudget is NewTwoHopCtx with a byte budget (0 = unlimited)
// over the total label storage across all layers, accounted at 8 bytes
// per label entry as the entries are created. Crossing the budget
// aborts every layer's build and returns ErrTwoHopBudget — the index
// never materializes, so a failed attempt costs peak memory
// proportional to the budget, not to the hopeless full index.
func NewTwoHopBudget(ctx context.Context, g *graph.Graph, maxBytes int64) (*TwoHop, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := g.NumNodes()
	m := g.NumColors()
	th := &TwoHop{n: n, layers: make([]thLayer, m+1)}
	if n == 0 {
		return th, nil
	}

	// Layers are independent: build them in parallel, sharing one byte
	// account and one cancellable context so the first failure (budget
	// or caller cancellation) stops the others at their next landmark.
	buildCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var usedBytes atomic.Int64
	var firstErr atomic.Pointer[error]
	fail := func(err error) {
		e := err
		firstErr.CompareAndSwap(nil, &e)
		cancel()
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > m+1 {
		workers = m + 1
	}
	if workers < 1 {
		workers = 1
	}
	tasks := make(chan int, m+1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := GetScratch()
			defer PutScratch(s)
			for l := range tasks {
				c := graph.ColorID(l)
				if l == m {
					c = graph.AnyColor
				}
				la, err := buildTwoHopLayer(buildCtx, g, c, s, maxBytes, &usedBytes)
				if err != nil {
					fail(err)
					continue
				}
				th.layers[l] = la
			}
		}()
	}
	for l := 0; l <= m; l++ {
		tasks <- l
	}
	close(tasks)
	wg.Wait()
	if errp := firstErr.Load(); errp != nil {
		return nil, *errp
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return th, nil
}

// buildTwoHopLayer runs pruned landmark labeling for one color layer.
// The BFS distance array, queue and the rank-indexed prune-query
// scratch all come from s, exactly like the runtime search primitives.
func buildTwoHopLayer(ctx context.Context, g *graph.Graph, c graph.ColorID, s *Scratch, maxBytes int64, usedBytes *atomic.Int64) (thLayer, error) {
	n := g.NumNodes()
	fwd := buildCSR(g, c)
	bwd := buildReverseCSR(g, c)

	// Landmark order: total degree descending (ties by node ID). Hubs
	// that touch many edges witness many shortest paths, which is what
	// makes the pruning bite.
	order := make([]graph.NodeID, n)
	for v := range order {
		order[v] = graph.NodeID(v)
	}
	deg := func(v graph.NodeID) int32 {
		return (fwd.rowStart[v+1] - fwd.rowStart[v]) + (bwd.rowStart[v+1] - bwd.rowStart[v])
	}
	sort.Slice(order, func(i, j int) bool {
		di, dj := deg(order[i]), deg(order[j])
		if di != dj {
			return di > dj
		}
		return order[i] < order[j]
	})

	// Per-node label builders: interleaved (hubRank, dist) pairs,
	// appended in landmark-rank order so each list is born sorted.
	lin := make([][]int32, n)
	lout := make([][]int32, n)

	d := int32Buf(&s.d, n)
	// tmp is indexed by landmark rank: during landmark h's forward BFS
	// it holds dOut(h, ·) scattered from Lout(h), so the prune query for
	// a visited v is one pass over Lin(v). Unreachable marks absent.
	tmp := int32Buf(&s.d2, n)
	for i := 0; i < n; i++ {
		tmp[i] = graph.Unreachable
	}

	addEntry := func() error {
		if maxBytes > 0 && usedBytes.Add(8) > maxBytes {
			return ErrTwoHopBudget
		}
		return nil
	}

	for rk, h := range order {
		// One cancellation probe per landmark: each landmark's two
		// pruned searches are short once the early (big) hubs are done,
		// and the early ones are a small constant count.
		if err := ctx.Err(); err != nil {
			return thLayer{}, err
		}
		rank := int32(rk)

		// Forward BFS from h: visited v gains (rank, d(h,v)) in Lin(v)
		// unless the existing labels already witness a path that short.
		// The root always labels itself: its prune query goes through
		// two earlier-hub legs of length ≥ 1 each, so it can never beat
		// distance 0.
		scatter(lout[h], tmp)
		if err := prunedBFS(fwd, h, rank, d, &s.queue, tmp, lin, addEntry); err != nil {
			unscatter(lout[h], tmp)
			return thLayer{}, err
		}
		unscatter(lout[h], tmp)

		// Backward BFS from h over reversed edges: visited v gains
		// (rank, d(v,h)) in Lout(v), pruned against Lout(v)·Lin(h).
		scatter(lin[h], tmp)
		if err := prunedBFS(bwd, h, rank, d, &s.queue, tmp, lout, addEntry); err != nil {
			unscatter(lin[h], tmp)
			return thLayer{}, err
		}
		unscatter(lin[h], tmp)
	}

	la := flattenLabels(n, lin, lout)
	lin, lout = nil, nil

	// Non-empty diagonal: the labels hold standard distances (so
	// d(v,v) = 0 via the root self-label), but the paper's semantics
	// need the shortest non-empty cycle. One closing-edge pass per
	// node recovers it: a shortest cycle through v is an edge (v, w)
	// followed by a shortest w→v path (non-empty unless w == v, which
	// is the self-loop case).
	la.self = make([]int32, n)
	for v := 0; v < n; v++ {
		best := graph.Unreachable
		for _, w := range fwd.dst[fwd.rowStart[v]:fwd.rowStart[v+1]] {
			if int(w) == v {
				best = 1
				break
			}
			if dw := la.dist(int(w), v); dw != graph.Unreachable && (best == graph.Unreachable || dw+1 < best) {
				best = dw + 1
			}
		}
		la.self[v] = best
	}
	return la, nil
}

// prunedBFS runs one landmark's pruned BFS over adj, appending
// (rank, dist) pairs to labels[v] for every non-pruned visited v. tmp
// holds the landmark's opposite-side label distances scattered by rank;
// the prune query for v is one pass over labels[v] against tmp.
func prunedBFS(adj csr, root graph.NodeID, rank int32, d []int32, queueBuf *[]graph.NodeID, tmp []int32, labels [][]int32, addEntry func() error) error {
	for i := range d {
		d[i] = graph.Unreachable
	}
	d[root] = 0
	queue := append((*queueBuf)[:0], root)
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		dv := d[v]
		// Prune: if the labels built so far already answer (root, v) at
		// ≤ dv, this landmark adds nothing for v or anything behind it.
		if v != root && pruneQuery(labels[v], tmp) <= dv {
			continue
		}
		labels[v] = append(labels[v], rank, dv)
		if err := addEntry(); err != nil {
			*queueBuf = queue
			return err
		}
		for _, w := range adj.dst[adj.rowStart[v]:adj.rowStart[v+1]] {
			if d[w] == graph.Unreachable {
				d[w] = dv + 1
				queue = append(queue, w)
			}
		}
	}
	*queueBuf = queue
	return nil
}

// pruneQuery evaluates the current-label distance between the landmark
// and v: min over v's label pairs (rk, dist) of dist + tmp[rk], where
// tmp holds the landmark's own label distances by rank. Results wrap
// around int32 overflow only if both legs are near 2³¹ — impossible,
// distances are bounded by |V|.
func pruneQuery(pairs []int32, tmp []int32) int32 {
	best := int32(1<<31 - 1)
	for i := 0; i < len(pairs); i += 2 {
		if t := tmp[pairs[i]]; t != graph.Unreachable {
			if q := t + pairs[i+1]; q < best {
				best = q
			}
		}
	}
	return best
}

func scatter(pairs []int32, tmp []int32) {
	for i := 0; i < len(pairs); i += 2 {
		tmp[pairs[i]] = pairs[i+1]
	}
}

func unscatter(pairs []int32, tmp []int32) {
	for i := 0; i < len(pairs); i += 2 {
		tmp[pairs[i]] = graph.Unreachable
	}
}

// flattenLabels packs the per-node pair slices into the flat arrays the
// query path reads, freeing the builder slices for the GC.
func flattenLabels(n int, lin, lout [][]int32) thLayer {
	la := thLayer{
		inStart:  make([]int32, n+1),
		outStart: make([]int32, n+1),
	}
	for v := 0; v < n; v++ {
		la.inStart[v+1] = la.inStart[v] + int32(len(lin[v])/2)
		la.outStart[v+1] = la.outStart[v] + int32(len(lout[v])/2)
	}
	la.inHub = make([]int32, la.inStart[n])
	la.inDist = make([]int32, la.inStart[n])
	la.outHub = make([]int32, la.outStart[n])
	la.outDist = make([]int32, la.outStart[n])
	for v := 0; v < n; v++ {
		at := la.inStart[v]
		for i := 0; i < len(lin[v]); i += 2 {
			la.inHub[at] = lin[v][i]
			la.inDist[at] = lin[v][i+1]
			at++
		}
		lin[v] = nil
		at = la.outStart[v]
		for i := 0; i < len(lout[v]); i += 2 {
			la.outHub[at] = lout[v][i]
			la.outDist[at] = lout[v][i+1]
			at++
		}
		lout[v] = nil
	}
	return la
}

// buildReverseCSR is buildCSR over the graph's in-edges: row v lists
// v's predecessors under color c, the adjacency of the backward BFS.
func buildReverseCSR(g *graph.Graph, c graph.ColorID) csr {
	n := g.NumNodes()
	cs := csr{rowStart: make([]int32, n+1)}
	for v := 0; v < n; v++ {
		deg := 0
		for _, e := range g.In(graph.NodeID(v)) {
			if c == graph.AnyColor || e.Color == c {
				deg++
			}
		}
		cs.rowStart[v+1] = cs.rowStart[v] + int32(deg)
	}
	cs.dst = make([]graph.NodeID, cs.rowStart[n])
	fill := make([]int32, n)
	copy(fill, cs.rowStart[:n])
	for v := 0; v < n; v++ {
		for _, e := range g.In(graph.NodeID(v)) {
			if c == graph.AnyColor || e.Color == c {
				cs.dst[fill[v]] = e.To
				fill[v]++
			}
		}
	}
	return cs
}

// dist is the standard-distance sorted-merge over Lout(u) ∩ Lin(v).
func (la *thLayer) dist(u, v int) int32 {
	i, iEnd := la.outStart[u], la.outStart[u+1]
	j, jEnd := la.inStart[v], la.inStart[v+1]
	best := graph.Unreachable
	for i < iEnd && j < jEnd {
		hu, hv := la.outHub[i], la.inHub[j]
		switch {
		case hu < hv:
			i++
		case hu > hv:
			j++
		default:
			if d := la.outDist[i] + la.inDist[j]; best == graph.Unreachable || d < best {
				best = d
			}
			i++
			j++
		}
	}
	return best
}

// Dist returns the shortest non-empty distance from v1 to v2 over edges
// of color c (any edge when c is graph.AnyColor), or graph.Unreachable.
// Results agree exactly with Matrix.Dist. With a filter installed,
// refuted pairs short-circuit before the label merge.
func (th *TwoHop) Dist(c graph.ColorID, v1, v2 graph.NodeID) int32 {
	if fp := th.filter.Load(); fp != nil && *fp != nil && !(*fp).MaybeReaches(c, v1, v2) {
		th.filtered.Add(1)
		return graph.Unreachable
	}
	la := th.layer(c)
	if v1 == v2 {
		return la.self[v1]
	}
	return la.dist(int(v1), int(v2))
}

// DistScratch satisfies Backend; the label merge allocates nothing and
// never searches, so the arena is ignored.
func (th *TwoHop) DistScratch(c graph.ColorID, v1, v2 graph.NodeID, _ *Scratch) int32 {
	return th.Dist(c, v1, v2)
}

// DistCtx is the ctx-aware face, for parity with Cache.DistCtx and
// Matrix.DistCtx: a label merge cannot be abandoned, so the error is
// ctx's error only when it was already cancelled on entry.
func (th *TwoHop) DistCtx(ctx context.Context, c graph.ColorID, v1, v2 graph.NodeID, _ *Scratch) (int32, error) {
	if ctx != nil && ctx.Err() != nil {
		return graph.Unreachable, ctx.Err()
	}
	return th.Dist(c, v1, v2), nil
}

func (th *TwoHop) layer(c graph.ColorID) *thLayer {
	if c == graph.AnyColor {
		return &th.layers[len(th.layers)-1]
	}
	return &th.layers[c]
}

// SetFilter installs a sound negative reachability filter (see Filter)
// consulted before the label merge; nil removes it. Like Cache's, the
// filter only ever suppresses merges for pairs it proves unreachable,
// so answers are unchanged — only cheaper.
func (th *TwoHop) SetFilter(f Filter) {
	if f == nil {
		th.filter.Store(nil)
		return
	}
	th.filter.Store(&f)
}

// Filtered returns how many lookups the reachability filter refuted
// without a label merge.
func (th *TwoHop) Filtered() int64 { return th.filtered.Load() }

// Entries returns the total label-entry count across all layers.
func (th *TwoHop) Entries() int64 {
	var total int64
	for i := range th.layers {
		total += int64(len(th.layers[i].inHub)) + int64(len(th.layers[i].outHub))
	}
	return total
}

// Size returns the index memory footprint in bytes: label arrays plus
// the per-node offsets and diagonal. Typically orders of magnitude
// under Matrix.Size on sparse graphs.
func (th *TwoHop) Size() int64 {
	var total int64
	for i := range th.layers {
		la := &th.layers[i]
		total += int64(len(la.inStart)+len(la.outStart)+len(la.self)) * 4
		total += (int64(len(la.inHub)) + int64(len(la.outHub))) * 8
	}
	return total
}
