// Package predicate implements the node search conditions of the paper's
// queries: conjunctions of atomic formulas "A op a" where A is an attribute
// name, a is a constant, and op is one of <, <=, =, !=, >, >=.
//
// A data-graph node v matches a predicate if, for every atomic formula
// "A op a", v carries an attribute A whose value satisfies the comparison
// (Section 2 of the paper). The package also decides satisfiability and
// implication between predicates ("u ⊢ w" in the paper, Proposition 3.3
// cases 1-2), which the containment, equivalence and minimization analyses
// are built on.
//
// Values compare numerically when both sides parse as numbers and
// lexicographically otherwise. Implication reasons over a dense value
// domain, which is sound (it never claims an implication that could fail)
// and matches the paper's case analysis.
package predicate

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Op is a comparison operator.
type Op int

// The six comparison operators of the paper.
const (
	Lt Op = iota // <
	Le           // <=
	Eq           // =
	Ne           // !=
	Gt           // >
	Ge           // >=
)

var opNames = [...]string{"<", "<=", "=", "!=", ">", ">="}

// String returns the operator's concrete syntax.
func (o Op) String() string {
	if o < 0 || int(o) >= len(opNames) {
		return fmt.Sprintf("Op(%d)", int(o))
	}
	return opNames[o]
}

// Clause is one atomic formula "Attr Op Value".
type Clause struct {
	Attr  string
	Op    Op
	Value string
}

// String renders the clause in the syntax accepted by Parse.
func (c Clause) String() string {
	v := c.Value
	if needsQuoting(v) {
		v = strconv.Quote(v)
	}
	return c.Attr + " " + c.Op.String() + " " + v
}

// needsQuoting reports whether a value must be rendered quoted to
// round-trip through Parse — and, just as important, through the
// line- and tab-oriented formats that embed predicates (qlang files,
// rgquery batch lines, the NDJSON wire): any whitespace or control
// character, clause-syntax metacharacters, or the empty string.
func needsQuoting(v string) bool {
	if v == "" {
		return true
	}
	for _, r := range v {
		if r <= ' ' || r == ',' || r == '"' || r == 0x7f {
			return true
		}
	}
	return false
}

// Pred is a conjunction of clauses. The zero value is the always-true
// predicate (it imposes no conditions, so every node matches it).
type Pred struct {
	clauses []Clause
}

// New builds a predicate from clauses.
func New(clauses ...Clause) Pred {
	cp := make([]Clause, len(clauses))
	copy(cp, clauses)
	return Pred{clauses: cp}
}

// Clauses returns the predicate's clauses. The slice must not be modified.
func (p Pred) Clauses() []Clause { return p.clauses }

// IsTrue reports whether the predicate is the empty (always-true)
// conjunction.
func (p Pred) IsTrue() bool { return len(p.clauses) == 0 }

// Size returns the number of atomic formulas, the |f_u| metric used in the
// paper's complexity bounds.
func (p Pred) Size() int { return len(p.clauses) }

// String renders the predicate in the syntax accepted by Parse; the empty
// predicate renders as "*".
func (p Pred) String() string {
	if p.IsTrue() {
		return "*"
	}
	parts := make([]string, len(p.clauses))
	for i, c := range p.clauses {
		parts[i] = c.String()
	}
	return strings.Join(parts, ", ")
}

// Parse parses a conjunction such as
//
//	job = doctor, age > 300
//	cat = "Film & Animation", com <= 20
//
// Clauses are separated by commas; values may be double-quoted. The input
// "*" or "" parses as the always-true predicate.
func Parse(input string) (Pred, error) {
	input = strings.TrimSpace(input)
	if input == "" || input == "*" {
		return Pred{}, nil
	}
	var clauses []Clause
	for _, part := range splitClauses(input) {
		c, err := parseClause(part)
		if err != nil {
			return Pred{}, err
		}
		clauses = append(clauses, c)
	}
	return Pred{clauses: clauses}, nil
}

// MustParse is Parse but panics on error.
func MustParse(input string) Pred {
	p, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return p
}

// splitClauses splits on commas that are not inside double quotes.
// Inside quotes, a backslash escapes the next character (the encoding
// strconv.Quote emits and strconv.Unquote reads), so escaped quotes do
// not end the quoted region.
func splitClauses(s string) []string {
	var parts []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			depth = !depth
		case '\\':
			if depth && i+1 < len(s) {
				i++
			}
		case ',':
			if !depth {
				parts = append(parts, s[start:i])
				start = i + 1
			}
		}
	}
	parts = append(parts, s[start:])
	return parts
}

func parseClause(s string) (Clause, error) {
	s = strings.TrimSpace(s)
	// Find the operator; check two-byte operators before their one-byte
	// prefixes.
	ops := []struct {
		text string
		op   Op
	}{
		{"<=", Le}, {">=", Ge}, {"!=", Ne}, {"<", Lt}, {">", Gt}, {"=", Eq},
	}
	for _, cand := range ops {
		idx := strings.Index(s, cand.text)
		// A bare '<' or '>' that is really the start of "<="/">=" is not
		// this candidate's operator: skip past such occurrences, so a
		// malformed "a <=" (no value) errors instead of misparsing as
		// a < "=".
		for idx > 0 && len(cand.text) == 1 && (cand.text == "<" || cand.text == ">") &&
			idx+1 < len(s) && s[idx+1] == '=' {
			next := strings.Index(s[idx+2:], cand.text)
			if next < 0 {
				idx = -1
			} else {
				idx += 2 + next
			}
		}
		if idx <= 0 {
			continue
		}
		attr := strings.TrimSpace(s[:idx])
		val := strings.TrimSpace(s[idx+len(cand.text):])
		if !validAttr(attr) || val == "" {
			// This operator occurrence is not the clause's operator (it may
			// sit inside a quoted value, as in `a = "x<=y"`): try the next
			// candidate rather than committing to a malformed split.
			continue
		}
		if len(val) >= 2 && val[0] == '"' && val[len(val)-1] == '"' {
			unq, err := strconv.Unquote(val)
			if err != nil {
				return Clause{}, fmt.Errorf("predicate: bad quoted value in %q: %v", s, err)
			}
			val = unq
		}
		return Clause{Attr: attr, Op: cand.op, Value: val}, nil
	}
	return Clause{}, fmt.Errorf("predicate: no comparison operator in %q", s)
}

// validAttr restricts attribute names to whitespace- and quote-free
// tokens: anything else cannot round-trip through the line-oriented
// formats (and, in practice, only ever arises from misparsing an
// operator character inside a quoted value).
func validAttr(a string) bool {
	if a == "" {
		return false
	}
	for _, r := range a {
		if r <= ' ' || r == '"' || r == 0x7f {
			return false
		}
	}
	return true
}

// ---- evaluation ---------------------------------------------------------

// Compare orders two attribute values: numerically when both parse as
// floats, lexicographically otherwise. It returns -1, 0 or +1.
func Compare(a, b string) int {
	fa, okA := Numeric(a)
	fb, okB := Numeric(b)
	if okA && okB {
		switch {
		case fa < fb:
			return -1
		case fa > fb:
			return 1
		default:
			return 0
		}
	}
	return strings.Compare(a, b)
}

// Numeric reports whether an attribute value belongs to Compare's
// numeric domain, and its parsed value when it does. It is the single
// place the numeric-vs-lexicographic rule is decided: Compare uses it
// for the scan path and internal/candidx uses it to split posting
// columns into the two value domains, so both answer every clause
// identically by construction.
//
// Implementation: ParseFloat with a cheap shape pre-check. ParseFloat's
// failure path allocates a syntax error, and candidate scans call
// Compare once per node per clause, so feeding it the (overwhelmingly
// common) non-numeric attribute values was the dominant allocation of
// query evaluation over string-attributed graphs.
func Numeric(s string) (float64, bool) {
	if !looksNumeric(s) {
		return 0, false
	}
	f, err := strconv.ParseFloat(s, 64)
	return f, err == nil
}

// looksNumeric reports whether s could possibly parse as a float. It
// must never reject a string ParseFloat accepts (that would silently
// change Compare's ordering), so it admits every character of decimal
// and hex float syntax — digits, hex digits (which cover the e/E
// exponent), x/p for hex floats, sign, dot, and digit-separating
// underscores — plus the Inf/Infinity/NaN spellings. False positives
// (e.g. "face1") are fine — they just pay ParseFloat's error — the
// point is rejecting ordinary words and names without constructing one.
func looksNumeric(s string) bool {
	i := 0
	if i < len(s) && (s[i] == '+' || s[i] == '-') {
		i++
	}
	rest := s[i:]
	if strings.EqualFold(rest, "inf") || strings.EqualFold(rest, "infinity") ||
		strings.EqualFold(rest, "nan") {
		return true
	}
	digit := false
	for ; i < len(s); i++ {
		switch c := s[i]; {
		case c >= '0' && c <= '9':
			digit = true
		case c >= 'a' && c <= 'f', c >= 'A' && c <= 'F',
			c == 'x' || c == 'X' || c == 'p' || c == 'P',
			c == '.' || c == '_' || c == '+' || c == '-':
		default:
			return false
		}
	}
	return digit
}

// Holds reports whether "x op y" is true under Compare's ordering —
// the one comparison rule every evaluation path (linear scan, inverted
// index, implication analysis) must agree on.
func (op Op) Holds(x, y string) bool {
	c := Compare(x, y)
	switch op {
	case Lt:
		return c < 0
	case Le:
		return c <= 0
	case Eq:
		return c == 0
	case Ne:
		return c != 0
	case Gt:
		return c > 0
	case Ge:
		return c >= 0
	}
	return false
}

// Eval reports whether a node carrying the given attribute tuple matches
// the predicate: every clause's attribute must be present and satisfy its
// comparison.
func (p Pred) Eval(attrs map[string]string) bool {
	for _, c := range p.clauses {
		v, ok := attrs[c.Attr]
		if !ok || !c.Op.Holds(v, c.Value) {
			return false
		}
	}
	return true
}

// Key returns a canonical cache key for the predicate: clauses are
// sorted (a conjunction is order-independent), so two predicates with
// the same clause multiset in any order share one key. Attribute names
// and values are length-prefixed — they may contain any byte, so a
// separator-based encoding would let distinct predicates collide; the
// length prefix makes the key a prefix code (the operator spellings
// between two prefixed fields cannot be confused with one another or
// with a digit run). The always-true predicate has the key "*". Used
// by candidate-set memoization.
func (p Pred) Key() string {
	if p.IsTrue() {
		return "*"
	}
	cs := make([]Clause, len(p.clauses))
	copy(cs, p.clauses)
	sort.Slice(cs, func(i, j int) bool {
		a, b := cs[i], cs[j]
		if a.Attr != b.Attr {
			return a.Attr < b.Attr
		}
		if a.Op != b.Op {
			return a.Op < b.Op
		}
		return a.Value < b.Value
	})
	var sb strings.Builder
	for _, c := range cs {
		sb.WriteString(strconv.Itoa(len(c.Attr)))
		sb.WriteByte(':')
		sb.WriteString(c.Attr)
		sb.WriteString(c.Op.String())
		sb.WriteString(strconv.Itoa(len(c.Value)))
		sb.WriteByte(':')
		sb.WriteString(c.Value)
	}
	return sb.String()
}

// ---- satisfiability and implication -------------------------------------

// bound is one end of an interval; empty value means unbounded.
type bound struct {
	value  string
	strict bool
	set    bool
}

// constraints is the per-attribute summary of a predicate's clauses,
// mirroring the a<, a<=, a>, a>=, a= values in the paper's proof of
// Proposition 3.3.
type constraints struct {
	lo, hi bound
	eq     []string // all "=" values (more than one distinct => unsat)
	ne     []string // all "!=" values
}

func (p Pred) byAttr() map[string]*constraints {
	m := map[string]*constraints{}
	for _, c := range p.clauses {
		cs := m[c.Attr]
		if cs == nil {
			cs = &constraints{}
			m[c.Attr] = cs
		}
		switch c.Op {
		case Eq:
			cs.eq = append(cs.eq, c.Value)
		case Ne:
			cs.ne = append(cs.ne, c.Value)
		case Lt:
			cs.tightenHi(c.Value, true)
		case Le:
			cs.tightenHi(c.Value, false)
		case Gt:
			cs.tightenLo(c.Value, true)
		case Ge:
			cs.tightenLo(c.Value, false)
		}
	}
	return m
}

func (cs *constraints) tightenHi(v string, strict bool) {
	if !cs.hi.set || Compare(v, cs.hi.value) < 0 || (Compare(v, cs.hi.value) == 0 && strict) {
		cs.hi = bound{value: v, strict: strict, set: true}
	}
}

func (cs *constraints) tightenLo(v string, strict bool) {
	if !cs.lo.set || Compare(v, cs.lo.value) > 0 || (Compare(v, cs.lo.value) == 0 && strict) {
		cs.lo = bound{value: v, strict: strict, set: true}
	}
}

// sat reports whether the attribute's constraint set admits any value,
// assuming a dense value domain.
func (cs *constraints) sat() bool {
	// Distinct "=" values conflict.
	for i := 1; i < len(cs.eq); i++ {
		if Compare(cs.eq[i], cs.eq[0]) != 0 {
			return false
		}
	}
	if len(cs.eq) > 0 {
		e := cs.eq[0]
		if cs.lo.set && (Compare(e, cs.lo.value) < 0 || (Compare(e, cs.lo.value) == 0 && cs.lo.strict)) {
			return false
		}
		if cs.hi.set && (Compare(e, cs.hi.value) > 0 || (Compare(e, cs.hi.value) == 0 && cs.hi.strict)) {
			return false
		}
		for _, n := range cs.ne {
			if Compare(e, n) == 0 {
				return false
			}
		}
		return true
	}
	if cs.lo.set && cs.hi.set {
		c := Compare(cs.lo.value, cs.hi.value)
		if c > 0 {
			return false
		}
		if c == 0 {
			if cs.lo.strict || cs.hi.strict {
				return false
			}
			// Interval is a single point; a "!=" on it empties it.
			for _, n := range cs.ne {
				if Compare(n, cs.lo.value) == 0 {
					return false
				}
			}
		}
	}
	return true
}

// Satisfiable reports whether some attribute tuple matches the predicate.
func (p Pred) Satisfiable() bool {
	for _, cs := range p.byAttr() {
		if !cs.sat() {
			return false
		}
	}
	return true
}

// Implies reports whether p ⊢ q: every node matching p also matches q
// (the paper writes u1 ⊢ w1). An unsatisfiable p implies everything. The
// reasoning is per-attribute over a dense domain, following the four cases
// in the paper's proof of Proposition 3.3.
func (p Pred) Implies(q Pred) bool {
	if !p.Satisfiable() {
		return true
	}
	pa := p.byAttr()
	for _, c := range q.Clauses() {
		cs, ok := pa[c.Attr]
		if !ok {
			// p says nothing about the attribute, so a matching node might
			// not even carry it.
			return false
		}
		if !cs.implies(c.Op, c.Value) {
			return false
		}
	}
	return true
}

// implies reports whether every value admitted by the constraint set
// satisfies "x op a".
func (cs *constraints) implies(op Op, a string) bool {
	if len(cs.eq) > 0 {
		return op.Holds(cs.eq[0], a)
	}
	switch op {
	case Eq:
		// Only a pinched inclusive interval [a, a] forces equality.
		return cs.lo.set && cs.hi.set && !cs.lo.strict && !cs.hi.strict &&
			Compare(cs.lo.value, a) == 0 && Compare(cs.hi.value, a) == 0
	case Le:
		if !cs.hi.set {
			return false
		}
		if cs.hi.strict {
			return Compare(cs.hi.value, a) <= 0 // x < h, h <= a ⇒ x < a <= a
		}
		return Compare(cs.hi.value, a) <= 0
	case Lt:
		if !cs.hi.set {
			return false
		}
		if cs.hi.strict {
			return Compare(cs.hi.value, a) <= 0
		}
		return Compare(cs.hi.value, a) < 0
	case Ge:
		if !cs.lo.set {
			return false
		}
		return Compare(cs.lo.value, a) >= 0
	case Gt:
		if !cs.lo.set {
			return false
		}
		if cs.lo.strict {
			return Compare(cs.lo.value, a) >= 0
		}
		return Compare(cs.lo.value, a) > 0
	case Ne:
		// Implied when a lies outside the admitted set.
		if cs.lo.set && (Compare(a, cs.lo.value) < 0 || (Compare(a, cs.lo.value) == 0 && cs.lo.strict)) {
			return true
		}
		if cs.hi.set && (Compare(a, cs.hi.value) > 0 || (Compare(a, cs.hi.value) == 0 && cs.hi.strict)) {
			return true
		}
		for _, n := range cs.ne {
			if Compare(n, a) == 0 {
				return true
			}
		}
		return false
	}
	return false
}

// Equivalent reports whether p and q match exactly the same nodes.
func Equivalent(p, q Pred) bool {
	return p.Implies(q) && q.Implies(p)
}

// And returns the conjunction of two predicates.
func And(p, q Pred) Pred {
	out := make([]Clause, 0, len(p.clauses)+len(q.clauses))
	out = append(out, p.clauses...)
	out = append(out, q.clauses...)
	return Pred{clauses: out}
}

// Attrs returns the sorted set of attribute names the predicate mentions.
func (p Pred) Attrs() []string {
	seen := map[string]bool{}
	var out []string
	for _, c := range p.clauses {
		if !seen[c.Attr] {
			seen[c.Attr] = true
			out = append(out, c.Attr)
		}
	}
	sort.Strings(out)
	return out
}
