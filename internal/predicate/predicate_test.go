package predicate

import (
	"fmt"
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"
)

func TestParseAndString(t *testing.T) {
	tests := []struct {
		in   string
		want string
	}{
		{"job = doctor", "job = doctor"},
		{"job=doctor, age>300", "job = doctor, age > 300"},
		{`cat = "Film & Animation", com <= 20`, `cat = "Film & Animation", com <= 20`},
		{"a != 3, b >= 2, c < 10", "a != 3, b >= 2, c < 10"},
		{"*", "*"},
		{"", "*"},
	}
	for _, tc := range tests {
		p, err := Parse(tc.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tc.in, err)
		}
		if got := p.String(); got != tc.want {
			t.Errorf("Parse(%q).String() = %q, want %q", tc.in, got, tc.want)
		}
		// Round trip.
		again, err := Parse(p.String())
		if err != nil {
			t.Fatalf("round trip Parse(%q): %v", p.String(), err)
		}
		if again.String() != p.String() {
			t.Errorf("round trip mismatch: %q vs %q", again.String(), p.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	// "job <=" / "job >=" pin the operator scan: a two-byte operator with
	// no value must not re-match as the one-byte prefix with value "=".
	for _, in := range []string{"job", "= doctor", "job =", "job ~ doctor", "a = 1, , b = 2",
		"job <=", "job >=", "job !=", "a b = c"} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q): expected error", in)
		}
	}
}

func TestEval(t *testing.T) {
	attrs := map[string]string{
		"job": "doctor", "age": "350", "sp": "cloning", "com": "25",
	}
	tests := []struct {
		pred string
		want bool
	}{
		{"job = doctor", true},
		{"job = biologist", false},
		{"age > 300", true},
		{"age > 400", false},
		{"age >= 350", true},
		{"age <= 350", true},
		{"age < 350", false},
		{"age != 350", false},
		{"age != 351", true},
		{"job = doctor, age > 300", true},
		{"job = doctor, age > 400", false},
		{"missing = 1", false}, // absent attribute never matches
		{"*", true},
	}
	for _, tc := range tests {
		p := MustParse(tc.pred)
		if got := p.Eval(attrs); got != tc.want {
			t.Errorf("%q.Eval = %v, want %v", tc.pred, got, tc.want)
		}
	}
}

func TestNumericVsLexicographic(t *testing.T) {
	// "9" < "10" numerically but "10" < "9" lexicographically.
	if !MustParse("x < 10").Eval(map[string]string{"x": "9"}) {
		t.Error("numeric comparison should apply: 9 < 10")
	}
	if MustParse("x < bb").Eval(map[string]string{"x": "cc"}) {
		t.Error("lexicographic: cc < bb should be false")
	}
	if !MustParse("x < bb").Eval(map[string]string{"x": "aa"}) {
		t.Error("lexicographic: aa < bb should be true")
	}
}

func TestSatisfiable(t *testing.T) {
	tests := []struct {
		pred string
		want bool
	}{
		{"*", true},
		{"a = 1", true},
		{"a = 1, a = 2", false},
		{"a = 1, a = 1", true},
		{"a > 5, a < 3", false},
		{"a > 5, a < 6", true},
		{"a >= 5, a <= 5", true},
		{"a > 5, a <= 5", false},
		{"a >= 5, a <= 5, a != 5", false},
		{"a = 5, a != 5", false},
		{"a = 5, a > 4", true},
		{"a = 5, a > 5", false},
		{"a = 5, b = 1, b = 2", false},
	}
	for _, tc := range tests {
		if got := MustParse(tc.pred).Satisfiable(); got != tc.want {
			t.Errorf("%q.Satisfiable = %v, want %v", tc.pred, got, tc.want)
		}
	}
}

func TestImplies(t *testing.T) {
	tests := []struct {
		p, q string
		want bool
	}{
		{"a = 5", "a = 5", true},
		{"a = 5", "a >= 5", true},
		{"a = 5", "a > 4", true},
		{"a = 5", "a > 5", false},
		{"a = 5", "a != 6", true},
		{"a = 5", "a != 5", false},
		{"a > 5", "a > 4", true},
		{"a > 5", "a >= 5", true},
		{"a > 5", "a > 5", true},
		{"a > 5", "a > 6", false},
		{"a >= 5", "a > 4", true},
		{"a >= 5", "a > 5", false},
		{"a < 3", "a < 4", true},
		{"a < 3", "a <= 3", true},
		{"a <= 3", "a < 3", false},
		{"a < 3", "a != 7", true},
		{"a > 3", "a != 2", true},
		{"a != 2", "a != 2", true},
		{"a != 2", "a != 3", false},
		{"a >= 5, a <= 5", "a = 5", true},
		{"a > 4, a < 6", "a = 5", false}, // dense domain: not forced
		{"a = 5, b = 1", "a = 5", true},
		{"a = 5", "a = 5, b = 1", false},
		{"*", "a = 1", false},
		{"a = 1", "*", true},
		{"a = 1, a = 2", "z = 9", true}, // unsat implies everything
		{"job = doctor, age > 300", "job = doctor", true},
		{"job = doctor", "job != nurse", true},
	}
	for _, tc := range tests {
		p, q := MustParse(tc.p), MustParse(tc.q)
		if got := p.Implies(q); got != tc.want {
			t.Errorf("Implies(%q, %q) = %v, want %v", tc.p, tc.q, got, tc.want)
		}
	}
}

func TestEquivalent(t *testing.T) {
	tests := []struct {
		p, q string
		want bool
	}{
		{"a = 5", "a = 5", true},
		{"a = 5, b = 1", "b = 1, a = 5", true},
		{"a >= 5, a <= 5", "a = 5", true},
		{"a = 5", "a >= 5", false},
		{"*", "*", true},
	}
	for _, tc := range tests {
		if got := Equivalent(MustParse(tc.p), MustParse(tc.q)); got != tc.want {
			t.Errorf("Equivalent(%q, %q) = %v, want %v", tc.p, tc.q, got, tc.want)
		}
	}
}

func TestAnd(t *testing.T) {
	p := And(MustParse("a = 1"), MustParse("b = 2"))
	if !p.Eval(map[string]string{"a": "1", "b": "2"}) {
		t.Error("And should require both conjuncts")
	}
	if p.Eval(map[string]string{"a": "1"}) {
		t.Error("And missing second conjunct should fail")
	}
}

func TestAttrs(t *testing.T) {
	p := MustParse("b = 1, a = 2, b > 0")
	got := p.Attrs()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("Attrs = %v, want [a b]", got)
	}
}

// ---- property tests -----------------------------------------------------

// genPred builds a random predicate over attributes {x, y} with small
// integer constants so implication can be cross-checked by enumeration.
func genPred(r *rand.Rand) Pred {
	n := r.Intn(3) + 1
	clauses := make([]Clause, n)
	attrs := []string{"x", "y"}
	for i := range clauses {
		clauses[i] = Clause{
			Attr:  attrs[r.Intn(len(attrs))],
			Op:    Op(r.Intn(6)),
			Value: strconv.Itoa(r.Intn(6)),
		}
	}
	return New(clauses...)
}

// TestImpliesSoundOnIntegerGrid: if p.Implies(q) then every integer-grid
// point matching p matches q. (Implication over a dense domain is sound
// for any subdomain.)
func TestImpliesSoundOnIntegerGrid(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p, q := genPred(r), genPred(r)
		if !p.Implies(q) {
			return true
		}
		for x := -1; x <= 7; x++ {
			for y := -1; y <= 7; y++ {
				attrs := map[string]string{
					"x": strconv.Itoa(x), "y": strconv.Itoa(y),
				}
				if p.Eval(attrs) && !q.Eval(attrs) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestSatisfiableSoundness: if a grid point matches p, p must be
// satisfiable; if p is reported unsatisfiable no point may match.
func TestSatisfiableSoundness(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := genPred(r)
		if p.Satisfiable() {
			return true
		}
		for x := -1; x <= 7; x++ {
			for y := -1; y <= 7; y++ {
				attrs := map[string]string{"x": strconv.Itoa(x), "y": strconv.Itoa(y)}
				if p.Eval(attrs) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestImpliesPreorder: implication is reflexive and transitive.
func TestImpliesPreorder(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	preds := make([]Pred, 10)
	for i := range preds {
		preds[i] = genPred(r)
	}
	for _, p := range preds {
		if !p.Implies(p) {
			t.Fatalf("Implies not reflexive for %v", p)
		}
	}
	for _, a := range preds {
		for _, b := range preds {
			for _, c := range preds {
				if a.Implies(b) && b.Implies(c) && !a.Implies(c) {
					t.Fatalf("transitivity violated: %v ⊢ %v ⊢ %v", a, b, c)
				}
			}
		}
	}
}

func TestCompare(t *testing.T) {
	tests := []struct {
		a, b string
		want int
	}{
		{"1", "2", -1},
		{"2", "1", 1},
		{"2", "2", 0},
		{"9", "10", -1},
		{"1.5", "1.25", 1},
		{"abc", "abd", -1},
		{"doctor", "doctor", 0},
		{"10", "abc", -1}, // mixed: lexicographic
	}
	for _, tc := range tests {
		if got := Compare(tc.a, tc.b); got != tc.want {
			t.Errorf("Compare(%q,%q) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func ExamplePred_Eval() {
	p := MustParse("job = doctor, age > 300")
	fmt.Println(p.Eval(map[string]string{"job": "doctor", "age": "400"}))
	fmt.Println(p.Eval(map[string]string{"job": "doctor", "age": "200"}))
	// Output:
	// true
	// false
}
