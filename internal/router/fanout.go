package router

// This file is the per-stream fan-out/fan-in machine: one fanout per
// client POST /v1/query, one upstream per (stream, replica) it
// dispatches to. The invariant everything here serves:
//
//	every admitted request id is answered to the client EXACTLY once —
//	by whichever replica copy lands first, by a retried copy, or by a
//	router-synthesized "unavailable"/"canceled" shed — no matter which
//	replicas die, stall, or answer twice.
//
// The pending map is the single source of truth: an id is answered
// precisely when it leaves the map, and every exit point (deliver,
// shed, stream cancellation) removes it under f.mu before writing to
// the client. Replica responses for ids no longer in the map are
// counted as dup_suppressed and dropped — that is the fan-in dedup
// that makes hedging and retry safe.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"regraph/internal/wire"
)

// errStalled marks an upstream failed by the no-progress watchdog.
var errStalled = errors.New("router: upstream stalled past StallTimeout")

// pending is one admitted-but-unanswered client request. All fields
// are guarded by fanout.mu.
type pending struct {
	id       uint64 // router-internal id, unique per stream
	clientID uint64 // the id to echo on the client's response line
	req      wire.Request
	attempts int // dispatches so far (first + retries + hedges)
	done     bool
	// owners are the upstreams with a live copy of this request; a
	// request is only rescheduled when its last owner fails.
	owners       map[*upstream]struct{}
	retryPending bool
	retryTimer   *time.Timer
	hedgeTimer   *time.Timer
}

// stopTimers stops any armed retry/hedge timer (already-fired
// callbacks no-op on p.done / f.finished).
func (p *pending) stopTimers() {
	if p.retryTimer != nil {
		p.retryTimer.Stop()
		p.retryTimer = nil
	}
	if p.hedgeTimer != nil {
		p.hedgeTimer.Stop()
		p.hedgeTimer = nil
	}
}

// dispatch kinds.
const (
	dispatchFirst = iota
	dispatchRetry
	dispatchHedge
)

// fanout runs one client stream.
type fanout struct {
	rt     *Router
	ctx    context.Context
	cancel context.CancelFunc
	enc    *wire.Encoder

	mu       sync.Mutex
	cond     *sync.Cond // waits for open < MaxInFlight
	nextID   uint64
	open     int // admitted, unanswered
	pending  map[uint64]*pending
	ups      map[*replica]*upstream // live upstream per replica
	upList   []*upstream            // every upstream ever created (shutdown wait)
	readerD  bool                   // client reader hit EOF
	finished bool

	done        chan struct{} // closed when readerD && open == 0
	watchdogEnd chan struct{}
	writeFailed atomic.Bool
}

func newFanout(rt *Router, ctx context.Context, cancel context.CancelFunc, w io.Writer) *fanout {
	f := &fanout{
		rt:          rt,
		ctx:         ctx,
		cancel:      cancel,
		enc:         wire.NewEncoder(w),
		pending:     map[uint64]*pending{},
		ups:         map[*replica]*upstream{},
		done:        make(chan struct{}),
		watchdogEnd: make(chan struct{}),
	}
	f.cond = sync.NewCond(&f.mu)
	return f
}

// send writes one response line to the client; a failed write means
// the client is stalled or gone, which cancels the stream. Never
// called with f.mu held (the write can block on the client).
func (f *fanout) send(resp wire.Response) {
	if err := f.enc.Encode(resp); err != nil {
		f.writeFailed.Store(true)
		f.cancel()
	}
}

// run reads the client's request lines, dispatches them, and blocks
// until every admitted id has been answered (or the stream dies).
func (f *fanout) run(body io.Reader) {
	// The admission wait below must wake on stream death.
	stopWake := context.AfterFunc(f.ctx, func() {
		f.mu.Lock()
		f.cond.Broadcast()
		f.mu.Unlock()
	})
	defer stopWake()
	go f.watchdog()

	dec := wire.NewDecoder(body)
	for {
		req, err := dec.Next()
		if err == io.EOF {
			break
		}
		var le *wire.LineError
		if errors.As(err, &le) {
			f.rt.parseErrors.Inc()
			f.send(wire.Response{ID: derefID(req.ID), Err: le.Error()})
			continue
		}
		if err != nil {
			if f.ctx.Err() == nil {
				f.rt.parseErrors.Inc()
				f.send(wire.Response{Kind: "stream", Err: "request stream aborted: " + err.Error()})
			}
			break
		}
		// Admission: bound this stream's unanswered requests; once full,
		// stop reading the body and let TCP back-pressure reach the
		// client, exactly like the single-server session bound.
		f.mu.Lock()
		for f.open >= f.rt.opts.MaxInFlight && f.ctx.Err() == nil {
			f.cond.Wait()
		}
		if f.ctx.Err() != nil {
			f.mu.Unlock()
			break
		}
		p := &pending{
			id:       f.nextID,
			clientID: derefID(req.ID),
			req:      req,
			owners:   map[*upstream]struct{}{},
		}
		// Replicas see the router's internal id (unique per upstream
		// stream even when the client reuses ids); the client id is
		// restored at fan-in.
		p.req.ID = &p.id
		f.nextID++
		f.pending[p.id] = p
		f.open++
		f.rt.requests.Inc()
		f.mu.Unlock()
		f.dispatch(p, nil, dispatchFirst)
	}

	f.mu.Lock()
	f.readerD = true
	f.maybeFinishLocked()
	f.mu.Unlock()
	select {
	case <-f.done:
		f.shutdown(true)
	case <-f.ctx.Done():
		f.shutdown(false)
	}
}

// maybeFinishLocked closes done when the client has stopped sending
// and nothing is unanswered. Caller holds f.mu.
func (f *fanout) maybeFinishLocked() {
	if f.readerD && f.open == 0 && !f.finished {
		f.finished = true
		close(f.done)
	}
}

// shutdown tears the stream down: close upstream request bodies (a
// clean EOF lets replicas end their response streams), wait briefly,
// then cancel whatever is left. graceful is false when the stream died
// (client gone, drain forced, timeout): any still-pending ids are then
// answered with a canceled line inside the handler's write grace, so
// the client sees a terminated protocol, not a torn TCP stream.
func (f *fanout) shutdown(graceful bool) {
	f.mu.Lock()
	f.finished = true
	ups := f.upList
	var canceled []wire.Response
	for _, p := range f.pending {
		p.stopTimers()
		if !p.done {
			p.done = true
			canceled = append(canceled, wire.Response{
				ID:      p.clientID,
				Err:     "router: stream canceled before the request was answered",
				ErrKind: "canceled",
			})
		}
	}
	f.pending = map[uint64]*pending{}
	f.open = 0
	f.cond.Broadcast()
	f.mu.Unlock()

	for _, r := range canceled {
		f.send(r)
	}
	for _, up := range ups {
		up.pw.Close()
	}
	if graceful {
		grace := time.NewTimer(5 * time.Second)
		defer grace.Stop()
	wait:
		for _, up := range ups {
			select {
			case <-up.done:
			case <-grace.C:
				break wait
			}
		}
	}
	for _, up := range ups {
		up.cancel()
	}
	for _, up := range ups {
		<-up.done
	}
	<-f.watchdogEnd
}

// watchdog fails upstreams that hold unanswered requests but have made
// no progress for StallTimeout — the failover trigger for a wedged
// connection that neither errors nor answers.
func (f *fanout) watchdog() {
	defer close(f.watchdogEnd)
	period := f.rt.opts.StallTimeout / 4
	if period < 5*time.Millisecond {
		period = 5 * time.Millisecond
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-f.ctx.Done():
			return
		case <-f.done:
			return
		case <-t.C:
		}
		cutoff := time.Now().Add(-f.rt.opts.StallTimeout).UnixNano()
		var stalled []*upstream
		f.mu.Lock()
		for _, up := range f.ups {
			if len(up.submitted) > 0 && up.lastProgress.Load() < cutoff {
				stalled = append(stalled, up)
			}
		}
		f.mu.Unlock()
		for _, up := range stalled {
			f.failUpstream(up, errStalled)
		}
	}
}

// dispatch sends p to a replica. avoid, when non-nil, is the replica
// that just failed it (preferred excluded, but allowed as a last
// resort — it may be the only one left). kind selects first/retry/
// hedge accounting; a hedge that finds no candidate is silently
// dropped, anything else sheds the request with "unavailable".
func (f *fanout) dispatch(p *pending, avoid *replica, kind int) {
	f.mu.Lock()
	if p.done || f.finished || f.ctx.Err() != nil {
		f.mu.Unlock()
		return
	}
	exclude := make(map[*replica]bool, len(p.owners)+1)
	for up := range p.owners {
		exclude[up.rep] = true
	}
	if avoid != nil {
		exclude[avoid] = true
	}
	rep := f.rt.pick(exclude)
	if rep == nil && avoid != nil {
		// Nothing else can serve; re-admit the replica that just failed
		// this request — one desperate re-dispatch beats a shed.
		delete(exclude, avoid)
		rep = f.rt.pick(exclude)
	}
	if rep == nil {
		if kind == dispatchHedge {
			f.mu.Unlock()
			return // the original copy is still in flight
		}
		out := f.shedLocked(p)
		f.mu.Unlock()
		if out != nil {
			f.send(*out)
		}
		return
	}
	up := f.upstreamForLocked(rep)
	up.submitted[p.id] = struct{}{}
	p.owners[up] = struct{}{}
	p.attempts++
	rep.inflight.Add(1)
	rep.requests.Inc()
	if kind == dispatchFirst && f.rt.opts.HedgeAfter > 0 && p.hedgeTimer == nil {
		p.hedgeTimer = time.AfterFunc(f.rt.opts.HedgeAfter, func() { f.hedge(p) })
	}
	line := p.req // struct copy; ID still points at p.id, which never moves
	f.mu.Unlock()

	// The pipe write blocks while the replica applies back-pressure;
	// never under f.mu. A failed write fails the whole upstream (the
	// transport is gone or the stream is shutting down).
	if err := up.write(line); err != nil {
		f.failUpstream(up, fmt.Errorf("router: write to %s: %w", rep.url, err))
	}
}

// shedLocked answers p with error_kind "unavailable" (returned for the
// caller to send after unlocking). Caller holds f.mu.
func (f *fanout) shedLocked(p *pending) *wire.Response {
	if p.done {
		return nil
	}
	p.done = true
	p.stopTimers()
	delete(f.pending, p.id)
	f.open--
	f.cond.Broadcast()
	f.rt.unavailable.Inc()
	f.maybeFinishLocked()
	return &wire.Response{
		ID:      p.clientID,
		Err:     "router: no live replica available",
		ErrKind: wire.ErrKindUnavailable,
	}
}

// hedge fires when p's first dispatch has not answered within
// HedgeAfter: dispatch a speculative duplicate to a second replica,
// budget permitting.
func (f *fanout) hedge(p *pending) {
	f.mu.Lock()
	if p.done || f.finished || f.ctx.Err() != nil || p.attempts >= f.rt.opts.MaxAttempts {
		f.mu.Unlock()
		return
	}
	f.mu.Unlock()
	if !f.rt.budget.take(time.Now()) {
		f.rt.budgetDenied.Inc()
		return
	}
	f.rt.hedges.Inc()
	f.dispatch(p, nil, dispatchHedge)
}

// scheduleRetryLocked arms a backoff-delayed re-dispatch of p after a
// failure charged to failed. False means the retry policy refuses
// (attempts exhausted, budget empty, stream ending) and the caller
// must shed or surface instead. Caller holds f.mu.
func (f *fanout) scheduleRetryLocked(p *pending, failed *replica) bool {
	if p.done || f.finished || f.ctx.Err() != nil {
		return false
	}
	if p.retryPending {
		return true // a retry is already armed; don't double-schedule
	}
	if p.attempts >= f.rt.opts.MaxAttempts {
		return false
	}
	if !f.rt.budget.take(time.Now()) {
		f.rt.budgetDenied.Inc()
		return false
	}
	f.rt.retries.Inc()
	p.retryPending = true
	delay := f.rt.backoff(p.attempts)
	p.retryTimer = time.AfterFunc(delay, func() {
		f.mu.Lock()
		p.retryPending = false
		p.retryTimer = nil
		f.mu.Unlock()
		f.dispatch(p, failed, dispatchRetry)
	})
	return true
}

// deliver fans one replica response in. Exactly-once: the first
// response for a pending id wins and removes it; anything else (a
// slower hedge, a retry that raced its original) is dropped as
// dup_suppressed.
func (f *fanout) deliver(up *upstream, resp wire.Response) {
	f.mu.Lock()
	if _, ok := up.submitted[resp.ID]; ok {
		delete(up.submitted, resp.ID)
		up.rep.inflight.Add(-1)
	}
	p := f.pending[resp.ID]
	if p == nil || p.done || f.finished {
		f.mu.Unlock()
		f.rt.dups.Inc()
		up.rep.onSuccess()
		return
	}
	delete(p.owners, up)
	// A replica that cancels a request (it is draining or shutting
	// down) did not answer it — re-dispatch elsewhere instead of
	// surfacing the cancellation, budget permitting.
	if resp.ErrKind == "canceled" && f.scheduleRetryLocked(p, up.rep) {
		f.mu.Unlock()
		up.rep.onSuccess()
		return
	}
	p.done = true
	p.stopTimers()
	delete(f.pending, p.id)
	f.open--
	f.cond.Broadcast()
	out := resp
	out.ID = p.clientID
	f.maybeFinishLocked()
	f.mu.Unlock()
	up.rep.onSuccess()
	f.send(out)
}

// failUpstream declares one upstream dead (transport error, bad
// status, stall, torn stream) and re-dispatches every id it still
// owed. Ids whose last owner it was are retried under the budget or
// shed "unavailable"; ids with a live hedge copy elsewhere just lose
// an owner.
func (f *fanout) failUpstream(up *upstream, err error) {
	f.mu.Lock()
	if up.dead {
		f.mu.Unlock()
		return
	}
	up.dead = true
	if f.ups[up.rep] == up {
		delete(f.ups, up.rep)
	}
	orphans := up.submitted
	up.submitted = map[uint64]struct{}{}
	up.rep.inflight.Add(-int64(len(orphans)))
	var sheds []wire.Response
	for id := range orphans {
		p := f.pending[id]
		if p == nil || p.done {
			continue
		}
		delete(p.owners, up)
		if len(p.owners) > 0 {
			continue // a hedged copy is still live elsewhere
		}
		if f.scheduleRetryLocked(p, up.rep) {
			continue // the retry timer re-dispatches it
		}
		if out := f.shedLocked(p); out != nil {
			sheds = append(sheds, *out)
		}
	}
	f.mu.Unlock()

	up.rep.onFailure(time.Now())
	up.close()
	for _, r := range sheds {
		f.send(r)
	}
}

// upstream is one POST /v1/query to one replica on behalf of one
// client stream: a pipe-bodied request whose reader goroutine fans
// responses back in.
type upstream struct {
	f      *fanout
	rep    *replica
	ctx    context.Context
	cancel context.CancelFunc
	pw     *io.PipeWriter

	sendMu sync.Mutex
	enc    *json.Encoder

	// submitted is the set of router ids sent and not yet answered —
	// exactly what failover must re-dispatch. Guarded by f.mu, as is
	// dead.
	submitted map[uint64]struct{}
	dead      bool

	// lastProgress (unix nanos) advances on every request written and
	// every response line read; the watchdog compares it to
	// StallTimeout.
	lastProgress atomic.Int64

	done chan struct{} // reader goroutine exited
}

// upstreamForLocked returns the live upstream for rep, creating it
// (and its reader goroutine) on first use. Caller holds f.mu.
func (f *fanout) upstreamForLocked(rep *replica) *upstream {
	if up, ok := f.ups[rep]; ok {
		return up
	}
	ctx, cancel := context.WithCancel(f.ctx)
	pr, pw := io.Pipe()
	up := &upstream{
		f:         f,
		rep:       rep,
		ctx:       ctx,
		cancel:    cancel,
		pw:        pw,
		enc:       json.NewEncoder(pw),
		submitted: map[uint64]struct{}{},
		done:      make(chan struct{}),
	}
	up.progress()
	f.ups[rep] = up
	f.upList = append(f.upList, up)
	go up.run(pr)
	return up
}

func (up *upstream) progress() { up.lastProgress.Store(time.Now().UnixNano()) }

// write sends one request line up the pipe; it blocks while the
// replica applies back-pressure.
func (up *upstream) write(req wire.Request) error {
	up.sendMu.Lock()
	defer up.sendMu.Unlock()
	err := up.enc.Encode(&req)
	if err == nil {
		up.progress()
	}
	return err
}

// close tears the transport down: cancel the request context and snap
// the body pipe so any blocked write unblocks.
func (up *upstream) close() {
	up.cancel()
	up.pw.CloseWithError(errors.New("router: upstream failed"))
}

// run issues the POST and fans response lines back in until the stream
// ends. Any abnormal end (transport error, non-200, torn stream,
// unparseable line, or EOF with unanswered ids) fails the upstream.
func (up *upstream) run(pr *io.PipeReader) {
	defer close(up.done)
	req, err := http.NewRequestWithContext(up.ctx, http.MethodPost, up.rep.url+"/v1/query", pr)
	if err != nil {
		pr.CloseWithError(err)
		up.f.failUpstream(up, err)
		return
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := up.f.rt.client.Do(req)
	if err != nil {
		pr.CloseWithError(err)
		up.f.failUpstream(up, fmt.Errorf("router: %s: %w", up.rep.url, err))
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<10))
		up.f.failUpstream(up, fmt.Errorf("router: %s: %s: %s",
			up.rep.url, resp.Status, bytes.TrimSpace(body)))
		return
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), wire.MaxResponseLineBytes)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		up.progress()
		var wresp wire.Response
		if err := json.Unmarshal(line, &wresp); err != nil {
			up.f.failUpstream(up, fmt.Errorf("router: %s: bad response line: %w", up.rep.url, err))
			return
		}
		if wresp.Kind == "stream" {
			// The replica's stream itself failed; its id is meaningless
			// and everything unanswered needs a new home.
			up.f.failUpstream(up, fmt.Errorf("router: %s: upstream stream error: %s", up.rep.url, wresp.Err))
			return
		}
		up.f.deliver(up, wresp)
	}
	err = sc.Err()
	up.f.mu.Lock()
	owed := len(up.submitted)
	up.f.mu.Unlock()
	if err != nil || owed > 0 {
		if err == nil {
			err = fmt.Errorf("router: %s: stream closed with %d unanswered requests", up.rep.url, owed)
		}
		up.f.failUpstream(up, err)
		return
	}
	// Clean end (the replica drained after our EOF): retire quietly.
	up.f.mu.Lock()
	up.dead = true
	if up.f.ups[up.rep] == up {
		delete(up.f.ups, up.rep)
	}
	up.f.mu.Unlock()
}

// handleQuery is POST /v1/query: the same stream contract as
// internal/server, served by fan-out.
func (rt *Router) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST NDJSON request lines to /v1/query", http.StatusMethodNotAllowed)
		return
	}
	if rt.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	// Full duplex + unstick deadlines: identical reasoning to
	// internal/server — reads stop the moment the stream dies, writes
	// get a grace period so final error-tagged lines still land.
	rc := http.NewResponseController(w)
	rc.EnableFullDuplex()

	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	stopAfter := context.AfterFunc(rt.base, cancel)
	defer stopAfter()

	f := newFanout(rt, ctx, cancel, w)
	unblocked := make(chan struct{})
	stopUnblock := context.AfterFunc(ctx, func() {
		defer close(unblocked)
		now := time.Now()
		rc.SetReadDeadline(now)
		rc.SetWriteDeadline(now.Add(time.Second))
	})
	defer func() {
		if !stopUnblock() {
			<-unblocked
			if !f.writeFailed.Load() {
				rc.SetWriteDeadline(time.Time{})
			}
		}
	}()

	if !rt.addStream() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	defer rt.endStream()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	rc.Flush()
	f.run(r.Body)
}

func derefID(id *uint64) uint64 {
	if id == nil {
		return 0
	}
	return *id
}
