// Package router is the fault-tolerant replica tier: an HTTP front end
// speaking the same POST /v1/query NDJSON stream contract as
// internal/server, load-balancing each stream's request lines across a
// set of rgserve replicas (cmd/rgrouter is the binary).
//
// Queries in this engine are read-only and idempotent — PR 5 proved
// wire results bit-identical to in-process RunBatch — which is what
// makes the router's aggressive policies sound: any request id may be
// re-issued to any replica without changing its answer, so the router
// retries failures, hedges stragglers, and fails over mid-stream, and
// fan-in dedups by id so the client is answered exactly once.
//
// Per replica the router keeps:
//
//   - an active prober (GET /readyz) gating readiness, so a draining or
//     dead replica stops receiving new work within one probe interval;
//   - a three-state circuit breaker fed by passive failure accounting:
//     closed → open after FailThreshold consecutive failures; open →
//     half-open after Cooldown (one trial request at a time); half-open
//     → closed on trial success, back to open on failure. Probe results
//     feed the breaker too, so an idle dead replica still opens it.
//
// Dispatch picks a replica by power-of-two-choices over in-flight
// counts among the ready, breaker-admitted candidates. Failed requests
// retry on another replica under a token-bucket retry budget (so a
// dying fleet is not DDoSed by its own router) with exponential
// backoff and jitter; optional hedging duplicates a request to a
// second replica when the first answer is slow. When a replica dies or
// stalls mid-stream, every submitted-but-unanswered id is re-submitted
// elsewhere; when nothing is live, requests are shed with per-line
// error_kind "unavailable" rather than tearing the stream.
package router

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httputil"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"regraph/internal/metrics"
	"regraph/internal/wire"
)

// Options configures a Router. The zero value of every field means its
// documented default; Replicas is the only required field.
type Options struct {
	// Replicas is the backend set as base URLs ("http://host:port").
	Replicas []string

	// MaxInFlight caps each client stream's dispatched-but-unanswered
	// requests; once full, the router stops reading that stream's body
	// and TCP back-pressure reaches the client (the same flow-control
	// contract as internal/server). Default 256.
	MaxInFlight int

	// ProbeInterval is the readiness-probe period per replica; negative
	// disables active probing (tests drive ProbeNow instead). Default
	// 250ms.
	ProbeInterval time.Duration

	// ProbeTimeout bounds one probe request. Default 1s.
	ProbeTimeout time.Duration

	// FailThreshold is the consecutive-failure count that opens a
	// replica's breaker. Default 3.
	FailThreshold int

	// Cooldown is how long an open breaker waits before admitting a
	// half-open trial. Default 1s.
	Cooldown time.Duration

	// MaxAttempts caps dispatches per request, the first included, so
	// MaxAttempts-1 retries. Default 4; values < 1 mean 1 (no retries).
	MaxAttempts int

	// RetryBudgetRate and RetryBudgetBurst parameterize the token
	// bucket that admits retry and hedge dispatches: Rate tokens/sec
	// refill up to Burst. A router-wide budget, so correlated failures
	// degrade to sheds instead of retry storms. Defaults 50 and 100.
	RetryBudgetRate  float64
	RetryBudgetBurst float64

	// RetryBackoff is the base retry delay, doubled per attempt up to
	// MaxRetryBackoff, with jitter in [1/2, 1) of the computed delay.
	// Defaults 25ms and 1s.
	RetryBackoff    time.Duration
	MaxRetryBackoff time.Duration

	// HedgeAfter, when positive, dispatches a speculative duplicate to
	// a second replica if the first has not answered within this delay.
	// Hedges draw from the retry budget and count toward MaxAttempts.
	// Zero disables hedging.
	HedgeAfter time.Duration

	// StallTimeout fails an upstream replica stream that has
	// unanswered requests but no read/write progress for this long —
	// the mid-stream failover trigger for a wedged (not dead)
	// connection. Default 5s.
	StallTimeout time.Duration

	// Seed seeds the jitter and power-of-two-choices randomness; 0
	// means a fixed default (the router's behavior is then fully
	// deterministic given deterministic replicas, which the chaos suite
	// relies on).
	Seed int64

	// Transport overrides the HTTP transport to the replicas (tests
	// inject fault-scripted dialers). Nil means a clone of
	// http.DefaultTransport.
	Transport http.RoundTripper

	// Writer is the writer upstream's base URL ("http://host:port"): the
	// rgserve owning the write path. When set, POST /v1/mutate and POST
	// /v1/subscribe stream through to it; when empty the router is a
	// read-only tier and refuses write-path streams explicitly with
	// error_kind "read_only" lines (never a silent 404).
	Writer string
}

// withDefaults resolves zero fields to documented defaults.
func (o Options) withDefaults() Options {
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 256
	}
	if o.ProbeInterval == 0 {
		o.ProbeInterval = 250 * time.Millisecond
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = time.Second
	}
	if o.FailThreshold <= 0 {
		o.FailThreshold = 3
	}
	if o.Cooldown <= 0 {
		o.Cooldown = time.Second
	}
	if o.MaxAttempts < 1 {
		if o.MaxAttempts == 0 {
			o.MaxAttempts = 4
		} else {
			o.MaxAttempts = 1
		}
	}
	if o.RetryBudgetRate <= 0 {
		o.RetryBudgetRate = 50
	}
	if o.RetryBudgetBurst <= 0 {
		o.RetryBudgetBurst = 100
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 25 * time.Millisecond
	}
	if o.MaxRetryBackoff <= 0 {
		o.MaxRetryBackoff = time.Second
	}
	if o.StallTimeout <= 0 {
		o.StallTimeout = 5 * time.Second
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Breaker states.
const (
	stClosed = iota
	stOpen
	stHalfOpen
)

func stateName(s int) string {
	switch s {
	case stOpen:
		return "open"
	case stHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// replica is one backend: its readiness bit (active probes), circuit
// breaker (passive failure accounting) and load counters.
type replica struct {
	url           string
	cooldown      time.Duration
	failThreshold int
	ready         atomic.Bool

	// inflight is the router's dispatched-but-unanswered count on this
	// replica — the power-of-two-choices load signal.
	inflight metrics.Gauge

	requests metrics.Counter
	failures metrics.Counter

	mu           sync.Mutex
	state        int
	fails        int       // consecutive failures while closed
	openedAt     time.Time // when the breaker last opened
	halfOpenBusy bool      // the single half-open trial slot is taken
	opens        metrics.Counter
	closes       metrics.Counter
}

// canServe reports (without claiming anything) whether a dispatch to
// this replica is currently admissible.
func (r *replica) canServe(now time.Time) bool {
	if !r.ready.Load() {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	switch r.state {
	case stOpen:
		return !r.openedAt.Add(r.cooldown).After(now)
	case stHalfOpen:
		return !r.halfOpenBusy
	default:
		return true
	}
}

// acquire claims admission for one dispatch: in closed state always;
// in open state it transitions to half-open and claims the single
// trial slot once the cooldown has elapsed; in half-open only if the
// trial slot is free. A false return means pick another replica.
func (r *replica) acquire(now time.Time) bool {
	if !r.ready.Load() {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	switch r.state {
	case stOpen:
		if r.openedAt.Add(r.cooldown).After(now) {
			return false
		}
		r.state = stHalfOpen
		r.halfOpenBusy = true
		return true
	case stHalfOpen:
		if r.halfOpenBusy {
			return false
		}
		r.halfOpenBusy = true
		return true
	default:
		return true
	}
}

// onSuccess records a request the replica answered (any answer — even
// a per-line error — proves the transport and the replica alive).
func (r *replica) onSuccess() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.fails = 0
	if r.state != stClosed {
		r.state = stClosed
		r.halfOpenBusy = false
		r.closes.Inc()
	}
}

// onFailure records a stream-level failure charged to this replica
// (dead connection, stall, failed probe).
func (r *replica) onFailure(now time.Time) {
	r.failures.Inc()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.fails++
	switch r.state {
	case stHalfOpen:
		r.state = stOpen
		r.openedAt = now
		r.halfOpenBusy = false
		r.opens.Inc()
	case stClosed:
		if r.fails >= r.failThreshold {
			r.state = stOpen
			r.openedAt = now
			r.opens.Inc()
		}
	case stOpen:
		// A failure while open (a desperate last-resort dispatch, or a
		// probe) re-arms the cooldown.
		r.openedAt = now
	}
}

// onProbe folds one active-probe verdict in. Success flips readiness
// back on and, once the cooldown has elapsed, moves an open breaker to
// half-open so the next dispatch is the recovery trial — a probe alone
// never closes the breaker, because answering /readyz is weaker
// evidence than answering a query. Failure feeds the breaker like any
// other failure, so an idle dead replica still opens it.
func (r *replica) onProbe(ok bool, now time.Time) {
	r.ready.Store(ok)
	if !ok {
		r.onFailure(now)
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.fails = 0
	if r.state == stOpen && !r.openedAt.Add(r.cooldown).After(now) {
		r.state = stHalfOpen
		r.halfOpenBusy = false
	}
}

func (r *replica) stats() wire.ReplicaStats {
	r.mu.Lock()
	state := r.state
	opens := r.opens.Load()
	closes := r.closes.Load()
	r.mu.Unlock()
	return wire.ReplicaStats{
		URL:           r.url,
		State:         stateName(state),
		Ready:         r.ready.Load(),
		InFlight:      int(r.inflight.Load()),
		Requests:      r.requests.Load(),
		Failures:      r.failures.Load(),
		BreakerOpens:  opens,
		BreakerCloses: closes,
	}
}

// bucket is the token-bucket retry budget.
type bucket struct {
	mu     sync.Mutex
	tokens float64
	rate   float64 // tokens per second
	burst  float64
	last   time.Time
}

func newBucket(rate, burst float64) *bucket {
	return &bucket{tokens: burst, rate: rate, burst: burst, last: time.Now()}
}

// take spends one token if available.
func (b *bucket) take(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// Router fans NDJSON query streams out over a replica set. Create it
// with New; it is safe for concurrent use and is the lifecycle owner
// of its probers and upstream connections.
type Router struct {
	opts   Options
	reps   []*replica
	client *http.Client
	budget *bucket
	mux    *http.ServeMux

	// base is cancelled by Close: probers, upstream requests and live
	// streams all derive from it.
	base       context.Context
	cancelBase context.CancelFunc
	draining   atomic.Bool

	rngMu sync.Mutex
	rng   *rand.Rand

	mu        sync.Mutex
	liveCount int
	hs        *http.Server
	drained   chan struct{}
	drainOnce sync.Once
	wg        sync.WaitGroup // probers

	streamsActive metrics.Gauge
	streamsTotal  metrics.Counter
	requests      metrics.Counter
	retries       metrics.Counter
	hedges        metrics.Counter
	dups          metrics.Counter
	unavailable   metrics.Counter
	budgetDenied  metrics.Counter
	parseErrors   metrics.Counter

	// Write path (see write.go): nil writeProxy means a read-only tier.
	writeProxy     *httputil.ReverseProxy
	writeForwarded metrics.Counter
	writeRejected  metrics.Counter
	writeErrors    metrics.Counter
}

// New builds a router over the configured replica set and starts its
// readiness probers (unless ProbeInterval < 0). Replicas start
// optimistically ready; the first probe round corrects that within
// ProbeTimeout.
func New(opts Options) (*Router, error) {
	opts = opts.withDefaults()
	if len(opts.Replicas) == 0 {
		return nil, fmt.Errorf("router: no replicas configured")
	}
	base, cancel := context.WithCancel(context.Background())
	tr := opts.Transport
	if tr == nil {
		t := http.DefaultTransport.(*http.Transport).Clone()
		t.MaxIdleConnsPerHost = 16
		tr = t
	}
	rt := &Router{
		opts:       opts,
		client:     &http.Client{Transport: tr},
		budget:     newBucket(opts.RetryBudgetRate, opts.RetryBudgetBurst),
		base:       base,
		cancelBase: cancel,
		rng:        rand.New(rand.NewSource(opts.Seed)),
		drained:    make(chan struct{}),
	}
	seen := map[string]bool{}
	for _, u := range opts.Replicas {
		u = strings.TrimRight(strings.TrimSpace(u), "/")
		if u == "" || seen[u] {
			cancel()
			return nil, fmt.Errorf("router: empty or duplicate replica url %q", u)
		}
		seen[u] = true
		rep := &replica{url: u, cooldown: opts.Cooldown, failThreshold: opts.FailThreshold}
		rep.ready.Store(true)
		rt.reps = append(rt.reps, rep)
	}
	if w := strings.TrimRight(strings.TrimSpace(opts.Writer), "/"); w != "" {
		u, err := url.Parse(w)
		if err != nil || u.Scheme == "" || u.Host == "" {
			cancel()
			return nil, fmt.Errorf("router: bad writer url %q", opts.Writer)
		}
		rt.writeProxy = rt.newWriteProxy(u, tr)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/query", rt.handleQuery)
	mux.HandleFunc("/v1/mutate", rt.handleMutate)
	mux.HandleFunc("/v1/subscribe", rt.handleSubscribe)
	mux.HandleFunc("/v1/stats", rt.handleStats)
	mux.HandleFunc("/healthz", rt.handleHealth)
	mux.HandleFunc("/readyz", rt.handleReady)
	rt.mux = mux
	if opts.ProbeInterval > 0 {
		for _, rep := range rt.reps {
			rt.wg.Add(1)
			go rt.probeLoop(rep)
		}
	}
	return rt, nil
}

// probeLoop probes one replica until the router closes.
func (rt *Router) probeLoop(rep *replica) {
	defer rt.wg.Done()
	t := time.NewTicker(rt.opts.ProbeInterval)
	defer t.Stop()
	rt.probeOne(rep)
	for {
		select {
		case <-rt.base.Done():
			return
		case <-t.C:
			rt.probeOne(rep)
		}
	}
}

// probeOne runs a single readiness probe against rep.
func (rt *Router) probeOne(rep *replica) {
	ctx, cancel := context.WithTimeout(rt.base, rt.opts.ProbeTimeout)
	defer cancel()
	ok := false
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep.url+"/readyz", nil)
	if err == nil {
		resp, derr := rt.client.Do(req)
		if derr == nil {
			io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<10))
			resp.Body.Close()
			ok = resp.StatusCode == http.StatusOK
		}
	}
	rep.onProbe(ok, time.Now())
}

// ProbeNow probes every replica once, synchronously (tests and startup
// use it to settle readiness deterministically instead of waiting a
// probe interval).
func (rt *Router) ProbeNow() {
	var wg sync.WaitGroup
	for _, rep := range rt.reps {
		wg.Add(1)
		go func(rep *replica) {
			defer wg.Done()
			rt.probeOne(rep)
		}(rep)
	}
	wg.Wait()
}

// pick chooses a dispatch target by power-of-two-choices over
// in-flight counts among the admissible replicas not in exclude, then
// claims admission from its breaker. Nil means nothing can serve.
func (rt *Router) pick(exclude map[*replica]bool) *replica {
	now := time.Now()
	cands := make([]*replica, 0, len(rt.reps))
	for _, rep := range rt.reps {
		if exclude[rep] || !rep.canServe(now) {
			continue
		}
		cands = append(cands, rep)
	}
	for len(cands) > 0 {
		var chosen *replica
		if len(cands) == 1 {
			chosen = cands[0]
		} else {
			rt.rngMu.Lock()
			i := rt.rng.Intn(len(cands))
			j := rt.rng.Intn(len(cands) - 1)
			rt.rngMu.Unlock()
			if j >= i {
				j++
			}
			chosen = cands[i]
			if cands[j].inflight.Load() < chosen.inflight.Load() {
				chosen = cands[j]
			}
		}
		if chosen.acquire(now) {
			return chosen
		}
		// Lost the half-open trial slot (or readiness flipped) since the
		// candidate scan: drop it and retry among the rest.
		for k, c := range cands {
			if c == chosen {
				cands = append(cands[:k], cands[k+1:]...)
				break
			}
		}
	}
	return nil
}

// backoff computes the jittered delay before retry number `attempt`
// (1-based count of dispatches already made).
func (rt *Router) backoff(attempt int) time.Duration {
	d := rt.opts.RetryBackoff
	for i := 1; i < attempt && d < rt.opts.MaxRetryBackoff; i++ {
		d *= 2
	}
	if d > rt.opts.MaxRetryBackoff {
		d = rt.opts.MaxRetryBackoff
	}
	half := int64(d / 2)
	if half <= 0 {
		return d
	}
	rt.rngMu.Lock()
	j := rt.rng.Int63n(half)
	rt.rngMu.Unlock()
	return time.Duration(half + j)
}

// Handler returns the router's HTTP handler.
func (rt *Router) Handler() http.Handler { return rt.mux }

// ListenAndServe serves on addr until Shutdown or a listener error.
func (rt *Router) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return rt.Serve(l)
}

// Serve serves on an existing listener until Shutdown or a listener
// error (http.ErrServerClosed after a clean Shutdown, like net/http).
func (rt *Router) Serve(l net.Listener) error {
	rt.mu.Lock()
	if rt.hs == nil {
		rt.hs = &http.Server{Handler: rt.mux}
	}
	hs := rt.hs
	rt.mu.Unlock()
	return hs.Serve(l)
}

// Drain stops admitting new query streams (readyz turns 503) and waits
// for live ones to finish; if ctx expires first every live stream is
// cancelled and Drain returns ctx.Err() once they have ended.
func (rt *Router) Drain(ctx context.Context) error {
	rt.mu.Lock()
	rt.draining.Store(true)
	if rt.liveCount == 0 {
		rt.signalDrained()
	}
	rt.mu.Unlock()
	select {
	case <-rt.drained:
		return nil
	default:
	}
	select {
	case <-rt.drained:
		return nil
	case <-ctx.Done():
		rt.cancelBase()
		<-rt.drained
		return ctx.Err()
	}
}

// signalDrained closes the drained channel exactly once; callers hold
// rt.mu with draining set and no live streams.
func (rt *Router) signalDrained() {
	rt.drainOnce.Do(func() { close(rt.drained) })
}

// Shutdown gracefully stops the router: Drain, then close the
// listener. Probers are stopped either way.
func (rt *Router) Shutdown(ctx context.Context) error {
	drainErr := rt.Drain(ctx)
	rt.cancelBase()
	rt.mu.Lock()
	hs := rt.hs
	rt.mu.Unlock()
	if hs != nil {
		if drainErr != nil {
			hs.Close()
		} else if err := hs.Shutdown(ctx); err != nil {
			hs.Close()
			if drainErr == nil {
				drainErr = err
			}
		}
	}
	rt.wg.Wait()
	rt.client.CloseIdleConnections()
	return drainErr
}

// Close force-stops the router: live streams are cancelled, probers
// stopped, the listener closed.
func (rt *Router) Close() {
	rt.draining.Store(true)
	rt.cancelBase()
	rt.mu.Lock()
	hs := rt.hs
	rt.mu.Unlock()
	if hs != nil {
		hs.Close()
	}
	rt.wg.Wait()
	rt.client.CloseIdleConnections()
}

// addStream registers a live query stream; false means the router is
// draining and the stream must be refused.
func (rt *Router) addStream() bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.draining.Load() {
		return false
	}
	rt.liveCount++
	rt.streamsActive.Add(1)
	rt.streamsTotal.Inc()
	return true
}

func (rt *Router) endStream() {
	rt.mu.Lock()
	rt.liveCount--
	rt.streamsActive.Add(-1)
	if rt.draining.Load() && rt.liveCount == 0 {
		rt.signalDrained()
	}
	rt.mu.Unlock()
}

// Stats returns the /v1/stats snapshot.
func (rt *Router) Stats() wire.RouterStats {
	st := wire.RouterStats{
		Draining:       rt.draining.Load(),
		StreamsActive:  int(rt.streamsActive.Load()),
		StreamsTotal:   rt.streamsTotal.Load(),
		Requests:       rt.requests.Load(),
		Retries:        rt.retries.Load(),
		Hedges:         rt.hedges.Load(),
		DupSuppressed:  rt.dups.Load(),
		Unavailable:    rt.unavailable.Load(),
		BudgetDenied:   rt.budgetDenied.Load(),
		ParseErrors:    rt.parseErrors.Load(),
		WriteForwarded: rt.writeForwarded.Load(),
		WriteRejected:  rt.writeRejected.Load(),
		WriteErrors:    rt.writeErrors.Load(),
	}
	for _, rep := range rt.reps {
		st.Replicas = append(st.Replicas, rep.stats())
	}
	return st
}

func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET /v1/stats", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, rt.Stats())
}

// handleHealth is liveness: the router process is up.
func (rt *Router) handleHealth(w http.ResponseWriter, r *http.Request) {
	if rt.draining.Load() {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

// handleReady is readiness: at least one replica is currently
// admissible for dispatch.
func (rt *Router) handleReady(w http.ResponseWriter, r *http.Request) {
	if rt.draining.Load() {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	now := time.Now()
	for _, rep := range rt.reps {
		if rep.canServe(now) {
			fmt.Fprintln(w, "ok")
			return
		}
	}
	w.Header().Set("Retry-After", "1")
	http.Error(w, "no live replica", http.StatusServiceUnavailable)
}

// writeJSON writes v as indented JSON with a trailing newline.
func writeJSON(w http.ResponseWriter, v any) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
