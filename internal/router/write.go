package router

import (
	"errors"
	"io"
	"net/http"
	"net/http/httputil"
	"net/url"
	"time"

	"regraph/internal/mutate"
	"regraph/internal/wire"
)

// This file is the router's write path. A replica router load-balances
// reads; writes have a single owner (the rgserve holding the engine's
// apply loop and its WAL), so POST /v1/mutate and POST /v1/subscribe
// either stream through to the configured writer upstream
// (Options.Writer) or — on a read-only tier with none configured — are
// refused *explicitly*, speaking the endpoint's own NDJSON protocol:
// one ack per mutation line and a trailing summary, every line tagged
// error_kind "read_only". The silent 404 the mux used to serve here was
// a bug: a status-checking client saw "not found" and could not tell a
// misrouted request from a read-only tier.

// errReadOnly is the per-line error message of a read-only refusal.
const errReadOnly = "router: read-only tier: no writer upstream configured (-writer)"

// newWriteProxy builds the streaming reverse proxy to the writer
// upstream. FlushInterval -1 flushes every write through immediately —
// ack lines and subscription deltas reach the client as the writer
// emits them, preserving the endpoints' streaming contracts through
// the extra hop.
func (rt *Router) newWriteProxy(u *url.URL, tr http.RoundTripper) *httputil.ReverseProxy {
	return &httputil.ReverseProxy{
		Rewrite:       func(pr *httputil.ProxyRequest) { pr.SetURL(u) },
		FlushInterval: -1,
		Transport:     tr,
		ErrorHandler: func(w http.ResponseWriter, r *http.Request, err error) {
			// Reached only before any response byte: a dead or unreachable
			// writer. Mid-stream failures abort the inbound stream instead
			// (the client sees a truncated NDJSON stream, its signal to
			// retry).
			rt.writeErrors.Inc()
			http.Error(w, "router: writer upstream: "+err.Error(), http.StatusBadGateway)
		},
	}
}

// handleMutate serves POST /v1/mutate: proxied to the writer upstream
// when one is configured, refused explicitly otherwise.
func (rt *Router) handleMutate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST NDJSON mutation lines to /v1/mutate", http.StatusMethodNotAllowed)
		return
	}
	if !rt.addStream() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	defer rt.endStream()
	if rt.writeProxy == nil {
		rt.writeRejected.Inc()
		rt.rejectMutate(w, r)
		return
	}
	rt.writeForwarded.Inc()
	// The writer streams acks while the client is still uploading ops;
	// without full duplex the first proxied response byte would close
	// the inbound body. Best effort — HTTP/2 is duplex natively.
	http.NewResponseController(w).EnableFullDuplex()
	rt.writeProxy.ServeHTTP(w, r)
}

// handleSubscribe serves POST /v1/subscribe the same way: proxy or
// explicit refusal.
func (rt *Router) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST one NDJSON pattern request line to /v1/subscribe", http.StatusMethodNotAllowed)
		return
	}
	if !rt.addStream() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	defer rt.endStream()
	if rt.writeProxy == nil {
		rt.writeRejected.Inc()
		// The subscribe protocol's refusal shape is its end line: the
		// stream ends before it begins, tagged read_only.
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		wire.NewEncoder(w).Encode(wire.Delta{
			Kind: wire.DeltaEnd, Err: errReadOnly, ErrKind: wire.ErrKindReadOnly,
		})
		return
	}
	rt.writeForwarded.Inc()
	http.NewResponseController(w).EnableFullDuplex()
	rt.writeProxy.ServeHTTP(w, r)
}

// rejectMutate answers a mutation stream on a tier that cannot write:
// every op line — malformed ones included, they never had a writer to
// fail against either — gets an ack with error_kind "read_only", and
// the trailing summary carries the same tag, so both line-reading and
// summary-only clients see the refusal. Nothing is applied anywhere:
// Applied is 0 and Failed counts every line.
func (rt *Router) rejectMutate(w http.ResponseWriter, r *http.Request) {
	rc := http.NewResponseController(w)
	rc.EnableFullDuplex()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	rc.Flush()

	enc := mutate.NewEncoder(w)
	writeOK := true
	send := func(v any) {
		if writeOK && enc.Encode(v) != nil {
			writeOK = false
		}
	}
	sum := mutate.Summary{Kind: mutate.SummaryKind, Err: errReadOnly, ErrKind: wire.ErrKindReadOnly}
	dec := mutate.NewDecoder(r.Body)
	for writeOK {
		op, err := dec.Next()
		if err == io.EOF {
			break
		}
		var le *mutate.LineError
		if err != nil && !errors.As(err, &le) {
			// Unreadable stream (oversized line, dead connection): the
			// summary still goes out with the count so far. Drain the rest
			// (deadline-bounded) so net/http can reuse the connection.
			rc.SetReadDeadline(time.Now().Add(2 * time.Second))
			io.Copy(io.Discard, r.Body)
			break
		}
		var id uint64
		if op.ID != nil {
			id = *op.ID
		}
		sum.Failed++
		send(mutate.Ack{ID: id, Verb: op.Verb, Err: errReadOnly, ErrKind: wire.ErrKindReadOnly})
	}
	send(sum)
}
