package router

// White-box units for the router's small machines: the three-state
// circuit breaker, the token-bucket retry budget, the jittered
// exponential backoff, and power-of-two-choices picking. The e2e
// behavior these compose into lives in the package's _test black-box
// suite.

import (
	"math/rand"
	"testing"
	"time"
)

func testReplica(cooldown time.Duration, threshold int) *replica {
	r := &replica{url: "http://test", cooldown: cooldown, failThreshold: threshold}
	r.ready.Store(true)
	return r
}

func TestBreakerCycle(t *testing.T) {
	now := time.Now()
	r := testReplica(100*time.Millisecond, 3)

	if !r.acquire(now) {
		t.Fatal("closed breaker refused a dispatch")
	}
	// Two failures: still closed (threshold 3).
	r.onFailure(now)
	r.onFailure(now)
	if !r.canServe(now) {
		t.Fatal("breaker opened below the failure threshold")
	}
	// Third consecutive failure opens it.
	r.onFailure(now)
	if r.canServe(now) || r.acquire(now) {
		t.Fatal("open breaker admitted a dispatch before cooldown")
	}
	if got := r.stats(); got.State != "open" || got.BreakerOpens != 1 {
		t.Fatalf("after opening: %+v", got)
	}

	// Cooldown elapses: exactly one half-open trial is admitted.
	later := now.Add(150 * time.Millisecond)
	if !r.canServe(later) {
		t.Fatal("cooldown elapsed but breaker still rejects")
	}
	if !r.acquire(later) {
		t.Fatal("half-open trial refused")
	}
	if r.acquire(later) {
		t.Fatal("second concurrent dispatch admitted during the half-open trial")
	}
	// Trial fails: back to open, cooldown re-armed from the failure.
	r.onFailure(later)
	if r.acquire(later.Add(50 * time.Millisecond)) {
		t.Fatal("re-opened breaker admitted a dispatch inside the new cooldown")
	}

	// Next trial succeeds: closed, and dispatches flow freely again.
	trial := later.Add(150 * time.Millisecond)
	if !r.acquire(trial) {
		t.Fatal("second half-open trial refused")
	}
	r.onSuccess()
	if !r.acquire(trial) || !r.acquire(trial) {
		t.Fatal("closed breaker limits concurrency")
	}
	got := r.stats()
	if got.State != "closed" || got.BreakerOpens != 2 || got.BreakerCloses != 1 {
		t.Fatalf("after recovery: %+v", got)
	}
}

func TestBreakerSuccessResetsFailureCount(t *testing.T) {
	now := time.Now()
	r := testReplica(time.Second, 3)
	// Interleaved successes keep resetting the consecutive-failure
	// count: the breaker opens on streaks, not totals.
	for i := 0; i < 10; i++ {
		r.onFailure(now)
		r.onFailure(now)
		r.onSuccess()
	}
	if !r.canServe(now) {
		t.Fatal("breaker opened on non-consecutive failures")
	}
}

func TestBreakerProbeGating(t *testing.T) {
	now := time.Now()
	r := testReplica(50*time.Millisecond, 2)

	// Probe failures mark the replica not ready and feed the breaker,
	// so an idle dead replica still opens it.
	r.onProbe(false, now)
	r.onProbe(false, now)
	if r.canServe(now) {
		t.Fatal("failed probes did not bench the replica")
	}
	if got := r.stats(); got.State != "open" || got.Ready {
		t.Fatalf("after failed probes: %+v", got)
	}

	// A probe success before cooldown restores readiness but must NOT
	// close (or half-open) the breaker early.
	r.onProbe(true, now.Add(10*time.Millisecond))
	if got := r.stats(); got.State != "open" {
		t.Fatalf("probe success closed the breaker inside cooldown: %+v", got)
	}
	// After cooldown, a probe success moves open → half-open: the next
	// real request is the trial, and only its success closes.
	r.onProbe(true, now.Add(100*time.Millisecond))
	if got := r.stats(); got.State != "half-open" || !got.Ready {
		t.Fatalf("probe after cooldown: %+v", got)
	}
	if !r.acquire(now.Add(100 * time.Millisecond)) {
		t.Fatal("half-open trial refused after probe recovery")
	}
	r.onSuccess()
	if got := r.stats(); got.State != "closed" {
		t.Fatalf("trial success did not close: %+v", got)
	}
}

func TestRetryBudgetBucket(t *testing.T) {
	b := newBucket(10, 3) // 10 tokens/sec, burst 3
	now := time.Now().Add(time.Hour)
	for i := 0; i < 3; i++ {
		if !b.take(now) {
			t.Fatalf("burst token %d refused", i)
		}
	}
	if b.take(now) {
		t.Fatal("empty bucket granted a token")
	}
	// 250ms refills 2.5 tokens: two grants, then empty again.
	later := now.Add(250 * time.Millisecond)
	if !b.take(later) || !b.take(later) {
		t.Fatal("refilled tokens refused")
	}
	if b.take(later) {
		t.Fatal("bucket granted beyond its refill")
	}
	// Refill clamps at burst no matter how long the idle gap.
	idle := later.Add(time.Hour)
	for i := 0; i < 3; i++ {
		if !b.take(idle) {
			t.Fatalf("post-idle token %d refused", i)
		}
	}
	if b.take(idle) {
		t.Fatal("bucket exceeded its burst after idling")
	}
}

func TestBackoffBoundsAndGrowth(t *testing.T) {
	rt := &Router{
		opts: Options{RetryBackoff: 10 * time.Millisecond, MaxRetryBackoff: 80 * time.Millisecond}.withDefaults(),
		rng:  rand.New(rand.NewSource(1)),
	}
	for attempt := 1; attempt <= 6; attempt++ {
		// Ideal (pre-jitter) delay: base * 2^(attempt-1), capped.
		ideal := 10 * time.Millisecond << (attempt - 1)
		if ideal > 80*time.Millisecond {
			ideal = 80 * time.Millisecond
		}
		for i := 0; i < 50; i++ {
			d := rt.backoff(attempt)
			if d < ideal/2 || d >= ideal {
				t.Fatalf("attempt %d: backoff %v outside [%v, %v)", attempt, d, ideal/2, ideal)
			}
		}
	}
}

func TestPickPowerOfTwoChoices(t *testing.T) {
	rt := &Router{rng: rand.New(rand.NewSource(7))}
	mk := func(inflight int64) *replica {
		r := testReplica(time.Second, 3)
		r.inflight.Add(inflight)
		rt.reps = append(rt.reps, r)
		return r
	}
	loaded1 := mk(10)
	idle := mk(0)
	loaded2 := mk(10)

	// P2C with one idle replica: at least one of the two sampled
	// choices is the idle one ~2/3 of the time, and it always wins the
	// comparison — expect a strong (but not total) skew.
	counts := map[*replica]int{}
	for i := 0; i < 300; i++ {
		counts[rt.pick(nil)]++
	}
	if counts[idle] < 150 {
		t.Errorf("idle replica picked %d/300; power-of-two-choices should prefer it", counts[idle])
	}
	if counts[loaded1]+counts[loaded2] == 0 {
		t.Errorf("loaded replicas never sampled: %v", counts)
	}

	// Exclusion and readiness gating.
	if got := rt.pick(map[*replica]bool{loaded1: true, idle: true, loaded2: true}); got != nil {
		t.Errorf("pick with all excluded = %v, want nil", got.url)
	}
	if got := rt.pick(map[*replica]bool{loaded1: true, idle: true}); got != loaded2 {
		t.Errorf("pick with one candidate chose wrong replica")
	}
	idle.ready.Store(false)
	loaded1.ready.Store(false)
	if got := rt.pick(nil); got != loaded2 {
		t.Errorf("pick ignored readiness gating")
	}
}
