package router_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"regraph/internal/engine"
	"regraph/internal/faultinject"
	"regraph/internal/gen"
	"regraph/internal/graph"
	"regraph/internal/qlang"
	"regraph/internal/router"
	"regraph/internal/server"
	"regraph/internal/wire"
)

// The router e2e suite drives REAL rgserve replicas (engine + server on
// real TCP listeners) through a router, with internal/faultinject
// between them scripting the failures. The oracle for every scenario is
// a single local engine: whatever the cluster does, the routed stream
// must match what one healthy engine would have answered, id for id.

// testGraph is the same small-but-nontrivial synthetic graph the server
// tests use.
func testGraph(seed int64) *graph.Graph {
	return gen.Synthetic(seed, 300, 1200, 3, gen.DefaultColors)
}

// wireBatch builds a deterministic mixed batch of wire requests — RQs
// (every third one count-only) and PQs as qlang text — with explicit
// ids 0..n-1.
func wireBatch(t *testing.T, g *graph.Graph, n int, seed int64) []wire.Request {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	reqs := make([]wire.Request, n)
	for i := range reqs {
		id := uint64(i)
		if i%4 == 3 {
			pq := gen.Query(g, gen.Spec{Nodes: 3, Edges: 3, Preds: 2, Bound: 3, Colors: 2}, r)
			var b strings.Builder
			if err := qlang.WritePattern(&b, pq); err != nil {
				t.Fatal(err)
			}
			reqs[i] = wire.Request{ID: &id, PQ: b.String()}
		} else {
			q := gen.RQ(g, 2, 3, 1+r.Intn(3), r)
			reqs[i] = wire.Request{
				ID:    &id,
				RQ:    &wire.RQSpec{From: q.From.String(), To: q.To.String(), Expr: q.Expr.String()},
				Count: i%3 == 0,
			}
		}
	}
	return reqs
}

// wantResponses is the single-engine oracle: compile the batch locally,
// run it through Engine.RunBatch, lift the results through the same
// wire encoding the servers use.
func wantResponses(t *testing.T, e *engine.Engine, reqs []wire.Request) map[uint64]wire.Response {
	t.Helper()
	ereqs := make([]engine.Request, len(reqs))
	kinds := make([]string, len(reqs))
	for i := range reqs {
		var err error
		ereqs[i], kinds[i], err = reqs[i].Compile()
		if err != nil {
			t.Fatalf("request %d does not compile: %v", i, err)
		}
	}
	results := e.RunBatch(ereqs)
	want := map[uint64]wire.Response{}
	for i, res := range results {
		var resp wire.Response
		if reqs[i].Count {
			resp = wire.Response{ID: uint64(i), Kind: kinds[i], Count: len(res.Pairs)}
		} else {
			resp = wire.FromResult(res, kinds[i], ereqs[i].PQ, 0)
		}
		resp.ID = *reqs[i].ID
		resp.LatencyUS = 0
		want[resp.ID] = resp
	}
	return want
}

// leakCheck fails the test if the goroutine count has not returned to
// its baseline after teardown.
func leakCheck(t *testing.T) func() {
	t.Helper()
	baseline := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			n := runtime.NumGoroutine()
			if n <= baseline {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				t.Fatalf("goroutine leak: %d now, %d at start\n%s", n, baseline,
					buf[:runtime.Stack(buf, true)])
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// replicaProc is one real rgserve replica behind a fault-injecting
// listener.
type replicaProc struct {
	srv *server.Server
	fl  *faultinject.Listener
	url string
}

// startReplica boots an engine + server on a real TCP listener wrapped
// in faultinject (script may be nil for a healthy replica).
func startReplica(t *testing.T, g *graph.Graph, script *faultinject.Script) *replicaProc {
	t.Helper()
	e := engine.MustNew(g, engine.Options{Workers: 2})
	srv := server.New(e, server.Options{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fl := faultinject.Wrap(l, script)
	go srv.Serve(fl)
	return &replicaProc{srv: srv, fl: fl, url: "http://" + fl.Addr().String()}
}

// kill makes the replica observably dead: live connections are
// RST-closed mid-line and new ones refused.
func (r *replicaProc) kill() {
	r.fl.SetRefuse(true)
	r.fl.AbortAll()
}

// stop tears the replica down (Close also unsticks any
// faultinject-stalled handler write by closing its connection).
func (r *replicaProc) stop() { r.srv.Close() }

// startRouter builds a router over the replicas and serves it via
// httptest; the returned cleanup closes both.
func startRouter(t *testing.T, opts router.Options, reps ...*replicaProc) (*router.Router, string, func()) {
	t.Helper()
	for _, r := range reps {
		opts.Replicas = append(opts.Replicas, r.url)
	}
	rt, err := router.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	return rt, ts.URL, func() {
		ts.Close()
		rt.Close()
	}
}

// postNDJSON sends the batch as one NDJSON body and decodes the full
// response stream.
func postNDJSON(t *testing.T, url string, reqs []wire.Request) []wire.Response {
	t.Helper()
	var body bytes.Buffer
	enc := json.NewEncoder(&body)
	for i := range reqs {
		if err := enc.Encode(&reqs[i]); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post(url+"/v1/query", "application/x-ndjson", &body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/query: %s", resp.Status)
	}
	return decodeStream(t, resp.Body)
}

func decodeStream(t *testing.T, r io.Reader) []wire.Response {
	t.Helper()
	var out []wire.Response
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), wire.MaxResponseLineBytes)
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) == "" {
			continue
		}
		var resp wire.Response
		if err := json.Unmarshal(sc.Bytes(), &resp); err != nil {
			t.Fatalf("malformed response line %q: %v", sc.Text(), err)
		}
		out = append(out, resp)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("response stream: %v", err)
	}
	return out
}

// checkExact asserts the routed stream answered every oracle id exactly
// once, bit-identically (latency aside).
func checkExact(t *testing.T, got []wire.Response, want map[uint64]wire.Response) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%d response lines, want %d", len(got), len(want))
	}
	seen := map[uint64]bool{}
	for _, r := range got {
		if seen[r.ID] {
			t.Fatalf("duplicate response for id %d", r.ID)
		}
		seen[r.ID] = true
		w, ok := want[r.ID]
		if !ok {
			t.Fatalf("response for unknown id %d", r.ID)
		}
		r.LatencyUS = 0
		if !responsesEqual(r, w) {
			t.Errorf("id %d:\n got %+v\nwant %+v", r.ID, r, w)
		}
	}
}

func responsesEqual(a, b wire.Response) bool {
	ab, err1 := json.Marshal(a)
	bb, err2 := json.Marshal(b)
	return err1 == nil && err2 == nil && bytes.Equal(ab, bb)
}

// TestRouterMatchesSingleEngine: with healthy replicas and no faults,
// the routed stream over 1 and over 3 replicas is bit-identical to the
// single-engine oracle, and fan-out actually spread the work.
func TestRouterMatchesSingleEngine(t *testing.T) {
	defer leakCheck(t)()
	g := testGraph(7)
	oracle := engine.MustNew(g, engine.Options{Workers: 2})
	reqs := wireBatch(t, g, 48, 11)
	want := wantResponses(t, oracle, reqs)

	for _, n := range []int{1, 3} {
		var reps []*replicaProc
		for i := 0; i < n; i++ {
			reps = append(reps, startReplica(t, g, nil))
		}
		rt, url, cleanup := startRouter(t, router.Options{ProbeInterval: -1}, reps...)
		got := postNDJSON(t, url, reqs)
		checkExact(t, got, want)

		st := rt.Stats()
		if st.Requests != uint64(len(reqs)) || st.StreamsTotal != 1 {
			t.Errorf("n=%d: stats %+v", n, st)
		}
		if n == 3 {
			// Power-of-two-choices must not have starved the fleet: every
			// replica saw some work (48 requests over 3 replicas).
			for _, rs := range st.Replicas {
				if rs.Requests == 0 {
					t.Errorf("replica %s received no requests: %+v", rs.URL, st.Replicas)
				}
				if rs.InFlight != 0 {
					t.Errorf("replica %s still shows %d in flight", rs.URL, rs.InFlight)
				}
			}
		}
		cleanup()
		for _, r := range reps {
			r.stop()
		}
	}
}

// TestRouterParseErrors: malformed lines are answered by the router
// itself with per-line errors and never reach a replica; the stream
// continues.
func TestRouterParseErrors(t *testing.T) {
	defer leakCheck(t)()
	g := testGraph(7)
	rep := startReplica(t, g, nil)
	defer rep.stop()
	rt, url, cleanup := startRouter(t, router.Options{ProbeInterval: -1}, rep)
	defer cleanup()

	body := strings.Join([]string{
		`{"id":0,"rq":{"expr":"fn"}}`,
		`{not json`,
		`{"id":2,"rq":{"expr":"fn"},"count":true}`,
	}, "\n")
	resp, err := http.Post(url+"/v1/query", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got := decodeStream(t, resp.Body)
	if len(got) != 3 {
		t.Fatalf("%d responses, want 3: %+v", len(got), got)
	}
	byID := map[uint64]wire.Response{}
	for _, r := range got {
		byID[r.ID] = r
	}
	if byID[1].Err == "" {
		t.Errorf("malformed line not answered with an error: %+v", byID[1])
	}
	if byID[0].Err != "" || byID[2].Err != "" {
		t.Errorf("well-formed lines failed: %+v", got)
	}
	if st := rt.Stats(); st.ParseErrors != 1 || st.Requests != 2 {
		t.Errorf("stats: %+v", st)
	}
}

// TestRouterDrain: draining flips readiness, refuses new streams, and
// Shutdown completes cleanly with none live.
func TestRouterDrain(t *testing.T) {
	defer leakCheck(t)()
	g := testGraph(7)
	rep := startReplica(t, g, nil)
	defer rep.stop()
	rt, url, cleanup := startRouter(t, router.Options{ProbeInterval: -1}, rep)
	defer cleanup()

	if resp, err := http.Get(url + "/readyz"); err != nil || resp.StatusCode != 200 {
		t.Fatalf("readyz: %v %v", resp.Status, err)
	} else {
		resp.Body.Close()
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := rt.Drain(ctx); err != nil {
		t.Fatalf("drain with no live streams: %v", err)
	}
	if resp, err := http.Get(url + "/readyz"); err != nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: %v %v", resp.Status, err)
	} else {
		resp.Body.Close()
	}
	if resp, err := http.Post(url+"/v1/query", "application/x-ndjson", strings.NewReader(`{"rq":{"expr":"fn"}}`)); err != nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("query while draining: %v %v", resp.Status, err)
	} else {
		resp.Body.Close()
	}
}

// TestRouterReplicaDrainFailover: a replica that drains gracefully
// mid-service flips its /readyz; after one probe round the router
// routes around it and a fresh stream still answers everything — the
// drain-signaling handshake between server and router.
func TestRouterReplicaDrainFailover(t *testing.T) {
	defer leakCheck(t)()
	g := testGraph(7)
	oracle := engine.MustNew(g, engine.Options{Workers: 2})
	reqs := wireBatch(t, g, 24, 3)
	want := wantResponses(t, oracle, reqs)

	a := startReplica(t, g, nil)
	b := startReplica(t, g, nil)
	defer a.stop()
	defer b.stop()
	rt, url, cleanup := startRouter(t, router.Options{ProbeInterval: -1}, a, b)
	defer cleanup()

	checkExact(t, postNDJSON(t, url, reqs), want)

	// Drain b: readiness flips before /v1/query refuses anything.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := b.srv.Drain(ctx); err != nil {
		t.Fatalf("replica drain: %v", err)
	}
	rt.ProbeNow()
	checkExact(t, postNDJSON(t, url, reqs), want)
	for _, rs := range rt.Stats().Replicas {
		if rs.URL == b.url && rs.Ready {
			t.Errorf("drained replica still marked ready: %+v", rs)
		}
	}
}
