package router_test

// Chaos e2e: real rgserve replicas behind the router, with
// internal/faultinject scripting kills, stalls and recovery between
// them. Every scenario's correctness bar is the same: the routed
// stream must answer each id exactly once, bit-identical to the
// single-engine oracle (or as an explicit "unavailable" shed when
// nothing is live), with no goroutine leaks. Run under -race.

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"

	"regraph/internal/engine"
	"regraph/internal/faultinject"
	"regraph/internal/router"
	"regraph/internal/wire"
)

// streamConn is an incrementally-driven query stream: the test writes
// request lines and reads response lines at its own pace, so faults
// can be injected at exact points mid-stream.
type streamConn struct {
	t    *testing.T
	pw   *io.PipeWriter
	enc  *json.Encoder
	body io.ReadCloser
	sc   *bufio.Scanner
}

func openStream(t *testing.T, url string) *streamConn {
	t.Helper()
	pr, pw := io.Pipe()
	resp, err := http.Post(url+"/v1/query", "application/x-ndjson", pr)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/query: %s", resp.Status)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), wire.MaxResponseLineBytes)
	return &streamConn{t: t, pw: pw, enc: json.NewEncoder(pw), body: resp.Body, sc: sc}
}

func (s *streamConn) send(reqs ...wire.Request) {
	s.t.Helper()
	for i := range reqs {
		if err := s.enc.Encode(&reqs[i]); err != nil {
			s.t.Fatalf("send: %v", err)
		}
	}
}

// recv reads exactly n response lines.
func (s *streamConn) recv(n int) []wire.Response {
	s.t.Helper()
	out := make([]wire.Response, 0, n)
	for len(out) < n && s.sc.Scan() {
		line := s.sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var resp wire.Response
		if err := json.Unmarshal(line, &resp); err != nil {
			s.t.Fatalf("malformed response line %q: %v", line, err)
		}
		out = append(out, resp)
	}
	if len(out) < n {
		s.t.Fatalf("stream ended after %d of %d responses (read error: %v)", len(out), n, s.sc.Err())
	}
	return out
}

// finish closes the upload and asserts the response stream ends
// cleanly — a terminated protocol, not a torn connection.
func (s *streamConn) finish() {
	s.t.Helper()
	s.pw.Close()
	for s.sc.Scan() {
		if len(s.sc.Bytes()) != 0 {
			s.t.Fatalf("unexpected trailing response line %q", s.sc.Text())
		}
	}
	if err := s.sc.Err(); err != nil {
		s.t.Fatalf("stream did not terminate cleanly: %v", err)
	}
	s.body.Close()
}

// TestRouterChaosKillAndStall is the headline failover scenario: three
// replicas serve one stream; mid-stream one replica is RST-killed and
// another's connections stop writing (stall past the router's
// deadline). The routed stream must still be bit-identical per id to
// the single-engine oracle — zero duplicates, zero losses, zero sheds
// — because every orphaned id is re-submitted to a live replica.
func TestRouterChaosKillAndStall(t *testing.T) {
	defer leakCheck(t)()
	g := testGraph(7)
	oracle := engine.MustNew(g, engine.Options{Workers: 2})
	reqs := wireBatch(t, g, 60, 13)
	want := wantResponses(t, oracle, reqs)

	a := startReplica(t, g, nil)
	// b's connections go silent after ~1.5KB written: responses flow,
	// then stop mid-stream — the wedged-but-not-dead failure the stall
	// watchdog exists for.
	b := startReplica(t, g, &faultinject.Script{Default: faultinject.Rules{StallWriteAfter: 1500}})
	c := startReplica(t, g, nil)
	defer a.stop()
	defer b.stop()
	defer c.stop()

	rt, url, cleanup := startRouter(t, router.Options{
		ProbeInterval: -1, // deterministic: passive accounting only
		StallTimeout:  250 * time.Millisecond,
		RetryBackoff:  5 * time.Millisecond,
		FailThreshold: 2,
		Cooldown:      5 * time.Second, // keep failed replicas benched for the test's duration
	}, a, b, c)
	defer cleanup()

	st := openStream(t, url)
	st.send(reqs...)
	got := st.recv(10)
	// Mid-stream: replica c dies hard — live connections RST mid-line,
	// new ones refused.
	c.kill()
	got = append(got, st.recv(len(reqs)-10)...)
	st.finish()

	checkExact(t, got, want)
	for _, r := range got {
		if r.ErrKind != "" {
			t.Errorf("id %d shed with %q; failover should have answered it", r.ID, r.ErrKind)
		}
	}
	stats := rt.Stats()
	if stats.Retries == 0 {
		t.Errorf("no retries recorded across a kill and a stall: %+v", stats)
	}
	if stats.Unavailable != 0 {
		t.Errorf("%d requests shed unavailable with a healthy replica present", stats.Unavailable)
	}
}

// TestRouterAllReplicasDown: when the whole fleet dies, in-flight and
// subsequent ids are answered with error_kind "unavailable" — per-line
// sheds on a well-formed stream that then terminates cleanly, never a
// torn connection.
func TestRouterAllReplicasDown(t *testing.T) {
	defer leakCheck(t)()
	g := testGraph(3)
	oracle := engine.MustNew(g, engine.Options{Workers: 2})
	reqs := wireBatch(t, g, 20, 5)
	want := wantResponses(t, oracle, reqs)

	a := startReplica(t, g, nil)
	b := startReplica(t, g, nil)
	defer a.stop()
	defer b.stop()

	rt, url, cleanup := startRouter(t, router.Options{
		ProbeInterval: -1,
		MaxAttempts:   2,
		RetryBackoff:  2 * time.Millisecond,
		FailThreshold: 1,
		Cooldown:      10 * time.Second,
	}, a, b)
	defer cleanup()

	st := openStream(t, url)
	st.send(reqs[:5]...)
	first := st.recv(5)
	checkExact(t, first, pick(want, 0, 5))

	// The fleet dies; the next probe round notices.
	a.kill()
	b.kill()
	rt.ProbeNow()

	st.send(reqs[5:]...)
	rest := st.recv(len(reqs) - 5)
	st.finish()

	seen := map[uint64]bool{}
	for _, r := range rest {
		if seen[r.ID] {
			t.Fatalf("duplicate response for id %d", r.ID)
		}
		seen[r.ID] = true
		if r.ErrKind != wire.ErrKindUnavailable {
			t.Errorf("id %d: error_kind %q, want %q (%+v)", r.ID, r.ErrKind, wire.ErrKindUnavailable, r)
		}
	}
	for i := 5; i < len(reqs); i++ {
		if !seen[uint64(i)] {
			t.Errorf("id %d lost: no response line", i)
		}
	}
	if stats := rt.Stats(); stats.Unavailable != uint64(len(reqs)-5) {
		t.Errorf("unavailable = %d, want %d", stats.Unavailable, len(reqs)-5)
	}
}

// TestRouterKillRecover: a killed replica opens its breaker and drops
// from rotation; after recovery, probes move the breaker to half-open
// and real traffic closes it — the full closed → open → half-open →
// closed cycle, observable in /v1/stats.
func TestRouterKillRecover(t *testing.T) {
	defer leakCheck(t)()
	g := testGraph(7)
	oracle := engine.MustNew(g, engine.Options{Workers: 2})
	reqs := wireBatch(t, g, 24, 9)
	want := wantResponses(t, oracle, reqs)

	a := startReplica(t, g, nil)
	b := startReplica(t, g, nil)
	defer a.stop()
	defer b.stop()

	rt, url, cleanup := startRouter(t, router.Options{
		ProbeInterval: -1,
		RetryBackoff:  2 * time.Millisecond,
		FailThreshold: 1,
		Cooldown:      20 * time.Millisecond,
	}, a, b)
	defer cleanup()

	checkExact(t, postNDJSON(t, url, reqs), want)

	a.kill()
	rt.ProbeNow() // probe failure: not ready, breaker opens
	if rs := rt.Stats().Replicas[0]; rs.Ready || rs.State != "open" {
		t.Fatalf("killed replica not benched: %+v", rs)
	}
	// Routing continues on the survivor alone, loss-free.
	checkExact(t, postNDJSON(t, url, reqs), want)

	// Recovery: the port accepts again; after the cooldown a probe
	// readmits it as half-open, and served traffic closes the breaker.
	a.fl.SetRefuse(false)
	time.Sleep(30 * time.Millisecond)
	rt.ProbeNow()
	if rs := rt.Stats().Replicas[0]; !rs.Ready || rs.State != "half-open" {
		t.Fatalf("recovered replica not in half-open trial: %+v", rs)
	}
	checkExact(t, postNDJSON(t, url, reqs), want)
	rs := rt.Stats().Replicas[0]
	if rs.State != "closed" || rs.BreakerOpens == 0 || rs.BreakerCloses == 0 {
		t.Errorf("breaker did not complete the cycle: %+v", rs)
	}
}

// TestRouterHedging: with one replica artificially slow, hedged
// duplicates land on the fast one and the client still sees every id
// exactly once, bit-identical — the exactly-once fan-in invariant
// under deliberate duplication.
func TestRouterHedging(t *testing.T) {
	defer leakCheck(t)()
	g := testGraph(7)
	oracle := engine.MustNew(g, engine.Options{Workers: 2})
	reqs := wireBatch(t, g, 24, 17)
	want := wantResponses(t, oracle, reqs)

	slow := startReplica(t, g, &faultinject.Script{Default: faultinject.Rules{ReadLatency: 50 * time.Millisecond}})
	fast := startReplica(t, g, nil)
	defer slow.stop()
	defer fast.stop()

	rt, url, cleanup := startRouter(t, router.Options{
		ProbeInterval: -1,
		HedgeAfter:    15 * time.Millisecond,
	}, slow, fast)
	defer cleanup()

	checkExact(t, postNDJSON(t, url, reqs), want)
	if stats := rt.Stats(); stats.Hedges == 0 {
		t.Errorf("no hedges fired against a 50ms-slow replica: %+v", stats)
	}
}

// pick returns the subset of want with lo <= id < hi.
func pick(want map[uint64]wire.Response, lo, hi uint64) map[uint64]wire.Response {
	out := map[uint64]wire.Response{}
	for id, r := range want {
		if id >= lo && id < hi {
			out[id] = r
		}
	}
	return out
}
