package router_test

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"regraph/internal/engine"
	"regraph/internal/graph"
	"regraph/internal/mutate"
	"regraph/internal/router"
	"regraph/internal/server"
	"regraph/internal/wire"
)

// writeTestGraph is the write-path tests' tiny deterministic graph:
// a(t=1) --x--> b(t=2), same shape the server's mutate tests use.
func writeTestGraph() *graph.Graph {
	g := graph.New()
	a := g.AddNode("a", map[string]string{"t": "1"})
	b := g.AddNode("b", map[string]string{"t": "2"})
	g.AddEdge(a, b, "x")
	return g
}

// postWriteStream posts body to url+path and decodes the NDJSON
// response into ack lines and the trailing summary.
func postWriteStream(t *testing.T, url, path, body string) (int, []mutate.Ack, mutate.Summary, bool) {
	t.Helper()
	resp, err := http.Post(url+path, "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, nil, mutate.Summary{}, false
	}
	var acks []mutate.Ack
	var sum mutate.Summary
	sawSummary := false
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.Contains(line, `"kind":"summary"`) {
			if err := json.Unmarshal([]byte(line), &sum); err != nil {
				t.Fatalf("summary line %q: %v", line, err)
			}
			sawSummary = true
			continue
		}
		var a mutate.Ack
		if err := json.Unmarshal([]byte(line), &a); err != nil {
			t.Fatalf("ack line %q: %v", line, err)
		}
		acks = append(acks, a)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, acks, sum, sawSummary
}

// TestRouterWriteReject is the regression test for the silent-404 bug:
// a read-only router (no -writer) must answer POST /v1/mutate in the
// endpoint's own protocol — one ack per line and a summary, every line
// tagged error_kind "read_only" — and POST /v1/subscribe with a
// read_only end line. Neither may 404.
func TestRouterWriteReject(t *testing.T) {
	rep := startReplica(t, writeTestGraph(), nil)
	defer rep.stop()
	rt, url, stop := startRouter(t, router.Options{ProbeInterval: -1}, rep)
	defer stop()

	body := strings.Join([]string{
		"add_node c t=2",
		`{"op":"add_edge","from":"a","to":"c","color":"x"}`,
		"frobnicate q", // malformed: still refused read_only, never parsed against a writer
	}, "\n")
	status, acks, sum, sawSummary := postWriteStream(t, url, "/v1/mutate", body)
	if status != http.StatusOK {
		t.Fatalf("read-only mutate status %d, want 200 with protocol lines (the 404 regression)", status)
	}
	if !sawSummary {
		t.Fatal("read-only mutate stream ended without a summary line")
	}
	if len(acks) != 3 {
		t.Fatalf("got %d acks, want 3: %+v", len(acks), acks)
	}
	for i, a := range acks {
		if a.ID != uint64(i) || a.ErrKind != wire.ErrKindReadOnly || a.Err == "" || a.Gen != 0 {
			t.Errorf("ack %d: %+v, want id %d error_kind %q", i, a, i, wire.ErrKindReadOnly)
		}
	}
	if sum.ErrKind != wire.ErrKindReadOnly || sum.Applied != 0 || sum.Failed != 3 {
		t.Errorf("summary %+v, want error_kind read_only applied 0 failed 3", sum)
	}

	// Subscribe: one end line, tagged the same way.
	resp, err := http.Post(url+"/v1/subscribe", "application/x-ndjson",
		strings.NewReader(`{"pq":"node A\tt = 1\nnode B\tt = 2\nedge A B\tx"}`+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("read-only subscribe status %d, want 200 with an end line", resp.StatusCode)
	}
	var d wire.Delta
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		t.Fatal(err)
	}
	if d.Kind != wire.DeltaEnd || d.ErrKind != wire.ErrKindReadOnly || d.Err == "" {
		t.Errorf("subscribe refusal %+v, want kind end error_kind read_only", d)
	}

	st := rt.Stats()
	if st.WriteRejected != 2 || st.WriteForwarded != 0 {
		t.Errorf("write counters: rejected %d forwarded %d, want 2/0", st.WriteRejected, st.WriteForwarded)
	}
}

// TestRouterWriteForward: with a writer upstream configured, mutation
// and subscription streams proxy through — acks and deltas arrive
// line-streamed, and the write lands on the writer's engine.
func TestRouterWriteForward(t *testing.T) {
	g := writeTestGraph()
	e := engine.MustNew(g, engine.Options{Workers: 2})
	writer := server.New(e, server.Options{})
	wts := httptest.NewServer(writer.Handler())
	defer wts.Close()
	defer writer.Close()

	rep := startReplica(t, writeTestGraph(), nil)
	defer rep.stop()
	rt, url, stop := startRouter(t, router.Options{ProbeInterval: -1, Writer: wts.URL}, rep)
	defer stop()

	status, acks, sum, sawSummary := postWriteStream(t, url, "/v1/mutate",
		"add_node c t=2\nadd_edge a c x\n")
	if status != http.StatusOK || !sawSummary {
		t.Fatalf("forwarded mutate: status %d summary %v", status, sawSummary)
	}
	if len(acks) != 2 || acks[0].Gen != 1 || acks[1].Gen != 1 {
		t.Fatalf("forwarded acks: %+v, want both committed at gen 1", acks)
	}
	if sum.Applied != 2 || sum.Failed != 0 || sum.Gen != 1 {
		t.Fatalf("forwarded summary: %+v", sum)
	}
	if e.Generation() != 1 || e.Graph().NumNodes() != 3 {
		t.Fatalf("writer engine after forwarded stream: gen %d nodes %d, want 1/3",
			e.Generation(), e.Graph().NumNodes())
	}

	// Subscribe through the router: the writer's init snapshot arrives
	// on the proxied stream.
	resp, err := http.Post(url+"/v1/subscribe", "application/x-ndjson",
		strings.NewReader(`{"pq":"node A\tt = 1\nnode B\tt = 2\nedge A B\tx"}`+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded subscribe status %d", resp.StatusCode)
	}
	var init wire.Delta
	if err := json.NewDecoder(resp.Body).Decode(&init); err != nil {
		t.Fatal(err)
	}
	if init.Kind != wire.DeltaInit || init.Gen != 1 || init.Err != "" {
		t.Errorf("forwarded init delta %+v, want kind init at gen 1", init)
	}

	st := rt.Stats()
	if st.WriteForwarded != 2 || st.WriteRejected != 0 {
		t.Errorf("write counters: forwarded %d rejected %d, want 2/0", st.WriteForwarded, st.WriteRejected)
	}
}

// TestRouterWriteForwardDeadWriter: a configured-but-unreachable writer
// yields an explicit 502, not a hang or a 404.
func TestRouterWriteForwardDeadWriter(t *testing.T) {
	rep := startReplica(t, writeTestGraph(), nil)
	defer rep.stop()
	// A listener that is immediately closed: connection refused.
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()
	rt, url, stop := startRouter(t, router.Options{ProbeInterval: -1, Writer: deadURL}, rep)
	defer stop()

	resp, err := http.Post(url+"/v1/mutate", "application/x-ndjson", strings.NewReader("add_node c\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("dead-writer status %d, want 502", resp.StatusCode)
	}
	if st := rt.Stats(); st.WriteErrors != 1 {
		t.Errorf("write errors = %d, want 1", st.WriteErrors)
	}
}
