package rexfull_test

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"regraph/internal/gen"
	"regraph/internal/graph"
	"regraph/internal/pattern"
	"regraph/internal/predicate"
	"regraph/internal/reach"
	"regraph/internal/rex"
	"regraph/internal/rexfull"
)

// TestPatternUnionEdge exercises an edge constraint impossible in
// subclass F: a union of two alternative relationship chains.
func TestPatternUnionEdge(t *testing.T) {
	g := gen.Essembly()
	p := rexfull.NewPattern()
	c := p.AddNode("C", predicate.MustParse("job = biologist"))
	d := p.AddNode("D", predicate.MustParse("uid = Alice001"))
	// Reach Alice either directly by strangers-allies or via one
	// friends-allies hop first.
	p.AddEdge(c, d, rexfull.MustParse("sa | fa sa"))
	res := p.Eval(g)
	if res.Empty() {
		t.Fatal("union pattern should match")
	}
	got := names(g, res.MatchSet(c))
	// C1 -sa-> D1 directly; C3 -fa-> C1 -sa-> D1; C2 -fa-> C1 -sa-> D1.
	want := "[C1 C2 C3]"
	if got != want {
		t.Errorf("mat(C) = %s, want %s", got, want)
	}
}

// TestPatternKleeneStar uses a starred alternative, also outside F.
func TestPatternKleeneStar(t *testing.T) {
	g := gen.Essembly()
	p := rexfull.NewPattern()
	b := p.AddNode("B", predicate.MustParse("job = doctor"))
	d := p.AddNode("D", predicate.MustParse("uid = Alice001"))
	p.AddEdge(b, d, rexfull.MustParse("(fa|fn|sa|sn)* fn"))
	res := p.Eval(g)
	if res.Empty() {
		t.Fatal("star pattern should match (B1/B2 -fn-> D1)")
	}
	if got := names(g, res.MatchSet(b)); got != "[B1 B2]" {
		t.Errorf("mat(B) = %s", got)
	}
}

func names(g *graph.Graph, ids []graph.NodeID) string {
	ss := make([]string, len(ids))
	for i, id := range ids {
		ss[i] = g.Node(id).Name
	}
	sort.Strings(ss)
	return fmt.Sprint(ss)
}

// TestPatternAgreesWithSubclassEvaluator: on patterns whose edges come
// from subclass F, the general evaluator must produce exactly the same
// answers as JoinMatch.
func TestPatternAgreesWithSubclassEvaluator(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomAttrGraph(r, 2+r.Intn(8), 1+r.Intn(20))
		sub := randomSubclassPattern(r)
		full := convert(sub)
		want := pattern.JoinMatch(g, sub, pattern.Options{})
		got := full.Eval(g)
		if want.Empty() != got.Empty() {
			t.Logf("seed %d: emptiness differs (sub %v, full %v)\n%v", seed, want.Empty(), got.Empty(), sub)
			return false
		}
		if want.Empty() {
			return true
		}
		for ei := 0; ei < sub.NumEdges(); ei++ {
			a := pairKey(want.EdgePairs(ei))
			b := fullPairKey(got.Sets[ei])
			if a != b {
				t.Logf("seed %d edge %d: %s vs %s\n%v", seed, ei, a, b, sub)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func convert(q *pattern.Query) *rexfull.Pattern {
	p := rexfull.NewPattern()
	for i := 0; i < q.NumNodes(); i++ {
		n := q.Node(i)
		p.AddNode(n.Name, n.Pred)
	}
	for ei := 0; ei < q.NumEdges(); ei++ {
		e := q.Edge(ei)
		p.AddEdge(e.From, e.To, rexfull.FromSubclass(e.Expr))
	}
	return p
}

func pairKey(ps []reach.Pair) string {
	ss := make([]string, len(ps))
	for i, p := range ps {
		ss[i] = fmt.Sprintf("%d>%d", p.From, p.To)
	}
	sort.Strings(ss)
	return fmt.Sprint(ss)
}

func fullPairKey(ps []rexfull.Pair) string {
	ss := make([]string, len(ps))
	for i, p := range ps {
		ss[i] = fmt.Sprintf("%d>%d", p.From, p.To)
	}
	sort.Strings(ss)
	return fmt.Sprint(ss)
}

func randomAttrGraph(r *rand.Rand, n, e int) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddNode(fmt.Sprintf("n%d", i), map[string]string{"t": fmt.Sprint(r.Intn(3))})
	}
	colors := []string{"a", "b"}
	for i := 0; i < e; i++ {
		g.AddEdge(graph.NodeID(r.Intn(n)), graph.NodeID(r.Intn(n)), colors[r.Intn(2)])
	}
	return g
}

func randomSubclassPattern(r *rand.Rand) *pattern.Query {
	q := pattern.New()
	nn := 2 + r.Intn(3)
	preds := []string{"t = 0", "t = 1", "t = 2", "*"}
	for i := 0; i < nn; i++ {
		q.AddNode(fmt.Sprintf("u%d", i), predicate.MustParse(preds[r.Intn(len(preds))]))
	}
	ne := 1 + r.Intn(3)
	colors := []string{"a", "b", rex.Wildcard}
	for i := 0; i < ne; i++ {
		na := 1 + r.Intn(2)
		atoms := make([]rex.Atom, na)
		for j := range atoms {
			m := 1 + r.Intn(3)
			if r.Intn(6) == 0 {
				m = rex.Unbounded
			}
			atoms[j] = rex.Atom{Color: colors[r.Intn(3)], Max: m}
		}
		q.AddEdge(r.Intn(nn), r.Intn(nn), rex.MustNew(atoms...))
	}
	return q
}
