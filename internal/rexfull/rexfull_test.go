package rexfull

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"regraph/internal/graph"
	"regraph/internal/predicate"
	"regraph/internal/rex"
)

func split(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, " ")
}

func TestMatchString(t *testing.T) {
	tests := []struct {
		expr string
		path string
		want bool
	}{
		{"a", "a", true},
		{"a", "b", false},
		{"a b", "a b", true},
		{"a b", "a", false},
		{"a|b", "a", true},
		{"a|b", "b", true},
		{"a|b", "c", false},
		{"a*", "a a a", true},
		{"a*", "", false}, // non-empty path semantics
		{"a* b", "b", true},
		{"a* b", "a a b", true},
		{"a+ b", "b", false},
		{"a+ b", "a b", true},
		{"(a b)+", "a b a b", true},
		{"(a b)+", "a b a", false},
		{"(a|b)* c", "a b b a c", true},
		{"(a|b)* c", "c", true},
		{"a?b", "b", true},
		{"a?b", "a b", true},
		{"a?b", "a a b", false},
		{"_", "anything", true},
		{"_* z", "x y z", true},
		{"a (b|c) d", "a c d", true},
		{"a (b|c) d", "a d", false},
	}
	for _, tc := range tests {
		e := MustParse(tc.expr)
		if got := e.MatchString(split(tc.path)); got != tc.want {
			t.Errorf("%q.MatchString(%q) = %v, want %v", tc.expr, tc.path, got, tc.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{"", "(a", "a)", "|a", "a||b", "*", "a(", "x_y"} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q): expected error", in)
		}
	}
}

func TestParseRoundTripSource(t *testing.T) {
	e := MustParse("(a|b)+ c")
	if e.String() != "(a|b)+ c" {
		t.Errorf("String() = %q", e.String())
	}
}

// TestFromSubclassAgrees: a subclass-F expression and its general-regex
// conversion accept exactly the same strings (cross-validated by
// enumeration).
func TestFromSubclassAgrees(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(3)
		atoms := make([]rex.Atom, n)
		colors := []string{"a", "b", rex.Wildcard}
		for i := range atoms {
			m := 1 + r.Intn(3)
			if r.Intn(5) == 0 {
				m = rex.Unbounded
			}
			atoms[i] = rex.Atom{Color: colors[r.Intn(3)], Max: m}
		}
		sub := rex.MustNew(atoms...)
		full := FromSubclass(sub)
		alphabet := []string{"a", "b", "x"}
		var walk func(prefix []string, depth int) bool
		walk = func(prefix []string, depth int) bool {
			if len(prefix) > 0 {
				if sub.MatchString(prefix) != full.MatchString(prefix) {
					t.Logf("seed %d: %v vs %v disagree on %v", seed, sub, full, prefix)
					return false
				}
			}
			if depth == 0 {
				return true
			}
			for _, c := range alphabet {
				if !walk(append(prefix, c), depth-1) {
					return false
				}
			}
			return true
		}
		return walk(nil, 6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func lineGraph(colors ...string) *graph.Graph {
	g := graph.New()
	prev := g.AddNode("n0", map[string]string{"i": "0"})
	for i, c := range colors {
		next := g.AddNode(fmt.Sprintf("n%d", i+1), map[string]string{"i": fmt.Sprint(i + 1)})
		g.AddEdge(prev, next, c)
		prev = next
	}
	return g
}

func TestReach(t *testing.T) {
	g := lineGraph("a", "a", "b", "c")
	tests := []struct {
		expr   string
		v1, v2 int
		want   bool
	}{
		{"a+ b c", 0, 4, true},
		{"a* b c", 0, 4, true},
		{"a+ b", 0, 3, true},
		{"a+ c", 0, 4, false},
		{"(a|b)+ c", 0, 4, true},
		{"_+", 0, 4, true},
		{"a", 0, 2, false},
		{"a a", 0, 2, true},
		{"b? a", 0, 1, true},
	}
	for _, tc := range tests {
		e := MustParse(tc.expr)
		if got := Reach(g, e, graph.NodeID(tc.v1), graph.NodeID(tc.v2)); got != tc.want {
			t.Errorf("Reach(%q, %d, %d) = %v, want %v", tc.expr, tc.v1, tc.v2, got, tc.want)
		}
	}
}

func TestReachSelfViaCycle(t *testing.T) {
	g := graph.New()
	x := g.AddNode("x", nil)
	y := g.AddNode("y", nil)
	g.AddEdge(x, y, "a")
	g.AddEdge(y, x, "b")
	if !Reach(g, MustParse("a b"), x, x) {
		t.Error("cycle a b should reach x from itself")
	}
	if Reach(g, MustParse("a*"), x, x) {
		t.Error("ε is not a valid path: a* must not match the empty path to self")
	}
	if !Reach(g, MustParse("(a b)+"), x, x) {
		t.Error("(a b)+ should match the 2-cycle")
	}
}

func TestQueryEval(t *testing.T) {
	g := lineGraph("a", "a", "b", "c")
	q := Query{
		From: predicate.MustParse("i = 0"),
		To:   predicate.MustParse("i >= 3"),
		Expr: MustParse("a+ b c?"),
	}
	pairs := q.Eval(g)
	if len(pairs) != 2 { // (0,3) and (0,4)
		t.Fatalf("got %d pairs, want 2: %v", len(pairs), pairs)
	}
}

// TestReachAgainstBruteForce: product-BFS reachability agrees with
// brute-force path enumeration on random graphs and random expressions.
func TestReachAgainstBruteForce(t *testing.T) {
	exprs := []string{
		"a", "a b", "a|b", "a+", "a* b", "(a b)+", "(a|b)+",
		"a (a|b)* b", "_ a?", "b+ a*",
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := graph.New()
		n := 2 + r.Intn(7)
		for i := 0; i < n; i++ {
			g.AddNode(fmt.Sprintf("n%d", i), nil)
		}
		colors := []string{"a", "b"}
		for i := 0; i < 2*n; i++ {
			g.AddEdge(graph.NodeID(r.Intn(n)), graph.NodeID(r.Intn(n)), colors[r.Intn(2)])
		}
		e := MustParse(exprs[r.Intn(len(exprs))])
		const maxDepth = 6
		for v1 := 0; v1 < n; v1++ {
			for v2 := 0; v2 < n; v2++ {
				got := Reach(g, e, graph.NodeID(v1), graph.NodeID(v2))
				want := bruteReach(g, e, graph.NodeID(v1), graph.NodeID(v2), maxDepth)
				// Brute force is depth-bounded, so it can only prove paths
				// that exist (completeness direction); Reach is sound by
				// construction, so a hit it reports with no bounded witness
				// just means the witness is longer than maxDepth.
				if want && !got {
					t.Logf("seed %d expr %v: missed %d->%d", seed, e, v1, v2)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func bruteReach(g *graph.Graph, e Expr, v1, v2 graph.NodeID, maxDepth int) bool {
	var colors []string
	var walk func(v graph.NodeID) bool
	walk = func(v graph.NodeID) bool {
		if len(colors) > 0 && v == v2 && e.MatchString(colors) {
			return true
		}
		if len(colors) == maxDepth {
			return false
		}
		for _, edge := range g.Out(v) {
			colors = append(colors, g.ColorName(edge.Color))
			ok := walk(edge.To)
			colors = colors[:len(colors)-1]
			if ok {
				return true
			}
		}
		return false
	}
	return walk(v1)
}
