package rexfull

import (
	"fmt"
	"sort"
	"strings"

	"regraph/internal/graph"
	"regraph/internal/predicate"
)

// Pattern is a graph pattern query whose edges carry *general* regular
// expressions — the PQ half of the paper's future-work extension
// (Section 7). Matching semantics are unchanged (the revised graph
// simulation of Section 2); only the edge-constraint language grows.
// Evaluation stays polynomial in the data graph: each refinement step
// runs product-automaton closures. What is lost relative to subclass F is
// the static analysis: containment and minimization for these patterns
// inherit the PSPACE-completeness of general regex containment and are
// not provided.
type Pattern struct {
	nodes  []PatternNode
	byName map[string]int
	edges  []PatternEdge
	out    [][]int
}

// PatternNode is a pattern node: name and search predicate.
type PatternNode struct {
	Name string
	Pred predicate.Pred
}

// PatternEdge is a pattern edge with a general regular expression.
type PatternEdge struct {
	From, To int
	Expr     Expr
}

// NewPattern returns an empty pattern.
func NewPattern() *Pattern {
	return &Pattern{byName: map[string]int{}}
}

// AddNode adds a pattern node, returning its index (existing names return
// the existing index).
func (p *Pattern) AddNode(name string, pred predicate.Pred) int {
	if id, ok := p.byName[name]; ok {
		return id
	}
	id := len(p.nodes)
	p.nodes = append(p.nodes, PatternNode{name, pred})
	p.byName[name] = id
	p.out = append(p.out, nil)
	return id
}

// AddEdge adds a pattern edge.
func (p *Pattern) AddEdge(from, to int, expr Expr) {
	if from < 0 || from >= len(p.nodes) || to < 0 || to >= len(p.nodes) {
		panic(fmt.Sprintf("rexfull: AddEdge(%d, %d) out of range", from, to))
	}
	id := len(p.edges)
	p.edges = append(p.edges, PatternEdge{from, to, expr})
	p.out[from] = append(p.out[from], id)
}

// NumNodes returns the pattern size.
func (p *Pattern) NumNodes() int { return len(p.nodes) }

// NumEdges returns the number of pattern edges.
func (p *Pattern) NumEdges() int { return len(p.edges) }

// Node returns the i-th pattern node.
func (p *Pattern) Node(i int) PatternNode { return p.nodes[i] }

// Edge returns the i-th pattern edge.
func (p *Pattern) Edge(i int) PatternEdge { return p.edges[i] }

// PatternResult holds, per pattern edge, the matching data-node pairs;
// nil Sets means the empty answer.
type PatternResult struct {
	p    *Pattern
	Sets [][]Pair
}

// Empty reports whether the answer is empty.
func (r *PatternResult) Empty() bool { return r == nil || r.Sets == nil }

// Size is the total number of pairs.
func (r *PatternResult) Size() int {
	if r.Empty() {
		return 0
	}
	n := 0
	for _, s := range r.Sets {
		n += len(s)
	}
	return n
}

// MatchSet returns the data nodes matched to pattern node u.
func (r *PatternResult) MatchSet(u int) []graph.NodeID {
	if r.Empty() {
		return nil
	}
	set := map[graph.NodeID]bool{}
	for ei, pairs := range r.Sets {
		e := r.p.edges[ei]
		for _, pr := range pairs {
			if e.From == u {
				set[pr.From] = true
			}
			if e.To == u {
				set[pr.To] = true
			}
		}
	}
	out := make([]graph.NodeID, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String renders the answer with node names.
func (r *PatternResult) String(g *graph.Graph) string {
	if r.Empty() {
		return "{}"
	}
	var b strings.Builder
	for ei, pairs := range r.Sets {
		e := r.p.edges[ei]
		fmt.Fprintf(&b, "(%s,%s): {", r.p.nodes[e.From].Name, r.p.nodes[e.To].Name)
		ss := make([]string, len(pairs))
		for i, pr := range pairs {
			ss[i] = "(" + g.Node(pr.From).Name + "," + g.Node(pr.To).Name + ")"
		}
		sort.Strings(ss)
		b.WriteString(strings.Join(ss, ", "))
		b.WriteString("}\n")
	}
	return b.String()
}

// Eval computes the pattern's answer under the revised simulation: the
// unique maximum match sets such that every matched node can extend along
// all of its outgoing pattern edges via a path in the edge's language.
// Per-source language-reachability sets are computed once (the graph is
// static during evaluation) and the fixpoint iterates over them.
func (p *Pattern) Eval(g *graph.Graph) *PatternResult {
	if len(p.edges) == 0 {
		return &PatternResult{}
	}
	n := g.NumNodes()
	mats := make([][]bool, len(p.nodes))
	for u, node := range p.nodes {
		mats[u] = make([]bool, n)
		any := false
		for v := 0; v < n; v++ {
			if node.Pred.Eval(g.Attrs(graph.NodeID(v))) {
				mats[u][v] = true
				any = true
			}
		}
		if !any && (len(p.out[u]) > 0 || p.hasIn(u)) {
			return &PatternResult{}
		}
	}
	// reachCache[edge][source] caches the language-reachability set.
	reachCache := make([]map[graph.NodeID][]bool, len(p.edges))
	for i := range reachCache {
		reachCache[i] = map[graph.NodeID][]bool{}
	}
	reachable := func(ei int, x graph.NodeID) []bool {
		if set, ok := reachCache[ei][x]; ok {
			return set
		}
		set := reachSet(g, p.edges[ei].Expr, x)
		reachCache[ei][x] = set
		return set
	}
	for changed := true; changed; {
		changed = false
		for ei, e := range p.edges {
			src, tgt := mats[e.From], mats[e.To]
			nonEmpty := false
			for v := 0; v < n; v++ {
				if !src[v] {
					continue
				}
				keep := false
				rs := reachable(ei, graph.NodeID(v))
				for w := 0; w < n; w++ {
					if tgt[w] && rs[w] {
						keep = true
						break
					}
				}
				if keep {
					nonEmpty = true
				} else {
					src[v] = false
					changed = true
				}
			}
			if !nonEmpty {
				return &PatternResult{}
			}
		}
	}
	res := &PatternResult{p: p, Sets: make([][]Pair, len(p.edges))}
	for ei, e := range p.edges {
		var pairs []Pair
		for v := 0; v < n; v++ {
			if !mats[e.From][v] {
				continue
			}
			rs := reachable(ei, graph.NodeID(v))
			for w := 0; w < n; w++ {
				if mats[e.To][w] && rs[w] {
					pairs = append(pairs, Pair{graph.NodeID(v), graph.NodeID(w)})
				}
			}
		}
		if len(pairs) == 0 {
			return &PatternResult{}
		}
		res.Sets[ei] = pairs
	}
	return res
}

func (p *Pattern) hasIn(u int) bool {
	for _, e := range p.edges {
		if e.To == u {
			return true
		}
	}
	return false
}
