// Package rexfull implements the paper's first future-work extension
// (Section 7): reachability queries with *general* regular expressions
// over edge colors, beyond the restricted subclass F.
//
// Syntax:
//
//	r ::= c          a color (identifier), or "_" for any color
//	    | r r        concatenation
//	    | r "|" r    union
//	    | r "*"      zero or more
//	    | r "+"      one or more
//	    | r "?"      zero or one
//	    | "(" r ")"
//
// Expressions compile to Thompson NFAs; path evaluation runs a product
// BFS over (graph node, automaton state) pairs, O(|V|·|Q| + |E|·|Q|) per
// source. As the paper notes, the price of generality is that the static
// analyses are lost: containment and minimization for general expressions
// are PSPACE-complete and are deliberately not provided here — that
// asymmetry is the paper's argument for subclass F.
//
// The empty string is never a match: the paper's path semantics require
// non-empty paths, so expressions whose language contains ε (e.g. "a*")
// still only match paths of length >= 1.
package rexfull

import (
	"fmt"
	"strings"

	"regraph/internal/graph"
	"regraph/internal/predicate"
	"regraph/internal/rex"
)

// Expr is a compiled general regular expression.
type Expr struct {
	src string
	nfa *nfa
}

// String returns the source text.
func (e Expr) String() string { return e.src }

// IsZero reports whether e is the invalid zero value.
func (e Expr) IsZero() bool { return e.nfa == nil }

// ---- syntax tree and parser -------------------------------------------------

type ast interface{ isAST() }

type astColor struct{ color string } // "_" = wildcard
type astCat struct{ l, r ast }
type astAlt struct{ l, r ast }
type astStar struct{ sub ast }
type astPlus struct{ sub ast }
type astOpt struct{ sub ast }

func (astColor) isAST() {}
func (astCat) isAST()   {}
func (astAlt) isAST()   {}
func (astStar) isAST()  {}
func (astPlus) isAST()  {}
func (astOpt) isAST()   {}

type parser struct {
	input string
	pos   int
}

// Parse parses and compiles a general regular expression.
func Parse(input string) (Expr, error) {
	p := &parser{input: input}
	tree, err := p.parseAlt()
	if err != nil {
		return Expr{}, err
	}
	p.skipSpace()
	if p.pos != len(p.input) {
		return Expr{}, fmt.Errorf("rexfull: unexpected %q at offset %d", p.input[p.pos], p.pos)
	}
	return Expr{src: input, nfa: compile(tree)}, nil
}

// MustParse is Parse but panics on error.
func MustParse(input string) Expr {
	e, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return e
}

// FromSubclass converts a subclass-F expression (which is a regular
// expression) into its general form: c{k} becomes c (c (c ...)?)?...)?
// and c+ stays c+.
func FromSubclass(e rex.Expr) Expr {
	var tree ast
	for _, a := range e.Atoms() {
		var part ast
		switch {
		case a.Max == rex.Unbounded:
			part = astPlus{astColor{a.Color}}
		default:
			// 1..k occurrences: c (c (c)?)? nested options.
			part = astColor{a.Color}
			for i := 1; i < a.Max; i++ {
				part = astCat{astColor{a.Color}, astOpt{part}}
			}
		}
		if tree == nil {
			tree = part
		} else {
			tree = astCat{tree, part}
		}
	}
	return Expr{src: e.String(), nfa: compile(tree)}
}

func (p *parser) skipSpace() {
	for p.pos < len(p.input) && (p.input[p.pos] == ' ' || p.input[p.pos] == '\t') {
		p.pos++
	}
}

func (p *parser) parseAlt() (ast, error) {
	l, err := p.parseCat()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		if p.pos < len(p.input) && p.input[p.pos] == '|' {
			p.pos++
			r, err := p.parseCat()
			if err != nil {
				return nil, err
			}
			l = astAlt{l, r}
			continue
		}
		return l, nil
	}
}

func (p *parser) parseCat() (ast, error) {
	l, err := p.parsePostfix()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		if p.pos >= len(p.input) || p.input[p.pos] == '|' || p.input[p.pos] == ')' {
			return l, nil
		}
		r, err := p.parsePostfix()
		if err != nil {
			return nil, err
		}
		l = astCat{l, r}
	}
}

func (p *parser) parsePostfix() (ast, error) {
	sub, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	for p.pos < len(p.input) {
		switch p.input[p.pos] {
		case '*':
			sub = astStar{sub}
			p.pos++
		case '+':
			sub = astPlus{sub}
			p.pos++
		case '?':
			sub = astOpt{sub}
			p.pos++
		default:
			return sub, nil
		}
	}
	return sub, nil
}

func (p *parser) parseAtom() (ast, error) {
	p.skipSpace()
	if p.pos >= len(p.input) {
		return nil, fmt.Errorf("rexfull: unexpected end of expression")
	}
	switch c := p.input[p.pos]; {
	case c == '(':
		p.pos++
		sub, err := p.parseAlt()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.pos >= len(p.input) || p.input[p.pos] != ')' {
			return nil, fmt.Errorf("rexfull: missing ')'")
		}
		p.pos++
		return sub, nil
	case isColorByte(c):
		start := p.pos
		for p.pos < len(p.input) && isColorByte(p.input[p.pos]) {
			p.pos++
		}
		color := p.input[start:p.pos]
		if strings.Contains(color, "_") && color != "_" {
			return nil, fmt.Errorf("rexfull: %q: '_' is reserved for the wildcard", color)
		}
		return astColor{color}, nil
	default:
		return nil, fmt.Errorf("rexfull: unexpected character %q at offset %d", c, p.pos)
	}
}

func isColorByte(b byte) bool {
	return b == '_' || b == '-' || b == '.' ||
		(b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z') || (b >= '0' && b <= '9')
}

// ---- Thompson construction ---------------------------------------------------

const epsilon = "\x00eps"

type nfaEdge struct {
	color string // epsilon, a color, or "_"
	to    int
}

type nfa struct {
	start, accept int
	edges         [][]nfaEdge
}

func (n *nfa) addState() int {
	n.edges = append(n.edges, nil)
	return len(n.edges) - 1
}

func (n *nfa) addEdge(from int, color string, to int) {
	n.edges[from] = append(n.edges[from], nfaEdge{color, to})
}

func compile(tree ast) *nfa {
	n := &nfa{}
	n.start = n.addState()
	n.accept = n.build(tree, n.start)
	return n
}

// build wires the fragment for `tree` starting at state `from` and
// returns its accepting state.
func (n *nfa) build(tree ast, from int) int {
	switch t := tree.(type) {
	case astColor:
		to := n.addState()
		n.addEdge(from, t.color, to)
		return to
	case astCat:
		mid := n.build(t.l, from)
		return n.build(t.r, mid)
	case astAlt:
		la := n.build(t.l, from)
		ra := n.build(t.r, from)
		out := n.addState()
		n.addEdge(la, epsilon, out)
		n.addEdge(ra, epsilon, out)
		return out
	case astStar:
		inner := n.addState()
		n.addEdge(from, epsilon, inner)
		back := n.build(t.sub, inner)
		n.addEdge(back, epsilon, inner)
		out := n.addState()
		n.addEdge(inner, epsilon, out)
		return out
	case astPlus:
		inner := n.addState()
		n.addEdge(from, epsilon, inner)
		back := n.build(t.sub, inner)
		n.addEdge(back, epsilon, inner)
		out := n.addState()
		n.addEdge(back, epsilon, out)
		return out
	case astOpt:
		out := n.build(t.sub, from)
		n.addEdge(from, epsilon, out)
		return out
	default:
		panic("rexfull: unknown AST node")
	}
}

// closure expands a state set through epsilon edges in place.
func (n *nfa) closure(set map[int]bool) {
	stack := make([]int, 0, len(set))
	for q := range set {
		stack = append(stack, q)
	}
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range n.edges[q] {
			if e.color == epsilon && !set[e.to] {
				set[e.to] = true
				stack = append(stack, e.to)
			}
		}
	}
}

// step consumes one symbol.
func (n *nfa) step(set map[int]bool, color string) map[int]bool {
	next := map[int]bool{}
	for q := range set {
		for _, e := range n.edges[q] {
			if e.color == color || e.color == "_" {
				next[e.to] = true
			}
		}
	}
	n.closure(next)
	return next
}

// MatchString reports whether a non-empty color string belongs to L(e).
func (e Expr) MatchString(colors []string) bool {
	if e.IsZero() || len(colors) == 0 {
		return false
	}
	cur := map[int]bool{e.nfa.start: true}
	e.nfa.closure(cur)
	for _, c := range colors {
		cur = e.nfa.step(cur, c)
		if len(cur) == 0 {
			return false
		}
	}
	return cur[e.nfa.accept]
}

// ---- graph evaluation ---------------------------------------------------------

// Reach reports whether some non-empty path from v1 to v2 spells a string
// in L(e): a BFS over the product of the graph with the automaton.
func Reach(g *graph.Graph, e Expr, v1, v2 graph.NodeID) bool {
	if e.IsZero() {
		return false
	}
	res := reachSet(g, e, v1)
	return res[v2]
}

// reachSet returns all nodes reachable from v1 via a non-empty path whose
// string is in L(e).
func reachSet(g *graph.Graph, e Expr, v1 graph.NodeID) []bool {
	n := e.nfa
	// Product state (graph node, nfa state). Seed with the epsilon
	// closure of the start at v1; accepting product states with at least
	// one consumed edge mark reachable nodes.
	type pstate struct {
		v graph.NodeID
		q int
	}
	startSet := map[int]bool{n.start: true}
	n.closure(startSet)
	seen := map[pstate]bool{}
	var frontier []pstate
	for q := range startSet {
		s := pstate{v1, q}
		seen[s] = true
		frontier = append(frontier, s)
	}
	out := make([]bool, g.NumNodes())
	for len(frontier) > 0 {
		var next []pstate
		for _, s := range frontier {
			for _, ge := range g.Out(s.v) {
				color := g.ColorName(ge.Color)
				for _, ne := range n.edges[s.q] {
					if ne.color != color && ne.color != "_" {
						continue
					}
					tgt := map[int]bool{ne.to: true}
					n.closure(tgt)
					for q2 := range tgt {
						s2 := pstate{ge.To, q2}
						if q2 == n.accept {
							out[ge.To] = true
						}
						if !seen[s2] {
							seen[s2] = true
							next = append(next, s2)
						}
					}
				}
			}
		}
		frontier = next
	}
	return out
}

// Query is a reachability query with a general regular expression — the
// extended RQ class of Section 7.
type Query struct {
	From predicate.Pred
	To   predicate.Pred
	Expr Expr
}

// Eval returns all answer pairs by product BFS from every source
// candidate.
func (q Query) Eval(g *graph.Graph) []Pair {
	var out []Pair
	var dsts []graph.NodeID
	for v := 0; v < g.NumNodes(); v++ {
		if q.To.Eval(g.Attrs(graph.NodeID(v))) {
			dsts = append(dsts, graph.NodeID(v))
		}
	}
	if len(dsts) == 0 {
		return nil
	}
	for v := 0; v < g.NumNodes(); v++ {
		src := graph.NodeID(v)
		if !q.From.Eval(g.Attrs(src)) {
			continue
		}
		res := reachSet(g, q.Expr, src)
		for _, d := range dsts {
			if res[d] {
				out = append(out, Pair{src, d})
			}
		}
	}
	return out
}

// Pair is one query answer.
type Pair struct {
	From, To graph.NodeID
}
