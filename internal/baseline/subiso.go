// Package baseline implements the two comparison systems of the paper's
// experimental study (Section 6, Exp-1):
//
//   - SubIso: subgraph isomorphism in the style of Ullmann's algorithm,
//     the traditional notion of graph pattern matching. Pattern edges map
//     to single data edges of the required color, and the node mapping is
//     injective.
//   - Match: bounded simulation (Fan et al., "Graph pattern matching:
//     from intractable to polynomial time", 2010) — the paper's PQ
//     semantics restricted to a single wildcard bound per edge, i.e. edge
//     colors are ignored.
//
// Both consume the same pattern.Query type the main algorithms use, which
// is how the paper sets up its fairness comparison (queries restricted to
// one color per edge to favor SubIso).
package baseline

import (
	"regraph/internal/graph"
	"regraph/internal/pattern"
	"regraph/internal/rex"
)

// Mapping is one subgraph-isomorphism embedding: Mapping[u] is the data
// node matched to pattern node u.
type Mapping []graph.NodeID

// SubIsoOptions bounds the search.
type SubIsoOptions struct {
	// MaxMappings stops enumeration after this many embeddings
	// (0 = unlimited).
	MaxMappings int
	// MaxSteps aborts the backtracking search after this many recursive
	// steps (0 = unlimited); the paper's Exp uses small graphs for SubIso
	// because of exactly this blow-up.
	MaxSteps int
}

// SubIso enumerates subgraph-isomorphism embeddings of the pattern in the
// data graph: an injective node mapping under which every pattern edge
// (u, u') becomes a data edge (f(u), f(u')) whose color matches the
// pattern edge's first atom (edge-to-edge semantics — regex bounds and
// multi-atom expressions are beyond subgraph isomorphism, which is the
// point of the comparison). Node predicates must hold. The second result
// reports whether the search ran to completion.
func SubIso(g *graph.Graph, q *pattern.Query, opts SubIsoOptions) ([]Mapping, bool) {
	n := q.NumNodes()
	// Candidate sets per pattern node (Ullmann's candidate matrix).
	cands := make([][]graph.NodeID, n)
	for u := 0; u < n; u++ {
		pred := q.Node(u).Pred
		for v := 0; v < g.NumNodes(); v++ {
			id := graph.NodeID(v)
			if pred.Eval(g.Attrs(id)) && degreeOK(g, q, u, id) {
				cands[u] = append(cands[u], id)
			}
		}
		if len(cands[u]) == 0 {
			return nil, true
		}
	}
	// Order pattern nodes by ascending candidate count (most constrained
	// first), a standard Ullmann refinement.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for i := 1; i < n; i++ {
		for j := i; j > 0 && len(cands[order[j]]) < len(cands[order[j-1]]); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	var (
		out      []Mapping
		assigned = make(Mapping, n)
		used     = map[graph.NodeID]bool{}
		steps    int
		complete = true
	)
	for i := range assigned {
		assigned[i] = -1
	}
	var rec func(k int) bool // returns false to abort the whole search
	rec = func(k int) bool {
		if opts.MaxSteps > 0 && steps >= opts.MaxSteps {
			complete = false
			return false
		}
		steps++
		if k == n {
			m := make(Mapping, n)
			copy(m, assigned)
			out = append(out, m)
			return opts.MaxMappings == 0 || len(out) < opts.MaxMappings
		}
		u := order[k]
		for _, v := range cands[u] {
			if used[v] {
				continue
			}
			if !edgesConsistent(g, q, u, v, assigned) {
				continue
			}
			assigned[u] = v
			used[v] = true
			ok := rec(k + 1)
			used[v] = false
			assigned[u] = -1
			if !ok {
				return false
			}
		}
		return true
	}
	if !rec(0) && opts.MaxMappings > 0 && len(out) >= opts.MaxMappings {
		complete = false
	}
	return out, complete
}

// degreeOK prunes candidates whose degree cannot support the pattern
// node's adjacency.
func degreeOK(g *graph.Graph, q *pattern.Query, u int, v graph.NodeID) bool {
	return len(g.Out(v)) >= len(q.Out(u)) && len(g.In(v)) >= len(q.In(u))
}

// edgesConsistent checks every pattern edge between u and already-assigned
// nodes.
func edgesConsistent(g *graph.Graph, q *pattern.Query, u int, v graph.NodeID, assigned Mapping) bool {
	for _, ei := range q.Out(u) {
		e := q.Edge(ei)
		if w := assigned[e.To]; w != -1 || e.To == u {
			target := w
			if e.To == u {
				target = v
			}
			if !hasEdge(g, v, target, e.Expr) {
				return false
			}
		}
	}
	for _, ei := range q.In(u) {
		e := q.Edge(ei)
		if e.From == u {
			continue // self-loop handled above
		}
		if w := assigned[e.From]; w != -1 {
			if !hasEdge(g, w, v, e.Expr) {
				return false
			}
		}
	}
	return true
}

// hasEdge reports whether the data graph has a single edge from x to y
// whose color satisfies the pattern expression's first atom (edge-to-edge
// semantics).
func hasEdge(g *graph.Graph, x, y graph.NodeID, expr rex.Expr) bool {
	atom := expr.Atoms()[0]
	for _, e := range g.Out(x) {
		if e.To == y && atom.Matches(g.ColorName(e.Color)) {
			return true
		}
	}
	return false
}

// NodePairs flattens embeddings into the paper's #matches unit: distinct
// (pattern node, data node) pairs.
func NodePairs(q *pattern.Query, ms []Mapping) map[NodeMatch]bool {
	out := map[NodeMatch]bool{}
	for _, m := range ms {
		for u, v := range m {
			out[NodeMatch{U: u, V: v}] = true
		}
	}
	return out
}

// NodeMatch is a (pattern node, data node) match pair.
type NodeMatch struct {
	U int
	V graph.NodeID
}

// ---- bounded simulation (Match) ---------------------------------------------

// Relax converts a PQ into its bounded-simulation counterpart: every edge
// expression is replaced by a single wildcard atom whose bound is the sum
// of the original bounds (unbounded if any atom is unbounded). This is
// exactly the query class of Fan et al. 2010 — connectivity within k hops,
// colors ignored — which the paper identifies as the special case of PQs
// with a single edge type (Section 2, Remark).
func Relax(q *pattern.Query) *pattern.Query {
	out := pattern.New()
	for i := 0; i < q.NumNodes(); i++ {
		n := q.Node(i)
		out.AddNode(n.Name, n.Pred)
	}
	for ei := 0; ei < q.NumEdges(); ei++ {
		e := q.Edge(ei)
		total := 0
		for _, a := range e.Expr.Atoms() {
			if a.Max == rex.Unbounded {
				total = rex.Unbounded
				break
			}
			total += a.Max
		}
		out.AddEdge(e.From, e.To, rex.MustNew(rex.Atom{Color: rex.Wildcard, Max: total}))
	}
	return out
}

// Match evaluates the bounded-simulation baseline: the relaxed query under
// the same simulation machinery (JoinMatch). With opts carrying a distance
// matrix this is the paper's MatchM configuration.
func Match(g *graph.Graph, q *pattern.Query, opts pattern.Options) *pattern.Result {
	return pattern.JoinMatch(g, Relax(q), opts)
}

// ResultNodePairs flattens a simulation result into distinct
// (pattern node, data node) pairs, the paper's #matches unit.
func ResultNodePairs(q *pattern.Query, res *pattern.Result) map[NodeMatch]bool {
	out := map[NodeMatch]bool{}
	if res.Empty() {
		return out
	}
	for ei := 0; ei < q.NumEdges(); ei++ {
		e := q.Edge(ei)
		for _, p := range res.EdgePairs(ei) {
			out[NodeMatch{U: e.From, V: p.From}] = true
			out[NodeMatch{U: e.To, V: p.To}] = true
		}
	}
	return out
}
