package baseline_test

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"regraph/internal/baseline"
	"regraph/internal/dist"
	"regraph/internal/gen"
	"regraph/internal/graph"
	"regraph/internal/pattern"
	"regraph/internal/predicate"
	"regraph/internal/rex"
)

// triangle builds a data graph with a known embedding structure.
func triangle() *graph.Graph {
	g := graph.New()
	a := g.AddNode("a", map[string]string{"t": "x"})
	b := g.AddNode("b", map[string]string{"t": "y"})
	c := g.AddNode("c", map[string]string{"t": "z"})
	d := g.AddNode("d", map[string]string{"t": "y"})
	g.AddEdge(a, b, "e")
	g.AddEdge(b, c, "e")
	g.AddEdge(c, a, "e")
	g.AddEdge(a, d, "e")
	return g
}

func TestSubIsoFindsEmbedding(t *testing.T) {
	g := triangle()
	q := pattern.New()
	u := q.AddNode("U", predicate.MustParse("t = x"))
	v := q.AddNode("V", predicate.MustParse("t = y"))
	q.AddEdge(u, v, rex.MustParse("e"))
	ms, complete := baseline.SubIso(g, q, baseline.SubIsoOptions{})
	if !complete {
		t.Fatal("tiny search should complete")
	}
	// a->b and a->d both embed.
	if len(ms) != 2 {
		t.Fatalf("got %d embeddings, want 2: %v", len(ms), ms)
	}
	pairs := baseline.NodePairs(q, ms)
	if len(pairs) != 3 { // (U,a), (V,b), (V,d)
		t.Errorf("NodePairs = %v, want 3 distinct pairs", pairs)
	}
}

func TestSubIsoTriangleCycle(t *testing.T) {
	g := triangle()
	q := pattern.New()
	u := q.AddNode("U", predicate.Pred{})
	v := q.AddNode("V", predicate.Pred{})
	w := q.AddNode("W", predicate.Pred{})
	q.AddEdge(u, v, rex.MustParse("e"))
	q.AddEdge(v, w, rex.MustParse("e"))
	q.AddEdge(w, u, rex.MustParse("e"))
	ms, _ := baseline.SubIso(g, q, baseline.SubIsoOptions{})
	// The 3-cycle a,b,c in its three rotations.
	if len(ms) != 3 {
		t.Errorf("got %d embeddings of the triangle, want 3", len(ms))
	}
}

func TestSubIsoInjective(t *testing.T) {
	g := graph.New()
	a := g.AddNode("a", nil)
	g.AddEdge(a, a, "e") // self loop
	q := pattern.New()
	u := q.AddNode("U", predicate.Pred{})
	v := q.AddNode("V", predicate.Pred{})
	q.AddEdge(u, v, rex.MustParse("e"))
	ms, _ := baseline.SubIso(g, q, baseline.SubIsoOptions{})
	if len(ms) != 0 {
		t.Errorf("injective mapping cannot place two pattern nodes on one data node: %v", ms)
	}
	// But a self-loop pattern edge on a single pattern node embeds.
	q2 := pattern.New()
	s := q2.AddNode("S", predicate.Pred{})
	q2.AddEdge(s, s, rex.MustParse("e"))
	ms2, _ := baseline.SubIso(g, q2, baseline.SubIsoOptions{})
	if len(ms2) != 1 {
		t.Errorf("self-loop should embed once, got %v", ms2)
	}
}

func TestSubIsoColorMismatch(t *testing.T) {
	g := triangle()
	q := pattern.New()
	u := q.AddNode("U", predicate.Pred{})
	v := q.AddNode("V", predicate.Pred{})
	q.AddEdge(u, v, rex.MustParse("f")) // no f edges exist
	ms, _ := baseline.SubIso(g, q, baseline.SubIsoOptions{})
	if len(ms) != 0 {
		t.Errorf("color mismatch must yield no embeddings, got %v", ms)
	}
}

func TestSubIsoLimits(t *testing.T) {
	g := gen.Synthetic(1, 60, 240, 1, []string{"e"})
	q := pattern.New()
	u := q.AddNode("U", predicate.Pred{})
	v := q.AddNode("V", predicate.Pred{})
	q.AddEdge(u, v, rex.MustParse("e"))
	ms, complete := baseline.SubIso(g, q, baseline.SubIsoOptions{MaxMappings: 5})
	if complete || len(ms) != 5 {
		t.Errorf("MaxMappings: got %d embeddings (complete=%v), want exactly 5, incomplete", len(ms), complete)
	}
	_, complete = baseline.SubIso(g, q, baseline.SubIsoOptions{MaxSteps: 3})
	if complete {
		t.Error("MaxSteps must mark the search incomplete")
	}
}

func TestRelax(t *testing.T) {
	q := pattern.New()
	u := q.AddNode("U", predicate.Pred{})
	v := q.AddNode("V", predicate.Pred{})
	q.AddEdge(u, v, rex.MustParse("a{2} b{3}"))
	q.AddEdge(v, u, rex.MustParse("a+ b"))
	relaxed := baseline.Relax(q)
	if got := relaxed.Edge(0).Expr.String(); got != "_{5}" {
		t.Errorf("relaxed edge 0 = %q, want _{5}", got)
	}
	if got := relaxed.Edge(1).Expr.String(); got != "_+" {
		t.Errorf("relaxed edge 1 = %q, want _+", got)
	}
}

// TestMatchIsUpperBound: bounded simulation ignores colors, so every true
// PQ node match must also be a Match node match (recall 1), on random
// inputs.
func TestMatchIsUpperBound(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomAttrGraph(r, 2+r.Intn(10), 1+r.Intn(25))
		q := randomPattern(r)
		mx := dist.NewMatrix(g)
		truth := baseline.ResultNodePairs(q, pattern.JoinMatch(g, q, pattern.Options{Matrix: mx}))
		found := baseline.ResultNodePairs(q, baseline.Match(g, q, pattern.Options{Matrix: mx}))
		for m := range truth {
			if !found[m] {
				t.Logf("seed %d: true match %v missed by bounded simulation\n%v", seed, m, q)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestSubIsoSoundness: every SubIso embedding satisfies predicates and
// edge-by-edge color constraints.
func TestSubIsoSoundness(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomAttrGraph(r, 2+r.Intn(8), 1+r.Intn(20))
		q := randomPattern(r)
		ms, _ := baseline.SubIso(g, q, baseline.SubIsoOptions{MaxMappings: 50})
		for _, m := range ms {
			seen := map[graph.NodeID]bool{}
			for u, v := range m {
				if !q.Node(u).Pred.Eval(g.Attrs(v)) {
					return false
				}
				if seen[v] {
					return false // not injective
				}
				seen[v] = true
			}
			for ei := 0; ei < q.NumEdges(); ei++ {
				e := q.Edge(ei)
				found := false
				atom := e.Expr.Atoms()[0]
				for _, ge := range g.Out(m[e.From]) {
					if ge.To == m[e.To] && atom.Matches(g.ColorName(ge.Color)) {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func randomAttrGraph(r *rand.Rand, n, e int) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddNode(fmt.Sprintf("n%d", i), map[string]string{"t": fmt.Sprint(r.Intn(3))})
	}
	colors := []string{"a", "b"}
	for i := 0; i < e; i++ {
		g.AddEdge(graph.NodeID(r.Intn(n)), graph.NodeID(r.Intn(n)), colors[r.Intn(2)])
	}
	return g
}

func randomPattern(r *rand.Rand) *pattern.Query {
	q := pattern.New()
	nn := 2 + r.Intn(3)
	preds := []string{"t = 0", "t = 1", "t = 2", "*"}
	for i := 0; i < nn; i++ {
		q.AddNode(fmt.Sprintf("u%d", i), predicate.MustParse(preds[r.Intn(len(preds))]))
	}
	ne := 1 + r.Intn(3)
	colors := []string{"a", "b", "_"}
	for i := 0; i < ne; i++ {
		q.AddEdge(r.Intn(nn), r.Intn(nn), rex.MustNew(rex.Atom{
			Color: colors[r.Intn(3)], Max: 1 + r.Intn(3),
		}))
	}
	return q
}
