package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	var g Gauge
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := g.Load(); got != 0 {
		t.Errorf("gauge = %d, want 0", got)
	}
}

func TestLatencySnapshot(t *testing.T) {
	var l Latency
	if s := l.Snapshot(); s.Count != 0 {
		t.Fatalf("empty snapshot count = %d", s.Count)
	}
	// 90 fast observations and 10 slow ones: the quantiles must separate
	// them (bucket upper bounds are within 2x).
	for i := 0; i < 90; i++ {
		l.Observe(100 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		l.Observe(50 * time.Millisecond)
	}
	s := l.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	if s.Min != 100*time.Microsecond || s.Max != 50*time.Millisecond {
		t.Errorf("min/max = %v/%v", s.Min, s.Max)
	}
	wantMean := (90*100*time.Microsecond + 10*50*time.Millisecond) / 100
	if s.Mean != wantMean {
		t.Errorf("mean = %v, want %v", s.Mean, wantMean)
	}
	if s.P50 > time.Millisecond {
		t.Errorf("p50 = %v, want <= 1ms (fast cluster)", s.P50)
	}
	if s.P99 < 10*time.Millisecond {
		t.Errorf("p99 = %v, want >= 10ms (slow cluster)", s.P99)
	}
	if s.P50 > s.P95 || s.P95 > s.P99 {
		t.Errorf("quantiles not monotone: %v %v %v", s.P50, s.P95, s.P99)
	}
}

func TestLatencyConcurrent(t *testing.T) {
	var l Latency
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				l.Observe(time.Duration(k+1) * time.Millisecond)
			}
		}(i)
	}
	wg.Wait()
	s := l.Snapshot()
	if s.Count != 2000 {
		t.Errorf("count = %d, want 2000", s.Count)
	}
	if s.Min != time.Millisecond || s.Max != 4*time.Millisecond {
		t.Errorf("min/max = %v/%v", s.Min, s.Max)
	}
}
