package metrics

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	var g Gauge
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := g.Load(); got != 0 {
		t.Errorf("gauge = %d, want 0", got)
	}
}

func TestLatencySnapshot(t *testing.T) {
	var l Latency
	if s := l.Snapshot(); s.Count != 0 {
		t.Fatalf("empty snapshot count = %d", s.Count)
	}
	// 90 fast observations and 10 slow ones: the quantiles must separate
	// them (bucket upper bounds are within 2x).
	for i := 0; i < 90; i++ {
		l.Observe(100 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		l.Observe(50 * time.Millisecond)
	}
	s := l.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	if s.Min != 100*time.Microsecond || s.Max != 50*time.Millisecond {
		t.Errorf("min/max = %v/%v", s.Min, s.Max)
	}
	wantMean := (90*100*time.Microsecond + 10*50*time.Millisecond) / 100
	if s.Mean != wantMean {
		t.Errorf("mean = %v, want %v", s.Mean, wantMean)
	}
	if s.P50 > time.Millisecond {
		t.Errorf("p50 = %v, want <= 1ms (fast cluster)", s.P50)
	}
	if s.P99 < 10*time.Millisecond {
		t.Errorf("p99 = %v, want >= 10ms (slow cluster)", s.P99)
	}
	if s.P50 > s.P95 || s.P95 > s.P99 {
		t.Errorf("quantiles not monotone: %v %v %v", s.P50, s.P95, s.P99)
	}
}

// TestLatencyQuantileAccuracy is the property test behind the
// histogram's documented guarantee: with power-of-two microsecond
// buckets, every reported quantile R satisfies vq ≤ R ≤ max(2·vq, 2µs)
// where vq is the exact nearest-rank quantile — the price of lock-free
// constant-space tracking is bounded 2× relative error, never more.
// Count, min, max and mean must be exact.
func TestLatencyQuantileAccuracy(t *testing.T) {
	fracs := []struct {
		f   float64
		get func(LatencySnapshot) time.Duration
	}{
		{0.50, func(s LatencySnapshot) time.Duration { return s.P50 }},
		{0.95, func(s LatencySnapshot) time.Duration { return s.P95 }},
		{0.99, func(s LatencySnapshot) time.Duration { return s.P99 }},
		{0.999, func(s LatencySnapshot) time.Duration { return s.P999 }},
	}
	for seed := int64(1); seed <= 5; seed++ {
		r := rand.New(rand.NewSource(seed))
		n := 200 + r.Intn(5000)
		var l Latency
		samples := make([]time.Duration, n)
		var sum int64
		for i := range samples {
			// Log-uniform over ~9 decades: sub-µs noise to multi-minute
			// outliers, the full range a query latency can take.
			d := time.Duration(float64(time.Microsecond) * math.Pow(10, r.Float64()*9) / 1000)
			if d > 30*time.Minute {
				d = 30 * time.Minute
			}
			samples[i] = d
			sum += int64(d)
			l.Observe(d)
		}
		s := l.Snapshot()
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		if s.Count != uint64(n) {
			t.Fatalf("seed %d: count = %d, want %d", seed, s.Count, n)
		}
		if s.Min != samples[0] || s.Max != samples[n-1] {
			t.Errorf("seed %d: min/max = %v/%v, want %v/%v", seed, s.Min, s.Max, samples[0], samples[n-1])
		}
		if want := time.Duration(sum / int64(n)); s.Mean != want {
			t.Errorf("seed %d: mean = %v, want %v", seed, s.Mean, want)
		}
		for _, fc := range fracs {
			// The snapshot's nearest-rank rule: target = frac·n, min 1.
			target := int(fc.f * float64(n))
			if target == 0 {
				target = 1
			}
			vq := samples[target-1]
			got := fc.get(s)
			if got < vq {
				t.Errorf("seed %d: q%.3f = %v underestimates exact %v", seed, fc.f, got, vq)
			}
			bound := 2 * vq
			if bound < 2*time.Microsecond {
				bound = 2 * time.Microsecond
			}
			if got > bound {
				t.Errorf("seed %d: q%.3f = %v exceeds 2x bound of exact %v", seed, fc.f, got, vq)
			}
		}
	}
}

func TestLatencyConcurrent(t *testing.T) {
	var l Latency
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				l.Observe(time.Duration(k+1) * time.Millisecond)
			}
		}(i)
	}
	wg.Wait()
	s := l.Snapshot()
	if s.Count != 2000 {
		t.Errorf("count = %d, want 2000", s.Count)
	}
	if s.Min != time.Millisecond || s.Max != 4*time.Millisecond {
		t.Errorf("min/max = %v/%v", s.Min, s.Max)
	}
}
