package metrics_test

import (
	"math"
	"testing"

	"regraph/internal/baseline"
	"regraph/internal/graph"
	"regraph/internal/metrics"
)

func nm(u, v int) baseline.NodeMatch {
	return baseline.NodeMatch{U: u, V: graph.NodeID(v)}
}

func set(ms ...baseline.NodeMatch) map[baseline.NodeMatch]bool {
	out := map[baseline.NodeMatch]bool{}
	for _, m := range ms {
		out[m] = true
	}
	return out
}

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestEvaluatePerfect(t *testing.T) {
	truth := set(nm(0, 1), nm(1, 2))
	got := metrics.Evaluate(truth, truth)
	if !approx(got.Precision, 1) || !approx(got.Recall, 1) || !approx(got.FMeasure, 1) {
		t.Errorf("perfect match scored %+v", got)
	}
}

func TestEvaluatePartial(t *testing.T) {
	truth := set(nm(0, 1), nm(1, 2), nm(1, 3), nm(2, 4))
	found := set(nm(0, 1), nm(1, 2), nm(9, 9), nm(8, 8))
	got := metrics.Evaluate(found, truth)
	if !approx(got.Precision, 0.5) {
		t.Errorf("precision = %v, want 0.5", got.Precision)
	}
	if !approx(got.Recall, 0.5) {
		t.Errorf("recall = %v, want 0.5", got.Recall)
	}
	if !approx(got.FMeasure, 0.5) {
		t.Errorf("F = %v, want 0.5", got.FMeasure)
	}
}

func TestEvaluateHighRecallLowPrecision(t *testing.T) {
	// The Match baseline's profile: finds all true matches plus noise.
	truth := set(nm(0, 1), nm(1, 2))
	found := set(nm(0, 1), nm(1, 2), nm(0, 3), nm(1, 4), nm(0, 5), nm(1, 6))
	got := metrics.Evaluate(found, truth)
	if !approx(got.Recall, 1) {
		t.Errorf("recall = %v, want 1", got.Recall)
	}
	if !approx(got.Precision, 2.0/6.0) {
		t.Errorf("precision = %v, want 1/3", got.Precision)
	}
	wantF := 2 * (1.0 / 3.0) * 1 / (1.0/3.0 + 1)
	if !approx(got.FMeasure, wantF) {
		t.Errorf("F = %v, want %v", got.FMeasure, wantF)
	}
}

func TestEvaluateDegenerate(t *testing.T) {
	empty := set()
	truth := set(nm(0, 1))
	if got := metrics.Evaluate(empty, empty); !approx(got.FMeasure, 1) {
		t.Errorf("both empty should score 1, got %+v", got)
	}
	if got := metrics.Evaluate(empty, truth); !approx(got.Recall, 0) || !approx(got.FMeasure, 0) {
		t.Errorf("found nothing: %+v", got)
	}
	if got := metrics.Evaluate(truth, empty); !approx(got.Precision, 0) || !approx(got.FMeasure, 0) {
		t.Errorf("found noise only: %+v", got)
	}
}
