package metrics

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// This file holds the serving-side instrumentation primitives (beyond
// the paper's effectiveness measures in metrics.go): lock-free counters,
// gauges and a latency histogram, sized for per-query updates on the
// engine's hot path. internal/engine sessions use them for their
// Stats() snapshots.

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an atomic level that can move both ways (queue depths,
// in-flight counts). The zero value is ready to use.
type Gauge struct{ v atomic.Int64 }

// Add moves the gauge by d (negative to decrease).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Set forces the gauge to v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Load returns the current level.
func (g *Gauge) Load() int64 { return g.v.Load() }

// latencyBuckets is the number of power-of-two duration buckets:
// bucket i counts observations in [2^i, 2^(i+1)) microseconds, with the
// first and last buckets absorbing the tails. 32 buckets span sub-µs to
// ~35 minutes, more than any query evaluation.
const latencyBuckets = 32

// Latency is a lock-free duration histogram with power-of-two buckets
// plus exact count/sum/min/max, cheap enough to observe every query of
// a saturated engine. The zero value is ready to use; all methods are
// safe for concurrent use.
type Latency struct {
	count   atomic.Uint64
	sum     atomic.Int64 // nanoseconds
	min     atomic.Int64 // nanoseconds; 0 means "unset" (guarded by count)
	max     atomic.Int64
	buckets [latencyBuckets]atomic.Uint64
}

// Observe records one duration.
func (l *Latency) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	ns := int64(d)
	l.count.Add(1)
	l.sum.Add(ns)
	for {
		cur := l.min.Load()
		if cur != 0 && cur <= ns {
			break
		}
		if l.min.CompareAndSwap(cur, ns) {
			break
		}
	}
	for {
		cur := l.max.Load()
		if cur >= ns {
			break
		}
		if l.max.CompareAndSwap(cur, ns) {
			break
		}
	}
	l.buckets[bucketOf(d)].Add(1)
}

// bucketOf maps a duration to its power-of-two microsecond bucket.
func bucketOf(d time.Duration) int {
	us := d.Microseconds()
	if us < 1 {
		return 0
	}
	b := bits.Len64(uint64(us)) - 1
	if b >= latencyBuckets {
		return latencyBuckets - 1
	}
	return b
}

// LatencySnapshot is a point-in-time summary of a Latency histogram.
// Quantiles are upper bounds from the bucket boundaries (within 2× of
// the true value by construction). The JSON form (used by the HTTP
// service's /v1/stats) carries durations as integer nanoseconds, Go's
// native time.Duration encoding.
type LatencySnapshot struct {
	Count uint64        `json:"count"`
	Mean  time.Duration `json:"mean_ns"`
	Min   time.Duration `json:"min_ns"`
	Max   time.Duration `json:"max_ns"`
	P50   time.Duration `json:"p50_ns"`
	P95   time.Duration `json:"p95_ns"`
	P99   time.Duration `json:"p99_ns"`
	P999  time.Duration `json:"p999_ns"`
}

// Snapshot summarizes the histogram. Concurrent Observe calls may be
// partially reflected; the snapshot is internally consistent enough for
// monitoring (quantiles are computed over whatever bucket counts were
// read).
func (l *Latency) Snapshot() LatencySnapshot {
	var s LatencySnapshot
	s.Count = l.count.Load()
	if s.Count == 0 {
		return s
	}
	s.Mean = time.Duration(l.sum.Load() / int64(s.Count))
	s.Min = time.Duration(l.min.Load())
	s.Max = time.Duration(l.max.Load())
	var counts [latencyBuckets]uint64
	var total uint64
	for i := range counts {
		counts[i] = l.buckets[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return s
	}
	q := func(frac float64) time.Duration {
		target := uint64(frac * float64(total))
		if target == 0 {
			target = 1
		}
		var seen uint64
		for i, c := range counts {
			seen += c
			if seen >= target {
				// Upper edge of bucket i: 2^(i+1) microseconds.
				return time.Duration(1<<uint(i+1)) * time.Microsecond
			}
		}
		return s.Max
	}
	s.P50, s.P95, s.P99, s.P999 = q(0.50), q(0.95), q(0.99), q(0.999)
	return s
}
