// Package metrics implements the effectiveness measures of the paper's
// Exp-1: precision, recall and F-measure over sets of (pattern node, data
// node) match pairs, where the "true" matches are those satisfying both
// the node predicates and the regular-expression edge constraints (i.e.
// the PQ answer itself).
package metrics

import "regraph/internal/baseline"

// PRF holds precision, recall and F-measure.
type PRF struct {
	Precision float64
	Recall    float64
	FMeasure  float64
}

// Evaluate compares a found match set against the true match set:
//
//	recall    = #true_matches_found / #true_matches
//	precision = #true_matches_found / #matches
//	F-measure = 2 (recall · precision) / (recall + precision)
//
// Degenerate cases: with no true matches recall is 1 when nothing was
// found (vacuously correct) and 0 otherwise; with nothing found precision
// is 1 when there were no true matches and 0 otherwise.
func Evaluate(found, truth map[baseline.NodeMatch]bool) PRF {
	truePos := 0
	for m := range found {
		if truth[m] {
			truePos++
		}
	}
	var p, r float64
	switch {
	case len(found) == 0 && len(truth) == 0:
		p, r = 1, 1
	case len(found) == 0:
		p, r = 1, 0 // found nothing: no false positives, missed everything
	case len(truth) == 0:
		p, r = 0, 1
	default:
		p = float64(truePos) / float64(len(found))
		r = float64(truePos) / float64(len(truth))
	}
	f := 0.0
	if p+r > 0 {
		f = 2 * p * r / (p + r)
	}
	return PRF{Precision: p, Recall: r, FMeasure: f}
}
