// Package graph implements the paper's data graphs: directed graphs whose
// nodes carry attribute tuples (the function f_A of Section 2) and whose
// edges carry a color from a finite alphabet of edge types (the function
// f_C). It also provides the graph-algorithm substrate used by the query
// evaluation algorithms: per-color breadth-first search, Tarjan's strongly
// connected components, and topological orders over condensations.
//
// Colors are interned to small integers; all per-color operations take a
// ColorID. The special AnyColor stands for the wildcard "_" (a path via
// edges of arbitrary colors).
package graph

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// NodeID identifies a node; IDs are dense, starting at 0.
type NodeID int

// ColorID identifies an interned edge color.
type ColorID int

// AnyColor is the ColorID of the wildcard: it matches every edge color.
const AnyColor ColorID = -1

// Edge is one directed, colored edge endpoint as seen from a node's
// adjacency list.
type Edge struct {
	To    NodeID
	Color ColorID
}

// Node is a data-graph node: a stable name plus an attribute tuple.
type Node struct {
	Name  string
	Attrs map[string]string
}

// Graph is a directed graph with typed edges and attributed nodes. The
// zero value is not usable; create graphs with New.
type Graph struct {
	nodes    []Node
	byName   map[string]NodeID
	colors   []string
	colorIdx map[string]ColorID
	out      [][]Edge
	in       [][]Edge
	numEdges int

	// Per-color adjacency, built on demand by colorIndex. The build is
	// double-checked behind indexMu so that concurrent readers of a
	// graph that is no longer mutated (several engine.New calls, worker
	// goroutines) can all trigger or observe it safely; mutations still
	// require external exclusion.
	outByColor [][][]NodeID // [color][node] -> successors
	inByColor  [][][]NodeID
	indexed    atomic.Bool
	indexMu    sync.Mutex

	// epoch counts mutations (node/edge/color additions and removals).
	// Derived read-side structures — the candidate inverted index and
	// the engine's predicate→candidates memo (internal/candidx) — record
	// the epoch they were built at and rebuild when it moves, so a
	// mutate-then-query sequence can never observe stale answers.
	// Atomic so concurrent readers of an un-mutated graph stay race-free;
	// mutations themselves still require external exclusion.
	epoch atomic.Uint64

	// Copy-on-write generation support (see cow.go). cow is non-nil
	// between Derive and Seal and records which backing arrays are
	// private to this generation; sealed turns further mutation into a
	// panic once a successor generation has been published.
	cow    *cowState
	sealed bool
}

// Epoch returns the graph's mutation counter. Any mutation (AddNode,
// AddEdge, RemoveEdge, interning a new color) bumps it; equality of two
// observations brackets a mutation-free window, which is what
// epoch-validated caches key on.
func (g *Graph) Epoch() uint64 { return g.epoch.Load() }

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		byName:   map[string]NodeID{},
		colorIdx: map[string]ColorID{},
	}
}

// AddNode adds a node with the given unique name and attributes and
// returns its ID. Adding a duplicate name returns the existing node's ID
// with attributes left unchanged.
func (g *Graph) AddNode(name string, attrs map[string]string) NodeID {
	if id, ok := g.byName[name]; ok {
		return id
	}
	g.checkMutable()
	if g.cow != nil {
		return g.cowAddNode(name, attrs)
	}
	id := NodeID(len(g.nodes))
	if attrs == nil {
		attrs = map[string]string{}
	}
	g.nodes = append(g.nodes, Node{Name: name, Attrs: attrs})
	g.byName[name] = id
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	g.indexed.Store(false)
	g.epoch.Add(1)
	return id
}

// InternColor returns the ColorID for a color name, creating it if new.
// The wildcard "_" always maps to AnyColor.
func (g *Graph) InternColor(color string) ColorID {
	if color == "_" {
		return AnyColor
	}
	if id, ok := g.colorIdx[color]; ok {
		return id
	}
	g.checkMutable()
	if g.cow != nil {
		return g.cowInternColor(color)
	}
	id := ColorID(len(g.colors))
	g.colors = append(g.colors, color)
	g.colorIdx[color] = id
	g.indexed.Store(false)
	g.epoch.Add(1)
	return id
}

// ColorID looks up an existing color without interning it. The wildcard
// returns (AnyColor, true).
func (g *Graph) ColorID(color string) (ColorID, bool) {
	if color == "_" {
		return AnyColor, true
	}
	id, ok := g.colorIdx[color]
	return id, ok
}

// ColorName returns the name of a color; AnyColor renders as "_".
func (g *Graph) ColorName(c ColorID) string {
	if c == AnyColor {
		return "_"
	}
	return g.colors[c]
}

// Colors returns the interned color names in ID order.
func (g *Graph) Colors() []string { return g.colors }

// NumColors returns the number of distinct edge colors (m in the paper's
// complexity bounds).
func (g *Graph) NumColors() int { return len(g.colors) }

// AddEdge adds a directed edge with the given color. It panics on invalid
// node IDs (a programming error, not a data error).
func (g *Graph) AddEdge(from, to NodeID, color string) {
	if int(from) >= len(g.nodes) || int(to) >= len(g.nodes) || from < 0 || to < 0 {
		panic(fmt.Sprintf("graph: AddEdge(%d, %d) out of range (n=%d)", from, to, len(g.nodes)))
	}
	g.checkMutable()
	c := g.InternColor(color)
	if c == AnyColor {
		panic("graph: the wildcard \"_\" is not a valid concrete edge color")
	}
	if g.cow != nil {
		g.cowAddEdge(from, to, c)
		return
	}
	g.out[from] = append(g.out[from], Edge{To: to, Color: c})
	g.in[to] = append(g.in[to], Edge{To: from, Color: c})
	g.numEdges++
	g.indexed.Store(false)
	g.epoch.Add(1)
}

// RemoveEdge removes one edge from `from` to `to` with the given color,
// reporting whether such an edge existed. Used by the incremental
// evaluation engine; the per-color index is rebuilt lazily.
func (g *Graph) RemoveEdge(from, to NodeID, color string) bool {
	c, ok := g.colorIdx[color]
	if !ok {
		return false
	}
	idx := -1
	for i, e := range g.out[from] {
		if e.To == to && e.Color == c {
			idx = i
			break
		}
	}
	if idx < 0 {
		return false
	}
	g.checkMutable()
	if g.cow != nil {
		g.cowRemoveEdge(from, to, c, idx)
		return true
	}
	g.out[from] = append(g.out[from][:idx], g.out[from][idx+1:]...)
	for i, e := range g.in[to] {
		if e.To == from && e.Color == c {
			g.in[to] = append(g.in[to][:i], g.in[to][i+1:]...)
			break
		}
	}
	g.numEdges--
	g.indexed.Store(false)
	g.epoch.Add(1)
	return true
}

// NumNodes returns |V|.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns |E|.
func (g *Graph) NumEdges() int { return g.numEdges }

// Node returns the node record for an ID.
func (g *Graph) Node(id NodeID) Node { return g.nodes[id] }

// Attrs returns a node's attribute tuple.
func (g *Graph) Attrs(id NodeID) map[string]string { return g.nodes[id].Attrs }

// NodeByName returns the ID of the named node.
func (g *Graph) NodeByName(name string) (NodeID, bool) {
	id, ok := g.byName[name]
	return id, ok
}

// Out returns the outgoing adjacency of a node (edges point to
// successors). The slice must not be modified.
func (g *Graph) Out(id NodeID) []Edge { return g.out[id] }

// In returns the incoming adjacency of a node (Edge.To holds the
// predecessor). The slice must not be modified.
func (g *Graph) In(id NodeID) []Edge { return g.in[id] }

// colorIndex builds (once) per-color adjacency lists used by the BFS
// routines. Mutating the graph invalidates the index; it is rebuilt on
// the next call. Double-checked locking makes concurrent builds safe on
// an otherwise-unmutated graph: the atomic flag is the fast path, the
// mutex serializes the build, and the Store(true) publishes the
// completed maps to every later Load.
func (g *Graph) colorIndex() {
	if g.indexed.Load() {
		return
	}
	g.indexMu.Lock()
	defer g.indexMu.Unlock()
	if g.indexed.Load() {
		return
	}
	m := len(g.colors)
	g.outByColor = make([][][]NodeID, m)
	g.inByColor = make([][][]NodeID, m)
	for c := 0; c < m; c++ {
		g.outByColor[c] = make([][]NodeID, len(g.nodes))
		g.inByColor[c] = make([][]NodeID, len(g.nodes))
	}
	for v := range g.nodes {
		for _, e := range g.out[v] {
			g.outByColor[e.Color][v] = append(g.outByColor[e.Color][v], e.To)
		}
		for _, e := range g.in[v] {
			g.inByColor[e.Color][v] = append(g.inByColor[e.Color][v], e.To)
		}
	}
	g.indexed.Store(true)
}

// BuildColorIndex eagerly builds the lazy per-color adjacency index.
// Succ and Pred build it on first use; that build is serialized behind
// a mutex, so concurrent readers of an un-mutated graph are safe either
// way, but calling BuildColorIndex once before handing the graph to
// concurrent readers makes every subsequent Succ/Pred/BFS call a pure
// read with no chance of lock contention on first touch
// (internal/engine does this at construction). Idempotent; any later
// mutation invalidates the index again.
func (g *Graph) BuildColorIndex() { g.colorIndex() }

// Succ returns the successors of v via edges of color c (all colors when c
// is AnyColor).
func (g *Graph) Succ(v NodeID, c ColorID) []NodeID {
	if c == AnyColor {
		out := make([]NodeID, len(g.out[v]))
		for i, e := range g.out[v] {
			out[i] = e.To
		}
		return out
	}
	g.colorIndex()
	bc := g.outByColor[c]
	if int(v) >= len(bc) {
		// Node added to a derived generation after the column was built;
		// its postings live only in columns grown by cowOutBC.
		return nil
	}
	return bc[v]
}

// Pred returns the predecessors of v via edges of color c (all colors when
// c is AnyColor).
func (g *Graph) Pred(v NodeID, c ColorID) []NodeID {
	if c == AnyColor {
		out := make([]NodeID, len(g.in[v]))
		for i, e := range g.in[v] {
			out[i] = e.To
		}
		return out
	}
	g.colorIndex()
	bc := g.inByColor[c]
	if int(v) >= len(bc) {
		return nil
	}
	return bc[v]
}

// Unreachable is the distance reported by BFS for unreachable nodes.
const Unreachable = int32(-1)

// BFS computes single-source shortest hop counts from src using only edges
// of color c (every edge when c is AnyColor). dist[src] is 0 even if src
// has a self-loop; the paper's path semantics require non-empty paths, so
// callers needing "src reaches itself" must inspect edges explicitly (see
// BFSNonEmpty).
func (g *Graph) BFS(src NodeID, c ColorID) []int32 {
	dist := make([]int32, len(g.nodes))
	for i := range dist {
		dist[i] = Unreachable
	}
	dist[src] = 0
	queue := []NodeID{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.Succ(v, c) {
			if dist[w] == Unreachable {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// BFSNonEmpty computes the length of the shortest non-empty path from src
// to every node via edges of color c. It differs from BFS only at src
// itself: dist[src] is the shortest cycle through src (or Unreachable).
func (g *Graph) BFSNonEmpty(src NodeID, c ColorID) []int32 {
	dist := g.BFS(src, c)
	// Shortest non-empty path back to src: 1 + min over predecessors' dist.
	best := Unreachable
	for _, p := range g.Pred(src, c) {
		if d := dist[p]; d != Unreachable {
			if best == Unreachable || d+1 < best {
				best = d + 1
			}
		}
	}
	dist[src] = best
	return dist
}

// ---- strongly connected components --------------------------------------

// SCC computes the strongly connected components of an arbitrary directed
// graph given as a successor function, using Tarjan's algorithm
// (iterative). Components are returned in reverse topological order of the
// condensation (every edge goes from a later component to an earlier one),
// which is exactly the order JoinMatch processes them in.
func SCC(n int, succ func(int) []int) [][]int {
	const undef = -1
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = undef
	}
	var (
		counter int
		stack   []int
		comps   [][]int
	)
	type frame struct {
		v, i int
	}
	for root := 0; root < n; root++ {
		if index[root] != undef {
			continue
		}
		frames := []frame{{root, 0}}
		index[root] = counter
		low[root] = counter
		counter++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			ss := succ(f.v)
			if f.i < len(ss) {
				w := ss[f.i]
				f.i++
				if index[w] == undef {
					index[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{w, 0})
				} else if onStack[w] {
					if index[w] < low[f.v] {
						low[f.v] = index[w]
					}
				}
				continue
			}
			// Post-visit.
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == index[v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				comps = append(comps, comp)
			}
		}
	}
	return comps
}

// ---- import/export -------------------------------------------------------

// WriteTSV serializes the graph in a simple line format:
//
//	node <name> [attr=value]...
//	edge <from> <to> <color>
//
// Attribute values with spaces are written with %q quoting.
func (g *Graph) WriteTSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for id, n := range g.nodes {
		fmt.Fprintf(bw, "node\t%s", n.Name)
		keys := make([]string, 0, len(n.Attrs))
		for k := range n.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			v := n.Attrs[k]
			if strings.ContainsAny(v, " \t") {
				fmt.Fprintf(bw, "\t%s=%q", k, v)
			} else {
				fmt.Fprintf(bw, "\t%s=%s", k, v)
			}
		}
		fmt.Fprintln(bw)
		_ = id
	}
	for v := range g.nodes {
		for _, e := range g.out[v] {
			fmt.Fprintf(bw, "edge\t%s\t%s\t%s\n", g.nodes[v].Name, g.nodes[e.To].Name, g.colors[e.Color])
		}
	}
	return bw.Flush()
}

// ReadTSV parses the format written by WriteTSV.
func ReadTSV(r io.Reader) (*Graph, error) {
	g := New()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, "\t")
		switch fields[0] {
		case "node":
			if len(fields) < 2 {
				return nil, fmt.Errorf("graph: line %d: node needs a name", lineNo)
			}
			attrs := map[string]string{}
			for _, f := range fields[2:] {
				eq := strings.IndexByte(f, '=')
				if eq < 0 {
					return nil, fmt.Errorf("graph: line %d: bad attribute %q", lineNo, f)
				}
				k, v := f[:eq], f[eq+1:]
				if len(v) >= 2 && v[0] == '"' {
					unq := v[1 : len(v)-1]
					v = unq
				}
				attrs[k] = v
			}
			g.AddNode(fields[1], attrs)
		case "edge":
			if len(fields) != 4 {
				return nil, fmt.Errorf("graph: line %d: edge needs from, to, color", lineNo)
			}
			from, ok := g.NodeByName(fields[1])
			if !ok {
				return nil, fmt.Errorf("graph: line %d: unknown node %q", lineNo, fields[1])
			}
			to, ok := g.NodeByName(fields[2])
			if !ok {
				return nil, fmt.Errorf("graph: line %d: unknown node %q", lineNo, fields[2])
			}
			g.AddEdge(from, to, fields[3])
		default:
			return nil, fmt.Errorf("graph: line %d: unknown record %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return g, nil
}
