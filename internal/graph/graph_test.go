package graph

import (
	"bytes"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// line builds a -c-> b -c-> c ... path graph.
func lineGraph(n int, color string) *Graph {
	g := New()
	ids := make([]NodeID, n)
	for i := 0; i < n; i++ {
		ids[i] = g.AddNode(string(rune('a'+i)), nil)
	}
	for i := 0; i+1 < n; i++ {
		g.AddEdge(ids[i], ids[i+1], color)
	}
	return g
}

func TestAddNodeDuplicate(t *testing.T) {
	g := New()
	a := g.AddNode("a", map[string]string{"k": "1"})
	b := g.AddNode("a", map[string]string{"k": "2"})
	if a != b {
		t.Errorf("duplicate AddNode returned %d, want %d", b, a)
	}
	if g.NumNodes() != 1 {
		t.Errorf("NumNodes = %d, want 1", g.NumNodes())
	}
	if g.Attrs(a)["k"] != "1" {
		t.Error("duplicate AddNode must not overwrite attributes")
	}
}

func TestColorsInterned(t *testing.T) {
	g := New()
	a := g.AddNode("a", nil)
	b := g.AddNode("b", nil)
	g.AddEdge(a, b, "fa")
	g.AddEdge(b, a, "fn")
	g.AddEdge(a, b, "fa")
	if g.NumColors() != 2 {
		t.Errorf("NumColors = %d, want 2", g.NumColors())
	}
	if id, ok := g.ColorID("fa"); !ok || g.ColorName(id) != "fa" {
		t.Error("ColorID/ColorName round trip failed")
	}
	if id, ok := g.ColorID("_"); !ok || id != AnyColor {
		t.Error("wildcard should map to AnyColor")
	}
	if _, ok := g.ColorID("nope"); ok {
		t.Error("unknown color should not resolve")
	}
	if g.NumEdges() != 3 {
		t.Errorf("NumEdges = %d, want 3", g.NumEdges())
	}
}

func TestSuccPredByColor(t *testing.T) {
	g := New()
	a := g.AddNode("a", nil)
	b := g.AddNode("b", nil)
	c := g.AddNode("c", nil)
	g.AddEdge(a, b, "x")
	g.AddEdge(a, c, "y")
	g.AddEdge(b, c, "x")
	x, _ := g.ColorID("x")
	y, _ := g.ColorID("y")
	if got := g.Succ(a, x); len(got) != 1 || got[0] != b {
		t.Errorf("Succ(a,x) = %v, want [b]", got)
	}
	if got := g.Succ(a, y); len(got) != 1 || got[0] != c {
		t.Errorf("Succ(a,y) = %v, want [c]", got)
	}
	if got := g.Succ(a, AnyColor); len(got) != 2 {
		t.Errorf("Succ(a,any) = %v, want 2 successors", got)
	}
	if got := g.Pred(c, x); len(got) != 1 || got[0] != b {
		t.Errorf("Pred(c,x) = %v, want [b]", got)
	}
	if got := g.Pred(c, AnyColor); len(got) != 2 {
		t.Errorf("Pred(c,any) = %v, want 2 predecessors", got)
	}
}

func TestSuccIndexRebuiltAfterMutation(t *testing.T) {
	g := New()
	a := g.AddNode("a", nil)
	b := g.AddNode("b", nil)
	g.AddEdge(a, b, "x")
	x, _ := g.ColorID("x")
	_ = g.Succ(a, x) // build index
	c := g.AddNode("c", nil)
	g.AddEdge(a, c, "x")
	if got := g.Succ(a, x); len(got) != 2 {
		t.Errorf("after mutation Succ(a,x) = %v, want 2 successors", got)
	}
}

func TestBFSLine(t *testing.T) {
	g := lineGraph(5, "c")
	c, _ := g.ColorID("c")
	dist := g.BFS(0, c)
	want := []int32{0, 1, 2, 3, 4}
	if !reflect.DeepEqual(dist, want) {
		t.Errorf("BFS = %v, want %v", dist, want)
	}
}

func TestBFSColorRestriction(t *testing.T) {
	g := New()
	a := g.AddNode("a", nil)
	b := g.AddNode("b", nil)
	c := g.AddNode("c", nil)
	g.AddEdge(a, b, "x")
	g.AddEdge(b, c, "y") // breaks the x-only path
	x, _ := g.ColorID("x")
	dist := g.BFS(a, x)
	if dist[b] != 1 || dist[c] != Unreachable {
		t.Errorf("color-restricted BFS = %v", dist)
	}
	distAny := g.BFS(a, AnyColor)
	if distAny[c] != 2 {
		t.Errorf("wildcard BFS dist to c = %d, want 2", distAny[c])
	}
}

func TestBFSNonEmptySelf(t *testing.T) {
	g := New()
	a := g.AddNode("a", nil)
	b := g.AddNode("b", nil)
	g.AddEdge(a, b, "x")
	g.AddEdge(b, a, "x")
	x, _ := g.ColorID("x")
	dist := g.BFSNonEmpty(a, x)
	if dist[a] != 2 {
		t.Errorf("shortest non-empty cycle at a = %d, want 2", dist[a])
	}
	// Without the return edge, a cannot reach itself non-emptily.
	g2 := New()
	a2 := g2.AddNode("a", nil)
	b2 := g2.AddNode("b", nil)
	g2.AddEdge(a2, b2, "x")
	x2, _ := g2.ColorID("x")
	if d := g2.BFSNonEmpty(a2, x2); d[a2] != Unreachable {
		t.Errorf("no cycle: dist[a] = %d, want Unreachable", d[a2])
	}
}

func TestSCCSimple(t *testing.T) {
	// 0 -> 1 -> 2 -> 0 (one SCC), 2 -> 3, 3 -> 4, 4 -> 3 (another SCC).
	adj := [][]int{{1}, {2}, {0, 3}, {4}, {3}}
	comps := SCC(5, func(v int) []int { return adj[v] })
	if len(comps) != 2 {
		t.Fatalf("got %d components, want 2", len(comps))
	}
	for _, c := range comps {
		sort.Ints(c)
	}
	// Reverse topological: {3,4} must come before {0,1,2}.
	if !reflect.DeepEqual(comps[0], []int{3, 4}) || !reflect.DeepEqual(comps[1], []int{0, 1, 2}) {
		t.Errorf("components = %v, want [[3 4] [0 1 2]]", comps)
	}
}

func TestSCCDAGIsReverseTopological(t *testing.T) {
	// A DAG: every node its own component; order must be reverse
	// topological (successors first).
	adj := [][]int{{1, 2}, {3}, {3}, {}}
	comps := SCC(4, func(v int) []int { return adj[v] })
	pos := map[int]int{}
	for i, c := range comps {
		if len(c) != 1 {
			t.Fatalf("DAG produced multi-node component %v", c)
		}
		pos[c[0]] = i
	}
	for v, ss := range adj {
		for _, w := range ss {
			if pos[w] >= pos[v] {
				t.Errorf("edge %d->%d: successor %d at position %d, not before %d", v, w, w, pos[w], pos[v])
			}
		}
	}
}

// TestSCCRandomPartition: SCC must partition the vertex set, and two nodes
// share a component iff they reach each other.
func TestSCCRandomPartition(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(12)
		adj := make([][]int, n)
		for i := 0; i < n*2; i++ {
			u, v := r.Intn(n), r.Intn(n)
			adj[u] = append(adj[u], v)
		}
		comps := SCC(n, func(v int) []int { return adj[v] })
		seen := make([]int, n)
		for i := range seen {
			seen[i] = -1
		}
		for ci, comp := range comps {
			for _, v := range comp {
				if seen[v] != -1 {
					return false // appears twice
				}
				seen[v] = ci
			}
		}
		for _, s := range seen {
			if s == -1 {
				return false // missing vertex
			}
		}
		// Reachability closure.
		reach := make([][]bool, n)
		for i := range reach {
			reach[i] = make([]bool, n)
			stack := []int{i}
			for len(stack) > 0 {
				v := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, w := range adj[v] {
					if !reach[i][w] {
						reach[i][w] = true
						stack = append(stack, w)
					}
				}
			}
		}
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				same := seen[u] == seen[v]
				mutual := u == v || (reach[u][v] && reach[v][u])
				if same != mutual {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTSVRoundTrip(t *testing.T) {
	g := New()
	a := g.AddNode("a", map[string]string{"job": "doctor", "cat": "Film & Animation"})
	b := g.AddNode("b", map[string]string{"job": "biologist"})
	g.AddEdge(a, b, "fa")
	g.AddEdge(b, a, "fn")

	var buf bytes.Buffer
	if err := g.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadTSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != 2 || g2.NumEdges() != 2 {
		t.Fatalf("round trip: %d nodes, %d edges", g2.NumNodes(), g2.NumEdges())
	}
	a2, _ := g2.NodeByName("a")
	if g2.Attrs(a2)["cat"] != "Film & Animation" {
		t.Errorf("attribute with spaces lost: %q", g2.Attrs(a2)["cat"])
	}
	if g2.Attrs(a2)["job"] != "doctor" {
		t.Errorf("job attribute lost: %q", g2.Attrs(a2)["job"])
	}
}

func TestReadTSVErrors(t *testing.T) {
	for _, in := range []string{
		"node",
		"edge\ta\tb",
		"edge\tmissing\tb\tc",
		"bogus\tline",
		"node\ta\tnoequals",
	} {
		if _, err := ReadTSV(bytes.NewReader([]byte(in))); err == nil {
			t.Errorf("ReadTSV(%q): expected error", in)
		}
	}
}

func BenchmarkBFS(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	g := New()
	const n = 2000
	for i := 0; i < n; i++ {
		g.AddNode(string(rune('n'))+string(rune(i)), nil)
	}
	colors := []string{"a", "b", "c", "d"}
	for i := 0; i < 4*n; i++ {
		g.AddEdge(NodeID(r.Intn(n)), NodeID(r.Intn(n)), colors[r.Intn(4)])
	}
	c, _ := g.ColorID("a")
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.BFS(NodeID(i%n), c)
	}
}

func TestRemoveEdge(t *testing.T) {
	g := New()
	a := g.AddNode("a", nil)
	b := g.AddNode("b", nil)
	g.AddEdge(a, b, "x")
	g.AddEdge(a, b, "x") // parallel edge
	g.AddEdge(a, b, "y")
	x, _ := g.ColorID("x")
	_ = g.Succ(a, x) // build the color index
	if !g.RemoveEdge(a, b, "x") {
		t.Fatal("RemoveEdge should find the edge")
	}
	if g.NumEdges() != 2 {
		t.Errorf("NumEdges = %d, want 2", g.NumEdges())
	}
	// One x edge remains, and the index must reflect the removal.
	if got := g.Succ(a, x); len(got) != 1 {
		t.Errorf("Succ(a,x) after removal = %v, want one edge", got)
	}
	if got := g.Pred(b, x); len(got) != 1 {
		t.Errorf("Pred(b,x) after removal = %v, want one edge", got)
	}
	if !g.RemoveEdge(a, b, "x") || g.RemoveEdge(a, b, "x") {
		t.Error("second removal should succeed, third should fail")
	}
	if g.RemoveEdge(a, b, "nosuch") {
		t.Error("unknown color should not remove anything")
	}
	if !g.RemoveEdge(a, b, "y") {
		t.Error("y edge should be removable")
	}
	if g.NumEdges() != 0 {
		t.Errorf("NumEdges = %d, want 0", g.NumEdges())
	}
}

func TestRemoveEdgeBFSConsistency(t *testing.T) {
	g := lineGraph(4, "c")
	c, _ := g.ColorID("c")
	if !g.RemoveEdge(1, 2, "c") {
		t.Fatal("middle edge should exist")
	}
	dist := g.BFS(0, c)
	if dist[1] != 1 || dist[2] != Unreachable || dist[3] != Unreachable {
		t.Errorf("BFS after removal = %v", dist)
	}
}
