package graph

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// snapshot captures everything observable about a graph through its read
// API, deeply copied, so later mutations of any generation can be checked
// against it.
type snapshot struct {
	n, e   int
	colors []string
	nodes  []Node
	out    [][]Edge
	in     [][]Edge
	succ   map[string][]NodeID // "c/v" -> successors
	pred   map[string][]NodeID
}

func snap(g *Graph) *snapshot {
	s := &snapshot{
		n:      g.NumNodes(),
		e:      g.NumEdges(),
		colors: append([]string(nil), g.Colors()...),
		succ:   map[string][]NodeID{},
		pred:   map[string][]NodeID{},
	}
	for v := 0; v < s.n; v++ {
		nd := g.Node(NodeID(v))
		attrs := map[string]string{}
		for k, val := range nd.Attrs {
			attrs[k] = val
		}
		s.nodes = append(s.nodes, Node{Name: nd.Name, Attrs: attrs})
		s.out = append(s.out, append([]Edge(nil), g.Out(NodeID(v))...))
		s.in = append(s.in, append([]Edge(nil), g.In(NodeID(v))...))
		for c := 0; c < g.NumColors(); c++ {
			key := fmt.Sprintf("%d/%d", c, v)
			s.succ[key] = append([]NodeID(nil), g.Succ(NodeID(v), ColorID(c))...)
			s.pred[key] = append([]NodeID(nil), g.Pred(NodeID(v), ColorID(c))...)
		}
	}
	return s
}

func (s *snapshot) check(t *testing.T, g *Graph, label string) {
	t.Helper()
	if g.NumNodes() != s.n || g.NumEdges() != s.e {
		t.Fatalf("%s: size changed: got %d nodes/%d edges, want %d/%d", label, g.NumNodes(), g.NumEdges(), s.n, s.e)
	}
	if !reflect.DeepEqual(append([]string(nil), g.Colors()...), s.colors) {
		t.Fatalf("%s: colors changed: %v vs %v", label, g.Colors(), s.colors)
	}
	for v := 0; v < s.n; v++ {
		nd := g.Node(NodeID(v))
		if nd.Name != s.nodes[v].Name || !reflect.DeepEqual(nd.Attrs, s.nodes[v].Attrs) {
			t.Fatalf("%s: node %d changed: %+v vs %+v", label, v, nd, s.nodes[v])
		}
		if !edgesEqual(g.Out(NodeID(v)), s.out[v]) || !edgesEqual(g.In(NodeID(v)), s.in[v]) {
			t.Fatalf("%s: adjacency of %d changed", label, v)
		}
		for c := 0; c < len(s.colors); c++ {
			key := fmt.Sprintf("%d/%d", c, v)
			if !idsEqual(g.Succ(NodeID(v), ColorID(c)), s.succ[key]) {
				t.Fatalf("%s: Succ(%d,%d) changed: %v vs %v", label, v, c, g.Succ(NodeID(v), ColorID(c)), s.succ[key])
			}
			if !idsEqual(g.Pred(NodeID(v), ColorID(c)), s.pred[key]) {
				t.Fatalf("%s: Pred(%d,%d) changed", label, v, c)
			}
		}
	}
}

func edgesEqual(a, b []Edge) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func idsEqual(a, b []NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func buildBase(t *testing.T) *Graph {
	t.Helper()
	g := New()
	for i := 0; i < 8; i++ {
		g.AddNode(fmt.Sprintf("n%d", i), map[string]string{"idx": fmt.Sprint(i)})
	}
	g.AddEdge(0, 1, "a")
	g.AddEdge(1, 2, "a")
	g.AddEdge(2, 3, "b")
	g.AddEdge(3, 4, "b")
	g.AddEdge(0, 1, "b") // parallel edge, different color
	g.AddEdge(0, 1, "a") // true multi-edge
	g.AddEdge(5, 6, "a")
	g.AddEdge(6, 7, "c")
	g.BuildColorIndex()
	return g
}

// TestDeriveBaseImmutable mutates a derived generation every way the API
// allows and asserts the base graph is bit-for-bit unchanged.
func TestDeriveBaseImmutable(t *testing.T) {
	g := buildBase(t)
	before := snap(g)

	ng := g.Derive()
	ng.AddEdge(4, 5, "a")
	ng.AddEdge(0, 7, "c")
	if !ng.RemoveEdge(0, 1, "a") {
		t.Fatal("RemoveEdge(0,1,a) should succeed")
	}
	ng.SetAttr(2, "idx", "changed")
	ng.SetAttr(2, "extra", "1")
	id := ng.AddNode("fresh", map[string]string{"idx": "99"})
	ng.AddEdge(id, 0, "a")
	ng.AddEdge(3, id, "d") // new color too

	before.check(t, g, "base after derived mutations")

	if _, ok := g.NodeByName("fresh"); ok {
		t.Fatal("base graph sees node added to derived generation")
	}
	if _, ok := g.ColorID("d"); ok {
		t.Fatal("base graph sees color interned in derived generation")
	}
	if ng.Epoch() <= g.Epoch() {
		t.Fatalf("derived epoch %d should be ahead of base %d", ng.Epoch(), g.Epoch())
	}
}

// TestDeriveEquivalentToRebuild replays a random mutation sequence both
// through chained Derive generations and into a from-scratch graph, and
// requires every read-API observation to agree at each step.
func TestDeriveEquivalentToRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	colors := []string{"a", "b", "c", "d"}

	fresh := New()
	cur := buildBase(t)
	// Mirror the base into fresh via TSV-free replay.
	for v := 0; v < cur.NumNodes(); v++ {
		nd := cur.Node(NodeID(v))
		attrs := map[string]string{}
		for k, val := range nd.Attrs {
			attrs[k] = val
		}
		fresh.AddNode(nd.Name, attrs)
	}
	for v := 0; v < cur.NumNodes(); v++ {
		for _, e := range cur.Out(NodeID(v)) {
			fresh.AddEdge(NodeID(v), e.To, cur.ColorName(e.Color))
		}
	}

	for gen := 0; gen < 12; gen++ {
		ng := cur.Derive()
		nops := 1 + rng.Intn(6)
		for i := 0; i < nops; i++ {
			switch rng.Intn(4) {
			case 0:
				name := fmt.Sprintf("g%dn%d", gen, i)
				attrs := map[string]string{"idx": fmt.Sprint(rng.Intn(100))}
				ng.AddNode(name, attrs)
				fresh.AddNode(name, attrs)
			case 1:
				v := NodeID(rng.Intn(ng.NumNodes()))
				k := fmt.Sprintf("k%d", rng.Intn(3))
				val := fmt.Sprint(rng.Intn(10))
				ng.SetAttr(v, k, val)
				fresh.SetAttr(v, k, val)
			case 2:
				from := NodeID(rng.Intn(ng.NumNodes()))
				to := NodeID(rng.Intn(ng.NumNodes()))
				c := colors[rng.Intn(len(colors))]
				ng.AddEdge(from, to, c)
				fresh.AddEdge(from, to, c)
			case 3:
				from := NodeID(rng.Intn(ng.NumNodes()))
				to := NodeID(rng.Intn(ng.NumNodes()))
				c := colors[rng.Intn(len(colors))]
				got := ng.RemoveEdge(from, to, c)
				want := fresh.RemoveEdge(from, to, c)
				if got != want {
					t.Fatalf("gen %d: RemoveEdge(%d,%d,%s) = %v on derived, %v on fresh", gen, from, to, c, got, want)
				}
			}
		}
		cur.Seal()
		cur = ng

		// The derived generation and the replayed fresh graph must agree
		// on every observation, including per-color index contents.
		want := snap(fresh)
		want.check(t, cur, fmt.Sprintf("gen %d vs fresh rebuild", gen))
	}
}

// TestSealedPanics pins the contract that a sealed generation refuses
// mutation loudly.
func TestSealedPanics(t *testing.T) {
	g := buildBase(t)
	ng := g.Derive()
	g.Seal()
	if !g.Sealed() {
		t.Fatal("Sealed() false after Seal")
	}
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s on sealed graph did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("AddEdge", func() { g.AddEdge(0, 1, "a") })
	mustPanic("RemoveEdge", func() { g.RemoveEdge(0, 1, "a") })
	mustPanic("AddNode", func() { g.AddNode("zz", nil) })
	mustPanic("SetAttr", func() { g.SetAttr(0, "k", "v") })
	mustPanic("InternColor", func() { g.InternColor("brand-new") })

	// Reads still work, and the unsealed successor still mutates.
	if len(g.Succ(0, 0)) == 0 {
		t.Fatal("sealed graph lost its adjacency")
	}
	ng.AddEdge(4, 5, "a")
	// Idempotent lookups on the sealed graph must not panic.
	if g.AddNode("n0", nil) != 0 {
		t.Fatal("existing-name AddNode should return the old ID without mutating")
	}
	if g.InternColor("a") != 0 {
		t.Fatal("existing InternColor should not mutate")
	}
}

// TestDeriveSharesUntouchedStorage is a cheap guard that Derive is O(1):
// deriving and mutating one node must not copy every adjacency list.
func TestDeriveSharesUntouchedStorage(t *testing.T) {
	g := buildBase(t)
	ng := g.Derive()
	ng.AddEdge(0, 1, "a")
	// Untouched rows share backing storage with the base.
	if len(g.Out(5)) > 0 && len(ng.Out(5)) > 0 && &g.Out(5)[0] != &ng.Out(5)[0] {
		t.Fatal("untouched adjacency row was copied")
	}
	// The touched row must NOT share storage.
	if &g.Out(0)[0] == &ng.Out(0)[0] {
		t.Fatal("touched adjacency row still shares storage with the base")
	}
}
