// Copy-on-write generations. Derive returns a successor graph that shares
// every backing array with its base; the first mutation of any region
// (a node's adjacency list, one color's posting column, an attribute map)
// clones just that region into the derived graph. The base is never
// written through shared storage, so readers holding the base — pinned
// engine sessions, standing queries mid-refine — observe a stable
// snapshot while the writer prepares the next generation. Once the
// writer publishes the successor it seals the base (Seal), turning any
// later direct mutation into a loud panic instead of a data race.
//
// The per-color adjacency index is maintained incrementally in a derived
// generation (mutators patch outByColor/inByColor in place of the
// invalidate-and-rebuild path), so Succ/Pred never pay a rebuild after a
// mutation batch. Postings keep insertion order, which makes a derived
// index bit-identical to colorIndex run from scratch on the same graph:
// outByColor[c][v] is the order-preserving filter of out[v] by color c
// under both constructions.
package graph

// colorNode keys one posting list of the per-color adjacency index.
type colorNode struct {
	c ColorID
	v NodeID
}

// cowState records, for one unpublished derived generation, which backing
// arrays are privately owned (safe to mutate in place) and which are still
// shared with the base generation. It exists only between Derive and Seal;
// a nil cowState means the graph owns all its storage (built from scratch)
// and mutates in place as before.
type cowState struct {
	nodes    bool // g.nodes header is private
	byName   bool
	colors   bool
	colorIdx bool
	out      bool // top-level out slice is private
	in       bool
	outBC    bool // top-level outByColor slice is private
	inBC     bool

	outCols []bool // per color: outByColor[c] (the [node] level) is private
	inCols  []bool

	outNode map[NodeID]bool    // out[v] is private
	inNode  map[NodeID]bool    // in[v] is private
	outCN   map[colorNode]bool // outByColor[c][v] is private
	inCN    map[colorNode]bool
	attrs   map[NodeID]bool // nodes[v].Attrs is private
}

// Derive returns an unsealed copy-on-write successor of g. The successor
// initially shares all storage with g; mutations clone only what they
// touch. The base's per-color adjacency index is built first (if it is
// not already) so both generations share it and the successor can patch
// its private copies incrementally — a derived graph never invalidates
// the index wholesale.
//
// The caller owns the concurrency contract: g may be read concurrently
// during and after Derive, but the derived graph must be mutated by one
// goroutine and published to readers with an appropriate barrier (the
// engine does both under its write lock).
func (g *Graph) Derive() *Graph {
	g.colorIndex()
	ng := &Graph{
		nodes:      g.nodes,
		byName:     g.byName,
		colors:     g.colors,
		colorIdx:   g.colorIdx,
		out:        g.out,
		in:         g.in,
		numEdges:   g.numEdges,
		outByColor: g.outByColor,
		inByColor:  g.inByColor,
		cow: &cowState{
			outCols: make([]bool, len(g.colors)),
			inCols:  make([]bool, len(g.colors)),
			outNode: map[NodeID]bool{},
			inNode:  map[NodeID]bool{},
			outCN:   map[colorNode]bool{},
			inCN:    map[colorNode]bool{},
			attrs:   map[NodeID]bool{},
		},
	}
	ng.indexed.Store(true)
	ng.epoch.Store(g.epoch.Load())
	return ng
}

// Seal freezes the graph: every subsequent mutation panics. The engine
// seals a generation when it publishes the next one; pinned readers keep
// using the sealed graph, and the panic converts any stray write into a
// programming error instead of a racy corruption of shared storage. The
// copy-on-write bookkeeping is dropped — a sealed generation can still be
// Derived from (deriving needs no cow state on the base).
func (g *Graph) Seal() {
	g.sealed = true
	g.cow = nil
}

// Sealed reports whether Seal has been called.
func (g *Graph) Sealed() bool { return g.sealed }

func (g *Graph) checkMutable() {
	if g.sealed {
		panic("graph: mutation of a sealed generation")
	}
}

// ---- region cloning ------------------------------------------------------

func (g *Graph) cowNodes() {
	if !g.cow.nodes {
		g.nodes = append([]Node(nil), g.nodes...)
		g.cow.nodes = true
	}
}

// cowAttrs makes nodes[v].Attrs private. The base generation keeps the
// original map; readers of the base never see writes through the clone.
func (g *Graph) cowAttrs(v NodeID) {
	g.cowNodes()
	if g.cow.attrs[v] {
		return
	}
	old := g.nodes[v].Attrs
	m := make(map[string]string, len(old)+1)
	for k, val := range old {
		m[k] = val
	}
	g.nodes[v].Attrs = m
	g.cow.attrs[v] = true
}

func (g *Graph) cowByName() {
	if g.cow.byName {
		return
	}
	m := make(map[string]NodeID, len(g.byName)+1)
	for k, v := range g.byName {
		m[k] = v
	}
	g.byName = m
	g.cow.byName = true
}

func (g *Graph) cowOut(v NodeID) {
	if !g.cow.out {
		g.out = append([][]Edge(nil), g.out...)
		g.cow.out = true
	}
	if !g.cow.outNode[v] {
		g.out[v] = append([]Edge(nil), g.out[v]...)
		g.cow.outNode[v] = true
	}
}

func (g *Graph) cowIn(v NodeID) {
	if !g.cow.in {
		g.in = append([][]Edge(nil), g.in...)
		g.cow.in = true
	}
	if !g.cow.inNode[v] {
		g.in[v] = append([]Edge(nil), g.in[v]...)
		g.cow.inNode[v] = true
	}
}

// cowOutBC makes outByColor[c][v] privately writable, growing the color's
// [node] level if v was added in this generation (columns are grown
// lazily: Succ/Pred treat an out-of-range node as having no postings).
func (g *Graph) cowOutBC(c ColorID, v NodeID) {
	if !g.cow.outBC {
		g.outByColor = append([][][]NodeID(nil), g.outByColor...)
		g.cow.outBC = true
	}
	if !g.cow.outCols[c] {
		g.outByColor[c] = append([][]NodeID(nil), g.outByColor[c]...)
		g.cow.outCols[c] = true
	}
	if int(v) >= len(g.outByColor[c]) {
		grown := make([][]NodeID, len(g.nodes))
		copy(grown, g.outByColor[c])
		g.outByColor[c] = grown
	}
	key := colorNode{c, v}
	if !g.cow.outCN[key] {
		g.outByColor[c][v] = append([]NodeID(nil), g.outByColor[c][v]...)
		g.cow.outCN[key] = true
	}
}

func (g *Graph) cowInBC(c ColorID, v NodeID) {
	if !g.cow.inBC {
		g.inByColor = append([][][]NodeID(nil), g.inByColor...)
		g.cow.inBC = true
	}
	if !g.cow.inCols[c] {
		g.inByColor[c] = append([][]NodeID(nil), g.inByColor[c]...)
		g.cow.inCols[c] = true
	}
	if int(v) >= len(g.inByColor[c]) {
		grown := make([][]NodeID, len(g.nodes))
		copy(grown, g.inByColor[c])
		g.inByColor[c] = grown
	}
	key := colorNode{c, v}
	if !g.cow.inCN[key] {
		g.inByColor[c][v] = append([]NodeID(nil), g.inByColor[c][v]...)
		g.cow.inCN[key] = true
	}
}

// ---- copy-on-write mutators ----------------------------------------------

func (g *Graph) cowAddNode(name string, attrs map[string]string) NodeID {
	id := NodeID(len(g.nodes))
	if attrs == nil {
		attrs = map[string]string{}
	}
	g.cowNodes()
	g.cowByName()
	g.nodes = append(g.nodes, Node{Name: name, Attrs: attrs})
	g.cow.attrs[id] = true // fresh map, nothing shared
	g.byName[name] = id
	if !g.cow.out {
		g.out = append([][]Edge(nil), g.out...)
		g.cow.out = true
	}
	if !g.cow.in {
		g.in = append([][]Edge(nil), g.in...)
		g.cow.in = true
	}
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	g.cow.outNode[id] = true
	g.cow.inNode[id] = true
	// Per-color columns are not extended here; cowOutBC/cowInBC grow them
	// on the first edge touching the new node, and Succ/Pred bounds-check.
	g.epoch.Add(1)
	return id
}

func (g *Graph) cowInternColor(color string) ColorID {
	if !g.cow.colors {
		g.colors = append([]string(nil), g.colors...)
		g.cow.colors = true
	}
	if !g.cow.colorIdx {
		m := make(map[string]ColorID, len(g.colorIdx)+1)
		for k, v := range g.colorIdx {
			m[k] = v
		}
		g.colorIdx = m
		g.cow.colorIdx = true
	}
	id := ColorID(len(g.colors))
	g.colors = append(g.colors, color)
	g.colorIdx[color] = id
	if !g.cow.outBC {
		g.outByColor = append([][][]NodeID(nil), g.outByColor...)
		g.cow.outBC = true
	}
	if !g.cow.inBC {
		g.inByColor = append([][][]NodeID(nil), g.inByColor...)
		g.cow.inBC = true
	}
	g.outByColor = append(g.outByColor, nil)
	g.inByColor = append(g.inByColor, nil)
	g.cow.outCols = append(g.cow.outCols, true) // nil column: nothing shared
	g.cow.inCols = append(g.cow.inCols, true)
	g.epoch.Add(1)
	return id
}

func (g *Graph) cowAddEdge(from, to NodeID, c ColorID) {
	g.cowOut(from)
	g.out[from] = append(g.out[from], Edge{To: to, Color: c})
	g.cowIn(to)
	g.in[to] = append(g.in[to], Edge{To: from, Color: c})
	g.numEdges++
	g.cowOutBC(c, from)
	g.outByColor[c][from] = append(g.outByColor[c][from], to)
	g.cowInBC(c, to)
	g.inByColor[c][to] = append(g.inByColor[c][to], from)
	g.epoch.Add(1)
}

func (g *Graph) cowRemoveEdge(from, to NodeID, c ColorID, idx int) {
	g.cowOut(from)
	g.out[from] = append(g.out[from][:idx], g.out[from][idx+1:]...)
	g.cowIn(to)
	for i, e := range g.in[to] {
		if e.To == from && e.Color == c {
			g.in[to] = append(g.in[to][:i], g.in[to][i+1:]...)
			break
		}
	}
	g.numEdges--
	// outByColor[c][from] is out[from] filtered by c in order, so the
	// first (to,c) match in out[from] is the first `to` posting here.
	g.cowOutBC(c, from)
	col := g.outByColor[c][from]
	for i, w := range col {
		if w == to {
			g.outByColor[c][from] = append(col[:i], col[i+1:]...)
			break
		}
	}
	g.cowInBC(c, to)
	col = g.inByColor[c][to]
	for i, w := range col {
		if w == from {
			g.inByColor[c][to] = append(col[:i], col[i+1:]...)
			break
		}
	}
	g.epoch.Add(1)
}

// SetAttr sets (or overwrites) one attribute of an existing node. On a
// derived generation the node's attribute map is cloned first, so the
// base generation's tuple is untouched. Panics on an out-of-range ID (a
// programming error; the mutation log validates names before resolving
// them to IDs).
func (g *Graph) SetAttr(id NodeID, key, value string) {
	g.checkMutable()
	if int(id) >= len(g.nodes) || id < 0 {
		panic("graph: SetAttr out of range")
	}
	if g.cow != nil {
		g.cowAttrs(id)
	}
	g.nodes[id].Attrs[key] = value
	g.epoch.Add(1)
}
