package candidx

import (
	"sync"
	"sync/atomic"

	"regraph/internal/graph"
	"regraph/internal/predicate"
)

// memoMaxEntries bounds the predicate→candidates map. Batch workloads
// draw from a small predicate vocabulary, so the bound is generous; on
// overflow the whole map is dropped (no LRU bookkeeping on the hot
// read path) and repopulated by demand.
const memoMaxEntries = 4096

// Memo is an epoch-validated predicate→candidates cache over one graph:
// the first lookup of a predicate answers through the inverted Index,
// every repeat is a map hit, and any graph mutation (observed through
// graph.Epoch) atomically retires both the cache and the index before
// the next answer. internal/engine shares one Memo across its whole
// worker pool; Memo is safe for concurrent use.
//
// Returned slices are shared: callers must treat them as read-only.
//
// Mutating the graph concurrently with lookups is as undefined as any
// unsynchronized graph access; the epoch check guarantees freshness for
// the supported pattern — mutate (under exclusion), then query.
type Memo struct {
	g *graph.Graph

	mu    sync.RWMutex
	idx   *Index
	cache map[string]memoEntry

	hits, misses atomic.Uint64
}

// memoEntry is one cached answer plus the facts NextGen needs to decide
// whether a committed mutation batch could have changed it: the
// predicate's attribute names, and whether the predicate is the trivial
// always-true one (whose answer is every node, so it depends only on the
// node count).
type memoEntry struct {
	cands  []graph.NodeID
	attrs  []string
	isTrue bool
}

// NewMemo builds a memo over g, constructing the inverted index for the
// graph's current state eagerly (engine.New calls this once so the
// build cost is paid at startup, not mid-batch).
func NewMemo(g *graph.Graph) *Memo {
	m := &Memo{g: g}
	m.mu.Lock()
	m.refreshLocked()
	m.mu.Unlock()
	return m
}

// refreshLocked rebuilds the index snapshot and empties the cache; the
// caller holds mu.
func (m *Memo) refreshLocked() {
	m.idx = Build(m.g)
	m.cache = map[string]memoEntry{}
}

// Index returns the current index snapshot (rebuilding first if the
// graph moved on). Useful for direct lookups that should bypass the
// cache map.
func (m *Memo) Index() *Index {
	epoch := m.g.Epoch()
	m.mu.RLock()
	idx := m.idx
	m.mu.RUnlock()
	if idx.epoch == epoch {
		return idx
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.idx.epoch != epoch {
		m.refreshLocked()
	}
	return m.idx
}

// Candidates returns the IDs of nodes matching p on the graph's current
// epoch, ascending, bit-identical to reach.Candidates. The slice is
// shared with other callers of the same predicate — read-only.
func (m *Memo) Candidates(p predicate.Pred) []graph.NodeID {
	key := p.Key()
	for {
		epoch := m.g.Epoch()
		m.mu.RLock()
		idx := m.idx
		e, ok := m.cache[key]
		m.mu.RUnlock()
		if idx.epoch != epoch {
			// Stale snapshot: retire it and retry with a fresh build.
			m.mu.Lock()
			if m.idx.epoch != epoch {
				m.refreshLocked()
			}
			m.mu.Unlock()
			continue
		}
		if ok {
			m.hits.Add(1)
			return e.cands
		}
		m.misses.Add(1)
		c := idx.Candidates(p)
		if c == nil {
			c = []graph.NodeID{} // distinguish "cached empty" from a map miss
		}
		m.mu.Lock()
		// Only publish against the snapshot the answer came from.
		if m.idx == idx {
			if len(m.cache) >= memoMaxEntries {
				m.cache = map[string]memoEntry{}
			}
			m.cache[key] = memoEntry{cands: c, attrs: p.Attrs(), isTrue: p.IsTrue()}
		}
		m.mu.Unlock()
		return c
	}
}

// Stats reports cache-map hits and misses (a miss still answers through
// the index, never the linear scan).
func (m *Memo) Stats() (hits, misses uint64) {
	return m.hits.Load(), m.misses.Load()
}

// NextGen derives the memo for a committed successor generation: g is
// the new (already-mutated) graph and idx its index, typically from
// Index().WithChanges. Invalidation is scoped by attribute rather than
// engine-wide: a cached answer is retired only if the batch touched one
// of its predicate's attributes, or — for the always-true predicate,
// whose answer is every node — if the batch added nodes. A pure edge
// add/remove batch (touched empty, nodesAdded false) therefore carries
// the entire cache across, which is what makes standing read traffic
// survive write churn without re-answering its predicate vocabulary.
//
// Nodes added with initial attributes are covered by the same rule: the
// apply loop records each initial attribute as a change, so any
// predicate that could match the new node has a touched attribute. A
// new node without attributes matches only the always-true predicate.
//
// The receiver is left unchanged (it keeps answering for readers pinned
// to the old generation).
func (m *Memo) NextGen(g *graph.Graph, idx *Index, touched map[string]bool, nodesAdded bool) *Memo {
	nm := &Memo{g: g, idx: idx, cache: map[string]memoEntry{}}
	m.mu.RLock()
	defer m.mu.RUnlock()
	for k, e := range m.cache {
		if e.isTrue {
			if !nodesAdded {
				nm.cache[k] = e
			}
			continue
		}
		affected := false
		for _, a := range e.attrs {
			if touched[a] {
				affected = true
				break
			}
		}
		if !affected {
			nm.cache[k] = e
		}
	}
	return nm
}
