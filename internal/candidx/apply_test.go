package candidx_test

import (
	"fmt"
	"math/rand"
	"testing"

	"regraph/internal/candidx"
	"regraph/internal/graph"
	"regraph/internal/predicate"
	"regraph/internal/reach"
)

// mutateGen applies a random attribute batch to a fresh Derive of g,
// returning the new generation and the AttrChange records exactly as the
// engine's apply loop produces them (old value captured before the
// write, one change per initial attribute of an added node).
func mutateGen(r *rand.Rand, g *graph.Graph, genNo int) (*graph.Graph, []candidx.AttrChange) {
	ng := g.Derive()
	var chs []candidx.AttrChange
	nops := 1 + r.Intn(8)
	for i := 0; i < nops; i++ {
		switch r.Intn(3) {
		case 0: // set_attr
			v := graph.NodeID(r.Intn(ng.NumNodes()))
			a := attrPool[r.Intn(len(attrPool))]
			nv := valuePool[r.Intn(len(valuePool))]
			old, hasOld := ng.Attrs(v)[a]
			chs = append(chs, candidx.AttrChange{
				Node: v, Attr: a, Old: old, New: nv, HasOld: hasOld, HasNew: true,
			})
			ng.SetAttr(v, a, nv)
		case 1: // add_node with initial attributes
			attrs := map[string]string{}
			for _, a := range attrPool {
				if r.Intn(2) == 0 {
					attrs[a] = valuePool[r.Intn(len(valuePool))]
				}
			}
			id := ng.AddNode(fmt.Sprintf("gen%d-%d", genNo, i), attrs)
			for a, val := range attrs {
				chs = append(chs, candidx.AttrChange{
					Node: id, Attr: a, New: val, HasNew: true,
				})
			}
		case 2: // edges do not touch the attribute index
			from := graph.NodeID(r.Intn(ng.NumNodes()))
			to := graph.NodeID(r.Intn(ng.NumNodes()))
			ng.AddEdge(from, to, "e")
		}
	}
	return ng, chs
}

// TestWithChangesBitIdentical: chaining WithChanges across random
// mutation generations answers every predicate exactly like a
// from-scratch Build of the final graph (which in turn is pinned to the
// linear scan by checkPred).
func TestWithChangesBitIdentical(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		r := rand.New(rand.NewSource(500 + seed))
		g := mixedGraph(r, 20+r.Intn(60))
		g.AddEdge(0, 1, "e") // intern the edge color pre-Derive
		ix := candidx.Build(g)
		for gen := 0; gen < 8; gen++ {
			ng, chs := mutateGen(r, g, gen)
			ix = ix.WithChanges(ng, chs)
			if ix.Epoch() != ng.Epoch() {
				t.Fatalf("seed %d gen %d: index epoch %d != graph epoch %d", seed, gen, ix.Epoch(), ng.Epoch())
			}
			fresh := candidx.Build(ng)
			for q := 0; q < 120; q++ {
				p := randPred(r, attrPool, valuePool)
				inc := ix.Candidates(p)
				scratch := fresh.Candidates(p)
				if !sameIDs(inc, scratch) {
					t.Fatalf("seed %d gen %d pred %q: incremental %v != rebuild %v", seed, gen, p, inc, scratch)
				}
				checkPred(t, ng, ix, p)
			}
			g.Seal()
			g = ng
		}
	}
}

// TestWithChangesSharesUntouchedColumns: a batch touching only attribute
// "x" must answer "y" predicates from the shared old column — verified
// indirectly by a no-change derivation being cheap and correct, and the
// old index staying valid for the old graph.
func TestWithChangesOldIndexUnchanged(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	g := mixedGraph(r, 50)
	ix := candidx.Build(g)

	// Record old answers for a spread of predicates.
	preds := make([]predicate.Pred, 0, 50)
	olds := make([][]graph.NodeID, 0, 50)
	for q := 0; q < 50; q++ {
		p := randPred(r, attrPool, valuePool)
		preds = append(preds, p)
		olds = append(olds, ix.Candidates(p))
	}

	ng := g.Derive()
	var chs []candidx.AttrChange
	for i := 0; i < 20; i++ {
		v := graph.NodeID(r.Intn(ng.NumNodes()))
		a := attrPool[r.Intn(len(attrPool))]
		nv := valuePool[r.Intn(len(valuePool))]
		old, hasOld := ng.Attrs(v)[a]
		chs = append(chs, candidx.AttrChange{Node: v, Attr: a, Old: old, New: nv, HasOld: hasOld, HasNew: true})
		ng.SetAttr(v, a, nv)
	}
	_ = ix.WithChanges(ng, chs)

	// Deriving the successor index must not have disturbed the old one.
	for i, p := range preds {
		if got := ix.Candidates(p); !sameIDs(got, olds[i]) {
			t.Fatalf("pred %q: old index changed after WithChanges: %v != %v", p, got, olds[i])
		}
		checkPred(t, g, ix, p)
	}
}

// TestMemoNextGenSelective pins the attribute-scoped invalidation
// contract: a pure edge batch carries every cached answer across; an
// attribute batch retires exactly the entries naming a touched
// attribute; adding a node retires only the always-true entry (plus
// entries on the new node's attributes, which arrive as touched).
func TestMemoNextGenSelective(t *testing.T) {
	g := graph.New()
	for i := 0; i < 40; i++ {
		g.AddNode(fmt.Sprintf("n%d", i), map[string]string{
			"x": fmt.Sprint(i % 7),
			"y": fmt.Sprint(i % 3),
		})
	}
	g.AddEdge(0, 1, "e")

	pX := predicate.MustParse("x = 3")
	pY := predicate.MustParse("y >= 1")
	pT := predicate.New() // always-true

	check := func(m *candidx.Memo, gg *graph.Graph, p predicate.Pred) {
		t.Helper()
		if got, want := m.Candidates(p), reach.Candidates(gg, p); !sameIDs(got, want) {
			t.Fatalf("pred %q: memo %v != scan %v", p, got, want)
		}
	}

	m := candidx.NewMemo(g)
	check(m, g, pX)
	check(m, g, pY)
	check(m, g, pT)
	if _, misses := m.Stats(); misses != 3 {
		t.Fatalf("warmup misses = %d, want 3", misses)
	}

	// Generation 1: pure edge batch. Everything must survive.
	g1 := g.Derive()
	g1.AddEdge(2, 3, "e")
	g1.RemoveEdge(0, 1, "e")
	idx1 := m.Index().WithChanges(g1, nil)
	m1 := m.NextGen(g1, idx1, nil, false)
	check(m1, g1, pX)
	check(m1, g1, pY)
	check(m1, g1, pT)
	if hits, misses := m1.Stats(); hits != 3 || misses != 0 {
		t.Fatalf("after pure-edge batch: hits=%d misses=%d, want 3/0 (cache must carry across)", hits, misses)
	}

	// Generation 2: touch attribute x on one node. Only pX retired.
	g2 := g1.Derive()
	old := g2.Attrs(5)["x"]
	g2.SetAttr(5, "x", "3")
	chs := []candidx.AttrChange{{Node: 5, Attr: "x", Old: old, New: "3", HasOld: true, HasNew: true}}
	idx2 := idx1.WithChanges(g2, chs)
	m2 := m1.NextGen(g2, idx2, map[string]bool{"x": true}, false)
	check(m2, g2, pX)
	check(m2, g2, pY)
	check(m2, g2, pT)
	if hits, misses := m2.Stats(); hits != 2 || misses != 1 {
		t.Fatalf("after x-touching batch: hits=%d misses=%d, want 2/1 (only the x entry retired)", hits, misses)
	}

	// Generation 3: add a node carrying y. pT (node count) and pY (touched
	// attribute) retired; pX survives.
	g3 := g2.Derive()
	id := g3.AddNode("fresh", map[string]string{"y": "2"})
	chs3 := []candidx.AttrChange{{Node: id, Attr: "y", New: "2", HasNew: true}}
	idx3 := idx2.WithChanges(g3, chs3)
	m3 := m2.NextGen(g3, idx3, map[string]bool{"y": true}, true)
	check(m3, g3, pX)
	check(m3, g3, pY)
	check(m3, g3, pT)
	if hits, misses := m3.Stats(); hits != 1 || misses != 2 {
		t.Fatalf("after node-adding batch: hits=%d misses=%d, want 1/2", hits, misses)
	}
}
