package candidx

import (
	"math"
	"sort"

	"regraph/internal/graph"
	"regraph/internal/predicate"
)

// AttrChange is one committed attribute-tuple mutation, as recorded by
// the engine's apply loop: node's attribute Attr went from Old (if
// HasOld) to New (if HasNew). A set_attr on a fresh key has HasOld
// false; an add_node contributes one change per initial attribute. The
// pair (Attr, Node) identifies at most one posting per column domain, so
// a change is at most one delete plus one insert per domain.
type AttrChange struct {
	Node   graph.NodeID
	Attr   string
	Old    string
	New    string
	HasOld bool
	HasNew bool
}

// WithChanges derives the index for a successor snapshot of the graph:
// g is the already-mutated successor generation and chs the attribute
// changes the batch committed. Columns of untouched attributes are
// shared with the receiver by pointer; touched columns are cloned once
// and patched posting-by-posting (sorted insert/delete in whichever
// value domains the old and new values occupy). The result carries g's
// epoch and node count, so epoch-validated users (Memo) accept it
// without a rebuild.
//
// Because Build sorts every domain by (value, node) with no other
// tiebreak, a sorted insert/delete lands each posting exactly where a
// from-scratch Build would: WithChanges is bit-identical to Build(g),
// which the property tests pin.
func (ix *Index) WithChanges(g *graph.Graph, chs []AttrChange) *Index {
	n := g.NumNodes()
	nx := &Index{
		n:     n,
		epoch: g.Epoch(),
		words: (n + 63) / 64,
		cols:  make(map[string]*column, len(ix.cols)+1),
	}
	nx.bitsPool.New = func() any {
		s := make([]uint64, nx.words)
		return &s
	}
	for a, c := range ix.cols {
		nx.cols[a] = c
	}
	touched := map[string]*column{}
	colFor := func(a string) *column {
		if c, ok := touched[a]; ok {
			return c
		}
		c := &column{}
		if old := ix.cols[a]; old != nil {
			c.num = append([]numEntry(nil), old.num...)
			c.nan = append([]int32(nil), old.nan...)
			c.lexNon = append([]lexEntry(nil), old.lexNon...)
			c.lexAll = append([]lexEntry(nil), old.lexAll...)
		}
		touched[a] = c
		nx.cols[a] = c
		return c
	}
	for _, ch := range chs {
		c := colFor(ch.Attr)
		v := int32(ch.Node)
		if ch.HasOld {
			c.removePosting(ch.Old, v)
		}
		if ch.HasNew {
			c.insertPosting(ch.New, v)
		}
	}
	return nx
}

// insertPosting adds (val, node) to every domain Build would have placed
// it in, at its (value, node)-sorted position.
func (c *column) insertPosting(val string, node int32) {
	c.lexAll = lexInsert(c.lexAll, lexEntry{val, node})
	if f, ok := predicate.Numeric(val); ok {
		if math.IsNaN(f) {
			c.nan = nodeInsert(c.nan, node)
		} else {
			c.num = numInsert(c.num, numEntry{f, node})
		}
		return
	}
	c.lexNon = lexInsert(c.lexNon, lexEntry{val, node})
}

// removePosting deletes (val, node) from every domain holding it. A
// posting that is not found is ignored — the engine only records changes
// it actually applied, so a miss means the change record and the index
// disagree about history, and dropping the delete is the conservative
// move (the paired insert still lands).
func (c *column) removePosting(val string, node int32) {
	c.lexAll = lexDelete(c.lexAll, lexEntry{val, node})
	if f, ok := predicate.Numeric(val); ok {
		if math.IsNaN(f) {
			c.nan = nodeDelete(c.nan, node)
		} else {
			c.num = numDelete(c.num, numEntry{f, node})
		}
		return
	}
	c.lexNon = lexDelete(c.lexNon, lexEntry{val, node})
}

func lexInsert(es []lexEntry, e lexEntry) []lexEntry {
	i := sort.Search(len(es), func(i int) bool {
		if es[i].val != e.val {
			return es[i].val > e.val
		}
		return es[i].node >= e.node
	})
	es = append(es, lexEntry{})
	copy(es[i+1:], es[i:])
	es[i] = e
	return es
}

func lexDelete(es []lexEntry, e lexEntry) []lexEntry {
	i := sort.Search(len(es), func(i int) bool {
		if es[i].val != e.val {
			return es[i].val > e.val
		}
		return es[i].node >= e.node
	})
	if i < len(es) && es[i] == e {
		es = append(es[:i], es[i+1:]...)
	}
	return es
}

func numInsert(es []numEntry, e numEntry) []numEntry {
	i := sort.Search(len(es), func(i int) bool {
		if es[i].val != e.val {
			return es[i].val > e.val
		}
		return es[i].node >= e.node
	})
	es = append(es, numEntry{})
	copy(es[i+1:], es[i:])
	es[i] = e
	return es
}

func numDelete(es []numEntry, e numEntry) []numEntry {
	i := sort.Search(len(es), func(i int) bool {
		if es[i].val != e.val {
			return es[i].val > e.val
		}
		return es[i].node >= e.node
	})
	if i < len(es) && es[i] == e {
		es = append(es[:i], es[i+1:]...)
	}
	return es
}

func nodeInsert(ns []int32, v int32) []int32 {
	i := sort.Search(len(ns), func(i int) bool { return ns[i] >= v })
	ns = append(ns, 0)
	copy(ns[i+1:], ns[i:])
	ns[i] = v
	return ns
}

func nodeDelete(ns []int32, v int32) []int32 {
	i := sort.Search(len(ns), func(i int) bool { return ns[i] >= v })
	if i < len(ns) && ns[i] == v {
		ns = append(ns[:i], ns[i+1:]...)
	}
	return ns
}
