package candidx_test

import (
	"testing"

	"regraph/internal/candidx"
	"regraph/internal/gen"
	"regraph/internal/graph"
	"regraph/internal/predicate"
	"regraph/internal/reach"
)

// benchPreds is a mix of selective and broad predicates over the
// YouTube schema — the workload shape of the paper's Exp-1/Exp-3
// queries (equality on uploader/category, range on counters).
var benchPreds = []predicate.Pred{
	predicate.MustParse("uid = Davedays"),
	predicate.MustParse(`cat = "Film & Animation", com <= 20`),
	predicate.MustParse("cat = Music, len > 10"),
	predicate.MustParse("view >= 350000"),
	predicate.MustParse("age < 30, com > 1000"),
}

// BenchmarkCandidatesIndexVsScan compares one candidate lookup through
// the linear node scan (reach.Candidates), the inverted index, and the
// engine-style memo (repeat lookups are map hits) on the paper-scale
// YouTube graph. The ISSUE 3 acceptance bar is Index ≥10× Scan on the
// selective predicates.
func BenchmarkCandidatesIndexVsScan(b *testing.B) {
	g := gen.YouTube(1, 1.0)
	ix := candidx.Build(g)
	memo := candidx.NewMemo(g)
	var buf []graph.NodeID

	b.Run("Scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			buf = reach.CandidatesAppend(buf[:0], g, benchPreds[i%len(benchPreds)])
		}
	})
	b.Run("Index", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			buf = ix.CandidatesAppend(buf[:0], benchPreds[i%len(benchPreds)])
		}
	})
	b.Run("Memo", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			buf = append(buf[:0], memo.Candidates(benchPreds[i%len(benchPreds)])...)
		}
	})
}

// BenchmarkIndexBuild prices the one-off construction the index trades
// the scans against (the "when scan still wins" break-even in
// DESIGN.md).
func BenchmarkIndexBuild(b *testing.B) {
	g := gen.YouTube(1, 1.0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix := candidx.Build(g)
		if ix.NumAttrs() == 0 {
			b.Fatal("empty index")
		}
	}
}
