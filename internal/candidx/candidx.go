// Package candidx answers predicate candidate queries — "which nodes
// match f_u?" — in O(log|V| + k) instead of the O(|V|·clauses) linear
// scan every RQ/PQ evaluation otherwise pays (reach.Candidates).
//
// It is the classic index-vs-scan tradeoff that GRAIL-style labelings
// apply to reachability, applied here to the *predicate* half of the
// paper's queries: build once per graph, answer each clause by binary
// search, answer a conjunction by intersecting per-clause bitsets.
//
// # Layout
//
// One column per attribute name. Because predicate.Compare orders two
// values numerically only when *both* parse as numbers (predicate.Numeric)
// and lexicographically otherwise, each column keeps its postings split
// into the two value domains:
//
//   - num: numeric-parsing values, sorted by float value (NaN-valued
//     postings are held aside in nan — Compare reports NaN equal to
//     every number, so they join every =, <= and >= answer).
//   - lexNon: the non-numeric values, sorted bytewise. Consulted when
//     the clause constant is numeric (a non-numeric node value then
//     compares lexicographically against the constant's spelling).
//   - lexAll: every value, numeric or not, sorted bytewise. Consulted
//     when the clause constant is non-numeric (then *all* node values
//     compare lexicographically).
//
// A clause "A op a" becomes at most three contiguous posting ranges; a
// conjunction intersects the per-clause bitsets and emits node IDs in
// ascending order, so answers are bit-identical to the scan's.
//
// # Invalidation
//
// An Index is a snapshot: it records graph.Epoch() at build time and
// never observes later mutations. Memo (memo.go) layers an
// epoch-validated predicate→candidates cache on top and rebuilds both
// on epoch change; that is what internal/engine shares across its
// worker pool.
package candidx

import (
	"math"
	"math/bits"
	"sort"
	"sync"

	"regraph/internal/graph"
	"regraph/internal/predicate"
)

// numEntry is one posting of the numeric value domain.
type numEntry struct {
	val  float64
	node int32
}

// lexEntry is one posting of a lexicographic value domain.
type lexEntry struct {
	val  string
	node int32
}

// column is the inverted index of one attribute name; see the package
// comment for the domain split.
type column struct {
	num    []numEntry
	nan    []int32
	lexNon []lexEntry
	lexAll []lexEntry
}

// Index answers candidate queries over one immutable snapshot of a
// graph's node attributes. Build it with Build; it is safe for
// concurrent use (all methods are pure reads plus an internal pool).
type Index struct {
	n     int
	epoch uint64
	words int // bitset words, (n+63)/64
	cols  map[string]*column

	// bitsPool recycles the two per-call intersection bitsets so a
	// steady-state lookup allocates only its answer slice.
	bitsPool sync.Pool
}

// Build constructs the inverted index for the graph's current state.
// Cost is O(sum of attribute counts · log) for the sorts; mutating the
// graph afterwards does not corrupt the index, it just makes it a stale
// snapshot (compare Epoch against graph.Epoch, or use Memo).
func Build(g *graph.Graph) *Index {
	n := g.NumNodes()
	ix := &Index{
		n:     n,
		epoch: g.Epoch(),
		words: (n + 63) / 64,
		cols:  map[string]*column{},
	}
	ix.bitsPool.New = func() any {
		s := make([]uint64, ix.words)
		return &s
	}
	for v := 0; v < n; v++ {
		for a, val := range g.Attrs(graph.NodeID(v)) {
			c := ix.cols[a]
			if c == nil {
				c = &column{}
				ix.cols[a] = c
			}
			c.lexAll = append(c.lexAll, lexEntry{val, int32(v)})
			if f, ok := predicate.Numeric(val); ok {
				if math.IsNaN(f) {
					c.nan = append(c.nan, int32(v))
				} else {
					c.num = append(c.num, numEntry{f, int32(v)})
				}
			} else {
				c.lexNon = append(c.lexNon, lexEntry{val, int32(v)})
			}
		}
	}
	for _, c := range ix.cols {
		sort.Slice(c.num, func(i, j int) bool {
			if c.num[i].val != c.num[j].val {
				return c.num[i].val < c.num[j].val
			}
			return c.num[i].node < c.num[j].node
		})
		sortLex(c.lexNon)
		sortLex(c.lexAll)
	}
	return ix
}

func sortLex(es []lexEntry) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].val != es[j].val {
			return es[i].val < es[j].val
		}
		return es[i].node < es[j].node
	})
}

// Epoch returns the graph epoch the index snapshots.
func (ix *Index) Epoch() uint64 { return ix.epoch }

// NumAttrs returns the number of distinct attribute names indexed.
func (ix *Index) NumAttrs() int { return len(ix.cols) }

// Candidates returns the IDs of nodes matching the predicate, in
// ascending ID order — exactly reach.Candidates' answer, computed
// against the indexed snapshot. The slice is freshly allocated.
func (ix *Index) Candidates(p predicate.Pred) []graph.NodeID {
	return ix.CandidatesAppend(nil, p)
}

// CandidatesAppend appends the matching node IDs to dst (ascending) and
// returns the extended slice, mirroring reach.CandidatesAppend.
func (ix *Index) CandidatesAppend(dst []graph.NodeID, p predicate.Pred) []graph.NodeID {
	if p.IsTrue() {
		for v := 0; v < ix.n; v++ {
			dst = append(dst, graph.NodeID(v))
		}
		return dst
	}
	resp := ix.bitsPool.Get().(*[]uint64)
	res := *resp
	defer ix.bitsPool.Put(resp)
	clauses := p.Clauses()
	clear(res)
	ix.clauseBits(clauses[0], res)
	if len(clauses) > 1 {
		curp := ix.bitsPool.Get().(*[]uint64)
		cur := *curp
		defer ix.bitsPool.Put(curp)
		for _, c := range clauses[1:] {
			clear(cur)
			ix.clauseBits(c, cur)
			any := uint64(0)
			for w := range res {
				res[w] &= cur[w]
				any |= res[w]
			}
			if any == 0 {
				return dst
			}
		}
	}
	for w, word := range res {
		base := w * 64
		for word != 0 {
			b := bits.TrailingZeros64(word)
			dst = append(dst, graph.NodeID(base+b))
			word &^= 1 << b
		}
	}
	return dst
}

// clauseBits sets the bit of every node satisfying "c.Attr c.Op c.Value".
func (ix *Index) clauseBits(c predicate.Clause, bs []uint64) {
	col := ix.cols[c.Attr]
	if col == nil {
		return // no node carries the attribute
	}
	if f, ok := predicate.Numeric(c.Value); ok {
		// Numeric constant: numeric-valued nodes compare as numbers,
		// non-numeric-valued nodes compare bytewise against its spelling.
		col.numRange(f, c.Op, bs)
		lexRange(col.lexNon, c.Value, c.Op, bs)
		return
	}
	// Non-numeric constant: every value compares bytewise.
	lexRange(col.lexAll, c.Value, c.Op, bs)
}

// numRange marks the numeric postings satisfying "val op f", following
// predicate.Compare's NaN rule: NaN compares equal to every number (the
// three-way comparison reports neither < nor >), so NaN postings join
// the =, <= and >= answers and never the <, > and != answers — and a
// NaN constant makes every numeric posting compare equal.
func (c *column) numRange(f float64, op predicate.Op, bs []uint64) {
	if math.IsNaN(f) {
		switch op {
		case predicate.Eq, predicate.Le, predicate.Ge:
			setNum(bs, c.num)
			setNodes(bs, c.nan)
		}
		return
	}
	lo := sort.Search(len(c.num), func(i int) bool { return c.num[i].val >= f })
	hi := sort.Search(len(c.num), func(i int) bool { return c.num[i].val > f })
	switch op {
	case predicate.Lt:
		setNum(bs, c.num[:lo])
	case predicate.Le:
		setNum(bs, c.num[:hi])
		setNodes(bs, c.nan)
	case predicate.Eq:
		setNum(bs, c.num[lo:hi])
		setNodes(bs, c.nan)
	case predicate.Ne:
		setNum(bs, c.num[:lo])
		setNum(bs, c.num[hi:])
	case predicate.Gt:
		setNum(bs, c.num[hi:])
	case predicate.Ge:
		setNum(bs, c.num[lo:])
		setNodes(bs, c.nan)
	}
}

// lexRange marks the postings of a lexicographic column satisfying
// "val op a" under bytewise string order.
func lexRange(es []lexEntry, a string, op predicate.Op, bs []uint64) {
	lo := sort.Search(len(es), func(i int) bool { return es[i].val >= a })
	hi := sort.Search(len(es), func(i int) bool { return es[i].val > a })
	switch op {
	case predicate.Lt:
		setLex(bs, es[:lo])
	case predicate.Le:
		setLex(bs, es[:hi])
	case predicate.Eq:
		setLex(bs, es[lo:hi])
	case predicate.Ne:
		setLex(bs, es[:lo])
		setLex(bs, es[hi:])
	case predicate.Gt:
		setLex(bs, es[hi:])
	case predicate.Ge:
		setLex(bs, es[lo:])
	}
}

func setNum(bs []uint64, es []numEntry) {
	for _, e := range es {
		bs[e.node>>6] |= 1 << (e.node & 63)
	}
}

func setLex(bs []uint64, es []lexEntry) {
	for _, e := range es {
		bs[e.node>>6] |= 1 << (e.node & 63)
	}
}

func setNodes(bs []uint64, ns []int32) {
	for _, v := range ns {
		bs[v>>6] |= 1 << (v & 63)
	}
}
