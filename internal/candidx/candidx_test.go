package candidx_test

import (
	"fmt"
	"math/rand"
	"testing"

	"regraph/internal/candidx"
	"regraph/internal/gen"
	"regraph/internal/graph"
	"regraph/internal/predicate"
	"regraph/internal/reach"
)

// valuePool exercises every corner of predicate.Compare's two-domain
// ordering: plain numerics, equal-but-differently-spelled numerics
// ("1"/"1.0", "0"/"00"/"-0"), NaN and infinities (Compare reports NaN
// equal to every number), hex/underscore shapes that pass the
// looksNumeric pre-check but may fail ParseFloat, plain words, and
// values needing quoting (spaces, commas, embedded quotes).
var valuePool = []string{
	"0", "00", "-0", "1", "1.0", "5", "-3.5", "9", "10", "007", "1e2", "100",
	"nan", "NaN", "inf", "-inf", "Infinity",
	"0x10", "1_0", "+5", "face1", "abc", "zzz", "",
	"Film & Animation", "a, b", `he said "hi"`, "user007",
}

var attrPool = []string{"x", "y", "z", "w"}

// mixedGraph builds a graph whose nodes carry random subsets of
// attrPool with values drawn from valuePool.
func mixedGraph(r *rand.Rand, n int) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		attrs := map[string]string{}
		for _, a := range attrPool {
			if r.Intn(4) > 0 { // 3/4 of nodes carry each attribute
				attrs[a] = valuePool[r.Intn(len(valuePool))]
			}
		}
		g.AddNode(fmt.Sprintf("n%d", i), attrs)
	}
	return g
}

// randPred draws a random conjunction (possibly always-true) over the
// given attribute names and value pool.
func randPred(r *rand.Rand, attrs, vals []string) predicate.Pred {
	k := r.Intn(4) // 0 clauses = the always-true predicate
	cs := make([]predicate.Clause, k)
	for i := range cs {
		cs[i] = predicate.Clause{
			Attr:  attrs[r.Intn(len(attrs))],
			Op:    predicate.Op(r.Intn(6)),
			Value: vals[r.Intn(len(vals))],
		}
	}
	return predicate.New(cs...)
}

func sameIDs(a, b []graph.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkPred asserts index answer == scan answer, exactly (content and
// order).
func checkPred(t *testing.T, g *graph.Graph, ix *candidx.Index, p predicate.Pred) {
	t.Helper()
	want := reach.Candidates(g, p)
	got := ix.Candidates(p)
	if !sameIDs(got, want) {
		t.Fatalf("pred %q: index %v != scan %v", p, got, want)
	}
}

// TestIndexMatchesScanMixedValues is the property test on adversarial
// attribute values: for random graphs mixing numeric and lexicographic
// value domains and random predicates (all six operators, quoted
// values, the always-true predicate), the inverted index must return
// exactly the linear scan's candidate slice.
func TestIndexMatchesScanMixedValues(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		r := rand.New(rand.NewSource(seed))
		g := mixedGraph(r, 30+r.Intn(120))
		ix := candidx.Build(g)
		for q := 0; q < 300; q++ {
			p := randPred(r, attrPool, valuePool)
			checkPred(t, g, ix, p)
			// Round-trip through the concrete syntax (quoted values,
			// comma-separated clauses) when the predicate can render:
			// empty values have no unambiguous spelling.
			renderable := true
			for _, c := range p.Clauses() {
				if c.Value == "" {
					renderable = false
				}
			}
			if renderable {
				p2, err := predicate.Parse(p.String())
				if err != nil {
					t.Fatalf("re-parse %q: %v", p.String(), err)
				}
				checkPred(t, g, ix, p2)
			}
		}
	}
}

// TestIndexMatchesScanSynthetic runs the same property on the
// generator's synthetic graphs (integer-valued attributes, the bench
// workload's shape), including predicates on absent attributes and
// non-numeric constants against numeric values.
func TestIndexMatchesScanSynthetic(t *testing.T) {
	vals := []string{"0", "3", "5", "5.0", "9", "10", "abc", "-1", "nan"}
	attrs := []string{"a0", "a1", "a2", "missing"}
	for seed := int64(0); seed < 10; seed++ {
		r := rand.New(rand.NewSource(100 + seed))
		g := gen.Synthetic(seed, 150, 600, 3, gen.DefaultColors)
		ix := candidx.Build(g)
		for q := 0; q < 200; q++ {
			checkPred(t, g, ix, randPred(r, attrs, vals))
		}
	}
}

// TestCandidatesAppendReuse: the Append form must honor a reused
// prefix, as reach.CandidatesAppend does.
func TestCandidatesAppendReuse(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	g := mixedGraph(r, 60)
	ix := candidx.Build(g)
	buf := make([]graph.NodeID, 0, 64)
	for q := 0; q < 50; q++ {
		p := randPred(r, attrPool, valuePool)
		buf = buf[:0]
		buf = ix.CandidatesAppend(buf, p)
		if !sameIDs(buf, reach.Candidates(g, p)) {
			t.Fatalf("pred %q: append-form mismatch", p)
		}
	}
}

// TestMemoEpochInvalidation: after any graph mutation the memo must
// re-answer from the post-mutation graph, never the cached snapshot.
func TestMemoEpochInvalidation(t *testing.T) {
	g := graph.New()
	g.AddNode("a", map[string]string{"job": "doctor", "age": "30"})
	g.AddNode("b", map[string]string{"job": "nurse", "age": "40"})
	m := candidx.NewMemo(g)
	p := predicate.MustParse("job = doctor")

	if got := m.Candidates(p); !sameIDs(got, []graph.NodeID{0}) {
		t.Fatalf("initial: got %v", got)
	}
	// AddNode bumps the epoch and changes the answer.
	g.AddNode("c", map[string]string{"job": "doctor"})
	if got := m.Candidates(p); !sameIDs(got, []graph.NodeID{0, 2}) {
		t.Fatalf("after AddNode: got %v, want [0 2]", got)
	}
	// Edge mutations bump the epoch too (candidates unchanged but the
	// memo must revalidate, not panic or serve garbage).
	g.AddEdge(0, 1, "fn")
	if got := m.Candidates(p); !sameIDs(got, []graph.NodeID{0, 2}) {
		t.Fatalf("after AddEdge: got %v", got)
	}
	g.RemoveEdge(0, 1, "fn")
	if got := m.Candidates(p); !sameIDs(got, []graph.NodeID{0, 2}) {
		t.Fatalf("after RemoveEdge: got %v", got)
	}
	// With no mutation in between, the second identical lookup is a
	// map hit.
	h0, _ := m.Stats()
	m.Candidates(p)
	if h1, _ := m.Stats(); h1 != h0+1 {
		t.Fatalf("repeat lookup: hits %d -> %d, want +1", h0, h1)
	}
}

// TestMemoCanonicalKey: clause order must not defeat memoization, and
// must not change answers.
func TestMemoCanonicalKey(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	g := mixedGraph(r, 80)
	m := candidx.NewMemo(g)
	c1 := predicate.Clause{Attr: "x", Op: predicate.Ge, Value: "3"}
	c2 := predicate.Clause{Attr: "y", Op: predicate.Ne, Value: "abc"}
	p12, p21 := predicate.New(c1, c2), predicate.New(c2, c1)
	if p12.Key() != p21.Key() {
		t.Fatalf("keys differ: %q vs %q", p12.Key(), p21.Key())
	}
	a := m.Candidates(p12)
	h0, m0 := m.Stats()
	b := m.Candidates(p21)
	h1, m1 := m.Stats()
	if !sameIDs(a, b) {
		t.Fatalf("reordered conjunction changed the answer: %v vs %v", a, b)
	}
	if h1 != h0+1 || m1 != m0 {
		t.Fatalf("reordered conjunction missed the memo: hits %d->%d misses %d->%d", h0, h1, m0, m1)
	}
}

// TestMemoKeyUnambiguous: predicate cache keys must be a prefix code —
// attribute values may contain any byte (quoted syntax admits control
// characters), so two distinct predicates must never share a key and
// silently serve each other's candidate sets.
func TestMemoKeyUnambiguous(t *testing.T) {
	// Crafted so a separator-based encoding ("a\x00=\x00x\x01a\x00=\x00y")
	// would collide: one satisfiable single-clause predicate vs an
	// unsatisfiable two-clause conjunction.
	tricky := predicate.New(predicate.Clause{
		Attr: "a", Op: predicate.Eq, Value: "x\x01a\x00=\x00y",
	})
	pair := predicate.New(
		predicate.Clause{Attr: "a", Op: predicate.Eq, Value: "x"},
		predicate.Clause{Attr: "a", Op: predicate.Eq, Value: "y"},
	)
	if tricky.Key() == pair.Key() {
		t.Fatalf("distinct predicates share key %q", tricky.Key())
	}
	// Operator spellings must not absorb a neighboring value either.
	ltEq := predicate.New(predicate.Clause{Attr: "a", Op: predicate.Lt, Value: "=5"})
	leFive := predicate.New(predicate.Clause{Attr: "a", Op: predicate.Le, Value: "5"})
	if ltEq.Key() == leFive.Key() {
		t.Fatalf("a < \"=5\" and a <= 5 share key %q", ltEq.Key())
	}

	g := graph.New()
	g.AddNode("n0", map[string]string{"a": "x\x01a\x00=\x00y"})
	g.AddNode("n1", map[string]string{"a": "x"})
	m := candidx.NewMemo(g)
	for _, p := range []predicate.Pred{tricky, pair, ltEq, leFive} {
		got := m.Candidates(p)
		if want := reach.Candidates(g, p); !sameIDs(got, want) {
			t.Fatalf("pred %q: memo %v != scan %v", p, got, want)
		}
	}
}
