package reachidx_test

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"regraph/internal/dist"
	"regraph/internal/gen"
	"regraph/internal/graph"
	"regraph/internal/reachidx"
)

func randomGraph(r *rand.Rand, n, e int) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddNode(fmt.Sprintf("n%d", i), nil)
	}
	colors := []string{"a", "b"}
	for i := 0; i < e; i++ {
		g.AddEdge(graph.NodeID(r.Intn(n)), graph.NodeID(r.Intn(n)), colors[r.Intn(2)])
	}
	return g
}

// TestFilterIsSound is the essential property: whenever the index says
// "unreachable", the distance matrix must agree — for every pair, color,
// and the wildcard, including the non-empty self-path case.
func TestFilterIsSound(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, 2+r.Intn(14), 1+r.Intn(35))
		ix := reachidx.Build(g, 2)
		mx := dist.NewMatrix(g)
		colorIDs := []graph.ColorID{graph.AnyColor}
		for _, c := range g.Colors() {
			id, _ := g.ColorID(c)
			colorIDs = append(colorIDs, id)
		}
		n := g.NumNodes()
		for _, c := range colorIDs {
			for v1 := 0; v1 < n; v1++ {
				for v2 := 0; v2 < n; v2++ {
					maybe := ix.MaybeReaches(c, graph.NodeID(v1), graph.NodeID(v2))
					real := mx.Dist(c, graph.NodeID(v1), graph.NodeID(v2)) >= 0
					if real && !maybe {
						t.Logf("seed %d: filter denied a real path %d->%d color %d", seed, v1, v2, c)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestFilterSelfPathsAreExact: for v -> v the index answers exactly (a
// non-empty cycle exists iff the node's component is cyclic).
func TestFilterSelfPathsAreExact(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, 2+r.Intn(10), 1+r.Intn(25))
		ix := reachidx.Build(g, 2)
		mx := dist.NewMatrix(g)
		a, _ := g.ColorID("a")
		for v := 0; v < g.NumNodes(); v++ {
			maybe := ix.MaybeReaches(a, graph.NodeID(v), graph.NodeID(v))
			real := mx.Dist(a, graph.NodeID(v), graph.NodeID(v)) >= 0
			if maybe != real {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestFilterPrunes: on a graph made of two disconnected halves the filter
// must refute every cross pair.
func TestFilterPrunes(t *testing.T) {
	g := graph.New()
	var left, right []graph.NodeID
	for i := 0; i < 5; i++ {
		left = append(left, g.AddNode(fmt.Sprintf("l%d", i), nil))
		right = append(right, g.AddNode(fmt.Sprintf("r%d", i), nil))
	}
	for i := 0; i+1 < 5; i++ {
		g.AddEdge(left[i], left[i+1], "a")
		g.AddEdge(right[i], right[i+1], "a")
	}
	ix := reachidx.Build(g, 2)
	a, _ := g.ColorID("a")
	for _, l := range left {
		for _, r := range right {
			if ix.MaybeReaches(a, l, r) {
				t.Errorf("filter failed to refute cross pair %d->%d", l, r)
			}
		}
	}
	// Forward chain pairs must stay "maybe".
	if !ix.MaybeReaches(a, left[0], left[4]) {
		t.Error("filter refuted a real path")
	}
	if ix.Bytes() <= 0 {
		t.Error("Bytes should be positive")
	}
}

// TestCacheWithFilter: a filtered cache returns the same distances and
// skips searches for refuted pairs.
func TestCacheWithFilter(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	g := randomGraph(r, 14, 20)
	ix := reachidx.Build(g, 2)
	mx := dist.NewMatrix(g)
	ca := dist.NewCache(g, 1024)
	ca.SetFilter(ix)
	a, _ := g.ColorID("a")
	for v1 := 0; v1 < g.NumNodes(); v1++ {
		for v2 := 0; v2 < g.NumNodes(); v2++ {
			if got, want := ca.Dist(a, graph.NodeID(v1), graph.NodeID(v2)), mx.Dist(a, graph.NodeID(v1), graph.NodeID(v2)); got != want {
				t.Fatalf("filtered cache Dist(%d,%d) = %d, want %d", v1, v2, got, want)
			}
		}
	}
	if ca.Filtered() == 0 {
		t.Error("a sparse random graph should have filtered some pairs")
	}
}

func TestBuildOnRealDatasets(t *testing.T) {
	g := gen.Terror(1)
	ix := reachidx.Build(g, 3)
	mx := dist.NewMatrix(g)
	ic, _ := g.ColorID("ic")
	// Spot check soundness on a sample.
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 3000; i++ {
		v1 := graph.NodeID(r.Intn(g.NumNodes()))
		v2 := graph.NodeID(r.Intn(g.NumNodes()))
		if mx.Dist(ic, v1, v2) >= 0 && !ix.MaybeReaches(ic, v1, v2) {
			t.Fatalf("unsound at %d->%d", v1, v2)
		}
	}
}
