// Package reachidx implements a GRAIL-style interval-labeling
// reachability index, used as a *filter* in front of the runtime search,
// as the paper suggests for existing reachability indices ("they can be
// leveraged as filters, i.e., we invoke our methods only after those
// techniques decide that two nodes are connected", Section 4).
//
// For every edge color (plus the wildcard layer) the color-restricted
// subgraph is condensed into its strongly connected components; k
// randomized depth-first traversals of the condensation assign each
// component an interval [begin, post] such that
//
//	u reaches v  ⇒  interval(v) ⊆ interval(u)   (in every traversal).
//
// The contrapositive gives a sound negative filter: if containment fails
// in any traversal, no path exists and the bi-directional search can be
// skipped. Positive answers are "maybe" and fall through to the search.
// Index size is O(k·(m+1)·|V|) integers — tiny next to the distance
// matrix — and construction is O(k·(m+1)·(|V|+|E|)).
package reachidx

import (
	"math/rand"

	"regraph/internal/graph"
)

// Index is the per-color interval-labeling filter.
type Index struct {
	k      int
	layers []layer // one per color; wildcard layer last
}

type layer struct {
	comp     []int32 // data node -> component id
	cycle    []bool  // component id -> lies on a non-empty cycle
	interval [][]iv  // [traversal][component]
}

type iv struct {
	begin, post int32
}

// Build constructs the index with k traversals per color layer (k = 2 or
// 3 is typical; higher k filters more, costs more memory).
func Build(g *graph.Graph, k int) *Index {
	if k < 1 {
		k = 1
	}
	ix := &Index{k: k}
	m := g.NumColors()
	rng := rand.New(rand.NewSource(0x9e3779b9))
	for layerIdx := 0; layerIdx <= m; layerIdx++ {
		c := graph.ColorID(layerIdx)
		if layerIdx == m {
			c = graph.AnyColor
		}
		ix.layers = append(ix.layers, buildLayer(g, c, k, rng))
	}
	return ix
}

func buildLayer(g *graph.Graph, c graph.ColorID, k int, rng *rand.Rand) layer {
	n := g.NumNodes()
	comps := graph.SCC(n, func(v int) []int {
		succs := g.Succ(graph.NodeID(v), c)
		out := make([]int, len(succs))
		for i, s := range succs {
			out[i] = int(s)
		}
		return out
	})
	la := layer{comp: make([]int32, n), cycle: make([]bool, len(comps))}
	for ci, members := range comps {
		multi := len(members) > 1
		for _, v := range members {
			la.comp[v] = int32(ci)
			if !multi && !la.cycle[ci] {
				// Singleton component: cyclic only with a self-loop.
				for _, w := range g.Succ(graph.NodeID(v), c) {
					if int(w) == v {
						la.cycle[ci] = true
						break
					}
				}
			}
		}
		if multi {
			la.cycle[ci] = true
		}
	}
	// Condensation adjacency (component DAG).
	nc := len(comps)
	adj := make([][]int32, nc)
	seen := map[[2]int32]bool{}
	for v := 0; v < n; v++ {
		cv := la.comp[v]
		for _, w := range g.Succ(graph.NodeID(v), c) {
			cw := la.comp[w]
			if cv != cw && !seen[[2]int32{cv, cw}] {
				seen[[2]int32{cv, cw}] = true
				adj[cv] = append(adj[cv], cw)
			}
		}
	}
	// k randomized post-order traversals.
	la.interval = make([][]iv, k)
	for t := 0; t < k; t++ {
		la.interval[t] = grailTraversal(adj, rng)
	}
	return la
}

// grailTraversal performs one randomized DFS over the DAG, labeling each
// component with [begin, post]: post is its post-order index, begin the
// minimum begin/post among it and its descendants.
func grailTraversal(adj [][]int32, rng *rand.Rand) []iv {
	nc := len(adj)
	labels := make([]iv, nc)
	visited := make([]bool, nc)
	order := rng.Perm(nc)
	var counter int32
	// Iterative DFS with shuffled child order.
	type frame struct {
		v    int32
		i    int
		kids []int32
	}
	for _, root := range order {
		if visited[root] {
			continue
		}
		visited[root] = true
		kids := shuffled(adj[root], rng)
		stack := []frame{{int32(root), 0, kids}}
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.i < len(f.kids) {
				w := f.kids[f.i]
				f.i++
				if !visited[w] {
					visited[w] = true
					stack = append(stack, frame{w, 0, shuffled(adj[w], rng)})
				}
				continue
			}
			// Post-visit.
			begin := counter
			for _, w := range adj[f.v] {
				if labels[w].begin < begin {
					begin = labels[w].begin
				}
			}
			labels[f.v] = iv{begin: begin, post: counter}
			counter++
			stack = stack[:len(stack)-1]
		}
	}
	return labels
}

func shuffled(in []int32, rng *rand.Rand) []int32 {
	out := make([]int32, len(in))
	copy(out, in)
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// MaybeReaches reports whether a non-empty path of color c from v1 to v2
// might exist. A false answer is definitive (no such path); a true answer
// must be confirmed by an actual search.
func (ix *Index) MaybeReaches(c graph.ColorID, v1, v2 graph.NodeID) bool {
	la := ix.layer(c)
	c1, c2 := la.comp[v1], la.comp[v2]
	if c1 == c2 {
		if v1 == v2 {
			// Non-empty cycle needed: exact answer from the SCC structure.
			return la.cycle[c1]
		}
		return true // same component: mutually reachable
	}
	for t := 0; t < ix.k; t++ {
		a, b := la.interval[t][c1], la.interval[t][c2]
		if !(a.begin <= b.begin && b.post <= a.post) {
			return false // interval not contained: definitely unreachable
		}
	}
	return true
}

func (ix *Index) layer(c graph.ColorID) *layer {
	if c == graph.AnyColor {
		return &ix.layers[len(ix.layers)-1]
	}
	return &ix.layers[c]
}

// Bytes estimates the index memory footprint.
func (ix *Index) Bytes() int64 {
	var total int64
	for _, la := range ix.layers {
		total += int64(len(la.comp)) * 4
		total += int64(len(la.cycle))
		for _, ivs := range la.interval {
			total += int64(len(ivs)) * 8
		}
	}
	return total
}
