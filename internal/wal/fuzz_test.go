package wal

import (
	"bytes"
	"testing"
)

// FuzzSegmentDecode feeds arbitrary bytes — seeded with real segments,
// truncations and bit flips — to the segment decoder. The invariants
// under ANY input: no panic, no error for pure corruption (errors are
// reserved for real I/O and emit failures), every emitted record is
// internally consistent (decoding is whole-record-or-nothing, so a
// partial batch can never be replayed), and the reported intact prefix
// re-reads to exactly the same records (GoodBytes really is a record
// boundary).
func FuzzSegmentDecode(f *testing.F) {
	// Seed: a well-formed two-record segment plus hostile variants.
	var good bytes.Buffer
	good.WriteString(magic)
	for gens, ops := 1, testOps(4, 1); gens <= 2; gens++ {
		rec, err := encodeRecord(uint64(gens), ops)
		if err != nil {
			f.Fatal(err)
		}
		good.Write(rec)
	}
	gb := good.Bytes()
	f.Add(gb)
	f.Add(gb[:len(gb)-1])         // torn payload
	f.Add(gb[:len(magic)+3])      // torn header
	f.Add([]byte(magic))          // empty segment
	f.Add([]byte("RGWAL999junk")) // bad magic
	f.Add([]byte{})               // empty file
	flip := append([]byte(nil), gb...)
	flip[len(magic)+10] ^= 0xff
	f.Add(flip) // checksum mismatch
	huge := append([]byte(nil), gb[:len(magic)]...)
	huge = append(huge, 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0)
	f.Add(huge) // implausible length

	f.Fuzz(func(t *testing.T, data []byte) {
		var recs []Record
		info, err := ReadSegment(bytes.NewReader(data), func(r Record) error {
			recs = append(recs, r)
			return nil
		})
		if err != nil {
			t.Fatalf("in-memory read returned error (must be clean stop): %v", err)
		}
		if info.Records != len(recs) {
			t.Fatalf("info.Records=%d but emitted %d", info.Records, len(recs))
		}
		if info.GoodBytes > int64(len(data)) {
			t.Fatalf("GoodBytes %d beyond input length %d", info.GoodBytes, len(data))
		}
		for _, r := range recs {
			// A replayed record is a fully decoded batch: every op is a
			// well-formed mutate.Op value (it came through json.Unmarshal),
			// and re-encoding it must succeed — the "never replay a partial
			// batch" property in executable form.
			if _, err := encodeRecord(r.Gen, r.Ops); err != nil {
				t.Fatalf("emitted record does not re-encode: %v", err)
			}
		}
		// The intact prefix must re-read identically: same record count,
		// same gens, clean or torn exactly as before.
		if info.GoodBytes >= int64(len(magic)) {
			prefix := data[:info.GoodBytes]
			var again []Record
			info2, err := ReadSegment(bytes.NewReader(prefix), func(r Record) error {
				again = append(again, r)
				return nil
			})
			if err != nil {
				t.Fatalf("prefix re-read error: %v", err)
			}
			if info2.Torn != "" {
				t.Fatalf("GoodBytes prefix re-reads as torn (%q) — not a record boundary", info2.Torn)
			}
			if len(again) != len(recs) {
				t.Fatalf("prefix re-read emitted %d records, want %d", len(again), len(recs))
			}
			for i := range again {
				if again[i].Gen != recs[i].Gen || len(again[i].Ops) != len(recs[i].Ops) {
					t.Fatalf("prefix re-read record %d differs", i)
				}
			}
		}
	})
}
