package wal

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"

	"regraph/internal/mutate"
)

// Segment framing. A segment file is the magic header followed by
// length/checksum-framed records:
//
//	[8B magic "RGWAL001"]
//	[4B BE payload length][4B BE CRC32-IEEE(payload)][payload] ...
//
// and a record payload is the committed generation number followed by
// the batch in the already-replayable NDJSON mutation format —
// internal/mutate's JSON op lines, exactly what POST /v1/mutate
// accepts:
//
//	[8B BE generation][one JSON op per '\n'-terminated line]
//
// The whole submitted batch is framed, failed ops included: replaying a
// record through the same Engine.Apply that produced it re-fails them
// identically, which is what makes recovery oracle-identical by
// construction instead of by careful bookkeeping.
//
// The frame is what makes a torn tail detectable: a crash mid-write
// leaves a record whose length header, payload or checksum is
// incomplete, and the decoder stops cleanly at the last intact record
// instead of replaying a partial batch. There is no end-of-segment
// marker — a clean EOF exactly after a record is the normal end.

// magic identifies (and versions) a segment file.
const magic = "RGWAL001"

// frameHeaderLen is the per-record length+checksum prefix.
const frameHeaderLen = 8

// MaxRecordBytes bounds one record's payload. It exists so a corrupt
// length header makes the decoder stop instead of allocating gigabytes;
// Append enforces the same bound so every legal record is decodable.
const MaxRecordBytes = 64 << 20

// Record is one decoded WAL record: a mutation batch and the
// generation it committed as.
type Record struct {
	Gen uint64
	Ops []mutate.Op
}

// encodeRecord frames one batch. The returned buffer is
// header+payload, ready to be written to a segment.
func encodeRecord(gen uint64, ops []mutate.Op) ([]byte, error) {
	var payload bytes.Buffer
	payload.Grow(8 + 64*len(ops))
	var genb [8]byte
	binary.BigEndian.PutUint64(genb[:], gen)
	payload.Write(genb[:])
	for i := range ops {
		b, err := json.Marshal(&ops[i])
		if err != nil {
			return nil, fmt.Errorf("wal: marshal op %d: %w", i, err)
		}
		payload.Write(b)
		payload.WriteByte('\n')
	}
	if payload.Len() > MaxRecordBytes {
		return nil, fmt.Errorf("wal: batch of %d ops encodes to %d bytes (max %d)",
			len(ops), payload.Len(), MaxRecordBytes)
	}
	out := make([]byte, frameHeaderLen+payload.Len())
	binary.BigEndian.PutUint32(out[0:4], uint32(payload.Len()))
	binary.BigEndian.PutUint32(out[4:8], crc32.ChecksumIEEE(payload.Bytes()))
	copy(out[frameHeaderLen:], payload.Bytes())
	return out, nil
}

// decodePayload parses a checksum-verified record payload. Any decode
// failure discards the whole record — a record is replayed fully or
// not at all.
func decodePayload(p []byte) (Record, error) {
	if len(p) < 8 {
		return Record{}, fmt.Errorf("wal: record payload shorter than its generation header")
	}
	rec := Record{Gen: binary.BigEndian.Uint64(p[:8])}
	for _, line := range bytes.Split(p[8:], []byte{'\n'}) {
		if len(line) == 0 {
			continue
		}
		var op mutate.Op
		if err := json.Unmarshal(line, &op); err != nil {
			return Record{}, fmt.Errorf("wal: record op line: %w", err)
		}
		rec.Ops = append(rec.Ops, op)
	}
	return rec, nil
}

// SegmentInfo reports how reading one segment ended.
type SegmentInfo struct {
	// Records and FirstGen/LastGen describe the intact prefix (gens are
	// zero when the segment holds no records).
	Records  int
	FirstGen uint64
	LastGen  uint64

	// GoodBytes is the byte offset just past the last intact record —
	// where a recovering writer truncates before appending again.
	GoodBytes int64

	// Torn is non-empty when the segment ends in anything but a clean
	// record boundary (truncated frame, checksum mismatch, undecodable
	// payload, bad magic): a human-readable reason, recorded rather
	// than returned as an error because a torn tail is the expected
	// crash artifact, not a failure of the reader.
	Torn string
}

// ReadSegment decodes records from one segment stream, calling emit
// for each fully intact record in order. It never returns a partially
// decoded record: the first torn or corrupt frame ends the scan, with
// the reason in SegmentInfo.Torn. The returned error is non-nil only
// for real I/O failures from r or an emit callback error — corruption
// is a clean stop, not an error.
func ReadSegment(r io.Reader, emit func(Record) error) (SegmentInfo, error) {
	var info SegmentInfo
	br := bufio.NewReaderSize(r, 64<<10)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			info.Torn = "missing file header"
			return info, nil
		}
		return info, err
	}
	if string(head) != magic {
		info.Torn = "bad file magic"
		return info, nil
	}
	info.GoodBytes = int64(len(magic))
	hdr := make([]byte, frameHeaderLen)
	var payload []byte
	for {
		if _, err := io.ReadFull(br, hdr); err != nil {
			if err == io.EOF {
				return info, nil // clean end on a record boundary
			}
			if err == io.ErrUnexpectedEOF {
				info.Torn = "truncated record header"
				return info, nil
			}
			return info, err
		}
		n := binary.BigEndian.Uint32(hdr[0:4])
		if n == 0 || n > MaxRecordBytes {
			info.Torn = fmt.Sprintf("implausible record length %d", n)
			return info, nil
		}
		if cap(payload) < int(n) {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(br, payload); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				info.Torn = "truncated record payload"
				return info, nil
			}
			return info, err
		}
		if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(hdr[4:8]) {
			info.Torn = "record checksum mismatch"
			return info, nil
		}
		rec, err := decodePayload(payload)
		if err != nil {
			info.Torn = err.Error()
			return info, nil
		}
		if emit != nil {
			if err := emit(rec); err != nil {
				return info, err
			}
		}
		if info.Records == 0 {
			info.FirstGen = rec.Gen
		}
		info.Records++
		info.LastGen = rec.Gen
		info.GoodBytes += int64(frameHeaderLen) + int64(n)
	}
}
