package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"regraph/internal/gen"
	"regraph/internal/mutate"
)

func testOps(n int, seed int) []mutate.Op {
	ops := make([]mutate.Op, 0, n)
	for i := 0; i < n; i++ {
		switch (seed + i) % 3 {
		case 0:
			ops = append(ops, mutate.Op{Verb: mutate.VerbAddNode,
				Node:  fmt.Sprintf("n%d-%d", seed, i),
				Attrs: map[string]string{"a0": fmt.Sprint(i % 7)}})
		case 1:
			ops = append(ops, mutate.Op{Verb: mutate.VerbSetAttr,
				Node:  fmt.Sprintf("n%d-%d", seed, i-1),
				Attrs: map[string]string{"a1": fmt.Sprint(i)}})
		default:
			ops = append(ops, mutate.Op{Verb: mutate.VerbAddEdge,
				From: fmt.Sprintf("n%d-%d", seed, i-2), To: fmt.Sprintf("n%d-%d", seed, i-1),
				Color: "red"})
		}
	}
	return ops
}

// appendN appends gens [from, from+n) with deterministic batches and
// returns the batches by gen.
func appendN(t *testing.T, w *WAL, from uint64, n int) map[uint64][]mutate.Op {
	t.Helper()
	out := make(map[uint64][]mutate.Op, n)
	for i := 0; i < n; i++ {
		g := from + uint64(i)
		ops := testOps(3+i%5, int(g))
		if err := w.Append(g, ops); err != nil {
			t.Fatalf("Append(gen %d): %v", g, err)
		}
		out[g] = ops
	}
	return out
}

func replayAll(t *testing.T, w *WAL, after uint64) []Record {
	t.Helper()
	var recs []Record
	if err := w.Replay(after, func(r Record) error {
		recs = append(recs, r)
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return recs
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir, Fsync: FsyncNone})
	if err != nil {
		t.Fatal(err)
	}
	want := appendN(t, w, 1, 25)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := Open(Options{Dir: dir, Fsync: FsyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if got := w2.LastGen(); got != 25 {
		t.Fatalf("LastGen after reopen = %d, want 25", got)
	}
	recs := replayAll(t, w2, 0)
	if len(recs) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(want))
	}
	for i, rec := range recs {
		if rec.Gen != uint64(i+1) {
			t.Fatalf("record %d has gen %d, want %d", i, rec.Gen, i+1)
		}
		wantOps := want[rec.Gen]
		if len(rec.Ops) != len(wantOps) {
			t.Fatalf("gen %d: %d ops, want %d", rec.Gen, len(rec.Ops), len(wantOps))
		}
		for j := range rec.Ops {
			if rec.Ops[j].Verb != wantOps[j].Verb || rec.Ops[j].Node != wantOps[j].Node ||
				rec.Ops[j].From != wantOps[j].From || rec.Ops[j].To != wantOps[j].To {
				t.Fatalf("gen %d op %d: got %+v want %+v", rec.Gen, j, rec.Ops[j], wantOps[j])
			}
		}
	}

	// Appending continues from the recovered gen.
	if err := w2.Append(26, testOps(2, 26)); err != nil {
		t.Fatalf("append after reopen: %v", err)
	}
}

func TestAppendRejectsOutOfOrderGen(t *testing.T) {
	w, err := Open(Options{Dir: t.TempDir(), Fsync: FsyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	appendN(t, w, 1, 3)
	if err := w.Append(3, testOps(1, 3)); err == nil {
		t.Fatal("replayed gen accepted")
	}
	if err := w.Append(5, testOps(1, 5)); err == nil {
		t.Fatal("gen gap accepted")
	}
	if err := w.Append(4, testOps(1, 4)); err != nil {
		t.Fatalf("contiguous gen rejected: %v", err)
	}
}

func TestRotationAndMultiSegmentReplay(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation every few records.
	w, err := Open(Options{Dir: dir, Fsync: FsyncNone, SegmentBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 1, 40)
	st := w.Stats()
	if st.Rotations == 0 || st.Segments < 2 {
		t.Fatalf("expected rotations with 1KB segments, got stats %+v", st)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := Open(Options{Dir: dir, Fsync: FsyncNone, SegmentBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	recs := replayAll(t, w2, 0)
	if len(recs) != 40 {
		t.Fatalf("replayed %d records across segments, want 40", len(recs))
	}
	for i, rec := range recs {
		if rec.Gen != uint64(i+1) {
			t.Fatalf("record %d gen %d, want %d", i, rec.Gen, i+1)
		}
	}
	// Replay after a mid-log gen skips the prefix.
	tail := replayAll(t, w2, 25)
	if len(tail) != 15 || tail[0].Gen != 26 {
		t.Fatalf("Replay(after=25): %d records starting at gen %d", len(tail), tail[0].Gen)
	}
}

func TestCompactTruncatesHistory(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir, Fsync: FsyncNone, SegmentBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 1, 30)

	g := gen.Synthetic(7, 50, 200, 2, gen.DefaultColors)
	if err := w.Compact(g, 30); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	st := w.Stats()
	if st.SnapshotGen != 30 || st.Compactions != 1 {
		t.Fatalf("stats after compact: %+v", st)
	}
	if st.Segments > 1 {
		t.Fatalf("compact left %d segments, want 1 (the empty active one)", st.Segments)
	}

	// More appends after compaction, then recover: snapshot + tail only.
	appendN(t, w, 31, 5)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := Open(Options{Dir: dir, Fsync: FsyncNone, SegmentBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	sg, sgen, ok, err := w2.LoadSnapshot()
	if err != nil || !ok || sgen != 30 {
		t.Fatalf("LoadSnapshot: gen=%d ok=%v err=%v", sgen, ok, err)
	}
	var wantTSV, gotTSV bytes.Buffer
	if err := g.WriteTSV(&wantTSV); err != nil {
		t.Fatal(err)
	}
	if err := sg.WriteTSV(&gotTSV); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantTSV.Bytes(), gotTSV.Bytes()) {
		t.Fatal("snapshot round-trip is not bit-identical")
	}
	recs := replayAll(t, w2, sgen)
	if len(recs) != 5 || recs[0].Gen != 31 || recs[4].Gen != 35 {
		t.Fatalf("replay after snapshot: %d records, gens %v..", len(recs), recs[0].Gen)
	}

	// A second compact removes the old snapshot file.
	if err := w2.Compact(g, 35); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, snapName(30))); !os.IsNotExist(err) {
		t.Fatalf("old snapshot still present: %v", err)
	}
}

// TestTruncateAtEveryOffset is the deterministic torn-tail sweep: build
// a small log, then for every possible truncation point reopen and
// check that recovery yields exactly the longest record prefix whose
// frames fit in the kept bytes — never a partial batch, never a panic,
// and the reopened log accepts new appends.
func TestTruncateAtEveryOffset(t *testing.T) {
	master := t.TempDir()
	w, err := Open(Options{Dir: master, Fsync: FsyncNone})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 1, 6)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segPath := filepath.Join(master, segName(1))
	full, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}

	f, _ := os.Open(segPath)
	info, err := ReadSegment(f, func(r Record) error {
		return nil
	})
	f.Close()
	if err != nil || info.Torn != "" || info.Records != 6 {
		t.Fatalf("master log not clean: %+v err=%v", info, err)
	}

	for cut := 0; cut <= len(full); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		w2, err := Open(Options{Dir: dir, Fsync: FsyncNone})
		if err != nil {
			t.Fatalf("cut=%d: Open: %v", cut, err)
		}
		recs := replayAll(t, w2, 0)
		// Every replayed record must be fully intact and contiguous.
		for i, rec := range recs {
			if rec.Gen != uint64(i+1) {
				t.Fatalf("cut=%d: record %d has gen %d", cut, i, rec.Gen)
			}
		}
		// The recovered prefix length is monotone in cut and reaches 6 at
		// full length.
		if cut == len(full) && len(recs) != 6 {
			t.Fatalf("full file recovered only %d records", len(recs))
		}
		// The log must accept a contiguous append after recovery.
		next := w2.LastGen() + 1
		if err := w2.Append(next, testOps(1, int(next))); err != nil {
			t.Fatalf("cut=%d: append after recovery: %v", cut, err)
		}
		if err := w2.Close(); err != nil {
			t.Fatalf("cut=%d: close: %v", cut, err)
		}
		// And a second reopen sees the repaired log plus the new record.
		w3, err := Open(Options{Dir: dir, Fsync: FsyncNone})
		if err != nil {
			t.Fatalf("cut=%d: reopen: %v", cut, err)
		}
		recs2 := replayAll(t, w3, 0)
		if len(recs2) != len(recs)+1 {
			t.Fatalf("cut=%d: after append reopen sees %d records, want %d",
				cut, len(recs2), len(recs)+1)
		}
		w3.Close()
	}
}

func TestBitFlipStopsReplayCleanly(t *testing.T) {
	master := t.TempDir()
	w, err := Open(Options{Dir: master, Fsync: FsyncNone})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 1, 8)
	w.Close()
	segPath := filepath.Join(master, segName(1))
	full, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte mid-file: replay must stop at or before the damaged
	// record, never emit garbage, and Open must repair to an appendable
	// state.
	for _, off := range []int{len(magic) + 9, len(full) / 2, len(full) - 3} {
		dir := t.TempDir()
		mut := append([]byte(nil), full...)
		mut[off] ^= 0x40
		os.WriteFile(filepath.Join(dir, segName(1)), mut, 0o644)
		w2, err := Open(Options{Dir: dir, Fsync: FsyncNone})
		if err != nil {
			t.Fatalf("off=%d: Open: %v", off, err)
		}
		recs := replayAll(t, w2, 0)
		if len(recs) >= 8 && off < len(full)-frameHeaderLen {
			// A flip inside a frame must cost at least that record (a flip
			// in trailing padding can't exist — frames are dense — so
			// anything but the final CRC region must drop a record).
			t.Fatalf("off=%d: all 8 records survived a bit flip", off)
		}
		for i, rec := range recs {
			if rec.Gen != uint64(i+1) {
				t.Fatalf("off=%d: non-contiguous replay at %d", off, i)
			}
		}
		if err := w2.Append(w2.LastGen()+1, testOps(2, 99)); err != nil {
			t.Fatalf("off=%d: append after repair: %v", off, err)
		}
		w2.Close()
	}
}

func TestFsyncPolicies(t *testing.T) {
	// always: every append fsyncs.
	wa, err := Open(Options{Dir: t.TempDir(), Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, wa, 1, 5)
	if st := wa.Stats(); st.Fsyncs < 5 {
		t.Fatalf("always: %d fsyncs for 5 appends", st.Fsyncs)
	}
	wa.Close()

	// none: appends never fsync (Close does one final sync).
	wn, err := Open(Options{Dir: t.TempDir(), Fsync: FsyncNone})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, wn, 1, 5)
	if st := wn.Stats(); st.Fsyncs != 0 {
		t.Fatalf("none: %d fsyncs before close", st.Fsyncs)
	}
	wn.Close()

	// interval: the background syncer picks appends up within the window.
	wi, err := Open(Options{Dir: t.TempDir(), Fsync: FsyncInterval, FsyncInterval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, wi, 1, 5)
	deadline := time.Now().Add(2 * time.Second)
	for wi.Stats().Fsyncs == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if st := wi.Stats(); st.Fsyncs == 0 {
		t.Fatal("interval: no background fsync within 2s")
	}
	wi.Close()
}

func TestOpenRejectsBadOptions(t *testing.T) {
	if _, err := Open(Options{}); err == nil {
		t.Fatal("empty Dir accepted")
	}
	if _, err := Open(Options{Dir: t.TempDir(), Fsync: "sometimes"}); err == nil {
		t.Fatal("bogus fsync policy accepted")
	}
}
