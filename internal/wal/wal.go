// Package wal is the engine's write-ahead log: every committed
// Engine.Apply batch is framed into checksummed segment files before
// the generation it produces is published, so a process that dies —
// crash, kill, power loss — reconstructs its graph by replaying the
// log through the same apply path that built it the first time
// (engine.Recover). The log format is the NDJSON mutation format the
// write path already speaks (internal/mutate), wrapped in
// length/CRC32-framed records per batch (see segment.go), which is
// what makes a torn tail detectable: recovery stops at the last intact
// record and never replays a partial batch.
//
// Durability is a configured trade (Options.Fsync):
//
//   - "always":   flush + fsync per append. Every batch whose Apply
//     returned survives both process kill and machine crash.
//   - "interval": appends buffer in user space and a background ticker
//     flushes + fsyncs every FsyncInterval. A crash loses at most the
//     last window — the throughput/durability middle ground.
//   - "none":     appends flush to the OS per batch but the file is
//     never fsynced. Survives process kill (the write(2) completed);
//     machine crash can lose whatever the kernel had not written back.
//
// Segments rotate at SegmentBytes so history is bounded-size files,
// and Compact writes a snapshot of the live graph (graph.WriteTSV,
// tmp+rename) and deletes every segment the snapshot supersedes, so
// recovery time tracks the distance to the last snapshot instead of
// the total write history.
package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"regraph/internal/graph"
	"regraph/internal/mutate"
)

// Fsync policies.
const (
	FsyncAlways   = "always"
	FsyncInterval = "interval"
	FsyncNone     = "none"
)

// Options configures Open.
type Options struct {
	// Dir is the log directory, created if missing. Required.
	Dir string

	// Fsync is the durability policy: FsyncAlways (default), FsyncInterval
	// or FsyncNone. See the package comment for the exact promises.
	Fsync string

	// FsyncInterval is the background sync period under FsyncInterval
	// (default 50ms) — the bound on what a crash can lose.
	FsyncInterval time.Duration

	// SegmentBytes rotates the active segment once it exceeds this size
	// (default 64 MiB).
	SegmentBytes int64
}

func (o Options) withDefaults() (Options, error) {
	if o.Dir == "" {
		return o, fmt.Errorf("wal: Options.Dir is required")
	}
	switch o.Fsync {
	case "":
		o.Fsync = FsyncAlways
	case FsyncAlways, FsyncInterval, FsyncNone:
	default:
		return o, fmt.Errorf("wal: unknown fsync policy %q (want always, interval or none)", o.Fsync)
	}
	if o.FsyncInterval <= 0 {
		o.FsyncInterval = 50 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	return o, nil
}

// Stats is a point-in-time snapshot of a WAL's counters (served in
// /v1/stats by internal/server).
type Stats struct {
	// Appended counts records (= committed batches) appended by this
	// process; AppendedBytes their framed size. Fsyncs counts fsync(2)
	// calls on segment files; Rotations segment rotations; Compactions
	// completed Compact calls.
	Appended      uint64
	AppendedBytes uint64
	Fsyncs        uint64
	Rotations     uint64
	Compactions   uint64

	// Segments is the current segment-file count; LastGen the newest
	// generation in the log (appended or found at Open); SnapshotGen the
	// generation of the latest snapshot (0 = none).
	Segments    int
	LastGen     uint64
	SnapshotGen uint64
}

// WAL is an open write-ahead log. Append serializes internally, but the
// intended caller is already single-writer (the engine's apply loop,
// under its write mutex). Stats may be read concurrently.
type WAL struct {
	opts Options

	mu       sync.Mutex
	seg      *os.File
	segBuf   *bufWriter
	segSize  int64
	segFirst uint64 // generation the active segment is named after
	segs     []segMeta
	snapGen  uint64
	lastGen  atomic.Uint64
	needSync bool
	closed   bool

	stop     chan struct{} // interval syncer
	syncDone chan struct{}

	appended      atomic.Uint64
	appendedBytes atomic.Uint64
	fsyncs        atomic.Uint64
	rotations     atomic.Uint64
	compactions   atomic.Uint64
	nsegs         atomic.Int64
}

// bufWriter is a small userspace buffer over the segment file. Its
// size is deliberately what makes the fsync policies mean what they
// say under SIGKILL: bytes still in this buffer die with the process,
// so "interval" genuinely loses its unflushed window while "always"
// and "none" (which flush per append) keep every appended batch.
type bufWriter struct {
	f   *os.File
	buf []byte
}

func newBufWriter(f *os.File) *bufWriter {
	return &bufWriter{f: f, buf: make([]byte, 0, 256<<10)}
}

func (b *bufWriter) Write(p []byte) (int, error) {
	if len(b.buf)+len(p) > cap(b.buf) {
		if err := b.Flush(); err != nil {
			return 0, err
		}
		if len(p) > cap(b.buf) {
			return b.f.Write(p)
		}
	}
	b.buf = append(b.buf, p...)
	return len(p), nil
}

func (b *bufWriter) Flush() error {
	if len(b.buf) == 0 {
		return nil
	}
	_, err := b.f.Write(b.buf)
	b.buf = b.buf[:0]
	return err
}

// segMeta is one segment file: its name and the first generation it
// holds (which is also encoded in the name). Segments partition the
// generation sequence contiguously: segment i covers
// [first_i, first_{i+1}-1].
type segMeta struct {
	name  string
	first uint64
}

func segName(first uint64) string { return fmt.Sprintf("wal-%016x.log", first) }
func snapName(gen uint64) string  { return fmt.Sprintf("snapshot-%016x.tsv", gen) }
func parseSeg(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	v, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log"), 16, 64)
	return v, err == nil
}
func parseSnap(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "snapshot-") || !strings.HasSuffix(name, ".tsv") {
		return 0, false
	}
	v, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "snapshot-"), ".tsv"), 16, 64)
	return v, err == nil
}

// Open opens (or initializes) the log directory and prepares it for
// appending. Recovery from a crash happens here: the last segment's
// torn tail, if any, is truncated to the last intact record — so a
// later Append never writes past a hole — and any segments beyond a
// torn or non-contiguous point are deleted (they are unreachable by
// replay; under correct operation this never happens, it is a
// corruption repair). Open does not replay anything into an engine;
// that is Replay / engine.Recover.
func Open(opts Options) (*WAL, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	w := &WAL{opts: opts, stop: make(chan struct{}), syncDone: make(chan struct{})}
	if err := w.scan(); err != nil {
		return nil, err
	}
	if err := w.openActive(); err != nil {
		return nil, err
	}
	if opts.Fsync == FsyncInterval {
		go w.syncLoop()
	} else {
		close(w.syncDone)
	}
	return w, nil
}

// scan inventories the directory: segment list in generation order,
// latest snapshot, last intact generation; truncates the tail segment
// past its last intact record and drops segments beyond a hole.
func (w *WAL) scan() error {
	ents, err := os.ReadDir(w.opts.Dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	for _, e := range ents {
		if first, ok := parseSeg(e.Name()); ok {
			w.segs = append(w.segs, segMeta{name: e.Name(), first: first})
		} else if gen, ok := parseSnap(e.Name()); ok && gen >= w.snapGen {
			w.snapGen = gen
		}
	}
	sort.Slice(w.segs, func(i, j int) bool { return w.segs[i].first < w.segs[j].first })

	last := w.snapGen
	for i := 0; i < len(w.segs); i++ {
		sm := w.segs[i]
		path := filepath.Join(w.opts.Dir, sm.name)
		f, err := os.Open(path)
		if err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		info, err := ReadSegment(f, nil)
		f.Close()
		if err != nil {
			return fmt.Errorf("wal: scan %s: %w", sm.name, err)
		}
		contiguous := info.Records == 0 || last == 0 || info.FirstGen <= last+1
		if info.Torn == "" && contiguous && i < len(w.segs)-1 {
			if info.Records > 0 {
				last = info.LastGen
			}
			continue
		}
		if !contiguous {
			// A gap before this segment: everything from here on is
			// unreachable by replay. Drop it rather than appending after a
			// hole.
			w.dropSegments(i)
			break
		}
		if info.Records > 0 {
			last = info.LastGen
		}
		if info.Torn != "" {
			// Crash artifact (or corruption): keep the intact prefix, cut
			// the tail so the next append lands on a record boundary.
			if err := os.Truncate(path, info.GoodBytes); err != nil {
				return fmt.Errorf("wal: truncate torn tail of %s: %w", sm.name, err)
			}
			if info.Records == 0 && info.GoodBytes < int64(len(magic)) {
				// Not even a header survived: recreate the file below.
				if err := os.Remove(path); err != nil {
					return fmt.Errorf("wal: %w", err)
				}
				w.segs = append(w.segs[:i], w.segs[i+1:]...)
				i--
			}
			w.dropSegments(i + 1)
			break
		}
	}
	w.lastGen.Store(last)
	w.nsegs.Store(int64(len(w.segs)))
	return nil
}

// dropSegments removes segment files from index i on (corruption
// repair; see scan).
func (w *WAL) dropSegments(i int) {
	for _, sm := range w.segs[i:] {
		os.Remove(filepath.Join(w.opts.Dir, sm.name))
	}
	w.segs = w.segs[:i]
}

// openActive opens the newest segment for appending, or creates the
// first one (named after the next generation to be appended).
func (w *WAL) openActive() error {
	if len(w.segs) == 0 {
		return w.newSegment(w.lastGen.Load() + 1)
	}
	sm := w.segs[len(w.segs)-1]
	f, err := os.OpenFile(filepath.Join(w.opts.Dir, sm.name), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	w.seg, w.segBuf, w.segSize, w.segFirst = f, newBufWriter(f), st.Size(), sm.first
	return nil
}

// newSegment creates and activates a fresh segment named after first,
// writing its header and fsyncing the directory so the file itself
// survives a crash.
func (w *WAL) newSegment(first uint64) error {
	name := segName(first)
	f, err := os.OpenFile(filepath.Join(w.opts.Dir, name), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := f.WriteString(magic); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if err := syncDir(w.opts.Dir); err != nil {
		f.Close()
		return err
	}
	w.seg, w.segBuf, w.segSize, w.segFirst = f, newBufWriter(f), int64(len(magic)), first
	w.segs = append(w.segs, segMeta{name: name, first: first})
	w.nsegs.Store(int64(len(w.segs)))
	return nil
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	return nil
}

// Append frames one committed batch into the log. gen must be exactly
// LastGen()+1 — the engine's apply loop calls Append between building
// a generation and publishing it, so the log's generation sequence is
// contiguous by construction, and Replay can verify it. When Append
// returns under the "always" policy the record is on stable storage;
// under "none" it is in the OS; under "interval" it may still be in
// user space until the next tick. An error means the batch must not be
// published (append-then-commit).
func (w *WAL) Append(gen uint64, ops []mutate.Op) error {
	rec, err := encodeRecord(gen, ops)
	if err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("wal: closed")
	}
	if want := w.lastGen.Load() + 1; gen != want {
		return fmt.Errorf("wal: out-of-order append: gen %d, want %d", gen, want)
	}
	if w.segSize > int64(len(magic)) && w.segSize+int64(len(rec)) > w.opts.SegmentBytes {
		if err := w.rotateLocked(); err != nil {
			return err
		}
	}
	if _, err := w.segBuf.Write(rec); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	w.segSize += int64(len(rec))
	switch w.opts.Fsync {
	case FsyncAlways:
		if err := w.flushSyncLocked(); err != nil {
			return err
		}
	case FsyncNone:
		if err := w.segBuf.Flush(); err != nil {
			return fmt.Errorf("wal: flush: %w", err)
		}
	default: // interval: leave it to the syncer's next tick
		w.needSync = true
	}
	w.lastGen.Store(gen)
	w.appended.Add(1)
	w.appendedBytes.Add(uint64(len(rec)))
	return nil
}

// flushSyncLocked pushes buffered bytes to the OS and the OS to disk.
func (w *WAL) flushSyncLocked() error {
	if err := w.segBuf.Flush(); err != nil {
		return fmt.Errorf("wal: flush: %w", err)
	}
	if err := w.seg.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	w.fsyncs.Add(1)
	w.needSync = false
	return nil
}

// rotateLocked seals the active segment (flush + fsync — a rotation is
// a durability point under every policy) and starts the next one.
func (w *WAL) rotateLocked() error {
	if err := w.flushSyncLocked(); err != nil {
		return err
	}
	if err := w.seg.Close(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := w.newSegment(w.lastGen.Load() + 1); err != nil {
		return err
	}
	w.rotations.Add(1)
	return nil
}

// syncLoop is the FsyncInterval background syncer.
func (w *WAL) syncLoop() {
	defer close(w.syncDone)
	t := time.NewTicker(w.opts.FsyncInterval)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
			w.mu.Lock()
			if !w.closed && w.needSync {
				w.flushSyncLocked() // an error here surfaces on the next Append
			}
			w.mu.Unlock()
		}
	}
}

// Sync forces an immediate flush + fsync regardless of policy.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("wal: closed")
	}
	return w.flushSyncLocked()
}

// Close syncs and closes the log. The WAL is unusable afterwards.
func (w *WAL) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	err := w.flushSyncLocked()
	w.closed = true
	if cerr := w.seg.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("wal: %w", cerr)
	}
	w.mu.Unlock()
	select {
	case <-w.stop:
	default:
		close(w.stop)
	}
	<-w.syncDone
	return err
}

// LastGen returns the newest generation in the log (appended by this
// process or found intact at Open).
func (w *WAL) LastGen() uint64 { return w.lastGen.Load() }

// Dir returns the log directory.
func (w *WAL) Dir() string { return w.opts.Dir }

// Stats returns a point-in-time snapshot of the log's counters.
func (w *WAL) Stats() Stats {
	w.mu.Lock()
	snap := w.snapGen
	w.mu.Unlock()
	return Stats{
		Appended:      w.appended.Load(),
		AppendedBytes: w.appendedBytes.Load(),
		Fsyncs:        w.fsyncs.Load(),
		Rotations:     w.rotations.Load(),
		Compactions:   w.compactions.Load(),
		Segments:      int(w.nsegs.Load()),
		LastGen:       w.lastGen.Load(),
		SnapshotGen:   snap,
	}
}

// LoadSnapshot reads the latest snapshot, if any: the graph it holds
// and the generation it captures. ok is false when the log has no
// snapshot (recovery then starts from the caller's seed graph).
func (w *WAL) LoadSnapshot() (g *graph.Graph, gen uint64, ok bool, err error) {
	w.mu.Lock()
	gen = w.snapGen
	w.mu.Unlock()
	if gen == 0 {
		return nil, 0, false, nil
	}
	f, err := os.Open(filepath.Join(w.opts.Dir, snapName(gen)))
	if err != nil {
		return nil, 0, false, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	g, err = graph.ReadTSV(f)
	if err != nil {
		return nil, 0, false, fmt.Errorf("wal: snapshot %d: %w", gen, err)
	}
	return g, gen, true, nil
}

// Replay streams every intact record with generation > afterGen to fn,
// in order, verifying that the generation sequence is contiguous. It
// stops cleanly at a torn tail (the crash artifact Open already
// truncated, or one that appeared since); a generation gap after
// records have been emitted is corruption and returns an error.
func (w *WAL) Replay(afterGen uint64, fn func(Record) error) error {
	w.mu.Lock()
	if err := w.segBuf.Flush(); err != nil {
		w.mu.Unlock()
		return fmt.Errorf("wal: flush before replay: %w", err)
	}
	segs := append([]segMeta(nil), w.segs...)
	w.mu.Unlock()
	next := afterGen + 1
	for _, sm := range segs {
		f, err := os.Open(filepath.Join(w.opts.Dir, sm.name))
		if err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		_, err = ReadSegment(f, func(rec Record) error {
			if rec.Gen < next {
				return nil // superseded by the snapshot (or afterGen)
			}
			if rec.Gen != next {
				return fmt.Errorf("wal: replay gap: got gen %d, want %d", rec.Gen, next)
			}
			if err := fn(rec); err != nil {
				return err
			}
			next++
			return nil
		})
		f.Close()
		if err != nil {
			return err
		}
	}
	return nil
}

// Compact makes the log independent of its history before gen: it
// snapshots g (the live graph at exactly generation gen) to
// snapshot-<gen>.tsv via tmp-file + fsync + rename, rotates the active
// segment, deletes every segment wholly superseded by the snapshot and
// removes older snapshots. Recovery afterwards loads the snapshot and
// replays only generations > gen. The engine calls this under its
// write mutex (Engine.CompactWAL) so gen cannot move mid-compaction.
func (w *WAL) Compact(g *graph.Graph, gen uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("wal: closed")
	}
	if gen == 0 {
		return fmt.Errorf("wal: compact at gen 0 (generation 0 has no snapshot representation)")
	}
	if last := w.lastGen.Load(); gen > last {
		return fmt.Errorf("wal: compact at gen %d beyond log end %d", gen, last)
	}
	name := snapName(gen)
	tmp := filepath.Join(w.opts.Dir, name+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	werr := g.WriteTSV(f)
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: snapshot: %w", werr)
	}
	if err := os.Rename(tmp, filepath.Join(w.opts.Dir, name)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: %w", err)
	}
	if err := syncDir(w.opts.Dir); err != nil {
		return err
	}
	oldSnap := w.snapGen
	w.snapGen = gen

	// Rotate so the active segment starts past the snapshot; then a
	// segment is obsolete exactly when its successor starts at or before
	// gen+1 (segments partition the generation sequence contiguously).
	if w.segSize > int64(len(magic)) {
		if err := w.rotateLocked(); err != nil {
			return err
		}
	}
	keep := w.segs[:0]
	for i, sm := range w.segs {
		if i+1 < len(w.segs) && w.segs[i+1].first <= gen+1 {
			os.Remove(filepath.Join(w.opts.Dir, sm.name))
			continue
		}
		keep = append(keep, sm)
	}
	w.segs = keep
	w.nsegs.Store(int64(len(w.segs)))
	if oldSnap != 0 && oldSnap != gen {
		os.Remove(filepath.Join(w.opts.Dir, snapName(oldSnap)))
	}
	w.compactions.Add(1)
	return nil
}
