package rex

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseBasics(t *testing.T) {
	tests := []struct {
		in   string
		want string
		len  int
	}{
		{"fa", "fa", 1},
		{"fa{2}fn", "fa{2} fn", 2},
		{"fa{2} fn", "fa{2} fn", 2},
		{"ic{2}dc+ic{2}", "ic{2} dc+ ic{2}", 3},
		{"_", "_", 1},
		{"_{3}", "_{3}", 1},
		{"sr{6}fr", "sr{6} fr", 2},
		{"a+b+c+", "a+ b+ c+", 3},
	}
	for _, tc := range tests {
		e, err := Parse(tc.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tc.in, err)
		}
		if got := e.String(); got != tc.want {
			t.Errorf("Parse(%q).String() = %q, want %q", tc.in, got, tc.want)
		}
		if e.Len() != tc.len {
			t.Errorf("Parse(%q).Len() = %d, want %d", tc.in, e.Len(), tc.len)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	for _, in := range []string{"fa{2} fn", "ic{2} dc+ ic{2}", "_{3} a", "a+ b{5}"} {
		e := MustParse(in)
		again := MustParse(e.String())
		if !reflect.DeepEqual(e.Atoms(), again.Atoms()) {
			t.Errorf("round trip of %q: %v != %v", in, e.Atoms(), again.Atoms())
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{"", "a{0}", "a{}", "a{x}", "a{2", "!", "a_b", "+"} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q): expected error, got none", in)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(); err == nil {
		t.Error("New() with no atoms should fail")
	}
	if _, err := New(Atom{Color: "", Max: 1}); err == nil {
		t.Error("New with empty color should fail")
	}
	if _, err := New(Atom{Color: "a", Max: 0}); err == nil {
		t.Error("New with zero bound should fail")
	}
	if _, err := New(Atom{Color: "a", Max: Unbounded}); err != nil {
		t.Errorf("New with unbounded atom: %v", err)
	}
}

func split(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, " ")
}

func TestMatchString(t *testing.T) {
	tests := []struct {
		expr string
		path string
		want bool
	}{
		{"fa{2}fn", "fa fn", true},
		{"fa{2}fn", "fa fa fn", true},
		{"fa{2}fn", "fa fa fa fn", false},
		{"fa{2}fn", "fn", false},
		{"fa{2}fn", "fa", false},
		{"fa{2}fn", "", false},
		{"a+", "a", true},
		{"a+", "a a a a a a", true},
		{"a+", "a b", false},
		{"a+b", "a b", true},
		{"a+b", "a a a b", true},
		{"a+b", "b", false},
		{"_{2}", "x", true},
		{"_{2}", "x y", true},
		{"_{2}", "x y z", false},
		{"_+", "x y z", true},
		{"a{2}a{2}", "a", false},  // min length 2
		{"a{2}a{2}", "a a", true}, // one symbol per atom
		{"a{2}a{2}", "a a a a", true},
		{"a{2}a{2}", "a a a a a", false},
		{"a{3}b{2}a{1}", "a b a", true},
		{"a{3}b{2}a{1}", "a a a b b a", true},
		{"a{3}b{2}a{1}", "a b b b a", false},
	}
	for _, tc := range tests {
		e := MustParse(tc.expr)
		if got := e.MatchString(split(tc.path)); got != tc.want {
			t.Errorf("%q.MatchString(%q) = %v, want %v", tc.expr, tc.path, got, tc.want)
		}
	}
}

func TestMinMaxLen(t *testing.T) {
	e := MustParse("a{3}b{2}c")
	if e.MinLen() != 3 {
		t.Errorf("MinLen = %d, want 3", e.MinLen())
	}
	if max, ok := e.MaxLen(); !ok || max != 6 {
		t.Errorf("MaxLen = %d,%v, want 6,true", max, ok)
	}
	e = MustParse("a+b")
	if _, ok := e.MaxLen(); ok {
		t.Error("MaxLen of unbounded expression should report infinite")
	}
}

func TestColorsAndWildcard(t *testing.T) {
	e := MustParse("a{2} b _ a+")
	if got := e.Colors(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Errorf("Colors() = %v, want [a b]", got)
	}
	if !e.HasWildcard() {
		t.Error("HasWildcard should be true")
	}
	if MustParse("a b").HasWildcard() {
		t.Error("HasWildcard should be false")
	}
}

func TestContainsBasics(t *testing.T) {
	tests := []struct {
		a, b string
		want bool
	}{
		{"a", "a", true},
		{"a", "a{2}", true},
		{"a{2}", "a", false},
		{"a{2}", "a+", true},
		{"a+", "a{9}", false},
		{"a", "b", false},
		{"a", "_", true},
		{"_", "a", false},
		{"a b", "a b", true},
		{"a b", "_ _", true},
		{"a{2} b", "a{3} b", true},
		{"a{3} b", "a{2} b", false},
		{"a{2} b{1}", "a{1} b{2}", false}, // "a a b" is not in the RHS
		{"a{1} b{1}", "a{2} b{2}", true},
		{"a{3} a{1}", "a{1} a{3}", true}, // same single-color language 2..4
		{"a{1} a{3}", "a{3} a{1}", true},
		{"a b a", "a b{2} a", true},
		{"a+ b", "_+ b", true},
		{"_+", "a+", false},
		{"a{2} a{2}", "a{4}", true},  // lengths 2..4 ⊆ 1..4
		{"a{4}", "a{2} a{2}", false}, // "a" not in RHS
		{"fa{2} fn", "fa{2} fn", true},
		{"fa fn", "fa{2} fn", true},
		{"fa{2} fn", "fa fn", false},
	}
	for _, tc := range tests {
		a, b := MustParse(tc.a), MustParse(tc.b)
		if got := Contains(a, b); got != tc.want {
			t.Errorf("Contains(%q, %q) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestEquivalent(t *testing.T) {
	tests := []struct {
		a, b string
		want bool
	}{
		{"a{3} a{1}", "a{1} a{3}", true},
		{"a{2} a{2}", "a{1} a{3}", true},
		{"a", "a", true},
		{"a", "a{2}", false},
		{"a b", "b a", false},
		{"a+ a", "a a+", true}, // both are "two or more a's"
	}
	for _, tc := range tests {
		if got := Equivalent(MustParse(tc.a), MustParse(tc.b)); got != tc.want {
			t.Errorf("Equivalent(%q, %q) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestLinearContainsAgreesOnPaperCases(t *testing.T) {
	// On the cases the paper's proof analyses (same atom count, matching
	// colors, single-color or wildcard-generalized positions), the linear
	// scan and the exact check must agree.
	tests := []struct{ a, b string }{
		{"a{2} b", "a{3} b"},
		{"a{3} b", "a{2} b"},
		{"a b c", "_ _ _"},
		{"a{2} b{2}", "a{2} b{3}"},
		{"a+ b", "a+ b"},
		{"a b", "a+ b"},
	}
	for _, tc := range tests {
		a, b := MustParse(tc.a), MustParse(tc.b)
		lin, exact := LinearContains(a, b), Contains(a, b)
		if lin != exact {
			t.Errorf("LinearContains(%q,%q)=%v but Contains=%v", tc.a, tc.b, lin, exact)
		}
	}
}

// ---- property tests -----------------------------------------------------

// genExpr builds a random expression over alphabet {a, b, _} with bounded
// atoms (plus occasional unbounded) for exhaustive cross-validation.
func genExpr(r *rand.Rand, maxAtoms, maxBound int) Expr {
	n := 1 + r.Intn(maxAtoms)
	atoms := make([]Atom, n)
	colors := []string{"a", "b", Wildcard}
	for i := range atoms {
		c := colors[r.Intn(len(colors))]
		var m int
		if r.Intn(6) == 0 {
			m = Unbounded
		} else {
			m = 1 + r.Intn(maxBound)
		}
		atoms[i] = Atom{Color: c, Max: m}
	}
	return MustNew(atoms...)
}

// enumerate yields all strings over alphabet up to maxLen and reports
// whether each is in L(e), collecting the accepted set as joined strings.
func accepted(e Expr, alphabet []string, maxLen int) map[string]bool {
	out := map[string]bool{}
	var walk func(prefix []string)
	walk = func(prefix []string) {
		if len(prefix) > 0 && e.MatchString(prefix) {
			out[strings.Join(prefix, " ")] = true
		}
		if len(prefix) == maxLen {
			return
		}
		for _, c := range alphabet {
			walk(append(prefix, c))
		}
	}
	walk(nil)
	return out
}

// TestContainsMatchesBruteForce cross-validates the automaton containment
// check against exhaustive string enumeration on random expressions.
func TestContainsMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	alphabet := []string{"a", "b", "c"} // "c" plays the fresh symbol
	const maxLen = 6
	for i := 0; i < 300; i++ {
		e1 := genExpr(r, 3, 2)
		e2 := genExpr(r, 3, 2)
		got := Contains(e1, e2)
		s1 := accepted(e1, alphabet, maxLen)
		s2 := accepted(e2, alphabet, maxLen)
		want := true
		for s := range s1 {
			if !s2[s] {
				want = false
				break
			}
		}
		// Brute force is only complete up to maxLen; when the exact check
		// says "not contained" but enumeration found no counterexample the
		// witness may be longer, so only flag disagreements where the
		// enumeration *did* find a counterexample, or where bounded
		// languages fit entirely within maxLen.
		m1, fin1 := e1.MaxLen()
		complete := fin1 && m1 <= maxLen
		if got && !want {
			t.Fatalf("case %d: Contains(%v, %v) = true but counterexample exists", i, e1, e2)
		}
		if !got && want && complete {
			t.Fatalf("case %d: Contains(%v, %v) = false but all of L(a) ⊆ L(b) (bounded)", i, e1, e2)
		}
	}
}

// TestMatchStringMembershipConsistency: any string accepted must have
// length within [MinLen, MaxLen].
func TestMatchStringMembershipConsistency(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := genExpr(r, 4, 3)
		alphabet := []string{"a", "b", "x"}
		for s := range accepted(e, alphabet, 7) {
			n := len(strings.Split(s, " "))
			if n < e.MinLen() {
				return false
			}
			if max, ok := e.MaxLen(); ok && n > max {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestContainsReflexiveTransitive: containment is a preorder.
func TestContainsReflexiveTransitive(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	exprs := make([]Expr, 12)
	for i := range exprs {
		exprs[i] = genExpr(r, 3, 3)
	}
	for _, e := range exprs {
		if !Contains(e, e) {
			t.Fatalf("Contains(%v, %v) should be reflexive", e, e)
		}
	}
	for _, a := range exprs {
		for _, b := range exprs {
			for _, c := range exprs {
				if Contains(a, b) && Contains(b, c) && !Contains(a, c) {
					t.Fatalf("transitivity violated: %v ⊆ %v ⊆ %v", a, b, c)
				}
			}
		}
	}
}

func TestAtomString(t *testing.T) {
	tests := []struct {
		a    Atom
		want string
	}{
		{Atom{"a", 1}, "a"},
		{Atom{"a", 4}, "a{4}"},
		{Atom{"a", Unbounded}, "a+"},
		{Atom{Wildcard, 2}, "_{2}"},
	}
	for _, tc := range tests {
		if got := tc.a.String(); got != tc.want {
			t.Errorf("Atom%v.String() = %q, want %q", tc.a, got, tc.want)
		}
	}
}

func BenchmarkMatchString(b *testing.B) {
	e := MustParse("fa{2} fn sr{6} fr _{3}")
	path := split("fa fa fn sr sr sr fr x y z")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.MatchString(path)
	}
}

func BenchmarkContainsExact(b *testing.B) {
	x := MustParse("a{3} b{2} a+ _{4}")
	y := MustParse("a{4} b{3} a+ _{5}")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Contains(x, y)
	}
}

func ExampleParse() {
	e := MustParse("fa{2} fn")
	fmt.Println(e)
	fmt.Println(e.MatchString([]string{"fa", "fn"}))
	fmt.Println(e.MatchString([]string{"fn"}))
	// Output:
	// fa{2} fn
	// true
	// false
}

func ExampleContains() {
	fmt.Println(Contains(MustParse("fa fn"), MustParse("fa{2} fn")))
	fmt.Println(Contains(MustParse("fa{2} fn"), MustParse("fa fn")))
	// Output:
	// true
	// false
}
