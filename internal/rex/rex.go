// Package rex implements the restricted subclass F of regular expressions
// used by the paper's reachability and graph pattern queries:
//
//	F ::= c | c{k} | c+ | F F
//
// where c is an edge color (an identifier) or the wildcard "_", k is a
// positive integer, c{k} denotes between 1 and k occurrences of c, and c+
// denotes one or more occurrences. An expression is therefore a
// concatenation of atoms, each atom being a color (or wildcard) with an
// occurrence bound.
//
// The language L(F) is the set of color strings w that can be split into
// len(atoms) consecutive non-empty blocks, block i containing between 1 and
// Max_i symbols, each symbol equal to the atom's color (any symbol when the
// atom is the wildcard).
//
// Unlike general regular expressions, whose containment problem is
// PSPACE-complete, containment for this subclass is cheap; the package
// provides both the paper's linear scan (Proposition 3.3, case 3) and an
// exact symbolic-automaton check that is correct for the whole subclass.
package rex

import (
	"fmt"
	"strconv"
	"strings"
)

// Wildcard is the color that matches any edge color.
const Wildcard = "_"

// Unbounded marks an atom of the form c+ (one or more occurrences).
const Unbounded = -1

// Atom is one component of a subclass-F expression: a color (or the
// wildcard) together with an occurrence bound. Max is either Unbounded for
// "c+" or a positive integer k for "c{k}"; a bare color parses as Max = 1.
type Atom struct {
	Color string
	Max   int
}

// IsWildcard reports whether the atom matches any edge color.
func (a Atom) IsWildcard() bool { return a.Color == Wildcard }

// Matches reports whether a single edge color satisfies the atom's color
// constraint.
func (a Atom) Matches(color string) bool {
	return a.Color == Wildcard || a.Color == color
}

// String renders the atom in the package's concrete syntax.
func (a Atom) String() string {
	switch {
	case a.Max == Unbounded:
		return a.Color + "+"
	case a.Max == 1:
		return a.Color
	default:
		return a.Color + "{" + strconv.Itoa(a.Max) + "}"
	}
}

// Expr is a subclass-F regular expression: a non-empty concatenation of
// atoms. The zero value is invalid; construct expressions with Parse or
// New.
type Expr struct {
	atoms []Atom
}

// New builds an expression from atoms. It returns an error if the atom
// list is empty or any atom has an invalid color or bound.
func New(atoms ...Atom) (Expr, error) {
	if len(atoms) == 0 {
		return Expr{}, fmt.Errorf("rex: expression must have at least one atom")
	}
	for _, a := range atoms {
		if a.Color == "" {
			return Expr{}, fmt.Errorf("rex: atom with empty color")
		}
		if a.Max != Unbounded && a.Max < 1 {
			return Expr{}, fmt.Errorf("rex: atom %q has invalid bound %d", a.Color, a.Max)
		}
	}
	cp := make([]Atom, len(atoms))
	copy(cp, atoms)
	return Expr{atoms: cp}, nil
}

// MustNew is New but panics on error; intended for tests and package-level
// literals.
func MustNew(atoms ...Atom) Expr {
	e, err := New(atoms...)
	if err != nil {
		panic(err)
	}
	return e
}

// Atoms returns the expression's atoms. The returned slice must not be
// modified.
func (e Expr) Atoms() []Atom { return e.atoms }

// Len returns the number of atoms, the paper's |F| metric.
func (e Expr) Len() int { return len(e.atoms) }

// IsZero reports whether e is the invalid zero value.
func (e Expr) IsZero() bool { return len(e.atoms) == 0 }

// MinLen returns the length of the shortest string in L(e), which is the
// number of atoms (every atom consumes at least one symbol).
func (e Expr) MinLen() int { return len(e.atoms) }

// MaxLen returns the length of the longest string in L(e) and true, or 0
// and false if the language is infinite (some atom is unbounded).
func (e Expr) MaxLen() (int, bool) {
	total := 0
	for _, a := range e.atoms {
		if a.Max == Unbounded {
			return 0, false
		}
		total += a.Max
	}
	return total, true
}

// Colors returns the distinct concrete colors mentioned by the expression,
// in first-appearance order. The wildcard is not included.
func (e Expr) Colors() []string {
	seen := make(map[string]bool, len(e.atoms))
	var out []string
	for _, a := range e.atoms {
		if a.Color != Wildcard && !seen[a.Color] {
			seen[a.Color] = true
			out = append(out, a.Color)
		}
	}
	return out
}

// HasWildcard reports whether any atom is the wildcard.
func (e Expr) HasWildcard() bool {
	for _, a := range e.atoms {
		if a.Color == Wildcard {
			return true
		}
	}
	return false
}

// String renders the expression in the concrete syntax accepted by Parse.
func (e Expr) String() string {
	var b strings.Builder
	for i, a := range e.atoms {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(a.String())
	}
	return b.String()
}

// Parse parses the concrete syntax for subclass F. Colors are identifiers
// made of letters, digits, '-' and '.', or the wildcard "_"; each color may
// be followed by "{k}" (between 1 and k occurrences) or "+" (one or more).
// Atoms may be separated by optional whitespace. Examples:
//
//	"fa{2}fn"   — at most two fa edges followed by one fn edge
//	"ic{2} dc+" — at most two ic edges then one or more dc edges
//	"_{3}"      — a path of length 1 to 3 with arbitrary colors
func Parse(input string) (Expr, error) {
	var atoms []Atom
	i, n := 0, len(input)
	for i < n {
		switch {
		case input[i] == ' ' || input[i] == '\t':
			i++
		case isColorByte(input[i]):
			start := i
			for i < n && isColorByte(input[i]) {
				i++
			}
			color := input[start:i]
			if strings.Contains(color, Wildcard) && color != Wildcard {
				return Expr{}, fmt.Errorf("rex: %q: '_' is reserved for the wildcard", color)
			}
			atom := Atom{Color: color, Max: 1}
			if i < n && input[i] == '+' {
				atom.Max = Unbounded
				i++
			} else if i < n && input[i] == '{' {
				close := strings.IndexByte(input[i:], '}')
				if close < 0 {
					return Expr{}, fmt.Errorf("rex: unterminated bound after %q", color)
				}
				k, err := strconv.Atoi(input[i+1 : i+close])
				if err != nil || k < 1 {
					return Expr{}, fmt.Errorf("rex: invalid bound %q after %q", input[i+1:i+close], color)
				}
				atom.Max = k
				i += close + 1
			}
			atoms = append(atoms, atom)
		default:
			return Expr{}, fmt.Errorf("rex: unexpected character %q at offset %d", input[i], i)
		}
	}
	return New(atoms...)
}

// MustParse is Parse but panics on error.
func MustParse(input string) Expr {
	e, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return e
}

func isColorByte(b byte) bool {
	return b == '_' || b == '-' || b == '.' ||
		(b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z') || (b >= '0' && b <= '9')
}

// MatchString reports whether the color string (one color per path edge)
// belongs to L(e). It runs the linear automaton for e over the string in
// O(len(colors) · Len(e)) time with no allocation beyond two state sets.
func (e Expr) MatchString(colors []string) bool {
	if len(colors) < len(e.atoms) {
		return false // each atom consumes at least one symbol
	}
	// State (i, j): consumed j symbols of atom i, 1 <= j <= bound. For the
	// automaton we track, per atom, whether we are inside it and whether we
	// may still consume more of it; counts are tracked exactly for bounded
	// atoms via a per-atom consumed counter in the state set.
	type state struct{ atom, used int }
	cur := make(map[state]bool)
	// Consume the first symbol: it must start atom 0.
	if !e.atoms[0].Matches(colors[0]) {
		return false
	}
	cur[state{0, 1}] = true
	for _, c := range colors[1:] {
		next := make(map[state]bool, len(cur))
		for s := range cur {
			a := e.atoms[s.atom]
			// Stay in the same atom if the bound allows another symbol.
			if (a.Max == Unbounded || s.used < a.Max) && a.Matches(c) {
				used := s.used + 1
				if a.Max == Unbounded {
					used = 1 // unbounded atoms need no exact count
				}
				next[state{s.atom, used}] = true
			}
			// Advance to the next atom.
			if s.atom+1 < len(e.atoms) && e.atoms[s.atom+1].Matches(c) {
				next[state{s.atom + 1, 1}] = true
			}
		}
		if len(next) == 0 {
			return false
		}
		cur = next
	}
	for s := range cur {
		if s.atom == len(e.atoms)-1 {
			return true
		}
	}
	return false
}
