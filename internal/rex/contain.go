package rex

import (
	"sort"
	"strconv"
	"strings"
)

// Contains reports whether L(a) ⊆ L(b). It is exact for the whole subclass
// F: both expressions are compiled to small linear automata and the product
// of a with the determinized b is searched for a counterexample. The state
// space is tiny for query-sized expressions (the paper bounds expression
// length by a handful of atoms), so this runs in microseconds while
// remaining correct where the paper's linear scan (LinearContains) is only
// a heuristic.
func Contains(a, b Expr) bool {
	if a.IsZero() || b.IsZero() {
		return false
	}
	// Cheap necessary conditions first.
	if a.MinLen() < b.MinLen() {
		return false // b cannot produce a's shortest string
	}
	amax, afin := a.MaxLen()
	bmax, bfin := b.MaxLen()
	if bfin && !afin {
		return false // a is infinite, b is finite
	}
	if bfin && afin && amax > bmax {
		return false
	}
	na := compile(a)
	nb := compile(b)
	alphabet := productAlphabet(a, b)
	// Search the product of na (NFA, explored per nondeterministic branch)
	// with the subset construction of nb for a reachable configuration
	// where na accepts and nb cannot.
	type cfg struct {
		qa  int
		key string // canonical subset of nb states
	}
	startB := []int{nb.start}
	visited := map[cfg]bool{}
	stack := []struct {
		qa int
		sb []int
	}{{na.start, startB}}
	visited[cfg{na.start, subsetKey(startB)}] = true
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, sym := range alphabet {
			nextB := nb.step(cur.sb, sym)
			bAccepts := false
			for _, q := range nextB {
				if nb.accept[q] {
					bAccepts = true
					break
				}
			}
			for _, qa := range na.stepOne(cur.qa, sym) {
				if na.accept[qa] && !bAccepts {
					return false // counterexample string found
				}
				c := cfg{qa, subsetKey(nextB)}
				if !visited[c] {
					visited[c] = true
					stack = append(stack, struct {
						qa int
						sb []int
					}{qa, nextB})
				}
			}
		}
	}
	return true
}

// Equivalent reports whether L(a) = L(b).
func Equivalent(a, b Expr) bool {
	return Contains(a, b) && Contains(b, a)
}

// LinearContains is the paper's linear-time sequential scan for language
// containment (proof of Proposition 3.3, case 3). It requires the two
// expressions to have the same number of atoms and compares per-position
// colors and cumulative bounds. It is sound and complete on single-color
// runs (the case the paper analyses) but only a heuristic across color
// boundaries; Contains is the exact check. Exposed for the ablation
// benchmark comparing the two.
func LinearContains(a, b Expr) bool {
	if a.Len() != b.Len() {
		return false
	}
	sumA, sumB := 0, 0
	for i := range a.atoms {
		aa, ba := a.atoms[i], b.atoms[i]
		// Color compatibility: every string of aa's block must be accepted
		// by ba's color, so ba must be the same color or the wildcard.
		if ba.Color != Wildcard && ba.Color != aa.Color {
			return false
		}
		if aa.Max == Unbounded {
			sumA = Unbounded
		}
		if ba.Max == Unbounded {
			sumB = Unbounded
		}
		if sumA != Unbounded {
			sumA += aa.Max
		}
		if sumB != Unbounded {
			sumB += ba.Max
		}
	}
	if sumB == Unbounded {
		return true
	}
	if sumA == Unbounded {
		return false
	}
	return sumA <= sumB
}

// ---- linear automata for subclass F -----------------------------------

// nfa is the linear automaton of an expression. State 0 is the start
// state; each bounded atom i with bound k contributes k states (one per
// consumed occurrence), each unbounded atom one self-looping state.
type nfa struct {
	start  int
	accept map[int]bool
	// trans[q] lists (color, next) pairs; color may be the wildcard.
	trans map[int][]nfaEdge
}

type nfaEdge struct {
	color string
	to    int
}

func compile(e Expr) nfa {
	n := nfa{start: 0, accept: map[int]bool{}, trans: map[int][]nfaEdge{}}
	next := 1
	// firstState[i] is the state after consuming the first symbol of atom i.
	firstState := make([]int, len(e.atoms))
	lastStates := make([][]int, len(e.atoms)) // states within atom i
	for i, a := range e.atoms {
		count := a.Max
		if a.Max == Unbounded {
			count = 1
		}
		states := make([]int, count)
		for j := 0; j < count; j++ {
			states[j] = next
			next++
		}
		firstState[i] = states[0]
		lastStates[i] = states
		// Intra-atom transitions.
		for j := 0; j+1 < count; j++ {
			n.trans[states[j]] = append(n.trans[states[j]], nfaEdge{a.Color, states[j+1]})
		}
		if a.Max == Unbounded {
			n.trans[states[0]] = append(n.trans[states[0]], nfaEdge{a.Color, states[0]})
		}
	}
	// Entry into atom 0 from the start state.
	n.trans[0] = append(n.trans[0], nfaEdge{e.atoms[0].Color, firstState[0]})
	// Transitions from every state of atom i into atom i+1.
	for i := 0; i+1 < len(e.atoms); i++ {
		for _, q := range lastStates[i] {
			n.trans[q] = append(n.trans[q], nfaEdge{e.atoms[i+1].Color, firstState[i+1]})
		}
	}
	for _, q := range lastStates[len(e.atoms)-1] {
		n.accept[q] = true
	}
	return n
}

// stepOne returns the states reachable from q on symbol sym. The fresh
// symbol (see productAlphabet) is matched only by wildcard edges.
func (n nfa) stepOne(q int, sym string) []int {
	var out []int
	for _, e := range n.trans[q] {
		if e.color == Wildcard || e.color == sym {
			out = append(out, e.to)
		}
	}
	return out
}

// step returns the deduplicated set of states reachable from any state in
// set on symbol sym, sorted for canonical keys.
func (n nfa) step(set []int, sym string) []int {
	seen := map[int]bool{}
	for _, q := range set {
		for _, e := range n.trans[q] {
			if e.color == Wildcard || e.color == sym {
				seen[e.to] = true
			}
		}
	}
	out := make([]int, 0, len(seen))
	for q := range seen {
		out = append(out, q)
	}
	sort.Ints(out)
	return out
}

// freshSymbol stands for "any edge color not mentioned by either
// expression". One such symbol suffices because both automata treat all
// unmentioned colors identically (only wildcard edges match them).
const freshSymbol = "\x00fresh"

func productAlphabet(a, b Expr) []string {
	seen := map[string]bool{}
	var out []string
	for _, e := range [2]Expr{a, b} {
		for _, c := range e.Colors() {
			if !seen[c] {
				seen[c] = true
				out = append(out, c)
			}
		}
	}
	if a.HasWildcard() || b.HasWildcard() {
		out = append(out, freshSymbol)
	}
	return out
}

func subsetKey(set []int) string {
	var sb strings.Builder
	for i, q := range set {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Itoa(q))
	}
	return sb.String()
}
