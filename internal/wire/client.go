package wire

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// PostStream is the client side of the wire: it streams the request
// lines to a /v1/query endpoint and invokes fn for every response line
// as it arrives, with both the raw line (for pass-through) and the
// decoded Response. The upload runs through a pipe, so a server
// stalling its body reads (admission-bound flow control) back-pressures
// request production here too. A non-nil error from fn stops the read
// loop and is returned. cmd/rgquery -remote and bench.ServerThroughput
// share this one implementation.
func PostStream(url string, reqs []Request, fn func(raw []byte, resp *Response) error) error {
	pr, pw := io.Pipe()
	go func() {
		enc := json.NewEncoder(pw)
		for i := range reqs {
			if err := enc.Encode(&reqs[i]); err != nil {
				pw.CloseWithError(err)
				return
			}
		}
		pw.Close()
	}()
	httpResp, err := http.Post(url, "application/x-ndjson", pr)
	if err != nil {
		return err
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(httpResp.Body, 4<<10))
		return fmt.Errorf("wire: %s: %s", httpResp.Status, strings.TrimSpace(string(body)))
	}
	sc := bufio.NewScanner(httpResp.Body)
	sc.Buffer(make([]byte, 64<<10), MaxResponseLineBytes)
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var resp Response
		if err := json.Unmarshal(line, &resp); err != nil {
			return fmt.Errorf("wire: malformed response line %q: %w", line, err)
		}
		if err := fn(line, &resp); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("wire: response stream: %w", err)
	}
	return nil
}
