package wire

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// PostStream is the client side of the wire: it streams the request
// lines to a /v1/query endpoint and invokes fn for every response line
// as it arrives, with both the raw line (for pass-through) and the
// decoded Response. The upload runs through a pipe, so a server
// stalling its body reads (admission-bound flow control) back-pressures
// request production here too. A non-nil error from fn stops the read
// loop and is returned. cmd/rgquery -remote and bench.ServerThroughput
// share this one implementation.
func PostStream(url string, reqs []Request, fn func(raw []byte, resp *Response) error) error {
	_, err := postStream(url, reqs, fn)
	return err
}

// PostStreamRetry is PostStream with a bounded dial-retry loop: when the
// POST fails at the transport level — connection refused because the
// server has not bound its port yet, or reset before a response arrived
// — the attempt is retried up to retries times, sleeping backoff, 2×
// backoff, 4× backoff (capped at 2s) between attempts. Only attempts
// that never produced an HTTP response are retried: once a status line
// has been read, fn may have observed response lines, and re-sending
// the batch could double-deliver — such errors return immediately.
// Requests on this path must therefore be idempotent reads, which every
// wire request is.
func PostStreamRetry(url string, reqs []Request, fn func(raw []byte, resp *Response) error, retries int, backoff time.Duration) error {
	const maxBackoff = 2 * time.Second
	d := backoff
	for attempt := 0; ; attempt++ {
		connected, err := postStream(url, reqs, fn)
		if err == nil || connected || attempt >= retries {
			return err
		}
		if d > 0 {
			time.Sleep(d)
			if d *= 2; d > maxBackoff {
				d = maxBackoff
			}
		}
	}
}

// postStream runs one POST attempt. connected reports whether an HTTP
// response arrived — the retry-safety boundary: while false, fn has
// never been invoked and the server never saw a complete request.
func postStream(url string, reqs []Request, fn func(raw []byte, resp *Response) error) (connected bool, err error) {
	pr, pw := io.Pipe()
	go func() {
		enc := json.NewEncoder(pw)
		for i := range reqs {
			if err := enc.Encode(&reqs[i]); err != nil {
				pw.CloseWithError(err)
				return
			}
		}
		pw.Close()
	}()
	return postLines(url, pr, func(line []byte) error {
		var resp Response
		if err := json.Unmarshal(line, &resp); err != nil {
			return fmt.Errorf("wire: malformed response line %q: %w", line, err)
		}
		return fn(line, &resp)
	})
}

// PostLines streams an arbitrary NDJSON body to url and invokes fn for
// every non-blank response line, raw — the transport under PostStream,
// exported for streams whose line schemas are not Request/Response
// (the mutation endpoint's Op/Ack/Summary lines, the subscribe
// endpoint's Delta lines). A non-nil error from fn stops the read loop
// and is returned. The body is consumed as the server reads it, so a
// server that stalls its reads (admission flow control, a chunked
// apply loop) back-pressures the producer behind body.
func PostLines(url string, body io.Reader, fn func(line []byte) error) error {
	_, err := postLines(url, body, fn)
	return err
}

// postLines is the shared POST core: send body, scan the NDJSON reply,
// hand every non-blank line to fn. connected reports whether an HTTP
// response arrived (the retry-safety boundary PostStreamRetry relies
// on); a non-200 status is rendered into an error with the (truncated)
// response body.
func postLines(url string, body io.Reader, fn func(line []byte) error) (connected bool, err error) {
	httpResp, err := http.Post(url, "application/x-ndjson", body)
	if err != nil {
		return false, err
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(httpResp.Body, 4<<10))
		return true, fmt.Errorf("wire: %s: %s", httpResp.Status, strings.TrimSpace(string(b)))
	}
	sc := bufio.NewScanner(httpResp.Body)
	sc.Buffer(make([]byte, 64<<10), MaxResponseLineBytes)
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		if err := fn(line); err != nil {
			return true, err
		}
	}
	if err := sc.Err(); err != nil {
		return true, fmt.Errorf("wire: response stream: %w", err)
	}
	return true, nil
}
