// Package wire defines the NDJSON wire format shared by the HTTP query
// service (internal/server, cmd/rgserve) and the CLI clients
// (cmd/rgquery -stream and -remote): one JSON object per line, requests
// in, responses out, streamed in completion order.
//
// A request line names exactly one query — a reachability query as its
// three text fields, or a pattern query as embedded qlang text:
//
//	{"id":1,"rq":{"from":"job = doctor","to":"*","expr":"fa{2} fn"}}
//	{"id":2,"pq":"node A *\nnode B job = doctor\nedge A B fn+"}
//	{"id":3,"rq":{"from":"*","to":"*","expr":"_+"},"count":true}
//	{"id":4,"rq":{"expr":"fn"},"priority":6,"deadline_ms":250}
//
// The id is optional; lines without one are numbered by their ordinal
// (0-based) in the stream. "count":true asks for the answer cardinality
// only — the service streams pairs through an Emit callback and never
// materializes them, so huge answers cost no resident memory.
// "priority" and "deadline_ms" are the QoS knobs: the scheduling band
// and the latency budget from server receipt (see Request); a request
// whose budget runs out before evaluation is shed with error_kind
// "shed".
//
// A response line echoes the id and carries the answer, a structured
// per-line error, and the evaluation latency:
//
//	{"id":1,"kind":"rq","count":2,"pairs":[[0,3],[7,3]],"latency_us":412}
//	{"id":2,"kind":"pq","count":1,"match":[{"from":"A","to":"B","expr":"fn+","pairs":[[4,9]]}],"latency_us":88}
//	{"id":3,"error":"qlang: rq expr: ...","latency_us":0}
//
// Malformed lines yield an error response for that line only; the
// stream continues. The schema is covered by golden-file tests
// (testdata/*.golden) — change it there first.
package wire

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"regraph/internal/engine"
	"regraph/internal/pattern"
	"regraph/internal/qlang"
	"regraph/internal/reach"
)

// MaxLineBytes bounds one NDJSON request line; longer lines are a
// stream-level error, because a line-oriented reader cannot
// resynchronize past an oversized record.
const MaxLineBytes = 1 << 20

// MaxResponseLineBytes is the response-side scanner bound for clients.
// A materialized RQ answer legitimately grows with the graph (tens of
// bytes per pair), so response lines get far more headroom than
// request lines; clients that expect huge answers should send
// "count":true or page their queries instead of raising this further.
const MaxResponseLineBytes = 64 << 20

// Request is one NDJSON request line: exactly one of RQ/PQ must be set.
type Request struct {
	// ID tags the request's response. Optional: when absent the decoder
	// assigns the line's 0-based ordinal in the stream.
	ID *uint64 `json:"id,omitempty"`

	// RQ is a reachability query given as its three text fields.
	RQ *RQSpec `json:"rq,omitempty"`

	// PQ is a pattern query as qlang text (newline-separated node/edge
	// declarations; see internal/qlang).
	PQ string `json:"pq,omitempty"`

	// Count, on an RQ, requests only the answer cardinality: the service
	// counts pairs through a streaming Emit callback and the response
	// carries count but no pairs array. Invalid on a PQ.
	Count bool `json:"count,omitempty"`

	// Priority selects the session scheduling band (engine.Request.
	// Priority): higher values receive proportionally more of the
	// workers under contention; values clamp to [0, engine.MaxPriority].
	// Zero — the default — is the lowest band.
	Priority int `json:"priority,omitempty"`

	// DeadlineMS is the request's latency budget in milliseconds,
	// counted from the moment the server compiles the line (wall-clock
	// deadlines don't survive clock skew between client and server; a
	// relative budget does). A request still queued when the budget runs
	// out is shed with error_kind "shed" instead of being evaluated; one
	// mid-evaluation is abandoned with error_kind "deadline". Zero means
	// no deadline; negative is a per-line error.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// RQSpec is the textual form of a reachability query (the syntax of
// qlang.ParseRQ: predicates may be "*" or empty for always-true).
type RQSpec struct {
	From string `json:"from,omitempty"`
	To   string `json:"to,omitempty"`
	Expr string `json:"expr"`
}

// Response is one NDJSON response line.
type Response struct {
	// ID echoes the request id (or the line ordinal when none was given).
	ID uint64 `json:"id"`

	// Kind is "rq" or "pq"; empty when the line never compiled to a
	// query. The sentinel "stream" marks an error of the stream itself
	// (unreadable request body) rather than of the request whose id the
	// line carries — id is meaningless on such lines.
	Kind string `json:"kind,omitempty"`

	// Query optionally echoes the query's text form (rgquery -stream sets
	// it; the server leaves it empty — clients have the request line).
	Query string `json:"query,omitempty"`

	// Count is the total number of answer pairs (across all pattern
	// edges for a PQ). Present even when pairs were streamed, not sent.
	Count int `json:"count"`

	// Pairs is the RQ answer as [from,to] node-id pairs; omitted for
	// count-only requests, PQs and empty answers.
	Pairs [][2]int64 `json:"pairs,omitempty"`

	// Match is the PQ answer: one entry per pattern edge.
	Match []MatchEdge `json:"match,omitempty"`

	// Err is the structured per-line error: a parse/compile failure, an
	// evaluation error, or a cancellation (deadline, shutdown).
	Err string `json:"error,omitempty"`

	// ErrKind classifies Err for programmatic handling: "shed" (the
	// deadline budget expired before evaluation began — the request was
	// never run), "deadline" (evaluation was abandoned at the deadline),
	// "canceled" (session or stream cancellation), "unavailable" (the
	// replica router exhausted its retry policy or found no live replica
	// — the request was shed at the routing tier, not evaluated). Empty
	// for success and for parse/evaluation errors.
	ErrKind string `json:"error_kind,omitempty"`

	// LatencyUS is the evaluation time in microseconds, excluding queue
	// wait; zero for requests that never ran.
	LatencyUS float64 `json:"latency_us"`
}

// MatchEdge is one pattern edge's match set in a PQ response.
type MatchEdge struct {
	From  string     `json:"from"`
	To    string     `json:"to"`
	Expr  string     `json:"expr"`
	Pairs [][2]int64 `json:"pairs"`
}

// Delta kinds (Delta.Kind): the three line shapes of a /v1/subscribe
// stream.
const (
	DeltaInit  = "init"  // subscription snapshot: full answer at Gen
	DeltaDelta = "delta" // one committed batch changed the answer
	DeltaEnd   = "end"   // stream over; Err says why when abnormal
)

// Delta is one NDJSON line of a standing-query stream (POST
// /v1/subscribe). The first line is always kind "init" — the full
// answer at the generation the subscription registered against. Every
// later "delta" line reports one committed mutation batch that changed
// the answer: Count and Match describe the full answer at Gen, while
// Added and Removed list, per pattern edge, exactly the pairs that
// entered and left it since the previous line (edges with no change are
// omitted — MatchEdge names identify them positionally-independently).
// The final "end" line closes the stream; Err distinguishes an abnormal
// end ("lagged": the consumer fell behind the commit stream and must
// re-subscribe for a fresh snapshot; "draining": the server is shutting
// down) from the client simply going away.
//
//	{"gen":4,"kind":"init","count":2,"match":[{"from":"A","to":"B","expr":"fn+","pairs":[[0,3],[7,3]]}]}
//	{"gen":5,"kind":"delta","count":3,"added":[{"from":"A","to":"B","expr":"fn+","pairs":[[9,3]]}]}
//	{"gen":7,"kind":"end","count":0,"error":"lagged"}
type Delta struct {
	Gen   uint64 `json:"gen"`
	Kind  string `json:"kind"`
	Count int    `json:"count"`

	// Match is the full answer (init lines; delta lines omit it — the
	// client folds Added/Removed into its copy of the init answer).
	Match []MatchEdge `json:"match,omitempty"`

	// Added and Removed are the per-edge pair deltas since the previous
	// line (delta lines only).
	Added   []MatchEdge `json:"added,omitempty"`
	Removed []MatchEdge `json:"removed,omitempty"`

	Err string `json:"error,omitempty"`

	// ErrKind classifies Err like Response.ErrKind: "read_only" when a
	// routing tier with no writer upstream refused the subscription.
	ErrKind string `json:"error_kind,omitempty"`
}

// DeltaEdges converts per-edge pair sets (indexed like q's edges, as
// engine.StandingUpdate carries them) to the wire representation,
// omitting edges with no pairs — the MatchEdge names identify each
// edge, so positions need not line up with the pattern.
func DeltaEdges(q *pattern.Query, sets [][]reach.Pair) []MatchEdge {
	var out []MatchEdge
	for i, ps := range sets {
		if len(ps) == 0 {
			continue
		}
		e := q.Edge(i)
		out = append(out, MatchEdge{
			From:  q.Node(e.From).Name,
			To:    q.Node(e.To).Name,
			Expr:  e.Expr.String(),
			Pairs: PairsOf(ps),
		})
	}
	return out
}

// LineError reports one malformed request line. It is recoverable: the
// decoder has consumed the line and Next may be called again.
type LineError struct {
	Line int // physical line number, 1-based
	Err  error
}

func (e *LineError) Error() string { return fmt.Sprintf("wire: line %d: %v", e.Line, e.Err) }
func (e *LineError) Unwrap() error { return e.Err }

// Decoder reads NDJSON request lines. Blank lines are skipped; a
// malformed line yields a *LineError (recoverable — keep calling Next);
// any other error is a stream-level failure.
type Decoder struct {
	sc   *bufio.Scanner
	line int    // physical line number of the last scanned line
	ord  uint64 // request ordinal: counts consumed non-blank lines
}

// NewDecoder wraps r in a request decoder accepting lines up to
// MaxLineBytes.
func NewDecoder(r io.Reader) *Decoder {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), MaxLineBytes)
	return &Decoder{sc: sc}
}

// Next returns the next request. At end of input it returns io.EOF. A
// malformed line returns a *LineError together with a Request whose ID
// is the line's assigned ordinal, so the caller can attribute an error
// response; decoding then continues on the following line.
func (d *Decoder) Next() (Request, error) {
	for d.sc.Scan() {
		d.line++
		text := strings.TrimSpace(d.sc.Text())
		if text == "" {
			continue
		}
		id := d.ord
		d.ord++
		var req Request
		if err := json.Unmarshal([]byte(text), &req); err != nil {
			return Request{ID: &id}, &LineError{Line: d.line, Err: err}
		}
		if req.ID == nil {
			req.ID = &id
		}
		return req, nil
	}
	if err := d.sc.Err(); err != nil {
		return Request{}, fmt.Errorf("wire: read: %w", err)
	}
	return Request{}, io.EOF
}

// Compile parses the request's text into an evaluable engine request
// and reports its kind ("rq" or "pq"). The error, if any, is a per-line
// semantic error the caller should surface as an error response.
func (r *Request) Compile() (engine.Request, string, error) {
	if r.DeadlineMS < 0 {
		return engine.Request{}, "", fmt.Errorf("wire: negative deadline_ms %d", r.DeadlineMS)
	}
	// QoS fields ride on every query kind; the deadline budget starts
	// counting here, at server receipt.
	qos := engine.Request{Priority: r.Priority}
	if r.DeadlineMS > 0 {
		// Clamp before multiplying: a huge ms budget would overflow the
		// Duration to a negative value and shed the request on arrival.
		const maxMS = int64(24 * time.Hour / time.Millisecond)
		ms := r.DeadlineMS
		if ms > maxMS {
			ms = maxMS
		}
		qos.Deadline = time.Now().Add(time.Duration(ms) * time.Millisecond)
	}
	switch {
	case r.RQ != nil && r.PQ != "":
		return engine.Request{}, "", fmt.Errorf("wire: request sets both rq and pq")
	case r.RQ != nil:
		q, err := qlang.ParseRQ(r.RQ.From, r.RQ.To, r.RQ.Expr)
		if err != nil {
			return engine.Request{}, "rq", err
		}
		qos.RQ = &q
		return qos, "rq", nil
	case r.PQ != "":
		if r.Count {
			return engine.Request{}, "pq", fmt.Errorf("wire: count applies to rq requests only")
		}
		q, err := qlang.ParsePatternString(r.PQ)
		if err != nil {
			return engine.Request{}, "pq", err
		}
		qos.PQ = q
		return qos, "pq", nil
	default:
		return engine.Request{}, "", fmt.Errorf("wire: request needs rq or pq")
	}
}

// PairsOf converts an RQ answer to the wire representation.
func PairsOf(ps []reach.Pair) [][2]int64 {
	if len(ps) == 0 {
		return nil
	}
	out := make([][2]int64, len(ps))
	for i, p := range ps {
		out[i] = [2]int64{int64(p.From), int64(p.To)}
	}
	return out
}

// MatchOf converts a PQ answer to the wire representation; q must be
// the pattern the result answers (the result does not expose it).
func MatchOf(q *pattern.Query, res *pattern.Result) []MatchEdge {
	if q == nil || res.Empty() {
		return nil
	}
	out := make([]MatchEdge, q.NumEdges())
	for i := range out {
		e := q.Edge(i)
		out[i] = MatchEdge{
			From:  q.Node(e.From).Name,
			To:    q.Node(e.To).Name,
			Expr:  e.Expr.String(),
			Pairs: PairsOf(res.EdgePairs(i)),
		}
	}
	return out
}

// FromResult builds the response line for one engine result. kind and
// pq are what Compile reported for the originating request (pq may be
// nil for an RQ); count-only requests pass their streamed count and get
// no pairs array. The response id is the result's session id — callers
// that map session ids to client ids overwrite it.
func FromResult(res engine.Result, kind string, pq *pattern.Query, streamedCount int) Response {
	out := Response{
		ID:        res.ID,
		Kind:      kind,
		LatencyUS: float64(res.Elapsed.Nanoseconds()) / 1e3,
	}
	if res.Err != nil {
		out.Err = res.Err.Error()
		out.ErrKind = errKindOf(res.Err)
		return out
	}
	switch {
	case res.Match != nil:
		out.Match = MatchOf(pq, res.Match)
		out.Count = res.Match.Size()
	case res.Pairs != nil:
		out.Pairs = PairsOf(res.Pairs)
		out.Count = len(res.Pairs)
	default:
		// Streamed (Emit) or legitimately empty answer.
		out.Count = streamedCount
	}
	return out
}

// errKindOf classifies a result error for Response.ErrKind. The shed
// check must run before the generic deadline one: ErrDeadlineExpired
// deliberately also matches context.DeadlineExceeded under errors.Is.
func errKindOf(err error) string {
	switch {
	case errors.Is(err, engine.ErrDeadlineExpired):
		return "shed"
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline"
	case errors.Is(err, context.Canceled):
		return "canceled"
	default:
		return ""
	}
}

// flusher is the subset of http.Flusher / bufio.Writer the encoder
// pushes each line through, so results reach a streaming client the
// moment they complete.
type flusher interface{ Flush() }

type errFlusher interface{ Flush() error }

// Encoder writes NDJSON lines (Response, Delta, or any other
// line-schema value). It is safe for concurrent use (the service
// writes parse errors from its reader goroutine and results from its
// consumer loop); each line is flushed when the underlying writer
// supports it.
type Encoder struct {
	mu  sync.Mutex
	enc *json.Encoder
	f   flusher
	ef  errFlusher
}

// NewEncoder wraps w in a response encoder.
func NewEncoder(w io.Writer) *Encoder {
	e := &Encoder{enc: json.NewEncoder(w)}
	switch f := w.(type) {
	case flusher:
		e.f = f
	case errFlusher:
		e.ef = f
	}
	return e
}

// Encode writes one NDJSON line (and flushes it through to the client
// when the writer supports flushing).
func (e *Encoder) Encode(v any) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.enc.Encode(v); err != nil {
		return err
	}
	if e.f != nil {
		e.f.Flush()
	} else if e.ef != nil {
		return e.ef.Flush()
	}
	return nil
}
