package wire

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"regraph/internal/qlang"
	"regraph/internal/reach"
)

var update = flag.Bool("update", false, "rewrite the wire-schema golden files")

// goldenRequests are the canonical request lines: every feature of the
// request schema (explicit and implicit ids, rq, pq, count mode,
// quoted/empty predicates). Their encodings are pinned by
// testdata/requests.golden — a diff there is a wire-format change.
func goldenRequests() []Request {
	id := func(v uint64) *uint64 { return &v }
	return []Request{
		{ID: id(1), RQ: &RQSpec{From: "job = doctor", To: "*", Expr: "fa{2} fn"}},
		{ID: id(2), PQ: "node A\t*\nnode B\tjob = doctor\nedge A B\tfn+"},
		{ID: id(3), RQ: &RQSpec{From: "*", To: "*", Expr: "_+"}, Count: true},
		{RQ: &RQSpec{From: `cat = "Film & Animation", com <= 20`, Expr: "ic{2} dc+"}},
		{ID: id(5), RQ: &RQSpec{Expr: "fn"}, Priority: 6, DeadlineMS: 250},
		{ID: id(6), PQ: "node A\t*\nnode B\t*\nedge A B\tfa+", DeadlineMS: 1000},
	}
}

// goldenResponses are the canonical response lines: rq answers with and
// without pairs, a pq match, a count-only answer and a per-line error.
// Pinned by testdata/responses.golden.
func goldenResponses() []Response {
	return []Response{
		{ID: 1, Kind: "rq", Count: 2, Pairs: [][2]int64{{0, 3}, {7, 3}}, LatencyUS: 412},
		{ID: 2, Kind: "pq", Count: 1, Match: []MatchEdge{
			{From: "A", To: "B", Expr: "fn+", Pairs: [][2]int64{{4, 9}}},
		}, LatencyUS: 88.25},
		{ID: 3, Kind: "rq", Count: 12345, LatencyUS: 9.5},
		{ID: 4, Err: "wire: request needs rq or pq"},
		{ID: 5, Kind: "rq", Query: "RQ[* --fn--> *]", Count: 0, LatencyUS: 3.1},
		{ID: 6, Kind: "rq", Err: "engine: deadline expired before evaluation", ErrKind: "shed"},
		{ID: 7, Kind: "pq", Err: "context deadline exceeded", ErrKind: "deadline", LatencyUS: 251000},
		{ID: 8, Err: "router: no live replica available", ErrKind: ErrKindUnavailable},
		{ID: 9, Err: "router: stream canceled before the request was answered", ErrKind: "canceled"},
	}
}

// goldenDeltas are the canonical standing-query stream lines: the init
// snapshot, deltas with additions and removals, and both end shapes.
// Pinned by testdata/deltas.golden.
func goldenDeltas() []Delta {
	return []Delta{
		{Gen: 4, Kind: DeltaInit, Count: 2, Match: []MatchEdge{
			{From: "A", To: "B", Expr: "fn+", Pairs: [][2]int64{{0, 3}, {7, 3}}},
		}},
		{Gen: 5, Kind: DeltaDelta, Count: 3, Added: []MatchEdge{
			{From: "A", To: "B", Expr: "fn+", Pairs: [][2]int64{{9, 3}}},
		}},
		{Gen: 6, Kind: DeltaDelta, Count: 2,
			Added:   []MatchEdge{{From: "A", To: "B", Expr: "fn+", Pairs: [][2]int64{{2, 3}}}},
			Removed: []MatchEdge{{From: "A", To: "B", Expr: "fn+", Pairs: [][2]int64{{9, 3}}}}},
		{Gen: 6, Kind: DeltaEnd},
		{Gen: 7, Kind: DeltaEnd, Err: "lagged"},
	}
}

// goldenRouterStats is the canonical replica-router /v1/stats payload:
// every breaker state, readiness both ways, and all routing counters.
// Pinned by testdata/router_stats.golden.
func goldenRouterStats() RouterStats {
	return RouterStats{
		Replicas: []ReplicaStats{
			{URL: "http://replica-0:8081", State: "closed", Ready: true, InFlight: 3,
				Requests: 120, Failures: 1, BreakerOpens: 1, BreakerCloses: 1},
			{URL: "http://replica-1:8081", State: "open", Ready: false,
				Requests: 40, Failures: 9, BreakerOpens: 2, BreakerCloses: 1},
			{URL: "http://replica-2:8081", State: "half-open", Ready: true,
				Requests: 41, Failures: 3, BreakerOpens: 1, BreakerCloses: 0},
		},
		Draining:       false,
		StreamsActive:  2,
		StreamsTotal:   17,
		Requests:       180,
		Retries:        12,
		Hedges:         5,
		DupSuppressed:  4,
		Unavailable:    3,
		BudgetDenied:   2,
		ParseErrors:    1,
		WriteForwarded: 6,
		WriteRejected:  2,
		WriteErrors:    1,
	}
}

// encodeLines renders values the way the wire does: one JSON object per
// line via Encoder for responses, raw json.Marshal order for requests
// (clients encode requests with encoding/json directly).
func encodeResponses(t *testing.T, rs []Response) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	for _, r := range rs {
		if err := enc.Encode(r); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func goldenCompare(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s: wire schema drifted.\n got:\n%s\nwant:\n%s", name, got, want)
	}
}

// TestGoldenResponses pins the response schema byte for byte.
func TestGoldenResponses(t *testing.T) {
	goldenCompare(t, "responses.golden", encodeResponses(t, goldenResponses()))
}

// TestGoldenDeltas pins the standing-query stream schema: fixtures
// encode to the golden bytes, and the golden bytes decode back.
func TestGoldenDeltas(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	for _, d := range goldenDeltas() {
		if err := enc.Encode(d); err != nil {
			t.Fatal(err)
		}
	}
	goldenCompare(t, "deltas.golden", buf.Bytes())

	data, err := os.ReadFile(filepath.Join("testdata", "deltas.golden"))
	if err != nil {
		t.Fatal(err)
	}
	want := goldenDeltas()
	for i, line := range bytes.Split(bytes.TrimSpace(data), []byte("\n")) {
		var back Delta
		if err := json.Unmarshal(line, &back); err != nil {
			t.Fatalf("line %d: %v", i+1, err)
		}
		if !reflect.DeepEqual(back, want[i]) {
			t.Errorf("line %d: decoded %+v, want %+v", i+1, back, want[i])
		}
	}
}

// TestDeltaEdges: per-edge pair sets render to named MatchEdges with
// empty edges omitted.
func TestDeltaEdges(t *testing.T) {
	q, err := qlang.ParsePatternString("node A\t*\nnode B\t*\nnode C\t*\nedge A B\tfn+\nedge B C\tfa")
	if err != nil {
		t.Fatal(err)
	}
	sets := [][]reach.Pair{nil, {{From: 4, To: 9}}}
	got := DeltaEdges(q, sets)
	want := []MatchEdge{{From: "B", To: "C", Expr: "fa", Pairs: [][2]int64{{4, 9}}}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("DeltaEdges = %+v, want %+v", got, want)
	}
	if got := DeltaEdges(q, [][]reach.Pair{nil, nil}); got != nil {
		t.Errorf("all-empty sets rendered %+v, want nil", got)
	}
}

// TestGoldenRouterStats pins the router stats schema byte for byte, in
// the indented form the /v1/stats endpoint serves.
func TestGoldenRouterStats(t *testing.T) {
	got, err := json.MarshalIndent(goldenRouterStats(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, "router_stats.golden", append(got, '\n'))

	// Round-trip: the golden bytes decode back to the fixture.
	var back RouterStats
	if err := json.Unmarshal(got, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, goldenRouterStats()) {
		t.Errorf("router stats round-trip drifted:\n got %+v\nwant %+v", back, goldenRouterStats())
	}
}

// TestGoldenRequests pins the request schema: fixtures encode to the
// golden bytes, and the golden bytes decode back to the fixtures.
func TestGoldenRequests(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf) // reuse the line encoder's json settings
	for _, r := range goldenRequests() {
		if err := enc.enc.Encode(r); err != nil {
			t.Fatal(err)
		}
	}
	goldenCompare(t, "requests.golden", buf.Bytes())

	// Round-trip: decoding the golden file yields the fixtures (with the
	// implicit id filled in by ordinal).
	data, err := os.ReadFile(filepath.Join("testdata", "requests.golden"))
	if err != nil {
		t.Fatal(err)
	}
	dec := NewDecoder(bytes.NewReader(data))
	want := goldenRequests()
	ord := uint64(3) // the id-less fixture is the 4th line
	want[3].ID = &ord
	for i := range want {
		got, err := dec.Next()
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want[i]) {
			t.Errorf("request %d: decoded %+v, want %+v", i, got, want[i])
		}
		if _, _, err := got.Compile(); err != nil {
			t.Errorf("request %d: compile: %v", i, err)
		}
	}
	if _, err := dec.Next(); err != io.EOF {
		t.Fatalf("after last request: %v, want EOF", err)
	}
}

// TestCompileQoS: priority and deadline_ms thread through to the engine
// request — the deadline as an absolute time deadline_ms from receipt.
func TestCompileQoS(t *testing.T) {
	req := Request{RQ: &RQSpec{Expr: "fn"}, Priority: 3, DeadlineMS: 500}
	before := time.Now()
	ereq, kind, err := req.Compile()
	after := time.Now()
	if err != nil || kind != "rq" {
		t.Fatalf("compile: kind %q, err %v", kind, err)
	}
	if ereq.Priority != 3 {
		t.Errorf("priority %d, want 3", ereq.Priority)
	}
	lo := before.Add(500 * time.Millisecond)
	hi := after.Add(500 * time.Millisecond)
	if ereq.Deadline.Before(lo) || ereq.Deadline.After(hi) {
		t.Errorf("deadline %v outside [%v, %v]", ereq.Deadline, lo, hi)
	}
	// No deadline_ms: no deadline at all.
	plain := Request{PQ: "node A\t*\nnode B\t*\nedge A B\tfn", Priority: 1}
	preq, _, err := plain.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if !preq.Deadline.IsZero() || preq.Priority != 1 {
		t.Errorf("plain request got deadline %v priority %d", preq.Deadline, preq.Priority)
	}
}

// TestDecoderRecoversPerLine: a malformed line yields a *LineError with
// the line's assigned id, and decoding continues with the next line.
func TestDecoderRecoversPerLine(t *testing.T) {
	input := strings.Join([]string{
		`{"rq":{"expr":"fn"}}`,
		`{definitely not json`,
		``, // blank lines are skipped, not numbered
		`{"id":9,"rq":{"expr":"fa"}}`,
	}, "\n")
	dec := NewDecoder(strings.NewReader(input))

	r0, err := dec.Next()
	if err != nil || *r0.ID != 0 {
		t.Fatalf("line 1: %+v, %v", r0, err)
	}
	r1, err := dec.Next()
	var le *LineError
	if !errors.As(err, &le) || le.Line != 2 {
		t.Fatalf("line 2: expected *LineError at line 2, got %v", err)
	}
	if r1.ID == nil || *r1.ID != 1 {
		t.Fatalf("malformed line must still carry its ordinal id, got %+v", r1)
	}
	r2, err := dec.Next()
	if err != nil || *r2.ID != 9 {
		t.Fatalf("line 4: %+v, %v", r2, err)
	}
	if _, err := dec.Next(); err != io.EOF {
		t.Fatalf("end: %v, want EOF", err)
	}
}

// TestDecoderOversizedLine: a line beyond MaxLineBytes is a
// stream-level (non-LineError) failure.
func TestDecoderOversizedLine(t *testing.T) {
	dec := NewDecoder(strings.NewReader(`{"pq":"` + strings.Repeat("x", MaxLineBytes+16) + `"}`))
	_, err := dec.Next()
	var le *LineError
	if err == nil || err == io.EOF || errors.As(err, &le) {
		t.Fatalf("oversized line: got %v, want a stream-level error", err)
	}
}

// TestCompileErrors: every invalid request shape is a structured error,
// and valid shapes compile to the right engine request kind.
func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name    string
		req     Request
		wantErr bool
		kind    string
	}{
		{"empty", Request{}, true, ""},
		{"both", Request{RQ: &RQSpec{Expr: "fn"}, PQ: "node A\t*"}, true, ""},
		{"count on pq", Request{PQ: "node A\t*", Count: true}, true, "pq"},
		{"bad predicate", Request{RQ: &RQSpec{From: "no operator here", Expr: "fn"}}, true, "rq"},
		{"bad expr", Request{RQ: &RQSpec{Expr: "(("}}, true, "rq"},
		{"bad pattern", Request{PQ: "edge A B\tfn"}, true, "pq"},
		{"rq ok", Request{RQ: &RQSpec{From: "*", To: "*", Expr: "fn"}}, false, "rq"},
		{"pq ok", Request{PQ: "node A\t*\nnode B\t*\nedge A B\tfn"}, false, "pq"},
		{"negative deadline", Request{RQ: &RQSpec{Expr: "fn"}, DeadlineMS: -5}, true, ""},
	}
	for _, c := range cases {
		ereq, kind, err := c.req.Compile()
		if (err != nil) != c.wantErr {
			t.Errorf("%s: err = %v, wantErr %v", c.name, err, c.wantErr)
			continue
		}
		if kind != c.kind {
			t.Errorf("%s: kind = %q, want %q", c.name, kind, c.kind)
		}
		if err == nil {
			if (kind == "rq") != (ereq.RQ != nil) || (kind == "pq") != (ereq.PQ != nil) {
				t.Errorf("%s: compiled request %+v inconsistent with kind %q", c.name, ereq, kind)
			}
		}
	}
}
