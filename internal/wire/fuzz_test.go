package wire

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"strings"
	"testing"
)

// FuzzDecode drives the NDJSON request decoder (and, for lines that
// decode, the qlang compile path behind it) with arbitrary input. The
// contract under fuzz: never panic, classify every line as either a
// request, a recoverable *LineError, or a terminal stream error — a
// malformed line must never take the stream down. Seed corpus lives in
// testdata/fuzz/FuzzDecode and runs on every plain `go test`.
func FuzzDecode(f *testing.F) {
	f.Add(`{"id":1,"rq":{"from":"job = doctor","to":"*","expr":"fa{2} fn"}}`)
	f.Add(`{"pq":"node A\t*\nnode B\t*\nedge A B\tfn+"}`)
	f.Add(`{"id":3,"rq":{"expr":"_+"},"count":true}` + "\n" + `{"id":4}`)
	f.Add("not json\n\n{\"rq\":{\"expr\":\"fn\"}}")
	f.Add(`{"id":18446744073709551615,"rq":{"expr":"fn{999999999999}"}}`)
	f.Add(`{"rq":{"from":"a = \"quo\\\"ted\"","expr":"fn"},"pq":"x"}`)
	f.Add(`{"rq":{"expr":"fn"},"priority":6,"deadline_ms":250}`)
	f.Add(`{"rq":{"expr":"fn"},"priority":-1,"deadline_ms":9223372036854775807}`)
	f.Add("\x00\xff\xfe")
	// Unknown fields (a response line fed back as a request, as a
	// confused router client might) must decode-and-ignore, not fail.
	f.Add(`{"id":8,"error":"router: no live replica available","error_kind":"unavailable","rq":{"expr":"fn"}}`)
	f.Fuzz(func(t *testing.T, input string) {
		dec := NewDecoder(strings.NewReader(input))
		for i := 0; i < 1<<16; i++ { // hard stop; EOF must arrive long before
			req, err := dec.Next()
			if err == io.EOF {
				return
			}
			var le *LineError
			if errors.As(err, &le) {
				if le.Line <= 0 {
					t.Fatalf("LineError without a line number: %v", err)
				}
				if req.ID == nil {
					t.Fatal("malformed line lost its ordinal id")
				}
				continue
			}
			if err != nil {
				return // terminal stream error (e.g. oversized line): allowed
			}
			if req.ID == nil {
				t.Fatal("decoded request without an id")
			}
			// Compiling may fail (that is the structured per-line error the
			// service returns) but must never panic.
			ereq, kind, cerr := req.Compile()
			if cerr == nil {
				switch kind {
				case "rq":
					if ereq.RQ == nil {
						t.Fatal("rq compiled to empty request")
					}
				case "pq":
					if ereq.PQ == nil {
						t.Fatal("pq compiled to empty request")
					}
				default:
					t.Fatalf("compile succeeded with kind %q", kind)
				}
			}
		}
		t.Fatal("decoder failed to reach EOF")
	})
}

// FuzzResponse drives the response-line schema with arbitrary bytes.
// The replica router machine-parses response lines from its upstreams
// (internal/router fans them back in by id), so this path is
// load-bearing, not just client convenience. Contract: never panic,
// and any line that parses must survive an encode/decode round trip
// byte-identically — otherwise a router re-encoding a replica's answer
// would corrupt the client's stream.
func FuzzResponse(f *testing.F) {
	f.Add(`{"id":1,"kind":"rq","count":2,"pairs":[[0,3],[7,3]],"latency_us":412}`)
	f.Add(`{"id":2,"kind":"pq","count":1,"match":[{"from":"A","to":"B","expr":"fn+","pairs":[[4,9]]}],"latency_us":88.25}`)
	f.Add(`{"id":8,"count":0,"error":"router: no live replica available","error_kind":"unavailable","latency_us":0}`)
	f.Add(`{"id":9,"count":0,"error":"router: stream canceled before the request was answered","error_kind":"canceled","latency_us":0}`)
	f.Add(`{"kind":"stream","count":0,"error":"request stream aborted: read tcp: reset","latency_us":0}`)
	f.Add(`{"id":18446744073709551615,"count":-1,"latency_us":-0.5}`)
	f.Add("\x00\xff\xfe")
	f.Fuzz(func(t *testing.T, input string) {
		var resp Response
		if err := json.Unmarshal([]byte(input), &resp); err != nil {
			return // not a response line; nothing to round-trip
		}
		first, err := json.Marshal(resp)
		if err != nil {
			t.Fatalf("decoded response failed to re-encode: %v", err)
		}
		var back Response
		if err := json.Unmarshal(first, &back); err != nil {
			t.Fatalf("re-encoded response failed to decode: %v\n%s", err, first)
		}
		second, err := json.Marshal(back)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, second) {
			t.Fatalf("response round trip not stable:\n first %s\nsecond %s", first, second)
		}
	})
}

// FuzzDelta drives the standing-query stream schema with arbitrary
// bytes under the same contract as FuzzResponse: never panic, and any
// line that parses must survive an encode/decode round trip
// byte-identically — a client folding delta lines into its local
// answer, or a proxy re-encoding them, must not corrupt the stream.
func FuzzDelta(f *testing.F) {
	f.Add(`{"gen":4,"kind":"init","count":2,"match":[{"from":"A","to":"B","expr":"fn+","pairs":[[0,3],[7,3]]}]}`)
	f.Add(`{"gen":5,"kind":"delta","count":3,"added":[{"from":"A","to":"B","expr":"fn+","pairs":[[9,3]]}]}`)
	f.Add(`{"gen":6,"kind":"delta","count":2,"removed":[{"from":"A","to":"B","expr":"fn+","pairs":[[9,3]]}]}`)
	f.Add(`{"gen":7,"kind":"end","count":0,"error":"lagged"}`)
	f.Add(`{"gen":18446744073709551615,"kind":"","count":-1}`)
	f.Add("\x00\xff\xfe")
	f.Fuzz(func(t *testing.T, input string) {
		var d Delta
		if err := json.Unmarshal([]byte(input), &d); err != nil {
			return // not a delta line; nothing to round-trip
		}
		first, err := json.Marshal(d)
		if err != nil {
			t.Fatalf("decoded delta failed to re-encode: %v", err)
		}
		var back Delta
		if err := json.Unmarshal(first, &back); err != nil {
			t.Fatalf("re-encoded delta failed to decode: %v\n%s", err, first)
		}
		second, err := json.Marshal(back)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, second) {
			t.Fatalf("delta round trip not stable:\n first %s\nsecond %s", first, second)
		}
	})
}
