package wire

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"regraph/internal/faultinject"
)

// echoServer serves /v1/query by answering every request line with a
// count-0 response carrying the request's id — just enough wire
// protocol to exercise the client. hits counts handler invocations.
func echoServer(t *testing.T, script *faultinject.Script, hits *atomic.Int64) (url string, fl *faultinject.Listener) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fl = faultinject.Wrap(ln, script)
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		dec := NewDecoder(r.Body)
		enc := NewEncoder(w)
		for {
			req, err := dec.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				return
			}
			enc.Encode(Response{ID: *req.ID, Kind: "rq"})
		}
	})}
	go srv.Serve(fl)
	t.Cleanup(func() { srv.Close() })
	return "http://" + ln.Addr().String() + "/v1/query", fl
}

func retryReqs(n int) []Request {
	reqs := make([]Request, n)
	for i := range reqs {
		id := uint64(i)
		reqs[i] = Request{ID: &id, RQ: &RQSpec{Expr: "fn"}}
	}
	return reqs
}

// TestPostStreamRetryRefusedDial pins the headline behavior: the first
// two dials die at accept (RST — the shape of a server that has not
// come up yet), the third succeeds, and the batch is delivered exactly
// once with no callback invocations from the failed attempts.
func TestPostStreamRetryRefusedDial(t *testing.T) {
	var hits atomic.Int64
	url, _ := echoServer(t, &faultinject.Script{Refuse: map[int]bool{0: true, 1: true}}, &hits)
	seen := map[uint64]int{}
	err := PostStreamRetry(url, retryReqs(4), func(_ []byte, r *Response) error {
		seen[r.ID]++
		return nil
	}, 3, time.Millisecond)
	if err != nil {
		t.Fatalf("PostStreamRetry: %v", err)
	}
	if len(seen) != 4 {
		t.Fatalf("got %d distinct ids, want 4: %v", len(seen), seen)
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("id %d answered %d times (exactly-once violated)", id, n)
		}
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("handler ran %d times, want 1", got)
	}
}

// TestPostStreamRetryExhausted pins the failure shape: a server that is
// down for good exhausts the budget and the transport error surfaces;
// the callback never runs.
func TestPostStreamRetryExhausted(t *testing.T) {
	var hits atomic.Int64
	url, fl := echoServer(t, nil, &hits)
	fl.SetRefuse(true)
	calls := 0
	err := PostStreamRetry(url, retryReqs(1), func(_ []byte, _ *Response) error {
		calls++
		return nil
	}, 2, time.Millisecond)
	if err == nil {
		t.Fatal("want transport error after exhausted retries, got nil")
	}
	if calls != 0 {
		t.Fatalf("callback ran %d times on a dead server", calls)
	}
	if got := hits.Load(); got != 0 {
		t.Fatalf("handler ran %d times, want 0", got)
	}
}

// TestPostStreamRetryNoRetryOnceConnected pins the retry-safety
// boundary: an HTTP-level failure (here a 503) is NOT retried even with
// budget left, because the server saw the request — re-sending could
// double-deliver.
func TestPostStreamRetryNoRetryOnceConnected(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var hits atomic.Int64
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		io.Copy(io.Discard, r.Body)
		http.Error(w, "draining", http.StatusServiceUnavailable)
	})}
	go srv.Serve(ln)
	defer srv.Close()
	err = PostStreamRetry("http://"+ln.Addr().String()+"/v1/query", retryReqs(1),
		func(_ []byte, _ *Response) error { return nil }, 5, time.Millisecond)
	if err == nil || !strings.Contains(err.Error(), "503") {
		t.Fatalf("want 503 error, got %v", err)
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("handler ran %d times, want exactly 1 (no retry after a response)", got)
	}
}

// TestPostStreamMalformedResponse keeps the non-retry entry point
// honest about its error contract.
func TestPostStreamMalformedResponse(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		fmt.Fprintln(w, "not json")
	})}
	go srv.Serve(ln)
	defer srv.Close()
	err = PostStream("http://"+ln.Addr().String()+"/v1/query", retryReqs(1),
		func(_ []byte, _ *Response) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "malformed response line") {
		t.Fatalf("want malformed-line error, got %v", err)
	}
}
