package wire

// This file is the router tier's half of the wire contract
// (internal/router, cmd/rgrouter): the /v1/stats payload a replica
// router serves. It lives in wire because the shape is public API for
// monitoring clients, pinned by golden tests exactly like the
// request/response lines.
//
// The query-stream schema itself is unchanged by routing — a router
// speaks the same Request/Response lines as a single rgserve — except
// that a response may carry error_kind "unavailable" when the router
// sheds a request instead of evaluating it (no live replica, retry
// policy exhausted).

// ErrKindUnavailable is the ErrKind a replica router sets on requests
// it sheds because no replica could serve them; see Response.ErrKind.
const ErrKindUnavailable = "unavailable"

// ErrKindReadOnly is the ErrKind a replica router sets on write-path
// streams (/v1/mutate, /v1/subscribe) it refuses because it has no
// writer upstream configured: the tier is read-only, and the refusal is
// explicit — per-line acks and a summary — instead of a silent 404.
const ErrKindReadOnly = "read_only"

// RouterStats is a replica router's /v1/stats snapshot: per-replica
// health and breaker state plus stream-level routing counters.
type RouterStats struct {
	// Replicas reports every configured backend in configuration order.
	Replicas []ReplicaStats `json:"replicas"`

	Draining      bool   `json:"draining"`
	StreamsActive int    `json:"streams_active"`
	StreamsTotal  uint64 `json:"streams_total"`

	// Requests counts client request lines admitted for routing;
	// Retries and Hedges count the extra dispatches layered on top
	// (a hedge is a speculative duplicate sent before any failure).
	Requests uint64 `json:"requests"`
	Retries  uint64 `json:"retries"`
	Hedges   uint64 `json:"hedges"`

	// DupSuppressed counts replica responses dropped by exactly-once
	// fan-in: the id had already been answered by a faster (hedged or
	// retried) copy. Unavailable counts requests shed with error_kind
	// "unavailable"; BudgetDenied counts retry/hedge dispatches the
	// token-bucket retry budget refused.
	DupSuppressed uint64 `json:"dup_suppressed"`
	Unavailable   uint64 `json:"unavailable"`
	BudgetDenied  uint64 `json:"budget_denied"`

	ParseErrors uint64 `json:"parse_errors"`

	// Write-path routing. A replica router is read-only unless
	// configured with a writer upstream: WriteForwarded counts
	// /v1/mutate and /v1/subscribe streams proxied to it, WriteRejected
	// those refused with error_kind "read_only" because none is
	// configured, and WriteErrors forwarded streams that failed in
	// transit (writer unreachable or mid-stream disconnect).
	WriteForwarded uint64 `json:"write_forwarded"`
	WriteRejected  uint64 `json:"write_rejected"`
	WriteErrors    uint64 `json:"write_errors"`
}

// ReplicaStats is one backend's row in RouterStats.
type ReplicaStats struct {
	URL string `json:"url"`

	// State is the circuit breaker state: "closed" (routable), "open"
	// (failed out, cooling down), or "half-open" (cooldown elapsed, one
	// trial request in flight or allowed).
	State string `json:"state"`

	// Ready is the latest active-probe verdict (GET /readyz == 200).
	Ready bool `json:"ready"`

	// InFlight is the number of dispatched-but-unanswered requests the
	// router currently has on this replica.
	InFlight int `json:"in_flight"`

	// Requests counts dispatches to this replica (including retries and
	// hedges); Failures counts stream-level failures charged to it
	// (dead connections, stalls, refused probes) — not per-request
	// errors, which the replica answered and are therefore successes of
	// the transport.
	Requests uint64 `json:"requests"`
	Failures uint64 `json:"failures"`

	// BreakerOpens / BreakerCloses count state transitions into open
	// and into closed, the flap rate of the breaker.
	BreakerOpens  uint64 `json:"breaker_opens"`
	BreakerCloses uint64 `json:"breaker_closes"`
}
