package engine_test

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"regraph/internal/engine"
	"regraph/internal/graph"
	"regraph/internal/qlang"
	"regraph/internal/reach"
)

// sleepGraph is a two-node graph with one fn edge whose single RQ
// answer pair is known: attaching an Emit callback that sleeps turns
// the query into a request of any chosen service time, which is how
// these tests build deterministic overload.
func sleepGraph(t *testing.T) (*graph.Graph, reach.Query) {
	t.Helper()
	g := graph.New()
	a := g.AddNode("src", map[string]string{"job": "x"})
	b := g.AddNode("dst", map[string]string{"job": "y"})
	g.AddEdge(a, b, "fn")
	q, err := qlang.ParseRQ("job = x", "job = y", "fn")
	if err != nil {
		t.Fatalf("ParseRQ: %v", err)
	}
	return g, q
}

// TestSessionQoSMatchesRunBatch: priorities and generous deadlines
// reorder scheduling but must not change a single answer — the
// QoS-field variant of the session≡RunBatch property.
func TestSessionQoSMatchesRunBatch(t *testing.T) {
	g := testGraph(7)
	reqs := mixedRequests(g, 48, 11)
	far := time.Now().Add(time.Hour)
	for i := range reqs {
		reqs[i].Priority = i % (engine.MaxPriority + 1)
		if i%2 == 0 {
			reqs[i].Deadline = far
		}
	}
	e := engine.MustNew(g, engine.Options{Workers: 4})
	want := e.RunBatch(reqs)

	s := e.Open(context.Background(), engine.SessionOptions{MaxInFlight: 8})
	reqOf := make([]int64, len(reqs))
	go func() {
		for i := range reqs {
			id, err := s.Submit(context.Background(), reqs[i])
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				break
			}
			atomic.StoreInt64(&reqOf[id], int64(i))
		}
		s.Close()
	}()
	got := 0
	for r := range s.Results() {
		i := atomic.LoadInt64(&reqOf[r.ID])
		w := want[i]
		if r.Err != nil {
			t.Errorf("request %d (id %d): unexpected error %v", i, r.ID, r.Err)
			continue
		}
		if !reflect.DeepEqual(r.Pairs, w.Pairs) || !reflect.DeepEqual(r.Match, w.Match) || (w.Err != nil) {
			t.Errorf("request %d (id %d): QoS session result differs from RunBatch", i, r.ID)
		}
		got++
	}
	if got != len(reqs) {
		t.Fatalf("received %d results, want %d", got, len(reqs))
	}
	st := s.Stats()
	if st.Expired != 0 || st.Missed != 0 {
		t.Errorf("generous deadlines expired: %+v", st)
	}
	if st.Completed != uint64(len(reqs)) {
		t.Errorf("completed %d, want %d", st.Completed, len(reqs))
	}
}

// TestSessionOverloadExactlyOnce floods a 2-worker session with slow
// high-priority work plus low-priority tight-deadline probes that
// cannot all make it, and checks the overload contract under -race:
// exactly one result per accepted id, expired-in-queue results carry
// ErrDeadlineExpired (which also satisfies errors.Is(...,
// context.DeadlineExceeded)), the outcome counters partition the
// submissions, and no goroutine outlives the session.
func TestSessionOverloadExactlyOnce(t *testing.T) {
	baseline := runtime.NumGoroutine()
	g, q := sleepGraph(t)
	e := engine.MustNew(g, engine.Options{Workers: 2})
	s := e.Open(context.Background(), engine.SessionOptions{MaxInFlight: 128})

	const nSlow, nProbe = 60, 40
	slow := engine.Request{RQ: &q, Priority: 7,
		Emit: func(reach.Pair) bool { time.Sleep(2 * time.Millisecond); return true }}
	var submitted atomic.Int64
	go func() {
		for i := 0; i < nSlow; i++ {
			if _, err := s.Submit(context.Background(), slow); err != nil {
				t.Errorf("submit slow %d: %v", i, err)
				return
			}
			submitted.Add(1)
		}
		// The probes join a queue holding ~60ms of band-7 work with a
		// 5ms budget and a 1-in-129 scheduling share: most must be shed
		// from the queue without ever reaching a worker.
		probe := engine.Request{RQ: &q, Priority: 0}
		for i := 0; i < nProbe; i++ {
			probe.Deadline = time.Now().Add(5 * time.Millisecond)
			if _, err := s.Submit(context.Background(), probe); err != nil {
				t.Errorf("submit probe %d: %v", i, err)
				return
			}
			submitted.Add(1)
		}
		s.Close()
	}()

	seen := map[uint64]bool{}
	var shed int
	for r := range s.Results() {
		if seen[r.ID] {
			t.Errorf("duplicate result id %d", r.ID)
		}
		seen[r.ID] = true
		switch {
		case r.Err == nil:
		case errors.Is(r.Err, engine.ErrDeadlineExpired):
			if !errors.Is(r.Err, context.DeadlineExceeded) {
				t.Errorf("id %d: ErrDeadlineExpired must satisfy errors.Is(context.DeadlineExceeded)", r.ID)
			}
			if r.Pairs != nil {
				t.Errorf("id %d: shed result carries pairs", r.ID)
			}
			shed++
		case errors.Is(r.Err, context.DeadlineExceeded):
			// abandoned mid-evaluation: legal for a probe that got a
			// worker just before its budget ran out
		default:
			t.Errorf("id %d: unexpected error %v", r.ID, r.Err)
		}
	}
	if got := uint64(len(seen)); got != uint64(submitted.Load()) {
		t.Fatalf("received %d results for %d accepted submissions", got, submitted.Load())
	}
	if shed == 0 {
		t.Error("no probe was shed from the queue under 60ms of backlog and a 5ms budget")
	}

	st := s.Stats()
	if st.Completed+st.Cancelled+st.Failed+st.Expired+st.Missed != st.Submitted {
		t.Errorf("outcomes do not partition submissions: %+v", st)
	}
	if st.Delivered+st.Dropped != st.Submitted {
		t.Errorf("delivered %d + dropped %d != submitted %d", st.Delivered, st.Dropped, st.Submitted)
	}
	if st.Expired == 0 {
		t.Errorf("stats recorded no expirations: %+v", st)
	}
	if st.InFlight != 0 || st.QueueDepth != 0 {
		t.Errorf("session not drained: %+v", st)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d now, %d at start", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSessionAdaptiveInFlight: with AdaptiveInFlight on, a stream of
// deadline-carrying requests whose budgets leave little headroom over
// the observed latency must make the controller shrink the effective
// in-flight bound below the static ceiling — and without the option
// the bound must never move.
func TestSessionAdaptiveInFlight(t *testing.T) {
	g, q := sleepGraph(t)
	e := engine.MustNew(g, engine.Options{Workers: 2})

	static := e.Open(context.Background(), engine.SessionOptions{MaxInFlight: 64})
	if got := static.Stats().EffectiveInFlight; got != 64 {
		t.Fatalf("static effective bound = %d, want 64", got)
	}
	static.Close()
	for range static.Results() {
	}

	s := e.Open(context.Background(), engine.SessionOptions{MaxInFlight: 64, AdaptiveInFlight: true})
	if got := s.Stats().EffectiveInFlight; got != 64 {
		t.Fatalf("adaptive bound before any signal = %d, want the full 64", got)
	}
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for range s.Results() {
		}
	}()
	// Gentle offered load (tokens mostly free for the controller), slow
	// evaluations, budgets ~4x the service time: few queue waves fit,
	// so the controller must hold back most of the static window.
	req := engine.Request{RQ: &q,
		Emit: func(reach.Pair) bool { time.Sleep(5 * time.Millisecond); return true }}
	shrunk := 64
	for i := 0; i < 80; i++ {
		req.Deadline = time.Now().Add(20 * time.Millisecond)
		if _, err := s.Submit(context.Background(), req); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if got := s.Stats().EffectiveInFlight; got < shrunk {
			shrunk = got
		}
		time.Sleep(2 * time.Millisecond)
	}
	s.Close()
	<-drained
	if shrunk >= 64 {
		t.Errorf("effective bound never shrank below the static 64 under deadline pressure")
	}
	if shrunk < 2 {
		t.Errorf("effective bound %d fell below the worker floor", shrunk)
	}
}

// TestSessionStarvation is the test that earns the scheduler its
// complexity: high-priority short-deadline probes submitted behind a
// saturating batch of slow low-priority work all meet their deadlines
// under the QoS scheduler, while the PR 4 FIFO control — same
// requests, same deadlines — blows every one of them on head-of-line
// blocking.
func TestSessionStarvation(t *testing.T) {
	g, q := sleepGraph(t)
	e := engine.MustNew(g, engine.Options{Workers: 2})

	const nSlow, nProbe = 30, 8
	const slowService = 20 * time.Millisecond // 30×20ms / 2 workers = 300ms of backlog
	const probeBudget = 150 * time.Millisecond

	run := func(fifo bool) engine.SessionStats {
		s := e.Open(context.Background(), engine.SessionOptions{MaxInFlight: 64, FIFO: fifo})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			slow := engine.Request{RQ: &q, Priority: 0,
				Emit: func(reach.Pair) bool { time.Sleep(slowService); return true }}
			for i := 0; i < nSlow; i++ {
				if _, err := s.Submit(context.Background(), slow); err != nil {
					t.Errorf("fifo=%v: submit slow %d: %v", fifo, i, err)
					return
				}
			}
			probe := engine.Request{RQ: &q, Priority: engine.MaxPriority}
			for i := 0; i < nProbe; i++ {
				probe.Deadline = time.Now().Add(probeBudget)
				if _, err := s.Submit(context.Background(), probe); err != nil {
					t.Errorf("fifo=%v: submit probe %d: %v", fifo, i, err)
					return
				}
			}
		}()
		go func() { wg.Wait(); s.Close() }()
		probeOK, probeDead := 0, 0
		for r := range s.Results() {
			if r.ID < nSlow { // the slow backlog itself must always complete
				if r.Err != nil {
					t.Errorf("fifo=%v: slow request %d failed: %v", fifo, r.ID, r.Err)
				}
				continue
			}
			switch {
			case r.Err == nil:
				probeOK++
			case errors.Is(r.Err, context.DeadlineExceeded):
				probeDead++
			default:
				t.Errorf("fifo=%v: probe %d: unexpected error %v", fifo, r.ID, r.Err)
			}
		}
		if probeOK+probeDead != nProbe {
			t.Fatalf("fifo=%v: %d+%d probe outcomes, want %d", fifo, probeOK, probeDead, nProbe)
		}
		if fifo && probeOK != 0 {
			t.Errorf("FIFO control met %d/%d probe deadlines behind 300ms of backlog — not a control", probeOK, nProbe)
		}
		if !fifo && probeDead != 0 {
			t.Errorf("QoS scheduler missed %d/%d probe deadlines despite priority %d and a %v budget",
				probeDead, nProbe, engine.MaxPriority, probeBudget)
		}
		return s.Stats()
	}

	qos := run(false)
	fifo := run(true)
	if qos.Expired+qos.Missed != 0 {
		t.Errorf("QoS run recorded deadline casualties: %+v", qos)
	}
	if fifo.Expired != nProbe {
		t.Errorf("FIFO control expired %d, want all %d probes", fifo.Expired, nProbe)
	}
}
