// Package engine is the resident concurrent query engine: one Engine
// owns a data graph together with its shared distance structures (a
// precomputed dist.Matrix, or a dist.Cache shared by every worker — the
// paper's Section 4 explicitly designs the cache to be shared across
// queries), and evaluates reachability and pattern queries across a
// bounded worker pool.
//
// Queries enter through a Session (Engine.Open): Submit admits requests
// under a configurable in-flight bound (back-pressure), Results streams
// answers out in completion order tagged with request ids, and context
// cancellation stops in-flight evaluators at periodic checkpoints and
// drains the session without leaking goroutines. RunBatch/RunRQs are
// convenience wrappers that run one whole batch through a session and
// materialize every answer.
//
// Each worker slot carries a persistent dist.Scratch arena (closure
// ping-pong buffers, BFS queues, seed bitsets), so a long-running engine
// reaches a steady state where evaluating a query allocates little more
// than its answer slice. Construction also builds the attribute
// inverted index (internal/candidx) and an engine-wide
// predicate→candidates memo shared by all workers, so no query pays
// the O(|V|·clauses) candidate scan; Options.DisableCandidateIndex
// reverts to the scan. The number of arenas bounds total evaluation
// concurrency engine-wide: overlapping RunBatch calls from several
// goroutines share the same pool of worker slots rather than multiplying
// goroutines.
//
// Concurrency contract: the graph must not be mutated while the engine
// is in use (construction eagerly builds the graph's per-color index so
// that all evaluation-time graph accesses are pure reads). The Matrix is
// immutable; the Cache serializes its LRU state behind a mutex and runs
// searches outside it. See DESIGN.md, "Engine & concurrency model".
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"regraph/internal/candidx"
	"regraph/internal/dist"
	"regraph/internal/graph"
	"regraph/internal/pattern"
	"regraph/internal/reach"
	"regraph/internal/reachidx"
	"regraph/internal/wal"
)

// Options configures an Engine. At most one of Matrix, Cache, Backend
// and AutoBackend may be set — they are four answers to the same
// question (which distance backend serves this engine), and New rejects
// ambiguous combinations instead of applying a quiet precedence rule.
// With none set, the engine creates an LRU cache of CacheSize entries,
// the historical default.
type Options struct {
	// Workers bounds evaluation concurrency (and the number of resident
	// scratch arenas). Zero or negative means GOMAXPROCS.
	Workers int

	// Matrix, when non-nil, selects matrix-backed evaluation for every
	// query: RQs run EvalMatrix, PQs run JoinMatch with O(1) pair
	// lookups. The matrix is immutable and shared by all workers freely.
	Matrix *dist.Matrix

	// Cache is a shared LRU distance cache to use as the backend.
	Cache *dist.Cache

	// Backend supplies any other distance backend (typically a
	// dist.TwoHop built by the caller). Single-atom RQ and PQ edge
	// checks become backend lookups; multi-atom expressions use the
	// closure search as in cache mode.
	Backend dist.Backend

	// BackendKind asks the engine to build the named backend itself:
	// "matrix", "twohop" or "cache" (sized by CacheSize). It selects
	// the same structures as passing Matrix/Backend/Cache built by the
	// caller, with one crucial difference: an engine-built backend can
	// be rebuilt per generation, so the engine stays mutable — Apply
	// works. Externally supplied backends make the engine read-only.
	// Counts as a backend selector (conflicts with Matrix, Cache,
	// Backend and AutoBackend).
	BackendKind string

	// AutoBackend picks the backend from the graph and MemoryBudget:
	// the matrix when its (m+1)·|V|²·4 bytes fit the budget (fastest
	// lookups), else a 2-hop label index built under the same budget,
	// else — when even the labels exceed the budget — a fresh LRU
	// cache of CacheSize entries. The choice is observable via
	// BackendKind.
	AutoBackend bool

	// MemoryBudget bounds AutoBackend's index memory in bytes
	// (default 1 GiB). Ignored unless AutoBackend is set.
	MemoryBudget int64

	// CacheSize sizes the engine-created cache (default 1<<16) — the
	// default backend, or AutoBackend's last resort. Setting it
	// together with Matrix, Cache or Backend is a configuration error:
	// it would be silently ignored.
	CacheSize int

	// ReachFilter installs a sound negative reachability oracle
	// (typically a GRAIL interval index, regraph.NewReachIndex) in
	// front of the selected backend: pairs the filter refutes skip the
	// backend entirely. Negative-only soundness means answers are
	// unchanged. The backend must support filtering (Cache and TwoHop
	// do; a Matrix lookup is already O(1) and has no filter hook, so
	// combining ReachFilter with an explicit Matrix is a configuration
	// error; AutoBackend simply drops the filter if it picks the
	// matrix).
	ReachFilter dist.Filter

	// ReachFilterK builds a GRAIL filter with k interval traversals at
	// construction and installs it like ReachFilter (2-3 is typical).
	// Setting both ReachFilterK and ReachFilter is a configuration
	// error.
	ReachFilterK int

	// DisableCandidateIndex turns off the attribute inverted index and
	// the engine-wide predicate→candidates memo, reverting every
	// query's candidate computation to the O(|V|·clauses) node scan.
	// Answers are identical either way; exposed for measurement and as
	// an escape hatch for tiny graphs where the index build outweighs a
	// handful of scans.
	DisableCandidateIndex bool

	// WAL, when non-nil, makes Apply durable: every committed batch is
	// appended to the log before its generation is published
	// (append-then-commit — an append failure fails the batch with
	// nothing published). The engine takes over Append ordering but not
	// the log's lifetime; the caller still closes it. Pair with Recover
	// at startup (which installs the WAL itself; set this field only
	// when building an engine over a fresh log). Requires a mutable
	// backend configuration (BackendKind or engine defaults).
	WAL *wal.WAL
}

// filterable is satisfied by backends that accept a front filter.
type filterable interface {
	SetFilter(dist.Filter)
}

// genState is one published generation: an immutable bundle of the
// graph, its distance backend and its candidate memo, all built against
// the same epoch. Readers pin a *genState (sessions at Open, one-shot
// accessors per call) and never observe a half-replaced mixture; the
// single-writer apply loop builds a successor bundle off to the side and
// publishes it with one atomic pointer store.
type genState struct {
	gen   uint64
	g     *graph.Graph
	mx    *dist.Matrix
	cache *dist.Cache
	be    dist.Backend // active backend when mx is nil (cache, 2-hop, custom)

	// cands is the generation's candidate memo (attribute inverted
	// index + predicate→candidates cache), shared by every worker and
	// batch reading this generation; nil when DisableCandidateIndex was
	// set.
	cands *candidx.Memo
}

// candSource adapts the memo field to the evaluators' interface
// parameter without ever wrapping a nil *Memo in a non-nil interface.
func (st *genState) candSource() reach.CandidateSource {
	if st.cands == nil {
		return nil
	}
	return st.cands
}

// Engine is a resident query engine over one graph. Create it with New;
// an Engine is safe for concurrent use by multiple goroutines.
type Engine struct {
	// cur is the current generation. Load-then-use is the whole read
	// protocol: a loaded genState stays internally consistent forever
	// (its graph is sealed when replaced, never edited in place).
	cur atomic.Pointer[genState]

	kind    string // "matrix" | "twohop" | "cache" | "custom"
	workers int

	// slots hands out (arena, worker identity) pairs; its capacity is
	// the engine-wide concurrency bound.
	slots chan *dist.Scratch

	// writeMu serializes Apply and the standing-query registry: there
	// is exactly one writer at a time, which is what lets Apply derive,
	// index and publish without any reader-side locking.
	writeMu sync.Mutex
	subs    map[*Standing]struct{}

	// Construction inputs remembered for per-generation backend
	// rebuilds; immutable after New.
	cacheSize int
	filterK   int
	immutable error // non-nil: why Apply is refused for this configuration

	// wal, when non-nil, receives every committed batch before its
	// generation is published (Options.WAL, or installed by Recover).
	wal *wal.WAL

	// recovered describes the Recover call that built this engine (zero
	// for engines built by New).
	recovered RecoverInfo

	// queuedReads counts read requests admitted to any session and not
	// yet picked up by a worker, engine-wide. The write path's read
	// fence polls it so a committing writer yields to queued readers
	// instead of starving them on few cores.
	queuedReads atomic.Int64
}

// ErrOptions wraps every configuration error New returns, so callers
// can distinguish "bad options" from future construction failures with
// errors.Is.
var ErrOptions = errors.New("engine: conflicting options")

// validate rejects ambiguous Option combinations. Each check names the
// fields in conflict; all errors wrap ErrOptions.
func (o Options) validate() error {
	set := 0
	names := ""
	for _, f := range []struct {
		on   bool
		name string
	}{
		{o.Matrix != nil, "Matrix"},
		{o.Cache != nil, "Cache"},
		{o.Backend != nil, "Backend"},
		{o.AutoBackend, "AutoBackend"},
		{o.BackendKind != "", "BackendKind"},
	} {
		if f.on {
			set++
			if names != "" {
				names += "+"
			}
			names += f.name
		}
	}
	if set > 1 {
		return fmt.Errorf("%w: %s — set at most one backend selector", ErrOptions, names)
	}
	switch o.BackendKind {
	case "", "matrix", "twohop", "cache":
	default:
		return fmt.Errorf("%w: unknown BackendKind %q (want matrix, twohop or cache)", ErrOptions, o.BackendKind)
	}
	if o.CacheSize > 0 && (o.Matrix != nil || o.Cache != nil || o.Backend != nil) {
		return fmt.Errorf("%w: CacheSize with an explicit backend would be silently ignored", ErrOptions)
	}
	if o.CacheSize > 0 && (o.BackendKind == "matrix" || o.BackendKind == "twohop") {
		return fmt.Errorf("%w: CacheSize with BackendKind %q would be silently ignored", ErrOptions, o.BackendKind)
	}
	if o.MemoryBudget != 0 && !o.AutoBackend {
		return fmt.Errorf("%w: MemoryBudget without AutoBackend would be silently ignored", ErrOptions)
	}
	if o.ReachFilter != nil && o.ReachFilterK > 0 {
		return fmt.Errorf("%w: ReachFilter and ReachFilterK — supply the filter or ask for one, not both", ErrOptions)
	}
	wantFilter := o.ReachFilter != nil || o.ReachFilterK > 0
	if wantFilter && (o.Matrix != nil || o.BackendKind == "matrix") {
		return fmt.Errorf("%w: ReachFilter with Matrix — matrix lookups have no filter hook", ErrOptions)
	}
	if wantFilter && o.Backend != nil {
		if _, ok := o.Backend.(filterable); !ok {
			return fmt.Errorf("%w: ReachFilter with a backend that has no SetFilter", ErrOptions)
		}
	}
	return nil
}

// New builds an engine over g, selecting the distance backend from
// opts (see Options). The graph must not be mutated afterwards while
// the engine is in use. Conflicting options return an error wrapping
// ErrOptions; AutoBackend construction itself cannot fail (the cache
// is the always-available last resort).
func New(g *graph.Graph, opts Options) (*Engine, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cacheSize := opts.CacheSize
	if cacheSize <= 0 {
		cacheSize = 1 << 16
	}

	mx := opts.Matrix
	be := opts.Backend
	cache := opts.Cache
	kind := "custom"
	switch {
	case mx != nil:
		kind = "matrix"
	case cache != nil:
		kind = "cache"
	case be != nil:
		switch b := be.(type) {
		case *dist.TwoHop:
			kind = "twohop"
		case *dist.Cache:
			kind = "cache"
			cache = b
		}
	case opts.BackendKind != "":
		// Engine-built by name: the same structures as the external
		// equivalents, but owned by the engine — rebuilt per generation
		// by Apply, so this path keeps the engine mutable.
		kind = opts.BackendKind
		switch kind {
		case "matrix":
			mx = dist.NewMatrix(g)
		case "twohop":
			be = dist.NewTwoHop(g)
		case "cache":
			cache = dist.NewCache(g, cacheSize)
		}
	case opts.AutoBackend:
		budget := opts.MemoryBudget
		if budget <= 0 {
			budget = 1 << 30
		}
		if dist.PredictMatrixBytes(g) <= budget {
			mx = dist.NewMatrix(g)
			kind = "matrix"
		} else if th, err := dist.NewTwoHopBudget(context.Background(), g, budget); err == nil {
			be = th
			kind = "twohop"
		} else {
			// Labels blew the budget too: the O(capacity) cache is the
			// only backend whose footprint does not depend on the graph.
			cache = dist.NewCache(g, cacheSize)
			kind = "cache"
		}
	default:
		cache = dist.NewCache(g, cacheSize)
		kind = "cache"
	}
	if cache != nil {
		be = cache
	}

	if opts.ReachFilter != nil || opts.ReachFilterK > 0 {
		f := opts.ReachFilter
		if f == nil {
			f = reachidx.Build(g, opts.ReachFilterK)
		}
		// validate guaranteed explicit backends are filterable; the
		// auto-selected matrix is the one combination that drops the
		// filter (documented on Options.ReachFilter).
		if fb, ok := be.(filterable); ok && mx == nil {
			fb.SetFilter(f)
		}
	}

	// Freeze the graph's lazy per-color index now: pattern normalization
	// probes Succ/Pred, and building the index on first use from several
	// workers at once would race.
	g.BuildColorIndex()
	e := &Engine{
		kind:      kind,
		workers:   workers,
		slots:     make(chan *dist.Scratch, workers),
		subs:      map[*Standing]struct{}{},
		cacheSize: cacheSize,
		filterK:   opts.ReachFilterK,
	}
	// Mutability: Apply rebuilds the backend per generation from the
	// construction inputs, which it can only do for backends the engine
	// knows how to build. Anything externally owned makes the engine
	// read-only (queries work as before; Apply returns the reason).
	switch {
	case opts.Backend != nil:
		e.immutable = fmt.Errorf("%w: externally built Backend cannot be rebuilt per generation", ErrReadOnly)
	case opts.Cache != nil:
		e.immutable = fmt.Errorf("%w: externally owned Cache cannot be rebuilt per generation", ErrReadOnly)
	case opts.Matrix != nil:
		e.immutable = fmt.Errorf("%w: externally owned Matrix cannot be rebuilt per generation", ErrReadOnly)
	case opts.ReachFilter != nil:
		e.immutable = fmt.Errorf("%w: external ReachFilter cannot be rebuilt per generation", ErrReadOnly)
	}
	if opts.WAL != nil {
		if e.immutable != nil {
			return nil, fmt.Errorf("%w: WAL on a read-only engine (%v)", ErrOptions, e.immutable)
		}
		e.wal = opts.WAL
	}
	st := &genState{g: g, mx: mx, cache: cache, be: be}
	if !opts.DisableCandidateIndex {
		// Build the attribute inverted index once, up front, so no batch
		// pays it mid-flight; the memo it feeds is shared by every reader
		// of this generation.
		st.cands = candidx.NewMemo(g)
	}
	e.cur.Store(st)
	for i := 0; i < workers; i++ {
		e.slots <- dist.NewScratch()
	}
	return e, nil
}

// MustNew is New for configurations known statically valid (tests,
// examples, fixed internal setups); it panics on a configuration error.
func MustNew(g *graph.Graph, opts Options) *Engine {
	e, err := New(g, opts)
	if err != nil {
		panic(err)
	}
	return e
}

// Graph returns the current generation's graph. After an Apply this may
// be a newer graph than a previous call returned; pin a Session for a
// stable view.
func (e *Engine) Graph() *graph.Graph { return e.cur.Load().g }

// Generation returns the current generation number: 0 for the graph the
// engine was built over, incremented by every committed Apply batch.
func (e *Engine) Generation() uint64 { return e.cur.Load().gen }

// Matrix returns the current generation's distance matrix, nil unless
// the engine is in matrix mode.
func (e *Engine) Matrix() *dist.Matrix { return e.cur.Load().mx }

// Cache returns the current generation's distance cache, nil unless the
// engine's backend is a cache.
func (e *Engine) Cache() *dist.Cache { return e.cur.Load().cache }

// Backend returns the current generation's distance backend: the matrix
// in matrix mode, otherwise whatever New selected or was given (cache,
// 2-hop labels, custom).
func (e *Engine) Backend() dist.Backend {
	st := e.cur.Load()
	if st.mx != nil {
		return st.mx
	}
	return st.be
}

// BackendKind names the active backend — "matrix", "twohop", "cache"
// or "custom" — mainly so AutoBackend's choice is observable (servers
// log it; tests assert on it). The kind is fixed at construction:
// Apply rebuilds the same kind of backend for every generation.
func (e *Engine) BackendKind() string { return e.kind }

// Workers returns the engine's concurrency bound.
func (e *Engine) Workers() int { return e.workers }

// Cands returns the current generation's candidate memo, nil when the
// candidate index was disabled at construction.
func (e *Engine) Cands() *candidx.Memo { return e.cur.Load().cands }

// Request is one query of a batch or session: exactly one of RQ or PQ
// must be set.
type Request struct {
	RQ *reach.Query
	PQ *pattern.Query

	// Emit, when non-nil on an RQ request, streams the answer pairs to
	// the callback one at a time instead of materializing Result.Pairs —
	// the Result then only signals completion. The callback runs on the
	// evaluating worker goroutine, in answer order; returning false stops
	// the enumeration early. Ignored for PQ requests (pattern answers
	// are per-edge sets, not a pair stream).
	Emit func(reach.Pair) bool

	// Priority selects the session scheduling band: under contention,
	// band p receives a worker share proportional to 2^p (earliest
	// deadline first within a band), so higher-priority requests wait
	// less without ever fully starving lower bands. Values clamp to
	// [0, MaxPriority]; zero — the default — is the lowest band. With
	// every request at one priority and no deadlines, scheduling is
	// exact FIFO. Ignored by RunBatch (which waits for the whole batch
	// anyway) unless requests carry distinct priorities.
	Priority int

	// Deadline, when nonzero, is the absolute time after which the
	// answer is worthless. A request whose deadline passes while it is
	// still queued is shed — completed with ErrDeadlineExpired, without
	// consuming evaluation time — and one that is mid-evaluation at the
	// deadline is abandoned at the evaluators' next cancellation
	// checkpoint with context.DeadlineExceeded. Zero means no deadline.
	Deadline time.Time
}

// Result is the answer to one Request. ID is the originating request's
// id: the batch index for RunBatch/RunRQs, the Submit-returned id for a
// session — so every result, including errors, is attributable. Exactly
// one of Pairs/Match is populated on success (a nil empty Pairs still
// means success for an RQ with no answers, and Pairs stays nil when the
// request streamed through Emit); Err reports malformed requests and
// context cancellation. Elapsed is the evaluation time on the worker,
// excluding queue wait (zero for requests that never ran).
type Result struct {
	ID      uint64
	Pairs   []reach.Pair    // RQ answer
	Match   *pattern.Result // PQ answer
	Err     error
	Elapsed time.Duration

	// Wait is the time the request spent queued between Submit and the
	// start of processing (or its shed) — the scheduling delay the QoS
	// layer bounds. Zero for RunBatch-internal bookkeeping errors.
	Wait time.Duration
}

// RunBatch evaluates every request and returns the results in request
// order (Result.ID doubles as the index). Work is distributed over the
// engine's worker pool; each worker evaluates whole queries with its
// own scratch arena against the shared Matrix or Cache. RunBatch may be
// called concurrently from several goroutines; all calls share the
// engine's concurrency bound. It is a convenience wrapper over a
// Session that submits everything and materializes every answer at
// once; arrival-over-time workloads and memory-bounded serving should
// open a Session directly.
func (e *Engine) RunBatch(reqs []Request) []Result {
	return e.RunBatchCtx(context.Background(), reqs)
}

// RunBatchCtx is RunBatch with cancellation: when ctx is cancelled
// mid-batch, evaluators stop at their next checkpoint and every
// not-yet-evaluated request's Result carries ctx's error. The slice is
// always fully populated, in request order.
func (e *Engine) RunBatchCtx(ctx context.Context, reqs []Request) []Result {
	out := make([]Result, len(reqs))
	if len(reqs) == 0 {
		return out
	}
	s := e.Open(ctx, SessionOptions{
		// Enough admission headroom to keep every worker busy while the
		// collector loop below materializes results, and a small buffer so
		// workers rarely block on the hand-off; the batch materializes
		// everything anyway, so the extra resident answers cost nothing.
		MaxInFlight:  2 * e.workers,
		ResultBuffer: e.workers,
	})
	go func() {
		for i := range reqs {
			// Session ids count up from 0 in admission order, and this is
			// the only submitter: ids coincide with batch indices.
			if _, err := s.Submit(ctx, reqs[i]); err != nil {
				break
			}
		}
		s.Close()
	}()
	seen := make([]bool, len(reqs))
	for r := range s.Results() {
		out[r.ID] = r
		seen[r.ID] = true
	}
	for i, ok := range seen {
		if !ok {
			// Cancelled before submission or dropped after cancellation:
			// still attributable, still an explicit error.
			err := ctx.Err()
			if err == nil {
				err = context.Canceled
			}
			out[i] = Result{ID: uint64(i), Err: err}
		}
	}
	return out
}

// RunRQs is RunBatch for a homogeneous slice of reachability queries.
func (e *Engine) RunRQs(qs []reach.Query) [][]reach.Pair {
	reqs := make([]Request, len(qs))
	for i := range qs {
		reqs[i] = Request{RQ: &qs[i]}
	}
	res := e.RunBatch(reqs)
	out := make([][]reach.Pair, len(res))
	for i, r := range res {
		out[i] = r.Pairs
	}
	return out
}

// runCtx evaluates one request on one worker's arena against one pinned
// generation, with ctx threaded into the evaluators' cancellation
// checkpoints. st never changes under the evaluation — that is the
// snapshot-isolation guarantee sessions rely on.
func (e *Engine) runCtx(ctx context.Context, st *genState, r Request, s *dist.Scratch) Result {
	switch {
	case r.RQ != nil && r.PQ != nil:
		return Result{Err: fmt.Errorf("engine: request sets both RQ and PQ")}
	case r.RQ != nil:
		if r.Emit != nil {
			var err error
			if st.mx != nil {
				err = r.RQ.StreamMatrix(ctx, st.g, st.mx, st.candSource(), r.Emit)
			} else {
				err = r.RQ.StreamBackend(ctx, st.g, st.be, s, st.candSource(), r.Emit)
			}
			return Result{Err: err}
		}
		var pairs []reach.Pair
		collect := func(p reach.Pair) bool {
			pairs = append(pairs, p)
			return true
		}
		var err error
		if st.mx != nil {
			err = r.RQ.StreamMatrix(ctx, st.g, st.mx, st.candSource(), collect)
		} else {
			err = r.RQ.StreamBackend(ctx, st.g, st.be, s, st.candSource(), collect)
		}
		if err != nil {
			return Result{Err: err}
		}
		return Result{Pairs: pairs}
	case r.PQ != nil:
		match, err := pattern.JoinMatchCtx(ctx, st.g, r.PQ, pattern.Options{
			Matrix: st.mx, Backend: st.be, Scratch: s, Cands: st.candSource(),
		})
		if err != nil {
			return Result{Err: err}
		}
		return Result{Match: match}
	default:
		return Result{Err: fmt.Errorf("engine: empty request")}
	}
}
