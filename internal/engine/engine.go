// Package engine is the resident concurrent query engine: one Engine
// owns a data graph together with its shared distance structures (a
// precomputed dist.Matrix, or a dist.Cache shared by every worker — the
// paper's Section 4 explicitly designs the cache to be shared across
// queries), and evaluates reachability and pattern queries across a
// bounded worker pool.
//
// Queries enter through a Session (Engine.Open): Submit admits requests
// under a configurable in-flight bound (back-pressure), Results streams
// answers out in completion order tagged with request ids, and context
// cancellation stops in-flight evaluators at periodic checkpoints and
// drains the session without leaking goroutines. RunBatch/RunRQs are
// convenience wrappers that run one whole batch through a session and
// materialize every answer.
//
// Each worker slot carries a persistent dist.Scratch arena (closure
// ping-pong buffers, BFS queues, seed bitsets), so a long-running engine
// reaches a steady state where evaluating a query allocates little more
// than its answer slice. Construction also builds the attribute
// inverted index (internal/candidx) and an engine-wide
// predicate→candidates memo shared by all workers, so no query pays
// the O(|V|·clauses) candidate scan; Options.DisableCandidateIndex
// reverts to the scan. The number of arenas bounds total evaluation
// concurrency engine-wide: overlapping RunBatch calls from several
// goroutines share the same pool of worker slots rather than multiplying
// goroutines.
//
// Concurrency contract: the graph must not be mutated while the engine
// is in use (construction eagerly builds the graph's per-color index so
// that all evaluation-time graph accesses are pure reads). The Matrix is
// immutable; the Cache serializes its LRU state behind a mutex and runs
// searches outside it. See DESIGN.md, "Engine & concurrency model".
package engine

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"regraph/internal/candidx"
	"regraph/internal/dist"
	"regraph/internal/graph"
	"regraph/internal/pattern"
	"regraph/internal/reach"
)

// Options configures an Engine.
type Options struct {
	// Workers bounds evaluation concurrency (and the number of resident
	// scratch arenas). Zero or negative means GOMAXPROCS.
	Workers int

	// Matrix, when non-nil, selects matrix-backed evaluation for every
	// query: RQs run EvalMatrix, PQs run JoinMatch with O(1) pair
	// lookups. The matrix is immutable and shared by all workers freely.
	Matrix *dist.Matrix

	// Cache is the shared LRU distance cache used when Matrix is nil.
	// When both are nil, the engine creates one of CacheSize entries.
	Cache *dist.Cache

	// CacheSize sizes the auto-created cache (default 1<<16). Ignored
	// when Matrix or Cache is set.
	CacheSize int

	// DisableCandidateIndex turns off the attribute inverted index and
	// the engine-wide predicate→candidates memo, reverting every
	// query's candidate computation to the O(|V|·clauses) node scan.
	// Answers are identical either way; exposed for measurement and as
	// an escape hatch for tiny graphs where the index build outweighs a
	// handful of scans.
	DisableCandidateIndex bool
}

// Engine is a resident query engine over one graph. Create it with New;
// an Engine is safe for concurrent use by multiple goroutines.
type Engine struct {
	g       *graph.Graph
	mx      *dist.Matrix
	cache   *dist.Cache
	workers int

	// slots hands out (arena, worker identity) pairs; its capacity is
	// the engine-wide concurrency bound.
	slots chan *dist.Scratch

	// cands is the engine-wide candidate memo (attribute inverted index
	// + predicate→candidates cache), shared by every worker and batch;
	// nil when DisableCandidateIndex is set.
	cands *candidx.Memo
}

// New builds an engine over g. The graph must not be mutated afterwards
// while the engine is in use.
func New(g *graph.Graph, opts Options) *Engine {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cache := opts.Cache
	if cache == nil && opts.Matrix == nil {
		size := opts.CacheSize
		if size <= 0 {
			size = 1 << 16
		}
		cache = dist.NewCache(g, size)
	}
	// Freeze the graph's lazy per-color index now: pattern normalization
	// probes Succ/Pred, and building the index on first use from several
	// workers at once would race.
	g.BuildColorIndex()
	e := &Engine{
		g:       g,
		mx:      opts.Matrix,
		cache:   cache,
		workers: workers,
		slots:   make(chan *dist.Scratch, workers),
	}
	if !opts.DisableCandidateIndex {
		// Build the attribute inverted index once, up front, so no batch
		// pays it mid-flight; the memo it feeds is shared engine-wide.
		e.cands = candidx.NewMemo(g)
	}
	for i := 0; i < workers; i++ {
		e.slots <- dist.NewScratch()
	}
	return e
}

// Graph returns the engine's graph.
func (e *Engine) Graph() *graph.Graph { return e.g }

// Matrix returns the shared distance matrix, nil in cache mode.
func (e *Engine) Matrix() *dist.Matrix { return e.mx }

// Cache returns the shared distance cache, nil in matrix mode.
func (e *Engine) Cache() *dist.Cache { return e.cache }

// Workers returns the engine's concurrency bound.
func (e *Engine) Workers() int { return e.workers }

// Cands returns the engine-wide candidate memo, nil when the candidate
// index was disabled at construction.
func (e *Engine) Cands() *candidx.Memo { return e.cands }

// candSource adapts the memo field to the evaluators' interface
// parameter without ever wrapping a nil *Memo in a non-nil interface.
func (e *Engine) candSource() reach.CandidateSource {
	if e.cands == nil {
		return nil
	}
	return e.cands
}

// Request is one query of a batch or session: exactly one of RQ or PQ
// must be set.
type Request struct {
	RQ *reach.Query
	PQ *pattern.Query

	// Emit, when non-nil on an RQ request, streams the answer pairs to
	// the callback one at a time instead of materializing Result.Pairs —
	// the Result then only signals completion. The callback runs on the
	// evaluating worker goroutine, in answer order; returning false stops
	// the enumeration early. Ignored for PQ requests (pattern answers
	// are per-edge sets, not a pair stream).
	Emit func(reach.Pair) bool
}

// Result is the answer to one Request. ID is the originating request's
// id: the batch index for RunBatch/RunRQs, the Submit-returned id for a
// session — so every result, including errors, is attributable. Exactly
// one of Pairs/Match is populated on success (a nil empty Pairs still
// means success for an RQ with no answers, and Pairs stays nil when the
// request streamed through Emit); Err reports malformed requests and
// context cancellation. Elapsed is the evaluation time on the worker,
// excluding queue wait (zero for requests that never ran).
type Result struct {
	ID      uint64
	Pairs   []reach.Pair    // RQ answer
	Match   *pattern.Result // PQ answer
	Err     error
	Elapsed time.Duration
}

// RunBatch evaluates every request and returns the results in request
// order (Result.ID doubles as the index). Work is distributed over the
// engine's worker pool; each worker evaluates whole queries with its
// own scratch arena against the shared Matrix or Cache. RunBatch may be
// called concurrently from several goroutines; all calls share the
// engine's concurrency bound. It is a convenience wrapper over a
// Session that submits everything and materializes every answer at
// once; arrival-over-time workloads and memory-bounded serving should
// open a Session directly.
func (e *Engine) RunBatch(reqs []Request) []Result {
	return e.RunBatchCtx(context.Background(), reqs)
}

// RunBatchCtx is RunBatch with cancellation: when ctx is cancelled
// mid-batch, evaluators stop at their next checkpoint and every
// not-yet-evaluated request's Result carries ctx's error. The slice is
// always fully populated, in request order.
func (e *Engine) RunBatchCtx(ctx context.Context, reqs []Request) []Result {
	out := make([]Result, len(reqs))
	if len(reqs) == 0 {
		return out
	}
	s := e.Open(ctx, SessionOptions{
		// Enough admission headroom to keep every worker busy while the
		// collector loop below materializes results, and a small buffer so
		// workers rarely block on the hand-off; the batch materializes
		// everything anyway, so the extra resident answers cost nothing.
		MaxInFlight:  2 * e.workers,
		ResultBuffer: e.workers,
	})
	go func() {
		for i := range reqs {
			// Session ids count up from 0 in admission order, and this is
			// the only submitter: ids coincide with batch indices.
			if _, err := s.Submit(ctx, reqs[i]); err != nil {
				break
			}
		}
		s.Close()
	}()
	seen := make([]bool, len(reqs))
	for r := range s.Results() {
		out[r.ID] = r
		seen[r.ID] = true
	}
	for i, ok := range seen {
		if !ok {
			// Cancelled before submission or dropped after cancellation:
			// still attributable, still an explicit error.
			err := ctx.Err()
			if err == nil {
				err = context.Canceled
			}
			out[i] = Result{ID: uint64(i), Err: err}
		}
	}
	return out
}

// RunRQs is RunBatch for a homogeneous slice of reachability queries.
func (e *Engine) RunRQs(qs []reach.Query) [][]reach.Pair {
	reqs := make([]Request, len(qs))
	for i := range qs {
		reqs[i] = Request{RQ: &qs[i]}
	}
	res := e.RunBatch(reqs)
	out := make([][]reach.Pair, len(res))
	for i, r := range res {
		out[i] = r.Pairs
	}
	return out
}

// runCtx evaluates one request on one worker's arena, with ctx threaded
// into the evaluators' cancellation checkpoints.
func (e *Engine) runCtx(ctx context.Context, r Request, s *dist.Scratch) Result {
	switch {
	case r.RQ != nil && r.PQ != nil:
		return Result{Err: fmt.Errorf("engine: request sets both RQ and PQ")}
	case r.RQ != nil:
		if r.Emit != nil {
			var err error
			if e.mx != nil {
				err = r.RQ.StreamMatrix(ctx, e.g, e.mx, e.candSource(), r.Emit)
			} else {
				err = r.RQ.StreamBiBFS(ctx, e.g, e.cache, s, e.candSource(), r.Emit)
			}
			return Result{Err: err}
		}
		var pairs []reach.Pair
		collect := func(p reach.Pair) bool {
			pairs = append(pairs, p)
			return true
		}
		var err error
		if e.mx != nil {
			err = r.RQ.StreamMatrix(ctx, e.g, e.mx, e.candSource(), collect)
		} else {
			err = r.RQ.StreamBiBFS(ctx, e.g, e.cache, s, e.candSource(), collect)
		}
		if err != nil {
			return Result{Err: err}
		}
		return Result{Pairs: pairs}
	case r.PQ != nil:
		match, err := pattern.JoinMatchCtx(ctx, e.g, r.PQ, pattern.Options{
			Matrix: e.mx, Cache: e.cache, Scratch: s, Cands: e.candSource(),
		})
		if err != nil {
			return Result{Err: err}
		}
		return Result{Match: match}
	default:
		return Result{Err: fmt.Errorf("engine: empty request")}
	}
}
