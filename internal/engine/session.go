package engine

import (
	"context"
	"errors"
	"sync"
	"time"

	"regraph/internal/dist"
	"regraph/internal/metrics"
)

// ErrSessionClosed is returned by Submit after Close (or after the
// session's context was cancelled and the session drained).
var ErrSessionClosed = errors.New("engine: session closed")

// SessionOptions configures Engine.Open.
type SessionOptions struct {
	// MaxInFlight bounds admission: at most this many requests may be
	// past Submit and not yet handed to the Results consumer. Submit
	// blocks (back-pressure) once the bound is reached. Because a
	// request's answer is materialized only while it is in flight, this
	// bound also caps the session's resident answer memory at
	// MaxInFlight (+ ResultBuffer) answers. Zero or negative means twice
	// the engine's worker count.
	MaxInFlight int

	// ResultBuffer sizes the Results channel. Zero (the default) makes
	// result hand-off synchronous: a worker holds its finished answer
	// until the consumer receives it, which is the strictest memory
	// bound. A small buffer decouples workers from a consumer that does
	// per-result work, at the cost of up to ResultBuffer extra resident
	// answers.
	ResultBuffer int
}

// submission is one accepted request travelling to a session worker.
type submission struct {
	id  uint64
	req Request
}

// Session is a streaming query session over an Engine: requests arrive
// one at a time through Submit (which blocks once MaxInFlight answers
// are outstanding — admission control), finished answers stream out of
// Results in completion order, tagged with their request ids, and
// cancelling the context passed to Engine.Open stops in-flight
// evaluation at the evaluators' cancellation checkpoints.
//
// Lifecycle contract:
//
//   - Submit may be called from any number of goroutines.
//   - The consumer should range over Results until it is closed; it
//     closes after Close has been called (or the context cancelled) and
//     every accepted request has produced its Result.
//   - Close stops admission, waits for in-flight work to drain into
//     Results, and then releases the session. A graceful Close therefore
//     requires a concurrent Results consumer; after cancellation Close
//     never blocks on the consumer.
//   - After cancellation, every accepted request still gets a Result
//     (evaluated ones carry answers, abandoned ones carry ctx's error),
//     but delivery becomes best-effort: results a departed consumer
//     never picks up are dropped (counted in Stats().Dropped) rather
//     than leaking the worker.
//
// A Session never leaks goroutines: its workers exit once the session
// is closed or cancelled and the queue is drained, whether or not the
// consumer is still reading.
type Session struct {
	e      *Engine
	ctx    context.Context
	cancel context.CancelFunc

	maxInFlight int
	queue       chan submission
	results     chan Result
	inflight    chan struct{} // admission tokens; released on delivery

	mu     sync.Mutex
	closed bool
	nextID uint64

	wg   sync.WaitGroup
	done chan struct{} // closed after results is closed

	submitted  metrics.Counter
	completed  metrics.Counter
	cancelled  metrics.Counter
	failed     metrics.Counter
	delivered  metrics.Counter
	dropped    metrics.Counter
	inFlight   metrics.Gauge // admitted, result not yet handed over
	queueDepth metrics.Gauge // admitted, not yet picked up by a worker
	latency    metrics.Latency
}

// SessionStats is a point-in-time snapshot of a session's counters and
// gauges (see Session.Stats).
type SessionStats struct {
	// Submitted counts requests accepted by Submit. Completed counts
	// evaluations that produced an answer, Cancelled those abandoned by
	// context cancellation, Failed malformed requests. Delivered counts
	// Results handed to the consumer (or its buffer); Dropped counts
	// post-cancellation results no consumer picked up.
	Submitted, Completed, Cancelled, Failed uint64
	Delivered, Dropped                      uint64

	// InFlight is the current number of admitted requests whose results
	// have not yet been handed over; QueueDepth is how many of those are
	// still waiting for a worker. MaxInFlight echoes the admission bound.
	InFlight, QueueDepth, MaxInFlight int

	// Latency summarizes per-query evaluation time (queue wait excluded).
	Latency metrics.LatencySnapshot
}

// Open starts a streaming session on the engine. Cancelling ctx aborts
// the session: in-flight evaluators stop at their next cancellation
// checkpoint, queued requests are failed with ctx's error, and Results
// closes once everything accepted has been accounted for. See Session
// for the full lifecycle contract.
func (e *Engine) Open(ctx context.Context, opts SessionOptions) *Session {
	if ctx == nil {
		ctx = context.Background()
	}
	m := opts.MaxInFlight
	if m <= 0 {
		m = 2 * e.workers
	}
	rb := opts.ResultBuffer
	if rb < 0 {
		rb = 0
	}
	sctx, cancel := context.WithCancel(ctx)
	s := &Session{
		e:           e,
		ctx:         sctx,
		cancel:      cancel,
		maxInFlight: m,
		// queue capacity equals the admission bound: a Submit that holds a
		// token always finds queue space, so the only blocking point is
		// token acquisition.
		queue:    make(chan submission, m),
		results:  make(chan Result, rb),
		inflight: make(chan struct{}, m),
		done:     make(chan struct{}),
	}
	workers := e.workers
	if workers > m {
		workers = m
	}
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	// Monitor: a cancelled context must end the session even if Close is
	// never called, or workers would block on the queue forever.
	go func() {
		select {
		case <-sctx.Done():
			s.closeQueue()
		case <-s.done:
		}
	}()
	// Finisher: Results closes exactly when every accepted request has
	// been accounted for and no worker can send anymore.
	go func() {
		s.wg.Wait()
		close(s.results)
		close(s.done)
	}()
	return s
}

// Submit hands one request to the session and returns its id (ids count
// up from 0 in admission order). It blocks while MaxInFlight results
// are outstanding, until ctx or the session's context is cancelled, or
// the session is closed. The returned id tags the request's Result.
//
// For a Request with an Emit callback, pairs are streamed to the
// callback from the evaluating worker goroutine and the final Result
// carries no Pairs slice — the session then holds no answer memory for
// that request at all.
func (s *Session) Submit(ctx context.Context, req Request) (uint64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case s.inflight <- struct{}{}:
	case <-ctx.Done():
		return 0, ctx.Err()
	case <-s.ctx.Done():
		return 0, ErrSessionClosed
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.inflight
		return 0, ErrSessionClosed
	}
	id := s.nextID
	s.nextID++
	// Count before the enqueue: a worker may complete and deliver the
	// request the moment it is queued, and the Stats invariants
	// (Delivered+Dropped <= Submitted at every instant) must hold in any
	// snapshot.
	s.submitted.Inc()
	s.inFlight.Add(1)
	s.queueDepth.Add(1)
	// Guaranteed not to block: the token bounds outstanding submissions
	// by the queue's capacity, and the send happens under the same lock
	// closeQueue takes, so the channel cannot close mid-send.
	s.queue <- submission{id: id, req: req}
	s.mu.Unlock()
	return id, nil
}

// Results is the stream of answers, in completion order (not submission
// order — use Result.ID to correlate). The channel closes once the
// session is closed or cancelled and every accepted request has been
// accounted for.
func (s *Session) Results() <-chan Result {
	return s.results
}

// Close stops admission, waits until every accepted request's Result
// has been delivered (drain the Results channel concurrently!) and
// releases the session. Safe to call more than once and after
// cancellation; always returns nil.
func (s *Session) Close() error {
	s.closeQueue()
	<-s.done
	s.cancel()
	return nil
}

// Stats returns a point-in-time snapshot of the session's metrics.
func (s *Session) Stats() SessionStats {
	return SessionStats{
		Submitted:   s.submitted.Load(),
		Completed:   s.completed.Load(),
		Cancelled:   s.cancelled.Load(),
		Failed:      s.failed.Load(),
		Delivered:   s.delivered.Load(),
		Dropped:     s.dropped.Load(),
		InFlight:    int(s.inFlight.Load()),
		QueueDepth:  int(s.queueDepth.Load()),
		MaxInFlight: s.maxInFlight,
		Latency:     s.latency.Snapshot(),
	}
}

// closeQueue stops admission exactly once; workers then exit as soon as
// the queue drains.
func (s *Session) closeQueue() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.mu.Unlock()
}

// worker consumes submissions until the queue is closed and drained.
// Each request is evaluated on an engine slot's scratch arena with the
// session context bound, so cancellation reaches the innermost BFS
// loops; the admission token is released only after the Result has been
// handed over, which is what makes MaxInFlight a resident-answer bound.
func (s *Session) worker() {
	defer s.wg.Done()
	for sub := range s.queue {
		s.queueDepth.Add(-1)
		s.deliver(s.process(sub))
		<-s.inflight
		s.inFlight.Add(-1)
	}
}

// process evaluates one submission (or fails it fast when the session
// context is already dead).
func (s *Session) process(sub submission) Result {
	if err := s.ctx.Err(); err != nil {
		s.cancelled.Inc()
		return Result{ID: sub.id, Err: err}
	}
	var sc *dist.Scratch
	select {
	case sc = <-s.e.slots:
	case <-s.ctx.Done():
		// Never got a worker slot: the query is abandoned without having
		// burnt any evaluation time.
		s.cancelled.Inc()
		return Result{ID: sub.id, Err: s.ctx.Err()}
	}
	t0 := time.Now()
	r := s.e.runCtx(s.ctx, sub.req, sc)
	s.e.slots <- sc
	r.ID = sub.id
	r.Elapsed = time.Since(t0)
	switch {
	case r.Err == nil:
		s.completed.Inc()
		s.latency.Observe(r.Elapsed)
	case errors.Is(r.Err, context.Canceled) || errors.Is(r.Err, context.DeadlineExceeded):
		s.cancelled.Inc()
	default:
		s.failed.Inc()
	}
	return r
}

// deliver hands a Result to the consumer. Before cancellation the send
// blocks — that, plus the admission token released after it, is the
// session's back-pressure. After cancellation the consumer may be gone,
// so delivery degrades to one non-blocking attempt and the result is
// otherwise dropped (counted); workers never block on a departed
// consumer.
func (s *Session) deliver(r Result) {
	select {
	case s.results <- r:
		s.delivered.Inc()
		return
	case <-s.ctx.Done():
	}
	select {
	case s.results <- r:
		s.delivered.Inc()
	default:
		s.dropped.Inc()
	}
}
