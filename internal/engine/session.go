package engine

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"regraph/internal/dist"
	"regraph/internal/graph"
	"regraph/internal/metrics"
)

// ErrSessionClosed is returned by Submit after Close (or after the
// session's context was cancelled and the session drained).
var ErrSessionClosed = errors.New("engine: session closed")

// deadlineExpiredError is ErrDeadlineExpired's concrete type: it also
// matches context.DeadlineExceeded under errors.Is, so generic
// deadline handling (retry policies, error classification) treats a
// shed request like any other deadline failure, while errors.Is(err,
// ErrDeadlineExpired) still distinguishes "never ran" from "abandoned
// mid-evaluation".
type deadlineExpiredError struct{}

func (deadlineExpiredError) Error() string { return "engine: deadline expired before evaluation" }
func (deadlineExpiredError) Is(target error) bool {
	return target == context.DeadlineExceeded
}

// ErrDeadlineExpired marks a request that was shed: its deadline passed
// while it waited in the session queue (or for a worker slot), so it
// was completed with this error instead of being evaluated. It matches
// context.DeadlineExceeded under errors.Is; a deadline miss during
// evaluation carries plain context.DeadlineExceeded instead.
var ErrDeadlineExpired error = deadlineExpiredError{}

// SessionOptions configures Engine.Open.
type SessionOptions struct {
	// MaxInFlight bounds admission: at most this many requests may be
	// past Submit and not yet handed to the Results consumer. Submit
	// blocks (back-pressure) once the bound is reached. Because a
	// request's answer is materialized only while it is in flight, this
	// bound also caps the session's resident answer memory at
	// MaxInFlight (+ ResultBuffer) answers. Zero or negative means twice
	// the engine's worker count. With AdaptiveInFlight set this is the
	// ceiling of the adaptive bound.
	MaxInFlight int

	// ResultBuffer sizes the Results channel. Zero (the default) makes
	// result hand-off synchronous: a worker holds its finished answer
	// until the consumer receives it, which is the strictest memory
	// bound. A small buffer decouples workers from a consumer that does
	// per-result work, at the cost of up to ResultBuffer extra resident
	// answers.
	ResultBuffer int

	// FIFO reverts scheduling to strict admission order: Priority is
	// ignored and queued requests are never shed before their turn —
	// a request whose deadline expired in the queue still waits for a
	// worker (and is then completed with ErrDeadlineExpired without
	// being evaluated). Deadlines are still enforced once a request
	// reaches a worker. This is the pre-QoS scheduling, kept as the
	// measurable control; the default scheduler behaves identically
	// whenever no request sets Priority or Deadline.
	FIFO bool

	// AdaptiveInFlight enables adaptive admission: the effective
	// in-flight bound shrinks below MaxInFlight when the observed p99
	// evaluation latency approaches the typical deadline budget of
	// submitted requests (so admitted requests retain a chance of
	// finishing inside their deadlines instead of queueing into certain
	// expiry), and grows back under headroom. MaxInFlight stays the
	// ceiling; the engine's worker count is the floor. Without
	// deadline-carrying requests the controller has no target and the
	// bound stays at MaxInFlight.
	AdaptiveInFlight bool
}

// Session is a streaming query session over an Engine: requests arrive
// one at a time through Submit (which blocks once MaxInFlight answers
// are outstanding — admission control), finished answers stream out of
// Results in completion order, tagged with their request ids, and
// cancelling the context passed to Engine.Open stops in-flight
// evaluation at the evaluators' cancellation checkpoints.
//
// Scheduling: queued requests run earliest-deadline-first within
// weighted priority bands (see Request.Priority); with no priorities or
// deadlines set this degenerates to exact FIFO. A request whose
// Deadline passes while it is still queued is shed — completed with
// ErrDeadlineExpired, without consuming evaluation time — and one whose
// deadline fires mid-evaluation is abandoned at the evaluators' next
// cancellation checkpoint with context.DeadlineExceeded.
//
// Lifecycle contract:
//
//   - Submit may be called from any number of goroutines.
//   - The consumer should range over Results until it is closed; it
//     closes after Close has been called (or the context cancelled) and
//     every accepted request has produced its Result.
//   - Close stops admission, waits for in-flight work to drain into
//     Results, and then releases the session. A graceful Close therefore
//     requires a concurrent Results consumer; after cancellation Close
//     never blocks on the consumer.
//   - After cancellation, every accepted request still gets a Result
//     (evaluated ones carry answers, abandoned ones carry ctx's error),
//     but delivery becomes best-effort: results a departed consumer
//     never picks up are dropped (counted in Stats().Dropped) rather
//     than leaking the worker.
//
// A Session never leaks goroutines: its workers exit once the session
// is closed or cancelled and the queue is drained, whether or not the
// consumer is still reading.
type Session struct {
	e *Engine
	// st is the generation pinned at Open: every request of the session
	// evaluates against this exact graph/backend/memo bundle, however
	// many mutation batches commit while the session is open. That is
	// the session's snapshot isolation — an in-flight stream never sees
	// a half-applied batch, or any batch at all.
	st     *genState
	ctx    context.Context
	cancel context.CancelFunc

	maxInFlight int
	nworkers    int
	results     chan Result
	inflight    chan struct{} // admission tokens; released on delivery

	mu     sync.Mutex // guards closed, nextID and sq
	cond   *sync.Cond // workers wait here for queued work
	closed bool
	nextID uint64
	sq     *schedQueue

	reapKick chan struct{} // wakes the reaper when the earliest deadline changes

	wg   sync.WaitGroup
	done chan struct{} // closed after results is closed

	submitted  metrics.Counter
	completed  metrics.Counter
	cancelled  metrics.Counter
	failed     metrics.Counter
	expired    metrics.Counter // shed: deadline passed before evaluation
	missed     metrics.Counter // deadline fired mid-evaluation
	delivered  metrics.Counter
	dropped    metrics.Counter
	inFlight   metrics.Gauge // admitted, result not yet handed over
	queueDepth metrics.Gauge // admitted, not yet picked up by a worker
	effBound   metrics.Gauge // adaptive admission's current effective bound
	latency    metrics.Latency
	queueWait  metrics.Latency

	// budgetEWMA tracks the typical deadline budget (deadline minus
	// submit time) of deadline-carrying requests, in nanoseconds — the
	// adaptive controller's target. Zero until a deadline is seen.
	budgetEWMA atomic.Int64
}

// SessionStats is a point-in-time snapshot of a session's counters and
// gauges (see Session.Stats).
type SessionStats struct {
	// Submitted counts requests accepted by Submit. Completed counts
	// evaluations that produced an answer, Cancelled those abandoned by
	// context cancellation, Failed malformed requests. Expired counts
	// requests shed because their deadline passed before evaluation
	// began (ErrDeadlineExpired); Missed those whose deadline fired
	// mid-evaluation. Delivered counts Results handed to the consumer
	// (or its buffer); Dropped counts post-cancellation results no
	// consumer picked up.
	Submitted, Completed, Cancelled, Failed uint64
	Expired, Missed                         uint64
	Delivered, Dropped                      uint64

	// InFlight is the current number of admitted requests whose results
	// have not yet been handed over; QueueDepth is how many of those are
	// still waiting for a worker. MaxInFlight echoes the admission
	// bound; EffectiveInFlight is the adaptive controller's current
	// bound (equal to MaxInFlight when adaptive admission is off or has
	// no deadline signal).
	InFlight, QueueDepth, MaxInFlight int
	EffectiveInFlight                 int

	// Latency summarizes per-query evaluation time (queue wait
	// excluded); QueueWait summarizes the time requests spent queued
	// before evaluation or shed — the delay the scheduler controls.
	Latency   metrics.LatencySnapshot
	QueueWait metrics.LatencySnapshot
}

// Open starts a streaming session on the engine. Cancelling ctx aborts
// the session: in-flight evaluators stop at their next cancellation
// checkpoint, queued requests are failed with ctx's error, and Results
// closes once everything accepted has been accounted for. See Session
// for the full lifecycle contract.
func (e *Engine) Open(ctx context.Context, opts SessionOptions) *Session {
	if ctx == nil {
		ctx = context.Background()
	}
	m := opts.MaxInFlight
	if m <= 0 {
		m = 2 * e.workers
	}
	rb := opts.ResultBuffer
	if rb < 0 {
		rb = 0
	}
	sctx, cancel := context.WithCancel(ctx)
	s := &Session{
		e:           e,
		st:          e.cur.Load(),
		ctx:         sctx,
		cancel:      cancel,
		maxInFlight: m,
		results:     make(chan Result, rb),
		inflight:    make(chan struct{}, m),
		sq:          newSchedQueue(opts.FIFO),
		reapKick:    make(chan struct{}, 1),
		done:        make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	s.effBound.Set(int64(m))
	workers := e.workers
	if workers > m {
		workers = m
	}
	s.nworkers = workers
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	if !opts.FIFO {
		// The reaper sheds expired queued requests the moment their
		// deadline passes, even while every worker is busy — which is what
		// frees their admission tokens for requests that can still make
		// their deadlines. (In FIFO mode expiry is only discovered when
		// the request's turn comes: the control preserves head-of-line
		// blocking by design.)
		s.wg.Add(1)
		go s.reaper()
	}
	if opts.AdaptiveInFlight {
		go s.adapt()
	}
	// Monitor: a cancelled context must end the session even if Close is
	// never called, or workers would block on the queue forever.
	go func() {
		select {
		case <-sctx.Done():
			s.closeQueue()
		case <-s.done:
		}
	}()
	// Finisher: Results closes exactly when every accepted request has
	// been accounted for and no worker can send anymore.
	go func() {
		s.wg.Wait()
		close(s.results)
		close(s.done)
	}()
	return s
}

// Submit hands one request to the session and returns its id (ids count
// up from 0 in admission order). It blocks while MaxInFlight results
// are outstanding, until ctx or the session's context is cancelled, or
// the session is closed. The returned id tags the request's Result.
//
// For a Request with an Emit callback, pairs are streamed to the
// callback from the evaluating worker goroutine and the final Result
// carries no Pairs slice — the session then holds no answer memory for
// that request at all.
func (s *Session) Submit(ctx context.Context, req Request) (uint64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case s.inflight <- struct{}{}:
	case <-ctx.Done():
		return 0, ctx.Err()
	case <-s.ctx.Done():
		return 0, ErrSessionClosed
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.inflight
		return 0, ErrSessionClosed
	}
	id := s.nextID
	s.nextID++
	// Count before the enqueue: a worker may complete and deliver the
	// request the moment it is queued, and the Stats invariants
	// (Delivered+Dropped <= Submitted at every instant) must hold in any
	// snapshot.
	s.submitted.Inc()
	s.inFlight.Add(1)
	s.queueDepth.Add(1)
	s.e.queuedReads.Add(1)
	hasDeadline := !req.Deadline.IsZero()
	if hasDeadline {
		if b := time.Until(req.Deadline); b > 0 {
			s.noteBudget(b)
		}
	}
	// Bounded by the admission token, so the queue never outgrows
	// MaxInFlight entries.
	s.sq.push(schedItem{id: id, req: req, deadline: req.Deadline, enq: time.Now()})
	s.cond.Signal()
	s.mu.Unlock()
	if hasDeadline {
		s.kickReaper() // the earliest queued deadline may have moved up
	}
	return id, nil
}

// noteBudget folds one deadline budget into the EWMA the adaptive
// controller targets (alpha 1/8; first observation seeds it).
func (s *Session) noteBudget(b time.Duration) {
	for {
		cur := s.budgetEWMA.Load()
		next := int64(b)
		if cur != 0 {
			next = cur + (int64(b)-cur)/8
		}
		if s.budgetEWMA.CompareAndSwap(cur, next) {
			return
		}
	}
}

// kickReaper nudges the reaper to re-arm its timer; never blocks.
func (s *Session) kickReaper() {
	select {
	case s.reapKick <- struct{}{}:
	default:
	}
}

// Generation returns the generation the session pinned at Open — the
// one every answer of this session describes.
func (s *Session) Generation() uint64 { return s.st.gen }

// Graph returns the session's pinned graph.
func (s *Session) Graph() *graph.Graph { return s.st.g }

// Results is the stream of answers, in completion order (not submission
// order — use Result.ID to correlate). The channel closes once the
// session is closed or cancelled and every accepted request has been
// accounted for.
func (s *Session) Results() <-chan Result {
	return s.results
}

// Close stops admission, waits until every accepted request's Result
// has been delivered (drain the Results channel concurrently!) and
// releases the session. Safe to call more than once and after
// cancellation; always returns nil.
func (s *Session) Close() error {
	s.closeQueue()
	<-s.done
	s.cancel()
	return nil
}

// Stats returns a point-in-time snapshot of the session's metrics.
func (s *Session) Stats() SessionStats {
	return SessionStats{
		Submitted:         s.submitted.Load(),
		Completed:         s.completed.Load(),
		Cancelled:         s.cancelled.Load(),
		Failed:            s.failed.Load(),
		Expired:           s.expired.Load(),
		Missed:            s.missed.Load(),
		Delivered:         s.delivered.Load(),
		Dropped:           s.dropped.Load(),
		InFlight:          int(s.inFlight.Load()),
		QueueDepth:        int(s.queueDepth.Load()),
		MaxInFlight:       s.maxInFlight,
		EffectiveInFlight: int(s.effBound.Load()),
		Latency:           s.latency.Snapshot(),
		QueueWait:         s.queueWait.Snapshot(),
	}
}

// closeQueue stops admission exactly once; workers then exit as soon as
// the queue drains.
func (s *Session) closeQueue() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		s.cond.Broadcast()
	}
	s.mu.Unlock()
	s.kickReaper()
}

// next blocks until there is queued work (returning the scheduler's
// pick) or the session is closed and drained (returning false).
func (s *Session) next() (schedItem, bool) {
	s.mu.Lock()
	for s.sq.size == 0 && !s.closed {
		s.cond.Wait()
	}
	if s.sq.size == 0 {
		s.mu.Unlock()
		return schedItem{}, false
	}
	it := s.sq.pop(time.Now())
	drained := s.closed && s.sq.size == 0
	s.mu.Unlock()
	if drained {
		s.kickReaper() // let the reaper observe closed-and-empty and exit
	}
	return it, true
}

// worker consumes scheduled items until the session is closed and the
// queue drained. Each request is evaluated on an engine slot's scratch
// arena with the session context (bounded by the request deadline, if
// any), so cancellation reaches the innermost BFS loops; the admission
// token is released only after the Result has been handed over, which
// is what makes MaxInFlight a resident-answer bound.
func (s *Session) worker() {
	defer s.wg.Done()
	for {
		it, ok := s.next()
		if !ok {
			return
		}
		s.queueDepth.Add(-1)
		s.e.queuedReads.Add(-1)
		s.deliver(s.process(it))
		<-s.inflight
		s.inFlight.Add(-1)
	}
}

// reaper sheds queued requests the moment their deadline passes: it
// sleeps until the earliest queued deadline, sweeps everything expired
// into error Results (releasing their admission tokens), and re-arms.
// Submit kicks it when a new deadline may be the soonest; it exits once
// the session is closed and drained, or on cancellation (after which
// the workers fast-fail whatever remains queued).
func (s *Session) reaper() {
	defer s.wg.Done()
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		s.mu.Lock()
		if s.closed && s.sq.size == 0 {
			s.mu.Unlock()
			return
		}
		next := s.sq.earliestDeadline()
		s.mu.Unlock()
		var fire <-chan time.Time
		if !next.IsZero() {
			d := time.Until(next)
			if d < 0 {
				d = 0
			}
			timer.Reset(d)
			fire = timer.C
		}
		select {
		case <-fire:
			s.sweepExpired()
		case <-s.reapKick:
			if fire != nil && !timer.Stop() {
				<-timer.C
			}
		case <-s.ctx.Done():
			if fire != nil && !timer.Stop() {
				<-timer.C
			}
			return
		}
	}
}

// sweepExpired pops and completes every queued item whose deadline has
// passed.
func (s *Session) sweepExpired() {
	for {
		s.mu.Lock()
		it, ok := s.sq.popExpired(time.Now())
		drained := ok && s.closed && s.sq.size == 0
		s.mu.Unlock()
		if !ok {
			return
		}
		if drained {
			s.kickReaper()
		}
		s.queueDepth.Add(-1)
		s.e.queuedReads.Add(-1)
		s.deliver(s.shed(it))
		<-s.inflight
		s.inFlight.Add(-1)
	}
}

// shed completes one expired request without evaluating it.
func (s *Session) shed(it schedItem) Result {
	wait := time.Since(it.enq)
	s.queueWait.Observe(wait)
	s.expired.Inc()
	return Result{ID: it.id, Err: ErrDeadlineExpired, Wait: wait}
}

// process evaluates one scheduled item (or fails it fast when the
// session context is already dead or the item's deadline has passed).
func (s *Session) process(it schedItem) Result {
	wait := time.Since(it.enq)
	s.queueWait.Observe(wait)
	if err := s.ctx.Err(); err != nil {
		s.cancelled.Inc()
		return Result{ID: it.id, Err: err, Wait: wait}
	}
	hasDeadline := !it.deadline.IsZero()
	if hasDeadline && !time.Now().Before(it.deadline) {
		s.expired.Inc()
		return Result{ID: it.id, Err: ErrDeadlineExpired, Wait: wait}
	}
	sc, err := s.acquireSlot(it.deadline)
	if err != nil {
		// Never got a worker slot: the query is abandoned (or shed, if its
		// own deadline ran out first) without having burnt any evaluation
		// time.
		if errors.Is(err, ErrDeadlineExpired) {
			s.expired.Inc()
		} else {
			s.cancelled.Inc()
		}
		return Result{ID: it.id, Err: err, Wait: time.Since(it.enq)}
	}
	ctx := s.ctx
	var cancel context.CancelFunc
	if hasDeadline {
		ctx, cancel = context.WithDeadline(s.ctx, it.deadline)
	}
	t0 := time.Now()
	r := s.e.runCtx(ctx, s.st, it.req, sc)
	if cancel != nil {
		cancel()
	}
	s.e.slots <- sc
	r.ID = it.id
	r.Wait = wait
	r.Elapsed = time.Since(t0)
	switch {
	case r.Err == nil:
		s.completed.Inc()
		s.latency.Observe(r.Elapsed)
	case hasDeadline && errors.Is(r.Err, context.DeadlineExceeded) && s.ctx.Err() == nil:
		// The request's own deadline fired mid-evaluation: a miss, not a
		// session-level cancellation.
		s.missed.Inc()
	case errors.Is(r.Err, context.Canceled) || errors.Is(r.Err, context.DeadlineExceeded):
		s.cancelled.Inc()
	default:
		s.failed.Inc()
	}
	return r
}

// acquireSlot borrows an engine scratch arena, giving up at the
// request's deadline (ErrDeadlineExpired) or on session cancellation.
func (s *Session) acquireSlot(deadline time.Time) (*dist.Scratch, error) {
	if deadline.IsZero() {
		select {
		case sc := <-s.e.slots:
			return sc, nil
		case <-s.ctx.Done():
			return nil, s.ctx.Err()
		}
	}
	timer := time.NewTimer(time.Until(deadline))
	defer timer.Stop()
	select {
	case sc := <-s.e.slots:
		return sc, nil
	case <-timer.C:
		return nil, ErrDeadlineExpired
	case <-s.ctx.Done():
		return nil, s.ctx.Err()
	}
}

// adaptInterval is the adaptive admission controller's control period:
// long enough to amortize a latency snapshot, short against any
// deadline a network client would set.
const adaptInterval = 10 * time.Millisecond

// adapt is the adaptive admission controller (SessionOptions.
// AdaptiveInFlight): a control loop that holds back admission tokens to
// shrink the effective in-flight bound when the observed p99 evaluation
// latency approaches the typical deadline budget, and releases them
// under headroom.
//
// Control law: with W session workers and p99 per-query evaluation
// time, an admitted request at queue position k waits ≈ (k/W)·p99, so
// the largest bound whose worst-case queue wait still fits the budget
// is (budget/p99)·W. The target is clamped to [W, MaxInFlight]: the
// floor keeps the workers busy (adaptive admission sheds queueing, not
// evaluation), the ceiling is the configured bound. Shrinking acquires
// tokens non-blockingly — it takes effect as in-flight work drains
// rather than fighting submitters — and growing releases them
// immediately.
func (s *Session) adapt() {
	ticker := time.NewTicker(adaptInterval)
	defer ticker.Stop()
	held := 0
	defer func() {
		for ; held > 0; held-- {
			<-s.inflight
		}
	}()
	floor := s.nworkers
	if floor > s.maxInFlight {
		floor = s.maxInFlight
	}
	for {
		select {
		case <-s.done:
			return
		case <-s.ctx.Done():
			return
		case <-ticker.C:
		}
		target := s.maxInFlight
		if budget := time.Duration(s.budgetEWMA.Load()); budget > 0 {
			if p99 := s.latency.Snapshot().P99; p99 > 0 {
				waves := int(budget / p99)
				if waves < 1 {
					waves = 1
				}
				target = waves * s.nworkers
				if target < floor {
					target = floor
				}
				if target > s.maxInFlight {
					target = s.maxInFlight
				}
			}
		}
		eff := s.maxInFlight - held
		for eff > target {
			select {
			case s.inflight <- struct{}{}:
				held++
				eff--
			default:
				// Tokens are all with real requests right now; retry at the
				// next tick as in-flight work drains.
				eff = target
			}
		}
		for eff < target && held > 0 {
			<-s.inflight
			held--
			eff++
		}
		s.effBound.Set(int64(s.maxInFlight - held))
	}
}

// deliver hands a Result to the consumer. Before cancellation the send
// blocks — that, plus the admission token released after it, is the
// session's back-pressure. After cancellation the consumer may be gone,
// so delivery degrades to one non-blocking attempt and the result is
// otherwise dropped (counted); workers never block on a departed
// consumer.
func (s *Session) deliver(r Result) {
	select {
	case s.results <- r:
		s.delivered.Inc()
		return
	case <-s.ctx.Done():
	}
	select {
	case s.results <- r:
		s.delivered.Inc()
	default:
		s.dropped.Inc()
	}
}
