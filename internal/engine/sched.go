package engine

import "time"

// This file is the session scheduler's data structure: a priority-band
// queue with earliest-deadline-first ordering inside each band and
// stride scheduling (weighted fair pick) across bands. The Session owns
// one schedQueue behind its mutex; workers pop from it, the reaper
// sweeps expired entries out of it. See DESIGN.md §11.

// numBands is the number of priority bands; Request.Priority values
// clamp into [0, MaxPriority]. Band p carries weight 2^p, so adjacent
// priorities differ by a factor of two in scheduling share.
const numBands = 8

// MaxPriority is the highest request priority; larger values are
// treated as MaxPriority, negative ones as 0.
const MaxPriority = numBands - 1

// strideOne is the pass increment of the weight-1 band (priority 0);
// band p advances by strideOne >> p per pick, so its long-run share is
// proportional to 2^p.
const strideOne = 1 << numBands

func clampPriority(p int) int {
	if p < 0 {
		return 0
	}
	if p > MaxPriority {
		return MaxPriority
	}
	return p
}

// schedItem is one admitted request waiting for a worker.
type schedItem struct {
	id       uint64
	req      Request
	seq      uint64    // admission order, session-wide
	deadline time.Time // zero = none
	enq      time.Time // admission instant (queue-wait measurement)
}

// before orders two items of the same band: earliest deadline first
// (no deadline sorts after every deadline), admission order on ties.
func (a schedItem) before(b schedItem) bool {
	switch {
	case a.deadline.IsZero() && b.deadline.IsZero():
		return a.seq < b.seq
	case a.deadline.IsZero():
		return false
	case b.deadline.IsZero():
		return true
	case a.deadline.Equal(b.deadline):
		return a.seq < b.seq
	default:
		return a.deadline.Before(b.deadline)
	}
}

// bandHeap is a binary min-heap of schedItems. In seq mode (the FIFO
// control) it orders by admission only; otherwise by before().
type bandHeap struct {
	items []schedItem
	bySeq bool
}

func (h *bandHeap) len() int { return len(h.items) }

func (h *bandHeap) less(i, j int) bool {
	if h.bySeq {
		return h.items[i].seq < h.items[j].seq
	}
	return h.items[i].before(h.items[j])
}

func (h *bandHeap) push(it schedItem) {
	h.items = append(h.items, it)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *bandHeap) pop() schedItem {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items[last] = schedItem{} // drop the request reference
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h.items) && h.less(l, small) {
			small = l
		}
		if r < len(h.items) && h.less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		h.items[i], h.items[small] = h.items[small], h.items[i]
		i = small
	}
	return top
}

// schedQueue orders a session's admitted-but-unstarted requests. Not
// safe for concurrent use — the Session serializes access behind its
// mutex. In fifo mode everything lands in one admission-ordered queue
// (the PR 4 scheduling, kept as the measurable control); otherwise
// requests are binned by clamped priority and picked by stride
// scheduling, EDF within the band.
type schedQueue struct {
	fifo  bool
	bands [numBands]bandHeap
	pass  [numBands]uint64 // stride-scheduling virtual time per band
	size  int
	seq   uint64
}

func newSchedQueue(fifo bool) *schedQueue {
	sq := &schedQueue{fifo: fifo}
	if fifo {
		sq.bands[0].bySeq = true
	}
	return sq
}

// push enqueues one item, stamping its admission sequence.
func (sq *schedQueue) push(it schedItem) {
	it.seq = sq.seq
	sq.seq++
	p := 0
	if !sq.fifo {
		p = clampPriority(it.req.Priority)
	}
	if sq.bands[p].len() == 0 {
		// A band joining the competition starts at the current virtual
		// time: an idle band must not bank credit and then monopolize the
		// workers when traffic arrives.
		min, found := uint64(0), false
		for q := 0; q < numBands; q++ {
			if sq.bands[q].len() > 0 && (!found || sq.pass[q] < min) {
				min, found = sq.pass[q], true
			}
		}
		if found && sq.pass[p] < min {
			sq.pass[p] = min
		}
	}
	sq.bands[p].push(it)
	sq.size++
}

// pop removes the next item to run; the caller guarantees size > 0.
// Already-expired items go first (they are answered without evaluation,
// so clearing them never delays live work); otherwise the non-empty
// band with the least pass wins and is advanced by its stride — higher
// bands have smaller strides, hence proportionally larger shares.
func (sq *schedQueue) pop(now time.Time) schedItem {
	if it, ok := sq.popExpired(now); ok {
		return it
	}
	best := -1
	for p := numBands - 1; p >= 0; p-- { // high → low: higher band wins pass ties
		if sq.bands[p].len() > 0 && (best < 0 || sq.pass[p] < sq.pass[best]) {
			best = p
		}
	}
	sq.pass[best] += strideOne >> uint(best)
	sq.size--
	return sq.bands[best].pop()
}

// popExpired removes one queued item whose deadline has passed (the
// earliest such, for determinism), reporting false when there is none.
// In fifo mode nothing is ever shed early: expired requests wait their
// admission-order turn — exactly the head-of-line behavior the QoS
// scheduler exists to fix.
func (sq *schedQueue) popExpired(now time.Time) (schedItem, bool) {
	if sq.fifo {
		return schedItem{}, false
	}
	best := -1
	for p := 0; p < numBands; p++ {
		if sq.bands[p].len() == 0 {
			continue
		}
		// EDF ordering puts each band's earliest deadline at its head.
		d := sq.bands[p].items[0].deadline
		if d.IsZero() || now.Before(d) {
			continue
		}
		if best < 0 || d.Before(sq.bands[best].items[0].deadline) {
			best = p
		}
	}
	if best < 0 {
		return schedItem{}, false
	}
	sq.size--
	return sq.bands[best].pop(), true
}

// earliestDeadline is the soonest deadline among queued items (zero
// when none carries one) — what the session's reaper arms its timer to.
func (sq *schedQueue) earliestDeadline() time.Time {
	if sq.fifo {
		return time.Time{}
	}
	var min time.Time
	for p := 0; p < numBands; p++ {
		if sq.bands[p].len() == 0 {
			continue
		}
		d := sq.bands[p].items[0].deadline
		if d.IsZero() {
			continue
		}
		if min.IsZero() || d.Before(min) {
			min = d
		}
	}
	return min
}
