package engine_test

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"regraph/internal/dist"
	"regraph/internal/engine"
	"regraph/internal/gen"
	"regraph/internal/graph"
	"regraph/internal/reach"
)

// mixedRequests builds a deterministic RQ/PQ mix for session tests.
func mixedRequests(g *graph.Graph, n int, seed int64) []engine.Request {
	r := rand.New(rand.NewSource(seed))
	reqs := make([]engine.Request, n)
	for i := range reqs {
		if i%4 == 3 {
			pq := gen.Query(g, gen.Spec{Nodes: 3, Edges: 3, Preds: 2, Bound: 3, Colors: 2}, r)
			reqs[i] = engine.Request{PQ: pq}
		} else {
			q := gen.RQ(g, 2, 3, 1+r.Intn(3), r)
			reqs[i] = engine.Request{RQ: &q}
		}
	}
	return reqs
}

// TestSessionMatchesRunBatch: results submitted through a session from
// several goroutines, re-ordered by id, must be identical to RunBatch
// on the same requests — in cache mode and in matrix mode.
func TestSessionMatchesRunBatch(t *testing.T) {
	g := testGraph(7)
	reqs := mixedRequests(g, 48, 11)
	mx := dist.NewMatrix(g)
	for name, opts := range map[string]engine.Options{
		"cache":  {Workers: 4},
		"matrix": {Workers: 4, Matrix: mx},
	} {
		e := engine.MustNew(g, opts)
		want := e.RunBatch(reqs)

		s := e.Open(context.Background(), engine.SessionOptions{MaxInFlight: 6})
		// id -> request index, filled by the submitters.
		reqOf := make([]int64, len(reqs))
		var wg sync.WaitGroup
		var next atomic.Int64
		for w := 0; w < 3; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(reqs) {
						return
					}
					id, err := s.Submit(context.Background(), reqs[i])
					if err != nil {
						t.Errorf("%s: submit %d: %v", name, i, err)
						return
					}
					atomic.StoreInt64(&reqOf[id], int64(i))
				}
			}()
		}
		go func() {
			wg.Wait()
			s.Close()
		}()
		got := 0
		for r := range s.Results() {
			i := atomic.LoadInt64(&reqOf[r.ID])
			w := want[i]
			if !reflect.DeepEqual(r.Pairs, w.Pairs) || !reflect.DeepEqual(r.Match, w.Match) || (r.Err == nil) != (w.Err == nil) {
				t.Errorf("%s: request %d (id %d): session result differs from RunBatch", name, i, r.ID)
			}
			got++
		}
		if got != len(reqs) {
			t.Fatalf("%s: received %d results, want %d", name, got, len(reqs))
		}
		st := s.Stats()
		if st.Submitted != uint64(len(reqs)) || st.Delivered != uint64(len(reqs)) || st.Dropped != 0 {
			t.Errorf("%s: stats %+v", name, st)
		}
		if st.InFlight != 0 || st.QueueDepth != 0 {
			t.Errorf("%s: session not drained: %+v", name, st)
		}
	}
}

// TestSessionCancelMidBatch cancels the session context mid-stream and
// asserts clean drain: every received result is well-formed (a real
// answer or the context's error, with a valid unique id), accepted
// submissions are all accounted for, and no goroutine outlives the
// session. Run under -race this is the leak/termination stress test.
func TestSessionCancelMidBatch(t *testing.T) {
	baseline := runtime.NumGoroutine()
	g := gen.Synthetic(3, 1200, 6000, 3, gen.DefaultColors)
	e := engine.MustNew(g, engine.Options{Workers: 4})
	r := rand.New(rand.NewSource(2))

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s := e.Open(ctx, engine.SessionOptions{MaxInFlight: 8})
	var accepted atomic.Uint64
	subDone := make(chan struct{})
	go func() {
		defer close(subDone)
		for {
			q := gen.RQ(g, 2, 4, 3, r)
			if _, err := s.Submit(ctx, engine.Request{RQ: &q}); err != nil {
				return
			}
			accepted.Add(1)
		}
	}()

	seen := map[uint64]bool{}
	received := 0
	for res := range s.Results() {
		if seen[res.ID] {
			t.Errorf("duplicate result id %d", res.ID)
		}
		seen[res.ID] = true
		switch {
		case res.Err == nil:
			// well-formed success (Pairs may legitimately be empty)
		case errors.Is(res.Err, context.Canceled):
			if res.Pairs != nil {
				t.Errorf("cancelled result %d still carries pairs", res.ID)
			}
		default:
			t.Errorf("result %d: unexpected error %v", res.ID, res.Err)
		}
		received++
		if received == 10 {
			cancel()
		}
	}
	s.Close()
	<-subDone // the submitter's accepted count must be final before comparing

	st := s.Stats()
	if st.Submitted != accepted.Load() {
		t.Errorf("stats submitted %d, accepted %d", st.Submitted, accepted.Load())
	}
	if st.Delivered+st.Dropped != st.Submitted {
		t.Errorf("delivered %d + dropped %d != submitted %d", st.Delivered, st.Dropped, st.Submitted)
	}
	if st.Completed+st.Cancelled+st.Failed != st.Submitted {
		t.Errorf("completed %d + cancelled %d + failed %d != submitted %d",
			st.Completed, st.Cancelled, st.Failed, st.Submitted)
	}
	if st.Cancelled == 0 {
		t.Error("expected at least one cancelled query after mid-batch cancel")
	}
	for id := range seen {
		if id >= st.Submitted {
			t.Errorf("result id %d out of accepted range %d", id, st.Submitted)
		}
	}

	// No goroutine may outlive the drained session (give the runtime a
	// moment to reap exiting ones).
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d now, %d at start", n, baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSessionBackpressure: with MaxInFlight=1 and no result buffer, a
// second Submit must block until the first result is consumed.
func TestSessionBackpressure(t *testing.T) {
	g := testGraph(5)
	e := engine.MustNew(g, engine.Options{Workers: 2})
	s := e.Open(context.Background(), engine.SessionOptions{MaxInFlight: 1})
	q := testRQs(g, 3, 9)

	if _, err := s.Submit(context.Background(), engine.Request{RQ: &q[0]}); err != nil {
		t.Fatal(err)
	}
	// The first answer is done or in progress but not consumed: the
	// admission token is still held, so this must time out.
	short, cancelShort := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancelShort()
	if _, err := s.Submit(short, engine.Request{RQ: &q[1]}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("second submit: got %v, want deadline exceeded", err)
	}
	r := <-s.Results()
	if r.ID != 0 || r.Err != nil {
		t.Fatalf("first result: %+v", r)
	}
	// Token released: admission is open again.
	if _, err := s.Submit(context.Background(), engine.Request{RQ: &q[2]}); err != nil {
		t.Fatalf("third submit after drain: %v", err)
	}
	go s.Close()
	r = <-s.Results()
	if r.Err != nil {
		t.Fatalf("third result: %+v", r)
	}
	if _, ok := <-s.Results(); ok {
		t.Fatal("results channel should be closed")
	}
	if _, err := s.Submit(context.Background(), engine.Request{RQ: &q[0]}); !errors.Is(err, engine.ErrSessionClosed) {
		t.Fatalf("submit after close: got %v, want ErrSessionClosed", err)
	}
}

// TestSessionEmitStreams: requests with an Emit callback stream their
// pairs (identical to the materialized answer) and carry no Pairs.
func TestSessionEmitStreams(t *testing.T) {
	g := testGraph(7)
	qs := testRQs(g, 20, 13)
	e := engine.MustNew(g, engine.Options{Workers: 3})
	want := e.RunRQs(qs)

	s := e.Open(context.Background(), engine.SessionOptions{MaxInFlight: 4})
	streamed := make([][]reach.Pair, len(qs))
	go func() {
		for i := range qs {
			i := i
			_, err := s.Submit(context.Background(), engine.Request{
				RQ: &qs[i],
				Emit: func(p reach.Pair) bool {
					streamed[i] = append(streamed[i], p)
					return true
				},
			})
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
			}
		}
		s.Close()
	}()
	for r := range s.Results() {
		if r.Err != nil {
			t.Errorf("result %d: %v", r.ID, r.Err)
		}
		if r.Pairs != nil {
			t.Errorf("result %d: Emit request materialized %d pairs", r.ID, len(r.Pairs))
		}
	}
	for i := range qs {
		if !reflect.DeepEqual(streamed[i], want[i]) {
			t.Errorf("query %d: streamed %v, want %v", i, streamed[i], want[i])
		}
	}
}

// TestRunBatchCtxPreCancelled: a dead context still yields a fully
// populated, fully attributed result slice.
func TestRunBatchCtxPreCancelled(t *testing.T) {
	g := testGraph(5)
	qs := testRQs(g, 12, 3)
	reqs := make([]engine.Request, len(qs))
	for i := range qs {
		reqs[i] = engine.Request{RQ: &qs[i]}
	}
	e := engine.MustNew(g, engine.Options{Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out := e.RunBatchCtx(ctx, reqs)
	if len(out) != len(reqs) {
		t.Fatalf("got %d results, want %d", len(out), len(reqs))
	}
	for i, r := range out {
		if r.ID != uint64(i) {
			t.Errorf("result %d tagged id %d", i, r.ID)
		}
		if r.Err == nil {
			t.Errorf("result %d: expected a cancellation error", i)
		}
	}
}

// TestRunBatchTagsIDs: every RunBatch result, success or error, carries
// its request index as ID.
func TestRunBatchTagsIDs(t *testing.T) {
	g := testGraph(5)
	q := testRQs(g, 1, 3)[0]
	e := engine.MustNew(g, engine.Options{Workers: 2})
	out := e.RunBatch([]engine.Request{
		{RQ: &q},
		{}, // malformed: empty
		{RQ: &q},
	})
	for i, r := range out {
		if r.ID != uint64(i) {
			t.Errorf("result %d tagged id %d", i, r.ID)
		}
	}
	if out[1].Err == nil {
		t.Error("empty request must error")
	}
	if out[0].Err != nil || out[2].Err != nil {
		t.Errorf("valid requests errored: %v / %v", out[0].Err, out[2].Err)
	}
}
