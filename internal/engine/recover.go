package engine

import (
	"fmt"
	"time"

	"regraph/internal/graph"
	"regraph/internal/wal"
)

// RecoverInfo describes a completed Recover: where replay started (the
// snapshot generation, 0 when recovery began from the seed graph), how
// much log it consumed, the generation it finished at, and how long the
// whole thing took (served as recovery_ms in /v1/stats).
type RecoverInfo struct {
	SnapshotGen uint64
	Batches     int
	Ops         int
	LastGen     uint64
	Duration    time.Duration
}

// Recover builds an engine from a write-ahead log: it loads the log's
// latest snapshot if one exists (otherwise seed — the graph the very
// first run started from), replays every logged batch after it through
// the ordinary Apply path, and only then installs w so subsequent
// commits append to the same log.
//
// Replaying through Apply is the whole correctness argument: a logged
// batch re-runs the exact code that committed it originally — the same
// per-op validation, the same name resolution against the same
// predecessor state, the same failure acks — so the recovered engine is
// oracle-identical to the original by construction, not by a separate
// replay interpreter that could drift. The log's generation numbers
// double as the cross-check: every replayed batch must commit as
// exactly the generation it was logged under, or recovery fails loudly
// instead of continuing from a diverged state.
//
// opts must not set WAL (Recover installs w itself, after replay, so
// replayed batches are not re-appended) and must leave the engine
// mutable. A torn log tail — the expected crash artifact — was already
// truncated by wal.Open; Recover only ever sees intact records.
func Recover(w *wal.WAL, seed *graph.Graph, opts Options) (*Engine, RecoverInfo, error) {
	if opts.WAL != nil {
		return nil, RecoverInfo{}, fmt.Errorf("%w: Recover installs the WAL itself; leave Options.WAL nil", ErrOptions)
	}
	start := time.Now()
	var info RecoverInfo

	g := seed
	if sg, sgen, ok, err := w.LoadSnapshot(); err != nil {
		return nil, info, fmt.Errorf("engine: recover: %w", err)
	} else if ok {
		g, info.SnapshotGen = sg, sgen
	}
	if g == nil {
		g = graph.New()
	}

	e, err := New(g, opts)
	if err != nil {
		return nil, info, err
	}
	if e.immutable != nil {
		return nil, info, fmt.Errorf("%w: Recover needs a mutable engine (%v)", ErrOptions, e.immutable)
	}
	// The snapshot captures the graph at SnapshotGen, not generation 0.
	// Nothing else has the engine yet, so setting the published state's
	// generation directly is race-free.
	e.cur.Load().gen = info.SnapshotGen

	if err := w.Replay(info.SnapshotGen, func(rec wal.Record) error {
		cm, err := e.Apply(rec.Ops)
		if err != nil {
			return fmt.Errorf("engine: recover gen %d: %w", rec.Gen, err)
		}
		if cm.Gen != rec.Gen {
			return fmt.Errorf("engine: recover: batch logged as gen %d replayed as gen %d", rec.Gen, cm.Gen)
		}
		info.Batches++
		info.Ops += len(rec.Ops)
		return nil
	}); err != nil {
		return nil, info, err
	}

	e.wal = w
	info.LastGen = e.Generation()
	info.Duration = time.Since(start)
	e.recovered = info
	return e, info, nil
}

// WAL returns the engine's write-ahead log (nil when the engine is not
// durable).
func (e *Engine) WAL() *wal.WAL { return e.wal }

// Recovered returns the RecoverInfo of the Recover call that built this
// engine; the zero value for engines built by New.
func (e *Engine) Recovered() RecoverInfo { return e.recovered }

// CompactWAL snapshots the current generation into the engine's log and
// truncates the history it supersedes (wal.Compact). It holds the write
// mutex for the duration, so commits wait — readers do not. A no-op on
// a non-durable engine or at generation 0 (there is nothing to compact
// and generation 0 has no snapshot representation).
func (e *Engine) CompactWAL() error {
	if e.wal == nil {
		return nil
	}
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	st := e.cur.Load()
	if st.gen == 0 {
		return nil
	}
	return e.wal.Compact(st.g, st.gen)
}
