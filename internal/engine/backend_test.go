package engine_test

import (
	"errors"
	"math/rand"
	"testing"

	"regraph/internal/dist"
	"regraph/internal/engine"
	"regraph/internal/gen"
	"regraph/internal/pattern"
	"regraph/internal/reachidx"
)

// TestOptionsValidation: every ambiguous Options combination must be
// rejected with an error wrapping ErrOptions — no quiet precedence.
func TestOptionsValidation(t *testing.T) {
	g := testGraph(21)
	mx := dist.NewMatrix(g)
	ca := dist.NewCache(g, 64)
	th := dist.NewTwoHop(g)
	bad := map[string]engine.Options{
		"matrix+cache":        {Matrix: mx, Cache: ca},
		"matrix+backend":      {Matrix: mx, Backend: th},
		"cache+backend":       {Cache: ca, Backend: th},
		"matrix+auto":         {Matrix: mx, AutoBackend: true},
		"cachesize+matrix":    {Matrix: mx, CacheSize: 128},
		"cachesize+cache":     {Cache: ca, CacheSize: 128},
		"cachesize+backend":   {Backend: th, CacheSize: 128},
		"budget-without-auto": {MemoryBudget: 1 << 20},
		"filter+filterk":      {ReachFilter: reachidx.Build(g, 1), ReachFilterK: 2},
		"filter+matrix":       {Matrix: mx, ReachFilterK: 2},
		"filter+unfilterable": {Backend: mx, ReachFilterK: 2},
	}
	for name, opts := range bad {
		if _, err := engine.New(g, opts); !errors.Is(err, engine.ErrOptions) {
			t.Errorf("%s: want ErrOptions, got %v", name, err)
		}
	}
	good := map[string]engine.Options{
		"default":         {},
		"cachesize-alone": {CacheSize: 128},
		"cachesize+auto":  {AutoBackend: true, CacheSize: 128},
		"filter+cache":    {Cache: dist.NewCache(g, 64), ReachFilterK: 2},
		"filter+twohop":   {Backend: th, ReachFilterK: 2},
		"filter+auto":     {AutoBackend: true, ReachFilterK: 2},
	}
	for name, opts := range good {
		if _, err := engine.New(g, opts); err != nil {
			t.Errorf("%s: unexpected error %v", name, err)
		}
	}
}

// TestAutoBackendSelection: the heuristic must pick the matrix when it
// fits the budget, 2-hop labels when only they fit, and the cache when
// nothing fits.
func TestAutoBackendSelection(t *testing.T) {
	g := testGraph(23)
	matrixBytes := dist.PredictMatrixBytes(g)

	e := engine.MustNew(g, engine.Options{AutoBackend: true, MemoryBudget: matrixBytes})
	if e.BackendKind() != "matrix" || e.Matrix() == nil {
		t.Fatalf("budget == matrix size: kind %q", e.BackendKind())
	}

	e = engine.MustNew(g, engine.Options{AutoBackend: true, MemoryBudget: matrixBytes - 1})
	if e.BackendKind() != "twohop" {
		t.Fatalf("budget below matrix: kind %q", e.BackendKind())
	}
	th, ok := e.Backend().(*dist.TwoHop)
	if !ok {
		t.Fatalf("twohop kind but backend %T", e.Backend())
	}
	if th.Size() > matrixBytes-1 {
		t.Fatalf("selected index (%d bytes) exceeds its budget (%d)", th.Size(), matrixBytes-1)
	}

	e = engine.MustNew(g, engine.Options{AutoBackend: true, MemoryBudget: 64})
	if e.BackendKind() != "cache" || e.Cache() == nil {
		t.Fatalf("tiny budget: kind %q", e.BackendKind())
	}
}

// TestBackendEquivalence: the same RQ and PQ batch must produce
// identical answers whichever backend the engine runs on — including
// the auto-selected and filter-fronted configurations.
func TestBackendEquivalence(t *testing.T) {
	g := testGraph(29)
	qs := testRQs(g, 40, 31)
	mx := dist.NewMatrix(g)

	want := make([]string, len(qs))
	for i, q := range qs {
		want[i] = pairsKey(q.EvalMatrix(g, mx))
	}

	r := rand.New(rand.NewSource(37))
	pq := gen.Query(g, gen.Spec{Nodes: 3, Edges: 3, Preds: 2, Bound: 3, Colors: 2}, r)
	wantPQ := pattern.JoinMatch(g, pq, pattern.Options{Matrix: mx}).String(g)

	for name, opts := range map[string]engine.Options{
		"matrix":        {Matrix: mx},
		"cache":         {},
		"twohop":        {Backend: dist.NewTwoHop(g)},
		"twohop+grail":  {Backend: dist.NewTwoHop(g), ReachFilterK: 2},
		"cache+grail":   {ReachFilterK: 2, Cache: dist.NewCache(g, 1024)},
		"auto":          {AutoBackend: true},
		"auto-no-index": {AutoBackend: true, MemoryBudget: 64, DisableCandidateIndex: true},
	} {
		e := engine.MustNew(g, opts)
		got := e.RunRQs(qs)
		for i := range qs {
			if pairsKey(got[i]) != want[i] {
				t.Fatalf("%s (backend %s): query %d differs", name, e.BackendKind(), i)
			}
		}
		res := e.RunBatch([]engine.Request{{PQ: pq}})[0]
		if res.Err != nil {
			t.Fatalf("%s: PQ error %v", name, res.Err)
		}
		if got := res.Match.String(g); got != wantPQ {
			t.Fatalf("%s (backend %s): PQ answer differs", name, e.BackendKind())
		}
	}
}
