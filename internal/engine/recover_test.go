package engine_test

import (
	"bufio"
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"regraph/internal/engine"
	"regraph/internal/gen"
	"regraph/internal/graph"
	"regraph/internal/mutate"
	"regraph/internal/wal"
)

// crashSeedGraph is the deterministic starting graph both the crash
// child and the parent's oracle replay build from.
func crashSeedGraph() *graph.Graph {
	return gen.Synthetic(42, 200, 800, 3, gen.DefaultColors)
}

// crashOpsForGen is the deterministic batch that commits as generation
// g in the crash harness: a guaranteed-applying unique add_node (so
// every batch publishes), a set_attr on a seed node, an add_edge, and a
// guaranteed-failing op (unknown node) so failed-op acks are part of
// every replayed record.
func crashOpsForGen(g uint64) []mutate.Op {
	return []mutate.Op{
		{Verb: mutate.VerbAddNode, Node: fmt.Sprintf("crash-%d", g),
			Attrs: map[string]string{"a0": fmt.Sprint(g % 11)}},
		{Verb: mutate.VerbSetAttr, Node: fmt.Sprintf("n%d", g%200),
			Attrs: map[string]string{"a1": fmt.Sprint(g % 7)}},
		{Verb: mutate.VerbAddEdge, From: fmt.Sprintf("n%d", g%200),
			To: fmt.Sprintf("n%d", (g*31+7)%200), Color: gen.DefaultColors[g%uint64(len(gen.DefaultColors))]},
		{Verb: mutate.VerbSetAttr, Node: "no-such-node-ever",
			Attrs: map[string]string{"a0": "x"}},
	}
}

// oracleAt replays batches 1..gen through a fresh non-durable engine —
// the ground truth a recovered engine must match bit-identically.
func oracleAt(t *testing.T, gen uint64) *graph.Graph {
	t.Helper()
	e := engine.MustNew(crashSeedGraph(), engine.Options{Workers: 1, BackendKind: "cache"})
	for g := uint64(1); g <= gen; g++ {
		cm, err := e.Apply(crashOpsForGen(g))
		if err != nil {
			t.Fatalf("oracle apply gen %d: %v", g, err)
		}
		if cm.Gen != g {
			t.Fatalf("oracle committed gen %d as %d", g, cm.Gen)
		}
	}
	return e.Graph()
}

func graphTSV(t *testing.T, g *graph.Graph) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := g.WriteTSV(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// TestReplayEquivalence is the property test: for random op sequences —
// including batches whose ops all fail (never logged, never a
// generation) and partially failing batches — recovery from the log
// reconstructs an engine whose graph and generation are identical to
// the one that wrote it.
func TestReplayEquivalence(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			t.Parallel()
			r := rand.New(rand.NewSource(int64(1000 + trial)))
			dir := t.TempDir()
			w, err := wal.Open(wal.Options{Dir: dir, Fsync: wal.FsyncNone, SegmentBytes: 4 << 10})
			if err != nil {
				t.Fatal(err)
			}
			seed := gen.Synthetic(int64(trial), 100, 400, 3, gen.DefaultColors)
			e, _, err := engine.Recover(w, seed, engine.Options{Workers: 1, BackendKind: "cache"})
			if err != nil {
				t.Fatal(err)
			}

			names := []string{}
			for i := 0; i < 100; i++ {
				names = append(names, fmt.Sprintf("n%d", i))
			}
			pick := func() string { return names[r.Intn(len(names))] }
			next := 0
			for b := 0; b < 60; b++ {
				var ops []mutate.Op
				if r.Intn(6) == 0 {
					// An all-fail batch: unknown nodes only. Publishes nothing,
					// must be absent from the log and invisible to recovery.
					ops = []mutate.Op{
						{Verb: mutate.VerbSetAttr, Node: "ghost", Attrs: map[string]string{"a": "1"}},
						{Verb: mutate.VerbAddEdge, From: "ghost", To: "phantom", Color: "red"},
					}
				} else {
					for i, k := 0, 1+r.Intn(6); i < k; i++ {
						switch r.Intn(5) {
						case 0:
							nm := fmt.Sprintf("p%d", next)
							next++
							ops = append(ops, mutate.Op{Verb: mutate.VerbAddNode, Node: nm,
								Attrs: map[string]string{"a0": fmt.Sprint(r.Intn(5))}})
							names = append(names, nm)
						case 1:
							ops = append(ops, mutate.Op{Verb: mutate.VerbSetAttr, Node: pick(),
								Attrs: map[string]string{fmt.Sprintf("a%d", r.Intn(3)): fmt.Sprint(r.Intn(9))}})
						case 2:
							// Mostly fails: random pairs rarely share an edge.
							ops = append(ops, mutate.Op{Verb: mutate.VerbRemoveEdge, From: pick(), To: pick(),
								Color: gen.DefaultColors[r.Intn(len(gen.DefaultColors))]})
						default:
							ops = append(ops, mutate.Op{Verb: mutate.VerbAddEdge, From: pick(), To: pick(),
								Color: gen.DefaultColors[r.Intn(len(gen.DefaultColors))]})
						}
					}
				}
				if _, err := e.Apply(ops); err != nil {
					t.Fatalf("apply batch %d: %v", b, err)
				}
			}
			wantGen := e.Generation()
			wantTSV := graphTSV(t, e.Graph())
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}

			w2, err := wal.Open(wal.Options{Dir: dir, Fsync: wal.FsyncNone, SegmentBytes: 4 << 10})
			if err != nil {
				t.Fatal(err)
			}
			defer w2.Close()
			seed2 := gen.Synthetic(int64(trial), 100, 400, 3, gen.DefaultColors)
			e2, info, err := engine.Recover(w2, seed2, engine.Options{Workers: 1, BackendKind: "cache"})
			if err != nil {
				t.Fatalf("recover: %v", err)
			}
			if e2.Generation() != wantGen {
				t.Fatalf("recovered generation %d, want %d (info %+v)", e2.Generation(), wantGen, info)
			}
			if got := graphTSV(t, e2.Graph()); !bytes.Equal(got, wantTSV) {
				t.Fatalf("recovered graph differs from original (gen %d)", wantGen)
			}
			// The recovered engine keeps committing durably on the same log.
			if _, err := e2.Apply([]mutate.Op{{Verb: mutate.VerbAddNode, Node: "after-recovery"}}); err != nil {
				t.Fatalf("apply after recovery: %v", err)
			}
			if w2.LastGen() != e2.Generation() {
				t.Fatalf("log gen %d lags engine gen %d after post-recovery apply", w2.LastGen(), e2.Generation())
			}
		})
	}
}

// TestRecoverCompactedLog pins snapshot+tail recovery: compact
// mid-history, keep committing, recover — the snapshot supplies the
// prefix, replay only the tail, and the result is still bit-identical.
func TestRecoverCompactedLog(t *testing.T) {
	dir := t.TempDir()
	w, err := wal.Open(wal.Options{Dir: dir, Fsync: wal.FsyncNone, SegmentBytes: 2 << 10})
	if err != nil {
		t.Fatal(err)
	}
	e, _, err := engine.Recover(w, crashSeedGraph(), engine.Options{Workers: 1, BackendKind: "cache"})
	if err != nil {
		t.Fatal(err)
	}
	for g := uint64(1); g <= 20; g++ {
		if _, err := e.Apply(crashOpsForGen(g)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.CompactWAL(); err != nil {
		t.Fatalf("compact: %v", err)
	}
	for g := uint64(21); g <= 30; g++ {
		if _, err := e.Apply(crashOpsForGen(g)); err != nil {
			t.Fatal(err)
		}
	}
	wantTSV := graphTSV(t, e.Graph())
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := wal.Open(wal.Options{Dir: dir, Fsync: wal.FsyncNone, SegmentBytes: 2 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	// Recover with a nil seed: the snapshot must be self-sufficient.
	e2, info, err := engine.Recover(w2, nil, engine.Options{Workers: 1, BackendKind: "cache"})
	if err != nil {
		t.Fatalf("recover from compacted log: %v", err)
	}
	if info.SnapshotGen != 20 || info.Batches != 10 {
		t.Fatalf("recovery info %+v, want snapshot 20 + 10 replayed", info)
	}
	if e2.Generation() != 30 {
		t.Fatalf("recovered generation %d, want 30", e2.Generation())
	}
	if got := graphTSV(t, e2.Graph()); !bytes.Equal(got, wantTSV) {
		t.Fatal("snapshot+tail recovery is not bit-identical")
	}
}

// TestRecoverTornTailSweep truncates a real log at every byte offset
// and checks the end-to-end promise at each cut: recovery never errors,
// and the recovered graph is bit-identical to the oracle at whatever
// generation survived — i.e. a torn tail costs at most the torn
// records, never consistency.
func TestRecoverTornTailSweep(t *testing.T) {
	master := t.TempDir()
	w, err := wal.Open(wal.Options{Dir: master, Fsync: wal.FsyncNone})
	if err != nil {
		t.Fatal(err)
	}
	e, _, err := engine.Recover(w, crashSeedGraph(), engine.Options{Workers: 1, BackendKind: "cache"})
	if err != nil {
		t.Fatal(err)
	}
	const nGens = 8
	for g := uint64(1); g <= nGens; g++ {
		if _, err := e.Apply(crashOpsForGen(g)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var segFile string
	ents, _ := os.ReadDir(master)
	for _, en := range ents {
		if strings.HasPrefix(en.Name(), "wal-") {
			segFile = en.Name()
		}
	}
	full, err := os.ReadFile(filepath.Join(master, segFile))
	if err != nil {
		t.Fatal(err)
	}

	// Oracles are expensive enough to cache per generation.
	oracles := make(map[uint64][]byte, nGens+1)
	for g := uint64(0); g <= nGens; g++ {
		oracles[g] = graphTSV(t, oracleAt(t, g))
	}

	// Sweep a stride of offsets (every byte at the tail where tears are
	// interesting, every 7th earlier) to keep runtime sane.
	for cut := 0; cut <= len(full); cut++ {
		if cut < len(full)-400 && cut%7 != 0 {
			continue
		}
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segFile), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		w2, err := wal.Open(wal.Options{Dir: dir, Fsync: wal.FsyncNone})
		if err != nil {
			t.Fatalf("cut=%d: wal open: %v", cut, err)
		}
		e2, _, err := engine.Recover(w2, crashSeedGraph(), engine.Options{Workers: 1, BackendKind: "cache"})
		if err != nil {
			t.Fatalf("cut=%d: recover: %v", cut, err)
		}
		g := e2.Generation()
		if g > nGens {
			t.Fatalf("cut=%d: recovered beyond the log (gen %d)", cut, g)
		}
		if got := graphTSV(t, e2.Graph()); !bytes.Equal(got, oracles[g]) {
			t.Fatalf("cut=%d: recovered graph at gen %d differs from oracle", cut, g)
		}
		w2.Close()
	}
}

// ---- kill-at-random-op crash harness --------------------------------------

const (
	crashChildEnv = "REGRAPH_WAL_CRASH_CHILD"
	crashDirEnv   = "REGRAPH_WAL_CRASH_DIR"
	crashFsyncEnv = "REGRAPH_WAL_CRASH_FSYNC"

	// crashWindow is the interval policy's sync period in the harness;
	// the parent's assertion allows interval recovery to lose acks newer
	// than a couple of windows before the kill.
	crashWindow = 25 * time.Millisecond
)

// crashChild runs inside the re-executed test binary: recover the
// engine from the (initially empty) WAL dir, then commit deterministic
// batches as fast as they go, printing "ACK <gen> <unixnano>" after
// each Apply returns — the acked prefix the parent will hold recovery
// to. It runs until the parent SIGKILLs it.
func crashChild() {
	dir := os.Getenv(crashDirEnv)
	w, err := wal.Open(wal.Options{Dir: dir, Fsync: os.Getenv(crashFsyncEnv), FsyncInterval: crashWindow})
	if err != nil {
		fmt.Printf("CHILD-ERR wal open: %v\n", err)
		os.Exit(1)
	}
	e, _, err := engine.Recover(w, crashSeedGraph(), engine.Options{Workers: 1, BackendKind: "cache"})
	if err != nil {
		fmt.Printf("CHILD-ERR recover: %v\n", err)
		os.Exit(1)
	}
	out := bufio.NewWriter(os.Stdout)
	for g := e.Generation() + 1; g < 1_000_000; g++ {
		cm, err := e.Apply(crashOpsForGen(g))
		if err != nil || cm.Gen != g {
			fmt.Printf("CHILD-ERR apply gen %d: gen=%d err=%v\n", g, cm.Gen, err)
			os.Exit(1)
		}
		// One line per committed batch, flushed immediately: an ack the
		// parent reads is an ack the harness holds recovery to.
		fmt.Fprintf(out, "ACK %d %d\n", g, time.Now().UnixNano())
		out.Flush()
	}
	os.Exit(0)
}

type crashAck struct {
	gen uint64
	at  time.Time
}

// TestCrashRecovery is the kill-at-random-op harness: a child process
// commits batches through the durable apply path and prints an ack per
// commit; the parent SIGKILLs it at a random moment mid-stream, then
// recovers from the torn log and checks the per-policy promise:
//
//   - always: every acked generation survives, and the recovered graph
//     is bit-identical to the oracle at the recovered generation (which
//     is ≥ the last acked one).
//   - none:   same prefix promise under SIGKILL — appends reached the
//     OS before the ack, and the OS survives a process kill. (What
//     "none" gives up is machine-crash durability, which a test cannot
//     exercise.)
//   - interval: acks older than two sync windows before the kill must
//     survive; the recovered prefix must still be oracle-identical.
func TestCrashRecovery(t *testing.T) {
	if os.Getenv(crashChildEnv) == "1" {
		crashChild()
		return
	}
	if testing.Short() {
		t.Skip("subprocess crash harness skipped in -short")
	}
	for _, policy := range []string{wal.FsyncAlways, wal.FsyncNone, wal.FsyncInterval} {
		policy := policy
		t.Run(policy, func(t *testing.T) {
			t.Parallel()
			r := rand.New(rand.NewSource(time.Now().UnixNano()))
			for round := 0; round < 3; round++ {
				runCrashRound(t, policy, r.Intn(40))
			}
		})
	}
}

func runCrashRound(t *testing.T, policy string, extraAcks int) {
	t.Helper()
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run", "^TestCrashRecovery$")
	cmd.Env = append(os.Environ(),
		crashChildEnv+"=1", crashDirEnv+"="+dir, crashFsyncEnv+"="+policy)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var acks []crashAck
	var childErr string
	scanDone := make(chan struct{})
	go func() {
		defer close(scanDone)
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			f := strings.Fields(sc.Text())
			if len(f) >= 1 && f[0] == "CHILD-ERR" {
				mu.Lock()
				childErr = sc.Text()
				mu.Unlock()
				return
			}
			if len(f) != 3 || f[0] != "ACK" {
				continue
			}
			g, err1 := strconv.ParseUint(f[1], 10, 64)
			ns, err2 := strconv.ParseInt(f[2], 10, 64)
			if err1 != nil || err2 != nil {
				continue
			}
			mu.Lock()
			acks = append(acks, crashAck{gen: g, at: time.Unix(0, ns)})
			mu.Unlock()
		}
	}()

	// Kill at a random point: after a base of acks plus a random extra,
	// so the SIGKILL lands at an arbitrary offset inside the commit loop
	// (and, for interval, at an arbitrary phase of the sync window).
	deadline := time.Now().Add(20 * time.Second)
	for {
		mu.Lock()
		n, cerr := len(acks), childErr
		mu.Unlock()
		if cerr != "" {
			t.Fatalf("crash child failed: %s", cerr)
		}
		if n >= 30+extraAcks {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatal("crash child produced too few acks in 20s")
		}
		time.Sleep(time.Millisecond)
	}
	killAt := time.Now()
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait() // expected to be the kill signal
	<-scanDone

	mu.Lock()
	acked := append([]crashAck(nil), acks...)
	mu.Unlock()
	if len(acked) == 0 {
		t.Fatal("no acks collected")
	}
	lastAcked := acked[len(acked)-1].gen

	w, err := wal.Open(wal.Options{Dir: dir, Fsync: policy, FsyncInterval: crashWindow})
	if err != nil {
		t.Fatalf("post-crash wal open: %v", err)
	}
	defer w.Close()
	e, info, err := engine.Recover(w, crashSeedGraph(), engine.Options{Workers: 1, BackendKind: "cache"})
	if err != nil {
		t.Fatalf("post-crash recover: %v", err)
	}
	g := e.Generation()

	switch policy {
	case wal.FsyncAlways, wal.FsyncNone:
		// Strict prefix promise under SIGKILL: the append (and for
		// "always" the fsync) completed before Apply returned, so before
		// the ack was printed.
		if g < lastAcked {
			t.Fatalf("%s: recovered gen %d < last acked %d (info %+v)", policy, g, lastAcked, info)
		}
	case wal.FsyncInterval:
		var mustHave uint64
		for _, a := range acked {
			if killAt.Sub(a.at) >= 2*crashWindow {
				mustHave = a.gen
			}
		}
		if g < mustHave {
			t.Fatalf("interval: recovered gen %d < gen %d acked ≥2 windows before the kill (last acked %d)",
				g, mustHave, lastAcked)
		}
	}
	// Whatever prefix survived, it must be exactly the oracle's state at
	// that generation — bit-identical, no partial batch, no divergence.
	if got := graphTSV(t, e.Graph()); !bytes.Equal(got, graphTSV(t, oracleAt(t, g))) {
		t.Fatalf("%s: recovered graph at gen %d differs from oracle", policy, g)
	}
}
