package engine_test

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"regraph/internal/dist"
	"regraph/internal/engine"
	"regraph/internal/gen"
	"regraph/internal/graph"
	"regraph/internal/pattern"
	"regraph/internal/reach"
)

func testGraph(seed int64) *graph.Graph {
	return gen.Synthetic(seed, 200, 800, 3, gen.DefaultColors)
}

func testRQs(g *graph.Graph, n int, seed int64) []reach.Query {
	r := rand.New(rand.NewSource(seed))
	qs := make([]reach.Query, n)
	for i := range qs {
		qs[i] = gen.RQ(g, 2, 3, 1+r.Intn(3), r)
	}
	return qs
}

func pairsKey(ps []reach.Pair) string {
	ss := make([]string, len(ps))
	for i, p := range ps {
		ss[i] = fmt.Sprintf("%d->%d", p.From, p.To)
	}
	sort.Strings(ss)
	return fmt.Sprint(ss)
}

// TestBatchMatchesSerial: RunBatch must return, per index, exactly what a
// serial evaluation of the same query returns — in cache mode and in
// matrix mode.
func TestBatchMatchesSerial(t *testing.T) {
	g := testGraph(7)
	qs := testRQs(g, 60, 11)
	mx := dist.NewMatrix(g)

	want := make([]string, len(qs))
	for i, q := range qs {
		want[i] = pairsKey(q.EvalMatrix(g, mx))
	}
	for name, opts := range map[string]engine.Options{
		"cache":         {Workers: 4},
		"matrix":        {Workers: 4, Matrix: mx},
		"1-worker":      {Workers: 1},
		"64-worker":     {Workers: 64},
		"no-candidx":    {Workers: 4, DisableCandidateIndex: true},
		"matrix-no-idx": {Workers: 4, Matrix: mx, DisableCandidateIndex: true},
	} {
		e := engine.MustNew(g, opts)
		got := e.RunRQs(qs)
		for i := range qs {
			if pairsKey(got[i]) != want[i] {
				t.Errorf("%s: query %d: got %v, want %v", name, i, pairsKey(got[i]), want[i])
			}
		}
	}
}

// TestMixedBatch runs RQs and PQs in one batch and cross-checks each
// against its serial evaluator.
func TestMixedBatch(t *testing.T) {
	g := testGraph(3)
	r := rand.New(rand.NewSource(5))
	var reqs []engine.Request
	for i := 0; i < 20; i++ {
		if i%2 == 0 {
			q := gen.RQ(g, 2, 3, 1+r.Intn(2), r)
			reqs = append(reqs, engine.Request{RQ: &q})
		} else {
			q := gen.Query(g, gen.Spec{Nodes: 3, Edges: 3, Preds: 2, Bound: 3, Colors: 2}, r)
			reqs = append(reqs, engine.Request{PQ: q})
		}
	}
	e := engine.MustNew(g, engine.Options{Workers: 3})
	res := e.RunBatch(reqs)
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("request %d: %v", i, r.Err)
		}
		if reqs[i].RQ != nil {
			want := reqs[i].RQ.EvalBiBFS(g, nil)
			if pairsKey(r.Pairs) != pairsKey(want) {
				t.Errorf("RQ %d: got %v, want %v", i, pairsKey(r.Pairs), pairsKey(want))
			}
		} else {
			want := pattern.JoinMatch(g, reqs[i].PQ, pattern.Options{})
			if got := r.Match.String(g); got != want.String(g) {
				t.Errorf("PQ %d: got %q, want %q", i, got, want.String(g))
			}
		}
	}
}

// TestConcurrentBatchesSharedCache is the -race stress test: many
// goroutines run batches against one engine (hence one shared
// dist.Cache) at once, while every goroutine's answers must still match
// the serial oracle exactly.
func TestConcurrentBatchesSharedCache(t *testing.T) {
	g := testGraph(13)
	qs := testRQs(g, 40, 17)
	mx := dist.NewMatrix(g)
	want := make([]string, len(qs))
	for i, q := range qs {
		want[i] = pairsKey(q.EvalMatrix(g, mx))
	}

	ca := dist.NewCache(g, 1<<12)
	e := engine.MustNew(g, engine.Options{Workers: 4, Cache: ca})
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for b := 0; b < 8; b++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got := e.RunRQs(qs)
			for i := range qs {
				if pairsKey(got[i]) != want[i] {
					select {
					case errs <- fmt.Sprintf("query %d: got %v, want %v", i, pairsKey(got[i]), want[i]):
					default:
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Error(msg)
	}
	if hits, misses := ca.Stats(); hits == 0 && misses == 0 {
		t.Log("note: no single-atom queries hit the cache in this workload")
	}
}

// TestRequestValidation: malformed requests surface errors instead of
// panicking or being silently dropped.
func TestRequestValidation(t *testing.T) {
	g := testGraph(1)
	e := engine.MustNew(g, engine.Options{Workers: 2})
	q := testRQs(g, 1, 1)[0]
	pq := gen.Query(g, gen.Spec{Nodes: 2, Edges: 1, Preds: 1, Bound: 2, Colors: 1}, rand.New(rand.NewSource(2)))
	res := e.RunBatch([]engine.Request{
		{},
		{RQ: &q, PQ: pq},
	})
	if res[0].Err == nil {
		t.Error("empty request: want error")
	}
	if res[1].Err == nil {
		t.Error("double request: want error")
	}
}

// TestEmptyBatch must not hang on zero requests.
func TestEmptyBatch(t *testing.T) {
	e := engine.MustNew(testGraph(2), engine.Options{})
	if res := e.RunBatch(nil); len(res) != 0 {
		t.Errorf("RunBatch(nil) = %v", res)
	}
}
