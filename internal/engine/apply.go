package engine

import (
	"errors"
	"fmt"
	"sort"

	"regraph/internal/candidx"
	"regraph/internal/dist"
	"regraph/internal/graph"
	"regraph/internal/mutate"
	"regraph/internal/pattern"
	"regraph/internal/reach"
	"regraph/internal/reachidx"
)

// ErrReadOnly is returned by Apply when the engine's backend
// configuration cannot be rebuilt per generation (externally owned
// Matrix/Cache/Backend or an external ReachFilter). Queries keep
// working; mutation needs an engine-built backend.
var ErrReadOnly = errors.New("engine: read-only")

// Commit reports one Apply batch: a per-op ack slice in op order, the
// generation the batch committed as, and the graph size after it. When
// every op failed, nothing was published and Gen is the unchanged
// current generation.
type Commit struct {
	Acks    []mutate.Ack
	Gen     uint64
	Applied int
	Failed  int
	Nodes   int
	Edges   int
}

// Apply commits one mutation batch as a new generation. It is the
// single-writer half of the engine's snapshot isolation:
//
//   - The batch is applied to a copy-on-write Derive of the current
//     graph; readers of the current (and any older) generation never
//     observe an intermediate state.
//   - Each op either applies or fails individually — name-resolution
//     failures (unknown node, duplicate node, missing edge) make a
//     per-op error ack, not a batch abort. A batch whose ops all fail
//     publishes nothing.
//   - The attribute inverted index of the new generation is derived
//     incrementally from the current one (candidx.WithChanges) and the
//     predicate memo carries over every entry the batch provably could
//     not affect (candidx.NextGen); the distance backend is rebuilt for
//     the new graph (the same kind New selected).
//   - The new genState is published with one atomic store, the old
//     graph is sealed (a debug tripwire: stray writes to a superseded
//     generation panic instead of corrupting shared arrays), and every
//     standing query is advanced with the batch's pattern.Delta.
//
// Sessions opened before the commit keep answering from their pinned
// generation; sessions opened after it see the new one. Apply calls
// serialize; concurrent Apply is safe but not faster.
func (e *Engine) Apply(ops []mutate.Op) (Commit, error) {
	if e.immutable != nil {
		return Commit{}, e.immutable
	}
	e.writeMu.Lock()
	defer e.writeMu.Unlock()

	base := e.cur.Load()
	cm := Commit{Gen: base.gen, Nodes: base.g.NumNodes(), Edges: base.g.NumEdges()}
	if len(ops) == 0 {
		return cm, nil
	}
	ng := base.g.Derive()
	gen := base.gen + 1
	baseN := graph.NodeID(base.g.NumNodes())

	var chs []candidx.AttrChange
	var delta pattern.Delta
	touched := map[string]bool{}
	attrChanged := map[graph.NodeID]bool{}
	nodesAdded := false

	for i := range ops {
		op := &ops[i]
		id := uint64(i)
		if op.ID != nil {
			id = *op.ID
		}
		fail := func(err error) {
			cm.Acks = append(cm.Acks, mutate.Ack{ID: id, Verb: op.Verb, Err: err.Error()})
			cm.Failed++
		}
		if err := op.Validate(); err != nil {
			fail(err)
			continue
		}
		switch op.Verb {
		case mutate.VerbAddNode:
			if _, ok := ng.NodeByName(op.Node); ok {
				fail(fmt.Errorf("mutate: node %q already exists", op.Node))
				continue
			}
			v := ng.AddNode(op.Node, op.Attrs)
			nodesAdded = true
			delta.AddedNodes = append(delta.AddedNodes, v)
			for k, val := range op.Attrs {
				chs = append(chs, candidx.AttrChange{Node: v, Attr: k, New: val, HasNew: true})
				touched[k] = true
			}
		case mutate.VerbSetAttr:
			v, ok := ng.NodeByName(op.Node)
			if !ok {
				fail(fmt.Errorf("mutate: unknown node %q", op.Node))
				continue
			}
			for k, val := range op.Attrs {
				old, hasOld := ng.Attrs(v)[k]
				if hasOld && old == val {
					continue
				}
				chs = append(chs, candidx.AttrChange{
					Node: v, Attr: k, Old: old, New: val, HasOld: hasOld, HasNew: true,
				})
				touched[k] = true
				ng.SetAttr(v, k, val)
				if v < baseN {
					attrChanged[v] = true
				}
			}
		case mutate.VerbAddEdge:
			from, ok1 := ng.NodeByName(op.From)
			to, ok2 := ng.NodeByName(op.To)
			if !ok1 || !ok2 {
				fail(fmt.Errorf("mutate: unknown node %q", pick(op.From, op.To, ok1)))
				continue
			}
			ng.AddEdge(from, to, op.Color)
			c, _ := ng.ColorID(op.Color)
			delta.AddedEdges = append(delta.AddedEdges, pattern.DeltaEdge{From: from, To: to, Color: c})
		case mutate.VerbRemoveEdge:
			from, ok1 := ng.NodeByName(op.From)
			to, ok2 := ng.NodeByName(op.To)
			if !ok1 || !ok2 {
				fail(fmt.Errorf("mutate: unknown node %q", pick(op.From, op.To, ok1)))
				continue
			}
			c, ok := ng.ColorID(op.Color)
			if !ok || !ng.RemoveEdge(from, to, op.Color) {
				fail(fmt.Errorf("mutate: no %s edge %s -> %s", op.Color, op.From, op.To))
				continue
			}
			delta.RemovedEdges = append(delta.RemovedEdges, pattern.DeltaEdge{From: from, To: to, Color: c})
		}
		cm.Acks = append(cm.Acks, mutate.Ack{ID: id, Verb: op.Verb, Gen: gen})
		cm.Applied++
	}
	if cm.Applied == 0 {
		// Nothing stuck: the derived graph is discarded unpublished.
		return cm, nil
	}
	for v := range attrChanged {
		delta.AttrChanged = append(delta.AttrChanged, v)
	}

	ns := &genState{gen: gen, g: ng}
	ns.mx, ns.cache, ns.be = e.rebuildBackend(ng)
	if base.cands != nil {
		// Incremental index maintenance: clone only the touched posting
		// columns, then carry over every memo entry whose predicate the
		// batch cannot have affected.
		idx := base.cands.Index().WithChanges(ng, chs)
		ns.cands = base.cands.NextGen(ng, idx, touched, nodesAdded)
	}
	if e.wal != nil {
		// Append-then-commit: the whole submitted batch (failed ops
		// included — replaying it re-fails them identically) must be on
		// the log before the generation becomes visible. An append error
		// fails the batch with nothing published, so the log never lags
		// the engine.
		if err := e.wal.Append(gen, ops); err != nil {
			return Commit{}, fmt.Errorf("engine: wal: %w", err)
		}
	}
	e.cur.Store(ns)
	base.g.Seal()
	cm.Gen = gen
	cm.Nodes = ng.NumNodes()
	cm.Edges = ng.NumEdges()
	e.notifyStandings(ns, delta)
	return cm, nil
}

// pick names the first unresolved node of an edge op.
func pick(from, to string, fromOK bool) string {
	if !fromOK {
		return from
	}
	return to
}

// rebuildBackend constructs the new generation's distance backend, the
// same kind New selected. The matrix and 2-hop labels are full rebuilds
// (they are closed-form indexes over the whole graph); the cache
// restarts cold at its configured capacity and re-fills from queries,
// exactly as the paper's shared cache is populated. A GRAIL filter
// requested via ReachFilterK is rebuilt and re-installed.
func (e *Engine) rebuildBackend(ng *graph.Graph) (*dist.Matrix, *dist.Cache, dist.Backend) {
	var mx *dist.Matrix
	var cache *dist.Cache
	var be dist.Backend
	switch e.kind {
	case "matrix":
		mx = dist.NewMatrix(ng)
	case "twohop":
		be = dist.NewTwoHop(ng)
	default: // "cache" — the engine-built LRU
		cache = dist.NewCache(ng, e.cacheSize)
		be = cache
	}
	if e.filterK > 0 {
		if fb, ok := be.(filterable); ok {
			fb.SetFilter(reachidx.Build(ng, e.filterK))
		}
	}
	return mx, cache, be
}

// ---- standing queries -----------------------------------------------------

// StandingUpdate is one delta answer pushed to a standing query's
// subscriber after a committed batch changed its answer. Result is the
// full answer at Gen; Added/Removed list, per pattern edge, exactly the
// pairs that entered and left the answer relative to the previous
// update (or the subscription snapshot).
type StandingUpdate struct {
	Gen     uint64
	Result  *pattern.Result
	Added   [][]reach.Pair
	Removed [][]reach.Pair
}

// Standing is a registered standing pattern query: the engine maintains
// its answer incrementally across committed generations
// (pattern.Incremental) and pushes a StandingUpdate for every batch
// that changes it. Updates delivery is non-blocking on the apply loop:
// a subscriber that stops draining its channel is marked lagged and its
// channel closed — re-subscribe for a fresh snapshot.
type Standing struct {
	e       *Engine
	q       *pattern.Query
	inc     *pattern.Incremental
	prev    [][]reach.Pair
	ch      chan StandingUpdate
	initGen uint64
	initRes *pattern.Result
	lagged  bool
}

// Subscribe registers q as a standing query against the current
// generation. buf sizes the update channel (how many commits a consumer
// may fall behind before it is declared lagged); zero or negative means
// 16. The registration snapshot — the answer updates are deltas against
// — is available via Init.
func (e *Engine) Subscribe(q *pattern.Query, buf int) (*Standing, error) {
	if buf <= 0 {
		buf = 16
	}
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	cur := e.cur.Load()
	inc, err := pattern.NewIncremental(cur.g, q)
	if err != nil {
		return nil, err
	}
	res := inc.Result()
	st := &Standing{
		e:       e,
		q:       q,
		inc:     inc,
		prev:    sortedSets(res, q.NumEdges()),
		ch:      make(chan StandingUpdate, buf),
		initGen: cur.gen,
		initRes: res,
	}
	e.subs[st] = struct{}{}
	return st, nil
}

// Init returns the subscription snapshot: the generation the standing
// query registered against and its full answer there. The first
// StandingUpdate is a delta against this answer.
func (st *Standing) Init() (uint64, *pattern.Result) { return st.initGen, st.initRes }

// Query returns the registered pattern.
func (st *Standing) Query() *pattern.Query { return st.q }

// Updates is the stream of delta answers. It closes after Close, or
// when the subscriber lagged (see Lagged).
func (st *Standing) Updates() <-chan StandingUpdate { return st.ch }

// Lagged reports whether the engine closed the subscription because the
// consumer fell more than the channel buffer behind the commit stream.
// Meaningful once Updates is closed.
func (st *Standing) Lagged() bool { return st.lagged }

// Close unregisters the standing query and closes Updates. Safe to call
// more than once and after a lagged close.
func (st *Standing) Close() {
	st.e.writeMu.Lock()
	defer st.e.writeMu.Unlock()
	if _, ok := st.e.subs[st]; ok {
		delete(st.e.subs, st)
		close(st.ch)
	}
}

// notifyStandings advances every standing query past one committed
// batch and pushes delta answers to those whose answer changed. Runs
// under writeMu, on the Apply caller's goroutine.
func (e *Engine) notifyStandings(ns *genState, d pattern.Delta) {
	for st := range e.subs {
		if !st.inc.ApplyCommitted(ns.g, d) {
			continue // provably unaffected, answer unchanged
		}
		res := st.inc.Result()
		next := sortedSets(res, st.q.NumEdges())
		added, removed, any := diffSets(st.prev, next)
		if !any {
			continue // recomputed to the identical answer
		}
		st.prev = next
		select {
		case st.ch <- StandingUpdate{Gen: ns.gen, Result: res, Added: added, Removed: removed}:
		default:
			// The consumer is buf commits behind: closing beats blocking
			// the write path or buffering unboundedly.
			st.lagged = true
			close(st.ch)
			delete(e.subs, st)
		}
	}
}

// sortedSets copies a result's per-edge pair sets in (From,To) order,
// with an empty answer normalized to nEdges empty sets so diffs line up.
func sortedSets(r *pattern.Result, nEdges int) [][]reach.Pair {
	out := make([][]reach.Pair, nEdges)
	for i := 0; i < nEdges; i++ {
		ps := append([]reach.Pair(nil), r.EdgePairs(i)...)
		sort.Slice(ps, func(a, b int) bool {
			if ps[a].From != ps[b].From {
				return ps[a].From < ps[b].From
			}
			return ps[a].To < ps[b].To
		})
		out[i] = ps
	}
	return out
}

// diffSets computes per-edge added/removed pairs between two sorted set
// lists of equal length; any reports whether any edge differs.
func diffSets(prev, next [][]reach.Pair) (added, removed [][]reach.Pair, any bool) {
	added = make([][]reach.Pair, len(next))
	removed = make([][]reach.Pair, len(next))
	for i := range next {
		a, b := prev[i], next[i]
		var j, k int
		for j < len(a) && k < len(b) {
			switch {
			case a[j] == b[k]:
				j++
				k++
			case a[j].From < b[k].From || (a[j].From == b[k].From && a[j].To < b[k].To):
				removed[i] = append(removed[i], a[j])
				j++
			default:
				added[i] = append(added[i], b[k])
				k++
			}
		}
		removed[i] = append(removed[i], a[j:]...)
		added[i] = append(added[i], b[k:]...)
		if len(added[i]) > 0 || len(removed[i]) > 0 {
			any = true
		}
	}
	return added, removed, any
}
