//go:build !race

package engine_test

const raceEnabled = false
