//go:build race

package engine_test

// raceEnabled gates the single-core starvation latency thresholds: the
// race detector's instrumentation slows the apply/read paths by an
// order of magnitude, turning the tail-latency measurement into noise.
// CI runs the regression test in a plain build alongside the -race
// suites.
const raceEnabled = true
