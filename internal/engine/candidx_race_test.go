package engine_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"regraph/internal/candidx"
	"regraph/internal/engine"
	"regraph/internal/gen"
	"regraph/internal/graph"
	"regraph/internal/predicate"
	"regraph/internal/reach"
)

// TestConcurrentBatchesSharedMemo is the candidate-index -race stress
// test of ISSUE 3: one engine — hence one shared inverted index and one
// shared predicate→candidates memo — serves many concurrent batches
// whose answers must all match the scan-based serial oracle, while a
// *separate* graph with its own memo is mutated and queried in
// parallel, asserting the epoch invalidation never serves a stale
// candidate set across mutations.
func TestConcurrentBatchesSharedMemo(t *testing.T) {
	g := testGraph(29)
	qs := testRQs(g, 40, 31)
	oracle := engine.MustNew(g, engine.Options{Workers: 1, DisableCandidateIndex: true})
	want := make([]string, len(qs))
	for i, res := range oracle.RunRQs(qs) {
		want[i] = pairsKey(res)
	}

	e := engine.MustNew(g, engine.Options{Workers: 4})
	if e.Cands() == nil {
		t.Fatal("engine built without its candidate memo")
	}
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	fail := func(format string, args ...any) {
		select {
		case errs <- fmt.Sprintf(format, args...):
		default:
		}
	}
	for b := 0; b < 6; b++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 4; round++ {
				got := e.RunRQs(qs)
				for i := range qs {
					if pairsKey(got[i]) != want[i] {
						fail("shared engine: query %d: got %v, want %v", i, pairsKey(got[i]), want[i])
					}
				}
			}
		}()
	}

	// The mutator: its own graph, its own memo, single-goroutine
	// mutate-then-query — every lookup after a mutation must equal the
	// fresh linear scan (stale = the epoch check failed).
	wg.Add(1)
	go func() {
		defer wg.Done()
		r := rand.New(rand.NewSource(37))
		mg := gen.Synthetic(41, 120, 400, 3, gen.DefaultColors)
		memo := candidx.NewMemo(mg)
		preds := []predicate.Pred{
			predicate.MustParse("a0 = 3"),
			predicate.MustParse("a1 >= 5, a2 != 7"),
			predicate.MustParse("*"),
		}
		for step := 0; step < 60; step++ {
			switch step % 3 {
			case 0:
				id := mg.AddNode(fmt.Sprintf("extra%d", step), map[string]string{
					"a0": fmt.Sprint(r.Intn(10)), "a1": fmt.Sprint(r.Intn(10)),
				})
				_ = id
			case 1:
				from := graph.NodeID(r.Intn(mg.NumNodes()))
				to := graph.NodeID(r.Intn(mg.NumNodes()))
				mg.AddEdge(from, to, gen.DefaultColors[r.Intn(len(gen.DefaultColors))])
			case 2:
				from := graph.NodeID(r.Intn(mg.NumNodes()))
				for _, edge := range mg.Out(from) {
					mg.RemoveEdge(from, edge.To, mg.ColorName(edge.Color))
					break
				}
			}
			for _, p := range preds {
				got := memo.Candidates(p)
				scan := reach.Candidates(mg, p)
				if len(got) != len(scan) {
					fail("mutating memo: step %d pred %q: %d candidates, scan has %d", step, p, len(got), len(scan))
					return
				}
				for i := range got {
					if got[i] != scan[i] {
						fail("mutating memo: step %d pred %q: candidate %d is %d, scan says %d", step, p, i, got[i], scan[i])
						return
					}
				}
			}
		}
	}()

	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Error(msg)
	}
	if hits, misses := e.Cands().Stats(); hits == 0 || misses == 0 {
		t.Errorf("memo stats hits=%d misses=%d: expected both first-lookup misses and repeat hits", hits, misses)
	}
}
