package engine_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"regraph/internal/dist"
	"regraph/internal/engine"
	"regraph/internal/graph"
	"regraph/internal/mutate"
	"regraph/internal/pattern"
	"regraph/internal/predicate"
	"regraph/internal/reach"
	"regraph/internal/rex"
)

// mutBase builds a random attributed multigraph over colors x/y with
// node names "v<i>" — the base every mutation test derives from.
func mutBase(r *rand.Rand, n int) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddNode(fmt.Sprintf("v%d", i), map[string]string{
			"t": fmt.Sprint(r.Intn(4)),
			"w": fmt.Sprint(r.Intn(5)),
		})
	}
	colors := []string{"x", "y"}
	for i := 0; i < n*3; i++ {
		g.AddEdge(graph.NodeID(r.Intn(n)), graph.NodeID(r.Intn(n)), colors[r.Intn(len(colors))])
	}
	return g
}

// randOps builds a random mutation batch against g by name, including
// the occasional op that must fail (unknown node, duplicate add).
func randOps(r *rand.Rand, g *graph.Graph, genNo int) []mutate.Op {
	name := func(v graph.NodeID) string { return g.Node(v).Name }
	rnd := func() graph.NodeID { return graph.NodeID(r.Intn(g.NumNodes())) }
	colors := []string{"x", "y"}
	var ops []mutate.Op
	nops := 1 + r.Intn(6)
	for i := 0; i < nops; i++ {
		switch r.Intn(6) {
		case 0:
			ops = append(ops, mutate.Op{Verb: mutate.VerbAddNode,
				Node:  fmt.Sprintf("g%dn%d", genNo, i),
				Attrs: map[string]string{"t": fmt.Sprint(r.Intn(4)), "w": fmt.Sprint(r.Intn(5))}})
		case 1:
			ops = append(ops, mutate.Op{Verb: mutate.VerbSetAttr, Node: name(rnd()),
				Attrs: map[string]string{[]string{"t", "w"}[r.Intn(2)]: fmt.Sprint(r.Intn(5))}})
		case 2:
			ops = append(ops, mutate.Op{Verb: mutate.VerbAddEdge,
				From: name(rnd()), To: name(rnd()), Color: colors[r.Intn(2)]})
		case 3:
			v := rnd()
			outs := g.Out(v)
			if len(outs) == 0 {
				continue
			}
			e := outs[r.Intn(len(outs))]
			ops = append(ops, mutate.Op{Verb: mutate.VerbRemoveEdge,
				From: name(v), To: name(e.To), Color: g.ColorName(e.Color)})
		case 4: // must fail: unknown node
			ops = append(ops, mutate.Op{Verb: mutate.VerbSetAttr, Node: "no-such-node",
				Attrs: map[string]string{"t": "1"}})
		case 5: // must fail: duplicate add
			ops = append(ops, mutate.Op{Verb: mutate.VerbAddNode, Node: name(rnd())})
		}
	}
	return ops
}

// replayAck applies one acked op to an oracle graph with direct
// mutations — the semantics Apply must be equivalent to.
func replayAck(g *graph.Graph, op mutate.Op) {
	switch op.Verb {
	case mutate.VerbAddNode:
		g.AddNode(op.Node, op.Attrs)
	case mutate.VerbSetAttr:
		v, _ := g.NodeByName(op.Node)
		for k, val := range op.Attrs {
			g.SetAttr(v, k, val)
		}
	case mutate.VerbAddEdge:
		f, _ := g.NodeByName(op.From)
		t, _ := g.NodeByName(op.To)
		g.AddEdge(f, t, op.Color)
	case mutate.VerbRemoveEdge:
		f, _ := g.NodeByName(op.From)
		t, _ := g.NodeByName(op.To)
		g.RemoveEdge(f, t, op.Color)
	}
}

// mutQueries is the fixed query set the oracle tests compare across
// generations: two RQs (one wildcard) and a DAG-bounded PQ.
func mutQueries() []engine.Request {
	rq1 := reach.New(predicate.MustParse("t = 1"), predicate.MustParse("w >= 2"), rex.MustParse("x{2}"))
	rq2 := reach.New(predicate.MustParse("w <= 1"), predicate.New(), rex.MustParse("_{3}"))
	pq := pattern.New()
	a := pq.AddNode("A", predicate.MustParse("t = 1"))
	b := pq.AddNode("B", predicate.MustParse("t = 2"))
	pq.AddEdge(a, b, rex.MustParse("x{2}"))
	return []engine.Request{{RQ: &rq1}, {RQ: &rq2}, {PQ: pq}}
}

func sameResults(t *testing.T, tag string, got, want []engine.Result) {
	t.Helper()
	for i := range want {
		if (got[i].Err == nil) != (want[i].Err == nil) {
			t.Fatalf("%s: query %d: err %v vs %v", tag, i, got[i].Err, want[i].Err)
		}
		if got[i].Match != nil || want[i].Match != nil {
			if !got[i].Match.Equal(want[i].Match) {
				t.Fatalf("%s: query %d: PQ answers differ", tag, i)
			}
			continue
		}
		if pairsKey(got[i].Pairs) != pairsKey(want[i].Pairs) {
			t.Fatalf("%s: query %d: %v != %v", tag, i, got[i].Pairs, want[i].Pairs)
		}
	}
}

// TestApplyBasics pins the per-op ack contract on a concrete batch.
func TestApplyBasics(t *testing.T) {
	g := graph.New()
	g.AddNode("a", map[string]string{"t": "1"})
	g.AddNode("b", map[string]string{"t": "2"})
	g.AddEdge(0, 1, "x")
	e := engine.MustNew(g, engine.Options{Workers: 2})

	seven := uint64(7)
	cm, err := e.Apply([]mutate.Op{
		{Verb: mutate.VerbAddNode, Node: "c", Attrs: map[string]string{"t": "3"}},
		{Verb: mutate.VerbAddEdge, From: "a", To: "c", Color: "y"},
		{ID: &seven, Verb: mutate.VerbSetAttr, Node: "a", Attrs: map[string]string{"t": "2"}},
		{Verb: mutate.VerbRemoveEdge, From: "b", To: "a", Color: "x"}, // no such edge
		{Verb: mutate.VerbAddNode, Node: "a"},                         // duplicate
	})
	if err != nil {
		t.Fatal(err)
	}
	if cm.Gen != 1 || cm.Applied != 3 || cm.Failed != 2 {
		t.Fatalf("commit = %+v, want gen 1, 3 applied, 2 failed", cm)
	}
	if cm.Nodes != 3 || cm.Edges != 2 {
		t.Fatalf("commit size = %d nodes %d edges, want 3/2", cm.Nodes, cm.Edges)
	}
	wantAcks := []mutate.Ack{
		{ID: 0, Verb: mutate.VerbAddNode, Gen: 1},
		{ID: 1, Verb: mutate.VerbAddEdge, Gen: 1},
		{ID: 7, Verb: mutate.VerbSetAttr, Gen: 1},
	}
	okAcks, failAcks := 0, 0
	for _, a := range cm.Acks {
		if a.Err == "" {
			if a != wantAcks[okAcks] {
				t.Fatalf("ack %d = %+v, want %+v", okAcks, a, wantAcks[okAcks])
			}
			okAcks++
		} else {
			failAcks++
			if a.Gen != 0 {
				t.Fatalf("failed ack carries gen: %+v", a)
			}
		}
	}
	if okAcks != 3 || failAcks != 2 {
		t.Fatalf("acks: %d ok %d failed", okAcks, failAcks)
	}
	if e.Generation() != 1 {
		t.Fatalf("Generation() = %d", e.Generation())
	}
	ng := e.Graph()
	if ng.NumNodes() != 3 || ng.Attrs(0)["t"] != "2" {
		t.Fatalf("mutations not visible in new generation")
	}
	if g.Attrs(0)["t"] != "1" || g.NumNodes() != 2 {
		t.Fatalf("base generation was mutated in place")
	}
	if !g.Sealed() {
		t.Fatal("superseded generation not sealed")
	}

	// A batch whose ops all fail publishes nothing.
	cm, err = e.Apply([]mutate.Op{{Verb: mutate.VerbAddNode, Node: "a"}})
	if err != nil || cm.Gen != 1 || cm.Applied != 0 || cm.Failed != 1 {
		t.Fatalf("all-fail batch: %+v, %v", cm, err)
	}
	if e.Generation() != 1 {
		t.Fatalf("all-fail batch advanced the generation")
	}
}

// TestApplyReadOnly: externally owned backends make Apply refuse.
func TestApplyReadOnly(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	g := mutBase(r, 20)
	for _, opts := range []engine.Options{
		{Backend: dist.NewTwoHop(g)},
		{Cache: dist.NewCache(g, 64)},
		{Matrix: dist.NewMatrix(g)},
	} {
		e := engine.MustNew(g, opts)
		if _, err := e.Apply([]mutate.Op{{Verb: mutate.VerbAddNode, Node: "zz"}}); !errors.Is(err, engine.ErrReadOnly) {
			t.Fatalf("opts %+v: Apply err = %v, want ErrReadOnly", opts, err)
		}
	}
}

// TestApplyBackendKinds: a backend the engine built itself (selected by
// name via Options.BackendKind) keeps the engine mutable — every kind
// commits generations and answers match a scan-mode oracle over the
// replayed graph.
func TestApplyBackendKinds(t *testing.T) {
	for _, kind := range []string{"matrix", "twohop", "cache"} {
		t.Run(kind, func(t *testing.T) {
			g := mutBase(rand.New(rand.NewSource(5)), 40)
			e := engine.MustNew(g, engine.Options{Workers: 2, BackendKind: kind})
			if got := e.BackendKind(); got != kind {
				t.Fatalf("BackendKind() = %q, want %q", got, kind)
			}
			ops := []mutate.Op{
				{Verb: mutate.VerbAddNode, Node: "n1", Attrs: map[string]string{"t": "1", "w": "3"}},
				{Verb: mutate.VerbAddEdge, From: "v0", To: "n1", Color: "x"},
				{Verb: mutate.VerbSetAttr, Node: "v1", Attrs: map[string]string{"t": "1"}},
			}
			cm, err := e.Apply(ops)
			if err != nil || cm.Gen != 1 || cm.Applied != 3 {
				t.Fatalf("Apply: %+v, %v", cm, err)
			}
			og := mutBase(rand.New(rand.NewSource(5)), 40)
			for _, op := range ops {
				replayAck(og, op)
			}
			oracle := engine.MustNew(og, engine.Options{Workers: 2, DisableCandidateIndex: true})
			reqs := mutQueries()
			sameResults(t, kind, e.RunBatch(reqs), oracle.RunBatch(reqs))
		})
	}

	// Shape errors: an unknown kind, and CacheSize with a kind that
	// ignores it, are configuration errors, not silent defaults.
	g := mutBase(rand.New(rand.NewSource(5)), 10)
	for _, opts := range []engine.Options{
		{BackendKind: "bitmap"},
		{BackendKind: "matrix", CacheSize: 64},
		{BackendKind: "matrix", ReachFilterK: 2},
		{BackendKind: "cache", AutoBackend: true},
	} {
		if _, err := engine.New(g, opts); !errors.Is(err, engine.ErrOptions) {
			t.Errorf("opts %+v: err = %v, want ErrOptions", opts, err)
		}
	}
}

// TestApplySnapshotIsolation: a session pinned before a commit answers
// from its generation forever; a session opened after sees the new one.
func TestApplySnapshotIsolation(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	g := mutBase(r, 40)
	e := engine.MustNew(g, engine.Options{Workers: 2})
	reqs := mutQueries()

	before := e.RunBatch(reqs)

	s1 := e.Open(context.Background(), engine.SessionOptions{})
	if s1.Generation() != 0 {
		t.Fatalf("pre-commit session pinned gen %d", s1.Generation())
	}

	// Commit batches until some query's answer actually changes.
	changed := false
	for i := 0; i < 20 && !changed; i++ {
		if _, err := e.Apply(randOps(r, e.Graph(), i)); err != nil {
			t.Fatal(err)
		}
		after := e.RunBatch(reqs)
		for j := range reqs {
			if reqs[j].PQ != nil {
				changed = changed || !after[j].Match.Equal(before[j].Match)
			} else {
				changed = changed || pairsKey(after[j].Pairs) != pairsKey(before[j].Pairs)
			}
		}
	}
	if !changed {
		t.Fatal("no batch changed any answer; widen the op mix")
	}

	// The pinned session still answers exactly as before the commits.
	got := make([]engine.Result, len(reqs))
	go func() {
		for i := range reqs {
			s1.Submit(context.Background(), reqs[i])
		}
		s1.Close()
	}()
	for res := range s1.Results() {
		got[res.ID] = res
	}
	sameResults(t, "pinned session", got, before)

	s2 := e.Open(context.Background(), engine.SessionOptions{})
	if s2.Generation() != e.Generation() {
		t.Fatalf("post-commit session pinned gen %d, engine at %d", s2.Generation(), e.Generation())
	}
	s2.Close()
}

// TestApplyOracleEquivalence is the write path's end-to-end property:
// replaying exactly the acked ops of every committed batch into a fresh
// graph, a scan-mode engine over that graph (no candidate index, cold
// cache) must answer the fixed query set identically to the generation
// engine — for the current generation after every commit, and for old
// pinned generations after the fact.
func TestApplyOracleEquivalence(t *testing.T) {
	reqs := mutQueries()
	for seed := int64(0); seed < 3; seed++ {
		r := rand.New(rand.NewSource(7000 + seed))
		n := 30 + r.Intn(30)
		g := mutBase(rand.New(rand.NewSource(7000+seed)), n) // rebuildable base
		e := engine.MustNew(g, engine.Options{Workers: 4})

		var ackedBatches [][]mutate.Op
		type pinned struct {
			s   *engine.Session
			gen uint64
		}
		var pins []pinned

		oracleAt := func(upTo int) *graph.Graph {
			og := mutBase(rand.New(rand.NewSource(7000+seed)), n)
			for _, batch := range ackedBatches[:upTo] {
				for _, op := range batch {
					replayAck(og, op)
				}
			}
			return og
		}

		for gen := 0; gen < 10; gen++ {
			ops := randOps(r, e.Graph(), gen)
			cm, err := e.Apply(ops)
			if err != nil {
				t.Fatal(err)
			}
			okByID := map[uint64]bool{}
			for _, a := range cm.Acks {
				if a.Err == "" {
					okByID[a.ID] = true
				}
			}
			var acked []mutate.Op
			for i := range ops {
				id := uint64(i)
				if ops[i].ID != nil {
					id = *ops[i].ID
				}
				if okByID[id] {
					acked = append(acked, ops[i])
				}
			}
			if len(acked) != cm.Applied {
				t.Fatalf("seed %d gen %d: %d acked ops vs Applied=%d", seed, gen, len(acked), cm.Applied)
			}
			if cm.Applied > 0 {
				// Only committed batches advance the generation, so the
				// batch list indexes by generation number.
				ackedBatches = append(ackedBatches, acked)
			}
			if uint64(len(ackedBatches)) != e.Generation() {
				t.Fatalf("seed %d gen %d: %d committed batches vs generation %d",
					seed, gen, len(ackedBatches), e.Generation())
			}

			// Current generation vs oracle replay.
			oe := engine.MustNew(oracleAt(len(ackedBatches)), engine.Options{
				Workers: 2, DisableCandidateIndex: true,
			})
			sameResults(t, fmt.Sprintf("seed %d gen %d", seed, gen),
				e.RunBatch(reqs), oe.RunBatch(reqs))

			if gen%3 == 0 {
				pins = append(pins, pinned{e.Open(context.Background(), engine.SessionOptions{}), e.Generation()})
			}
		}

		// Every pinned session must still answer its own generation.
		for _, p := range pins {
			oe := engine.MustNew(oracleAt(int(p.gen)), engine.Options{
				Workers: 2, DisableCandidateIndex: true,
			})
			want := oe.RunBatch(reqs)
			got := make([]engine.Result, len(reqs))
			s := p.s
			go func() {
				for i := range reqs {
					s.Submit(context.Background(), reqs[i])
				}
				s.Close()
			}()
			for res := range s.Results() {
				got[res.ID] = res
			}
			sameResults(t, fmt.Sprintf("seed %d pinned gen %d", seed, p.gen), got, want)
		}
	}
}

// TestMutateQueryInterleaving runs a writer committing random batches
// against readers continuously opening pinned sessions — under -race
// this is the memory-model check for the COW publish protocol. Each
// reader asserts snapshot stability: the same query twice in one
// session yields the same answer, whatever the writer does meanwhile.
func TestMutateQueryInterleaving(t *testing.T) {
	baseline := runtime.NumGoroutine()
	r := rand.New(rand.NewSource(3))
	g := mutBase(r, 50)
	e := engine.MustNew(g, engine.Options{Workers: 4})
	reqs := mutQueries()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer
		defer wg.Done()
		wr := rand.New(rand.NewSource(4))
		for gen := 0; ; gen++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := e.Apply(randOps(wr, e.Graph(), gen)); err != nil {
				t.Errorf("apply: %v", err)
				return
			}
		}
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) { // readers
			defer wg.Done()
			for it := 0; it < 15; it++ {
				first := e.RunBatch(reqs) // one pinned session per call
				_ = first
				s := e.Open(context.Background(), engine.SessionOptions{})
				got := make([]engine.Result, 2*len(reqs))
				go func() {
					for rep := 0; rep < 2; rep++ {
						for i := range reqs {
							s.Submit(context.Background(), reqs[i])
						}
					}
					s.Close()
				}()
				for res := range s.Results() {
					got[res.ID] = res
				}
				sameResults(t, fmt.Sprintf("reader %d it %d", w, it),
					got[len(reqs):], got[:len(reqs)])
			}
		}(w)
	}
	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()

	// No leaked workers: sessions and the writer are all gone.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > baseline+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline+2 {
		t.Fatalf("goroutine leak: %d now, %d at start", n, baseline)
	}
}

// TestStandingQuery: a subscriber receives exactly the commits that
// change its answer, each update's Result matching a fresh JoinMatch of
// that generation and its Added/Removed diff reconstructing it.
func TestStandingQuery(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	g := mutBase(r, 35)
	e := engine.MustNew(g, engine.Options{Workers: 2})

	q := pattern.New()
	a := q.AddNode("A", predicate.MustParse("t = 1"))
	b := q.AddNode("B", predicate.MustParse("t = 2"))
	q.AddEdge(a, b, rex.MustParse("x{2}"))

	st, err := e.Subscribe(q, 64)
	if err != nil {
		t.Fatal(err)
	}
	gen0, res0 := st.Init()
	if gen0 != 0 {
		t.Fatalf("init gen = %d", gen0)
	}
	if !res0.Equal(pattern.JoinMatch(g, q, pattern.Options{})) {
		t.Fatal("init snapshot differs from fresh JoinMatch")
	}

	prev := res0
	for gen := 0; gen < 25; gen++ {
		cm, err := e.Apply(randOps(r, e.Graph(), gen))
		if err != nil {
			t.Fatal(err)
		}
		fresh := pattern.JoinMatch(e.Graph(), q, pattern.Options{})
		select {
		case upd := <-st.Updates():
			if upd.Gen != cm.Gen {
				t.Fatalf("gen %d: update tagged gen %d, commit was %d", gen, upd.Gen, cm.Gen)
			}
			if !upd.Result.Equal(fresh) {
				t.Fatalf("gen %d: standing answer != fresh JoinMatch", gen)
			}
			// prev + added - removed must equal the new answer, per edge.
			for ei := 0; ei < q.NumEdges(); ei++ {
				set := map[reach.Pair]bool{}
				for _, p := range prev.EdgePairs(ei) {
					set[p] = true
				}
				for _, p := range upd.Removed[ei] {
					if !set[p] {
						t.Fatalf("gen %d edge %d: removed pair %v was not in prev", gen, ei, p)
					}
					delete(set, p)
				}
				for _, p := range upd.Added[ei] {
					if set[p] {
						t.Fatalf("gen %d edge %d: added pair %v already present", gen, ei, p)
					}
					set[p] = true
				}
				want := map[reach.Pair]bool{}
				for _, p := range fresh.EdgePairs(ei) {
					want[p] = true
				}
				if len(set) != len(want) {
					t.Fatalf("gen %d edge %d: diff reconstructs %d pairs, want %d", gen, ei, len(set), len(want))
				}
				for p := range want {
					if !set[p] {
						t.Fatalf("gen %d edge %d: diff missing pair %v", gen, ei, p)
					}
				}
			}
			prev = upd.Result
		default:
			if !fresh.Equal(prev) {
				t.Fatalf("gen %d: answer changed but no update was pushed", gen)
			}
		}
	}
	st.Close()
	if _, ok := <-st.Updates(); ok {
		t.Fatal("Updates open after Close")
	}
	st.Close() // idempotent

	// A subscriber that stops draining is closed as lagged, and the
	// write path keeps going.
	st2, err := e.Subscribe(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		if _, err := e.Apply(randOps(r, e.Graph(), 100+i)); err != nil {
			t.Fatal(err)
		}
	}
	// Drain what was buffered; the channel must be closed by now (60
	// answer-perturbing batches against a buffer of one, undrained).
	deadline := time.After(time.Second)
	for {
		select {
		case _, ok := <-st2.Updates():
			if !ok {
				if !st2.Lagged() {
					t.Fatal("closed subscription not marked lagged")
				}
				return
			}
		case <-deadline:
			t.Fatal("lagged subscription never closed")
		}
	}
}
