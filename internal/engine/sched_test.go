package engine

import (
	"testing"
	"time"
)

// White-box tests pinning the schedQueue contract the Session relies
// on: exact FIFO when no QoS fields are set (PR 4 equivalence), EDF
// inside a band, weighted stride fairness across bands with no credit
// banking, and early shedding of expired entries — except in fifo
// mode, which must reproduce head-of-line blocking by design.

func item(priority int, deadline time.Time) schedItem {
	return schedItem{req: Request{Priority: priority, Deadline: deadline}, deadline: deadline}
}

// TestSchedFIFOWhenUniform: with no priorities and no deadlines the
// QoS queue must pop in exact admission order — bit-identical
// scheduling to the PR 4 session — and so must the fifo control.
func TestSchedFIFOWhenUniform(t *testing.T) {
	now := time.Now()
	for _, fifo := range []bool{false, true} {
		sq := newSchedQueue(fifo)
		for i := 0; i < 100; i++ {
			sq.push(item(0, time.Time{}))
		}
		for i := 0; i < 100; i++ {
			it := sq.pop(now)
			if it.seq != uint64(i) {
				t.Fatalf("fifo=%v: pop %d returned seq %d", fifo, i, it.seq)
			}
		}
		if sq.size != 0 {
			t.Fatalf("fifo=%v: size %d after draining", fifo, sq.size)
		}
	}
}

// TestSchedEDFWithinBand: same band, shuffled deadlines → pops in
// deadline order, deadline-less items after every deadline, admission
// order breaking ties.
func TestSchedEDFWithinBand(t *testing.T) {
	now := time.Now()
	sq := newSchedQueue(false)
	deadlines := []time.Duration{40, 10, 0, 30, 0, 20, 50} // minutes from now; 0 = none
	for _, m := range deadlines {
		var d time.Time
		if m != 0 {
			d = now.Add(m * time.Minute)
		}
		sq.push(item(3, d))
	}
	wantSeq := []uint64{1, 5, 3, 0, 6, 2, 4} // 10,20,30,40,50 then the two deadline-less in seq order
	for i, want := range wantSeq {
		it := sq.pop(now)
		if it.seq != want {
			t.Fatalf("pop %d: got seq %d, want %d", i, it.seq, want)
		}
	}
}

// TestSchedPriorityWeights: band 7 has 2^7 the weight of band 0, so
// with both continuously backlogged the pick ratio must be 128:1.
func TestSchedPriorityWeights(t *testing.T) {
	now := time.Now()
	sq := newSchedQueue(false)
	const n = 516 // 4 full stride cycles of band 0 vs band 7
	for i := 0; i < n; i++ {
		sq.push(item(0, time.Time{}))
		sq.push(item(7, time.Time{}))
	}
	picks := [numBands]int{}
	for i := 0; i < n; i++ { // pop half; both bands stay backlogged
		it := sq.pop(now)
		picks[clampPriority(it.req.Priority)]++
	}
	// 516 picks at a 128:1 ratio: 512 from band 7, 4 from band 0.
	if picks[7] != 512 || picks[0] != 4 {
		t.Fatalf("band picks = 7:%d 0:%d, want 512 and 4 (128:1)", picks[7], picks[0])
	}
}

// TestSchedNoCreditBanking: a band that sat idle while another ran
// must not monopolize the workers when it joins — its pass catches up
// to the current virtual time.
func TestSchedNoCreditBanking(t *testing.T) {
	now := time.Now()
	sq := newSchedQueue(false)
	sq.push(item(7, time.Time{})) // keep band 7 backlogged throughout
	for i := 0; i < 300; i++ {    // band 7 runs alone, advancing its pass
		sq.push(item(7, time.Time{}))
		sq.pop(now)
	}
	// Band 0 joins with fresh traffic alongside more band-7 work.
	for i := 0; i < 300; i++ {
		sq.push(item(0, time.Time{}))
		sq.push(item(7, time.Time{}))
	}
	// Without pass catch-up band 0's pass would sit ~300*256 behind and
	// it would drain its entire backlog first. With it, band 0 joins at
	// band 7's virtual time and the high band (winning ties) runs on.
	if got := clampPriority(sq.pop(now).req.Priority); got != 7 {
		t.Fatalf("first pick after join went to band %d, want 7", got)
	}
}

// TestSchedExpiredPopsFirst: queued items past their deadline are
// returned before any live work, earliest deadline first, regardless
// of band weight — and never in fifo mode.
func TestSchedExpiredPopsFirst(t *testing.T) {
	now := time.Now()
	sq := newSchedQueue(false)
	sq.push(item(7, time.Time{}))             // live, heavy band: seq 0
	sq.push(item(0, now.Add(-time.Second)))   // expired: seq 1
	sq.push(item(3, now.Add(-2*time.Second))) // expired earlier: seq 2
	sq.push(item(0, now.Add(time.Hour)))      // live: seq 3

	if it, ok := sq.popExpired(now); !ok || it.seq != 2 {
		t.Fatalf("first popExpired: got (%+v, %v), want seq 2", it, ok)
	}
	if it := sq.pop(now); it.seq != 1 { // pop clears remaining expired first
		t.Fatalf("pop after sweep: got seq %d, want expired seq 1", it.seq)
	}
	if it, ok := sq.popExpired(now); ok {
		t.Fatalf("no expired left, popExpired returned seq %d", it.seq)
	}
	if it := sq.pop(now); it.seq != 0 { // band 7 outweighs band 0
		t.Fatalf("live pop: got seq %d, want band-7 seq 0", it.seq)
	}

	fq := newSchedQueue(true)
	fq.push(item(0, now.Add(-time.Second)))
	if _, ok := fq.popExpired(now); ok {
		t.Fatal("fifo mode must never shed early")
	}
	if d := fq.earliestDeadline(); !d.IsZero() {
		t.Fatalf("fifo mode reported a reaper deadline %v", d)
	}
}

// TestSchedEarliestDeadline: the reaper timer target is the soonest
// queued deadline across bands, zero when nothing carries one.
func TestSchedEarliestDeadline(t *testing.T) {
	now := time.Now()
	sq := newSchedQueue(false)
	if !sq.earliestDeadline().IsZero() {
		t.Fatal("empty queue reported a deadline")
	}
	sq.push(item(2, time.Time{}))
	if !sq.earliestDeadline().IsZero() {
		t.Fatal("deadline-less queue reported a deadline")
	}
	sq.push(item(0, now.Add(3*time.Minute)))
	sq.push(item(5, now.Add(1*time.Minute)))
	sq.push(item(7, now.Add(2*time.Minute)))
	if d := sq.earliestDeadline(); !d.Equal(now.Add(1 * time.Minute)) {
		t.Fatalf("earliestDeadline = %v, want now+1m", d)
	}
}
