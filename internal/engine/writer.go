package engine

import (
	"context"
	"errors"
	"sync"
	"time"

	"regraph/internal/mutate"
)

// ErrWriterClosed is returned by WriteSession.Submit after Close.
var ErrWriterClosed = errors.New("engine: write session closed")

// WriterOptions configures OpenWriter. The two bounds are the write
// path's admission control, the mirror of the read path's MaxInFlight:
// they cap how much submitted-but-uncommitted work the session holds,
// so a saturating writer blocks in Submit — at the wire, where HTTP
// flow control pushes back on the client — instead of accumulating
// unbounded batches or monopolizing the process.
type WriterOptions struct {
	// MaxPendingOps bounds the ops admitted and not yet delivered on
	// Commits (default 4096). A single batch larger than the bound is
	// admitted alone rather than deadlocking.
	MaxPendingOps int

	// MaxPendingBytes bounds the same window by payload bytes as
	// reported to Submit (default 8 MiB).
	MaxPendingBytes int64

	// NoFence disables the read fence (see WriteSession): commits no
	// longer yield to queued readers. The starvation regression test's
	// control arm; production callers should leave it off.
	NoFence bool
}

func (o WriterOptions) withDefaults() WriterOptions {
	if o.MaxPendingOps <= 0 {
		o.MaxPendingOps = 4096
	}
	if o.MaxPendingBytes <= 0 {
		o.MaxPendingBytes = 8 << 20
	}
	return o
}

// WriteCommit is one Submit batch's outcome, delivered on Commits in
// submission order: the Apply result, or the error that failed it.
type WriteCommit struct {
	Commit Commit
	Err    error
}

// writeBatch is one admitted, not-yet-delivered batch.
type writeBatch struct {
	ops    []mutate.Op
	nbytes int64
}

// WriteSession is the served write path's admission-bounded feed into
// the engine's single-writer apply loop. Submit enqueues whole batches
// (each becomes exactly one Apply call, so generation assignment is as
// deterministic as the submission order); a dedicated applier goroutine
// commits them and delivers a WriteCommit per batch on Commits.
// Admission capacity — MaxPendingOps/MaxPendingBytes — is held from
// Submit until the batch's WriteCommit is *received* from Commits,
// mirroring the read path's token-on-delivery: a consumer that stops
// draining acks stalls the writer instead of growing a queue.
//
// The read fence: before each Apply, the applier waits (briefly,
// bounded) while any session has queued read requests engine-wide.
// Apply itself never blocks readers — they answer from pinned
// generations — but on few cores an un-throttled writer can occupy the
// scheduler so thoroughly that queued reads wait out the writer's whole
// burst. The fence makes the writer the yielding party: queued readers
// get workers first, and the writer commits in the gaps. The wait is
// clamped (scaled to recent apply cost) so a saturated read queue
// cannot starve the writer either.
type WriteSession struct {
	e    *Engine
	opts WriterOptions

	mu        sync.Mutex
	cond      *sync.Cond
	queue     []writeBatch
	heldOps   int   // admitted ops not yet delivered (queued + applying + undelivered)
	heldBytes int64 // same window in bytes
	closed    bool
	stickyErr error // first Apply/WAL error; fails every later Submit
	lastApply time.Duration
	ctxErr    error // session context canceled
	ctxDone   chan struct{}
	commits   chan WriteCommit
}

// OpenWriter opens a write session. ctx bounds the session's lifetime:
// cancellation unblocks Submit calls waiting for admission and stops
// the applier after the batch in flight. Close releases the session's
// goroutine; Commits closes once every admitted batch has been
// delivered (or abandoned on cancellation).
func (e *Engine) OpenWriter(ctx context.Context, opts WriterOptions) *WriteSession {
	if ctx == nil {
		ctx = context.Background()
	}
	ws := &WriteSession{
		e:       e,
		opts:    opts.withDefaults(),
		commits: make(chan WriteCommit),
		ctxDone: make(chan struct{}),
	}
	ws.cond = sync.NewCond(&ws.mu)
	stop := context.AfterFunc(ctx, func() {
		ws.mu.Lock()
		ws.ctxErr = context.Cause(ctx)
		close(ws.ctxDone)
		ws.cond.Broadcast()
		ws.mu.Unlock()
	})
	go func() {
		defer stop()
		ws.applier()
	}()
	return ws
}

// Submit admits one batch, blocking while the session's pending window
// is full (that block is the backpressure: the server's decode loop
// stalls here, TCP flow control stalls the client). The batch commits
// as exactly one Apply call. nbytes is the batch's wire size for the
// byte bound; pass 0 when unknown. Returns immediately with the sticky
// error once a previous batch failed, ErrWriterClosed after Close, or
// the context error if ctx (or the session context) is canceled while
// waiting.
func (ws *WriteSession) Submit(ctx context.Context, ops []mutate.Op, nbytes int64) error {
	if len(ops) == 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	var stop func() bool
	if ctx.Done() != nil {
		stop = context.AfterFunc(ctx, func() {
			ws.mu.Lock()
			ws.cond.Broadcast()
			ws.mu.Unlock()
		})
		defer stop()
	}
	ws.mu.Lock()
	defer ws.mu.Unlock()
	for {
		switch {
		case ws.stickyErr != nil:
			return ws.stickyErr
		case ws.closed:
			return ErrWriterClosed
		case ws.ctxErr != nil:
			return ws.ctxErr
		case ctx.Err() != nil:
			return ctx.Err()
		}
		// Admit when the batch fits — or unconditionally when the window
		// is empty, so a batch larger than the bound progresses instead of
		// deadlocking.
		if ws.heldOps == 0 ||
			(ws.heldOps+len(ops) <= ws.opts.MaxPendingOps &&
				ws.heldBytes+nbytes <= ws.opts.MaxPendingBytes) {
			break
		}
		ws.cond.Wait()
	}
	ws.heldOps += len(ops)
	ws.heldBytes += nbytes
	ws.queue = append(ws.queue, writeBatch{ops: ops, nbytes: nbytes})
	ws.cond.Broadcast()
	return nil
}

// Commits delivers one WriteCommit per admitted batch, in order. The
// channel closes once the session is closed (or its context canceled)
// and every admitted batch has been delivered or abandoned.
func (ws *WriteSession) Commits() <-chan WriteCommit { return ws.commits }

// Close stops admission. Batches already admitted still commit and
// deliver; Commits closes when they have. Safe to call more than once.
func (ws *WriteSession) Close() {
	ws.mu.Lock()
	ws.closed = true
	ws.cond.Broadcast()
	ws.mu.Unlock()
}

// applier is the session's single consumer: it takes batches in order,
// runs the read fence, applies, and delivers. It exits when the session
// is closed and drained, or its context is canceled.
func (ws *WriteSession) applier() {
	defer close(ws.commits)
	for {
		ws.mu.Lock()
		for len(ws.queue) == 0 && !ws.closed && ws.ctxErr == nil {
			ws.cond.Wait()
		}
		if len(ws.queue) == 0 || ws.ctxErr != nil {
			// Closed and drained — or canceled, abandoning what is queued
			// (the producer saw the same cancellation from Submit).
			ws.mu.Unlock()
			return
		}
		wb := ws.queue[0]
		ws.queue = ws.queue[1:]
		sticky := ws.stickyErr
		lastApply := ws.lastApply
		ws.mu.Unlock()

		var wc WriteCommit
		if sticky != nil {
			wc.Err = sticky
		} else {
			if !ws.opts.NoFence {
				ws.fence(lastApply)
			}
			t0 := time.Now()
			wc.Commit, wc.Err = ws.e.Apply(wb.ops)
			ws.mu.Lock()
			ws.lastApply = time.Since(t0)
			if wc.Err != nil {
				ws.stickyErr = wc.Err
				ws.cond.Broadcast()
			}
			ws.mu.Unlock()
		}

		// Deliver, then release the batch's admission capacity — held
		// until the consumer actually received the ack, so an undrained
		// Commits channel stalls the write path by design.
		select {
		case ws.commits <- wc:
		case <-ws.ctxDone:
			return
		}
		ws.mu.Lock()
		ws.heldOps -= len(wb.ops)
		ws.heldBytes -= wb.nbytes
		ws.cond.Broadcast()
		ws.mu.Unlock()
	}
}

// fence blocks while any read session engine-wide has queued requests,
// up to a deadline scaled to recent commit cost (a commit's fair share
// of the scheduler is about one apply duration; waiting a few multiples
// lets queued readers clear without letting a saturated read queue
// shut the writer out). Polling is deliberate: queued reads drain in
// microseconds once a worker frees up, and a condition variable shared
// across every session would put a broadcast on the read hot path.
func (ws *WriteSession) fence(lastApply time.Duration) {
	if ws.e.queuedReads.Load() == 0 {
		return
	}
	limit := 4 * lastApply
	if limit < time.Millisecond {
		limit = time.Millisecond
	}
	if limit > 100*time.Millisecond {
		limit = 100 * time.Millisecond
	}
	deadline := time.Now().Add(limit)
	for ws.e.queuedReads.Load() > 0 && time.Now().Before(deadline) {
		time.Sleep(200 * time.Microsecond)
	}
}
