package engine_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"regraph/internal/engine"
	"regraph/internal/gen"
	"regraph/internal/mutate"
	"regraph/internal/wal"
)

func writerOps(k int, tag string, n int) []mutate.Op {
	ops := make([]mutate.Op, 0, k)
	for i := 0; i < k; i++ {
		ops = append(ops, mutate.Op{Verb: mutate.VerbSetAttr,
			Node:  fmt.Sprintf("n%d", (i*37+len(tag))%n),
			Attrs: map[string]string{"a0": fmt.Sprintf("%s%d", tag, i)}})
	}
	return ops
}

func TestWriteSessionCommitsInOrder(t *testing.T) {
	g := gen.Synthetic(3, 50, 200, 2, gen.DefaultColors)
	e := engine.MustNew(g, engine.Options{Workers: 1, BackendKind: "cache"})
	ws := e.OpenWriter(context.Background(), engine.WriterOptions{})

	var got []engine.WriteCommit
	done := make(chan struct{})
	go func() {
		defer close(done)
		for wc := range ws.Commits() {
			got = append(got, wc)
		}
	}()
	for b := 0; b < 5; b++ {
		if err := ws.Submit(context.Background(), writerOps(4, fmt.Sprint(b), 50), 0); err != nil {
			t.Fatalf("submit %d: %v", b, err)
		}
	}
	ws.Close()
	<-done
	if len(got) != 5 {
		t.Fatalf("%d commits delivered, want 5", len(got))
	}
	for i, wc := range got {
		if wc.Err != nil {
			t.Fatalf("commit %d: %v", i, wc.Err)
		}
		// One Submit = one Apply = one generation: batch boundaries are
		// preserved, so generation assignment is deterministic.
		if wc.Commit.Gen != uint64(i+1) {
			t.Fatalf("commit %d got gen %d, want %d", i, wc.Commit.Gen, i+1)
		}
		if len(wc.Commit.Acks) != 4 {
			t.Fatalf("commit %d has %d acks, want 4", i, len(wc.Commit.Acks))
		}
	}
}

func TestWriteSessionAdmissionBound(t *testing.T) {
	g := gen.Synthetic(3, 50, 200, 2, gen.DefaultColors)
	e := engine.MustNew(g, engine.Options{Workers: 1, BackendKind: "cache"})
	ws := e.OpenWriter(context.Background(), engine.WriterOptions{MaxPendingOps: 8})

	// First batch fills the window; nothing drains Commits, so capacity
	// is held even after the engine applies it.
	if err := ws.Submit(context.Background(), writerOps(8, "a", 50), 0); err != nil {
		t.Fatal(err)
	}
	blocked := make(chan error, 1)
	go func() {
		blocked <- ws.Submit(context.Background(), writerOps(4, "b", 50), 0)
	}()
	select {
	case err := <-blocked:
		t.Fatalf("second submit was admitted past a full window (err=%v)", err)
	case <-time.After(100 * time.Millisecond):
	}

	// Draining the first commit releases its capacity; the blocked
	// submit must now go through.
	wc := <-ws.Commits()
	if wc.Err != nil {
		t.Fatal(wc.Err)
	}
	select {
	case err := <-blocked:
		if err != nil {
			t.Fatalf("unblocked submit failed: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("submit still blocked after capacity was released")
	}
	ws.Close()
	for range ws.Commits() {
	}
}

func TestWriteSessionOversizedBatchAdmittedWhenEmpty(t *testing.T) {
	g := gen.Synthetic(3, 50, 200, 2, gen.DefaultColors)
	e := engine.MustNew(g, engine.Options{Workers: 1, BackendKind: "cache"})
	ws := e.OpenWriter(context.Background(), engine.WriterOptions{MaxPendingOps: 4})
	done := make(chan error, 1)
	go func() {
		// 16 ops against a 4-op bound: must be admitted alone, not
		// deadlock.
		done <- ws.Submit(context.Background(), writerOps(16, "big", 50), 0)
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("oversized batch deadlocked an empty window")
	}
	if wc := <-ws.Commits(); wc.Err != nil || len(wc.Commit.Acks) != 16 {
		t.Fatalf("oversized batch commit: %+v", wc)
	}
	ws.Close()
}

func TestWriteSessionSubmitUnblocksOnCancel(t *testing.T) {
	g := gen.Synthetic(3, 50, 200, 2, gen.DefaultColors)
	e := engine.MustNew(g, engine.Options{Workers: 1, BackendKind: "cache"})
	ws := e.OpenWriter(context.Background(), engine.WriterOptions{MaxPendingOps: 4})
	if err := ws.Submit(context.Background(), writerOps(4, "a", 50), 0); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- ws.Submit(ctx, writerOps(4, "b", 50), 0)
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled submit returned %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("submit did not unblock on context cancellation")
	}
	ws.Close()
	for range ws.Commits() {
	}
}

func TestWriteSessionStickyError(t *testing.T) {
	dir := t.TempDir()
	w, err := wal.Open(wal.Options{Dir: dir, Fsync: wal.FsyncNone})
	if err != nil {
		t.Fatal(err)
	}
	g := gen.Synthetic(3, 50, 200, 2, gen.DefaultColors)
	e := engine.MustNew(g, engine.Options{Workers: 1, BackendKind: "cache", WAL: w})
	ws := e.OpenWriter(context.Background(), engine.WriterOptions{})
	// Closing the log under the engine makes the next Apply fail its
	// append — the clean way to inject a write-path failure.
	w.Close()
	if err := ws.Submit(context.Background(), writerOps(4, "a", 50), 0); err != nil {
		t.Fatal(err)
	}
	wc := <-ws.Commits()
	if wc.Err == nil {
		t.Fatal("apply against a closed WAL reported no error")
	}
	// The error is sticky: later submits fail fast with it.
	deadline := time.Now().Add(2 * time.Second)
	for {
		err := ws.Submit(context.Background(), writerOps(1, "b", 50), 0)
		if err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("submit kept succeeding after a sticky apply error")
		}
		<-ws.Commits()
	}
	ws.Close()
	for range ws.Commits() {
	}
}

// ---- writer starvation regression (GOMAXPROCS=1) --------------------------

// starvOps is one deterministic 32-op set_attr batch for the
// starvation arms — cheap commits, which is the worst case for
// readers: the shorter an apply, the tighter the writer loop spins and
// the longer a queued read waits for the scheduler to preempt it.
func starvOps(b, n int) []mutate.Op {
	ops := make([]mutate.Op, 0, 32)
	for j := 0; j < 32; j++ {
		ops = append(ops, mutate.Op{Verb: mutate.VerbSetAttr,
			Node:  fmt.Sprintf("n%d", (b*31+j*7)%n),
			Attrs: map[string]string{"a0": fmt.Sprint((b + j) % 10)}})
	}
	return ops
}

// starvationArm drives a saturating writer against an open-loop read
// stream on one core and returns the read p99 queue wait. With direct
// true the writer is the pre-admission shape — a tight Engine.Apply
// loop on one goroutine, exactly what the served decode loop used to
// do — the control this regression test exists to keep demonstrably
// bad. Otherwise the writer goes through a WriteSession (admission
// window + read fence), the productized fix. The open-loop submitter is
// the coordinated-omission-safe shape: reads arrive on a clock, not
// after the previous answer, so writer-induced queue delay accumulates
// in Wait instead of silently stretching the arrival gaps.
func starvationArm(t *testing.T, direct bool) time.Duration {
	t.Helper()
	runtime.GC() // don't let the previous arm's garbage pay this arm's pauses
	n := 2000
	g := gen.Synthetic(1, n, 4*n, 3, gen.DefaultColors)
	e := engine.MustNew(g, engine.Options{Workers: 1, BackendKind: "cache"})
	r := rand.New(rand.NewSource(7))
	q := gen.RQ(g, 4, 6, 3, r)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var wg sync.WaitGroup
	if direct {
		wg.Add(1)
		go func() { // the old write path: apply as fast as decode allows
			defer wg.Done()
			for b := 0; ctx.Err() == nil; b++ {
				if _, err := e.Apply(starvOps(b, n)); err != nil {
					return
				}
			}
		}()
	} else {
		ws := e.OpenWriter(ctx, engine.WriterOptions{})
		defer ws.Close()
		wg.Add(2)
		go func() { // saturating writer at the admission window
			defer wg.Done()
			for b := 0; ; b++ {
				if err := ws.Submit(ctx, starvOps(b, n), 0); err != nil {
					return
				}
			}
		}()
		go func() { // ack consumer
			defer wg.Done()
			for range ws.Commits() {
			}
		}()
	}

	s := e.Open(ctx, engine.SessionOptions{MaxInFlight: 1 << 16})
	var waits []time.Duration
	var rwg sync.WaitGroup
	rwg.Add(1)
	go func() {
		defer rwg.Done()
		for res := range s.Results() {
			if res.Err == nil {
				waits = append(waits, res.Wait)
			}
		}
	}()

	// Dense arrivals are the regime that exposes starvation: reads
	// arrive faster than the single worker drains them while the writer
	// holds the core, so every preemption quantum the writer wins is a
	// quantum the whole read queue ages.
	const (
		interval = 500 * time.Microsecond
		runFor   = 3 * time.Second
	)
	start := time.Now()
	for i := 0; time.Since(start) < runFor; i++ {
		next := start.Add(time.Duration(i) * interval)
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		if _, err := s.Submit(ctx, engine.Request{RQ: &q}); err != nil {
			break
		}
	}
	s.Close()
	rwg.Wait()
	cancel()
	wg.Wait()

	if len(waits) < 100 {
		t.Fatalf("only %d read results in %v — arm produced no signal", len(waits), runFor)
	}
	sort.Slice(waits, func(i, j int) bool { return waits[i] < waits[j] })
	return waits[len(waits)*99/100]
}

// TestWriterStarvationRegression pins the write-path admission fix on
// one core: through a WriteSession, a saturating writer cannot push
// read queue waits past a few preemption quanta; through the old direct
// Apply loop (the control), queue waits blow up by a healthy multiple —
// bounded only by Go's scheduler preemption, which is the regression
// this test exists to catch. The assertion is both absolute (session
// p99 under 15ms) and relative (control at least 2× worse), so it stays
// meaningful on slow CI hosts.
func TestWriterStarvationRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("2s-per-arm load test skipped in -short")
	}
	if raceEnabled {
		t.Skip("tail-latency thresholds are meaningless under the race detector's slowdown; CI runs this in a plain build")
	}
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)

	// A single-core tail measurement has scheduler-shaped variance; one
	// bad GC pause can push either arm over a threshold. Retry a couple
	// of times — a real regression fails every attempt.
	var bounded, control time.Duration
	for attempt := 1; ; attempt++ {
		bounded = starvationArm(t, false)
		control = starvationArm(t, true)
		t.Logf("attempt %d read wait p99: write-session=%v direct-apply control=%v (ratio %.1fx)",
			attempt, bounded, control, float64(control)/float64(bounded))
		if bounded <= 15*time.Millisecond && control >= 2*bounded {
			return
		}
		if attempt == 3 {
			break
		}
	}
	if bounded > 15*time.Millisecond {
		t.Errorf("write-session read p99 %v exceeds 15ms — admission is not protecting readers", bounded)
	}
	if control < 2*bounded {
		t.Errorf("control p99 %v is not ≥2× the write-session p99 %v — the control arm no longer demonstrates starvation",
			control, bounded)
	}
}
