package qlang

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Mut is one parsed textual mutation line — the qlang counterpart of a
// JSON mutation op (internal/mutate converts between the two). Exactly
// the fields relevant to Verb are set.
type Mut struct {
	Verb  string // "add_node", "set_attr", "add_edge", "remove_edge"
	Node  string // add_node / set_attr
	From  string // add_edge / remove_edge
	To    string
	Color string
	Attrs map[string]string // add_node initial attrs / set_attr assignments
}

// ParseMutLine parses the text form of one mutation:
//
//	add_node <name> [key=value]...
//	set_attr <node> <key>=<value>...
//	add_edge <from> <to> <color>
//	remove_edge <from> <to> <color>
//
// Fields are separated by tabs or runs of spaces, like the rest of
// qlang. Attribute values containing whitespace (or starting with a
// quote) use %q quoting: status="on leave".
func ParseMutLine(line string) (Mut, error) {
	if strings.ContainsAny(line, "\n\r") {
		return Mut{}, fmt.Errorf("qlang: mutation line contains a line break")
	}
	verb, rest := splitField(line)
	switch verb {
	case "add_node", "set_attr":
		name, attrSrc := splitField(rest)
		if name == "" {
			return Mut{}, fmt.Errorf("qlang: %s needs a node name", verb)
		}
		attrs, err := parseAttrList(attrSrc)
		if err != nil {
			return Mut{}, err
		}
		if verb == "set_attr" && len(attrs) == 0 {
			return Mut{}, fmt.Errorf("qlang: set_attr needs at least one key=value")
		}
		return Mut{Verb: verb, Node: name, Attrs: attrs}, nil
	case "add_edge", "remove_edge":
		from, rest2 := splitField(rest)
		to, color := splitField(rest2)
		if from == "" || to == "" || color == "" {
			return Mut{}, fmt.Errorf("qlang: %s needs from, to and a color", verb)
		}
		if strings.ContainsAny(color, " \t") {
			return Mut{}, fmt.Errorf("qlang: %s: trailing fields after color %q", verb, color)
		}
		return Mut{Verb: verb, From: from, To: to, Color: color}, nil
	case "":
		return Mut{}, fmt.Errorf("qlang: empty mutation line")
	default:
		return Mut{}, fmt.Errorf("qlang: unknown mutation verb %q (want add_node/set_attr/add_edge/remove_edge)", verb)
	}
}

// parseAttrList parses a whitespace-separated run of key=value tokens,
// with %q-quoted values for anything containing whitespace.
func parseAttrList(s string) (map[string]string, error) {
	attrs := map[string]string{}
	for {
		s = strings.TrimLeft(s, " \t")
		if s == "" {
			return attrs, nil
		}
		eq := strings.IndexByte(s, '=')
		sp := strings.IndexAny(s, " \t")
		if eq <= 0 || (sp >= 0 && sp < eq) {
			tok := s
			if sp >= 0 {
				tok = s[:sp]
			}
			return nil, fmt.Errorf("qlang: bad attribute %q (want key=value)", tok)
		}
		key := s[:eq]
		s = s[eq+1:]
		if strings.HasPrefix(s, `"`) {
			q, err := strconv.QuotedPrefix(s)
			if err != nil {
				return nil, fmt.Errorf("qlang: bad quoted value for %q: %v", key, err)
			}
			val, err := strconv.Unquote(q)
			if err != nil {
				return nil, fmt.Errorf("qlang: bad quoted value for %q: %v", key, err)
			}
			s = s[len(q):]
			if s != "" && s[0] != ' ' && s[0] != '\t' {
				return nil, fmt.Errorf("qlang: trailing characters after quoted value of %q", key)
			}
			attrs[key] = val
			continue
		}
		end := strings.IndexAny(s, " \t")
		if end < 0 {
			end = len(s)
		}
		attrs[key] = s[:end]
		s = s[end:]
	}
}

// FormatMut renders a mutation in the syntax ParseMutLine reads
// (attributes in sorted key order, quoting values that need it), so
// scripts round-trip.
func FormatMut(m Mut) string {
	var b strings.Builder
	b.WriteString(m.Verb)
	switch m.Verb {
	case "add_node", "set_attr":
		b.WriteByte('\t')
		b.WriteString(m.Node)
		keys := make([]string, 0, len(m.Attrs))
		for k := range m.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			v := m.Attrs[k]
			if v == "" || strings.ContainsAny(v, " \t\n\r") || strings.HasPrefix(v, `"`) {
				fmt.Fprintf(&b, "\t%s=%q", k, v)
			} else {
				fmt.Fprintf(&b, "\t%s=%s", k, v)
			}
		}
	case "add_edge", "remove_edge":
		fmt.Fprintf(&b, "\t%s\t%s\t%s", m.From, m.To, m.Color)
	}
	return b.String()
}
