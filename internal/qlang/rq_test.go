package qlang

import (
	"strings"
	"testing"
)

func TestParseRQ(t *testing.T) {
	q, err := ParseRQ("job = doctor", "*", "fa{2} fn")
	if err != nil {
		t.Fatal(err)
	}
	if got := q.String(); got != "RQ[job = doctor --fa{2} fn--> *]" {
		t.Errorf("parsed query renders %q", got)
	}
	// Empty predicates are always-true, like "*".
	q2, err := ParseRQ("", "", "fn")
	if err != nil {
		t.Fatal(err)
	}
	if !q2.From.IsTrue() || !q2.To.IsTrue() {
		t.Error("empty predicates must parse as always-true")
	}
}

// TestParseRQErrorsNameTheField: a service surfaces these verbatim, so
// each error must say which of the three fields was bad.
func TestParseRQErrorsNameTheField(t *testing.T) {
	cases := []struct{ from, to, expr, want string }{
		{"nope", "*", "fn", "rq from"},
		{"*", "nope", "fn", "rq to"},
		{"*", "*", "((", "rq expr"},
		{"*", "*", "", "rq expr"},
	}
	for _, c := range cases {
		_, err := ParseRQ(c.from, c.to, c.expr)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("ParseRQ(%q,%q,%q): err %v, want mention of %q", c.from, c.to, c.expr, err, c.want)
		}
	}
}

func TestParseRQLineRoundTrip(t *testing.T) {
	lines := []string{
		"*\t*\tfn",
		"job = doctor\tjob = biologist, sp = cloning\tfa{2} fn",
		`cat = "Film & Animation", com <= 20	*	ic{2} dc+`,
	}
	for _, line := range lines {
		q, err := ParseRQLine(line)
		if err != nil {
			t.Fatalf("%q: %v", line, err)
		}
		q2, err := ParseRQLine(WriteRQLine(q))
		if err != nil {
			t.Fatalf("round trip of %q: %v", line, err)
		}
		if q.String() != q2.String() {
			t.Errorf("round trip changed %q: %s vs %s", line, q, q2)
		}
	}
	if _, err := ParseRQLine("only two\tfields"); err == nil {
		t.Error("two fields must be rejected")
	}
	if _, err := ParseRQLine("a\tb\tc\td"); err == nil {
		t.Error("four fields must be rejected")
	}
}
