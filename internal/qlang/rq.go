package qlang

import (
	"fmt"
	"strings"

	"regraph/internal/predicate"
	"regraph/internal/reach"
	"regraph/internal/rex"
)

// This file is the RQ half of the text syntax: a reachability query is
// three fields — source predicate, destination predicate, path
// expression — written either as separate strings (the wire protocol's
// "rq" object, rgquery's -from/-to/-expr flags) or as one tab-separated
// line (rgquery's -batch files). Parse errors name the offending field
// so a service can surface them per request line.

// ParseRQ parses the three text fields of a reachability query. Either
// predicate may be "*" (or empty) for always-true; the expression must
// be a non-empty subclass-F regex.
func ParseRQ(from, to, expr string) (reach.Query, error) {
	fp, err := predicate.Parse(from)
	if err != nil {
		return reach.Query{}, fmt.Errorf("qlang: rq from: %v", err)
	}
	tp, err := predicate.Parse(to)
	if err != nil {
		return reach.Query{}, fmt.Errorf("qlang: rq to: %v", err)
	}
	re, err := rex.Parse(expr)
	if err != nil {
		return reach.Query{}, fmt.Errorf("qlang: rq expr: %v", err)
	}
	return reach.Query{From: fp, To: tp, Expr: re}, nil
}

// SplitRQLine splits one "from<TAB>to<TAB>expr" batch line into its
// three raw text fields without parsing them — the single owner of the
// field rule, shared by local parsing (ParseRQLine) and remote clients
// that ship the fields verbatim. The line must contain exactly three
// tab-separated fields — predicates may contain spaces, so only tabs
// separate fields here.
func SplitRQLine(line string) (from, to, expr string, err error) {
	fields := strings.Split(line, "\t")
	if len(fields) != 3 {
		return "", "", "", fmt.Errorf("qlang: rq line: want 3 tab-separated fields, got %d", len(fields))
	}
	return fields[0], fields[1], fields[2], nil
}

// ParseRQLine parses one tab-separated batch line (the format of
// rgquery -batch files; see WriteRQLine for the inverse).
func ParseRQLine(line string) (reach.Query, error) {
	from, to, expr, err := SplitRQLine(line)
	if err != nil {
		return reach.Query{}, err
	}
	return ParseRQ(from, to, expr)
}

// WriteRQLine renders a query in the tab-separated line format
// ParseRQLine reads. Predicate and expression String() forms round-trip
// through their parsers, so WriteRQLine∘ParseRQLine is the identity on
// parsed queries.
func WriteRQLine(q reach.Query) string {
	return q.From.String() + "\t" + q.To.String() + "\t" + q.Expr.String()
}
