package qlang

import (
	"strings"
	"testing"
)

// FuzzParsePattern drives the pattern parser with arbitrary text: it
// must never panic, and anything it accepts must survive a
// WritePattern→ParsePattern round trip unchanged (the serving layer
// relies on this — wire PQ requests are qlang text). Seed corpus in
// testdata/fuzz/FuzzParsePattern runs on every plain `go test`.
func FuzzParsePattern(f *testing.F) {
	f.Add("node A\t*\nnode B\tjob = doctor\nedge A B\tfn+")
	f.Add("# comment\nnode C   job = biologist, sp = cloning\nnode D   uid = Alice001\nedge C D   fa{2} sa{2}")
	f.Add("node X\ta = \"quoted, value\"\nedge X X\t_{3}")
	f.Add("edge A B fn")  // edge before node: error
	f.Add("node\n")       // missing name: error
	f.Add("garbage line") // unknown record: error
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		q, err := ParsePatternString(input)
		if err != nil {
			return
		}
		var b strings.Builder
		if err := WritePattern(&b, q); err != nil {
			t.Fatalf("WritePattern on accepted query: %v", err)
		}
		q2, err := ParsePatternString(b.String())
		if err != nil {
			t.Fatalf("round trip rejected:\n%s\nerr: %v", b.String(), err)
		}
		if q.String() != q2.String() {
			t.Fatalf("round trip changed the query:\n%s\nvs\n%s", q, q2)
		}
	})
}

// FuzzParseRQLine drives the tab-separated RQ parser: no panics, and
// accepted queries round-trip through WriteRQLine.
func FuzzParseRQLine(f *testing.F) {
	f.Add("*\t*\tfn")
	f.Add("job = doctor\tjob = biologist, sp = cloning\tfa{2} fn")
	f.Add("a = \"tabs\tin quotes\"\t*\t_+")
	f.Add("too\tfew")
	f.Add("not a query at all")
	f.Add("*\t*\t")
	f.Fuzz(func(t *testing.T, line string) {
		q, err := ParseRQLine(line)
		if err != nil {
			return
		}
		q2, err := ParseRQLine(WriteRQLine(q))
		if err != nil {
			t.Fatalf("round trip rejected %q: %v", WriteRQLine(q), err)
		}
		if q.String() != q2.String() {
			t.Fatalf("round trip changed the query: %s vs %s", q, q2)
		}
	})
}
