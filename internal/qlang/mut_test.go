package qlang_test

import (
	"reflect"
	"strings"
	"testing"

	"regraph/internal/qlang"
)

func TestParseMutLine(t *testing.T) {
	cases := []struct {
		in   string
		want qlang.Mut
	}{
		{"add_node alice", qlang.Mut{Verb: "add_node", Node: "alice", Attrs: map[string]string{}}},
		{"add_node alice job=doctor age=32", qlang.Mut{
			Verb: "add_node", Node: "alice",
			Attrs: map[string]string{"job": "doctor", "age": "32"},
		}},
		{"add_node\tbob\tstatus=\"on leave\"", qlang.Mut{
			Verb: "add_node", Node: "bob",
			Attrs: map[string]string{"status": "on leave"},
		}},
		{"set_attr alice job=surgeon", qlang.Mut{
			Verb: "set_attr", Node: "alice",
			Attrs: map[string]string{"job": "surgeon"},
		}},
		{`set_attr alice note="" job=x`, qlang.Mut{
			Verb: "set_attr", Node: "alice",
			Attrs: map[string]string{"note": "", "job": "x"},
		}},
		{"add_edge alice bob fn", qlang.Mut{Verb: "add_edge", From: "alice", To: "bob", Color: "fn"}},
		{"remove_edge  alice \t bob  fn", qlang.Mut{Verb: "remove_edge", From: "alice", To: "bob", Color: "fn"}},
	}
	for _, c := range cases {
		got, err := qlang.ParseMutLine(c.in)
		if err != nil {
			t.Errorf("ParseMutLine(%q): %v", c.in, err)
			continue
		}
		if got.Attrs == nil {
			got.Attrs = map[string]string{}
		}
		if c.want.Attrs == nil {
			c.want.Attrs = map[string]string{}
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("ParseMutLine(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestParseMutLineErrors(t *testing.T) {
	bad := []string{
		"",
		"   ",
		"frobnicate alice",
		"add_node",
		"set_attr alice",                   // no assignments
		"set_attr alice job",               // not key=value
		"set_attr alice =doctor",           // empty key
		`set_attr alice job="unterminated`, // bad quote
		`set_attr alice job="a"x`,          // trailing junk after quote
		"add_edge alice bob",               // missing color
		"add_edge alice",
		"add_edge alice bob fn extra", // trailing field
		"remove_edge a b c d",
	}
	for _, in := range bad {
		if m, err := qlang.ParseMutLine(in); err == nil {
			t.Errorf("ParseMutLine(%q) = %+v, want error", in, m)
		}
	}
}

func TestFormatMutRoundTrip(t *testing.T) {
	muts := []qlang.Mut{
		{Verb: "add_node", Node: "alice", Attrs: map[string]string{"job": "doctor", "note": "on leave", "q": `"quoted"`, "empty": ""}},
		{Verb: "add_node", Node: "n1"},
		{Verb: "set_attr", Node: "n1", Attrs: map[string]string{"k": "v", "tabby": "a\tb"}},
		{Verb: "add_edge", From: "a", To: "b", Color: "fn"},
		{Verb: "remove_edge", From: "a", To: "b", Color: "fn"},
	}
	for _, m := range muts {
		line := qlang.FormatMut(m)
		got, err := qlang.ParseMutLine(line)
		if err != nil {
			t.Errorf("round-trip %+v: rendered %q failed to parse: %v", m, line, err)
			continue
		}
		if m.Attrs == nil {
			m.Attrs = map[string]string{}
		}
		if got.Attrs == nil {
			got.Attrs = map[string]string{}
		}
		if !reflect.DeepEqual(got, m) {
			t.Errorf("round-trip: %+v -> %q -> %+v", m, line, got)
		}
	}
}

func FuzzParseMutLine(f *testing.F) {
	f.Add("add_node alice job=doctor")
	f.Add(`add_node bob status="on leave"`)
	f.Add("set_attr alice job=surgeon age=33")
	f.Add("add_edge alice bob fn")
	f.Add("remove_edge alice bob fn")
	f.Add("add_edge a b _")
	f.Add(`set_attr x k="\t\"esc\""`)
	f.Fuzz(func(t *testing.T, line string) {
		m, err := qlang.ParseMutLine(line)
		if err != nil {
			return
		}
		// Any accepted line must round-trip through the renderer.
		rendered := qlang.FormatMut(m)
		got, err := qlang.ParseMutLine(rendered)
		if err != nil {
			t.Fatalf("accepted %q but rendered %q fails: %v", line, rendered, err)
		}
		if m.Attrs == nil {
			m.Attrs = map[string]string{}
		}
		if got.Attrs == nil {
			got.Attrs = map[string]string{}
		}
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("round-trip drift: %q -> %+v -> %q -> %+v", line, m, rendered, got)
		}
		if strings.ContainsAny(rendered, "\n\r") {
			t.Fatalf("rendered line contains a newline: %q", rendered)
		}
	})
}
