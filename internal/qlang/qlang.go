// Package qlang implements the textual pattern-query language used by
// cmd/rgquery and the examples: a line-oriented format with one node or
// edge declaration per line.
//
//	# biologists against Alice's doctor friends
//	node C   job = biologist, sp = cloning
//	node B   job = doctor, dsp = cloning
//	node D   uid = Alice001
//	edge C B fn
//	edge C D fa{2} sa{2}
//
// Fields are separated by tabs or runs of spaces; the node predicate and
// the edge expression are everything after the fixed fields, so
// predicates may contain spaces. "*" (or nothing) is the always-true
// predicate. Lines starting with '#' are comments.
package qlang

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"regraph/internal/pattern"
	"regraph/internal/predicate"
	"regraph/internal/rex"
)

// ParsePattern reads a pattern query from the line format.
func ParsePattern(r io.Reader) (*pattern.Query, error) {
	q := pattern.New()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		kind, rest := splitField(line)
		switch kind {
		case "node":
			name, predSrc := splitField(rest)
			if name == "" {
				return nil, fmt.Errorf("qlang: line %d: node needs a name", lineNo)
			}
			p, err := predicate.Parse(predSrc)
			if err != nil {
				return nil, fmt.Errorf("qlang: line %d: %v", lineNo, err)
			}
			q.AddNode(name, p)
		case "edge":
			from, rest2 := splitField(rest)
			to, exprSrc := splitField(rest2)
			if from == "" || to == "" || exprSrc == "" {
				return nil, fmt.Errorf("qlang: line %d: edge needs from, to and an expression", lineNo)
			}
			e, err := rex.Parse(exprSrc)
			if err != nil {
				return nil, fmt.Errorf("qlang: line %d: %v", lineNo, err)
			}
			fi, ok := q.NodeIndex(from)
			if !ok {
				return nil, fmt.Errorf("qlang: line %d: unknown node %q (declare nodes before edges)", lineNo, from)
			}
			ti, ok := q.NodeIndex(to)
			if !ok {
				return nil, fmt.Errorf("qlang: line %d: unknown node %q (declare nodes before edges)", lineNo, to)
			}
			q.AddEdge(fi, ti, e)
		default:
			return nil, fmt.Errorf("qlang: line %d: unknown record %q (want node/edge)", lineNo, kind)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if q.NumNodes() == 0 {
		return nil, fmt.Errorf("qlang: empty pattern")
	}
	return q, nil
}

// ParsePatternString is ParsePattern over a string.
func ParsePatternString(s string) (*pattern.Query, error) {
	return ParsePattern(strings.NewReader(s))
}

// WritePattern serializes a pattern query in the format ParsePattern
// reads.
func WritePattern(w io.Writer, q *pattern.Query) error {
	bw := bufio.NewWriter(w)
	for i := 0; i < q.NumNodes(); i++ {
		n := q.Node(i)
		if _, err := fmt.Fprintf(bw, "node\t%s\t%s\n", n.Name, n.Pred); err != nil {
			return err
		}
	}
	for ei := 0; ei < q.NumEdges(); ei++ {
		e := q.Edge(ei)
		if _, err := fmt.Fprintf(bw, "edge\t%s\t%s\t%s\n",
			q.Node(e.From).Name, q.Node(e.To).Name, e.Expr); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// splitField returns the first whitespace-delimited field and the
// trimmed remainder of the line.
func splitField(s string) (field, rest string) {
	s = strings.TrimSpace(s)
	idx := strings.IndexAny(s, " \t")
	if idx < 0 {
		return s, ""
	}
	return s[:idx], strings.TrimSpace(s[idx:])
}
