package qlang_test

import (
	"bytes"
	"strings"
	"testing"

	"regraph/internal/dist"
	"regraph/internal/gen"
	"regraph/internal/pattern"
	"regraph/internal/qlang"
)

const essemblyQ2Text = `
# Example 2.3 pattern
node B  job = doctor, dsp = cloning
node C  job = biologist, sp = cloning
node D  uid = Alice001
edge B C sn
edge B D fn
edge C B fn
edge C C fa{3}
edge C D fa{2} sa{2}
`

func TestParsePattern(t *testing.T) {
	q, err := qlang.ParsePatternString(essemblyQ2Text)
	if err != nil {
		t.Fatal(err)
	}
	if q.NumNodes() != 3 || q.NumEdges() != 5 {
		t.Fatalf("parsed %d nodes, %d edges; want 3 and 5", q.NumNodes(), q.NumEdges())
	}
	// The parsed query must reproduce Example 2.3.
	g := gen.Essembly()
	mx := dist.NewMatrix(g)
	res := pattern.JoinMatch(g, q, pattern.Options{Matrix: mx})
	if res.Size() != 8 {
		t.Errorf("parsed Q2 answer size = %d, want 8", res.Size())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"bogus line here",
		"node",
		"edge A B x",              // nodes not declared
		"node A *\nedge A B x",    // B not declared
		"node A *\nedge A",        // missing fields
		"node A bad ~ pred",       // predicate syntax
		"node A *\nedge A A a{0}", // regex syntax
		"",                        // empty pattern
		"# only a comment\n\n   ", // still empty
	}
	for _, in := range cases {
		if _, err := qlang.ParsePatternString(in); err == nil {
			t.Errorf("ParsePatternString(%q): expected error", in)
		}
	}
}

func TestStarPredicate(t *testing.T) {
	q, err := qlang.ParsePatternString("node A *\nnode B\nedge A B x")
	if err != nil {
		t.Fatal(err)
	}
	if !q.Node(0).Pred.IsTrue() || !q.Node(1).Pred.IsTrue() {
		t.Error("* and empty predicates should be always-true")
	}
}

func TestRoundTrip(t *testing.T) {
	q, err := qlang.ParsePatternString(essemblyQ2Text)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := qlang.WritePattern(&buf, q); err != nil {
		t.Fatal(err)
	}
	q2, err := qlang.ParsePattern(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, buf.String())
	}
	if q2.String() != q.String() {
		t.Errorf("round trip changed the pattern:\n%s\nvs\n%s", q.String(), q2.String())
	}
}
