package reach_test

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"regraph/internal/dist"
	"regraph/internal/gen"
	"regraph/internal/reach"
)

// TestStreamEquivalence: for random queries, the streamed pair sequence
// of every method equals its materialized evaluator's answer exactly
// (same pairs, same order), and an early-stopping yield sees a strict
// prefix.
func TestStreamEquivalence(t *testing.T) {
	g := gen.Synthetic(4, 250, 1000, 3, gen.DefaultColors)
	mx := dist.NewMatrix(g)
	ca := dist.NewCache(g, 1<<12)
	s := dist.NewScratch()
	r := rand.New(rand.NewSource(8))

	collect := func(stream func(yield func(reach.Pair) bool) error) []reach.Pair {
		var out []reach.Pair
		if err := stream(func(p reach.Pair) bool {
			out = append(out, p)
			return true
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}

	for i := 0; i < 40; i++ {
		q := gen.RQ(g, 2, 3, 1+r.Intn(3), r)

		wantMx := q.EvalMatrix(g, mx)
		gotMx := collect(func(y func(reach.Pair) bool) error {
			return q.StreamMatrix(context.Background(), g, mx, nil, y)
		})
		if !reflect.DeepEqual(wantMx, gotMx) {
			t.Fatalf("query %d: StreamMatrix differs from EvalMatrix", i)
		}

		wantBi := q.EvalBiBFSScratch(g, ca, s)
		gotBi := collect(func(y func(reach.Pair) bool) error {
			return q.StreamBiBFS(context.Background(), g, ca, s, nil, y)
		})
		if !reflect.DeepEqual(wantBi, gotBi) {
			t.Fatalf("query %d: StreamBiBFS differs from EvalBiBFSScratch", i)
		}

		wantBFS := q.EvalBFSScratch(g, s)
		gotBFS := collect(func(y func(reach.Pair) bool) error {
			return q.StreamBFS(context.Background(), g, s, nil, y)
		})
		if !reflect.DeepEqual(wantBFS, gotBFS) {
			t.Fatalf("query %d: StreamBFS differs from EvalBFSScratch", i)
		}

		// Early stop: the first k yielded pairs are the answer's prefix.
		if len(wantMx) > 1 {
			k := 1 + r.Intn(len(wantMx)-1)
			var prefix []reach.Pair
			err := q.StreamMatrix(context.Background(), g, mx, nil, func(p reach.Pair) bool {
				prefix = append(prefix, p)
				return len(prefix) < k
			})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(prefix, wantMx[:k]) {
				t.Fatalf("query %d: early-stopped stream is not a prefix", i)
			}
		}
	}
}

// TestStreamCancelled: a dead context surfaces as the stream's error on
// every method.
func TestStreamCancelled(t *testing.T) {
	g := gen.Synthetic(4, 250, 1000, 3, gen.DefaultColors)
	mx := dist.NewMatrix(g)
	ca := dist.NewCache(g, 1<<12)
	s := dist.NewScratch()
	q := gen.RQ(g, 1, 3, 2, rand.New(rand.NewSource(3)))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	yield := func(reach.Pair) bool { return true }
	if err := q.StreamMatrix(ctx, g, mx, nil, yield); err != context.Canceled {
		t.Errorf("StreamMatrix: err = %v", err)
	}
	if err := q.StreamBiBFS(ctx, g, ca, s, nil, yield); err != context.Canceled {
		t.Errorf("StreamBiBFS: err = %v", err)
	}
	if err := q.StreamBFS(ctx, g, s, nil, yield); err != context.Canceled {
		t.Errorf("StreamBFS: err = %v", err)
	}
	// The arena must come back unbound for later evaluations.
	if got := q.EvalBiBFSScratch(g, ca, s); !reflect.DeepEqual(got, q.EvalBiBFS(g, dist.NewCache(g, 1<<12))) {
		t.Error("post-cancel evaluation differs")
	}
}

// TestPairsIterators: the iter.Seq adapters range over exactly the
// materialized answer and honor break.
func TestPairsIterators(t *testing.T) {
	g := gen.Synthetic(4, 200, 800, 3, gen.DefaultColors)
	mx := dist.NewMatrix(g)
	ca := dist.NewCache(g, 1<<12)
	s := dist.NewScratch()
	r := rand.New(rand.NewSource(5))
	var q reach.Query
	var want []reach.Pair
	for range 50 { // find a query with a few answers
		q = gen.RQ(g, 1, 3, 1+r.Intn(2), r)
		if want = q.EvalMatrix(g, mx); len(want) >= 2 {
			break
		}
	}
	if len(want) < 2 {
		t.Skip("no multi-answer query found")
	}
	var got []reach.Pair
	for p := range q.PairsMatrix(context.Background(), g, mx, nil) {
		got = append(got, p)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("PairsMatrix: got %v, want %v", got, want)
	}
	got = nil
	for p := range q.PairsBiBFS(context.Background(), g, ca, s, nil) {
		got = append(got, p)
		break
	}
	if len(got) != 1 || got[0] != want[0] {
		t.Errorf("PairsBiBFS with break: got %v, want first pair %v", got, want[0])
	}
}
