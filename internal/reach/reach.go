// Package reach implements the paper's reachability queries (RQs,
// Section 2) and their two evaluation methods (Section 4).
//
// An RQ is Qr = (u1, u2, f_u1, f_u2, f_e): find all node pairs (v1, v2)
// such that v1 matches the predicate f_u1, v2 matches f_u2, and there is a
// non-empty path from v1 to v2 whose edge-color string belongs to L(f_e),
// with f_e drawn from the restricted subclass F of regular expressions.
//
// Evaluation methods:
//
//   - EvalMatrix: the quadratic-time method using the per-color distance
//     matrix. The query is decomposed into single-atom RQs linked by dummy
//     nodes, candidate sets are refined right-to-left, and pairs are then
//     enumerated left-to-right through the refined layers.
//   - EvalBFS: forward-only product search per source candidate.
//   - EvalBiBFS: the bi-directional runtime search with an optional LRU
//     distance cache, for graphs too large to hold a matrix.
package reach

import (
	"fmt"
	"sync"

	"regraph/internal/dist"
	"regraph/internal/graph"
	"regraph/internal/predicate"
	"regraph/internal/rex"
)

// Query is a reachability query.
type Query struct {
	From predicate.Pred // f_u1: condition on the source node
	To   predicate.Pred // f_u2: condition on the destination node
	Expr rex.Expr       // f_e: path constraint from subclass F
}

// New builds an RQ.
func New(from, to predicate.Pred, expr rex.Expr) Query {
	return Query{From: from, To: to, Expr: expr}
}

// String renders the query.
func (q Query) String() string {
	return fmt.Sprintf("RQ[%s --%s--> %s]", q.From, q.Expr, q.To)
}

// Pair is one query answer: the source and destination node.
type Pair struct {
	From, To graph.NodeID
}

// CandidateSource supplies predicate candidate sets without scanning
// all nodes — internal/candidx's inverted Index and its engine-shared
// Memo both implement it. Implementations must return node IDs in
// ascending order, exactly the nodes Candidates returns; the slice is
// shared and must be treated as read-only by callers.
type CandidateSource interface {
	Candidates(p predicate.Pred) []graph.NodeID
}

// Candidates returns the IDs of nodes matching a predicate, in ID
// order, by linear scan. This is the reference evaluation every
// CandidateSource must agree with.
func Candidates(g *graph.Graph, p predicate.Pred) []graph.NodeID {
	return CandidatesAppend(nil, g, p)
}

// CandidatesAppend appends the IDs of nodes matching a predicate to dst,
// in ID order, and returns the extended slice. Passing a reused scratch
// slice (dst[:0]) avoids the per-query allocation Candidates pays.
func CandidatesAppend(dst []graph.NodeID, g *graph.Graph, p predicate.Pred) []graph.NodeID {
	for v := 0; v < g.NumNodes(); v++ {
		if p.Eval(g.Attrs(graph.NodeID(v))) {
			dst = append(dst, graph.NodeID(v))
		}
	}
	return dst
}

// candPool recycles candidate buffers across evaluations, so repeated RQ
// evaluation (the bench workloads run thousands back to back) does not
// reallocate two slices per query.
var candPool = sync.Pool{
	New: func() any {
		s := make([]graph.NodeID, 0, 64)
		return &s
	},
}

// takeCands draws a pooled buffer and fills it with p's candidates. The
// returned pointer must be handed back with putCands once the slice is no
// longer referenced.
func takeCands(g *graph.Graph, p predicate.Pred) *[]graph.NodeID {
	buf := candPool.Get().(*[]graph.NodeID)
	*buf = CandidatesAppend((*buf)[:0], g, p)
	return buf
}

func putCands(buf *[]graph.NodeID) { candPool.Put(buf) }

// candsFrom resolves a predicate's candidates through cs when non-nil
// (indexed/memoized, shared read-only slice) and by pooled linear scan
// otherwise. release must be called when the slice is dead.
func candsFrom(cs CandidateSource, g *graph.Graph, p predicate.Pred) (cands []graph.NodeID, release func()) {
	if cs != nil {
		return cs.Candidates(p), func() {}
	}
	buf := takeCands(g, p)
	return *buf, func() { putCands(buf) }
}

// EvalMatrix evaluates the query with the distance matrix (Section 4,
// "matrix-based method"). The expression is decomposed into its atoms
// (each a single-color RQ over dummy nodes); candidate layers are refined
// from the destination side back to the source side, then answer pairs are
// enumerated forward through the refined layers.
func (q Query) EvalMatrix(g *graph.Graph, mx *dist.Matrix) []Pair {
	return q.EvalMatrixWith(g, mx, nil)
}

// EvalMatrixWith is EvalMatrix with candidate sets drawn from cs (an
// inverted index or engine memo) instead of the linear node scan; nil
// cs falls back to the scan. Answers are identical by the
// CandidateSource contract.
func (q Query) EvalMatrixWith(g *graph.Graph, mx *dist.Matrix, cs CandidateSource) []Pair {
	var out []Pair
	// A nil context disables every checkpoint, so the materializing path
	// pays nothing for the shared streaming implementation.
	_ = q.StreamMatrix(nil, g, mx, cs, func(p Pair) bool {
		out = append(out, p)
		return true
	})
	return out
}

// refineLayer returns the nodes in from that satisfy the atom towards some
// node in to, using O(1) matrix lookups. The context probe runs every 256
// sources — a refinement layer over all nodes is the matrix method's
// longest uninterruptible stretch.
func refineLayer(mx *dist.Matrix, a dist.CAtom, from, to []graph.NodeID, cc ctxCheck) ([]graph.NodeID, error) {
	var out []graph.NodeID
	for i, x := range from {
		if i&255 == 255 {
			if err := cc.err(); err != nil {
				return nil, err
			}
		}
		for _, y := range to {
			if a.SatMatrix(mx, x, y) {
				out = append(out, x)
				break
			}
		}
	}
	return out, nil
}

// forwardImage walks the refined layers from a single source, returning
// the destination-layer nodes reachable through every atom.
func forwardImage(mx *dist.Matrix, atoms []dist.CAtom, x graph.NodeID, layers [][]graph.NodeID) []graph.NodeID {
	frontier := []graph.NodeID{x}
	for i, a := range atoms {
		next := make([]graph.NodeID, 0, len(layers[i+1]))
		for _, y := range layers[i+1] {
			for _, z := range frontier {
				if a.SatMatrix(mx, z, y) {
					next = append(next, y)
					break
				}
			}
		}
		if len(next) == 0 {
			return nil
		}
		frontier = next
	}
	return frontier
}

func allNodes(g *graph.Graph) []graph.NodeID {
	out := make([]graph.NodeID, g.NumNodes())
	for i := range out {
		out[i] = graph.NodeID(i)
	}
	return out
}

// EvalBFS evaluates the query by forward-only search: for every source
// candidate the whole expression is pushed through the graph with
// multi-source bounded BFS, and the resulting node set is intersected with
// the destination candidates.
func (q Query) EvalBFS(g *graph.Graph) []Pair {
	s := dist.GetScratch()
	defer dist.PutScratch(s)
	return q.EvalBFSScratch(g, s)
}

// EvalBFSScratch is EvalBFS with an explicit search arena: the per-source
// seed bitset and every closure buffer are reused from s, so repeated
// evaluation on one worker allocates only the answer slice.
func (q Query) EvalBFSScratch(g *graph.Graph, s *dist.Scratch) []Pair {
	return q.EvalBFSScratchWith(g, s, nil)
}

// EvalBFSScratchWith is EvalBFSScratch with candidate sets drawn from
// cs when non-nil (see CandidateSource) instead of the linear scan.
func (q Query) EvalBFSScratchWith(g *graph.Graph, s *dist.Scratch, cs CandidateSource) []Pair {
	var out []Pair
	_ = q.StreamBFS(nil, g, s, cs, func(p Pair) bool {
		out = append(out, p)
		return true
	})
	return out
}

// EvalBiBFS evaluates the query with the bi-directional runtime search of
// Section 4: the expression is split in the middle; the prefix is
// evaluated forward from every source candidate and the suffix backward
// from every destination candidate; a pair is an answer when its two node
// sets intersect. When the expression is a single atom and a cache is
// provided, distances come from the LRU cache instead.
func (q Query) EvalBiBFS(g *graph.Graph, ca *dist.Cache) []Pair {
	s := dist.GetScratch()
	defer dist.PutScratch(s)
	return q.EvalBiBFSScratch(g, ca, s)
}

// EvalBiBFSScratch is EvalBiBFS with an explicit search arena (the form
// internal/engine workers call). Seeds, closure buffers and the retained
// per-destination backward closures all come from s; in steady state a
// repeated query allocates nothing but its answer slice.
func (q Query) EvalBiBFSScratch(g *graph.Graph, ca *dist.Cache, s *dist.Scratch) []Pair {
	return q.EvalBiBFSScratchWith(g, ca, s, nil)
}

// EvalBiBFSScratchWith is EvalBiBFSScratch with candidate sets drawn
// from cs when non-nil (see CandidateSource) instead of the linear
// scan — the form internal/engine workers call with the engine's
// shared memo.
func (q Query) EvalBiBFSScratchWith(g *graph.Graph, ca *dist.Cache, s *dist.Scratch, cs CandidateSource) []Pair {
	var out []Pair
	_ = q.StreamBiBFS(nil, g, ca, s, cs, func(p Pair) bool {
		out = append(out, p)
		return true
	})
	return out
}

// EvalBackend evaluates the query against any distance backend (see
// dist.Backend and StreamBackend) with a pooled search arena.
func (q Query) EvalBackend(g *graph.Graph, be dist.Backend) []Pair {
	s := dist.GetScratch()
	defer dist.PutScratch(s)
	return q.EvalBackendScratchWith(g, be, s, nil)
}

// EvalBackendScratchWith is EvalBackend with an explicit arena and
// candidate source — the form engine workers call once a backend other
// than the cache is selected.
func (q Query) EvalBackendScratchWith(g *graph.Graph, be dist.Backend, s *dist.Scratch, cs CandidateSource) []Pair {
	var out []Pair
	_ = q.StreamBackend(nil, g, be, s, cs, func(p Pair) bool {
		out = append(out, p)
		return true
	})
	return out
}

// bitsetListPool recycles the slice-of-bitset headers EvalBiBFSScratch
// retains its backward closures in.
var bitsetListPool = sync.Pool{
	New: func() any {
		s := make([][]bool, 0, 16)
		return &s
	},
}

func takeBitsetList(n int) *[][]bool {
	lp := bitsetListPool.Get().(*[][]bool)
	for len(*lp) < n {
		*lp = append(*lp, nil)
	}
	*lp = (*lp)[:n]
	return lp
}

func putBitsetList(lp *[][]bool) {
	clear(*lp)
	bitsetListPool.Put(lp)
}

func intersects(a, b []bool) bool {
	for i := range a {
		if a[i] && b[i] {
			return true
		}
	}
	return false
}

// Matches reports whether the single pair (v1, v2) is an answer, using
// the provided matrix when non-nil and bi-directional search otherwise.
func (q Query) Matches(g *graph.Graph, mx *dist.Matrix, v1, v2 graph.NodeID) bool {
	if !q.From.Eval(g.Attrs(v1)) || !q.To.Eval(g.Attrs(v2)) {
		return false
	}
	atoms, ok := dist.Compile(g, q.Expr)
	if !ok {
		return false
	}
	if mx != nil {
		return dist.ReachMatrix(g, mx, atoms, v1, v2)
	}
	return dist.BiReach(g, atoms, v1, v2)
}
