package reach_test

import (
	"fmt"
	"math/rand"
	"runtime/debug"
	"sort"
	"testing"
	"testing/quick"

	"regraph/internal/dist"
	"regraph/internal/gen"
	"regraph/internal/graph"
	"regraph/internal/predicate"
	"regraph/internal/reach"
	"regraph/internal/rex"
)

func pairsString(ps []reach.Pair, g *graph.Graph) string {
	ss := make([]string, len(ps))
	for i, p := range ps {
		ss[i] = g.Node(p.From).Name + "->" + g.Node(p.To).Name
	}
	sort.Strings(ss)
	return fmt.Sprint(ss)
}

// TestExample22Q1 reproduces Example 2.2: query Q1 over the Fig. 1 graph
// must return exactly {(C1,B1), (C1,B2), (C2,B1), (C2,B2)}.
func TestExample22Q1(t *testing.T) {
	g := gen.Essembly()
	q := reach.New(
		predicate.MustParse("job = biologist, sp = cloning"),
		predicate.MustParse("job = doctor"),
		rex.MustParse("fa{2} fn"),
	)
	want := "[C1->B1 C1->B2 C2->B1 C2->B2]"
	mx := dist.NewMatrix(g)
	if got := pairsString(q.EvalMatrix(g, mx), g); got != want {
		t.Errorf("EvalMatrix = %v, want %v", got, want)
	}
	if got := pairsString(q.EvalBFS(g), g); got != want {
		t.Errorf("EvalBFS = %v, want %v", got, want)
	}
	if got := pairsString(q.EvalBiBFS(g, dist.NewCache(g, 128)), g); got != want {
		t.Errorf("EvalBiBFS = %v, want %v", got, want)
	}
}

func TestSingleColorRQ(t *testing.T) {
	g := gen.Essembly()
	// Who is friends-nemeses (direct) with a doctor?
	q := reach.New(
		predicate.MustParse("job = biologist"),
		predicate.MustParse("job = doctor"),
		rex.MustParse("fn"),
	)
	mx := dist.NewMatrix(g)
	want := "[C3->B1 C3->B2]"
	if got := pairsString(q.EvalMatrix(g, mx), g); got != want {
		t.Errorf("EvalMatrix = %v, want %v", got, want)
	}
	if got := pairsString(q.EvalBiBFS(g, dist.NewCache(g, 16)), g); got != want {
		t.Errorf("EvalBiBFS(cache) = %v, want %v", got, want)
	}
}

func TestUnboundedRQ(t *testing.T) {
	g := gen.Essembly()
	// fa+ reaches through the biologist cycle.
	q := reach.New(
		predicate.MustParse("job = biologist"),
		predicate.MustParse("job = biologist"),
		rex.MustParse("fa+"),
	)
	mx := dist.NewMatrix(g)
	got := pairsString(q.EvalMatrix(g, mx), g)
	// All of C1, C2, C3 are on an fa cycle, so all 9 ordered pairs match.
	want := "[C1->C1 C1->C2 C1->C3 C2->C1 C2->C2 C2->C3 C3->C1 C3->C2 C3->C3]"
	if got != want {
		t.Errorf("EvalMatrix = %v, want %v", got, want)
	}
	if got := pairsString(q.EvalBFS(g), g); got != want {
		t.Errorf("EvalBFS = %v, want %v", got, want)
	}
}

func TestEmptyCandidates(t *testing.T) {
	g := gen.Essembly()
	q := reach.New(
		predicate.MustParse("job = lawyer"),
		predicate.MustParse("job = doctor"),
		rex.MustParse("fn"),
	)
	mx := dist.NewMatrix(g)
	if got := q.EvalMatrix(g, mx); len(got) != 0 {
		t.Errorf("no-candidate query returned %v", got)
	}
	if got := q.EvalBFS(g); len(got) != 0 {
		t.Errorf("no-candidate EvalBFS returned %v", got)
	}
}

func TestUnknownColor(t *testing.T) {
	g := gen.Essembly()
	q := reach.New(predicate.Pred{}, predicate.Pred{}, rex.MustParse("zz"))
	mx := dist.NewMatrix(g)
	if got := q.EvalMatrix(g, mx); len(got) != 0 {
		t.Errorf("unknown color returned %v", got)
	}
	if got := q.EvalBiBFS(g, nil); len(got) != 0 {
		t.Errorf("unknown color EvalBiBFS returned %v", got)
	}
}

func TestMatchesPair(t *testing.T) {
	g := gen.Essembly()
	mx := dist.NewMatrix(g)
	q := reach.New(
		predicate.MustParse("job = biologist"),
		predicate.MustParse("job = doctor"),
		rex.MustParse("fa{2} fn"),
	)
	c1, _ := g.NodeByName("C1")
	c3, _ := g.NodeByName("C3")
	b1, _ := g.NodeByName("B1")
	if !q.Matches(g, mx, c1, b1) {
		t.Error("C1->B1 should match fa{2}fn")
	}
	if q.Matches(g, mx, c3, b1) {
		t.Error("C3->B1 should not match fa{2}fn (needs fa block first)")
	}
	if !q.Matches(g, nil, c1, b1) {
		t.Error("C1->B1 should match without a matrix too")
	}
	d1, _ := g.NodeByName("D1")
	if q.Matches(g, mx, d1, b1) {
		t.Error("D1 fails the source predicate")
	}
}

func TestCandidates(t *testing.T) {
	g := gen.Essembly()
	got := reach.Candidates(g, predicate.MustParse("job = doctor"))
	if len(got) != 2 {
		t.Errorf("Candidates(doctor) = %v, want 2 nodes", got)
	}
	all := reach.Candidates(g, predicate.Pred{})
	if len(all) != g.NumNodes() {
		t.Errorf("empty predicate should match all nodes, got %d", len(all))
	}
}

// randomAttrGraph builds a random graph whose nodes carry a small "t"
// attribute so that predicates have varying selectivity.
func randomAttrGraph(r *rand.Rand, n, e int) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddNode(fmt.Sprintf("n%d", i), map[string]string{
			"t": fmt.Sprint(r.Intn(3)),
			"w": fmt.Sprint(r.Intn(5)),
		})
	}
	colors := []string{"a", "b"}
	for i := 0; i < e; i++ {
		g.AddEdge(graph.NodeID(r.Intn(n)), graph.NodeID(r.Intn(n)), colors[r.Intn(2)])
	}
	return g
}

func randomRQ(r *rand.Rand) reach.Query {
	preds := []string{"t = 0", "t = 1", "t = 2", "w > 2", "*"}
	colors := []string{"a", "b", "_"}
	nAtoms := 1 + r.Intn(3)
	atoms := make([]rex.Atom, nAtoms)
	for i := range atoms {
		m := 1 + r.Intn(3)
		if r.Intn(5) == 0 {
			m = rex.Unbounded
		}
		atoms[i] = rex.Atom{Color: colors[r.Intn(3)], Max: m}
	}
	return reach.New(
		predicate.MustParse(preds[r.Intn(len(preds))]),
		predicate.MustParse(preds[r.Intn(len(preds))]),
		rex.MustNew(atoms...),
	)
}

// TestEvalMethodsAgree is the central cross-validation: the three
// evaluation strategies must return identical answer sets on random
// graphs and random queries (including unbounded atoms and wildcards).
func TestEvalMethodsAgree(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomAttrGraph(r, 2+r.Intn(14), 1+r.Intn(40))
		mx := dist.NewMatrix(g)
		ca := dist.NewCache(g, 256)
		for k := 0; k < 4; k++ {
			q := randomRQ(r)
			a := pairsString(q.EvalMatrix(g, mx), g)
			b := pairsString(q.EvalBFS(g), g)
			c := pairsString(q.EvalBiBFS(g, ca), g)
			if a != b || b != c {
				t.Logf("seed %d query %v:\n matrix=%v\n bfs=%v\n bibfs=%v", seed, q, a, b, c)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestEvalMatrixPairsAreSound: every returned pair must individually pass
// Matches, and node predicates must hold.
func TestEvalMatrixPairsAreSound(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomAttrGraph(r, 2+r.Intn(10), 1+r.Intn(25))
		mx := dist.NewMatrix(g)
		q := randomRQ(r)
		for _, p := range q.EvalMatrix(g, mx) {
			if !q.From.Eval(g.Attrs(p.From)) || !q.To.Eval(g.Attrs(p.To)) {
				return false
			}
			if !q.Matches(g, mx, p.From, p.To) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestQueryString(t *testing.T) {
	q := reach.New(predicate.MustParse("a = 1"), predicate.Pred{}, rex.MustParse("x{2} y"))
	if got := q.String(); got != "RQ[a = 1 --x{2} y--> *]" {
		t.Errorf("String() = %q", got)
	}
}

// TestEvalScratchVariantsAgree: the scratch-accepting entry points must
// return exactly what their allocating counterparts return, across many
// random graphs and queries, reusing one arena throughout (so buffer
// poisoning between queries would be caught).
func TestEvalScratchVariantsAgree(t *testing.T) {
	s := dist.NewScratch()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomAttrGraph(r, 2+r.Intn(14), 1+r.Intn(40))
		ca := dist.NewCache(g, 256)
		for k := 0; k < 4; k++ {
			q := randomRQ(r)
			if a, b := pairsString(q.EvalBFS(g), g), pairsString(q.EvalBFSScratch(g, s), g); a != b {
				t.Logf("seed %d query %v: EvalBFS=%v scratch=%v", seed, q, a, b)
				return false
			}
			if a, b := pairsString(q.EvalBiBFS(g, ca), g), pairsString(q.EvalBiBFSScratch(g, ca, s), g); a != b {
				t.Logf("seed %d query %v: EvalBiBFS=%v scratch=%v", seed, q, a, b)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestEvalBiBFSAllocRegression pins the allocation win of the scratch
// arenas (ISSUE 2 / the ROADMAP's closure-allocation open item): on a
// fixed graph, a repeated multi-atom EvalBiBFS must stay within a small
// constant number of allocations per run. Before the arenas, every run
// allocated one seed bitset per candidate plus three buffers per
// closure step — hundreds of allocations on this workload.
func TestEvalBiBFSAllocRegression(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; bounds hold in normal builds only")
	}
	// A GC pause mid-measurement can empty the scratch sync.Pool and
	// charge a full arena rebuild to one run; disable GC so the bounds
	// measure the steady state deterministically.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	g := gen.Synthetic(1, 300, 1200, 3, gen.DefaultColors)
	q := reach.New(
		predicate.MustParse("a0 = 3"),
		predicate.MustParse("a1 = 7"),
		rex.MustParse("c0{2} c1{2}"),
	)
	if n := len(q.EvalBiBFS(g, nil)); n == 0 {
		t.Fatal("workload found no pairs; allocation numbers would be vacuous")
	}

	// Dedicated arena: in steady state nothing but the answer slice (and
	// its append growth) may allocate.
	s := dist.NewScratch()
	sink := q.EvalBiBFSScratch(g, nil, s)
	if got := testing.AllocsPerRun(20, func() {
		sink = q.EvalBiBFSScratch(g, nil, s)
	}); got > 12 {
		t.Errorf("EvalBiBFSScratch allocates %.0f/run, want <= 12", got)
	}

	// Pooled entry point: the bound is looser because sync.Pool
	// hand-offs (and whatever arena sizes earlier tests parked in the
	// pool) add run-to-run noise on top of the answer slice — but it
	// must stay an order of magnitude below the ~918/run this workload
	// cost before the arenas existed.
	if got := testing.AllocsPerRun(20, func() {
		sink = q.EvalBiBFS(g, nil)
	}); got > 64 {
		t.Errorf("EvalBiBFS allocates %.0f/run, want <= 64", got)
	}
	_ = sink
}
