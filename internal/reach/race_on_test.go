//go:build race

package reach_test

// raceEnabled gates allocation assertions: the race detector's
// instrumentation allocates, which would fail AllocsPerRun bounds that
// hold in normal builds.
const raceEnabled = true
