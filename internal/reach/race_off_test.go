//go:build !race

package reach_test

const raceEnabled = false
