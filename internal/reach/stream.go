package reach

import (
	"context"
	"iter"

	"regraph/internal/dist"
	"regraph/internal/graph"
)

// This file holds the streaming faces of the three RQ evaluation
// methods: instead of materializing a []Pair, answers are emitted one at
// a time through a yield callback the moment they are found, and a
// context threads cancellation down into the search loops. The
// materializing evaluators (EvalMatrixWith and friends) are thin
// collect-wrappers over these, so there is exactly one evaluation code
// path per method and the answer order is identical either way.
//
// Contract shared by the Stream* methods:
//
//   - yield is called once per answer pair, in the same order the
//     materializing evaluator would append them; returning false stops
//     the enumeration early (the error is then nil).
//   - A nil or non-cancellable ctx (context.Background) disables the
//     cancellation checkpoints entirely; they cost nothing.
//   - When ctx is cancelled mid-evaluation the search is abandoned at
//     the next checkpoint and ctx's error is returned; pairs already
//     yielded remain valid answers (the stream is a correct prefix).

// ctxCheck is the polling helper for evaluator loops that have no
// Scratch to bind a context to (the matrix method): err is a
// channel-closed probe, free when the context cannot be cancelled.
type ctxCheck struct {
	ctx  context.Context
	done <-chan struct{}
}

func newCtxCheck(ctx context.Context) ctxCheck {
	if ctx == nil {
		return ctxCheck{}
	}
	return ctxCheck{ctx: ctx, done: ctx.Done()}
}

func (c ctxCheck) err() error {
	if c.done == nil {
		return nil
	}
	select {
	case <-c.done:
		return c.ctx.Err()
	default:
		return nil
	}
}

// StreamMatrix evaluates the query with the distance matrix (see
// EvalMatrix), emitting each answer pair through yield as the forward
// enumeration finds it. Cancellation checkpoints run per refinement
// layer, per candidate within a layer (strided), and per source during
// enumeration.
func (q Query) StreamMatrix(ctx context.Context, g *graph.Graph, mx *dist.Matrix, cs CandidateSource, yield func(Pair) bool) error {
	cc := newCtxCheck(ctx)
	atoms, ok := dist.Compile(g, q.Expr)
	if !ok {
		return nil
	}
	cand1, rel1 := candsFrom(cs, g, q.From)
	defer rel1()
	cand2, rel2 := candsFrom(cs, g, q.To)
	defer rel2()
	if len(cand1) == 0 || len(cand2) == 0 {
		return nil
	}
	h := len(atoms)
	// layers[i] is the match set of the i-th dummy node: nodes from which
	// atoms[i:] can reach some destination candidate. layers[h] = cand2.
	layers := make([][]graph.NodeID, h+1)
	layers[h] = cand2
	var all []graph.NodeID
	for i := h - 1; i >= 0; i-- {
		if err := cc.err(); err != nil {
			return err
		}
		var from []graph.NodeID
		if i == 0 {
			from = cand1
		} else {
			if all == nil {
				all = allNodes(g)
			}
			from = all
		}
		var err error
		layers[i], err = refineLayer(mx, atoms[i], from, layers[i+1], cc)
		if err != nil {
			return err
		}
		if len(layers[i]) == 0 {
			return nil
		}
	}
	// Forward enumeration: for each surviving source, walk the layers.
	for _, x := range layers[0] {
		if err := cc.err(); err != nil {
			return err
		}
		for _, y := range forwardImage(mx, atoms, x, layers) {
			if !yield(Pair{x, y}) {
				return nil
			}
		}
	}
	return nil
}

// StreamBFS evaluates the query by forward-only search (see EvalBFS),
// emitting answers per source candidate as its closure completes. The
// context is bound to s, so the closure BFS itself observes
// cancellation at its strided checkpoints.
func (q Query) StreamBFS(ctx context.Context, g *graph.Graph, s *dist.Scratch, cs CandidateSource, yield func(Pair) bool) error {
	atoms, ok := dist.Compile(g, q.Expr)
	if !ok {
		return nil
	}
	unbind := s.BindContext(ctx)
	defer unbind()
	cand1, rel1 := candsFrom(cs, g, q.From)
	defer rel1()
	cand2, rel2 := candsFrom(cs, g, q.To)
	defer rel2()
	if len(cand1) == 0 || len(cand2) == 0 {
		return nil
	}
	seed := s.Seed(g.NumNodes())
	for _, x := range cand1 {
		seed[x] = true
		res := dist.ForwardClosureScratch(g, seed, atoms, s)
		seed[x] = false
		if s.Canceled() {
			return ctx.Err()
		}
		for _, y := range cand2 {
			if res[y] {
				if !yield(Pair{x, y}) {
					return nil
				}
			}
		}
	}
	return nil
}

// StreamBiBFS evaluates the query with the bi-directional runtime search
// (see EvalBiBFS), emitting answers as each source's forward closure is
// intersected with the retained backward closures. It is StreamBackend
// with the cache as the (optional) distance backend; the indirection
// keeps the historical cache-typed API while the engine speaks Backend.
func (q Query) StreamBiBFS(ctx context.Context, g *graph.Graph, ca *dist.Cache, s *dist.Scratch, cs CandidateSource, yield func(Pair) bool) error {
	// The nil *Cache must become a nil interface, not a non-nil
	// interface holding a nil pointer — StreamBackend branches on it.
	var be dist.Backend
	if ca != nil {
		be = ca
	}
	return q.StreamBackend(ctx, g, be, s, cs, yield)
}

// StreamBackend evaluates the query against any distance backend
// (Matrix, TwoHop, Cache — see dist.Backend): single-atom expressions
// become pairwise backend lookups over the candidate sets; longer
// expressions fall back to the split closure search, which never needs
// per-pair distances. A nil backend always uses closures. The context
// is bound to s for the duration, so every closure and cache-miss
// search under this call observes cancellation; a cancelled cache-miss
// distance is never stored (see dist.Cache.DistScratch). Index-backed
// backends answer O(1)/O(label) lookups regardless of ctx.
func (q Query) StreamBackend(ctx context.Context, g *graph.Graph, be dist.Backend, s *dist.Scratch, cs CandidateSource, yield func(Pair) bool) error {
	atoms, ok := dist.Compile(g, q.Expr)
	if !ok {
		return nil
	}
	unbind := s.BindContext(ctx)
	defer unbind()
	cand1, rel1 := candsFrom(cs, g, q.From)
	defer rel1()
	cand2, rel2 := candsFrom(cs, g, q.To)
	defer rel2()
	if len(cand1) == 0 || len(cand2) == 0 {
		return nil
	}
	if len(atoms) == 1 && be != nil {
		a := atoms[0]
		for _, x := range cand1 {
			if s.Canceled() {
				return ctx.Err()
			}
			for _, y := range cand2 {
				if a.Sat(be.DistScratch(a.Color, x, y, s)) {
					if !yield(Pair{x, y}) {
						return nil
					}
				}
			}
		}
		if s.Canceled() {
			return ctx.Err()
		}
		return nil
	}
	n := g.NumNodes()
	mid := len(atoms) / 2
	// Backward closures of the suffix per destination are retained (in
	// recycled bitsets); the forward closure of the prefix is then
	// streamed one source at a time and intersected immediately, so only
	// one forward buffer is ever live.
	bwd := takeBitsetList(len(cand2))
	defer putBitsetList(bwd)
	recycleAll := func(upto int) {
		for _, b := range (*bwd)[:upto] {
			s.Recycle(b)
		}
	}
	seed := s.Seed(n)
	for j, y := range cand2 {
		seed[y] = true
		res := dist.BackwardClosureScratch(g, seed, atoms[mid:], s)
		seed[y] = false
		if s.Canceled() {
			recycleAll(j)
			return ctx.Err()
		}
		b := s.Bitset(n)
		copy(b, res)
		(*bwd)[j] = b
	}
	for _, x := range cand1 {
		seed[x] = true
		fwd := dist.ForwardClosureScratch(g, seed, atoms[:mid], s)
		seed[x] = false
		if s.Canceled() {
			recycleAll(len(cand2))
			return ctx.Err()
		}
		for j, y := range cand2 {
			if intersects(fwd, (*bwd)[j]) {
				if !yield(Pair{x, y}) {
					recycleAll(len(cand2))
					return nil
				}
			}
		}
	}
	recycleAll(len(cand2))
	return nil
}

// PairsMatrix adapts StreamMatrix to a range-able iterator:
//
//	for p := range q.PairsMatrix(ctx, g, mx, cs) { ... }
//
// Cancellation just ends the sequence early; when that matters, check
// ctx.Err() after the loop (or use StreamMatrix directly, which returns
// the error).
func (q Query) PairsMatrix(ctx context.Context, g *graph.Graph, mx *dist.Matrix, cs CandidateSource) iter.Seq[Pair] {
	return func(yield func(Pair) bool) {
		_ = q.StreamMatrix(ctx, g, mx, cs, yield)
	}
}

// PairsBiBFS adapts StreamBiBFS to a range-able iterator; the same
// early-end cancellation semantics as PairsMatrix apply.
func (q Query) PairsBiBFS(ctx context.Context, g *graph.Graph, ca *dist.Cache, s *dist.Scratch, cs CandidateSource) iter.Seq[Pair] {
	return func(yield func(Pair) bool) {
		_ = q.StreamBiBFS(ctx, g, ca, s, cs, yield)
	}
}
