package server_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"regraph/internal/dist"
	"regraph/internal/engine"
	"regraph/internal/gen"
	"regraph/internal/graph"
	"regraph/internal/qlang"
	"regraph/internal/server"
	"regraph/internal/wire"
)

// testGraph is a small-but-nontrivial synthetic graph shared by the
// server tests.
func testGraph(seed int64) *graph.Graph {
	return gen.Synthetic(seed, 300, 1200, 3, gen.DefaultColors)
}

// wireBatch builds a deterministic mixed batch of wire requests — RQs
// (every third one count-only) and PQs as qlang text — with explicit
// ids 0..n-1. Queries are generated structurally and serialized to
// text, exactly what a remote client would send.
func wireBatch(t *testing.T, g *graph.Graph, n int, seed int64) []wire.Request {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	reqs := make([]wire.Request, n)
	for i := range reqs {
		id := uint64(i)
		if i%4 == 3 {
			pq := gen.Query(g, gen.Spec{Nodes: 3, Edges: 3, Preds: 2, Bound: 3, Colors: 2}, r)
			var b strings.Builder
			if err := qlang.WritePattern(&b, pq); err != nil {
				t.Fatal(err)
			}
			reqs[i] = wire.Request{ID: &id, PQ: b.String()}
		} else {
			q := gen.RQ(g, 2, 3, 1+r.Intn(3), r)
			reqs[i] = wire.Request{
				ID:    &id,
				RQ:    &wire.RQSpec{From: q.From.String(), To: q.To.String(), Expr: q.Expr.String()},
				Count: i%3 == 0,
			}
		}
	}
	return reqs
}

// wantResponses compiles the wire batch locally, runs it through
// Engine.RunBatch, and lifts the results through the same wire encoding
// the server uses — the reference the served stream must match bit for
// bit (modulo latency, which the caller zeroes).
func wantResponses(t *testing.T, e *engine.Engine, reqs []wire.Request) map[uint64]wire.Response {
	t.Helper()
	ereqs := make([]engine.Request, len(reqs))
	kinds := make([]string, len(reqs))
	for i := range reqs {
		var err error
		ereqs[i], kinds[i], err = reqs[i].Compile()
		if err != nil {
			t.Fatalf("request %d does not compile: %v", i, err)
		}
	}
	results := e.RunBatch(ereqs)
	want := map[uint64]wire.Response{}
	for i, res := range results {
		var resp wire.Response
		if reqs[i].Count {
			// Count-only on the wire: the materialized local answer gives
			// the expected cardinality, the wire carries no pairs.
			resp = wire.Response{ID: uint64(i), Kind: kinds[i], Count: len(res.Pairs)}
		} else {
			resp = wire.FromResult(res, kinds[i], ereqs[i].PQ, 0)
		}
		resp.ID = *reqs[i].ID
		resp.LatencyUS = 0
		want[resp.ID] = resp
	}
	return want
}

// postNDJSON sends the batch as one NDJSON body and decodes the full
// response stream.
func postNDJSON(t *testing.T, url string, reqs []wire.Request) []wire.Response {
	t.Helper()
	var body bytes.Buffer
	enc := json.NewEncoder(&body)
	for i := range reqs {
		if err := enc.Encode(&reqs[i]); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post(url+"/v1/query", "application/x-ndjson", &body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/query: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	return decodeStream(t, resp.Body)
}

func decodeStream(t *testing.T, r io.Reader) []wire.Response {
	t.Helper()
	var out []wire.Response
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), wire.MaxResponseLineBytes)
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) == "" {
			continue
		}
		var resp wire.Response
		if err := json.Unmarshal(sc.Bytes(), &resp); err != nil {
			t.Fatalf("malformed response line %q: %v", sc.Text(), err)
		}
		out = append(out, resp)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("response stream: %v", err)
	}
	return out
}

// TestServerMatchesRunBatch is the session≡RunBatch property lifted to
// the wire: a mixed RQ/PQ NDJSON batch streamed through POST /v1/query
// must yield exactly the responses obtained by compiling the same lines
// locally, running Engine.RunBatch, and encoding the results — in both
// cache and matrix engine modes.
func TestServerMatchesRunBatch(t *testing.T) {
	g := testGraph(7)
	mx := dist.NewMatrix(g)
	reqs := wireBatch(t, g, 48, 11)
	for name, opts := range map[string]engine.Options{
		"cache":  {Workers: 4},
		"matrix": {Workers: 4, Matrix: mx},
	} {
		t.Run(name, func(t *testing.T) {
			e := engine.MustNew(g, opts)
			want := wantResponses(t, e, reqs)

			srv := server.New(e, server.Options{})
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()
			defer srv.Close()

			got := postNDJSON(t, ts.URL, reqs)
			if len(got) != len(reqs) {
				t.Fatalf("got %d responses, want %d", len(got), len(reqs))
			}
			seen := map[uint64]bool{}
			for _, resp := range got {
				if seen[resp.ID] {
					t.Fatalf("duplicate response id %d", resp.ID)
				}
				seen[resp.ID] = true
				if resp.Err == "" && resp.LatencyUS <= 0 {
					t.Errorf("response %d: missing latency", resp.ID)
				}
				resp.LatencyUS = 0
				if w, ok := want[resp.ID]; !ok {
					t.Errorf("response for unknown id %d", resp.ID)
				} else if !reflect.DeepEqual(resp, w) {
					t.Errorf("id %d: wire result differs from RunBatch:\n got %+v\nwant %+v", resp.ID, resp, w)
				}
			}

			st := srv.Stats()
			if st.Submitted != uint64(len(reqs)) || st.Completed != uint64(len(reqs)) {
				t.Errorf("server stats after batch: %+v", st)
			}
			if st.ParseErrors != 0 || st.Dropped != 0 || st.StreamsTotal != 1 {
				t.Errorf("server stats after batch: %+v", st)
			}
		})
	}
}

// TestServerPerLineErrors: malformed lines — broken JSON, bad
// predicates, empty requests — get structured error responses tagged
// with the line's id while the stream keeps serving the valid lines.
func TestServerPerLineErrors(t *testing.T) {
	g := testGraph(3)
	e := engine.MustNew(g, engine.Options{Workers: 2})
	srv := server.New(e, server.Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	body := strings.Join([]string{
		`this is not json`, // ordinal id 0
		`{"id":7,"rq":{"from":"no operator","expr":"fn"}}`, // bad predicate
		`{"id":8}`,                                      // empty request
		`{"id":9,"rq":{"expr":"fn"}}`,                   // valid
		`{"id":10,"pq":"node A\t*","count":true}`,       // count on pq
		`{"id":11,"rq":{"expr":"fn"},"pq":"node A\t*"}`, // both set
		`{"id":12,"pq":"edge A B\tfn"}`,                 // edge before node
	}, "\n")
	resp, err := http.Post(ts.URL+"/v1/query", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got := decodeStream(t, resp.Body)
	if len(got) != 7 {
		t.Fatalf("got %d responses, want 7: %+v", len(got), got)
	}
	byID := map[uint64]wire.Response{}
	for _, r := range got {
		byID[r.ID] = r
	}
	wantErr := map[uint64]string{
		0:  "line 1",
		7:  "rq from",
		8:  "needs rq or pq",
		10: "count applies to rq",
		11: "both rq and pq",
		12: "unknown node",
	}
	for id, frag := range wantErr {
		if r, ok := byID[id]; !ok || !strings.Contains(r.Err, frag) {
			t.Errorf("id %d: response %+v, want error mentioning %q", id, byID[id], frag)
		}
	}
	if r := byID[9]; r.Err != "" || r.Kind != "rq" {
		t.Errorf("valid line answered with %+v", r)
	}

	st := srv.Stats()
	if st.ParseErrors != 6 {
		t.Errorf("parse errors = %d, want 6", st.ParseErrors)
	}
	if st.Submitted != 1 || st.Completed != 1 {
		t.Errorf("stats: %+v", st)
	}
}

// TestServerStatsAndHealth covers the two GET endpoints, including the
// draining flip.
func TestServerStatsAndHealth(t *testing.T) {
	g := testGraph(3)
	e := engine.MustNew(g, engine.Options{Workers: 2})
	srv := server.New(e, server.Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if resp, err := http.Get(ts.URL + "/healthz"); err != nil || resp.StatusCode != 200 {
		t.Fatalf("healthz: %v %v", resp.Status, err)
	} else {
		resp.Body.Close()
	}
	if resp, err := http.Get(ts.URL + "/readyz"); err != nil || resp.StatusCode != 200 {
		t.Fatalf("readyz: %v %v", resp.Status, err)
	} else {
		resp.Body.Close()
	}
	postNDJSON(t, ts.URL, wireBatch(t, g, 8, 5))

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st server.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("stats payload: %v", err)
	}
	if st.Nodes != g.NumNodes() || st.Edges != g.NumEdges() || st.Workers != 2 {
		t.Errorf("stats shape: %+v", st)
	}
	if st.Submitted != 8 || st.Completed != 8 || st.Latency.Count != 8 {
		t.Errorf("stats counters: %+v", st)
	}

	// Draining: readiness turns 503 (with a Retry-After hint) and new
	// query streams are refused — but liveness stays 200, because a
	// draining process is alive and must not be killed mid-flush.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain with no live streams: %v", err)
	}
	if resp, err := http.Get(ts.URL + "/healthz"); err != nil || resp.StatusCode != 200 {
		t.Fatalf("healthz while draining: %v %v", resp.Status, err)
	} else {
		resp.Body.Close()
	}
	if resp, err := http.Get(ts.URL + "/readyz"); err != nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: %v %v", resp.Status, err)
	} else if resp.Header.Get("Retry-After") == "" {
		t.Fatal("draining readyz carries no Retry-After header")
	} else {
		resp.Body.Close()
	}
	if resp, err := http.Post(ts.URL+"/v1/query", "application/x-ndjson", strings.NewReader(`{"rq":{"expr":"fn"}}`)); err != nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("query while draining: %v %v", resp.Status, err)
	} else {
		resp.Body.Close()
	}
}

// TestServerStreamDeadline: a client-requested ?timeout_ms deadline
// ends a stream whose client goes silent while holding the connection
// open — the submitted query is still answered, the stream closes, and
// the session drains.
func TestServerStreamDeadline(t *testing.T) {
	g := testGraph(3)
	e := engine.MustNew(g, engine.Options{Workers: 2})
	srv := server.New(e, server.Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/query?timeout_ms=300", pr)
	if err != nil {
		t.Fatal(err)
	}
	respc := make(chan *http.Response, 1)
	errc := make(chan error, 1)
	go func() {
		resp, err := ts.Client().Do(req)
		if err != nil {
			errc <- err
			return
		}
		respc <- resp
	}()
	if _, err := io.WriteString(pw, `{"id":1,"rq":{"expr":"fn"}}`+"\n"); err != nil {
		t.Fatal(err)
	}
	var resp *http.Response
	select {
	case resp = <-respc:
	case err := <-errc:
		t.Fatal(err)
	case <-time.After(5 * time.Second):
		t.Fatal("no response headers within 5s")
	}
	defer resp.Body.Close()
	// Never close pw: the client stays silent and the server-side
	// deadline must end the stream on its own.
	t0 := time.Now()
	got := decodeStream(t, resp.Body)
	if elapsed := time.Since(t0); elapsed > 4*time.Second {
		t.Fatalf("stream survived %v past its 300ms deadline", elapsed)
	}
	if len(got) == 0 || got[0].ID != 1 || got[0].Err != "" {
		t.Fatalf("submitted query not answered before the deadline: %+v", got)
	}
	pw.Close()

	waitNoStreams(t, srv)
	if st := srv.Stats(); st.Submitted != 1 || st.Completed != 1 {
		t.Errorf("stats after deadline: %+v", st)
	}
}

// waitNoStreams waits for every live stream to unregister.
func waitNoStreams(t *testing.T, srv *server.Server) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().StreamsActive > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("streams still live: %+v", srv.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
}
