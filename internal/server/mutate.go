package server

import (
	"context"
	"errors"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"regraph/internal/engine"
	"regraph/internal/mutate"
	"regraph/internal/wire"
)

// defaultMutateBatch is the Options.MutateBatch default: how many ops
// one /v1/mutate stream folds into a single committed generation.
const defaultMutateBatch = 1024

// handleMutate serves POST /v1/mutate: NDJSON mutation lines in
// (internal/mutate — JSON ops or the qlang text form), ack lines out as
// each chunk commits, one trailing summary. Ops are grouped into
// chunks of at most MutateBatch and each chunk is one Submit to the
// stream's WriteSession — one atomic generation; malformed lines get
// error acks and the stream continues, exactly like the query
// endpoint's per-line errors. The session's admission window
// (MaxPendingOps/MaxPendingBytes) is the write path's flow control: a
// full window stalls the decode loop, which stalls the body read, and
// TCP back-pressure reaches the client — the mirror of the read path's
// MaxInFlight. Only an unreadable stream (oversized line, dead
// connection) or a write-path failure (WAL append error) ends it
// early, tagged in the summary's error field — and even then the
// trailing summary still reports the counts of everything that did
// commit.
func (s *Server) handleMutate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST NDJSON mutation lines to /v1/mutate", http.StatusMethodNotAllowed)
		return
	}
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	// A read-only engine (externally built backend) can never apply
	// anything: refuse with a real status code before the header
	// commits, not an error line a status-checking client would miss.
	// The empty probe also seeds the summary with the current shape.
	probe, err := s.e.Apply(nil)
	if err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	if !s.addAux() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	defer s.endAux()
	s.mutateStreams.Inc()

	// Same full-duplex and unblocking dance as handleQuery: acks stream
	// out while ops stream in, and context death (disconnect, forced
	// drain) must unhook goroutines parked in connection I/O.
	rc := http.NewResponseController(w)
	rc.EnableFullDuplex()
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	stopAfter := context.AfterFunc(s.base, cancel)
	defer stopAfter()
	var writeFailed atomic.Bool
	unblocked := make(chan struct{})
	stopUnblock := context.AfterFunc(ctx, func() {
		defer close(unblocked)
		now := time.Now()
		rc.SetReadDeadline(now)
		rc.SetWriteDeadline(now.Add(time.Second))
	})
	defer func() {
		if !stopUnblock() {
			<-unblocked
			if !writeFailed.Load() {
				rc.SetWriteDeadline(time.Time{})
			}
		}
	}()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	rc.Flush()
	enc := wire.NewEncoder(w)
	send := func(v any) {
		if writeFailed.Load() {
			return
		}
		if err := enc.Encode(v); err != nil {
			writeFailed.Store(true)
			cancel()
		}
	}

	batch := s.opts.MutateBatch
	if batch <= 0 {
		batch = defaultMutateBatch
	}
	sum := mutate.Summary{
		Kind: mutate.SummaryKind,
		Gen:  probe.Gen, Nodes: probe.Nodes, Edges: probe.Edges,
	}

	ws := s.e.OpenWriter(ctx, engine.WriterOptions{
		MaxPendingOps:   s.opts.MaxPendingOps,
		MaxPendingBytes: s.opts.MaxPendingBytes,
	})
	defer ws.Close()

	// Consumer: drain commits as the applier produces them, streaming
	// each batch's acks and folding its totals. Concurrent with the
	// decode loop, so acks reach the client while later chunks are still
	// uploading; the totals are read only after consumerDone.
	var (
		applied, failed int
		lastCommit      engine.Commit
		haveCommit      bool
		commitErr       error
	)
	consumerDone := make(chan struct{})
	go func() {
		defer close(consumerDone)
		for wc := range ws.Commits() {
			if wc.Err != nil {
				// Sticky write-path failure (WAL append, engine refusal):
				// remember the first, keep draining so held capacity frees.
				if commitErr == nil {
					commitErr = wc.Err
				}
				continue
			}
			s.opsApplied.Add(uint64(wc.Commit.Applied))
			s.opsFailed.Add(uint64(wc.Commit.Failed))
			applied += wc.Commit.Applied
			failed += wc.Commit.Failed
			lastCommit, haveCommit = wc.Commit, true
			for _, a := range wc.Commit.Acks {
				send(a)
			}
		}
	}()

	dec := mutate.NewDecoder(r.Body)
	var ops []mutate.Op
	mark := dec.Consumed()
	parseFailed := 0
	// submit hands the pending chunk to the write session (one Submit =
	// one generation), blocking on the admission window. A Submit error
	// — sticky write failure, cancellation, drain — is terminal.
	submit := func() bool {
		if len(ops) == 0 {
			return true
		}
		nbytes := dec.Consumed() - mark
		mark = dec.Consumed()
		err := ws.Submit(ctx, ops, nbytes)
		ops = nil // the session owns the slice until delivery
		if err != nil {
			if sum.Err == "" {
				sum.Err = err.Error()
			}
			return false
		}
		return true
	}

	for sum.Err == "" && !writeFailed.Load() {
		op, err := dec.Next()
		if err == io.EOF {
			break
		}
		var le *mutate.LineError
		if errors.As(err, &le) {
			// Recoverable: the line got an ordinal id from the decoder;
			// ack it as failed and keep reading.
			s.parseErrors.Inc()
			s.opsFailed.Inc()
			parseFailed++
			var id uint64
			if op.ID != nil {
				id = *op.ID
			}
			send(mutate.Ack{ID: id, Verb: op.Verb, Err: le.Error()})
			continue
		}
		if err != nil {
			// Unreadable stream: submit what was read, then report. Reads
			// broken by a disconnect or drain are not protocol failures.
			if ctx.Err() == nil {
				s.parseErrors.Inc()
				submit()
				if sum.Err == "" {
					sum.Err = "mutation stream aborted: " + err.Error()
				}
			} else {
				submit()
				if sum.Err == "" {
					sum.Err = "mutation stream canceled"
				}
			}
			break
		}
		ops = append(ops, op)
		if len(ops) >= batch {
			submit()
		}
	}
	submit()

	// Close admission and wait for every submitted chunk's outcome: the
	// summary must account for everything that committed, even when the
	// stream died mid-way (the oversized-line contract).
	ws.Close()
	<-consumerDone

	// A stream that died mid-body (oversized line, write-path failure)
	// leaves unread input. Read it to EOF — bounded by a read deadline —
	// before returning: net/http's connection reader panics on reuse
	// when a full-duplex handler abandons a half-read body, and the
	// drain happens after every commit is acked so the client sees the
	// complete response either way.
	if sum.Err != "" && ctx.Err() == nil && !writeFailed.Load() {
		rc.SetReadDeadline(time.Now().Add(2 * time.Second))
		io.Copy(io.Discard, r.Body)
	}
	sum.Applied = applied
	sum.Failed = failed + parseFailed
	if haveCommit {
		sum.Gen, sum.Nodes, sum.Edges = lastCommit.Gen, lastCommit.Nodes, lastCommit.Edges
	}
	if sum.Err == "" && commitErr != nil {
		sum.Err = commitErr.Error()
	}
	send(sum)
}

// handleSubscribe serves POST /v1/subscribe: the first NDJSON line is a
// wire request naming a pattern (pq), the response is a standing-query
// stream — an init line with the full answer at the subscription
// generation, a delta line for every committed mutation batch that
// changes it, and a final end line. The stream ends when the client
// goes away, when the consumer lags more than SubscribeBuffer commits
// behind (end error "lagged" — re-subscribe for a fresh snapshot), or
// when the server drains (end error "draining").
func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST one NDJSON pattern request line to /v1/subscribe", http.StatusMethodNotAllowed)
		return
	}
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	req, err := wire.NewDecoder(r.Body).Next()
	if err != nil {
		s.parseErrors.Inc()
		http.Error(w, "subscribe: "+err.Error(), http.StatusBadRequest)
		return
	}
	ereq, kind, cerr := req.Compile()
	if cerr != nil {
		s.parseErrors.Inc()
		http.Error(w, "subscribe: "+cerr.Error(), http.StatusBadRequest)
		return
	}
	if kind != "pq" || ereq.PQ == nil {
		http.Error(w, "subscribe: the request line must carry a pattern (pq)", http.StatusBadRequest)
		return
	}
	if !s.addAux() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	defer s.endAux()
	st, err := s.e.Subscribe(ereq.PQ, s.opts.SubscribeBuffer)
	if err != nil {
		http.Error(w, "subscribe: "+err.Error(), http.StatusBadRequest)
		return
	}
	defer st.Close()
	s.subsTotal.Inc()
	s.subsActive.Add(1)
	defer s.subsActive.Add(-1)

	// The stream lives until the client disconnects or a drain begins —
	// subsCtx (not base) so even a graceful drain releases it. The
	// deadline dance unhooks a blocked write to a stalled client, with a
	// grace period so the end line still reaches a live one.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	stopAfter := context.AfterFunc(s.subsCtx, cancel)
	defer stopAfter()
	var writeFailed atomic.Bool
	unblocked := make(chan struct{})
	stopUnblock := context.AfterFunc(ctx, func() {
		defer close(unblocked)
		now := time.Now()
		rc := http.NewResponseController(w)
		rc.SetReadDeadline(now)
		rc.SetWriteDeadline(now.Add(time.Second))
	})
	defer func() {
		if !stopUnblock() {
			<-unblocked
		}
	}()

	rc := http.NewResponseController(w)
	rc.EnableFullDuplex()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	rc.Flush()
	enc := wire.NewEncoder(w)
	send := func(d wire.Delta) bool {
		if writeFailed.Load() {
			return false
		}
		if err := enc.Encode(d); err != nil {
			writeFailed.Store(true)
			cancel()
			return false
		}
		return true
	}

	q := st.Query()
	gen, res := st.Init()
	if !send(wire.Delta{Gen: gen, Kind: wire.DeltaInit, Count: res.Size(), Match: wire.MatchOf(q, res)}) {
		return
	}
	lastGen := gen
	for {
		select {
		case <-ctx.Done():
			// Client gone, or the server is draining. Close first so no
			// further updates race the end line; the write deadline set by
			// the unblock callback bounds the best-effort send.
			st.Close()
			end := wire.Delta{Gen: lastGen, Kind: wire.DeltaEnd}
			if s.draining.Load() {
				end.Err = "draining"
			}
			send(end)
			return
		case u, ok := <-st.Updates():
			if !ok {
				end := wire.Delta{Gen: lastGen, Kind: wire.DeltaEnd}
				if st.Lagged() {
					end.Err = "lagged"
				}
				send(end)
				return
			}
			lastGen = u.Gen
			if !send(wire.Delta{
				Gen:     u.Gen,
				Kind:    wire.DeltaDelta,
				Count:   u.Result.Size(),
				Added:   wire.DeltaEdges(q, u.Added),
				Removed: wire.DeltaEdges(q, u.Removed),
			}) {
				return
			}
		}
	}
}
