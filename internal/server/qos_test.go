package server_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"regraph/internal/engine"
	"regraph/internal/server"
)

// TestServerStatsUnderDeadlineLoad hammers GET /v1/stats while a
// single-worker server sheds most of a 1ms-deadline burst, checking
// the aggregate counters stay coherent under the folded+live locking:
// every cumulative counter is monotone across every poll (including
// the fold when the stream's session ends), gauges never go negative,
// and the final aggregates reconcile exactly with the per-response
// error_kind classification on the wire.
func TestServerStatsUnderDeadlineLoad(t *testing.T) {
	g := testGraph(1)
	e := engine.MustNew(g, engine.Options{Workers: 1})
	srv := server.New(e, server.Options{MaxInFlight: 512})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const n = 400
	reqs := wireBatch(t, g, n, 5)
	for i := range reqs {
		if i%4 != 3 {
			reqs[i].DeadlineMS = 1 // hopeless behind a 1-worker queue: most must shed
		}
		reqs[i].Priority = i % 8
	}

	stop := make(chan struct{})
	var pollWG sync.WaitGroup
	pollWG.Add(1)
	go func() {
		defer pollWG.Done()
		var prev server.Stats
		polls := 0
		for {
			select {
			case <-stop:
				if polls == 0 {
					t.Error("stats poller never ran")
				}
				return
			default:
			}
			resp, err := http.Get(ts.URL + "/v1/stats")
			if err != nil {
				t.Errorf("GET /v1/stats: %v", err)
				return
			}
			var st server.Stats
			err = json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if err != nil {
				t.Errorf("decode stats: %v", err)
				return
			}
			for _, c := range []struct {
				name      string
				cur, prev uint64
			}{
				{"streams_total", st.StreamsTotal, prev.StreamsTotal},
				{"submitted", st.Submitted, prev.Submitted},
				{"completed", st.Completed, prev.Completed},
				{"cancelled", st.Cancelled, prev.Cancelled},
				{"failed", st.Failed, prev.Failed},
				{"expired", st.Expired, prev.Expired},
				{"missed", st.Missed, prev.Missed},
				{"delivered", st.Delivered, prev.Delivered},
			} {
				if c.cur < c.prev {
					t.Errorf("%s went backwards: %d -> %d", c.name, c.prev, c.cur)
				}
			}
			if st.QueueDepth < 0 || st.InFlight < 0 || st.StreamsActive < 0 {
				t.Errorf("negative gauge in %+v", st)
			}
			prev = st
			polls++
			time.Sleep(time.Millisecond)
		}
	}()

	got := postNDJSON(t, ts.URL, reqs)
	close(stop)
	pollWG.Wait()

	if len(got) != n {
		t.Fatalf("received %d responses, want %d", len(got), n)
	}
	seen := map[uint64]bool{}
	var shed, missed, completed, other int
	for _, r := range got {
		if seen[r.ID] {
			t.Errorf("duplicate response id %d", r.ID)
		}
		seen[r.ID] = true
		switch {
		case r.Err == "":
			completed++
		case r.ErrKind == "shed":
			shed++
		case r.ErrKind == "deadline":
			missed++
		default:
			other++
		}
	}
	if other != 0 {
		t.Errorf("%d responses with unexpected error kinds", other)
	}
	if shed == 0 {
		t.Error("a 1ms-deadline burst behind one worker shed nothing")
	}

	st := srv.Stats()
	if st.Submitted != n {
		t.Errorf("submitted %d, want %d", st.Submitted, n)
	}
	if st.Completed+st.Cancelled+st.Failed+st.Expired+st.Missed != st.Submitted {
		t.Errorf("outcomes do not partition submissions: %+v", st)
	}
	// The wire classification and the folded counters are two views of
	// the same events and must agree exactly once the stream has ended.
	if uint64(shed) != st.Expired || uint64(missed) != st.Missed || uint64(completed) != st.Completed {
		t.Errorf("wire saw %d shed / %d missed / %d completed, stats folded %d / %d / %d",
			shed, missed, completed, st.Expired, st.Missed, st.Completed)
	}
	if st.StreamsActive != 0 || st.QueueDepth != 0 || st.InFlight != 0 {
		t.Errorf("server not drained: %+v", st)
	}
}
