package server_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"regraph/internal/engine"
	"regraph/internal/faultinject"
	"regraph/internal/server"
	"regraph/internal/wire"
)

// Deadline-vs-stalled-client tests. The handler's unstick path
// (server.go: the context.AfterFunc that sets the connection deadlines)
// has two obligations that pull in opposite directions: a stalled
// connection must be broken promptly, and a healthy stream that merely
// hit its deadline must still terminate cleanly — complete response
// lines, proper EOF, never a truncation. faultinject provides the
// stalled side deterministically.

// stallServer starts an engine+server on a faultinject-wrapped TCP
// listener and returns the base URL.
func stallServer(t *testing.T, script *faultinject.Script) (*server.Server, string) {
	t.Helper()
	g := testGraph(41)
	e := engine.MustNew(g, engine.Options{Workers: 2})
	srv := server.New(e, server.Options{MaxInFlight: 8})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(faultinject.Wrap(ln, script))
	return srv, "http://" + ln.Addr().String()
}

// TestServerReadDeadlineCleanStream: a client submits two requests and
// then goes silent with the stream held open — the reader goroutine is
// parked in a body read with nothing coming. The ?timeout_ms deadline
// must break that read, and because every write succeeded, the unstick
// path must lift the write deadline again so the answered stream
// terminates as a clean EOF: two complete response lines, no stream
// error, no truncation.
func TestServerReadDeadlineCleanStream(t *testing.T) {
	defer leakCheck(t)()
	srv, base := stallServer(t, nil)
	defer srv.Close()
	tr := &http.Transport{}
	client := &http.Client{Transport: tr}
	defer tr.CloseIdleConnections()

	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, base+"/v1/query?timeout_ms=300", pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	t0 := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	defer pw.Close()

	enc := json.NewEncoder(pw)
	for i := uint64(0); i < 2; i++ {
		id := i
		if err := enc.Encode(&wire.Request{ID: &id, RQ: &wire.RQSpec{Expr: "fn"}}); err != nil {
			t.Fatal(err)
		}
	}
	// ...and now say nothing more, with the stream open.

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), wire.MaxResponseLineBytes)
	var got []wire.Response
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) == "" {
			continue
		}
		var r wire.Response
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("truncated or malformed line %q: %v", sc.Text(), err)
		}
		got = append(got, r)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("deadline unstick truncated a clean stream: %v", err)
	}
	elapsed := time.Since(t0)

	if len(got) != 2 {
		t.Fatalf("got %d responses, want 2: %+v", len(got), got)
	}
	seen := map[uint64]bool{}
	for _, r := range got {
		if r.Err != "" || r.Kind != "rq" {
			t.Errorf("submitted-before-stall request answered with %+v", r)
		}
		if seen[r.ID] {
			t.Errorf("duplicate response id %d", r.ID)
		}
		seen[r.ID] = true
	}
	if elapsed < 250*time.Millisecond {
		t.Errorf("stream ended after %v — before its 300ms deadline; the deadline did not drive termination", elapsed)
	}
	if elapsed > 3*time.Second {
		t.Errorf("stream took %v to end; the read deadline did not break the silent body", elapsed)
	}
	waitNoStreams(t, srv)
}

// TestServerWriteDeadlineBreaksStalledClient: the opposite failure — a
// client that submits plenty of work and then stops reading responses.
// faultinject stalls the server's writes after 600 bytes (headers plus
// a few lines), parking the consumer in a send. The deadline's write
// unstick (1s grace, then fail) must break the stall, unwind the
// stream, and release every session resource; whatever prefix the
// client did receive must consist of complete lines up to at most one
// truncated tail.
func TestServerWriteDeadlineBreaksStalledClient(t *testing.T) {
	defer leakCheck(t)()
	srv, base := stallServer(t, &faultinject.Script{
		Default: faultinject.Rules{StallWriteAfter: 600},
	})
	defer srv.Close()
	tr := &http.Transport{}
	client := &http.Client{Transport: tr}
	defer tr.CloseIdleConnections()

	var body bytes.Buffer
	enc := json.NewEncoder(&body)
	for i := uint64(0); i < 100; i++ {
		id := i
		if err := enc.Encode(&wire.Request{ID: &id, RQ: &wire.RQSpec{Expr: "fa fn"}}); err != nil {
			t.Fatal(err)
		}
	}
	t0 := time.Now()
	resp, err := client.Post(base+"/v1/query?timeout_ms=300", "application/x-ndjson", &body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// Drain whatever arrives; the conn dies when the server gives up on
	// us, so any error here is the expected end of the experiment.
	raw, _ := io.ReadAll(resp.Body)
	elapsed := time.Since(t0)
	if elapsed > 5*time.Second {
		t.Errorf("stalled stream took %v to be broken (deadline 300ms + 1s write grace)", elapsed)
	}
	// Every fully-delivered line must be well-formed; only the tail may
	// be cut where the stall landed mid-line.
	lines := strings.Split(string(raw), "\n")
	for i, line := range lines {
		if strings.TrimSpace(line) == "" {
			continue
		}
		var r wire.Response
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			if i == len(lines)-1 {
				continue // unterminated tail: legitimate truncation point
			}
			t.Fatalf("interior line %d malformed: %q", i, line)
		}
	}

	waitNoStreams(t, srv)
	st := srv.Stats()
	if st.Submitted == 0 {
		t.Fatal("test never submitted anything")
	}
	if st.Completed+st.Cancelled+st.Failed != st.Submitted {
		t.Errorf("completed %d + cancelled %d + failed %d != submitted %d",
			st.Completed, st.Cancelled, st.Failed, st.Submitted)
	}
}
