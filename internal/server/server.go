// Package server exposes an engine as an HTTP service speaking the
// NDJSON wire format of internal/wire — the serving layer that turns
// the in-process session API into a multi-user query front end
// (cmd/rgserve is the binary).
//
// Endpoints:
//
//	POST /v1/query   NDJSON request lines in, NDJSON response lines out,
//	                 streamed in completion order as each result
//	                 arrives. One engine session per request stream;
//	                 the session's MaxInFlight admission bound is the
//	                 flow control — once it fills, the server stops
//	                 reading the request body and TCP back-pressure
//	                 reaches the client. ?timeout_ms=N sets a deadline
//	                 for the whole stream (capped by the server's
//	                 StreamTimeout).
//	POST /v1/mutate  NDJSON mutation lines in (internal/mutate: JSON ops
//	                 or the qlang text form, interchangeable), NDJSON
//	                 ack lines out plus one trailing summary. Ops are
//	                 applied in chunks of MutateBatch, each chunk one
//	                 atomic engine generation; queries running on older
//	                 generations are never blocked or torn (snapshot
//	                 isolation). A read-only engine (externally built
//	                 backend) refuses the stream with 409 up front.
//	POST /v1/subscribe  one NDJSON request line naming a pattern (pq)
//	                 in, a standing-query stream out: an init line with
//	                 the full answer, then one delta line per committed
//	                 mutation batch that changes it, then an end line
//	                 (error "lagged" when the client fell behind,
//	                 "draining" when the server shut down).
//	GET  /v1/stats   JSON snapshot: engine shape plus request counters,
//	                 latency summary and live-session aggregates.
//	GET  /healthz    liveness: 200 "ok" while the process runs, even
//	                 during a drain (a draining server is alive — don't
//	                 kill it, it is flushing streams).
//	GET  /readyz    readiness: 200 "ok", flipping to 503 "draining"
//	                 with a Retry-After header the moment drain begins,
//	                 so a router stops routing here before streams are
//	                 refused.
//
// Malformed request lines get a structured per-line error response and
// the stream continues; only an unreadable stream (oversized line, dead
// connection) ends it. Shutdown is graceful: Drain stops admitting new
// streams, waits for live ones to finish, and force-cancels their
// sessions only when the drain context expires — either way no
// goroutine outlives the server.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"regraph/internal/engine"
	"regraph/internal/metrics"
	"regraph/internal/pattern"
	"regraph/internal/reach"
	"regraph/internal/wire"
)

// Options configures a Server.
type Options struct {
	// MaxInFlight is each connection's session admission bound (see
	// engine.SessionOptions.MaxInFlight): it caps that stream's resident
	// answers and is the wire-level flow control. Zero means the engine
	// default (twice the worker count).
	MaxInFlight int

	// ResultBuffer sizes each session's results channel (see
	// engine.SessionOptions.ResultBuffer).
	ResultBuffer int

	// StreamTimeout, when positive, bounds every query stream: the
	// session context gets this deadline and overdue requests are
	// answered with deadline errors. A client's ?timeout_ms can only
	// shorten it.
	StreamTimeout time.Duration

	// AdaptiveInFlight enables adaptive admission on every stream's
	// session (engine.SessionOptions.AdaptiveInFlight): the effective
	// in-flight bound shrinks below MaxInFlight when the observed p99
	// evaluation latency approaches the deadline budgets requests carry
	// (deadline_ms on the wire), and grows back under headroom.
	AdaptiveInFlight bool

	// MutateBatch caps how many mutation ops one /v1/mutate stream
	// accumulates before committing them as a single engine generation
	// (engine.Apply). Smaller batches publish sooner (standing queries
	// see finer-grained deltas); larger ones amortize the per-generation
	// index maintenance. Zero means 1024.
	MutateBatch int

	// SubscribeBuffer sizes each standing query's update channel: how
	// many commits a /v1/subscribe client may fall behind before the
	// engine declares it lagged and closes the stream (see
	// engine.Subscribe). Zero means the engine default (16).
	SubscribeBuffer int

	// MaxPendingOps / MaxPendingBytes bound each /v1/mutate stream's
	// admitted-but-uncommitted write window (engine.WriterOptions) — the
	// write path's mirror of MaxInFlight. When the window fills, the
	// server stops reading the request body and TCP back-pressure
	// reaches the client. Zero means the engine defaults (4096 ops,
	// 8 MiB).
	MaxPendingOps   int
	MaxPendingBytes int64
}

// Server serves an Engine over HTTP. Create it with New; it is safe for
// concurrent use. The Server is the lifecycle owner: Drain/Shutdown end
// live streams without leaking their sessions' goroutines.
type Server struct {
	e    *engine.Engine
	opts Options
	mux  *http.ServeMux

	// base is cancelled by Close / a forced Drain: every live stream's
	// session context derives from it.
	base       context.Context
	cancelBase context.CancelFunc
	draining   atomic.Bool

	// subsCtx derives from base and is cancelled the moment a drain
	// begins (not only when it is forced): a standing-query stream never
	// ends on its own, so a graceful drain must cut it loose up front —
	// each subscriber gets its end line and the stream count reaches
	// zero. Mutation streams, by contrast, are bounded by their request
	// body and drain like query streams.
	subsCtx    context.Context
	subsCancel context.CancelFunc

	mu      sync.Mutex
	live    map[*engine.Session]struct{}
	liveAux int // live /v1/mutate and /v1/subscribe streams (no session)
	hs      *http.Server

	// drained closes (once) when draining is on and the last live stream
	// has ended — the signal Drain blocks on.
	drained   chan struct{}
	drainOnce sync.Once

	streamsTotal metrics.Counter
	parseErrors  metrics.Counter
	// Write-path counters: mutation streams served, ops applied/failed
	// across them, subscriptions opened and currently live.
	mutateStreams         metrics.Counter
	opsApplied, opsFailed metrics.Counter
	subsTotal             metrics.Counter
	subsActive            atomic.Int64
	// Folded session totals (streams that have ended); Stats() adds the
	// live sessions on top.
	submitted, completed, cancelled metrics.Counter
	failed, delivered, dropped      metrics.Counter
	expired, missed                 metrics.Counter
	latency                         metrics.Latency
}

// New builds a server over a ready engine.
func New(e *engine.Engine, opts Options) *Server {
	base, cancel := context.WithCancel(context.Background())
	subsCtx, subsCancel := context.WithCancel(base)
	s := &Server{
		e:          e,
		opts:       opts,
		base:       base,
		cancelBase: cancel,
		subsCtx:    subsCtx,
		subsCancel: subsCancel,
		live:       map[*engine.Session]struct{}{},
		drained:    make(chan struct{}),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/query", s.handleQuery)
	mux.HandleFunc("/v1/mutate", s.handleMutate)
	mux.HandleFunc("/v1/subscribe", s.handleSubscribe)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/readyz", s.handleReady)
	s.mux = mux
	return s
}

// Handler returns the server's HTTP handler (for httptest, custom
// listeners, or mounting under another mux).
func (s *Server) Handler() http.Handler { return s.mux }

// ListenAndServe serves on addr until Shutdown or a listener error.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Serve serves on an existing listener until Shutdown or a listener
// error (http.ErrServerClosed after a clean Shutdown, like net/http).
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.hs == nil {
		s.hs = &http.Server{Handler: s.mux}
	}
	hs := s.hs
	s.mu.Unlock()
	return hs.Serve(l)
}

// Shutdown gracefully stops the server: Drain (refuse new streams, let
// live ones finish, force-cancel their sessions only when ctx expires),
// then close the listeners. It returns nil after a fully graceful stop
// and ctx's error when streams had to be force-cancelled.
func (s *Server) Shutdown(ctx context.Context) error {
	drainErr := s.Drain(ctx)
	s.mu.Lock()
	hs := s.hs
	s.mu.Unlock()
	if hs != nil {
		if drainErr != nil {
			hs.Close()
		} else if err := hs.Shutdown(ctx); err != nil {
			hs.Close()
			if drainErr == nil {
				drainErr = err
			}
		}
	}
	return drainErr
}

// Drain performs the graceful half of shutdown: new query streams are
// refused (healthz turns 503), live streams run to completion, and once
// the last one ends Drain returns nil. If ctx expires first, every live
// stream's session context is cancelled — in-flight queries stop at
// their next cancellation checkpoint, the streams flush their final
// (error-tagged) responses and end — and Drain returns ctx.Err() after
// they do. Either way, no session goroutine survives the call.
func (s *Server) Drain(ctx context.Context) error {
	// Subscriptions end now, not at the force deadline: a standing-query
	// stream has no natural completion to wait for.
	s.subsCancel()
	s.mu.Lock()
	s.draining.Store(true)
	if len(s.live) == 0 && s.liveAux == 0 {
		s.signalDrained()
	}
	s.mu.Unlock()
	// A drain that is already complete is graceful no matter what state
	// ctx is in — don't let the select race report it as forced.
	select {
	case <-s.drained:
		return nil
	default:
	}
	select {
	case <-s.drained:
		return nil
	case <-ctx.Done():
		// Force: cancelling base reaches every live stream's session and
		// its connection deadlines, so the streams end and endStream
		// signals — the wait below is bounded.
		s.cancelBase()
		<-s.drained
		return ctx.Err()
	}
}

// signalDrained closes the drained channel exactly once. Callers hold
// s.mu with draining set and no live streams.
func (s *Server) signalDrained() {
	s.drainOnce.Do(func() { close(s.drained) })
}

// Close force-stops the server: live sessions are cancelled and new
// streams refused. Prefer Shutdown/Drain for graceful stops.
func (s *Server) Close() {
	s.draining.Store(true)
	s.cancelBase()
	s.mu.Lock()
	hs := s.hs
	s.mu.Unlock()
	if hs != nil {
		hs.Close()
	}
}

// Stats is the /v1/stats snapshot: the engine's shape plus request
// counters aggregated over finished and live query streams.
type Stats struct {
	Nodes   int  `json:"nodes"`
	Edges   int  `json:"edges"`
	Workers int  `json:"workers"`
	Matrix  bool `json:"matrix"` // matrix-backed (vs cache) evaluation

	Draining      bool   `json:"draining"`
	StreamsActive int    `json:"streams_active"`
	StreamsTotal  uint64 `json:"streams_total"`
	ParseErrors   uint64 `json:"parse_errors"`

	// Write-path counters. Generation is the engine's current committed
	// generation (0 until the first mutation batch applies); OpsApplied
	// and OpsFailed total the per-op outcomes across every /v1/mutate
	// stream; Subscriptions is the number of standing-query streams
	// currently live.
	Generation    uint64 `json:"generation"`
	MutateStreams uint64 `json:"mutate_streams"`
	OpsApplied    uint64 `json:"ops_applied"`
	OpsFailed     uint64 `json:"ops_failed"`
	Subscriptions int    `json:"subscriptions"`

	// Session totals (engine.SessionStats summed across all streams).
	// Expired counts requests shed because their deadline budget ran out
	// before evaluation; Missed those abandoned mid-evaluation at their
	// deadline. QueueDepth is the current number of admitted requests
	// still waiting for a worker, across live streams.
	Submitted  uint64 `json:"submitted"`
	Completed  uint64 `json:"completed"`
	Cancelled  uint64 `json:"cancelled"`
	Failed     uint64 `json:"failed"`
	Expired    uint64 `json:"expired"`
	Missed     uint64 `json:"missed"`
	Delivered  uint64 `json:"delivered"`
	Dropped    uint64 `json:"dropped"`
	InFlight   int    `json:"in_flight"`
	QueueDepth int    `json:"queue_depth"`

	// Latency summarizes evaluation time of every successful query the
	// server has delivered, across all streams.
	Latency metrics.LatencySnapshot `json:"latency"`

	// WAL reports the engine's write-ahead log; absent on a non-durable
	// server.
	WAL *WALStats `json:"wal,omitempty"`
}

// WALStats is the wal section of /v1/stats: the log's counters plus the
// recovery that built this engine (zero fields when the process started
// from an empty or absent log).
type WALStats struct {
	Appended      uint64 `json:"appended"`       // records (committed batches) appended by this process
	AppendedBytes uint64 `json:"appended_bytes"` // their framed size on disk
	Fsyncs        uint64 `json:"fsyncs"`
	Rotations     uint64 `json:"rotations"`
	Compactions   uint64 `json:"compactions"`
	Segments      int    `json:"segments"`
	LastCommitGen uint64 `json:"last_commit_gen"` // newest generation on the log
	SnapshotGen   uint64 `json:"snapshot_gen"`    // latest snapshot's generation (0 = none)

	// RecoveredBatches and RecoveryMS describe the startup Recover:
	// how many logged batches were replayed and how long load+replay
	// took.
	RecoveredBatches int   `json:"recovered_batches"`
	RecoveryMS       int64 `json:"recovery_ms"`
}

// Stats returns a point-in-time snapshot (the /v1/stats payload).
func (s *Server) Stats() Stats {
	st := Stats{
		Nodes:         s.e.Graph().NumNodes(),
		Edges:         s.e.Graph().NumEdges(),
		Workers:       s.e.Workers(),
		Matrix:        s.e.Matrix() != nil,
		Draining:      s.draining.Load(),
		StreamsTotal:  s.streamsTotal.Load(),
		ParseErrors:   s.parseErrors.Load(),
		Generation:    s.e.Generation(),
		MutateStreams: s.mutateStreams.Load(),
		OpsApplied:    s.opsApplied.Load(),
		OpsFailed:     s.opsFailed.Load(),
		Subscriptions: int(s.subsActive.Load()),
		Latency:       s.latency.Snapshot(),
	}
	if w := s.e.WAL(); w != nil {
		ws := w.Stats()
		ri := s.e.Recovered()
		st.WAL = &WALStats{
			Appended:         ws.Appended,
			AppendedBytes:    ws.AppendedBytes,
			Fsyncs:           ws.Fsyncs,
			Rotations:        ws.Rotations,
			Compactions:      ws.Compactions,
			Segments:         ws.Segments,
			LastCommitGen:    ws.LastGen,
			SnapshotGen:      ws.SnapshotGen,
			RecoveredBatches: ri.Batches,
			RecoveryMS:       ri.Duration.Milliseconds(),
		}
	}
	// Folded totals and the live scan must come from one critical
	// section: endStream moves a session from live to folded under the
	// same lock, so a stream can never fall between the two reads (the
	// aggregate counters stay monotonic across polls).
	s.mu.Lock()
	st.Submitted = s.submitted.Load()
	st.Completed = s.completed.Load()
	st.Cancelled = s.cancelled.Load()
	st.Failed = s.failed.Load()
	st.Expired = s.expired.Load()
	st.Missed = s.missed.Load()
	st.Delivered = s.delivered.Load()
	st.Dropped = s.dropped.Load()
	st.StreamsActive = len(s.live)
	for sess := range s.live {
		ss := sess.Stats()
		st.Submitted += ss.Submitted
		st.Completed += ss.Completed
		st.Cancelled += ss.Cancelled
		st.Failed += ss.Failed
		st.Expired += ss.Expired
		st.Missed += ss.Missed
		st.Delivered += ss.Delivered
		st.Dropped += ss.Dropped
		st.InFlight += ss.InFlight
		st.QueueDepth += ss.QueueDepth
	}
	s.mu.Unlock()
	return st
}

// addStream registers a live session; it reports false when the server
// is draining and the stream must be refused.
func (s *Server) addStream(sess *engine.Session) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining.Load() {
		return false
	}
	s.live[sess] = struct{}{}
	s.streamsTotal.Inc()
	return true
}

// endStream unregisters a finished session and folds its final stats
// into the server totals (atomically with the removal, so Stats never
// double- or under-counts it).
func (s *Server) endStream(sess *engine.Session) {
	ss := sess.Stats()
	s.mu.Lock()
	delete(s.live, sess)
	s.submitted.Add(ss.Submitted)
	s.completed.Add(ss.Completed)
	s.cancelled.Add(ss.Cancelled)
	s.failed.Add(ss.Failed)
	s.expired.Add(ss.Expired)
	s.missed.Add(ss.Missed)
	s.delivered.Add(ss.Delivered)
	s.dropped.Add(ss.Dropped)
	if s.draining.Load() && len(s.live) == 0 && s.liveAux == 0 {
		s.signalDrained()
	}
	s.mu.Unlock()
}

// addAux registers a live sessionless stream (/v1/mutate or
// /v1/subscribe) with the drain accounting; it reports false when the
// server is draining and the stream must be refused.
func (s *Server) addAux() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining.Load() {
		return false
	}
	s.liveAux++
	return true
}

// endAux unregisters a finished sessionless stream.
func (s *Server) endAux() {
	s.mu.Lock()
	s.liveAux--
	if s.draining.Load() && len(s.live) == 0 && s.liveAux == 0 {
		s.signalDrained()
	}
	s.mu.Unlock()
}

// meta is what the query handler remembers per in-flight request: the
// wire id to echo, the compiled kind, the pattern (for rendering a PQ
// match) and the count-mode accumulator. Keyed by session id and
// deleted on delivery, so a long-lived stream holds at most
// MaxInFlight entries — the handler is its session's only submitter,
// which makes the next session id predictable and lets the meta be
// registered before Submit.
type meta struct {
	clientID uint64
	kind     string
	pq       *pattern.Query
	count    *int64
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST NDJSON request lines to /v1/query", http.StatusMethodNotAllowed)
		return
	}
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	// The handler reads request lines while writing response lines; on
	// HTTP/1.x the server otherwise consumes the whole body before the
	// first write, which would defeat streaming and flow control.
	rc := http.NewResponseController(w)
	rc.EnableFullDuplex()

	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	// A forced server drain must reach this stream's session.
	stopAfter := context.AfterFunc(s.base, cancel)
	defer stopAfter()
	if d := s.streamDeadline(r); d > 0 {
		var cancelT context.CancelFunc
		ctx, cancelT = context.WithTimeout(ctx, d)
		defer cancelT()
	}
	// Context death (deadline, disconnect, forced drain) must also
	// unblock goroutines parked in connection I/O: a reader waiting on a
	// silent client's body, or the consumer writing to a stalled one —
	// neither read nor write is interrupted by mere cancellation. Reads
	// stop immediately; writes get a grace period so the final
	// (cancellation-tagged) response lines still reach a live client.
	var writeFailed atomic.Bool
	unblocked := make(chan struct{})
	stopUnblock := context.AfterFunc(ctx, func() {
		defer close(unblocked)
		now := time.Now()
		rc.SetReadDeadline(now)
		rc.SetWriteDeadline(now.Add(time.Second))
	})
	defer func() {
		if !stopUnblock() {
			<-unblocked // never leave the deadline callback racing the handler's return
			if !writeFailed.Load() {
				// Every write went through: lift the write deadline so the
				// response can terminate cleanly (the client then sees EOF,
				// not a truncated stream). After a failed write the client is
				// stalled or gone — keep the deadline so the server's
				// post-handler flush fails fast instead of pinning the conn.
				rc.SetWriteDeadline(time.Time{})
			}
		}
	}()

	sess := s.e.Open(ctx, engine.SessionOptions{
		MaxInFlight:      s.opts.MaxInFlight,
		ResultBuffer:     s.opts.ResultBuffer,
		AdaptiveInFlight: s.opts.AdaptiveInFlight,
	})
	if !s.addStream(sess) {
		// Draining won the race with the fast-path check above; the header
		// is not committed yet, so the refusal is a real 503, not a 200
		// with an error line a status-checking client would miss.
		sess.Close()
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	defer s.endStream(sess)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	// Push the headers out now: a streaming client needs them to start
	// reading responses, possibly long before the first result exists.
	rc.Flush()
	enc := wire.NewEncoder(w)
	// send writes one response line; a failed write means the client is
	// stalled or gone, which aborts the stream's session.
	send := func(resp wire.Response) {
		if err := enc.Encode(resp); err != nil {
			writeFailed.Store(true)
			cancel()
		}
	}

	// Reader: decode request lines and submit them. Per-line errors are
	// answered inline (the encoder is concurrency-safe) and the stream
	// continues; Submit blocking on the admission bound is what stalls
	// this loop — and therefore the client's upload — when the consumer
	// is slow: back-pressure on the wire.
	var mu sync.Mutex
	metas := map[uint64]meta{}
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		defer sess.Close()
		dec := wire.NewDecoder(r.Body)
		// This goroutine is the session's only submitter, so session ids
		// are its 0-based submission count — predictable, which lets the
		// meta be registered before Submit can race a completing worker.
		nextID := uint64(0)
		for {
			req, err := dec.Next()
			if err == io.EOF {
				return
			}
			var le *wire.LineError
			if errors.As(err, &le) {
				s.parseErrors.Inc()
				send(wire.Response{ID: derefID(req.ID), Err: le.Error()})
				continue
			}
			if err != nil {
				// Unreadable stream: a line decoder cannot resynchronize, so
				// this ends the stream. Only a genuine protocol failure
				// (oversized line on a live stream) counts as a parse error —
				// reads broken by the stream's own deadline, a disconnect or
				// a drain are already accounted as cancellations.
				if ctx.Err() == nil {
					s.parseErrors.Inc()
					// kind "stream" marks a failure of the stream itself, not of
					// the request whose (defaulted) id the line would carry.
					send(wire.Response{Kind: "stream", Err: "request stream aborted: " + err.Error()})
					// Drain the abandoned body to EOF (deadline-bounded):
					// a full-duplex handler that returns mid-body trips a
					// connection-reader panic in net/http on reuse.
					rc.SetReadDeadline(time.Now().Add(2 * time.Second))
					io.Copy(io.Discard, r.Body)
				}
				return
			}
			ereq, kind, cerr := req.Compile()
			if cerr != nil {
				s.parseErrors.Inc()
				send(wire.Response{ID: derefID(req.ID), Kind: kind, Err: cerr.Error()})
				continue
			}
			m := meta{clientID: derefID(req.ID), kind: kind, pq: ereq.PQ}
			if req.Count && ereq.RQ != nil {
				// The worker writes the counter during evaluation, the
				// consumer reads it after receiving the Result — ordered by
				// the results-channel hand-off.
				m.count = new(int64)
				cnt := m.count
				ereq.Emit = func(reach.Pair) bool { *cnt++; return true }
			}
			mu.Lock()
			metas[nextID] = m
			mu.Unlock()
			if _, err := sess.Submit(ctx, ereq); err != nil {
				mu.Lock()
				delete(metas, nextID)
				mu.Unlock()
				// The request was read but never admitted: answer it like any
				// other overdue request, so its id does not silently vanish
				// from the response stream.
				send(wire.Response{ID: m.clientID, Kind: m.kind, Err: err.Error()})
				return // session cancelled or closed: terminal either way
			}
			nextID++
		}
	}()

	// Consumer: stream results out in completion order. An encode error
	// means the client is gone — cancel the session and keep draining so
	// its workers can finish.
	for res := range sess.Results() {
		mu.Lock()
		m := metas[res.ID]
		delete(metas, res.ID) // bounded by in-flight requests, not stream lifetime
		mu.Unlock()
		streamed := 0
		if m.count != nil {
			streamed = int(*m.count)
		}
		resp := wire.FromResult(res, m.kind, m.pq, streamed)
		resp.ID = m.clientID
		if res.Err == nil {
			s.latency.Observe(res.Elapsed)
		}
		send(resp)
	}
	<-readerDone
}

// streamDeadline resolves the effective deadline for one query stream:
// the client's ?timeout_ms, capped by (and defaulting to) the server's
// StreamTimeout. Zero means no deadline.
func (s *Server) streamDeadline(r *http.Request) time.Duration {
	d := s.opts.StreamTimeout
	if v := r.URL.Query().Get("timeout_ms"); v != "" {
		// Clamp before multiplying: a huge ms would overflow the Duration
		// to a negative value and silently disable the server's cap.
		const maxMS = int64(24 * time.Hour / time.Millisecond)
		if ms, err := strconv.ParseInt(v, 10, 64); err == nil && ms > 0 {
			if ms > maxMS {
				ms = maxMS
			}
			if req := time.Duration(ms) * time.Millisecond; d == 0 || req < d {
				d = req
			}
		}
	}
	return d
}

func derefID(id *uint64) uint64 {
	if id == nil {
		return 0
	}
	return *id
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET /v1/stats", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, s.Stats())
}

// handleHealth is liveness: the process is up and serving HTTP. It
// stays 200 through a drain — readiness is /readyz's job, and a
// liveness-probing supervisor must not kill a server that is busy
// flushing its last streams.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	fmt.Fprintln(w, "ok")
}

// handleReady is readiness: whether new query streams are admitted.
// It flips to 503 the moment drain begins — before /v1/query starts
// refusing — so a health-probing router routes away first. The
// Retry-After hint is nominal; a drain is terminal for this process,
// but the header marks the 503 as a polite back-off, not an error.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

// writeJSON writes v as indented JSON with a trailing newline.
func writeJSON(w http.ResponseWriter, v any) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
