package server_test

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"regraph/internal/engine"
	"regraph/internal/server"
	"regraph/internal/wire"
)

// Stress and lifecycle tests: run them under -race. They mirror PR 4's
// session cancel tests at the HTTP layer — concurrent clients on one
// engine, mid-stream client disconnects and server shutdown, all
// checked for goroutine leaks and well-formed partial output.

// leakCheck records the goroutine count and returns a function that
// fails the test if the count has not returned to the baseline once the
// test's servers and clients are torn down.
func leakCheck(t *testing.T) func() {
	t.Helper()
	baseline := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			n := runtime.NumGoroutine()
			if n <= baseline {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				t.Fatalf("goroutine leak: %d now, %d at start\n%s", n, baseline,
					buf[:runtime.Stack(buf, true)])
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// tolerantDecode reads response lines until the stream errors or ends:
// partial output after a cancellation must consist of complete,
// well-formed lines, but the stream itself may end abruptly.
func tolerantDecode(t *testing.T, r io.Reader) []wire.Response {
	t.Helper()
	var out []wire.Response
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), wire.MaxResponseLineBytes)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var resp wire.Response
		if err := json.Unmarshal([]byte(line), &resp); err != nil {
			t.Fatalf("partial output contains a malformed line %q: %v", line, err)
		}
		out = append(out, resp)
	}
	return out // a read error just ends the partial stream
}

// TestServerConcurrentClients: several clients stream distinct mixed
// batches into one engine at once; every client must get exactly its
// own answers, identical to a local RunBatch of its batch.
func TestServerConcurrentClients(t *testing.T) {
	defer leakCheck(t)()
	g := testGraph(17)
	e := engine.MustNew(g, engine.Options{Workers: 4})
	srv := server.New(e, server.Options{MaxInFlight: 4})
	ts := httptest.NewServer(srv.Handler())

	const clients = 6
	batches := make([][]wire.Request, clients)
	wants := make([]map[uint64]wire.Response, clients)
	for c := range batches {
		batches[c] = wireBatch(t, g, 24, int64(100+c))
		wants[c] = wantResponses(t, e, batches[c])
	}

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			got := postNDJSON(t, ts.URL, batches[c])
			if len(got) != len(batches[c]) {
				t.Errorf("client %d: %d responses, want %d", c, len(got), len(batches[c]))
				return
			}
			for _, resp := range got {
				resp.LatencyUS = 0
				if w := wants[c][resp.ID]; !reflect.DeepEqual(resp, w) {
					t.Errorf("client %d id %d: wire result differs from RunBatch:\n got %+v\nwant %+v",
						c, resp.ID, resp, w)
				}
			}
		}(c)
	}
	wg.Wait()

	st := srv.Stats()
	total := uint64(clients * 24)
	if st.Submitted != total || st.Completed != total || st.Delivered != total {
		t.Errorf("server stats after %d clients: %+v", clients, st)
	}
	if st.StreamsTotal != clients || st.StreamsActive != 0 {
		t.Errorf("stream accounting: %+v", st)
	}
	ts.Close()
	srv.Close()
}

// TestServerClientDisconnectMidStream: a client walks away (context
// cancel) with requests still in flight. The server must drain the
// stream's session, keep every line it did deliver well-formed, keep
// the session counter invariants, and leak nothing.
func TestServerClientDisconnectMidStream(t *testing.T) {
	defer leakCheck(t)()
	g := testGraph(23)
	e := engine.MustNew(g, engine.Options{Workers: 4})
	srv := server.New(e, server.Options{MaxInFlight: 4})
	ts := httptest.NewServer(srv.Handler())

	ctx, cancel := context.WithCancel(context.Background())
	pr, pw := io.Pipe()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/query", pr)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}

	// Feed requests forever (until the pipe breaks on disconnect).
	go func() {
		enc := json.NewEncoder(pw)
		for i := uint64(0); ; i++ {
			id := i
			if enc.Encode(&wire.Request{ID: &id, RQ: &wire.RQSpec{Expr: "fa{2} fn"}}) != nil {
				return
			}
		}
	}()

	// Read a few results, then vanish mid-stream.
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), wire.MaxResponseLineBytes)
	reads := 0
	for sc.Scan() && reads < 5 {
		var r wire.Response
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("line %d malformed: %v", reads, err)
		}
		reads++
	}
	cancel()
	resp.Body.Close()
	pw.Close()

	// The stream must unwind completely on its own.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().StreamsActive > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("stream still live after disconnect: %+v", srv.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := srv.Stats()
	if st.Submitted == 0 {
		t.Fatal("test never submitted anything")
	}
	if st.Completed+st.Cancelled+st.Failed != st.Submitted {
		t.Errorf("completed %d + cancelled %d + failed %d != submitted %d",
			st.Completed, st.Cancelled, st.Failed, st.Submitted)
	}
	if st.Delivered+st.Dropped != st.Submitted {
		t.Errorf("delivered %d + dropped %d != submitted %d", st.Delivered, st.Dropped, st.Submitted)
	}
	ts.Close()
	srv.Close()
}

// TestServerShutdownGraceful: Drain lets a live stream finish on its
// own terms — its late requests are still served — while refusing new
// work, and Shutdown returns nil with nothing leaked.
func TestServerShutdownGraceful(t *testing.T) {
	defer leakCheck(t)()
	g := testGraph(29)
	e := engine.MustNew(g, engine.Options{Workers: 2})
	srv := server.New(e, server.Options{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()
	url := "http://" + l.Addr().String()

	// A live stream: two requests in, responses read, body held open.
	pr, pw := io.Pipe()
	respc := make(chan *http.Response, 1)
	go func() {
		resp, err := http.Post(url+"/v1/query", "application/x-ndjson", pr)
		if err != nil {
			t.Error(err)
			respc <- nil
			return
		}
		respc <- resp
	}()
	send := func(id uint64) {
		line, _ := json.Marshal(&wire.Request{ID: &id, RQ: &wire.RQSpec{Expr: "fn"}})
		if _, err := pw.Write(append(line, '\n')); err != nil {
			t.Error(err)
		}
	}
	send(0)
	resp := <-respc
	if resp == nil {
		t.FailNow()
	}
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatalf("no response to request 0: %v", sc.Err())
	}

	shutDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutDone <- srv.Shutdown(ctx)
	}()
	// Draining must become observable while our stream lives on.
	waitDraining(t, url)
	if resp2, err := http.Post(url+"/v1/query", "application/x-ndjson", strings.NewReader(`{"rq":{"expr":"fn"}}`)); err == nil {
		if resp2.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("new stream during drain: %s", resp2.Status)
		}
		resp2.Body.Close()
	}

	// The live stream still works mid-drain, then ends cleanly.
	send(1)
	if !sc.Scan() {
		t.Fatalf("no response to mid-drain request: %v", sc.Err())
	}
	var r wire.Response
	if err := json.Unmarshal(sc.Bytes(), &r); err != nil || r.ID != 1 || r.Err != "" {
		t.Fatalf("mid-drain response %q: %v", sc.Bytes(), err)
	}
	pw.Close()
	for sc.Scan() {
	}
	if err := sc.Err(); err != nil {
		t.Errorf("stream did not end cleanly: %v", err)
	}
	resp.Body.Close()

	if err := <-shutDone; err != nil {
		t.Errorf("graceful shutdown returned %v", err)
	}
	if err := <-serveDone; err != http.ErrServerClosed {
		t.Errorf("Serve returned %v", err)
	}
	st := srv.Stats()
	if st.Submitted != 2 || st.Completed != 2 || st.StreamsActive != 0 {
		t.Errorf("stats after graceful shutdown: %+v", st)
	}
}

// TestServerShutdownForced: a stream that never ends is force-cancelled
// when the drain budget expires; partial output stays well-formed, the
// session is accounted for, and nothing leaks.
func TestServerShutdownForced(t *testing.T) {
	defer leakCheck(t)()
	g := testGraph(31)
	e := engine.MustNew(g, engine.Options{Workers: 2})
	srv := server.New(e, server.Options{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()
	url := "http://" + l.Addr().String()

	pr, pw := io.Pipe()
	respc := make(chan *http.Response, 1)
	go func() {
		resp, err := http.Post(url+"/v1/query", "application/x-ndjson", pr)
		if err != nil {
			t.Error(err)
			respc <- nil
			return
		}
		respc <- resp
	}()
	id := uint64(0)
	line, _ := json.Marshal(&wire.Request{ID: &id, RQ: &wire.RQSpec{Expr: "fn"}})
	if _, err := pw.Write(append(line, '\n')); err != nil {
		t.Fatal(err)
	}
	resp := <-respc
	if resp == nil {
		t.FailNow()
	}

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Errorf("forced shutdown returned %v, want DeadlineExceeded", err)
	}
	// The held-open stream was force-ended server-side; whatever arrived
	// must be whole lines, including the answer to the one request.
	got := tolerantDecode(t, resp.Body)
	foundAnswer := false
	for _, r := range got {
		if r.ID == 0 && r.Err == "" {
			foundAnswer = true
		}
	}
	if !foundAnswer {
		t.Errorf("submitted request unanswered in partial output: %+v", got)
	}
	resp.Body.Close()
	pw.Close()
	if err := <-serveDone; err != http.ErrServerClosed {
		t.Errorf("Serve returned %v", err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().StreamsActive > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("stream still live after forced shutdown: %+v", srv.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// waitDraining polls /readyz until it reports 503 (liveness /healthz
// deliberately stays 200 through a drain).
func waitDraining(t *testing.T, url string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(url + "/readyz")
		if err == nil {
			code := resp.StatusCode
			resp.Body.Close()
			if code == http.StatusServiceUnavailable {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("server never reported draining")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
