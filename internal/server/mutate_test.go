package server_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"regraph/internal/dist"
	"regraph/internal/engine"
	"regraph/internal/graph"
	"regraph/internal/mutate"
	"regraph/internal/server"
	"regraph/internal/wire"
)

// mutateGraph is the tiny deterministic graph the write-path tests
// mutate: a(t=1) --x--> b(t=2).
func mutateGraph() *graph.Graph {
	g := graph.New()
	a := g.AddNode("a", map[string]string{"t": "1"})
	b := g.AddNode("b", map[string]string{"t": "2"})
	g.AddEdge(a, b, "x")
	return g
}

// postMutations streams an NDJSON mutation body to /v1/mutate and
// returns the ack lines and the trailing summary.
func postMutations(t *testing.T, url, body string) ([]mutate.Ack, mutate.Summary) {
	t.Helper()
	resp, err := http.Post(url+"/v1/mutate", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/mutate: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	var acks []mutate.Ack
	var sum mutate.Summary
	sawSummary := false
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if sawSummary {
			t.Fatalf("line after the summary: %q", line)
		}
		if strings.Contains(line, `"kind":"summary"`) {
			if err := json.Unmarshal([]byte(line), &sum); err != nil {
				t.Fatalf("summary line %q: %v", line, err)
			}
			sawSummary = true
			continue
		}
		var a mutate.Ack
		if err := json.Unmarshal([]byte(line), &a); err != nil {
			t.Fatalf("ack line %q: %v", line, err)
		}
		acks = append(acks, a)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawSummary {
		t.Fatal("mutation stream ended without a summary line")
	}
	return acks, sum
}

// TestServerMutate: a mixed JSON/text mutation stream with failing and
// malformed lines is chunked into generations, acked per op, and the
// committed data is visible to queries — while the stats reflect it.
func TestServerMutate(t *testing.T) {
	e := engine.MustNew(mutateGraph(), engine.Options{Workers: 2})
	srv := server.New(e, server.Options{MutateBatch: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	body := strings.Join([]string{
		"# grow the graph",
		"add_node c t=2",
		`{"op":"add_edge","from":"a","to":"c","color":"x"}`,
		`{"op":"set_attr","node":"zz","attrs":{"t":"3"}}`, // unknown node: error ack
		"frobnicate q", // malformed: error ack, stream continues
		"remove_edge a b x",
	}, "\n")
	acks, sum := postMutations(t, ts.URL, body)

	// MutateBatch 2: ops 0-1 commit as generation 1; the malformed line
	// is acked outside any chunk; ops 2 and 4 commit as generation 2
	// (op 2 fails inside it). Ordinals count ops, incl. the bad line.
	if len(acks) != 5 {
		t.Fatalf("got %d acks, want 5: %+v", len(acks), acks)
	}
	byID := map[uint64]mutate.Ack{}
	for _, a := range acks {
		byID[a.ID] = a
	}
	for id, wantGen := range map[uint64]uint64{0: 1, 1: 1, 4: 2} {
		if a := byID[id]; a.Gen != wantGen || a.Err != "" {
			t.Errorf("ack %d: %+v, want gen %d", id, a, wantGen)
		}
	}
	if a := byID[2]; !strings.Contains(a.Err, `unknown node "zz"`) {
		t.Errorf("ack 2: %+v, want unknown-node error", a)
	}
	if a := byID[3]; !strings.Contains(a.Err, "line 5") {
		t.Errorf("ack 3: %+v, want a line-5 parse error", a)
	}
	want := mutate.Summary{Kind: mutate.SummaryKind, Gen: 2, Applied: 3, Failed: 2, Nodes: 3, Edges: 1}
	if sum != want {
		t.Errorf("summary %+v, want %+v", sum, want)
	}

	// The committed generations answer queries: a->b is gone, a->c is
	// there (nodes a=0, c=2).
	got := postNDJSON(t, ts.URL, []wire.Request{{RQ: &wire.RQSpec{From: "*", To: "*", Expr: "x"}}})
	if len(got) != 1 || got[0].Err != "" {
		t.Fatalf("query after mutation: %+v", got)
	}
	if wantPairs := [][2]int64{{0, 2}}; !reflect.DeepEqual(got[0].Pairs, wantPairs) {
		t.Errorf("pairs after mutation = %v, want %v", got[0].Pairs, wantPairs)
	}

	st := srv.Stats()
	if st.Generation != 2 || st.MutateStreams != 1 || st.OpsApplied != 3 || st.OpsFailed != 2 {
		t.Errorf("write-path stats: %+v", st)
	}
	if st.ParseErrors != 1 {
		t.Errorf("parse errors = %d, want 1", st.ParseErrors)
	}
}

// TestServerMutateOversizedLine pins the oversized-line contract byte
// for byte: a line past mutate.MaxLineBytes is unrecoverable (a line
// decoder cannot resynchronize) and ends the stream, but every op
// decoded before it still commits, still acks, and the trailing
// summary line still arrives with the exact applied/failed counts and
// the sticky stream error. Mirrors the read path's oversized-line
// handling — the stream dies loudly, never silently.
func TestServerMutateOversizedLine(t *testing.T) {
	e := engine.MustNew(mutateGraph(), engine.Options{Workers: 2})
	srv := server.New(e, server.Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	body := "add_node c t=2\n" +
		"add_edge a c x\n" +
		strings.Repeat("x", mutate.MaxLineBytes+1) + "\n" +
		"add_node never-reached\n" // after the poison line: must not apply
	resp, err := http.Post(ts.URL+"/v1/mutate", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join("testdata", "mutate_oversized.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("oversized-line response drifted.\n got:\n%s\nwant:\n%s", got, want)
	}
	// The committed prefix is durable engine state; the poison line and
	// everything after it never applied.
	if g := e.Graph(); g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Errorf("graph after aborted stream: %d nodes %d edges, want 3/2", g.NumNodes(), g.NumEdges())
	}
}

// TestServerMutateReadOnly: an engine built around an external backend
// cannot rebuild it per generation; the endpoint refuses with 409
// before any line is processed.
func TestServerMutateReadOnly(t *testing.T) {
	g := mutateGraph()
	e := engine.MustNew(g, engine.Options{Workers: 2, Matrix: dist.NewMatrix(g)})
	srv := server.New(e, server.Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	resp, err := http.Post(ts.URL+"/v1/mutate", "application/x-ndjson", strings.NewReader("add_node c\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("status %s, want 409", resp.Status)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "read-only") {
		t.Errorf("body %q does not name the read-only refusal", body)
	}
}

// TestServerSnapshotIsolationOverWire: a query stream opened before a
// mutation keeps answering from its pinned generation; a stream opened
// after it sees the new one.
func TestServerSnapshotIsolationOverWire(t *testing.T) {
	e := engine.MustNew(mutateGraph(), engine.Options{Workers: 2})
	srv := server.New(e, server.Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/query", pr)
	if err != nil {
		t.Fatal(err)
	}
	respc := make(chan *http.Response, 1)
	errc := make(chan error, 1)
	go func() {
		resp, err := ts.Client().Do(req)
		if err != nil {
			errc <- err
			return
		}
		respc <- resp
	}()
	ask := func() { // one count-only x-edge query on the pinned stream
		t.Helper()
		if _, err := io.WriteString(pw, `{"rq":{"expr":"x"},"count":true}`+"\n"); err != nil {
			t.Fatal(err)
		}
	}
	ask()
	var resp *http.Response
	select {
	case resp = <-respc:
	case err := <-errc:
		t.Fatal(err)
	case <-time.After(5 * time.Second):
		t.Fatal("no response headers within 5s")
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	readResp := func() wire.Response {
		t.Helper()
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		var r wire.Response
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("response line %q: %v", line, err)
		}
		return r
	}
	if r := readResp(); r.Count != 1 || r.Err != "" {
		t.Fatalf("pre-mutation count = %+v, want 1", r)
	}

	// Commit a generation that changes the answer.
	if _, sum := postMutations(t, ts.URL, "add_node c t=2\nadd_edge a c x\n"); sum.Gen != 1 {
		t.Fatalf("mutation summary: %+v", sum)
	}

	// The pinned stream still answers from generation 0...
	ask()
	if r := readResp(); r.Count != 1 || r.Err != "" {
		t.Fatalf("pinned stream count after mutation = %+v, want 1 (snapshot isolation)", r)
	}
	// ...while a fresh stream sees generation 1.
	got := postNDJSON(t, ts.URL, []wire.Request{{RQ: &wire.RQSpec{Expr: "x"}, Count: true}})
	if len(got) != 1 || got[0].Count != 2 {
		t.Fatalf("fresh stream count = %+v, want 2", got)
	}
	pw.Close()
	waitNoStreams(t, srv)
}

// subscribeStream opens a /v1/subscribe stream for the pattern and
// returns a reader of its delta lines plus the pipe keeping it open.
func subscribeStream(t *testing.T, url, pq string) (readDelta func() wire.Delta, closeBody func()) {
	t.Helper()
	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/subscribe", pr)
	if err != nil {
		t.Fatal(err)
	}
	respc := make(chan *http.Response, 1)
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			errc <- err
			return
		}
		respc <- resp
	}()
	line, err := json.Marshal(wire.Request{PQ: pq})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pw.Write(append(line, '\n')); err != nil {
		t.Fatal(err)
	}
	var resp *http.Response
	select {
	case resp = <-respc:
	case err := <-errc:
		t.Fatal(err)
	case <-time.After(5 * time.Second):
		t.Fatal("no subscribe headers within 5s")
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/subscribe: %s", resp.Status)
	}
	br := bufio.NewReader(resp.Body)
	readDelta = func() wire.Delta {
		t.Helper()
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("delta stream: %v (read %q)", err, line)
		}
		var d wire.Delta
		if err := json.Unmarshal([]byte(line), &d); err != nil {
			t.Fatalf("delta line %q: %v", line, err)
		}
		return d
	}
	closeBody = func() { pw.Close(); resp.Body.Close() }
	return readDelta, closeBody
}

// TestServerSubscribe: a standing pattern query streams an init
// snapshot, then one delta per committed batch that changes its
// answer, and ends with a "draining" line when the server drains.
func TestServerSubscribe(t *testing.T) {
	e := engine.MustNew(mutateGraph(), engine.Options{Workers: 2})
	srv := server.New(e, server.Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	// A(t=1) --x within 2--> B(t=2): initially a->b.
	readDelta, closeBody := subscribeStream(t, ts.URL, "node A\tt = 1\nnode B\tt = 2\nedge A B\tx{2}")
	defer closeBody()

	init := readDelta()
	wantInit := wire.Delta{Gen: 0, Kind: wire.DeltaInit, Count: 1, Match: []wire.MatchEdge{
		{From: "A", To: "B", Expr: "x{2}", Pairs: [][2]int64{{0, 1}}},
	}}
	if !reflect.DeepEqual(init, wantInit) {
		t.Fatalf("init line %+v, want %+v", init, wantInit)
	}
	if st := srv.Stats(); st.Subscriptions != 1 {
		t.Fatalf("subscriptions = %d, want 1", st.Subscriptions)
	}

	// Generation 1 adds c(t=2) and a->c: the answer gains a pair.
	postMutations(t, ts.URL, "add_node c t=2\nadd_edge a c x\n")
	d1 := readDelta()
	want1 := wire.Delta{Gen: 1, Kind: wire.DeltaDelta, Count: 2, Added: []wire.MatchEdge{
		{From: "A", To: "B", Expr: "x{2}", Pairs: [][2]int64{{0, 2}}},
	}}
	if !reflect.DeepEqual(d1, want1) {
		t.Fatalf("delta 1 %+v, want %+v", d1, want1)
	}

	// Generation 2 removes a->b: the answer loses the original pair.
	postMutations(t, ts.URL, "remove_edge a b x\n")
	d2 := readDelta()
	want2 := wire.Delta{Gen: 2, Kind: wire.DeltaDelta, Count: 1, Removed: []wire.MatchEdge{
		{From: "A", To: "B", Expr: "x{2}", Pairs: [][2]int64{{0, 1}}},
	}}
	if !reflect.DeepEqual(d2, want2) {
		t.Fatalf("delta 2 %+v, want %+v", d2, want2)
	}

	// A graceful drain releases the standing stream: the subscriber gets
	// its end line and Drain returns nil well before its deadline.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain with a live subscription: %v", err)
	}
	end := readDelta()
	if end.Kind != wire.DeltaEnd || end.Err != "draining" || end.Gen != 2 {
		t.Fatalf("end line %+v, want kind end / error draining / gen 2", end)
	}
	if st := srv.Stats(); st.Subscriptions != 0 {
		t.Errorf("subscriptions after drain = %d, want 0", st.Subscriptions)
	}
}

// TestServerSubscribeRejects: non-pattern and malformed subscribe
// requests are refused with 400 before the stream starts.
func TestServerSubscribeRejects(t *testing.T) {
	e := engine.MustNew(mutateGraph(), engine.Options{Workers: 2})
	srv := server.New(e, server.Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	for name, body := range map[string]string{
		"rq":        `{"rq":{"expr":"x"}}`,
		"malformed": `{broken`,
		"bad pq":    `{"pq":"edge A B\tx"}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/subscribe", "application/x-ndjson", strings.NewReader(body+"\n"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %s, want 400", name, resp.Status)
		}
	}
}
