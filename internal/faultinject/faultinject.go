// Package faultinject wraps net.Listener/net.Conn with deterministic,
// scripted fault injection: connection refusal, RST aborts mid-line,
// read/write stalls that run into the peer's deadlines, added latency,
// and partial writes. It exists so the failure modes the replica router
// (internal/router) must survive can be *produced on demand in CI*
// rather than hoped about: the chaos e2e suite wraps real rgserve
// listeners in a Listener and drives kill/stall/recover schedules
// against a live router.
//
// Faults come from two places:
//
//   - a Script: per-connection Rules selected by the connection's
//     0-based accept order (deterministic given a deterministic client),
//     plus a Default applied to unlisted connections;
//   - runtime controls on the Listener — SetRefuse (new connections are
//     RST-closed at accept) and AbortAll (every live connection is
//     RST-closed at once, the "replica process died" event) — which let
//     a test kill and revive a backend mid-stream without touching the
//     serving goroutines.
//
// Stalls and latency honor the deadlines set on the wrapped conn
// (SetReadDeadline/SetWriteDeadline): a stalled operation returns
// os.ErrDeadlineExceeded when the deadline passes, exactly like a
// kernel socket would, so deadline-based unstick paths (internal/server)
// and stall detectors (internal/router) see the real timeout behavior.
// Closing the conn (or AbortAll) unblocks stalled operations with
// net.ErrClosed.
package faultinject

import (
	"net"
	"os"
	"sync"
	"time"
)

// Rules is the fault profile of one connection. The zero value injects
// nothing: the conn behaves exactly like the wrapped one.
type Rules struct {
	// ReadLatency is added before every Read; WriteLatency before every
	// Write. The sleep honors the conn's deadline.
	ReadLatency  time.Duration
	WriteLatency time.Duration

	// MaxWriteChunk, when positive, splits every Write into chunks of at
	// most this many bytes, each pushed separately to the wrapped conn —
	// a deterministic source of partial writes / tiny TCP segments.
	MaxWriteChunk int

	// StallReadAfter, when positive, blocks every Read after the
	// connection has delivered that many bytes, until the read deadline
	// passes or the conn is closed. (A reader that goes silent.)
	StallReadAfter int64

	// StallWriteAfter, when positive, blocks every Write after the
	// connection has accepted that many bytes — the peer has stopped
	// draining and the window is closed.
	StallWriteAfter int64

	// AbortWriteAfter, when positive, RST-closes the connection once it
	// has written that many bytes: the next Write at or past the limit
	// fails and the peer sees a reset mid-line.
	AbortWriteAfter int64
}

// Script selects Rules per accepted connection.
type Script struct {
	// Default applies to connections not listed in PerConn.
	Default Rules
	// PerConn maps a connection's 0-based accept order to its Rules.
	PerConn map[int]Rules
	// Refuse lists accept ordinals that are RST-closed immediately: the
	// client's connect succeeds and then dies on first use, the observable
	// shape of a crashed process whose port is still in TIME_WAIT races.
	Refuse map[int]bool
}

// rules returns the profile for accept ordinal i.
func (s *Script) rules(i int) Rules {
	if s == nil {
		return Rules{}
	}
	if r, ok := s.PerConn[i]; ok {
		return r
	}
	return s.Default
}

// Listener wraps an inner listener, applying a Script to each accepted
// connection. All methods are safe for concurrent use.
type Listener struct {
	inner  net.Listener
	script *Script

	mu     sync.Mutex
	seq    int
	refuse bool
	conns  map[*Conn]struct{}
}

// Wrap wraps l. script may be nil (no per-conn faults; the runtime
// controls still work).
func Wrap(l net.Listener, script *Script) *Listener {
	return &Listener{inner: l, script: script, conns: map[*Conn]struct{}{}}
}

// Accept accepts from the wrapped listener, applying the script. Refused
// connections are RST-closed and never returned: the accept loop simply
// moves on to the next connection, as if a dead process's backlog were
// being flushed.
func (l *Listener) Accept() (net.Conn, error) {
	for {
		c, err := l.inner.Accept()
		if err != nil {
			return nil, err
		}
		l.mu.Lock()
		seq := l.seq
		l.seq++
		refused := l.refuse || (l.script != nil && l.script.Refuse[seq])
		var fc *Conn
		if !refused {
			fc = newConn(c, l.script.rules(seq))
			fc.onClose = l.drop
			l.conns[fc] = struct{}{}
		}
		l.mu.Unlock()
		if refused {
			abort(c)
			continue
		}
		return fc, nil
	}
}

// Close closes the wrapped listener. Live connections are left alone
// (use AbortAll to kill them).
func (l *Listener) Close() error { return l.inner.Close() }

// Addr returns the wrapped listener's address.
func (l *Listener) Addr() net.Addr { return l.inner.Addr() }

// SetRefuse toggles refusal of new connections: while on, every accepted
// connection is RST-closed immediately. Combined with AbortAll this is
// the "replica died" event; SetRefuse(false) is the recovery.
func (l *Listener) SetRefuse(v bool) {
	l.mu.Lock()
	l.refuse = v
	l.mu.Unlock()
}

// AbortAll RST-closes every live connection at once — the mid-stream
// kill. New connections are unaffected (pair with SetRefuse to keep the
// backend down).
func (l *Listener) AbortAll() {
	l.mu.Lock()
	conns := make([]*Conn, 0, len(l.conns))
	for c := range l.conns {
		conns = append(conns, c)
	}
	l.mu.Unlock()
	for _, c := range conns {
		c.Abort()
	}
}

// NumConns reports the number of live (accepted, not yet closed)
// connections.
func (l *Listener) NumConns() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.conns)
}

func (l *Listener) drop(c *Conn) {
	l.mu.Lock()
	delete(l.conns, c)
	l.mu.Unlock()
}

// abort RST-closes a raw conn: SO_LINGER 0 makes Close send a reset
// instead of a FIN, so the peer sees ECONNRESET, not a clean EOF.
func abort(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	c.Close()
}

// Conn applies Rules to a wrapped connection. Use NewConn to wrap a
// dialed conn directly (client-side faults); Listener.Accept wraps
// server-side.
type Conn struct {
	inner net.Conn
	rules Rules

	onClose func(*Conn) // set by Listener; may be nil

	mu            sync.Mutex
	readDeadline  time.Time
	writeDeadline time.Time
	bump          chan struct{} // recreated whenever deadlines change or the conn closes
	closed        bool

	read    int64 // bytes delivered to the caller (guarded by mu)
	written int64 // bytes accepted from the caller
}

// NewConn wraps c with the given fault rules.
func NewConn(c net.Conn, rules Rules) *Conn { return newConn(c, rules) }

func newConn(c net.Conn, rules Rules) *Conn {
	return &Conn{inner: c, rules: rules, bump: make(chan struct{})}
}

// wait blocks until `until` passes (nil error), the side's deadline
// passes (os.ErrDeadlineExceeded), or the conn closes (net.ErrClosed).
// A zero `until` means "forever" — a stall that only a deadline or a
// close can end.
func (c *Conn) wait(until time.Time, read bool) error {
	for {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return net.ErrClosed
		}
		deadline := c.writeDeadline
		if read {
			deadline = c.readDeadline
		}
		bump := c.bump
		c.mu.Unlock()

		now := time.Now()
		if !deadline.IsZero() && !deadline.After(now) {
			return os.ErrDeadlineExceeded
		}
		if !until.IsZero() && !until.After(now) {
			return nil
		}
		// Sleep until the nearest of: the wait end, the deadline, or a
		// bump (deadline moved / conn closed).
		wake := until
		if !deadline.IsZero() && (wake.IsZero() || deadline.Before(wake)) {
			wake = deadline
		}
		if wake.IsZero() {
			<-bump // pure stall: only a close or a deadline change ends it
			continue
		}
		t := time.NewTimer(time.Until(wake))
		select {
		case <-bump:
			t.Stop()
		case <-t.C:
		}
	}
}

// stall blocks until the deadline passes or the conn closes.
func (c *Conn) stall(read bool) error { return c.wait(time.Time{}, read) }

func (c *Conn) Read(b []byte) (int, error) {
	if c.rules.ReadLatency > 0 {
		if err := c.wait(time.Now().Add(c.rules.ReadLatency), true); err != nil {
			return 0, err
		}
	}
	c.mu.Lock()
	read := c.read
	c.mu.Unlock()
	if lim := c.rules.StallReadAfter; lim > 0 {
		if read >= lim {
			if err := c.stall(true); err != nil {
				return 0, err
			}
		} else if rem := lim - read; rem < int64(len(b)) {
			// Land exactly on the stall boundary so the schedule is
			// byte-deterministic, not read-size-dependent.
			b = b[:rem]
		}
	}
	n, err := c.inner.Read(b)
	c.mu.Lock()
	c.read += int64(n)
	c.mu.Unlock()
	return n, err
}

func (c *Conn) Write(b []byte) (int, error) {
	if c.rules.WriteLatency > 0 {
		if err := c.wait(time.Now().Add(c.rules.WriteLatency), false); err != nil {
			return 0, err
		}
	}
	total := 0
	for len(b) > 0 {
		c.mu.Lock()
		written := c.written
		c.mu.Unlock()
		if lim := c.rules.AbortWriteAfter; lim > 0 && written >= lim {
			c.Abort()
			return total, net.ErrClosed
		}
		chunk := b
		if c.rules.MaxWriteChunk > 0 && len(chunk) > c.rules.MaxWriteChunk {
			chunk = chunk[:c.rules.MaxWriteChunk]
		}
		if lim := c.rules.StallWriteAfter; lim > 0 {
			if written >= lim {
				if err := c.stall(false); err != nil {
					return total, err
				}
			} else if rem := lim - written; rem < int64(len(chunk)) {
				chunk = chunk[:rem]
			}
		}
		if lim := c.rules.AbortWriteAfter; lim > 0 {
			if rem := lim - written; rem < int64(len(chunk)) {
				chunk = chunk[:rem]
			}
		}
		n, err := c.inner.Write(chunk)
		c.mu.Lock()
		c.written += int64(n)
		c.mu.Unlock()
		total += n
		b = b[n:]
		if err != nil {
			return total, err
		}
		if c.rules.MaxWriteChunk == 0 && c.rules.StallWriteAfter == 0 && c.rules.AbortWriteAfter == 0 {
			break // nothing chunked the write: it went out whole
		}
	}
	return total, nil
}

// Abort RST-closes the connection: the peer sees a reset, and any
// goroutine blocked in a stalled Read/Write on this side unblocks with
// net.ErrClosed.
func (c *Conn) Abort() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	close(c.bump)
	c.bump = make(chan struct{})
	c.mu.Unlock()
	abort(c.inner)
	if c.onClose != nil {
		c.onClose(c)
	}
}

// Close closes the wrapped conn (clean FIN) and unblocks stalled
// operations.
func (c *Conn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	close(c.bump)
	c.bump = make(chan struct{})
	c.mu.Unlock()
	err := c.inner.Close()
	if c.onClose != nil {
		c.onClose(c)
	}
	return err
}

func (c *Conn) LocalAddr() net.Addr  { return c.inner.LocalAddr() }
func (c *Conn) RemoteAddr() net.Addr { return c.inner.RemoteAddr() }

// SetDeadline sets both deadlines (and wakes any stalled operation so
// it re-evaluates — a deadline moved into the past unsticks it, exactly
// like a kernel socket).
func (c *Conn) SetDeadline(t time.Time) error {
	c.setDeadlines(&t, &t)
	return c.inner.SetDeadline(t)
}

func (c *Conn) SetReadDeadline(t time.Time) error {
	c.setDeadlines(&t, nil)
	return c.inner.SetReadDeadline(t)
}

func (c *Conn) SetWriteDeadline(t time.Time) error {
	c.setDeadlines(nil, &t)
	return c.inner.SetWriteDeadline(t)
}

func (c *Conn) setDeadlines(r, w *time.Time) {
	c.mu.Lock()
	if r != nil {
		c.readDeadline = *r
	}
	if w != nil {
		c.writeDeadline = *w
	}
	if !c.closed {
		close(c.bump)
		c.bump = make(chan struct{})
	}
	c.mu.Unlock()
}
