package faultinject

import (
	"bytes"
	"errors"
	"io"
	"net"
	"os"
	"sync"
	"testing"
	"time"
)

// chunkRecorder records the sizes of the writes that reach the inner
// conn, to verify partial-write injection.
type chunkRecorder struct {
	net.Conn
	mu     sync.Mutex
	chunks []int
}

func (c *chunkRecorder) Write(b []byte) (int, error) {
	c.mu.Lock()
	c.chunks = append(c.chunks, len(b))
	c.mu.Unlock()
	return c.Conn.Write(b)
}

// TestConnPassthrough: the zero Rules inject nothing — bytes flow both
// ways unchanged.
func TestConnPassthrough(t *testing.T) {
	a, b := net.Pipe()
	fc := NewConn(a, Rules{})
	defer fc.Close()
	defer b.Close()

	go io.Copy(b, b) // echo
	msg := []byte("hello fault injection")
	if _, err := fc.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(fc, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echo mismatch: %q", got)
	}
}

// TestPartialWrites: MaxWriteChunk splits a large write into bounded
// chunks without losing or reordering bytes.
func TestPartialWrites(t *testing.T) {
	a, b := net.Pipe()
	rec := &chunkRecorder{Conn: a}
	fc := newConn(rec, Rules{MaxWriteChunk: 3})
	defer fc.Close()
	defer b.Close()

	msg := []byte("0123456789")
	var got []byte
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 64)
		for len(got) < len(msg) {
			n, err := b.Read(buf)
			got = append(got, buf[:n]...)
			if err != nil {
				return
			}
		}
	}()
	n, err := fc.Write(msg)
	if err != nil || n != len(msg) {
		t.Fatalf("write: %d, %v", n, err)
	}
	<-done
	if !bytes.Equal(got, msg) {
		t.Fatalf("received %q, want %q", got, msg)
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.chunks) < 4 {
		t.Fatalf("expected >= 4 chunks, saw %v", rec.chunks)
	}
	for _, c := range rec.chunks {
		if c > 3 {
			t.Fatalf("chunk of %d bytes escaped the 3-byte limit: %v", c, rec.chunks)
		}
	}
}

// TestStallReadDeadline: a stalled Read blocks until the read deadline
// passes, then fails with os.ErrDeadlineExceeded — the shape the
// server's unstick path and the router's stall detector rely on.
func TestStallReadDeadline(t *testing.T) {
	a, b := net.Pipe()
	fc := newConn(a, Rules{StallReadAfter: 4})
	defer fc.Close()
	defer b.Close()

	go b.Write([]byte("0123456789"))
	buf := make([]byte, 16)
	n, err := fc.Read(buf)
	if err != nil || n != 4 {
		t.Fatalf("read before stall boundary: %d, %v", n, err)
	}
	fc.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	t0 := time.Now()
	_, err = fc.Read(buf)
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("stalled read returned %v, want deadline exceeded", err)
	}
	if d := time.Since(t0); d < 30*time.Millisecond || d > 2*time.Second {
		t.Fatalf("stall released after %v, want ~50ms", d)
	}
}

// TestStallUnblockedByClose: closing the conn releases a stalled
// operation with net.ErrClosed (no deadline needed).
func TestStallUnblockedByClose(t *testing.T) {
	a, b := net.Pipe()
	fc := newConn(a, Rules{StallWriteAfter: 2})
	defer b.Close()
	go io.Copy(io.Discard, b) // net.Pipe is unbuffered: drain so only the injected stall blocks

	if _, err := fc.Write([]byte("ab")); err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		fc.Close()
	}()
	_, err := fc.Write([]byte("cd"))
	if !errors.Is(err, net.ErrClosed) {
		t.Fatalf("stalled write returned %v, want net.ErrClosed", err)
	}
}

// TestDeadlineMoveUnsticksStall: moving the deadline into the past while
// an operation is stalled releases it immediately — the exact mechanism
// internal/server uses to unstick silent clients.
func TestDeadlineMoveUnsticksStall(t *testing.T) {
	a, b := net.Pipe()
	fc := newConn(a, Rules{StallReadAfter: 1})
	defer fc.Close()
	defer b.Close()

	go b.Write([]byte("xy"))
	buf := make([]byte, 4)
	if _, err := fc.Read(buf); err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		fc.SetReadDeadline(time.Now())
	}()
	t0 := time.Now()
	_, err := fc.Read(buf)
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("got %v, want deadline exceeded", err)
	}
	if d := time.Since(t0); d > 2*time.Second {
		t.Fatalf("unstick took %v", d)
	}
}

// TestAbortWriteAfter: the conn RSTs once the write budget is spent; the
// peer's read ends with an error mid-stream, never with corrupt bytes.
func TestAbortWriteAfter(t *testing.T) {
	a, b := net.Pipe()
	fc := newConn(a, Rules{AbortWriteAfter: 5})
	defer b.Close()

	var got []byte
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 64)
		for {
			n, err := b.Read(buf)
			got = append(got, buf[:n]...)
			if err != nil {
				return
			}
		}
	}()
	msg := []byte("0123456789")
	n, err := fc.Write(msg)
	if !errors.Is(err, net.ErrClosed) {
		t.Fatalf("write past abort budget: n=%d err=%v, want net.ErrClosed", n, err)
	}
	if n != 5 {
		t.Fatalf("wrote %d bytes before the abort, want 5", n)
	}
	<-done
	if !bytes.Equal(got, msg[:5]) {
		t.Fatalf("peer saw %q, want the 5-byte prefix", got)
	}
}

// TestListenerKillAndRecover drives the runtime controls over real TCP:
// a live echo connection is RST-killed by AbortAll, new connections are
// refused while SetRefuse is on, and service resumes after recovery.
func TestListenerKillAndRecover(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	l := Wrap(inner, nil)
	defer l.Close()
	go func() { // echo server
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				io.Copy(c, c)
				c.Close()
			}()
		}
	}()

	dial := func() net.Conn {
		t.Helper()
		c, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	roundtrip := func(c net.Conn) error {
		c.SetDeadline(time.Now().Add(2 * time.Second))
		if _, err := c.Write([]byte("ping")); err != nil {
			return err
		}
		buf := make([]byte, 4)
		_, err := io.ReadFull(c, buf)
		return err
	}

	c1 := dial()
	defer c1.Close()
	if err := roundtrip(c1); err != nil {
		t.Fatalf("healthy roundtrip: %v", err)
	}

	// Kill: the live conn dies mid-stream, new conns die on first use.
	l.SetRefuse(true)
	l.AbortAll()
	if err := roundtrip(c1); err == nil {
		t.Fatal("roundtrip survived AbortAll")
	}
	c2 := dial() // connect succeeds (backlog), then the conn is dead
	defer c2.Close()
	if err := roundtrip(c2); err == nil {
		t.Fatal("roundtrip survived SetRefuse")
	}

	// Recover.
	l.SetRefuse(false)
	c3 := dial()
	defer c3.Close()
	if err := roundtrip(c3); err != nil {
		t.Fatalf("roundtrip after recovery: %v", err)
	}
	if n := l.NumConns(); n != 1 {
		t.Fatalf("live conns after recovery = %d, want 1", n)
	}
}

// TestScriptPerConn: rules are selected by accept order, so a scripted
// schedule is reproducible run to run.
func TestScriptPerConn(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	l := Wrap(inner, &Script{
		Refuse:  map[int]bool{1: true},
		PerConn: map[int]Rules{2: {AbortWriteAfter: 2}},
	})
	defer l.Close()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				io.Copy(c, c)
				c.Close()
			}()
		}
	}()

	try := func() error {
		c, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			return err
		}
		defer c.Close()
		c.SetDeadline(time.Now().Add(2 * time.Second))
		if _, err := c.Write([]byte("ping")); err != nil {
			return err
		}
		buf := make([]byte, 4)
		_, err = io.ReadFull(c, buf)
		return err
	}
	if err := try(); err != nil { // conn 0: clean
		t.Fatalf("conn 0: %v", err)
	}
	if err := try(); err == nil { // conn 1: refused by script
		t.Fatal("conn 1 succeeded, script says refuse")
	}
	if err := try(); err == nil { // conn 2: echo write aborts after 2 bytes
		t.Fatal("conn 2 echoed 4 bytes through an AbortWriteAfter:2 rule")
	}
	if err := try(); err != nil { // conn 3: default (clean) again
		t.Fatalf("conn 3: %v", err)
	}
}

// FuzzConn: arbitrary rule combinations against an echo peer must never
// panic, never corrupt or reorder bytes (the client receives a prefix of
// what it sent), and always terminate under deadlines — stalls included.
func FuzzConn(f *testing.F) {
	f.Add(uint8(0), uint8(0), uint8(0), uint8(0), uint8(0), []byte("hello"))
	f.Add(uint8(2), uint8(2), uint8(3), uint8(0), uint8(0), []byte("partial writes and latency"))
	f.Add(uint8(0), uint8(0), uint8(0), uint8(7), uint8(0), []byte("stall mid-stream"))
	f.Add(uint8(0), uint8(0), uint8(1), uint8(0), uint8(9), []byte("abort mid-line with tiny chunks"))
	f.Add(uint8(1), uint8(0), uint8(2), uint8(5), uint8(3), []byte("everything at once"))
	f.Fuzz(func(t *testing.T, rlat, wlat, chunk, stallW, abortW uint8, payload []byte) {
		if len(payload) == 0 {
			payload = []byte{0}
		}
		if len(payload) > 1<<12 {
			payload = payload[:1<<12]
		}
		rules := Rules{
			ReadLatency:  time.Duration(rlat%4) * time.Millisecond,
			WriteLatency: time.Duration(wlat%4) * time.Millisecond,
		}
		if chunk > 0 {
			rules.MaxWriteChunk = int(chunk)
		}
		if stallW > 0 {
			rules.StallWriteAfter = int64(stallW)
		}
		if abortW > 0 {
			rules.AbortWriteAfter = int64(abortW)
		}

		a, b := net.Pipe()
		fc := newConn(a, rules)
		defer fc.Close()
		defer b.Close()
		go func() { // echo peer
			buf := make([]byte, 256)
			for {
				n, err := b.Read(buf)
				if n > 0 {
					if _, werr := b.Write(buf[:n]); werr != nil {
						return
					}
				}
				if err != nil {
					return
				}
			}
		}()

		// Everything is deadline-bounded, so even a pure stall ends.
		deadline := time.Now().Add(250 * time.Millisecond)
		fc.SetDeadline(deadline)

		sent := 0
		var echoed []byte
		done := make(chan struct{})
		go func() {
			defer close(done)
			buf := make([]byte, 256)
			for {
				n, err := fc.Read(buf)
				echoed = append(echoed, buf[:n]...)
				if err != nil {
					return
				}
			}
		}()
		n, _ := fc.Write(payload) // errors (deadline, abort) are legitimate outcomes
		sent = n
		if sent > len(payload) {
			t.Fatalf("wrote %d bytes of a %d-byte payload", sent, len(payload))
		}
		<-done

		// The echo must be a prefix of what was actually sent: no
		// corruption, duplication or reordering under any fault mix.
		if len(echoed) > sent || !bytes.Equal(echoed, payload[:len(echoed)]) {
			t.Fatalf("echoed %d bytes %q, sent %d bytes %q", len(echoed), echoed, sent, payload[:sent])
		}
	})
}
