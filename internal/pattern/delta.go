package pattern

import "regraph/internal/graph"

// Delta summarizes one committed mutation batch for a registered
// incremental query: which edges appeared and disappeared, which nodes
// are new, and which pre-existing nodes had their attribute tuple
// changed. The engine's apply loop builds one Delta per generation and
// feeds it to every registered Incremental through ApplyCommitted.
type Delta struct {
	AddedEdges   []DeltaEdge
	RemovedEdges []DeltaEdge
	AddedNodes   []graph.NodeID
	// AttrChanged lists pre-existing nodes whose attributes changed
	// (added nodes' initial attributes are covered by AddedNodes).
	AttrChanged []graph.NodeID
}

// DeltaEdge is one edge mutation, with the color resolved against the
// generation that committed it (ColorIDs are append-only, so they agree
// with the registration generation's IDs).
type DeltaEdge struct {
	From, To graph.NodeID
	Color    graph.ColorID
}

// Empty reports whether the delta carries no mutations at all.
func (d *Delta) Empty() bool {
	return len(d.AddedEdges) == 0 && len(d.RemovedEdges) == 0 &&
		len(d.AddedNodes) == 0 && len(d.AttrChanged) == 0
}

// ApplyCommitted rebases the engine onto an already-mutated successor
// generation and updates the maintained answer for the batch the
// generation committed. Unlike InsertEdge/DeleteEdge/InsertNode — the
// offline API, which performs the graph mutation itself — the mutations
// here were applied by the caller (the engine's single-writer apply
// loop, under its write lock); ng is the committed generation and d
// must describe exactly the batch that produced it.
//
// It returns false when the batch provably cannot have changed the
// answer (every mutation irrelevant to the pattern), letting the caller
// skip re-collecting and diffing; true means the answer was recomputed
// and may differ.
//
// The maintenance strategy extends the single-mutation methods to
// batches, evaluated against the final graph:
//
//   - Losses (removed relevant edges; nodes whose predicate stopped
//     holding) leave the old match sets a superset of the new greatest
//     fixpoint, so one refinement pass restores exactness.
//   - Gains (added relevant edges; nodes whose predicate newly holds,
//     including added nodes) can only matter within the dependency
//     radius of their site, so for DAG-bounded patterns the backward
//     balls of all gain sites are merged, candidates re-seeded inside
//     the union, and the same single refinement pass prunes. A batch's
//     removed edges shrink the balls (they are walked on the final
//     graph), which is sound: a status change needs witness paths in
//     the final graph.
//   - Non-DAG or unbounded patterns recompute from fresh candidates,
//     as in InsertEdge.
//
// Attribute changes are the genuinely new case against the offline API:
// a value flip can be a loss at one pattern node and a gain at another,
// so both rules above run, then refine once for the whole batch.
func (inc *Incremental) ApplyCommitted(ng *graph.Graph, d Delta) bool {
	inc.g = ng
	inc.ck.g = ng
	n := ng.NumNodes()
	if inc.mats != nil {
		for u := range inc.mats {
			if len(inc.mats[u]) < n {
				grown := make([]bool, n)
				copy(grown, inc.mats[u])
				inc.mats[u] = grown
			}
		}
	}
	relevantC := func(c graph.ColorID) bool {
		return inc.anyWildcard || inc.relevantColors[c]
	}
	addRel, remRel := false, false
	for _, e := range d.AddedEdges {
		if relevantC(e.Color) {
			addRel = true
			break
		}
	}
	for _, e := range d.RemovedEdges {
		if relevantC(e.Color) {
			remRel = true
			break
		}
	}
	attrAny := len(d.AttrChanged) > 0 || len(d.AddedNodes) > 0
	if !addRel && !remRel && !attrAny {
		return false
	}

	if inc.mats == nil {
		// The previous answer was empty. Shrink-only batches keep it
		// empty; anything that can grow needs a fresh evaluation.
		if !addRel && !attrAny {
			return false
		}
		inc.full()
		return true
	}

	// Attribute-driven losses are applied directly (a node whose
	// predicate fails is not a member, whatever its paths); gains are
	// collected as ball centers for the locality pass.
	nodes := make([]graph.NodeID, 0, len(d.AttrChanged)+len(d.AddedNodes))
	nodes = append(nodes, d.AttrChanged...)
	nodes = append(nodes, d.AddedNodes...)
	shrunk := false
	gainSites := map[graph.NodeID]bool{}
	for u := range inc.nq.preds {
		pred := inc.nq.preds[u]
		m := inc.mats[u]
		for _, v := range nodes {
			holds := pred.IsTrue() || pred.Eval(ng.Attrs(v))
			switch {
			case holds && !m[v]:
				gainSites[v] = true
			case !holds && m[v]:
				m[v] = false
				shrunk = true
			}
		}
	}
	centers := make([]graph.NodeID, 0, len(gainSites)+len(d.AddedEdges))
	for v := range gainSites {
		centers = append(centers, v)
	}
	if addRel {
		for _, e := range d.AddedEdges {
			if relevantC(e.Color) {
				centers = append(centers, e.From)
			}
		}
	}

	grew := false
	if len(centers) > 0 {
		if !inc.dagBounded {
			inc.full()
			return true
		}
		region := inc.backwardBallMulti(centers)
		for u := range inc.nq.preds {
			pred := inc.nq.preds[u]
			m := inc.mats[u]
			for v := range region {
				if !region[v] || m[v] {
					continue
				}
				if pred.IsTrue() || pred.Eval(ng.Attrs(graph.NodeID(v))) {
					m[v] = true
					grew = true
				}
			}
		}
	}
	if !grew && !shrunk && !remRel {
		return false
	}
	if !refine(ng, inc.nq, inc.ck, inc.mats, false, inc.ck.scratch) {
		inc.mats = nil
	}
	return true
}

// backwardBallMulti returns the union of the backward balls of all
// centers: nodes with a path (any colors) of length at most the
// dependency radius to some center. One multi-source BFS computes the
// union exactly because every ball has the same radius — a node is in
// the union iff its distance to the nearest center is within it.
func (inc *Incremental) backwardBallMulti(centers []graph.NodeID) []bool {
	seen := make([]bool, inc.g.NumNodes())
	var frontier []graph.NodeID
	for _, src := range centers {
		if !seen[src] {
			seen[src] = true
			frontier = append(frontier, src)
		}
	}
	for d := 0; d < inc.radius && len(frontier) > 0; d++ {
		var next []graph.NodeID
		for _, v := range frontier {
			for _, w := range inc.g.Pred(v, graph.AnyColor) {
				if !seen[w] {
					seen[w] = true
					next = append(next, w)
				}
			}
		}
		frontier = next
	}
	return seen
}
