package pattern_test

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"regraph/internal/gen"
	"regraph/internal/graph"
	"regraph/internal/pattern"
	"regraph/internal/predicate"
	"regraph/internal/rex"
)

func TestIncrementalBasicFlow(t *testing.T) {
	g := gen.Essembly()
	q := essemblyQ2()
	inc, err := pattern.NewIncremental(g, q)
	if err != nil {
		t.Fatal(err)
	}
	res := inc.Result()
	if res.Size() != 8 {
		t.Fatalf("initial size = %d, want 8 (Example 2.3)", res.Size())
	}
	// Delete the fn edge C3 -> B1: the (C,B) edge loses (C3,B1).
	c3, _ := g.NodeByName("C3")
	b1, _ := g.NodeByName("B1")
	if err := inc.DeleteEdge(c3, b1, "fn"); err != nil {
		t.Fatal(err)
	}
	fresh := pattern.JoinMatch(g, q, pattern.Options{})
	if !inc.Result().Equal(fresh) {
		t.Errorf("after deletion: incremental %s != fresh %s", inc.Result().String(g), fresh.String(g))
	}
	// Re-insert it: the full answer returns.
	inc.InsertEdge(c3, b1, "fn")
	fresh = pattern.JoinMatch(g, q, pattern.Options{})
	if !inc.Result().Equal(fresh) || inc.Result().Size() != 8 {
		t.Errorf("after re-insertion: size %d, want 8", inc.Result().Size())
	}
}

func TestIncrementalIrrelevantColorIsNoOp(t *testing.T) {
	g := gen.Essembly()
	q := pattern.New()
	c := q.AddNode("C", predicate.MustParse("job = biologist"))
	b := q.AddNode("B", predicate.MustParse("job = doctor"))
	q.AddEdge(c, b, rex.MustParse("fn"))
	inc, err := pattern.NewIncremental(g, q)
	if err != nil {
		t.Fatal(err)
	}
	before := inc.Result()
	// sa edges never appear in the pattern: inserting them cannot change
	// the answer.
	c1, _ := g.NodeByName("C1")
	b2, _ := g.NodeByName("B2")
	inc.InsertEdge(c1, b2, "sa")
	if !inc.Result().Equal(before) {
		t.Error("irrelevant-color insertion changed the answer")
	}
	fresh := pattern.JoinMatch(g, q, pattern.Options{})
	if !inc.Result().Equal(fresh) {
		t.Error("incremental answer diverged from fresh evaluation")
	}
}

func TestIncrementalEmptyToNonEmpty(t *testing.T) {
	g := graph.New()
	x := g.AddNode("x", map[string]string{"t": "a"})
	y := g.AddNode("y", map[string]string{"t": "b"})
	g.AddEdge(y, x, "back") // some edge so colors exist; a->b missing
	q := pattern.New()
	a := q.AddNode("A", predicate.MustParse("t = a"))
	b := q.AddNode("B", predicate.MustParse("t = b"))
	q.AddEdge(a, b, rex.MustParse("e{2}"))
	if _, err := pattern.NewIncremental(g, q); err == nil {
		t.Fatal("color e does not exist yet; construction should fail")
	}
	// Add one e edge elsewhere so the color exists, then build.
	g.AddEdge(y, y, "e")
	inc, err := pattern.NewIncremental(g, q)
	if err != nil {
		t.Fatal(err)
	}
	if !inc.Result().Empty() {
		t.Fatal("no a->b path yet; answer should be empty")
	}
	inc.InsertEdge(x, y, "e")
	if inc.Result().Empty() {
		t.Fatal("x -e-> y should produce a match")
	}
	fresh := pattern.JoinMatch(g, q, pattern.Options{})
	if !inc.Result().Equal(fresh) {
		t.Error("incremental != fresh after empty-to-nonempty transition")
	}
}

func TestIncrementalInsertNode(t *testing.T) {
	g := graph.New()
	x := g.AddNode("x", map[string]string{"t": "a"})
	y := g.AddNode("y", map[string]string{"t": "b"})
	g.AddEdge(x, y, "e")
	q := pattern.New()
	a := q.AddNode("A", predicate.MustParse("t = a"))
	b := q.AddNode("B", predicate.MustParse("t = b"))
	q.AddEdge(a, b, rex.MustParse("e"))
	inc, err := pattern.NewIncremental(g, q)
	if err != nil {
		t.Fatal(err)
	}
	// A new isolated t=b node matches B (no outgoing pattern edges) but
	// creates no pairs until an edge reaches it.
	z := inc.InsertNode("z", map[string]string{"t": "b"})
	fresh := pattern.JoinMatch(g, q, pattern.Options{})
	if !inc.Result().Equal(fresh) {
		t.Errorf("after node insertion: %s != %s", inc.Result().String(g), fresh.String(g))
	}
	inc.InsertEdge(x, z, "e")
	fresh = pattern.JoinMatch(g, q, pattern.Options{})
	if !inc.Result().Equal(fresh) {
		t.Error("after connecting the new node: incremental != fresh")
	}
	if len(inc.Result().EdgePairs(0)) != 2 {
		t.Errorf("expected 2 pairs, got %d", len(inc.Result().EdgePairs(0)))
	}
}

func TestIncrementalDeleteMissingEdge(t *testing.T) {
	g := gen.Essembly()
	q := pattern.New()
	c := q.AddNode("C", predicate.MustParse("job = biologist"))
	b := q.AddNode("B", predicate.MustParse("job = doctor"))
	q.AddEdge(c, b, rex.MustParse("fn"))
	inc, _ := pattern.NewIncremental(g, q)
	c1, _ := g.NodeByName("C1")
	b1, _ := g.NodeByName("B1")
	if err := inc.DeleteEdge(c1, b1, "fn"); err == nil {
		t.Error("deleting a non-existent edge should error")
	}
}

// TestIncrementalMatchesFreshUnderChurn is the central property: after an
// arbitrary interleaving of relevant/irrelevant edge insertions and
// deletions (on cyclic and acyclic patterns, bounded and unbounded
// atoms), the maintained answer equals a from-scratch evaluation.
func TestIncrementalMatchesFreshUnderChurn(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomAttrGraph(r, 4+r.Intn(8), 6+r.Intn(20))
		q := randomPattern(r)
		inc, err := pattern.NewIncremental(g, q)
		if err != nil {
			return true // pattern color absent from graph; nothing to test
		}
		type edge struct {
			from, to graph.NodeID
			color    string
		}
		var inserted []edge
		colors := []string{"a", "b", "c"} // includes a color new to the graph
		for step := 0; step < 12; step++ {
			if r.Intn(3) > 0 || len(inserted) == 0 {
				e := edge{
					from:  graph.NodeID(r.Intn(g.NumNodes())),
					to:    graph.NodeID(r.Intn(g.NumNodes())),
					color: colors[r.Intn(len(colors))],
				}
				inc.InsertEdge(e.from, e.to, e.color)
				inserted = append(inserted, e)
			} else {
				i := r.Intn(len(inserted))
				e := inserted[i]
				if err := inc.DeleteEdge(e.from, e.to, e.color); err != nil {
					t.Logf("seed %d: delete failed: %v", seed, err)
					return false
				}
				inserted = append(inserted[:i], inserted[i+1:]...)
			}
			fresh := pattern.JoinMatch(g, q, pattern.Options{})
			if !inc.Result().Equal(fresh) {
				t.Logf("seed %d step %d: incremental diverged\npattern %v\ninc   %s\nfresh %s",
					seed, step, q, inc.Result().String(g), fresh.String(g))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestIncrementalNodeChurn mixes node insertions into the churn.
func TestIncrementalNodeChurn(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomAttrGraph(r, 4+r.Intn(6), 5+r.Intn(12))
		q := randomPattern(r)
		inc, err := pattern.NewIncremental(g, q)
		if err != nil {
			return true
		}
		for step := 0; step < 8; step++ {
			if r.Intn(3) == 0 {
				inc.InsertNode(fmt.Sprintf("new%d", step), map[string]string{"t": fmt.Sprint(r.Intn(3))})
			} else {
				inc.InsertEdge(
					graph.NodeID(r.Intn(g.NumNodes())),
					graph.NodeID(r.Intn(g.NumNodes())),
					[]string{"a", "b"}[r.Intn(2)],
				)
			}
			fresh := pattern.JoinMatch(g, q, pattern.Options{})
			if !inc.Result().Equal(fresh) {
				t.Logf("seed %d step %d: diverged", seed, step)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
