package pattern_test

import (
	"fmt"
	"math/rand"
	"testing"

	"regraph/internal/graph"
	"regraph/internal/pattern"
	"regraph/internal/predicate"
	"regraph/internal/rex"
)

// churnGraph builds a random attributed multigraph over the colors the
// delta tests mutate.
func churnGraph(r *rand.Rand, n int, colors []string) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddNode(fmt.Sprintf("v%d", i), map[string]string{
			"t": fmt.Sprint(r.Intn(4)),
			"w": fmt.Sprint(r.Intn(5)),
		})
	}
	for i := 0; i < n*3; i++ {
		g.AddEdge(graph.NodeID(r.Intn(n)), graph.NodeID(r.Intn(n)), colors[r.Intn(len(colors))])
	}
	return g
}

// randomBatch applies a random mutation batch to a Derive of g and
// returns the new generation plus the pattern.Delta describing it, built
// exactly as the engine's apply loop builds it.
func randomBatch(r *rand.Rand, g *graph.Graph, colors []string, genNo int) (*graph.Graph, pattern.Delta) {
	ng := g.Derive()
	var d pattern.Delta
	attrChanged := map[graph.NodeID]bool{}
	oldN := ng.NumNodes()
	nops := 1 + r.Intn(6)
	for i := 0; i < nops; i++ {
		switch r.Intn(4) {
		case 0: // add_edge
			from := graph.NodeID(r.Intn(ng.NumNodes()))
			to := graph.NodeID(r.Intn(ng.NumNodes()))
			color := colors[r.Intn(len(colors))]
			ng.AddEdge(from, to, color)
			c, _ := ng.ColorID(color)
			d.AddedEdges = append(d.AddedEdges, pattern.DeltaEdge{From: from, To: to, Color: c})
		case 1: // remove_edge (pick an existing one when possible)
			v := graph.NodeID(r.Intn(ng.NumNodes()))
			outs := ng.Out(v)
			if len(outs) == 0 {
				continue
			}
			e := outs[r.Intn(len(outs))]
			color := ng.ColorName(e.Color)
			if !ng.RemoveEdge(v, e.To, color) {
				continue
			}
			d.RemovedEdges = append(d.RemovedEdges, pattern.DeltaEdge{From: v, To: e.To, Color: e.Color})
		case 2: // set_attr
			v := graph.NodeID(r.Intn(ng.NumNodes()))
			key := []string{"t", "w"}[r.Intn(2)]
			ng.SetAttr(v, key, fmt.Sprint(r.Intn(5)))
			if int(v) < oldN {
				attrChanged[v] = true
			}
		case 3: // add_node (sometimes with an edge to wire it in)
			id := ng.AddNode(fmt.Sprintf("g%dn%d", genNo, i), map[string]string{
				"t": fmt.Sprint(r.Intn(4)),
				"w": fmt.Sprint(r.Intn(5)),
			})
			d.AddedNodes = append(d.AddedNodes, id)
			if r.Intn(2) == 0 {
				to := graph.NodeID(r.Intn(oldN))
				color := colors[r.Intn(len(colors))]
				ng.AddEdge(id, to, color)
				c, _ := ng.ColorID(color)
				d.AddedEdges = append(d.AddedEdges, pattern.DeltaEdge{From: id, To: to, Color: c})
			}
		}
	}
	for v := range attrChanged {
		d.AttrChanged = append(d.AttrChanged, v)
	}
	return ng, d
}

// deltaQueries is a spread of patterns over the churn graphs: DAG-bounded
// (the locality path), a cyclic pattern (the full-recompute path), and a
// wildcard one.
func deltaQueries() []*pattern.Query {
	var qs []*pattern.Query

	q1 := pattern.New()
	a := q1.AddNode("A", predicate.MustParse("t = 1"))
	b := q1.AddNode("B", predicate.MustParse("t = 2"))
	q1.AddEdge(a, b, rex.MustParse("x{2}"))
	qs = append(qs, q1)

	q2 := pattern.New()
	a = q2.AddNode("A", predicate.MustParse("w >= 2"))
	b = q2.AddNode("B", predicate.MustParse("t = 0"))
	c := q2.AddNode("C", predicate.MustParse("w <= 3"))
	q2.AddEdge(a, b, rex.MustParse("x{2}"))
	q2.AddEdge(a, c, rex.MustParse("y{3}"))
	q2.AddEdge(b, c, rex.MustParse("_{2}")) // wildcard atom
	qs = append(qs, q2)

	q3 := pattern.New() // cyclic: exercises the full-recompute fallback
	a = q3.AddNode("A", predicate.MustParse("t = 1"))
	b = q3.AddNode("B", predicate.MustParse("t = 2"))
	q3.AddEdge(a, b, rex.MustParse("x{2}"))
	q3.AddEdge(b, a, rex.MustParse("y{2}"))
	qs = append(qs, q3)

	return qs
}

// TestApplyCommittedMatchesFresh is the oracle property for the engine's
// standing-query path: across chains of random committed batches on
// copy-on-write generations, ApplyCommitted must keep the answer
// bit-identical to a fresh JoinMatch of each generation.
func TestApplyCommittedMatchesFresh(t *testing.T) {
	colors := []string{"x", "y"}
	for qi, q := range deltaQueries() {
		for seed := int64(0); seed < 6; seed++ {
			r := rand.New(rand.NewSource(900 + seed))
			g := churnGraph(r, 25+r.Intn(40), colors)
			inc, err := pattern.NewIncremental(g, q)
			if err != nil {
				t.Fatalf("query %d seed %d: %v", qi, seed, err)
			}
			if fresh := pattern.JoinMatch(g, q, pattern.Options{}); !inc.Result().Equal(fresh) {
				t.Fatalf("query %d seed %d: initial answer differs", qi, seed)
			}
			for gen := 0; gen < 15; gen++ {
				ng, d := randomBatch(r, g, colors, gen)
				changed := inc.ApplyCommitted(ng, d)
				fresh := pattern.JoinMatch(ng, q, pattern.Options{})
				got := inc.Result()
				if !got.Equal(fresh) {
					t.Fatalf("query %d seed %d gen %d (changed=%v): incremental %s != fresh %s (delta %+v)",
						qi, seed, gen, changed, got.String(ng), fresh.String(ng), d)
				}
				g.Seal()
				g = ng
			}
		}
	}
}

// TestApplyCommittedIrrelevantSkips: a batch of edges in a color the
// pattern never mentions must report unchanged without recomputation.
func TestApplyCommittedIrrelevantSkips(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	colors := []string{"x", "y", "z"}
	g := churnGraph(r, 30, colors)
	q := pattern.New()
	a := q.AddNode("A", predicate.MustParse("t = 1"))
	b := q.AddNode("B", predicate.MustParse("t = 2"))
	q.AddEdge(a, b, rex.MustParse("x{2}"))
	inc, err := pattern.NewIncremental(g, q)
	if err != nil {
		t.Fatal(err)
	}
	before := inc.Result()

	ng := g.Derive()
	ng.AddEdge(0, 1, "z")
	ng.AddEdge(2, 3, "z")
	c, _ := ng.ColorID("z")
	d := pattern.Delta{AddedEdges: []pattern.DeltaEdge{{From: 0, To: 1, Color: c}, {From: 2, To: 3, Color: c}}}
	if inc.ApplyCommitted(ng, d) {
		t.Fatal("irrelevant-color batch reported a change")
	}
	if !inc.Result().Equal(before) {
		t.Fatal("irrelevant-color batch changed the answer")
	}
	if !inc.Result().Equal(pattern.JoinMatch(ng, q, pattern.Options{})) {
		t.Fatal("answer diverged from fresh evaluation")
	}
}
