package pattern_test

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"regraph/internal/dist"
	"regraph/internal/gen"
	"regraph/internal/graph"
	"regraph/internal/pattern"
	"regraph/internal/predicate"
	"regraph/internal/reach"
	"regraph/internal/rex"
)

// essemblyQ2 builds the pattern query Q2 of Fig. 1: Alice (D) with her
// doctor friends-nemeses (B) and cloning-supporting biologists (C).
func essemblyQ2() *pattern.Query {
	q := pattern.New()
	b := q.AddNode("B", predicate.MustParse("job = doctor, dsp = cloning"))
	c := q.AddNode("C", predicate.MustParse("job = biologist, sp = cloning"))
	d := q.AddNode("D", predicate.MustParse("uid = Alice001"))
	q.AddEdge(b, c, rex.MustParse("sn"))
	q.AddEdge(b, d, rex.MustParse("fn"))
	q.AddEdge(c, b, rex.MustParse("fn"))
	q.AddEdge(c, c, rex.MustParse("fa{3}"))
	q.AddEdge(c, d, rex.MustParse("fa{2} sa{2}"))
	return q
}

// TestExample23 reproduces the paper's Example 2.3: the exact answer table
// for Q2 over the Fig. 1 graph, under all four algorithm configurations.
func TestExample23(t *testing.T) {
	g := gen.Essembly()
	q := essemblyQ2()
	mx := dist.NewMatrix(g)
	ca := dist.NewCache(g, 1024)

	want := map[string]string{
		"(B,C)": "{(B1,C3), (B2,C3)}",
		"(B,D)": "{(B1,D1), (B2,D1)}",
		"(C,B)": "{(C3,B1), (C3,B2)}",
		"(C,C)": "{(C3,C3)}",
		"(C,D)": "{(C3,D1)}",
	}
	configs := []struct {
		name string
		run  func() *pattern.Result
	}{
		{"JoinMatchM", func() *pattern.Result { return pattern.JoinMatch(g, q, pattern.Options{Matrix: mx}) }},
		{"JoinMatchC", func() *pattern.Result { return pattern.JoinMatch(g, q, pattern.Options{Cache: ca}) }},
		{"SplitMatchM", func() *pattern.Result { return pattern.SplitMatch(g, q, pattern.Options{Matrix: mx}) }},
		{"SplitMatchC", func() *pattern.Result { return pattern.SplitMatch(g, q, pattern.Options{Cache: ca}) }},
	}
	for _, cfg := range configs {
		res := cfg.run()
		if res.Empty() {
			t.Fatalf("%s: unexpected empty result", cfg.name)
		}
		for ei := 0; ei < q.NumEdges(); ei++ {
			e := q.Edge(ei)
			key := fmt.Sprintf("(%s,%s)", q.Node(e.From).Name, q.Node(e.To).Name)
			got := pairSetString(g, res.EdgePairs(ei))
			if got != want[key] {
				t.Errorf("%s edge %s = %s, want %s", cfg.name, key, got, want[key])
			}
		}
		// Match sets per the example: B -> {B1,B2}, C -> {C3}, D -> {D1}.
		bIdx, _ := q.NodeIndex("B")
		cIdx, _ := q.NodeIndex("C")
		dIdx, _ := q.NodeIndex("D")
		if got := nodeSetString(g, res.MatchSet(bIdx)); got != "[B1 B2]" {
			t.Errorf("%s mat(B) = %s", cfg.name, got)
		}
		if got := nodeSetString(g, res.MatchSet(cIdx)); got != "[C3]" {
			t.Errorf("%s mat(C) = %s", cfg.name, got)
		}
		if got := nodeSetString(g, res.MatchSet(dIdx)); got != "[D1]" {
			t.Errorf("%s mat(D) = %s", cfg.name, got)
		}
	}
}

func pairSetString(g *graph.Graph, pairs []reach.Pair) string {
	ss := make([]string, len(pairs))
	for i, p := range pairs {
		ss[i] = "(" + g.Node(p.From).Name + "," + g.Node(p.To).Name + ")"
	}
	sortStrings(ss)
	out := "{"
	for i, s := range ss {
		if i > 0 {
			out += ", "
		}
		out += s
	}
	return out + "}"
}

func nodeSetString(g *graph.Graph, ids []graph.NodeID) string {
	ss := make([]string, len(ids))
	for i, id := range ids {
		ss[i] = g.Node(id).Name
	}
	sortStrings(ss)
	return fmt.Sprint(ss)
}

func sortStrings(ss []string) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j] < ss[j-1]; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}

// TestCyclicPattern exercises a pattern that is itself a cycle (forcing
// the SCC fixpoint iteration).
func TestCyclicPattern(t *testing.T) {
	g := graph.New()
	// Data: a 2-cycle x <-> y plus a dangling z -> x.
	x := g.AddNode("x", map[string]string{"t": "a"})
	y := g.AddNode("y", map[string]string{"t": "b"})
	z := g.AddNode("z", map[string]string{"t": "a"})
	g.AddEdge(x, y, "e")
	g.AddEdge(y, x, "e")
	g.AddEdge(z, x, "e")
	mx := dist.NewMatrix(g)

	q := pattern.New()
	a := q.AddNode("A", predicate.MustParse("t = a"))
	b := q.AddNode("B", predicate.MustParse("t = b"))
	q.AddEdge(a, b, rex.MustParse("e"))
	q.AddEdge(b, a, rex.MustParse("e"))

	res := pattern.JoinMatch(g, q, pattern.Options{Matrix: mx})
	if res.Empty() {
		t.Fatal("cyclic pattern should match the 2-cycle")
	}
	// z matches "t = a" but has no incoming edge from a B-match, which is
	// fine (only outgoing constraints apply); however z's successor x must
	// be a B-match — it is not (x has t=a), so z must be pruned.
	if got := nodeSetString(g, res.MatchSet(a)); got != "[x]" {
		t.Errorf("mat(A) = %s, want [x]", got)
	}
	if got := nodeSetString(g, res.MatchSet(b)); got != "[y]" {
		t.Errorf("mat(B) = %s, want [y]", got)
	}
}

func TestEmptyWhenNoPath(t *testing.T) {
	g := gen.Essembly()
	mx := dist.NewMatrix(g)
	q := pattern.New()
	c := q.AddNode("C", predicate.MustParse("job = biologist"))
	h := q.AddNode("H", predicate.MustParse("job = physician"))
	// No biologist reaches the physician via fn edges.
	q.AddEdge(c, h, rex.MustParse("fn"))
	res := pattern.JoinMatch(g, q, pattern.Options{Matrix: mx})
	if !res.Empty() {
		t.Errorf("expected empty result, got %s", res.String(g))
	}
	res = pattern.SplitMatch(g, q, pattern.Options{Matrix: mx})
	if !res.Empty() {
		t.Error("SplitMatch should agree on emptiness")
	}
}

func TestEmptyWhenUnknownColor(t *testing.T) {
	g := gen.Essembly()
	q := pattern.New()
	a := q.AddNode("A", predicate.Pred{})
	b := q.AddNode("B", predicate.Pred{})
	q.AddEdge(a, b, rex.MustParse("nosuchcolor"))
	if res := pattern.JoinMatch(g, q, pattern.Options{}); !res.Empty() {
		t.Error("unknown color should produce the empty answer")
	}
}

func TestEdgelessPattern(t *testing.T) {
	g := gen.Essembly()
	q := pattern.New()
	q.AddNode("A", predicate.Pred{})
	if res := pattern.JoinMatch(g, q, pattern.Options{}); !res.Empty() {
		t.Error("edgeless pattern has no edge sets, hence the empty answer")
	}
}

func TestAsRQ(t *testing.T) {
	q := pattern.New()
	a := q.AddNode("A", predicate.MustParse("job = biologist"))
	b := q.AddNode("B", predicate.MustParse("job = doctor"))
	q.AddEdge(a, b, rex.MustParse("fa{2} fn"))
	rq, ok := q.AsRQ()
	if !ok {
		t.Fatal("two-node one-edge pattern should convert to an RQ")
	}
	g := gen.Essembly()
	mx := dist.NewMatrix(g)
	// The RQ answer must equal the PQ's single edge set.
	res := pattern.JoinMatch(g, q, pattern.Options{Matrix: mx})
	rqPairs := rq.EvalMatrix(g, mx)
	if res.Empty() && len(rqPairs) > 0 {
		t.Fatal("PQ empty but RQ non-empty")
	}
	if !res.Empty() {
		if pairSetString(g, res.EdgePairs(0)) != pairSetString(g, rqPairs) {
			t.Errorf("PQ edge set %s != RQ answer %s",
				pairSetString(g, res.EdgePairs(0)), pairSetString(g, rqPairs))
		}
	}
	if _, ok := essemblyQ2().AsRQ(); ok {
		t.Error("five-edge pattern must not convert to an RQ")
	}
}

// ---- reference evaluator --------------------------------------------------

// naiveEval computes the PQ semantics directly: a chaotic fixpoint over
// candidate match sets with per-pair bi-directional path checks, then pair
// collection. Used as ground truth for the property tests.
func naiveEval(g *graph.Graph, q *pattern.Query) *pattern.Result {
	n := g.NumNodes()
	atoms := make([][]dist.CAtom, q.NumEdges())
	for ei := 0; ei < q.NumEdges(); ei++ {
		a, ok := dist.Compile(g, q.Edge(ei).Expr)
		if !ok {
			return &pattern.Result{}
		}
		atoms[ei] = a
	}
	mats := make([][]bool, q.NumNodes())
	for u := 0; u < q.NumNodes(); u++ {
		mats[u] = make([]bool, n)
		for v := 0; v < n; v++ {
			mats[u][v] = q.Node(u).Pred.Eval(g.Attrs(graph.NodeID(v)))
		}
	}
	for changed := true; changed; {
		changed = false
		for u := 0; u < q.NumNodes(); u++ {
			for v := 0; v < n; v++ {
				if !mats[u][v] {
					continue
				}
				for _, ei := range q.Out(u) {
					e := q.Edge(ei)
					ok := false
					for w := 0; w < n; w++ {
						if mats[e.To][w] && dist.BiReach(g, atoms[ei], graph.NodeID(v), graph.NodeID(w)) {
							ok = true
							break
						}
					}
					if !ok {
						mats[u][v] = false
						changed = true
						break
					}
				}
			}
		}
	}
	for u := 0; u < q.NumNodes(); u++ {
		if len(q.Out(u)) == 0 && len(q.In(u)) == 0 {
			continue // isolated nodes do not influence the per-edge answer
		}
		any := false
		for v := 0; v < n; v++ {
			any = any || mats[u][v]
		}
		if !any {
			return &pattern.Result{}
		}
	}
	res := &pattern.Result{Sets: make([][]reach.Pair, q.NumEdges())}
	for ei := 0; ei < q.NumEdges(); ei++ {
		e := q.Edge(ei)
		var pairs []reach.Pair
		for v := 0; v < n; v++ {
			if !mats[e.From][v] {
				continue
			}
			for w := 0; w < n; w++ {
				if mats[e.To][w] && dist.BiReach(g, atoms[ei], graph.NodeID(v), graph.NodeID(w)) {
					pairs = append(pairs, reach.Pair{From: graph.NodeID(v), To: graph.NodeID(w)})
				}
			}
		}
		if len(pairs) == 0 {
			return &pattern.Result{}
		}
		res.Sets[ei] = pairs
	}
	return res
}

func randomAttrGraph(r *rand.Rand, n, e int) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddNode(fmt.Sprintf("n%d", i), map[string]string{"t": fmt.Sprint(r.Intn(3))})
	}
	colors := []string{"a", "b"}
	for i := 0; i < e; i++ {
		g.AddEdge(graph.NodeID(r.Intn(n)), graph.NodeID(r.Intn(n)), colors[r.Intn(2)])
	}
	return g
}

func randomPattern(r *rand.Rand) *pattern.Query {
	q := pattern.New()
	nn := 2 + r.Intn(3)
	preds := []string{"t = 0", "t = 1", "t = 2", "*"}
	for i := 0; i < nn; i++ {
		q.AddNode(fmt.Sprintf("u%d", i), predicate.MustParse(preds[r.Intn(len(preds))]))
	}
	ne := 1 + r.Intn(4)
	colors := []string{"a", "b", "_"}
	for i := 0; i < ne; i++ {
		na := 1 + r.Intn(2)
		atoms := make([]rex.Atom, na)
		for j := range atoms {
			m := 1 + r.Intn(3)
			if r.Intn(6) == 0 {
				m = rex.Unbounded
			}
			atoms[j] = rex.Atom{Color: colors[r.Intn(3)], Max: m}
		}
		q.AddEdge(r.Intn(nn), r.Intn(nn), rex.MustNew(atoms...))
	}
	return q
}

// TestAlgorithmsAgreeWithReference is the central cross-validation: all
// four configurations must produce exactly the reference semantics on
// random graphs and random patterns (including cycles, self-loops,
// wildcards and unbounded atoms).
func TestAlgorithmsAgreeWithReference(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomAttrGraph(r, 2+r.Intn(9), 1+r.Intn(22))
		q := randomPattern(r)
		mx := dist.NewMatrix(g)
		ca := dist.NewCache(g, 128)
		want := naiveEval(g, q)
		for _, cfg := range []struct {
			name string
			got  *pattern.Result
		}{
			{"JoinMatchM", pattern.JoinMatch(g, q, pattern.Options{Matrix: mx})},
			{"JoinMatchC", pattern.JoinMatch(g, q, pattern.Options{Cache: ca})},
			{"JoinMatchPlain", pattern.JoinMatch(g, q, pattern.Options{})},
			{"SplitMatchM", pattern.SplitMatch(g, q, pattern.Options{Matrix: mx})},
			{"SplitMatchC", pattern.SplitMatch(g, q, pattern.Options{Cache: ca})},
		} {
			if !cfg.got.Equal(want) {
				t.Logf("seed %d %s:\npattern %v\ngot  %s\nwant %s", seed, cfg.name, q, cfg.got.String(g), want.String(g))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestResultSize checks the paper's answer-size metric.
func TestResultSize(t *testing.T) {
	g := gen.Essembly()
	mx := dist.NewMatrix(g)
	res := pattern.JoinMatch(g, essemblyQ2(), pattern.Options{Matrix: mx})
	// 2 + 2 + 2 + 1 + 1 pairs across the five edges.
	if res.Size() != 8 {
		t.Errorf("Size = %d, want 8", res.Size())
	}
	var empty *pattern.Result
	if empty.Size() != 0 || !empty.Empty() {
		t.Error("nil result should be empty with size 0")
	}
}

func TestQueryBuilders(t *testing.T) {
	q := pattern.New()
	q.AddEdgeByName("A", "B", rex.MustParse("x"))
	if q.NumNodes() != 2 || q.NumEdges() != 1 {
		t.Errorf("AddEdgeByName built %d nodes, %d edges", q.NumNodes(), q.NumEdges())
	}
	a := q.AddNode("A", predicate.MustParse("ignored = 1"))
	if got := q.Node(a).Pred.String(); got != "*" {
		t.Errorf("duplicate AddNode must keep the original predicate, got %q", got)
	}
	c := q.Clone()
	if c.Size() != q.Size() || c.String() != q.String() {
		t.Error("Clone should preserve structure")
	}
}
