package pattern

import (
	"context"

	"regraph/internal/dist"
	"regraph/internal/graph"
	"regraph/internal/predicate"
	"regraph/internal/reach"
)

// Options selects how edge constraints are checked, mirroring the "flag"
// argument of the paper's algorithms.
//
// With a Matrix, the query is normalized (every multi-atom edge is split
// into single-atom edges through dummy nodes) and each pair check is an
// O(1) matrix lookup — the JoinMatchM / SplitMatchM configurations of the
// experiments. Without a Matrix the algorithms run the bi-directional
// runtime search, optionally through an LRU distance Cache — the
// JoinMatchC / SplitMatchC configurations.
type Options struct {
	Matrix *dist.Matrix
	Cache  *dist.Cache

	// Backend optionally supplies a general distance backend (Matrix,
	// TwoHop, Cache — see dist.Backend) for the runtime-search mode's
	// single-atom pair checks, taking precedence over Cache. It does
	// not switch on the normalized matrix algorithm — that needs the
	// concrete Matrix field — but any backend makes single-atom edges a
	// pairwise lookup instead of a closure search. Answers are
	// identical across backends by the Backend contract.
	Backend dist.Backend

	// Scratch optionally supplies a reusable search arena for the
	// runtime-search configurations; nil borrows one from the dist
	// package pool per evaluation. Engine workers pass their own so
	// back-to-back pattern queries reuse one set of buffers.
	Scratch *dist.Scratch

	// Cands optionally supplies indexed/memoized predicate candidate
	// sets (internal/candidx) for seeding the match sets; nil scans all
	// nodes per pattern-node predicate. The engine passes its shared
	// memo here.
	Cands reach.CandidateSource

	// DisableTopoOrder makes JoinMatch run a plain global fixpoint instead
	// of processing SCCs in reverse topological order. The answers are
	// identical (the fixpoint is unique); exposed for the ablation
	// benchmark quantifying what the ordering buys.
	DisableTopoOrder bool
}

// distBackend resolves the pairwise distance oracle for the
// runtime-search mode: the explicit Backend when set, else the Cache
// (lifted into the interface only when non-nil — a nil *Cache must
// become a nil interface), else nil, which means closure search only.
func (o Options) distBackend() dist.Backend {
	if o.Backend != nil {
		return o.Backend
	}
	if o.Cache != nil {
		return o.Cache
	}
	return nil
}

// scratch returns the arena evaluation should run on plus a put function
// for when it was borrowed from the pool.
func (o Options) scratch() (*dist.Scratch, func()) {
	if o.Scratch != nil {
		return o.Scratch, func() {}
	}
	s := dist.GetScratch()
	return s, func() { dist.PutScratch(s) }
}

// ---- normalized form -------------------------------------------------------

// normEdge is a single-atom edge of the normalized pattern.
type normEdge struct {
	from, to int
	atom     dist.CAtom
}

// normQuery is the paper's Normalize(Qp): every edge of the original
// pattern is decomposed into a chain of single-atom edges through fresh
// dummy nodes that carry no condition.
type normQuery struct {
	preds   []predicate.Pred // per normalized node; dummies are empty
	orig    []int            // original node index, -1 for dummies
	ofNode  []int            // original node -> normalized node
	edges   []normEdge
	out, in [][]int // edge indices per normalized node

	// For dummy nodes, the colors of the chain atoms ending and starting
	// at them. A data node can only stand at that chain position if it
	// has an incoming edge of inColor and an outgoing edge of outColor
	// (AnyColor matches every edge), which initialMats uses to seed dummy
	// match sets far below |V|.
	dummyIn, dummyOut []graph.ColorID
}

// normalize builds the normalized pattern. ok is false when some edge
// mentions a color absent from the graph, in which case the answer is
// empty. When split is false, edges are kept whole (one normEdge carries
// the full atom chain via atoms table) — used by the runtime-search mode,
// which can evaluate whole expressions directly.
func normalize(g *graph.Graph, q *Query, split bool) (*normQuery, [][]dist.CAtom, bool) {
	nq := &normQuery{}
	addNode := func(p predicate.Pred, orig int) int {
		id := len(nq.preds)
		nq.preds = append(nq.preds, p)
		nq.orig = append(nq.orig, orig)
		nq.out = append(nq.out, nil)
		nq.in = append(nq.in, nil)
		nq.dummyIn = append(nq.dummyIn, graph.AnyColor)
		nq.dummyOut = append(nq.dummyOut, graph.AnyColor)
		return id
	}
	nq.ofNode = make([]int, q.NumNodes())
	for i := 0; i < q.NumNodes(); i++ {
		nq.ofNode[i] = addNode(q.Node(i).Pred, i)
	}
	addEdge := func(from, to int, a dist.CAtom) {
		id := len(nq.edges)
		nq.edges = append(nq.edges, normEdge{from, to, a})
		nq.out[from] = append(nq.out[from], id)
		nq.in[to] = append(nq.in[to], id)
	}
	chains := make([][]dist.CAtom, q.NumEdges())
	for ei := 0; ei < q.NumEdges(); ei++ {
		e := q.Edge(ei)
		atoms, ok := dist.Compile(g, e.Expr)
		if !ok {
			return nil, nil, false
		}
		chains[ei] = atoms
		if !split || len(atoms) == 1 {
			// Single edge; in unsplit mode the atom field is unused when
			// the chain has several atoms (the chain table is consulted).
			addEdge(nq.ofNode[e.From], nq.ofNode[e.To], atoms[0])
			continue
		}
		prev := nq.ofNode[e.From]
		for i := 0; i < len(atoms)-1; i++ {
			d := addNode(predicate.Pred{}, -1)
			nq.dummyIn[d] = atoms[i].Color
			nq.dummyOut[d] = atoms[i+1].Color
			addEdge(prev, d, atoms[i])
			prev = d
		}
		addEdge(prev, nq.ofNode[e.To], atoms[len(atoms)-1])
	}
	return nq, chains, true
}

// checker abstracts the Join procedure of Fig. 7: prune from src every
// node with no edge-satisfying successor in tgt. Implementations differ
// between matrix mode (O(1) pair lookups) and runtime-search mode
// (multi-source bounded BFS). Both report whether src changed and whether
// it stayed non-empty.
type checker interface {
	refineSrc(ei int, src, tgt []bool) (changed, nonEmpty bool)
}

// matrixChecker: every normalized edge is a single atom; each pair check
// is an O(1) matrix lookup, so the Join is O(|mat(u')|·|mat(u)|). The
// scratch is carried only for its cancellation binding: one refineSrc
// sweep can be |V|·|V| lookups, the fixpoint's longest uninterruptible
// stretch in matrix mode.
type matrixChecker struct {
	mx    *dist.Matrix
	edges []normEdge
	s     *dist.Scratch
}

func (c *matrixChecker) refineSrc(ei int, src, tgt []bool) (changed, nonEmpty bool) {
	a := c.edges[ei].atom
	seen := 0
	for x := range src {
		if !src[x] {
			continue
		}
		seen++
		if seen&255 == 0 && c.s.Canceled() {
			// Abandoned evaluation: stop refining. The fixpoint loop
			// re-checks the binding before using this partial answer.
			return changed, true
		}
		keep := false
		for y := range tgt {
			if tgt[y] && a.SatMatrix(c.mx, graph.NodeID(x), graph.NodeID(y)) {
				keep = true
				break
			}
		}
		if keep {
			nonEmpty = true
		} else {
			src[x] = false
			changed = true
		}
	}
	return changed, nonEmpty
}

// searchChecker: edges keep their whole atom chains. Single-atom edges
// are checked pair by pair through the distance backend when one is
// configured — the LRU cache is the paper's configuration (a miss
// recomputes the distance from scratch with bi-directional BFS), but
// any dist.Backend (TwoHop labels, a Matrix used without normalized
// splitting) slots in identically. Multi-atom edges use the paper's
// multi-color runtime evaluation: the whole target set's backward image
// under the expression, by multi-source bounded BFS, intersected with the
// source set.
type searchChecker struct {
	g       *graph.Graph
	be      dist.Backend
	chains  [][]dist.CAtom // per normalized edge (== original edge here)
	scratch *dist.Scratch
}

func (c *searchChecker) refineSrc(ei int, src, tgt []bool) (changed, nonEmpty bool) {
	atoms := c.chains[ei]
	if len(atoms) == 1 && c.be != nil {
		a := atoms[0]
		for x := range src {
			if !src[x] {
				continue
			}
			if c.scratch.Canceled() {
				return changed, true
			}
			keep := false
			for y := range tgt {
				if tgt[y] && a.Sat(c.be.DistScratch(a.Color, graph.NodeID(x), graph.NodeID(y), c.scratch)) {
					keep = true
					break
				}
			}
			if keep {
				nonEmpty = true
			} else {
				src[x] = false
				changed = true
			}
		}
		return changed, nonEmpty
	}
	img := dist.BackwardClosureScratch(c.g, tgt, atoms, c.scratch)
	if c.scratch.Canceled() {
		// img is garbage from an abandoned closure; refining against it
		// would prune wrongly. Report "no change" and let the fixpoint
		// loop observe the cancellation.
		return false, true
	}
	for x := range src {
		if !src[x] {
			continue
		}
		if img[x] {
			nonEmpty = true
		} else {
			src[x] = false
			changed = true
		}
	}
	return changed, nonEmpty
}

// ---- JoinMatch --------------------------------------------------------------

// JoinMatch evaluates the pattern with the join-based algorithm of
// Section 5.1 (Fig. 7): initial match sets are refined edge by edge, the
// strongly connected components of the (normalized) pattern are processed
// in reverse topological order, and within each component refinement
// iterates to a fixpoint. Runs in O(|E'p| |V|^2) after preprocessing when
// a distance matrix is used.
func JoinMatch(g *graph.Graph, q *Query, opts Options) *Result {
	res, _ := JoinMatchCtx(nil, g, q, opts)
	return res
}

// JoinMatchCtx is JoinMatch with cancellation: the context is bound to
// the evaluation's scratch arena, so the fixpoint loop, every per-edge
// refinement sweep and every runtime-search closure under it observe
// cancellation at periodic checkpoints. On cancellation the result is
// nil and ctx's error is returned; a nil or non-cancellable ctx makes
// the checkpoints free and the error always nil.
func JoinMatchCtx(ctx context.Context, g *graph.Graph, q *Query, opts Options) (*Result, error) {
	if q.NumEdges() == 0 {
		// Degenerate pattern: only node conditions; the answer has no edge
		// sets, so it is empty unless we report node matches — the paper
		// defines answers per edge, so an edgeless pattern yields the
		// empty answer.
		return &Result{}, nil
	}
	useMatrix := opts.Matrix != nil
	nq, chains, ok := normalize(g, q, useMatrix)
	if !ok {
		return &Result{}, nil
	}
	s, release := opts.scratch()
	defer release()
	unbind := s.BindContext(ctx)
	defer unbind()
	var ck checker
	if useMatrix {
		ck = &matrixChecker{mx: opts.Matrix, edges: nq.edges, s: s}
	} else {
		ck = &searchChecker{g: g, be: opts.distBackend(), chains: chains, scratch: s}
	}
	mats := initialMats(g, nq, opts.Cands)
	if mats == nil {
		return &Result{}, nil
	}
	if !refine(g, nq, ck, mats, opts.DisableTopoOrder, s) {
		if s.Canceled() {
			return nil, ctx.Err()
		}
		return &Result{}, nil
	}
	res := collect(g, q, nq, chains, mats, opts, s)
	if s.Canceled() {
		return nil, ctx.Err()
	}
	return res, nil
}

// initialMats computes mat(u) = {x | x matches fv(u)} as bitsets; nil if
// some edge-incident pattern node has no candidates at all. Isolated
// pattern nodes do not influence the answer (the answer is defined per
// edge; the paper assumes connected patterns and its minimization drops
// isolated nodes), so their emptiness is not fatal. Non-trivial
// predicates seed through cs when non-nil instead of the per-node scan.
func initialMats(g *graph.Graph, nq *normQuery, cs reach.CandidateSource) [][]bool {
	n := g.NumNodes()
	mats := make([][]bool, len(nq.preds))
	for u, p := range nq.preds {
		m := make([]bool, n)
		any := false
		if nq.orig[u] < 0 {
			// Dummy node: no predicate, but a witness at this chain
			// position must have an incoming edge of the preceding atom's
			// color and an outgoing edge of the following atom's color.
			hasIn := func(v graph.NodeID) bool {
				if c := nq.dummyIn[u]; c != graph.AnyColor {
					return len(g.Pred(v, c)) > 0
				}
				return len(g.In(v)) > 0
			}
			hasOut := func(v graph.NodeID) bool {
				if c := nq.dummyOut[u]; c != graph.AnyColor {
					return len(g.Succ(v, c)) > 0
				}
				return len(g.Out(v)) > 0
			}
			for v := 0; v < n; v++ {
				if hasIn(graph.NodeID(v)) && hasOut(graph.NodeID(v)) {
					m[v] = true
					any = true
				}
			}
		} else if p.IsTrue() {
			for v := range m {
				m[v] = true
			}
			any = n > 0
		} else if cs != nil {
			for _, v := range cs.Candidates(p) {
				m[v] = true
				any = true
			}
		} else {
			for v := 0; v < n; v++ {
				if p.Eval(g.Attrs(graph.NodeID(v))) {
					m[v] = true
					any = true
				}
			}
		}
		if !any && (len(nq.out[u]) > 0 || len(nq.in[u]) > 0) {
			return nil
		}
		mats[u] = m
	}
	return mats
}

// refine runs the fixpoint of Fig. 7 (lines 6-14): components of the
// pattern in reverse topological order; within each component, every edge
// whose target lost matches re-triggers its sources. Returns false when
// some match set empties — or when the context bound to s is cancelled,
// which callers distinguish via s.Canceled().
func refine(g *graph.Graph, nq *normQuery, ck checker, mats [][]bool, noOrder bool, s *dist.Scratch) bool {
	var comps [][]int
	if noOrder {
		// Ablation mode: one flat "component" holding every node, i.e. a
		// plain chaotic fixpoint without the reverse topological sweep.
		all := make([]int, len(nq.preds))
		for i := range all {
			all[i] = i
		}
		comps = [][]int{all}
	} else {
		comps = graph.SCC(len(nq.preds), func(u int) []int {
			succs := make([]int, 0, len(nq.out[u]))
			for _, ei := range nq.out[u] {
				succs = append(succs, nq.edges[ei].to)
			}
			return succs
		})
	}
	// Process components in the order SCC returned them (reverse
	// topological: every successor of a component comes earlier, so its
	// match sets are already final when the component is processed — the
	// DAG part of the pattern needs a single bottom-up sweep, and only
	// cyclic components iterate). Refinement in any order converges to the
	// same maximum fixpoint; the order matters for work, not correctness.
	queued := make([]bool, len(nq.edges))
	for _, comp := range comps {
		var queue []int
		for _, u := range comp {
			for _, ei := range nq.in[u] {
				if !queued[ei] {
					queue = append(queue, ei)
					queued[ei] = true
				}
			}
		}
		for len(queue) > 0 {
			if s.Canceled() {
				return false
			}
			ei := queue[0]
			queue = queue[1:]
			queued[ei] = false
			e := nq.edges[ei]
			changed, nonEmpty := ck.refineSrc(ei, mats[e.from], mats[e.to])
			if changed && !nonEmpty {
				return false
			}
			if changed {
				// The source node shrank; its own incoming edges must be
				// re-checked (their sources may lose matches in turn).
				for _, ei2 := range nq.in[e.from] {
					if !queued[ei2] {
						queue = append(queue, ei2)
						queued[ei2] = true
					}
				}
			}
		}
	}
	return true
}

// collect builds the final Se sets (Fig. 7 lines 15-17) from the match
// sets of the original nodes. On cancellation (observed through s's
// binding) the partial result is meaningless; callers must check
// s.Canceled() before using it.
func collect(g *graph.Graph, q *Query, nq *normQuery, chains [][]dist.CAtom, mats [][]bool, opts Options, s *dist.Scratch) *Result {
	res := &Result{q: q, Sets: make([][]reach.Pair, q.NumEdges())}
	for ei := 0; ei < q.NumEdges(); ei++ {
		e := q.Edge(ei)
		from := mats[nq.ofNode[e.From]]
		to := mats[nq.ofNode[e.To]]
		atoms := chains[ei]
		var pairs []reach.Pair
		if len(atoms) == 1 {
			a := atoms[0]
			seen := 0
			for x := range from {
				if !from[x] {
					continue
				}
				seen++
				if seen&255 == 0 && s.Canceled() {
					return &Result{}
				}
				for y := range to {
					if !to[y] {
						continue
					}
					sat := false
					if opts.Matrix != nil {
						sat = a.SatMatrix(opts.Matrix, graph.NodeID(x), graph.NodeID(y))
					} else if be := opts.distBackend(); be != nil {
						sat = a.Sat(be.DistScratch(a.Color, graph.NodeID(x), graph.NodeID(y), s))
					} else {
						sat = a.Sat(dist.BiDistScratch(g, a.Color, graph.NodeID(x), graph.NodeID(y), s))
					}
					if sat {
						pairs = append(pairs, reach.Pair{From: graph.NodeID(x), To: graph.NodeID(y)})
					}
				}
			}
		} else {
			// Multi-atom edge: one backward closure from the target set
			// per source candidate would be wasteful; instead compute the
			// forward closure per source and intersect with targets.
			seed := s.Seed(g.NumNodes())
			for x := range from {
				if !from[x] {
					continue
				}
				seed[x] = true
				fc := dist.ForwardClosureScratch(g, seed, atoms, s)
				seed[x] = false
				if s.Canceled() {
					return &Result{}
				}
				for y := range to {
					if to[y] && fc[y] {
						pairs = append(pairs, reach.Pair{From: graph.NodeID(x), To: graph.NodeID(y)})
					}
				}
			}
		}
		if len(pairs) == 0 {
			return &Result{}
		}
		res.Sets[ei] = pairs
	}
	return res
}
