// Package pattern implements the paper's graph pattern queries (PQs,
// Section 2) and the two cubic-time evaluation algorithms of Section 5:
// the join-based JoinMatch (Fig. 7) and the split-based SplitMatch
// (Fig. 8).
//
// A PQ is a directed pattern graph Qp = (Vp, Ep, fv, fe): every node
// carries a search predicate and every edge a subclass-F regular
// expression, so that each edge is a reachability query. Matching is the
// paper's revised graph simulation: the answer Qp(G) is the unique maximum
// set {(e, Se)} such that every pair in Se satisfies its edge's RQ and
// every matched node can extend along all outgoing pattern edges
// (Proposition 2.1). If any edge's set is empty the whole answer is empty.
package pattern

import (
	"fmt"
	"sort"
	"strings"

	"regraph/internal/graph"
	"regraph/internal/predicate"
	"regraph/internal/reach"
	"regraph/internal/rex"
)

// Node is a pattern node: a name (for readable output) and the search
// predicate fv(u).
type Node struct {
	Name string
	Pred predicate.Pred
}

// Edge is a pattern edge (u, u') with its regular expression fe(e).
type Edge struct {
	From, To int
	Expr     rex.Expr
}

// Query is a graph pattern query. Build queries with New, AddNode and
// AddEdge; the zero value is an empty pattern.
type Query struct {
	nodes  []Node
	byName map[string]int
	edges  []Edge
	out    [][]int // outgoing edge indices per node
	in     [][]int // incoming edge indices per node
}

// New returns an empty pattern query.
func New() *Query {
	return &Query{byName: map[string]int{}}
}

// AddNode adds a pattern node and returns its index. Adding an existing
// name returns the existing index with the predicate left unchanged.
func (q *Query) AddNode(name string, pred predicate.Pred) int {
	if id, ok := q.byName[name]; ok {
		return id
	}
	id := len(q.nodes)
	q.nodes = append(q.nodes, Node{Name: name, Pred: pred})
	q.byName[name] = id
	q.out = append(q.out, nil)
	q.in = append(q.in, nil)
	return id
}

// AddEdge adds a pattern edge between existing node indices.
func (q *Query) AddEdge(from, to int, expr rex.Expr) int {
	if from < 0 || from >= len(q.nodes) || to < 0 || to >= len(q.nodes) {
		panic(fmt.Sprintf("pattern: AddEdge(%d, %d) out of range (n=%d)", from, to, len(q.nodes)))
	}
	id := len(q.edges)
	q.edges = append(q.edges, Edge{From: from, To: to, Expr: expr})
	q.out[from] = append(q.out[from], id)
	q.in[to] = append(q.in[to], id)
	return id
}

// AddEdgeByName adds an edge between named nodes, creating missing nodes
// with the always-true predicate.
func (q *Query) AddEdgeByName(from, to string, expr rex.Expr) int {
	f, ok := q.byName[from]
	if !ok {
		f = q.AddNode(from, predicate.Pred{})
	}
	t, ok := q.byName[to]
	if !ok {
		t = q.AddNode(to, predicate.Pred{})
	}
	return q.AddEdge(f, t, expr)
}

// NumNodes returns |Vp|.
func (q *Query) NumNodes() int { return len(q.nodes) }

// NumEdges returns |Ep|.
func (q *Query) NumEdges() int { return len(q.edges) }

// Size returns |Vp| + |Ep|, the paper's query size metric.
func (q *Query) Size() int { return len(q.nodes) + len(q.edges) }

// Node returns the i-th pattern node.
func (q *Query) Node(i int) Node { return q.nodes[i] }

// NodeIndex returns the index of a named node.
func (q *Query) NodeIndex(name string) (int, bool) {
	id, ok := q.byName[name]
	return id, ok
}

// Edge returns the i-th pattern edge.
func (q *Query) Edge(i int) Edge { return q.edges[i] }

// Out returns the indices of edges leaving node u.
func (q *Query) Out(u int) []int { return q.out[u] }

// In returns the indices of edges entering node u.
func (q *Query) In(u int) []int { return q.in[u] }

// Clone returns a deep copy of the query.
func (q *Query) Clone() *Query {
	c := New()
	for _, n := range q.nodes {
		c.AddNode(n.Name, n.Pred)
	}
	for _, e := range q.edges {
		c.AddEdge(e.From, e.To, e.Expr)
	}
	return c
}

// String renders the pattern, one edge per line.
func (q *Query) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "PQ{%d nodes, %d edges}", len(q.nodes), len(q.edges))
	for _, e := range q.edges {
		fmt.Fprintf(&b, "\n  %s[%s] --%s--> %s[%s]",
			q.nodes[e.From].Name, q.nodes[e.From].Pred, e.Expr,
			q.nodes[e.To].Name, q.nodes[e.To].Pred)
	}
	return b.String()
}

// AsRQ converts a two-node, one-edge pattern into the equivalent
// reachability query (RQs are the special case of PQs noted in Section 2).
func (q *Query) AsRQ() (reach.Query, bool) {
	if len(q.nodes) != 2 || len(q.edges) != 1 {
		return reach.Query{}, false
	}
	e := q.edges[0]
	return reach.New(q.nodes[e.From].Pred, q.nodes[e.To].Pred, e.Expr), true
}

// ---- results --------------------------------------------------------------

// Result is a query answer: for every pattern edge e, the set Se of
// matching data-node pairs. The zero value is the empty answer.
type Result struct {
	q    *Query
	Sets [][]reach.Pair // indexed by edge; nil for the empty answer
}

// Empty reports whether the answer is the empty set (some edge had no
// matches, condition (3) of the PQ semantics).
func (r *Result) Empty() bool { return r == nil || r.Sets == nil }

// Size returns the paper's answer-size metric, the total number of pairs
// across all edges.
func (r *Result) Size() int {
	if r.Empty() {
		return 0
	}
	total := 0
	for _, s := range r.Sets {
		total += len(s)
	}
	return total
}

// EdgePairs returns Se for the i-th pattern edge.
func (r *Result) EdgePairs(i int) []reach.Pair {
	if r.Empty() {
		return nil
	}
	return r.Sets[i]
}

// MatchSet returns the data nodes matched to pattern node u (the relation
// R ⊆ Vp × V of the semantics, projected on u), in ID order.
func (r *Result) MatchSet(u int) []graph.NodeID {
	if r.Empty() {
		return nil
	}
	set := map[graph.NodeID]bool{}
	for ei, pairs := range r.Sets {
		e := r.q.Edge(ei)
		for _, p := range pairs {
			if e.From == u {
				set[p.From] = true
			}
			if e.To == u {
				set[p.To] = true
			}
		}
	}
	out := make([]graph.NodeID, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String renders the answer grouped by edge, with node names, in a
// deterministic order.
func (r *Result) String(g *graph.Graph) string {
	if r.Empty() {
		return "{}"
	}
	var b strings.Builder
	for ei, pairs := range r.Sets {
		e := r.q.Edge(ei)
		fmt.Fprintf(&b, "(%s,%s): {", r.q.Node(e.From).Name, r.q.Node(e.To).Name)
		ss := make([]string, len(pairs))
		for i, p := range pairs {
			ss[i] = "(" + g.Node(p.From).Name + "," + g.Node(p.To).Name + ")"
		}
		sort.Strings(ss)
		b.WriteString(strings.Join(ss, ", "))
		b.WriteString("}\n")
	}
	return b.String()
}

// Equal reports whether two results contain exactly the same pair sets.
func (r *Result) Equal(other *Result) bool {
	if r.Empty() || other.Empty() {
		return r.Empty() && other.Empty()
	}
	if len(r.Sets) != len(other.Sets) {
		return false
	}
	for i := range r.Sets {
		if len(r.Sets[i]) != len(other.Sets[i]) {
			return false
		}
		a := append([]reach.Pair(nil), r.Sets[i]...)
		b := append([]reach.Pair(nil), other.Sets[i]...)
		sortPairs(a)
		sortPairs(b)
		for j := range a {
			if a[j] != b[j] {
				return false
			}
		}
	}
	return true
}

func sortPairs(ps []reach.Pair) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].From != ps[j].From {
			return ps[i].From < ps[j].From
		}
		return ps[i].To < ps[j].To
	})
}
