package pattern

import (
	"fmt"

	"regraph/internal/dist"
	"regraph/internal/graph"
	"regraph/internal/rex"
)

// Incremental maintains the answer of one pattern query over a mutable
// data graph — the paper's main future-work item ("in practice data
// graphs are frequently modified, and it is too costly to re-evaluate PQs
// in cubic time ... every time the graphs are updated", Section 7).
//
// The engine exploits the monotonicity of the revised simulation:
//
//   - Deleting an edge can only *shrink* match sets, and the previous
//     answer is a valid starting point: re-running the refinement loop
//     from the current match sets computes the exact new fixpoint without
//     rebuilding candidates (semi-naive maintenance).
//   - Inserting an edge can only *grow* match sets. Edges whose color
//     appears in no pattern expression (and with no wildcard atoms) are
//     no-ops. Otherwise, for DAG patterns whose atoms are all bounded,
//     only nodes that can reach the new edge's source within
//     |Vp| × maxBound hops can change status, so candidates are re-seeded
//     only inside that region (merged with the old answer, which remains
//     a post-fixpoint). Cyclic patterns or unbounded atoms fall back to
//     full re-refinement from fresh candidates.
//   - Inserting an isolated node can only introduce matches at pattern
//     nodes without outgoing edges; no propagation is needed until edges
//     attach it.
//
// The engine evaluates in runtime-search mode (no distance matrix or
// cache, which graph mutations would invalidate).
type Incremental struct {
	g      *graph.Graph
	q      *Query
	nq     *normQuery
	chains [][]dist.CAtom
	ck     *searchChecker
	mats   [][]bool // nil when the current answer is empty
	// relevantColors[c] reports whether color c occurs in some chain;
	// anyWildcard is set when some atom is the wildcard.
	relevantColors map[graph.ColorID]bool
	anyWildcard    bool
	dagBounded     bool
	radius         int // insertion locality radius when dagBounded
}

// NewIncremental evaluates the query once and returns a maintenance
// engine. The graph must only be mutated through the engine's methods
// (or re-synced with Refresh).
func NewIncremental(g *graph.Graph, q *Query) (*Incremental, error) {
	if q.NumEdges() == 0 {
		return nil, fmt.Errorf("pattern: incremental maintenance needs a pattern with edges")
	}
	nq, chains, ok := normalize(g, q, false)
	if !ok {
		return nil, fmt.Errorf("pattern: expression mentions a color absent from the graph")
	}
	inc := &Incremental{
		g:      g,
		q:      q,
		nq:     nq,
		chains: chains,
		// The engine is single-owner, so it keeps a private arena alive
		// for all its re-refinements instead of borrowing per call.
		ck: &searchChecker{g: g, chains: chains, scratch: dist.NewScratch()},
	}
	inc.analyze()
	inc.full()
	return inc, nil
}

// analyze precomputes color relevance and the insertion locality radius.
func (inc *Incremental) analyze() {
	inc.relevantColors = map[graph.ColorID]bool{}
	maxBound := 0
	allBounded := true
	for _, chain := range inc.chains {
		for _, a := range chain {
			if a.Color == graph.AnyColor {
				inc.anyWildcard = true
			} else {
				inc.relevantColors[a.Color] = true
			}
			if a.Max == rex.Unbounded {
				allBounded = false
			} else if a.Max > maxBound {
				maxBound = a.Max
			}
		}
	}
	// DAG check on the pattern (a cycle lets new matches propagate
	// through unboundedly long dependency chains).
	comps := graph.SCC(inc.q.NumNodes(), func(u int) []int {
		var ss []int
		for _, ei := range inc.q.Out(u) {
			ss = append(ss, inc.q.Edge(ei).To)
		}
		return ss
	})
	isDAG := true
	for _, c := range comps {
		if len(c) > 1 {
			isDAG = false
			break
		}
	}
	for u := 0; u < inc.q.NumNodes(); u++ { // self-loops are cycles too
		for _, ei := range inc.q.Out(u) {
			if inc.q.Edge(ei).To == u {
				isDAG = false
			}
		}
	}
	inc.dagBounded = isDAG && allBounded
	// Longest chain of edges in the pattern is at most |Vp|; each
	// dependency step covers at most the longest expression, which is
	// bounded by len(chain) * maxBound per edge.
	longest := 0
	for _, chain := range inc.chains {
		if l := len(chain) * maxBound; l > longest {
			longest = l
		}
	}
	inc.radius = inc.q.NumNodes() * longest
}

// full recomputes the answer from fresh candidates, by linear scan
// deliberately: every full() here follows a mutation, and a mutation
// invalidates the attribute inverted index, so seeding through a
// candidx.Memo would rebuild the whole index per mutation — the
// mutate-between-every-query regime is exactly where DESIGN.md §7.3
// says the scan wins. Callers wanting indexed seeding on a *static*
// graph evaluate through JoinMatch with Options.Cands instead.
func (inc *Incremental) full() {
	mats := initialMats(inc.g, inc.nq, nil)
	if mats == nil || !refine(inc.g, inc.nq, inc.ck, mats, false, inc.ck.scratch) {
		inc.mats = nil
		return
	}
	inc.mats = mats
}

// Result returns the current answer (pairs are collected on each call;
// match-set maintenance is the incremental part).
func (inc *Incremental) Result() *Result {
	if inc.mats == nil {
		return &Result{}
	}
	// collect may discover an edge with no pairs (global emptiness).
	s := dist.GetScratch()
	defer dist.PutScratch(s)
	return collect(inc.g, inc.q, inc.nq, inc.chains, inc.mats, Options{}, s)
}

// MatchSet returns the current match set of a pattern node as node IDs.
func (inc *Incremental) MatchSet(u int) []graph.NodeID {
	if inc.mats == nil {
		return nil
	}
	var out []graph.NodeID
	for v, in := range inc.mats[inc.nq.ofNode[u]] {
		if in {
			out = append(out, graph.NodeID(v))
		}
	}
	return out
}

// relevant reports whether an edge of this color can influence the
// answer at all.
func (inc *Incremental) relevant(color string) bool {
	if inc.anyWildcard {
		return true
	}
	c, ok := inc.g.ColorID(color)
	if !ok || c == graph.AnyColor {
		return inc.anyWildcard
	}
	return inc.relevantColors[c]
}

// InsertEdge adds a data edge and updates the answer.
func (inc *Incremental) InsertEdge(from, to graph.NodeID, color string) {
	known := false
	if _, ok := inc.g.ColorID(color); ok {
		known = true
	}
	inc.g.AddEdge(from, to, color)
	if known && !inc.relevant(color) {
		return // the new edge cannot appear on any witness path
	}
	if !known {
		// A brand-new color: only wildcard atoms can use it.
		if !inc.anyWildcard {
			return
		}
	}
	if inc.mats == nil || !inc.dagBounded {
		// Empty previous answer (anything may now match) or unbounded
		// propagation: recompute from fresh candidates.
		inc.full()
		return
	}
	// Locality: only nodes that can reach the new edge's source within
	// the dependency radius may change status. Merge the affected
	// candidates into the current (post-fixpoint) match sets and refine.
	region := inc.backwardBall(from)
	region[int(from)] = true
	changedAny := false
	for u := range inc.nq.preds {
		pred := inc.nq.preds[u]
		m := inc.mats[u]
		for v := range region {
			if !region[v] || m[v] {
				continue
			}
			if pred.IsTrue() || pred.Eval(inc.g.Attrs(graph.NodeID(v))) {
				m[v] = true
				changedAny = true
			}
		}
	}
	if !changedAny {
		return
	}
	if !refine(inc.g, inc.nq, inc.ck, inc.mats, false, inc.ck.scratch) {
		inc.mats = nil
	}
}

// backwardBall returns the set of nodes with a path *to* src of length at
// most the dependency radius (any colors).
func (inc *Incremental) backwardBall(src graph.NodeID) []bool {
	n := inc.g.NumNodes()
	seen := make([]bool, n)
	seen[src] = true
	frontier := []graph.NodeID{src}
	for d := 0; d < inc.radius && len(frontier) > 0; d++ {
		var next []graph.NodeID
		for _, v := range frontier {
			for _, w := range inc.g.Pred(v, graph.AnyColor) {
				if !seen[w] {
					seen[w] = true
					next = append(next, w)
				}
			}
		}
		frontier = next
	}
	return seen
}

// DeleteEdge removes a data edge and updates the answer. Deletion only
// shrinks match sets, so the previous answer seeds the refinement
// (semi-naive maintenance — no candidate rebuild).
func (inc *Incremental) DeleteEdge(from, to graph.NodeID, color string) error {
	if !inc.g.RemoveEdge(from, to, color) {
		return fmt.Errorf("pattern: no %s edge from %d to %d", color, from, to)
	}
	if inc.mats == nil || !inc.relevant(color) {
		return nil
	}
	if !refine(inc.g, inc.nq, inc.ck, inc.mats, false, inc.ck.scratch) {
		inc.mats = nil
	}
	return nil
}

// InsertNode adds an isolated data node. It can only match pattern nodes
// without outgoing edges (it has no paths yet); attaching edges later
// through InsertEdge propagates further effects.
func (inc *Incremental) InsertNode(name string, attrs map[string]string) graph.NodeID {
	id := inc.g.AddNode(name, attrs)
	if inc.mats == nil {
		// The answer was empty; the new node may unblock a pattern node
		// with no candidates.
		inc.full()
		return id
	}
	for u := range inc.nq.preds {
		grown := append(inc.mats[u], false)
		if len(inc.nq.out[u]) == 0 {
			p := inc.nq.preds[u]
			grown[id] = p.IsTrue() || p.Eval(inc.g.Attrs(id))
		}
		inc.mats[u] = grown
	}
	return id
}

// Refresh recomputes the answer from scratch; call it if the graph was
// mutated outside the engine.
func (inc *Incremental) Refresh() { inc.full() }
