package pattern_test

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"regraph/internal/dist"
	"regraph/internal/gen"
	"regraph/internal/pattern"
)

// TestMatchCtx: with a live context both Ctx evaluators agree with
// their plain forms; with a dead one they return the context's error —
// in matrix mode and in runtime-search mode.
func TestMatchCtx(t *testing.T) {
	g := gen.Synthetic(6, 200, 800, 3, gen.DefaultColors)
	mx := dist.NewMatrix(g)
	ca := dist.NewCache(g, 1<<12)
	r := rand.New(rand.NewSource(9))
	dead, cancel := context.WithCancel(context.Background())
	cancel()

	for i := 0; i < 10; i++ {
		q := gen.Query(g, gen.Spec{Nodes: 3, Edges: 3, Preds: 2, Bound: 3, Colors: 2}, r)
		for name, opts := range map[string]pattern.Options{
			"matrix": {Matrix: mx},
			"search": {Cache: ca},
		} {
			want := pattern.JoinMatch(g, q, opts)
			got, err := pattern.JoinMatchCtx(context.Background(), g, q, opts)
			if err != nil {
				t.Fatalf("%s: JoinMatchCtx: %v", name, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: JoinMatchCtx differs from JoinMatch (query %d)", name, i)
			}
			wantS := pattern.SplitMatch(g, q, opts)
			gotS, err := pattern.SplitMatchCtx(context.Background(), g, q, opts)
			if err != nil {
				t.Fatalf("%s: SplitMatchCtx: %v", name, err)
			}
			if !reflect.DeepEqual(gotS, wantS) {
				t.Fatalf("%s: SplitMatchCtx differs from SplitMatch (query %d)", name, i)
			}

			if res, err := pattern.JoinMatchCtx(dead, g, q, opts); err != context.Canceled || res != nil {
				t.Fatalf("%s: dead JoinMatchCtx: res=%v err=%v", name, res, err)
			}
			if res, err := pattern.SplitMatchCtx(dead, g, q, opts); err != context.Canceled || res != nil {
				t.Fatalf("%s: dead SplitMatchCtx: res=%v err=%v", name, res, err)
			}
		}
	}
}
