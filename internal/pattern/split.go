package pattern

import (
	"context"

	"regraph/internal/graph"
)

// SplitMatch evaluates the pattern with the split-based algorithm of
// Section 5.2 (Fig. 8), the partition-refinement approach borrowed from
// labeled-transition-system verification. Data nodes are grouped into
// blocks; a partition-relation pair <par, rel> maps every pattern node to
// the set of blocks whose union is its current match set. Each iteration
// picks an edge whose rmv set (sources that lost all valid successors) is
// non-empty, splits every block of par against that set, drops the removed
// blocks from the source's rel, and propagates new rmv sets to incoming
// edges. The fixpoint is the same maximum match relation JoinMatch
// computes; the block structure shares refinement work between pattern
// nodes with overlapping match sets.
func SplitMatch(g *graph.Graph, q *Query, opts Options) *Result {
	res, _ := SplitMatchCtx(nil, g, q, opts)
	return res
}

// SplitMatchCtx is SplitMatch with cancellation, under the same contract
// as JoinMatchCtx: checkpoints in the partition-refinement worklist loop
// and in every search primitive below it; nil result and ctx's error on
// cancellation.
func SplitMatchCtx(ctx context.Context, g *graph.Graph, q *Query, opts Options) (*Result, error) {
	if q.NumEdges() == 0 {
		return &Result{}, nil
	}
	useMatrix := opts.Matrix != nil
	nq, chains, ok := normalize(g, q, useMatrix)
	if !ok {
		return &Result{}, nil
	}
	s, release := opts.scratch()
	defer release()
	unbind := s.BindContext(ctx)
	defer unbind()
	var ck checker
	if useMatrix {
		ck = &matrixChecker{mx: opts.Matrix, edges: nq.edges, s: s}
	} else {
		ck = &searchChecker{g: g, be: opts.distBackend(), chains: chains, scratch: s}
	}
	mats := initialMats(g, nq, opts.Cands)
	if mats == nil {
		return &Result{}, nil
	}
	st := newSplitState(g.NumNodes(), nq, mats)

	// Seed the worklist with every edge (Fig. 8 line 7 computes rmv for
	// all edges up front).
	queue := make([]int, 0, len(nq.edges))
	queued := make([]bool, len(nq.edges))
	for ei := range nq.edges {
		queue = append(queue, ei)
		queued[ei] = true
	}
	for len(queue) > 0 {
		if s.Canceled() {
			return nil, ctx.Err()
		}
		ei := queue[0]
		queue = queue[1:]
		queued[ei] = false
		e := nq.edges[ei]
		// rmv(e): sources in mat(u') with no satisfying successor in
		// mat(u). Computed against a scratch copy so the split machinery
		// owns the actual removal.
		work := s.Bitset(len(mats[e.from]))
		copy(work, mats[e.from])
		changed, nonEmpty := ck.refineSrc(ei, work, mats[e.to])
		if !changed {
			s.Recycle(work)
			continue
		}
		if !nonEmpty {
			s.Recycle(work)
			if s.Canceled() {
				return nil, ctx.Err()
			}
			return &Result{}, nil
		}
		rmv := s.Bitset(len(work))
		for v := range work {
			rmv[v] = mats[e.from][v] && !work[v]
		}
		// Split every block of par against rmv, then drop the rmv-side
		// blocks from rel(u') — which updates mat(u') (Fig. 8 lines 10-11).
		st.split(rmv)
		st.dropFromRel(e.from, rmv, mats)
		s.Recycle(work)
		s.Recycle(rmv)
		// Propagate: edges into u' must recompute their rmv sets
		// (Fig. 8 lines 12-14).
		for _, ei2 := range nq.in[e.from] {
			if !queued[ei2] {
				queue = append(queue, ei2)
				queued[ei2] = true
			}
		}
	}
	res := collect(g, q, nq, chains, mats, opts, s)
	if s.Canceled() {
		return nil, ctx.Err()
	}
	return res, nil
}

// splitState is the partition-relation pair <par, rel>: a partition of the
// data nodes into blocks, plus, per pattern node, the set of block IDs
// whose union is its match set.
type splitState struct {
	blockOf []int   // data node -> current block id
	members [][]int // block id -> member data nodes
	rel     []map[int]bool
}

// newSplitState builds the initial partition. Blocks group data nodes by
// their signature — the set of pattern nodes whose initial match set
// contains them — which generalizes the paper's B(u) initialization to
// overlapping match sets while keeping par a true partition.
func newSplitState(n int, nq *normQuery, mats [][]bool) *splitState {
	st := &splitState{
		blockOf: make([]int, n),
		rel:     make([]map[int]bool, len(nq.preds)),
	}
	sigBlock := map[string]int{}
	sig := make([]byte, len(nq.preds))
	for v := 0; v < n; v++ {
		for u := range nq.preds {
			if mats[u][v] {
				sig[u] = '1'
			} else {
				sig[u] = '0'
			}
		}
		key := string(sig)
		b, ok := sigBlock[key]
		if !ok {
			b = len(st.members)
			sigBlock[key] = b
			st.members = append(st.members, nil)
		}
		st.blockOf[v] = b
		st.members[b] = append(st.members[b], v)
	}
	for u := range nq.preds {
		st.rel[u] = map[int]bool{}
		for v := 0; v < n; v++ {
			if mats[u][v] {
				st.rel[u][st.blockOf[v]] = true
			}
		}
	}
	return st
}

// split refines the partition against a node set: every block B becomes
// B ∩ set and B \ set (the Split procedure of Fig. 8). New blocks inherit
// the rel memberships of their parent.
func (st *splitState) split(set []bool) {
	touched := map[int]bool{}
	for v, in := range set {
		if in {
			touched[st.blockOf[v]] = true
		}
	}
	for b := range touched {
		var inside, outside []int
		for _, v := range st.members[b] {
			if set[v] {
				inside = append(inside, v)
			} else {
				outside = append(outside, v)
			}
		}
		if len(inside) == 0 || len(outside) == 0 {
			continue // block not actually split
		}
		nb := len(st.members)
		st.members = append(st.members, inside)
		st.members[b] = outside
		for _, v := range inside {
			st.blockOf[v] = nb
		}
		for u := range st.rel {
			if st.rel[u][b] {
				st.rel[u][nb] = true
			}
		}
	}
}

// dropFromRel removes from pattern node u's rel every block contained in
// set (after split, blocks are either inside or outside set), and clears
// the corresponding bits of u's match set.
func (st *splitState) dropFromRel(u int, set []bool, mats [][]bool) {
	for b := range st.rel[u] {
		m := st.members[b]
		if len(m) > 0 && set[m[0]] {
			delete(st.rel[u], b)
			for _, v := range m {
				mats[u][v] = false
			}
		}
	}
}
