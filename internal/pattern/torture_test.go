package pattern_test

import (
	"fmt"
	"testing"

	"regraph/internal/dist"
	"regraph/internal/graph"
	"regraph/internal/pattern"
	"regraph/internal/predicate"
	"regraph/internal/rex"
)

// Adversarial inputs: shapes that stress corner cases of the evaluators
// rather than average behaviour. Every case must agree across all four
// configurations (plus the plain search mode).

func allConfigs(g *graph.Graph, q *pattern.Query) map[string]*pattern.Result {
	mx := dist.NewMatrix(g)
	ca := dist.NewCache(g, 256)
	return map[string]*pattern.Result{
		"JoinMatchM":  pattern.JoinMatch(g, q, pattern.Options{Matrix: mx}),
		"JoinMatchC":  pattern.JoinMatch(g, q, pattern.Options{Cache: ca}),
		"JoinPlain":   pattern.JoinMatch(g, q, pattern.Options{}),
		"JoinNoTopo":  pattern.JoinMatch(g, q, pattern.Options{Matrix: mx, DisableTopoOrder: true}),
		"SplitMatchM": pattern.SplitMatch(g, q, pattern.Options{Matrix: mx}),
		"SplitMatchC": pattern.SplitMatch(g, q, pattern.Options{Cache: ca}),
	}
}

func assertAgree(t *testing.T, g *graph.Graph, q *pattern.Query) *pattern.Result {
	t.Helper()
	res := allConfigs(g, q)
	ref := res["JoinMatchM"]
	for name, r := range res {
		if !r.Equal(ref) {
			t.Fatalf("%s disagrees:\n%s\nvs JoinMatchM\n%s\npattern %v", name, r.String(g), ref.String(g), q)
		}
	}
	return ref
}

// TestTortureSelfLoopsEverywhere: a clique of self-loops and a pattern of
// self-loops; every node must match.
func TestTortureSelfLoopsEverywhere(t *testing.T) {
	g := graph.New()
	for i := 0; i < 6; i++ {
		id := g.AddNode(fmt.Sprintf("n%d", i), map[string]string{"t": "x"})
		g.AddEdge(id, id, "loop")
	}
	q := pattern.New()
	u := q.AddNode("U", predicate.MustParse("t = x"))
	q.AddEdge(u, u, rex.MustParse("loop+"))
	res := assertAgree(t, g, q)
	if len(res.MatchSet(u)) != 6 {
		t.Errorf("mat(U) = %d nodes, want all 6", len(res.MatchSet(u)))
	}
}

// TestTortureParallelContradiction: two parallel pattern edges whose
// expressions can never both be satisfied by any node pair still admit
// matches via *different* witnesses (simulation is per-edge existential).
func TestTortureParallelContradiction(t *testing.T) {
	g := graph.New()
	a := g.AddNode("a", map[string]string{"t": "s"})
	b1 := g.AddNode("b1", map[string]string{"t": "d"})
	b2 := g.AddNode("b2", map[string]string{"t": "d"})
	g.AddEdge(a, b1, "x")
	g.AddEdge(a, b2, "y")
	q := pattern.New()
	u := q.AddNode("U", predicate.MustParse("t = s"))
	w := q.AddNode("W", predicate.MustParse("t = d"))
	q.AddEdge(u, w, rex.MustParse("x"))
	q.AddEdge(u, w, rex.MustParse("y"))
	res := assertAgree(t, g, q)
	if res.Empty() {
		t.Fatal("distinct witnesses should satisfy both parallel edges")
	}
	// Edge 0 (x) matches only (a,b1); edge 1 (y) only (a,b2).
	if len(res.EdgePairs(0)) != 1 || len(res.EdgePairs(1)) != 1 {
		t.Errorf("pairs: %v / %v", res.EdgePairs(0), res.EdgePairs(1))
	}
}

// TestTortureBoundsBeyondDiameter: bounds far larger than the graph
// diameter behave like unbounded.
func TestTortureBoundsBeyondDiameter(t *testing.T) {
	g := graph.New()
	prev := g.AddNode("n0", map[string]string{"t": "0"})
	for i := 1; i < 5; i++ {
		next := g.AddNode(fmt.Sprintf("n%d", i), map[string]string{"t": fmt.Sprint(i)})
		g.AddEdge(prev, next, "e")
		prev = next
	}
	q := pattern.New()
	u := q.AddNode("U", predicate.MustParse("t = 0"))
	w := q.AddNode("W", predicate.MustParse("t = 4"))
	q.AddEdge(u, w, rex.MustParse("e{10000}"))
	res := assertAgree(t, g, q)
	if res.Empty() {
		t.Fatal("giant bound should still match the 4-hop chain")
	}
	q2 := pattern.New()
	u2 := q2.AddNode("U", predicate.MustParse("t = 0"))
	w2 := q2.AddNode("W", predicate.MustParse("t = 4"))
	q2.AddEdge(u2, w2, rex.MustParse("e+"))
	res2 := assertAgree(t, g, q2)
	if !res.Equal(res2) {
		t.Error("e{10000} and e+ should coincide on a 5-node chain")
	}
}

// TestTorturePatternLargerThanGraph: more pattern nodes than data nodes
// is fine under simulation (no injectivity).
func TestTorturePatternLargerThanGraph(t *testing.T) {
	g := graph.New()
	a := g.AddNode("a", map[string]string{"t": "x"})
	g.AddEdge(a, a, "e")
	q := pattern.New()
	prev := q.AddNode("U0", predicate.MustParse("t = x"))
	for i := 1; i < 7; i++ {
		next := q.AddNode(fmt.Sprintf("U%d", i), predicate.MustParse("t = x"))
		q.AddEdge(prev, next, rex.MustParse("e"))
		prev = next
	}
	res := assertAgree(t, g, q)
	if res.Empty() || res.Size() != 6 {
		t.Errorf("all 7 pattern nodes should map onto the single looping node; size=%d", res.Size())
	}
}

// TestTortureLongCycleQuery: a pattern cycle longer than any data cycle
// must be empty... unless the data cycle divides it (simulation wraps
// around). A 6-cycle pattern on a 3-cycle graph matches by wrapping.
func TestTortureLongCycleQuery(t *testing.T) {
	g := graph.New()
	var ids []graph.NodeID
	for i := 0; i < 3; i++ {
		ids = append(ids, g.AddNode(fmt.Sprintf("n%d", i), map[string]string{"t": "x"}))
	}
	for i := 0; i < 3; i++ {
		g.AddEdge(ids[i], ids[(i+1)%3], "e")
	}
	q := pattern.New()
	var us []int
	for i := 0; i < 6; i++ {
		us = append(us, q.AddNode(fmt.Sprintf("U%d", i), predicate.MustParse("t = x")))
	}
	for i := 0; i < 6; i++ {
		q.AddEdge(us[i], us[(i+1)%6], rex.MustParse("e"))
	}
	res := assertAgree(t, g, q)
	if res.Empty() {
		t.Fatal("the 3-cycle simulates the 6-cycle pattern")
	}
	// Every pattern node matches every data node (the cycle is
	// homogeneous).
	for _, u := range us {
		if len(res.MatchSet(u)) != 3 {
			t.Errorf("mat(U%d) = %d, want 3", u, len(res.MatchSet(u)))
		}
	}
}

// TestTortureDisconnectedPatternComponents: two disconnected pattern
// components must both match independently, and one failing empties all.
func TestTortureDisconnectedPatternComponents(t *testing.T) {
	g := graph.New()
	a := g.AddNode("a", map[string]string{"t": "1"})
	b := g.AddNode("b", map[string]string{"t": "2"})
	g.AddEdge(a, b, "e")
	c := g.AddNode("c", map[string]string{"t": "3"})
	d := g.AddNode("d", map[string]string{"t": "4"})
	g.AddEdge(c, d, "f")

	q := pattern.New()
	u1 := q.AddNode("U1", predicate.MustParse("t = 1"))
	u2 := q.AddNode("U2", predicate.MustParse("t = 2"))
	u3 := q.AddNode("U3", predicate.MustParse("t = 3"))
	u4 := q.AddNode("U4", predicate.MustParse("t = 4"))
	q.AddEdge(u1, u2, rex.MustParse("e"))
	q.AddEdge(u3, u4, rex.MustParse("f"))
	res := assertAgree(t, g, q)
	if res.Empty() || res.Size() != 2 {
		t.Errorf("both components should match once each; size=%d", res.Size())
	}

	// Break the second component: the whole answer empties (condition 3).
	q.AddEdge(u4, u3, rex.MustParse("e")) // no e path d -> c
	res = assertAgree(t, g, q)
	if !res.Empty() {
		t.Error("one unsatisfiable edge must empty the whole answer")
	}
}

// TestTortureWildcardOnlyPattern: every node matched by '*' predicates
// and '_+' edges on a connected graph.
func TestTortureWildcardOnlyPattern(t *testing.T) {
	g := graph.New()
	var ids []graph.NodeID
	for i := 0; i < 5; i++ {
		ids = append(ids, g.AddNode(fmt.Sprintf("n%d", i), nil))
	}
	for i := 0; i < 5; i++ {
		g.AddEdge(ids[i], ids[(i+1)%5], fmt.Sprintf("c%d", i%2))
	}
	q := pattern.New()
	u := q.AddNode("U", predicate.Pred{})
	w := q.AddNode("W", predicate.Pred{})
	q.AddEdge(u, w, rex.MustParse("_+"))
	q.AddEdge(w, u, rex.MustParse("_+"))
	res := assertAgree(t, g, q)
	if res.Empty() {
		t.Fatal("wildcard pattern on a cycle should match everything")
	}
	if len(res.MatchSet(u)) != 5 || len(res.MatchSet(w)) != 5 {
		t.Errorf("expected full match sets, got %d/%d", len(res.MatchSet(u)), len(res.MatchSet(w)))
	}
}

// TestTortureDeepNormalizationChain: a single edge with many atoms forces
// a long dummy chain in matrix mode.
func TestTortureDeepNormalizationChain(t *testing.T) {
	g := graph.New()
	prev := g.AddNode("n0", map[string]string{"t": "start"})
	colors := []string{"a", "b", "c", "d"}
	for i := 1; i <= 12; i++ {
		attrs := map[string]string{}
		if i == 12 {
			attrs["t"] = "end"
		}
		next := g.AddNode(fmt.Sprintf("n%d", i), attrs)
		g.AddEdge(prev, next, colors[(i-1)%4])
		prev = next
	}
	q := pattern.New()
	u := q.AddNode("U", predicate.MustParse("t = start"))
	w := q.AddNode("W", predicate.MustParse("t = end"))
	q.AddEdge(u, w, rex.MustParse("a b c d a b c d a b c d"))
	res := assertAgree(t, g, q)
	if res.Empty() {
		t.Fatal("the 12-atom chain matches the 12-edge path exactly")
	}
}
