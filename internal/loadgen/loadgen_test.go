package loadgen

import (
	"bufio"
	"context"
	"encoding/json"
	"math/rand"
	"net"
	"net/http"
	"testing"
	"time"

	"regraph/internal/engine"
	"regraph/internal/gen"
	"regraph/internal/server"
	"regraph/internal/wire"
)

// startServer brings up a loopback rgserve over a small synthetic
// graph and returns its /v1/query URL plus a shutdown func.
func startServer(t *testing.T, opts server.Options) (string, func()) {
	t.Helper()
	g := gen.Synthetic(1, 64, 160, 3, gen.DefaultColors)
	en := engine.MustNew(g, engine.Options{})
	srv := server.New(en, opts)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv.Serve(l)
	return "http://" + l.Addr().String() + "/v1/query", func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}
}

// templates builds a deterministic count-only RQ pool.
func templates(t *testing.T, n int) []wire.Request {
	t.Helper()
	g := gen.Synthetic(1, 64, 160, 3, gen.DefaultColors)
	r := rand.New(rand.NewSource(42))
	out := make([]wire.Request, n)
	for i := range out {
		q := gen.RQ(g, 2, 4, 1, r)
		out[i] = wire.Request{
			RQ:    &wire.RQSpec{From: q.From.String(), To: q.To.String(), Expr: q.Expr.String()},
			Count: true,
		}
	}
	return out
}

// TestRunAccounting drives a live server at a modest rate and checks
// the harness bookkeeping: every sent request answered exactly once,
// the outcome categories partition the sends, and the quantiles are
// ordered.
func TestRunAccounting(t *testing.T) {
	url, stop := startServer(t, server.Options{})
	defer stop()
	res, err := Run(Config{
		URL:      url,
		Rate:     400,
		Duration: 300 * time.Millisecond,
		Arrivals: Poisson,
		Streams:  3,
		Seed:     7,
		Requests: templates(t, 8),
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Sent == 0 {
		t.Fatal("no requests sent")
	}
	if got := res.Completed + res.Shed + res.DeadlineMiss + res.Canceled + res.Errored; got != res.Sent {
		t.Fatalf("outcomes %d do not partition sends %d: %+v", got, res.Sent, res)
	}
	if res.Completed == 0 {
		t.Fatalf("nothing completed: %+v", res)
	}
	if res.Errored != 0 {
		t.Fatalf("valid templates produced %d errors: %+v", res.Errored, res)
	}
	if res.P50 > res.P99 || res.P99 > res.P999 || res.P999 > res.Max {
		t.Fatalf("quantiles out of order: %+v", res)
	}
	if res.AchievedQPS <= 0 {
		t.Fatalf("achieved QPS not reported: %+v", res)
	}
}

// TestRunClassification checks the outcome bookkeeping against a stub
// wire server that answers each id with a known error_kind: the
// harness must count every class exactly, not just in aggregate.
func TestRunClassification(t *testing.T) {
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if err := http.NewResponseController(w).EnableFullDuplex(); err != nil {
			t.Errorf("full duplex: %v", err)
			return
		}
		sc := bufio.NewScanner(r.Body)
		sc.Buffer(make([]byte, 64<<10), 1<<20)
		enc := json.NewEncoder(w)
		fl, _ := w.(http.Flusher)
		for sc.Scan() {
			var req wire.Request
			if err := json.Unmarshal(sc.Bytes(), &req); err != nil || req.ID == nil {
				t.Errorf("stub got malformed line %q: %v", sc.Bytes(), err)
				return
			}
			resp := wire.Response{ID: *req.ID}
			switch *req.ID % 5 {
			case 1:
				resp.Err, resp.ErrKind = "engine: deadline expired before evaluation", "shed"
			case 2:
				resp.Err, resp.ErrKind = "context deadline exceeded", "deadline"
			case 3:
				resp.Err, resp.ErrKind = "context canceled", "canceled"
			case 4:
				resp.Err = "parse: boom"
			default:
				resp.Count = 1
			}
			if err := enc.Encode(&resp); err != nil {
				return
			}
			if fl != nil {
				fl.Flush()
			}
		}
	})
	hs := &http.Server{Handler: h}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go hs.Serve(l)
	defer hs.Close()

	res, err := Run(Config{
		URL:      "http://" + l.Addr().String() + "/v1/query",
		Rate:     1000,
		Duration: 100 * time.Millisecond,
		Arrivals: Uniform, // exactly 100 arrivals: ids 0..99
		Streams:  2,
		Seed:     11,
		Requests: []wire.Request{{RQ: &wire.RQSpec{Expr: "fn"}}},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Sent != 100 {
		t.Fatalf("uniform 1000/s over 100ms sent %d, want 100", res.Sent)
	}
	want := Result{Completed: 20, Shed: 20, DeadlineMiss: 20, Canceled: 20, Errored: 20}
	if res.Completed != want.Completed || res.Shed != want.Shed ||
		res.DeadlineMiss != want.DeadlineMiss || res.Canceled != want.Canceled ||
		res.Errored != want.Errored {
		t.Fatalf("classification off: got %+v, want 20 of each class", res)
	}
}

// TestArrivalOffsets pins the schedule generator: deterministic for a
// seed, monotone, inside the duration, and matching the offered rate
// to within Poisson noise.
func TestArrivalOffsets(t *testing.T) {
	cfg := Config{Rate: 1000, Duration: time.Second, Seed: 3}
	a := arrivalOffsets(cfg)
	b := arrivalOffsets(cfg)
	if len(a) != len(b) {
		t.Fatalf("same seed, different schedules: %d vs %d arrivals", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different offset at %d: %v vs %v", i, a[i], b[i])
		}
	}
	last := time.Duration(-1)
	for i, off := range a {
		if off < last {
			t.Fatalf("offsets not monotone at %d: %v after %v", i, off, last)
		}
		if off >= cfg.Duration {
			t.Fatalf("offset %v outside duration %v", off, cfg.Duration)
		}
		last = off
	}
	// 1000 arrivals expected; Poisson sd is ~32, allow 6 sigma.
	if n := len(a); n < 800 || n > 1200 {
		t.Fatalf("Poisson schedule at 1000/s over 1s produced %d arrivals", n)
	}

	cfg.Arrivals = Uniform
	u := arrivalOffsets(cfg)
	if len(u) != 1000 {
		t.Fatalf("uniform schedule at 1000/s over 1s produced %d arrivals, want 1000", len(u))
	}
	for i := 1; i < len(u); i++ {
		if got, want := u[i]-u[i-1], time.Millisecond; got != want {
			t.Fatalf("uniform gap %v at %d, want %v", got, i, want)
		}
	}
}

// TestQuantile pins the nearest-rank quantile helper.
func TestQuantile(t *testing.T) {
	var s []time.Duration
	if q := quantile(s, 0.5); q != 0 {
		t.Fatalf("empty quantile = %v, want 0", q)
	}
	for i := 1; i <= 100; i++ {
		s = append(s, time.Duration(i))
	}
	cases := []struct {
		f    float64
		want time.Duration
	}{{0.5, 51}, {0.99, 100}, {0.999, 100}, {0, 1}, {1, 100}}
	for _, c := range cases {
		if got := quantile(s, c.f); got != c.want {
			t.Errorf("quantile(1..100, %v) = %v, want %v", c.f, got, c.want)
		}
	}
}

// TestRunRejectsBadConfig covers the config validation.
func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := Run(Config{Rate: 0, Requests: []wire.Request{{}}}); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := Run(Config{Rate: 1}); err == nil {
		t.Fatal("empty template pool accepted")
	}
}
