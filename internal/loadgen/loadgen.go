// Package loadgen is an open-loop load harness for the HTTP/NDJSON
// query service (internal/server): it submits requests at a fixed
// offered arrival rate — Poisson or uniform — on schedule, regardless
// of how fast the server completes them, which is the only load shape
// that exposes queueing collapse. A closed-loop driver (send, wait,
// send) self-throttles at saturation: its latency looks flat right
// where a real open system's queue — and tail — grows without bound.
//
// Latencies are measured from each request's *scheduled* arrival time,
// not from the moment the client managed to write it, so client-side
// queuing under back-pressure is charged to the server (the standard
// coordinated-omission correction). Quantiles are exact, computed from
// the full sorted sample set, not from histogram buckets.
//
// The generator is the proving ground for the engine's QoS scheduling
// (priority bands, deadlines, adaptive admission): request templates
// carry the wire-level priority/deadline_ms fields and the per-request
// outcome is classified by the response's error_kind — completed, shed
// (expired while queued), deadline (abandoned mid-evaluation), or
// canceled. bench.ServerLoad drives it below, at and above a
// calibrated saturation rate.
package loadgen

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"

	"regraph/internal/wire"
)

// Arrivals selects the inter-arrival process.
type Arrivals string

const (
	// Poisson draws exponential inter-arrival gaps (a memoryless open
	// system, the standard model for independent clients).
	Poisson Arrivals = "poisson"
	// Uniform spaces arrivals exactly 1/rate apart (a deterministic
	// drip, useful for reproducible smoke runs).
	Uniform Arrivals = "uniform"
)

// Config describes one open-loop run.
type Config struct {
	// URL is the full query endpoint, e.g. http://127.0.0.1:8080/v1/query.
	URL string
	// Rate is the offered arrival rate in requests per second.
	Rate float64
	// Duration is how long arrivals are generated for. The run itself
	// lasts until every sent request has been answered.
	Duration time.Duration
	// Arrivals picks the inter-arrival process (default Poisson).
	Arrivals Arrivals
	// Streams is the number of concurrent HTTP request streams the
	// arrivals are spread over, round-robin (default 4). Each stream is
	// one POST /v1/query with its own server-side session.
	Streams int
	// Seed feeds the arrival-time and template-choice randomness.
	Seed int64
	// Requests is the template pool: each arrival sends one of these
	// (cycled in order), with the ID field overwritten by the harness.
	// Priority and DeadlineMS on a template are sent as-is, so the
	// caller decides the QoS mix.
	Requests []wire.Request
}

// Result summarizes one run. Sent == Completed+Shed+DeadlineMiss+
// Canceled+Unavailable+Errored always holds on a nil-error return:
// every request the harness sent was answered exactly once.
type Result struct {
	Sent         int           // requests submitted on schedule
	Completed    int           // answered successfully
	Shed         int           // expired while queued (error_kind "shed")
	DeadlineMiss int           // abandoned mid-evaluation (error_kind "deadline")
	Canceled     int           // session/stream cancellation (error_kind "canceled")
	Unavailable  int           // shed at the routing tier (error_kind "unavailable")
	Errored      int           // other per-request errors (e.g. parse)
	OfferedQPS   float64       // the configured arrival rate
	AchievedQPS  float64       // Completed / Wall
	Wall         time.Duration // first scheduled arrival to last response
	P50          time.Duration // completed-request latency quantiles,
	P99          time.Duration // measured from scheduled arrival time
	P999         time.Duration // (exact, from the sorted sample set)
	Max          time.Duration
}

// sample is the outcome of one request, indexed by its wire id.
type sample struct {
	latency time.Duration
	kind    string // "" completed, "shed", "deadline", "canceled", "error"
	got     bool
}

// Run executes one open-loop run and blocks until every sent request
// has been answered (or a stream fails). The arrival schedule is fixed
// up front from the seed, so the same Config offers the same load.
func Run(cfg Config) (Result, error) {
	if cfg.Rate <= 0 {
		return Result{}, fmt.Errorf("loadgen: rate must be positive, got %v", cfg.Rate)
	}
	if len(cfg.Requests) == 0 {
		return Result{}, fmt.Errorf("loadgen: no request templates")
	}
	streams := cfg.Streams
	if streams <= 0 {
		streams = 4
	}
	offsets := arrivalOffsets(cfg)
	samples := make([]sample, len(offsets))

	sts := make([]*stream, streams)
	var wg sync.WaitGroup
	errs := make([]error, streams)
	var t0 time.Time // set before the first enqueue; streams read it only per-response
	for i := range sts {
		sts[i] = newStream()
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = sts[i].run(cfg, &t0, offsets, samples)
		}(i)
	}

	// The scheduler: submit request i at t0+offsets[i], on schedule no
	// matter what — enqueueing never blocks (per-stream unbounded
	// queues), so a stalled server cannot slow the offered load down.
	t0 = time.Now()
	for i := range offsets {
		if d := time.Until(t0.Add(offsets[i])); d > 0 {
			time.Sleep(d)
		}
		sts[i%streams].enqueue(uint64(i))
	}
	for _, st := range sts {
		st.close()
	}
	wg.Wait()
	wall := time.Since(t0)
	for _, err := range errs {
		if err != nil {
			return Result{}, err
		}
	}

	return tally(offsets, samples, cfg.Rate, wall)
}

// arrivalOffsets precomputes the arrival schedule as offsets from the
// run start. At least one arrival is always generated.
func arrivalOffsets(cfg Config) []time.Duration {
	var offs []time.Duration
	switch cfg.Arrivals {
	case Uniform:
		gap := time.Duration(float64(time.Second) / cfg.Rate)
		for t := time.Duration(0); t < cfg.Duration; t += gap {
			offs = append(offs, t)
		}
	default: // Poisson
		r := rand.New(rand.NewSource(cfg.Seed))
		t := 0.0
		for {
			t += r.ExpFloat64() / cfg.Rate
			if t >= cfg.Duration.Seconds() {
				break
			}
			offs = append(offs, time.Duration(t*float64(time.Second)))
		}
	}
	if len(offs) == 0 {
		offs = append(offs, 0)
	}
	return offs
}

// tally aggregates the per-request samples into a Result, verifying
// the accounting invariant: every sent id answered exactly once.
func tally(offsets []time.Duration, samples []sample, rate float64, wall time.Duration) (Result, error) {
	res := Result{Sent: len(offsets), OfferedQPS: rate, Wall: wall}
	var lats []time.Duration
	for i := range samples {
		if !samples[i].got {
			return Result{}, fmt.Errorf("loadgen: request %d was sent but never answered", i)
		}
		switch samples[i].kind {
		case "":
			res.Completed++
			lats = append(lats, samples[i].latency)
		case "shed":
			res.Shed++
		case "deadline":
			res.DeadlineMiss++
		case "canceled":
			res.Canceled++
		case "unavailable":
			res.Unavailable++
		default:
			res.Errored++
		}
	}
	if wall > 0 {
		res.AchievedQPS = float64(res.Completed) / wall.Seconds()
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	res.P50 = quantile(lats, 0.50)
	res.P99 = quantile(lats, 0.99)
	res.P999 = quantile(lats, 0.999)
	if n := len(lats); n > 0 {
		res.Max = lats[n-1]
	}
	return res, nil
}

// quantile reads the f-quantile from an ascending-sorted sample set
// (nearest-rank method).
func quantile(sorted []time.Duration, f float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(f * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// ---- one HTTP stream --------------------------------------------------------

// stream is one POST /v1/query connection: an unbounded client-side
// queue of scheduled ids feeding the upload pipe, and a response
// reader recording outcomes. The queue is what keeps the harness
// open-loop — the scheduler appends and moves on; only the writer
// goroutine ever blocks on server back-pressure.
type stream struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending []uint64
	closed  bool
}

func newStream() *stream {
	st := &stream{}
	st.cond = sync.NewCond(&st.mu)
	return st
}

func (st *stream) enqueue(id uint64) {
	st.mu.Lock()
	st.pending = append(st.pending, id)
	st.mu.Unlock()
	st.cond.Signal()
}

func (st *stream) close() {
	st.mu.Lock()
	st.closed = true
	st.mu.Unlock()
	st.cond.Signal()
}

// next blocks for the next scheduled id; ok is false once the stream
// is closed and drained.
func (st *stream) next() (uint64, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for len(st.pending) == 0 && !st.closed {
		st.cond.Wait()
	}
	if len(st.pending) == 0 {
		return 0, false
	}
	id := st.pending[0]
	st.pending = st.pending[1:]
	return id, true
}

// run drives one HTTP stream to completion: uploads queued request
// lines as they become due, reads response lines as they arrive, and
// records each outcome into samples[id].
func (st *stream) run(cfg Config, t0 *time.Time, offsets []time.Duration, samples []sample) error {
	pr, pw := io.Pipe()
	go func() {
		enc := json.NewEncoder(pw)
		for {
			id, ok := st.next()
			if !ok {
				pw.Close()
				return
			}
			req := cfg.Requests[int(id)%len(cfg.Requests)]
			req.ID = &id
			if err := enc.Encode(&req); err != nil {
				pw.CloseWithError(err)
				return
			}
		}
	}()
	resp, err := http.Post(cfg.URL, "application/x-ndjson", pr)
	if err != nil {
		return fmt.Errorf("loadgen: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return fmt.Errorf("loadgen: %s: %s", resp.Status, bytes.TrimSpace(body))
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), wire.MaxResponseLineBytes)
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		now := time.Now()
		var r wire.Response
		if err := json.Unmarshal(line, &r); err != nil {
			return fmt.Errorf("loadgen: malformed response line %q: %w", line, err)
		}
		if r.ID >= uint64(len(samples)) {
			return fmt.Errorf("loadgen: response for unknown id %d", r.ID)
		}
		s := &samples[r.ID]
		if s.got {
			return fmt.Errorf("loadgen: duplicate response for id %d", r.ID)
		}
		s.got = true
		s.latency = now.Sub(t0.Add(offsets[r.ID]))
		switch {
		case r.Err == "":
			s.kind = ""
		case r.ErrKind != "":
			s.kind = r.ErrKind
		default:
			s.kind = "error"
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("loadgen: response stream: %w", err)
	}
	return nil
}
