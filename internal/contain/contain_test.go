package contain_test

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"regraph/internal/contain"
	"regraph/internal/dist"
	"regraph/internal/graph"
	"regraph/internal/pattern"
	"regraph/internal/predicate"
	"regraph/internal/reach"
	"regraph/internal/rex"
)

func rq(from, to, expr string) reach.Query {
	return reach.New(predicate.MustParse(from), predicate.MustParse(to), rex.MustParse(expr))
}

func TestRQContains(t *testing.T) {
	tests := []struct {
		q1, q2 reach.Query
		want   bool
	}{
		{rq("job = doctor", "job = nurse", "a"), rq("job = doctor", "job = nurse", "a{2}"), true},
		{rq("job = doctor", "job = nurse", "a{2}"), rq("job = doctor", "job = nurse", "a"), false},
		{rq("job = doctor, age > 5", "*", "a"), rq("job = doctor", "*", "a"), true},
		{rq("job = doctor", "*", "a"), rq("job = doctor, age > 5", "*", "a"), false},
		{rq("a = 1", "b = 2", "x y"), rq("a = 1", "b = 2", "_ _"), true},
		{rq("a = 1", "b = 2", "x"), rq("a = 1", "b = 2", "y"), false},
	}
	for i, tc := range tests {
		if got := contain.RQContains(tc.q1, tc.q2); got != tc.want {
			t.Errorf("case %d: RQContains = %v, want %v", i, got, tc.want)
		}
	}
	if !contain.RQEquivalent(rq("a = 1", "*", "x{2} x{2}"), rq("a = 1", "*", "x x{3}")) {
		t.Error("language-equivalent RQs should be equivalent")
	}
}

// fig3 builds the three pattern queries of Fig. 3 with h1 ⊆ h2 ⊆ h3
// realized as a ⊆ a{2} ⊆ a{3}. All B nodes share one predicate, all C
// nodes another.
func fig3() (q1, q2, q3 *pattern.Query) {
	bPred := predicate.MustParse("t = b")
	cPred := predicate.MustParse("t = c")
	h1, h2, h3 := rex.MustParse("a"), rex.MustParse("a{2}"), rex.MustParse("a{3}")

	q1 = pattern.New()
	b1 := q1.AddNode("B1", bPred)
	q1.AddEdge(b1, q1.AddNode("C1", cPred), h1)
	q1.AddEdge(b1, q1.AddNode("C2", cPred), h2)
	q1.AddEdge(b1, q1.AddNode("C3", cPred), h3)

	q2 = pattern.New()
	b2 := q2.AddNode("B2", bPred)
	q2.AddEdge(b2, q2.AddNode("C4", cPred), h1)

	q3 = pattern.New()
	b3 := q3.AddNode("B3", bPred)
	q3.AddEdge(b3, q3.AddNode("C5", cPred), h1)
	q3.AddEdge(b3, q3.AddNode("C6", cPred), h3)
	return
}

// TestFig3Containment reproduces Example 3.1: Q2 ⊑ Q1, Q2 ⊑ Q3, Q3 ⊑ Q1,
// Q1 ⊑ Q3 (hence Q1 ≡ Q3), and the converses that must fail.
func TestFig3Containment(t *testing.T) {
	q1, q2, q3 := fig3()
	cases := []struct {
		name string
		a, b *pattern.Query
		want bool
	}{
		{"Q2 in Q1", q2, q1, true},
		{"Q2 in Q3", q2, q3, true},
		{"Q3 in Q1", q3, q1, true},
		{"Q1 in Q3", q1, q3, true},
		{"Q1 in Q2", q1, q2, false},
		{"Q3 in Q2", q3, q2, false},
	}
	for _, tc := range cases {
		if got := contain.Contains(tc.a, tc.b); got != tc.want {
			t.Errorf("%s = %v, want %v", tc.name, got, tc.want)
		}
	}
	if !contain.Equivalent(q1, q3) {
		t.Error("Q1 ≡ Q3 expected (Example 3.1)")
	}
	if contain.Equivalent(q1, q2) {
		t.Error("Q1 ≡ Q2 must not hold")
	}
}

// TestFig3Similarity reproduces Example 3.2: Q1 E Q2 via the relation
// {(B1,B2), (Ci,C4)}.
func TestFig3Similarity(t *testing.T) {
	q1, q2, _ := fig3()
	if !contain.Similar(q1, q2) {
		t.Error("Q1 E Q2 expected (Example 3.2)")
	}
	if contain.Similar(q2, q1) {
		// Q2 E Q1 would mean Q1 ⊑ Q2, refuted above.
		t.Error("Q2 E Q1 must not hold")
	}
}

func TestContainsMappingWitness(t *testing.T) {
	q1, _, q3 := fig3()
	lambda, ok := contain.ContainsMapping(q1, q3)
	if !ok {
		t.Fatal("Q1 ⊑ Q3 should produce a mapping")
	}
	if len(lambda) != q1.NumEdges() {
		t.Fatalf("mapping covers %d edges, want %d", len(lambda), q1.NumEdges())
	}
	// Every Q1 edge must map to a Q3 edge with a containing language.
	for ei, ej := range lambda {
		if !rex.Contains(q1.Edge(ei).Expr, q3.Edge(ej).Expr) {
			t.Errorf("edge %d maps to %d but languages are not contained", ei, ej)
		}
	}
	if _, ok := contain.ContainsMapping(q1, fig3q2()); ok {
		t.Error("Q1 ⊑ Q2 must not produce a mapping")
	}
}

func fig3q2() *pattern.Query {
	_, q2, _ := fig3()
	return q2
}

// ---- semantic validation of containment ------------------------------------

func randomAttrGraph(r *rand.Rand, n, e int) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddNode(fmt.Sprintf("n%d", i), map[string]string{"t": fmt.Sprint(r.Intn(3))})
	}
	colors := []string{"a", "b"}
	for i := 0; i < e; i++ {
		g.AddEdge(graph.NodeID(r.Intn(n)), graph.NodeID(r.Intn(n)), colors[r.Intn(2)])
	}
	return g
}

func randomPattern(r *rand.Rand) *pattern.Query {
	q := pattern.New()
	nn := 2 + r.Intn(3)
	preds := []string{"t = 0", "t = 1", "t = 2", "*"}
	for i := 0; i < nn; i++ {
		q.AddNode(fmt.Sprintf("u%d", i), predicate.MustParse(preds[r.Intn(len(preds))]))
	}
	ne := 1 + r.Intn(3)
	colors := []string{"a", "b", "_"}
	for i := 0; i < ne; i++ {
		q.AddEdge(r.Intn(nn), r.Intn(nn), rex.MustNew(rex.Atom{
			Color: colors[r.Intn(3)], Max: 1 + r.Intn(3),
		}))
	}
	return q
}

// TestContainmentIsSemanticallySound: whenever Contains(Q1, Q2) holds with
// witness mapping λ, then on random graphs Se ⊆ S_λ(e) for every Q1 edge.
func TestContainmentIsSemanticallySound(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q1 := randomPattern(r)
		q2 := randomPattern(r)
		lambda, ok := contain.ContainsMapping(q1, q2)
		if !ok {
			return true
		}
		for trial := 0; trial < 3; trial++ {
			g := randomAttrGraph(r, 2+r.Intn(8), 1+r.Intn(18))
			mx := dist.NewMatrix(g)
			r1 := pattern.JoinMatch(g, q1, pattern.Options{Matrix: mx})
			if r1.Empty() {
				continue
			}
			r2 := pattern.JoinMatch(g, q2, pattern.Options{Matrix: mx})
			for ei := 0; ei < q1.NumEdges(); ei++ {
				pairs2 := map[reach.Pair]bool{}
				for _, p := range r2.EdgePairs(lambda[ei]) {
					pairs2[p] = true
				}
				for _, p := range r1.EdgePairs(ei) {
					if !pairs2[p] {
						t.Logf("seed %d: pair %v of Q1 edge %d missing from Q2 edge %d\nQ1 %v\nQ2 %v",
							seed, p, ei, lambda[ei], q1, q2)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestContainsPreorder: containment is reflexive and transitive.
func TestContainsPreorder(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	qs := make([]*pattern.Query, 8)
	for i := range qs {
		qs[i] = randomPattern(r)
	}
	for _, q := range qs {
		if !contain.Contains(q, q) {
			t.Fatalf("containment not reflexive for %v", q)
		}
	}
	for _, a := range qs {
		for _, b := range qs {
			for _, c := range qs {
				if contain.Contains(a, b) && contain.Contains(b, c) && !contain.Contains(a, c) {
					t.Fatalf("transitivity violated")
				}
			}
		}
	}
}

// ---- minimization -----------------------------------------------------------

// TestMinimizeMergesEquivalentSiblings: two simulation-equivalent children
// collapse into one.
func TestMinimizeMergesEquivalentSiblings(t *testing.T) {
	q := pattern.New()
	root := q.AddNode("R", predicate.MustParse("t = r"))
	c1 := q.AddNode("C1", predicate.MustParse("t = c"))
	c2 := q.AddNode("C2", predicate.MustParse("t = c"))
	q.AddEdge(root, c1, rex.MustParse("a"))
	q.AddEdge(root, c2, rex.MustParse("a"))
	m := contain.Minimize(q)
	if m.NumNodes() != 2 || m.NumEdges() != 1 {
		t.Errorf("minimized to %d nodes, %d edges; want 2 and 1\n%v", m.NumNodes(), m.NumEdges(), m)
	}
	if !contain.Equivalent(m, q) {
		t.Error("minimized query must stay equivalent")
	}
}

// TestMinimizeRemovesSandwichedEdge: with L(h1) ⊆ L(h2) ⊆ L(h3) between
// the same class pair, the middle edge goes away.
func TestMinimizeRemovesSandwichedEdge(t *testing.T) {
	q1, _, q3 := fig3()
	m := contain.Minimize(q1)
	if !contain.Equivalent(m, q1) {
		t.Fatal("minimized Q1 must stay equivalent")
	}
	if m.Size() > q3.Size() {
		t.Errorf("minimized Q1 has size %d; the equivalent Q3 has size %d", m.Size(), q3.Size())
	}
	if m.Size() >= q1.Size() {
		t.Errorf("minimization did not shrink Q1 (size %d -> %d)", q1.Size(), m.Size())
	}
}

// TestMinimizeChainUnchanged: an already-minimal chain must stay intact.
func TestMinimizeChainUnchanged(t *testing.T) {
	q := pattern.New()
	a := q.AddNode("A", predicate.MustParse("t = 0"))
	b := q.AddNode("B", predicate.MustParse("t = 1"))
	c := q.AddNode("C", predicate.MustParse("t = 2"))
	q.AddEdge(a, b, rex.MustParse("x"))
	q.AddEdge(b, c, rex.MustParse("y"))
	m := contain.Minimize(q)
	if m.Size() != q.Size() {
		t.Errorf("minimal chain changed size: %d -> %d", q.Size(), m.Size())
	}
	if !contain.Equivalent(m, q) {
		t.Error("must stay equivalent")
	}
}

// TestMinimizeProperties: on random patterns, minimization preserves
// equivalence, never grows the query, and is idempotent in size.
func TestMinimizeProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := randomPattern(r)
		m := contain.Minimize(q)
		if !contain.Equivalent(m, q) {
			t.Logf("seed %d: equivalence lost\nq: %v\nm: %v", seed, q, m)
			return false
		}
		if m.Size() > q.Size() {
			t.Logf("seed %d: grew from %d to %d", seed, q.Size(), m.Size())
			return false
		}
		m2 := contain.Minimize(m)
		if m2.Size() > m.Size() {
			t.Logf("seed %d: second pass grew: %d -> %d", seed, m.Size(), m2.Size())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestMinimizePreservesAnswers: the minimized query computes the same
// per-node match sets on concrete graphs (for the nodes it retains).
func TestMinimizePreservesAnswers(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := randomPattern(r)
		m := contain.Minimize(q)
		g := randomAttrGraph(r, 2+r.Intn(8), 1+r.Intn(16))
		mx := dist.NewMatrix(g)
		rq := pattern.JoinMatch(g, q, pattern.Options{Matrix: mx})
		rm := pattern.JoinMatch(g, m, pattern.Options{Matrix: mx})
		if rq.Empty() != rm.Empty() {
			t.Logf("seed %d: emptiness differs (q %v, m %v)\nq %v\nm %v", seed, rq.Empty(), rm.Empty(), q, m)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestSimulationEquivalentNodes(t *testing.T) {
	q := pattern.New()
	q.AddNode("A1", predicate.MustParse("t = a"))
	q.AddNode("A2", predicate.MustParse("t = a"))
	q.AddNode("B", predicate.MustParse("t = b"))
	classes := contain.SimulationEquivalentNodes(q)
	if len(classes) != 2 {
		t.Fatalf("got %d classes, want 2 (A1 A2 merge)", len(classes))
	}
	if len(classes[0]) != 2 {
		t.Errorf("first class = %v, want the two A nodes", classes[0])
	}
}

func TestMinimizeEdgeless(t *testing.T) {
	q := pattern.New()
	q.AddNode("A1", predicate.MustParse("t = a"))
	q.AddNode("A2", predicate.MustParse("t = a"))
	m := contain.Minimize(q)
	if m.NumNodes() != 1 {
		t.Errorf("edgeless equivalent nodes should merge; got %d nodes", m.NumNodes())
	}
	empty := pattern.New()
	if got := contain.Minimize(empty); got.NumNodes() != 0 {
		t.Error("empty query should minimize to itself")
	}
}
