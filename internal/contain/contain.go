// Package contain implements the static analyses of Section 3 of the
// paper: containment, equivalence and minimization of reachability queries
// (RQs) and graph pattern queries (PQs).
//
// Containment of PQs is decided through the paper's revised graph
// similarity (Lemma 3.1): Q1 ⊑ Q2 iff Q2 is similar to Q1. The similarity
// relation combines predicate implication on nodes with language
// containment of the subclass-F regular expressions on edges, and is
// computed as a fixpoint in O(|Q|^3) (Theorem 3.2). RQ containment is the
// two-node special case and runs in quadratic time (Proposition 3.3).
//
// Minimization (Theorem 3.4) follows algorithm minPQs (Fig. 6):
// simulation-equivalent nodes are merged, redundant edges removed, and
// isolated nodes dropped, yielding a minimum equivalent query in cubic
// time.
package contain

import (
	"regraph/internal/pattern"
	"regraph/internal/reach"
	"regraph/internal/rex"
)

// ---- reachability queries --------------------------------------------------

// RQContains reports whether Q1 ⊑ Q2 for reachability queries: every
// answer pair of Q1 on any graph is an answer pair of Q2. By
// Proposition 3.3 this holds iff u1 ⊢ w1, u2 ⊢ w2 and L(fe1) ⊆ L(fe2).
func RQContains(q1, q2 reach.Query) bool {
	return q1.From.Implies(q2.From) &&
		q1.To.Implies(q2.To) &&
		rex.Contains(q1.Expr, q2.Expr)
}

// RQEquivalent reports whether two RQs have identical answers on every
// graph.
func RQEquivalent(q1, q2 reach.Query) bool {
	return RQContains(q1, q2) && RQContains(q2, q1)
}

// ---- revised graph similarity (Section 3.1) ---------------------------------

// maxSimulation computes the maximum relation Sr ⊆ Va × Vb satisfying
// condition (1) of the revised similarity: (u, w) ∈ Sr requires
//
//	(a) w ⊢ u — every node matching w's predicate matches u's; and
//	(b) for each edge e = (u, u2) of qa there is an edge e' = (w, w2) of
//	    qb with (u2, w2) ∈ Sr and L(f_e') ⊆ L(f_e).
//
// Computed by fixpoint refinement, as in the standard simulation algorithm
// the paper builds on (Henzinger, Henzinger & Kopke).
func maxSimulation(qa, qb *pattern.Query) [][]bool {
	na, nb := qa.NumNodes(), qb.NumNodes()
	sr := make([][]bool, na)
	for u := 0; u < na; u++ {
		sr[u] = make([]bool, nb)
		for w := 0; w < nb; w++ {
			sr[u][w] = qb.Node(w).Pred.Implies(qa.Node(u).Pred)
		}
	}
	// Pre-compute edge-language containment: edgeOK[e][e'] = L(f_e') ⊆ L(f_e).
	edgeOK := make([][]bool, qa.NumEdges())
	for e := range edgeOK {
		edgeOK[e] = make([]bool, qb.NumEdges())
		for e2 := range edgeOK[e] {
			edgeOK[e][e2] = rex.Contains(qb.Edge(e2).Expr, qa.Edge(e).Expr)
		}
	}
	for changed := true; changed; {
		changed = false
		for u := 0; u < na; u++ {
			for w := 0; w < nb; w++ {
				if !sr[u][w] {
					continue
				}
				ok := true
				for _, ei := range qa.Out(u) {
					found := false
					for _, ei2 := range qb.Out(w) {
						if edgeOK[ei][ei2] && sr[qa.Edge(ei).To][qb.Edge(ei2).To] {
							found = true
							break
						}
					}
					if !found {
						ok = false
						break
					}
				}
				if !ok {
					sr[u][w] = false
					changed = true
				}
			}
		}
	}
	return sr
}

// Similar reports whether qb is similar to qa (the paper's "qa E qb"):
// the maximum condition-(1) relation also satisfies condition (2), i.e.
// every edge of qb is covered by some edge of qa under Sr.
//
// Deviation from the paper (documented in DESIGN.md): we additionally
// require Sr to be total on qa's nodes — every node of qa must have some
// partner in qb. Without this, Lemma 3.1 is unsound in combination with
// the PQ semantics' global-emptiness rule: qa may carry an edge no part of
// qb accounts for, and on graphs where that edge has no matches qa's whole
// answer is empty while qb's is not, refuting the claimed containment.
// Totality closes exactly that hole (its proof sketch: a total Sr lets
// every qa match set inherit non-emptiness from the corresponding qb match
// set, so the emptiness rule can never fire for qa alone).
func Similar(qa, qb *pattern.Query) bool {
	sr := maxSimulation(qa, qb)
	for u := 0; u < qa.NumNodes(); u++ {
		total := false
		for w := 0; w < qb.NumNodes() && !total; w++ {
			total = sr[u][w]
		}
		if !total {
			return false
		}
	}
	return coverCondition(qa, qb, sr)
}

// coverCondition checks condition (2) of the revised similarity.
func coverCondition(qa, qb *pattern.Query, sr [][]bool) bool {
	for ei2 := 0; ei2 < qb.NumEdges(); ei2++ {
		e2 := qb.Edge(ei2)
		found := false
		for ei := 0; ei < qa.NumEdges() && !found; ei++ {
			e := qa.Edge(ei)
			if sr[e.From][e2.From] && sr[e.To][e2.To] &&
				rex.Contains(e2.Expr, e.Expr) {
				found = true
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Contains reports whether Q1 ⊑ Q2: on every data graph, Q1's answer maps
// into Q2's (there is a renaming λ of Q1's edges to Q2's edges with
// Se ⊆ S_λ(e)). By Lemma 3.1 this holds iff Q2 is similar to Q1.
func Contains(q1, q2 *pattern.Query) bool {
	return Similar(q2, q1)
}

// ContainsMapping is Contains but also returns the witness edge mapping
// λ: E1 → E2 (indexed by Q1 edge, value is a Q2 edge index) when
// containment holds. The mapping realizes Se ⊆ S_λ(e) on every graph.
func ContainsMapping(q1, q2 *pattern.Query) ([]int, bool) {
	sr := maxSimulation(q2, q1)
	for u := 0; u < q2.NumNodes(); u++ {
		total := false
		for w := 0; w < q1.NumNodes() && !total; w++ {
			total = sr[u][w]
		}
		if !total {
			return nil, false
		}
	}
	lambda := make([]int, q1.NumEdges())
	for ei1 := 0; ei1 < q1.NumEdges(); ei1++ {
		e1 := q1.Edge(ei1)
		found := -1
		for ei2 := 0; ei2 < q2.NumEdges(); ei2++ {
			e2 := q2.Edge(ei2)
			if sr[e2.From][e1.From] && sr[e2.To][e1.To] &&
				rex.Contains(e1.Expr, e2.Expr) {
				found = ei2
				break
			}
		}
		if found < 0 {
			return nil, false
		}
		lambda[ei1] = found
	}
	return lambda, true
}

// Equivalent reports whether Q1 ≡ Q2 (mutual containment).
func Equivalent(q1, q2 *pattern.Query) bool {
	return Contains(q1, q2) && Contains(q2, q1)
}

// SimulationEquivalentNodes returns the equivalence classes EQ of the
// query's nodes under self-similarity: u and w are simulation equivalent
// iff (u, w) and (w, u) both belong to the maximum revised similarity of Q
// with itself. Classes are returned with node indices ascending and
// classes ordered by their smallest member.
func SimulationEquivalentNodes(q *pattern.Query) [][]int {
	sr := maxSimulation(q, q)
	n := q.NumNodes()
	classOf := make([]int, n)
	for i := range classOf {
		classOf[i] = -1
	}
	var classes [][]int
	for u := 0; u < n; u++ {
		if classOf[u] >= 0 {
			continue
		}
		id := len(classes)
		classOf[u] = id
		members := []int{u}
		for w := u + 1; w < n; w++ {
			if classOf[w] < 0 && sr[u][w] && sr[w][u] {
				classOf[w] = id
				members = append(members, w)
			}
		}
		classes = append(classes, members)
	}
	return classes
}
