package contain

import (
	"fmt"

	"regraph/internal/pattern"
	"regraph/internal/rex"
)

// Minimize computes a minimum equivalent pattern query with algorithm
// minPQs (Fig. 6, Theorem 3.4):
//
//  1. compute the maximum revised similarity of Q with itself and the
//     induced simulation-equivalence classes EQ;
//  2. merge each class into a single node, deduplicate and prune
//     redundant class-level edges, and expand nodes into the number of
//     copies needed to turn the class multigraph into a simple graph;
//  3. remove redundant edges (those sandwiched between two other edges
//     under the recomputed similarity) and isolated nodes.
//
// The result is equivalent to the input (Q ≡ Qm) and no larger; edge
// removals are applied one at a time with re-verification, which keeps the
// procedure unconditionally sound. Runs in O(|Q|^3) for query-sized
// inputs.
func Minimize(q *pattern.Query) *pattern.Query {
	if q.NumNodes() == 0 {
		return q.Clone()
	}
	// Step 1: equivalence classes under self-similarity.
	classes := SimulationEquivalentNodes(q)
	classOf := make([]int, q.NumNodes())
	for ci, members := range classes {
		for _, u := range members {
			classOf[u] = ci
		}
	}
	if q.NumEdges() == 0 {
		// Degenerate: merging classes is all there is to do.
		m := pattern.New()
		for _, members := range classes {
			n := q.Node(members[0])
			m.AddNode(n.Name, n.Pred)
		}
		return m
	}

	// Step 2: class-level edge sets with redundant edges removed.
	type classPair struct{ from, to int }
	edgeSets := map[classPair][]rex.Expr{}
	for ei := 0; ei < q.NumEdges(); ei++ {
		e := q.Edge(ei)
		cp := classPair{classOf[e.From], classOf[e.To]}
		edgeSets[cp] = append(edgeSets[cp], e.Expr)
	}
	for cp, exprs := range edgeSets {
		edgeSets[cp] = pruneExprs(exprs)
	}

	// Copies per class: the largest non-redundant in-edge set from any
	// single source class (at least one copy).
	copies := make([]int, len(classes))
	for ci := range copies {
		copies[ci] = 1
	}
	for cp, exprs := range edgeSets {
		if len(exprs) > copies[cp.to] {
			copies[cp.to] = len(exprs)
		}
	}

	// Assemble the equivalent query Qm: copies of every class, and from
	// every copy of a source class one edge per distinct expression, each
	// into a distinct copy of the target class.
	qm := pattern.New()
	copyIdx := make([][]int, len(classes)) // class -> node indices of copies
	for ci, members := range classes {
		rep := q.Node(members[0])
		copyIdx[ci] = make([]int, copies[ci])
		for k := 0; k < copies[ci]; k++ {
			name := rep.Name
			if k > 0 {
				name = fmt.Sprintf("%s#%d", rep.Name, k+1)
			}
			copyIdx[ci][k] = qm.AddNode(name, rep.Pred)
		}
	}
	for cp, exprs := range edgeSets {
		for _, srcCopy := range copyIdx[cp.from] {
			for j, expr := range exprs {
				qm.AddEdge(srcCopy, copyIdx[cp.to][j], expr)
			}
		}
	}

	// Step 3: drop redundant edges one at a time (re-deriving the
	// similarity after each removal), then drop isolated nodes. Each
	// removal is verified to preserve equivalence with the original
	// query, which keeps the procedure sound even for patterns where the
	// batch rule would over-remove mutually redundant edges.
	for {
		ei := findRedundantEdge(qm)
		if ei < 0 {
			break
		}
		candidate := removeEdge(qm, ei)
		if !Equivalent(candidate, q) {
			break
		}
		qm = candidate
	}
	qm = dropIsolated(qm)
	if qm.NumNodes() == 0 || qm.Size() >= q.Size() || !Equivalent(qm, q) {
		// Never return a larger or non-equivalent query; the copy
		// expansion of step 2 can transiently grow already-minimal inputs,
		// in which case the input itself is the minimum (this also makes
		// minimization idempotent).
		return q.Clone()
	}
	return qm
}

// pruneExprs deduplicates a class-level edge set by language equivalence
// and removes expressions sandwiched between two other distinct
// expressions (the step-2 redundancy rule: e is redundant when
// L(f_e1) ⊆ L(f_e) ⊆ L(f_e2) for other edges e1, e2 of the same set).
func pruneExprs(exprs []rex.Expr) []rex.Expr {
	// Deduplicate by equivalence.
	var uniq []rex.Expr
	for _, e := range exprs {
		dup := false
		for _, u := range uniq {
			if rex.Equivalent(e, u) {
				dup = true
				break
			}
		}
		if !dup {
			uniq = append(uniq, e)
		}
	}
	// Remove middles.
	var out []rex.Expr
	for i, e := range uniq {
		middle := false
		for j, lo := range uniq {
			if j == i || !rex.Contains(lo, e) {
				continue
			}
			for k, hi := range uniq {
				if k == i || k == j {
					continue
				}
				if rex.Contains(e, hi) {
					middle = true
					break
				}
			}
			if middle {
				break
			}
		}
		if !middle {
			out = append(out, e)
		}
	}
	return out
}

// findRedundantEdge returns the index of an edge e = (u, u') for which
// there are edges e1 = (u1, u1') and e2 = (u2, u2'), both different from
// e, with (u, u1), (u2, u), (u', u1'), (u2', u') in the self-similarity
// and L(f_e1) ⊆ L(f_e) ⊆ L(f_e2); -1 if none.
func findRedundantEdge(q *pattern.Query) int {
	sr := maxSimulation(q, q)
	for ei := 0; ei < q.NumEdges(); ei++ {
		e := q.Edge(ei)
		lower, upper := false, false
		for ej := 0; ej < q.NumEdges() && !(lower && upper); ej++ {
			if ej == ei {
				continue
			}
			o := q.Edge(ej)
			// e1 role: o's endpoints simulate e's (λ can send e to o).
			if !lower && sr[e.From][o.From] && sr[e.To][o.To] && rex.Contains(o.Expr, e.Expr) {
				lower = true
			}
			// e2 role: e's endpoints simulate o's.
			if !upper && sr[o.From][e.From] && sr[o.To][e.To] && rex.Contains(e.Expr, o.Expr) {
				upper = true
			}
		}
		if lower && upper {
			return ei
		}
	}
	return -1
}

// removeEdge returns a copy of q without its i-th edge.
func removeEdge(q *pattern.Query, drop int) *pattern.Query {
	out := pattern.New()
	for i := 0; i < q.NumNodes(); i++ {
		n := q.Node(i)
		out.AddNode(n.Name, n.Pred)
	}
	for ei := 0; ei < q.NumEdges(); ei++ {
		if ei == drop {
			continue
		}
		e := q.Edge(ei)
		out.AddEdge(e.From, e.To, e.Expr)
	}
	return out
}

// dropIsolated removes nodes with no incident edges. If every node is
// isolated the query is returned unchanged (an edgeless query's nodes are
// all it has).
func dropIsolated(q *pattern.Query) *pattern.Query {
	keep := make([]bool, q.NumNodes())
	any := false
	for u := 0; u < q.NumNodes(); u++ {
		if len(q.Out(u)) > 0 || len(q.In(u)) > 0 {
			keep[u] = true
			any = true
		}
	}
	if !any {
		return q
	}
	out := pattern.New()
	remap := make([]int, q.NumNodes())
	for u := 0; u < q.NumNodes(); u++ {
		if keep[u] {
			n := q.Node(u)
			remap[u] = out.AddNode(n.Name, n.Pred)
		}
	}
	for ei := 0; ei < q.NumEdges(); ei++ {
		e := q.Edge(ei)
		out.AddEdge(remap[e.From], remap[e.To], e.Expr)
	}
	return out
}
