package gen

import (
	"fmt"
	"math"
	"math/rand"

	"regraph/internal/dist"
	"regraph/internal/graph"
)

// Synthetic builds the random data graphs of Section 6: |V| nodes, |E|
// edges with colors drawn from the given alphabet, and `attrs` integer
// attributes per node (named a0, a1, ... with values 0..9). Edge endpoints
// are drawn with a mild power-law skew so the graphs have hubs, as
// real-life networks do. Fully deterministic for a given seed.
func Synthetic(seed int64, nodes, edges, attrs int, colors []string) *graph.Graph {
	r := rand.New(rand.NewSource(seed))
	g := graph.New()
	for i := 0; i < nodes; i++ {
		a := make(map[string]string, attrs)
		for k := 0; k < attrs; k++ {
			a[fmt.Sprintf("a%d", k)] = fmt.Sprint(r.Intn(10))
		}
		g.AddNode(fmt.Sprintf("n%d", i), a)
	}
	for i := 0; i < edges; i++ {
		from := skewed(r, nodes)
		to := skewed(r, nodes)
		g.AddEdge(graph.NodeID(from), graph.NodeID(to), colors[r.Intn(len(colors))])
	}
	return g
}

// skewed draws an index in [0, n) with a power-law-ish bias toward small
// indices (the "hub" nodes).
func skewed(r *rand.Rand, n int) int {
	// Square a uniform variate: density ~ 1/(2*sqrt(x)), biasing low ids.
	x := r.Float64()
	i := int(x * x * float64(n))
	if i >= n {
		i = n - 1
	}
	return i
}

// DefaultColors is the 4-color alphabet used by the synthetic experiments.
var DefaultColors = []string{"c0", "c1", "c2", "c3"}

// YouTube builds the YouTube-like video network of Section 6: `scale`
// times the paper's 8,350 nodes and 30,391 edges (scale 1 reproduces the
// paper's size). Nodes are videos with attributes uid (uploader), cat
// (category), len (minutes), com (comment count), age (days since upload)
// and view (view count); edges carry the four relationship types fc
// (friends recommendation), fr (friends reference), sc (strangers
// recommendation) and sr (strangers reference). The paper's crawl is not
// redistributable; this seeded generator preserves the size, alphabet,
// schema and hub-skewed degree structure the algorithms are sensitive to
// (see DESIGN.md).
func YouTube(seed int64, scale float64) *graph.Graph {
	if scale <= 0 {
		scale = 1
	}
	nodes := int(8350 * scale)
	edges := int(30391 * scale)
	r := rand.New(rand.NewSource(seed))
	g := graph.New()
	cats := []string{
		"Music", "Film & Animation", "Comedy", "Sports", "News & Politics",
		"Gaming", "Howto & Style", "Education", "Science & Technology",
		"Entertainment", "People & Blogs", "Travel & Events", "Autos",
		"Pets & Animals", "Nonprofits", "Shows",
	}
	uploaders := make([]string, 400)
	for i := range uploaders {
		uploaders[i] = fmt.Sprintf("user%03d", i)
	}
	uploaders[0] = "Davedays" // the uploader Exp-1's Q1 asks for
	for i := 0; i < nodes; i++ {
		g.AddNode(fmt.Sprintf("video %d", i), map[string]string{
			"uid":  uploaders[skewed(r, len(uploaders))],
			"cat":  cats[skewed(r, len(cats))],
			"len":  fmt.Sprint(1 + r.Intn(15)),
			"com":  fmt.Sprint(r.Intn(1200)),
			"age":  fmt.Sprint(r.Intn(1500)),
			"view": fmt.Sprint(r.Intn(400000)),
		})
	}
	colors := []string{"fc", "fr", "sc", "sr"}
	for i := 0; i < edges; i++ {
		from := skewed(r, nodes)
		to := skewed(r, nodes)
		g.AddEdge(graph.NodeID(from), graph.NodeID(to), colors[r.Intn(len(colors))])
	}
	return g
}

// YouTubeUnbuildable builds the smallest YouTube-shaped graph whose
// distance matrix would NOT fit in budget bytes, returning the graph
// and the scale it corresponds to. This is the bench harness's knob
// for the "matrix unbuildable" regime: instead of claiming a graph is
// too big, the driver derives one from the same byte budget the engine
// heuristic uses, so dist.PredictMatrixBytes(g) > budget holds by
// construction (verified, not assumed).
func YouTubeUnbuildable(seed int64, budget int64) (*graph.Graph, float64) {
	// YouTube has 4 colors, so the matrix is 5 layers of n²·4 bytes:
	// the smallest offending n is √(budget/20)+1.
	n := 1
	for int64(n)*int64(n)*20 <= budget {
		// Direct jump with a linear safety loop on top — float sqrt
		// rounding must never hand back a graph that still fits.
		next := intSqrt(budget/20) + 1
		if next <= n {
			next = n + 1
		}
		n = next
	}
	scale := float64(n) / 8350
	g := YouTube(seed, scale)
	for dist.PredictMatrixBytes(g) <= budget {
		// Scale quantization (nodes = int(8350·scale)) undershot; nudge up.
		scale *= 1.01
		g = YouTube(seed, scale)
	}
	return g, scale
}

func intSqrt(x int64) int {
	if x < 0 {
		return 0
	}
	r := int64(math.Sqrt(float64(x)))
	for r*r > x {
		r--
	}
	for (r+1)*(r+1) <= x {
		r++
	}
	return int(r)
}

// Terror builds the terrorist-organization collaboration network of
// Section 6 (derived in the paper from the Global Terrorism Database):
// 818 organizations and 1,600 collaboration edges, colored ic
// (international) and dc (domestic). Attributes are gn (group name),
// country, tt (target type) and at (attack type). Same substitution
// rationale as YouTube.
func Terror(seed int64) *graph.Graph {
	const nodes, edges = 818, 1600
	r := rand.New(rand.NewSource(seed))
	g := graph.New()
	countries := make([]string, 60)
	for i := range countries {
		countries[i] = fmt.Sprintf("country%02d", i)
	}
	targets := []string{
		"Business", "Military", "Police", "Government",
		"Private Citizens & Property", "Transportation", "Utilities",
		"Religious Figures", "Educational Institution", "Media",
	}
	attacks := []string{
		"Bombing", "Armed Assault", "Assassination", "Hostage Taking",
		"Facility Attack", "Hijacking",
	}
	names := make([]string, nodes)
	for i := range names {
		names[i] = fmt.Sprintf("TO-%03d", i)
	}
	names[0] = "Hamas" // the organization Exp-1's Q2 centers on
	for i := 0; i < nodes; i++ {
		g.AddNode(names[i], map[string]string{
			"gn":      names[i],
			"country": countries[skewed(r, len(countries))],
			"tt":      targets[skewed(r, len(targets))],
			"at":      attacks[skewed(r, len(attacks))],
		})
	}
	colors := []string{"ic", "dc"}
	for i := 0; i < edges; i++ {
		from := skewed(r, nodes)
		to := skewed(r, nodes)
		g.AddEdge(graph.NodeID(from), graph.NodeID(to), colors[r.Intn(2)])
	}
	return g
}
