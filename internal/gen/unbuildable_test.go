package gen

import (
	"testing"

	"regraph/internal/dist"
)

// TestYouTubeUnbuildable: the generated graph's predicted matrix bytes
// must exceed the budget, and the graph must stay close to the minimum
// offending size (no runaway scaling).
func TestYouTubeUnbuildable(t *testing.T) {
	for _, budget := range []int64{1 << 20, 1 << 24, 100 << 20} {
		g, scale := YouTubeUnbuildable(1, budget)
		got := dist.PredictMatrixBytes(g)
		if got <= budget {
			t.Fatalf("budget %d: matrix bytes %d still fit", budget, got)
		}
		if got > budget*2 {
			t.Fatalf("budget %d: overshot to %d bytes (scale %.4f)", budget, got, scale)
		}
		if g.NumColors() != 4 {
			t.Fatalf("expected the 4 YouTube colors, got %d", g.NumColors())
		}
	}
}
