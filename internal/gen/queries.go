package gen

import (
	"fmt"
	"math/rand"
	"sort"

	"regraph/internal/graph"
	"regraph/internal/pattern"
	"regraph/internal/predicate"
	"regraph/internal/reach"
	"regraph/internal/rex"
)

// Spec carries the five parameters of the paper's query generator
// (Section 6, "Query generator"): |Vp| pattern nodes, |Ep| pattern edges,
// |pred| predicates per node, and the bounds b and c such that every edge
// is constrained by a regular expression c1{b} ... ck{b} with 1 <= k <= c.
type Spec struct {
	Nodes  int // |Vp|
	Edges  int // |Ep| (at least Nodes-1 to keep the pattern connected)
	Preds  int // |pred| predicates per pattern node
	Bound  int // b: per-atom occurrence bound
	Colors int // c: maximum number of atoms per edge expression
}

// Query produces a "meaningful" pattern query for the data graph: the
// pattern is anchored on an actual random walk of the graph, so node
// predicates are satisfiable and edge expressions correspond to real
// paths, as the paper's generator arranges. Deterministic for a given
// rand source.
func Query(g *graph.Graph, spec Spec, r *rand.Rand) *pattern.Query {
	if spec.Nodes < 2 {
		spec.Nodes = 2
	}
	if spec.Edges < spec.Nodes-1 {
		spec.Edges = spec.Nodes - 1
	}
	if spec.Bound < 1 {
		spec.Bound = 1
	}
	if spec.Colors < 1 {
		spec.Colors = 1
	}
	q := pattern.New()
	anchors := make([]graph.NodeID, 0, spec.Nodes)

	addPatternNode := func(anchor graph.NodeID) int {
		name := fmt.Sprintf("u%d", q.NumNodes())
		idx := q.AddNode(name, anchorPred(g, anchor, spec.Preds, r))
		anchors = append(anchors, anchor)
		return idx
	}
	// Root anchor: prefer a node with outgoing edges.
	root := randomSource(g, r)
	addPatternNode(root)

	// Grow a tree: each new pattern node is the endpoint of a walk from an
	// existing one; the walk's colors become the edge expression.
	edgesLeft := spec.Edges
	for q.NumNodes() < spec.Nodes && edgesLeft > 0 {
		from := r.Intn(q.NumNodes())
		end, expr, ok := walkExpr(g, anchors[from], spec, r)
		if !ok {
			// Anchor is a sink; fall back to a fresh root with a wildcard
			// edge if anything is reachable, else retry another node.
			end = randomSource(g, r)
			if end == anchors[from] {
				break
			}
			expr = rex.MustNew(rex.Atom{Color: rex.Wildcard, Max: spec.Bound})
		}
		to := addPatternNode(end)
		q.AddEdge(from, to, expr)
		edgesLeft--
	}
	// Extra edges between existing pattern nodes. To keep the anchor
	// assignment a valid simulation witness (so the query stays
	// "meaningful"), an extra edge from u is only added when a walk from
	// u's anchor ends at some other pattern node's anchor; that node
	// becomes the edge target.
	anchorIdx := map[graph.NodeID]int{}
	for i, a := range anchors {
		if _, seen := anchorIdx[a]; !seen {
			anchorIdx[a] = i
		}
	}
	for edgesLeft > 0 && q.NumNodes() >= 2 {
		added := false
		for try := 0; try < 24 && !added; try++ {
			from := r.Intn(q.NumNodes())
			end, expr, ok := walkExpr(g, anchors[from], spec, r)
			if !ok {
				continue
			}
			if to, hit := anchorIdx[end]; hit {
				q.AddEdge(from, to, expr)
				added = true
			}
		}
		if !added {
			// No walk lands on an anchor; duplicate an existing edge's
			// constraint (trivially satisfiable) rather than fabricate an
			// unsatisfiable one.
			ei := r.Intn(q.NumEdges())
			e := q.Edge(ei)
			q.AddEdge(e.From, e.To, e.Expr)
		}
		edgesLeft--
	}
	return q
}

// RQ produces a reachability query whose expression has exactly `colors`
// atoms with bound b, anchored on a walk of the graph (Exp-3's workload).
func RQ(g *graph.Graph, preds, bound, colors int, r *rand.Rand) reach.Query {
	src := randomSource(g, r)
	spec := Spec{Preds: preds, Bound: bound, Colors: colors}
	end, expr, ok := walkExprN(g, src, spec, colors, r)
	if !ok {
		expr = rex.MustNew(rex.Atom{Color: rex.Wildcard, Max: bound})
		end = src
	}
	return reach.New(
		anchorPred(g, src, preds, r),
		anchorPred(g, end, preds, r),
		expr,
	)
}

// anchorPred builds a predicate with up to n equality clauses sampled from
// the anchor node's attributes, so the predicate is satisfiable by
// construction.
func anchorPred(g *graph.Graph, anchor graph.NodeID, n int, r *rand.Rand) predicate.Pred {
	attrs := g.Attrs(anchor)
	if n <= 0 || len(attrs) == 0 {
		return predicate.Pred{}
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	r.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
	if n > len(keys) {
		n = len(keys)
	}
	clauses := make([]predicate.Clause, n)
	for i := 0; i < n; i++ {
		clauses[i] = predicate.Clause{Attr: keys[i], Op: predicate.Eq, Value: attrs[keys[i]]}
	}
	return predicate.New(clauses...)
}

// walkExpr performs a random walk from the anchor with 1..spec.Colors
// color segments and returns the endpoint plus the induced expression
// c1{b} c2{b} ... (consecutive equal colors merged into one atom).
func walkExpr(g *graph.Graph, anchor graph.NodeID, spec Spec, r *rand.Rand) (graph.NodeID, rex.Expr, bool) {
	return walkExprN(g, anchor, spec, 1+r.Intn(spec.Colors), r)
}

func walkExprN(g *graph.Graph, anchor graph.NodeID, spec Spec, segments int, r *rand.Rand) (graph.NodeID, rex.Expr, bool) {
	cur := anchor
	var atoms []rex.Atom
	segCount := 0 // steps taken within the current (last) segment
	for {
		out := g.Out(cur)
		if len(out) == 0 {
			break
		}
		e := out[r.Intn(len(out))]
		color := g.ColorName(e.Color)
		switch {
		case len(atoms) > 0 && atoms[len(atoms)-1].Color == color:
			if segCount >= spec.Bound {
				// The segment's bound is exhausted and the walk would
				// repeat its color; the path would leave L(expr), so stop.
				goto done
			}
			segCount++
		case len(atoms) == segments:
			goto done // would start one segment too many
		default:
			atoms = append(atoms, rex.Atom{Color: color, Max: spec.Bound})
			segCount = 1
		}
		cur = e.To
		// Randomly stop early so endpoints vary (but only once every
		// segment has at least begun or the walk cannot be required to
		// cover all segments anyway).
		if r.Intn(4) == 0 {
			break
		}
	}
done:
	if len(atoms) == 0 {
		return anchor, rex.Expr{}, false
	}
	return cur, rex.MustNew(atoms...), true
}

// randomSource picks a random node, preferring ones with outgoing edges.
func randomSource(g *graph.Graph, r *rand.Rand) graph.NodeID {
	n := g.NumNodes()
	for try := 0; try < 32; try++ {
		v := graph.NodeID(r.Intn(n))
		if len(g.Out(v)) > 0 {
			return v
		}
	}
	return graph.NodeID(r.Intn(n))
}
