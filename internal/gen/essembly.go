// Package gen builds the data graphs used by the paper's examples and
// experiments: the Fig. 1 Essembly network, synthetic random graphs, and
// the two "real-life" datasets of Section 6 (a YouTube-like video network
// and a terrorist-organization collaboration network). The paper's actual
// crawls are not redistributable, so the latter two are seeded synthetic
// graphs with the same node/edge counts, edge-type alphabets and attribute
// schemas; see DESIGN.md ("Substitutions") for why this preserves the
// evaluated behaviour. It also provides the paper's five-parameter query
// generator.
package gen

import "regraph/internal/graph"

// Essembly reconstructs the data graph G of Fig. 1: an Essembly debate
// network about cloning research. Node names follow the paper (B1, B2 are
// doctors against cloning; C1..C3 are biologists supporting cloning; D1 is
// the user "Alice001"; H1 is a physician). Edge colors are the four
// relationship types fa (friends-allies), fn (friends-nemeses), sa
// (strangers-allies) and sn (strangers-nemeses).
//
// The edge set is reconstructed from the worked examples: it reproduces
// exactly the query answers reported for Q1 (Example 2.2) and Q2
// (Example 2.3), including the negative cases the paper calls out (no
// fn-path from C1 to B1; the fa{2}sa{2} path from C1 to D1 that does not
// make C1 a match).
func Essembly() *graph.Graph {
	g := graph.New()
	b1 := g.AddNode("B1", map[string]string{"job": "doctor", "dsp": "cloning"})
	b2 := g.AddNode("B2", map[string]string{"job": "doctor", "dsp": "cloning"})
	c1 := g.AddNode("C1", map[string]string{"job": "biologist", "sp": "cloning"})
	c2 := g.AddNode("C2", map[string]string{"job": "biologist", "sp": "cloning"})
	c3 := g.AddNode("C3", map[string]string{"job": "biologist", "sp": "cloning"})
	d1 := g.AddNode("D1", map[string]string{"uid": "Alice001", "sp": "cloning"})
	h1 := g.AddNode("H1", map[string]string{"job": "physician"})

	// Friends-allies cycle among the biologists.
	g.AddEdge(c1, c2, "fa")
	g.AddEdge(c2, c1, "fa")
	g.AddEdge(c2, c3, "fa")
	g.AddEdge(c3, c1, "fa")
	// C3 is friends-nemeses with both doctors.
	g.AddEdge(c3, b1, "fn")
	g.AddEdge(c3, b2, "fn")
	// The doctors are Alice's friends-nemeses.
	g.AddEdge(b1, d1, "fn")
	g.AddEdge(b2, d1, "fn")
	// The doctors disagree with the supportive biologist C3 as strangers.
	g.AddEdge(b1, c3, "sn")
	g.AddEdge(b2, c3, "sn")
	// C1 agrees with Alice as strangers.
	g.AddEdge(c1, d1, "sa")
	// Peripheral physician.
	g.AddEdge(h1, c1, "sa")
	g.AddEdge(d1, h1, "fa")
	return g
}
