package gen_test

import (
	"math/rand"
	"testing"

	"regraph/internal/dist"
	"regraph/internal/gen"
	"regraph/internal/graph"
	"regraph/internal/pattern"
	"regraph/internal/rex"
)

func TestEssemblyShape(t *testing.T) {
	g := gen.Essembly()
	if g.NumNodes() != 7 {
		t.Errorf("Essembly has %d nodes, want 7", g.NumNodes())
	}
	for _, name := range []string{"B1", "B2", "C1", "C2", "C3", "D1", "H1"} {
		if _, ok := g.NodeByName(name); !ok {
			t.Errorf("missing node %s", name)
		}
	}
	if g.NumColors() != 4 {
		t.Errorf("Essembly has %d colors, want 4 (fa, fn, sa, sn)", g.NumColors())
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	g1 := gen.Synthetic(7, 100, 300, 2, gen.DefaultColors)
	g2 := gen.Synthetic(7, 100, 300, 2, gen.DefaultColors)
	if g1.NumNodes() != 100 || g1.NumEdges() != 300 {
		t.Fatalf("synthetic shape: %d nodes, %d edges", g1.NumNodes(), g1.NumEdges())
	}
	// Same seed, same graph.
	for v := 0; v < g1.NumNodes(); v++ {
		id := graph.NodeID(v)
		if len(g1.Out(id)) != len(g2.Out(id)) {
			t.Fatal("same seed must produce identical graphs")
		}
	}
	g3 := gen.Synthetic(8, 100, 300, 2, gen.DefaultColors)
	same := true
	for v := 0; v < g1.NumNodes() && same; v++ {
		same = len(g1.Out(graph.NodeID(v))) == len(g3.Out(graph.NodeID(v)))
	}
	if same {
		t.Error("different seeds should give different graphs (overwhelmingly)")
	}
}

func TestYouTubeShape(t *testing.T) {
	g := gen.YouTube(1, 0.1)
	if g.NumNodes() != 835 || g.NumEdges() != 3039 {
		t.Errorf("scaled YouTube: %d nodes, %d edges", g.NumNodes(), g.NumEdges())
	}
	if g.NumColors() != 4 {
		t.Errorf("YouTube colors = %v", g.Colors())
	}
	// The uploader Exp-1 queries for must exist.
	found := false
	for v := 0; v < g.NumNodes() && !found; v++ {
		found = g.Attrs(graph.NodeID(v))["uid"] == "Davedays"
	}
	if !found {
		t.Error("no video by Davedays")
	}
}

func TestTerrorShape(t *testing.T) {
	g := gen.Terror(1)
	if g.NumNodes() != 818 || g.NumEdges() != 1600 {
		t.Errorf("Terror: %d nodes, %d edges", g.NumNodes(), g.NumEdges())
	}
	if _, ok := g.NodeByName("Hamas"); !ok {
		t.Error("missing the Hamas anchor node")
	}
}

// TestGeneratedQueriesAreMeaningful: walk-anchored queries must have
// non-empty answers on their source graph (the paper evaluates
// "meaningful" queries only).
func TestGeneratedQueriesAreMeaningful(t *testing.T) {
	g := gen.Synthetic(3, 300, 1200, 3, gen.DefaultColors)
	mx := dist.NewMatrix(g)
	r := rand.New(rand.NewSource(9))
	nonEmpty := 0
	const trials = 20
	for i := 0; i < trials; i++ {
		q := gen.Query(g, gen.Spec{Nodes: 4, Edges: 5, Preds: 2, Bound: 3, Colors: 2}, r)
		if q.NumNodes() < 2 || q.NumEdges() < 1 {
			t.Fatalf("degenerate query: %v", q)
		}
		res := pattern.JoinMatch(g, q, pattern.Options{Matrix: mx})
		if !res.Empty() {
			nonEmpty++
		}
	}
	if nonEmpty < trials*3/4 {
		t.Errorf("only %d/%d generated queries had matches", nonEmpty, trials)
	}
}

// TestGeneratedRQsAreMeaningful: same for reachability queries.
func TestGeneratedRQsAreMeaningful(t *testing.T) {
	g := gen.Synthetic(4, 300, 1200, 3, gen.DefaultColors)
	mx := dist.NewMatrix(g)
	r := rand.New(rand.NewSource(10))
	nonEmpty := 0
	const trials = 20
	for i := 0; i < trials; i++ {
		q := gen.RQ(g, 2, 3, 2, r)
		if len(q.EvalMatrix(g, mx)) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < trials*3/4 {
		t.Errorf("only %d/%d generated RQs had matches", nonEmpty, trials)
	}
}

// TestQuerySpecRespected: the generator must respect the five parameters.
func TestQuerySpecRespected(t *testing.T) {
	g := gen.Synthetic(5, 200, 800, 3, gen.DefaultColors)
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 30; i++ {
		spec := gen.Spec{Nodes: 3 + r.Intn(4), Edges: 4 + r.Intn(5), Preds: 1 + r.Intn(3), Bound: 1 + r.Intn(4), Colors: 1 + r.Intn(3)}
		q := gen.Query(g, spec, r)
		if q.NumNodes() > spec.Nodes {
			t.Errorf("query has %d nodes, spec %d", q.NumNodes(), spec.Nodes)
		}
		maxEdges := spec.Edges
		if spec.Nodes-1 > maxEdges {
			maxEdges = spec.Nodes - 1 // the generator keeps patterns connected
		}
		if q.NumEdges() > maxEdges {
			t.Errorf("query has %d edges, spec allows %d", q.NumEdges(), maxEdges)
		}
		for ei := 0; ei < q.NumEdges(); ei++ {
			expr := q.Edge(ei).Expr
			if expr.Len() > spec.Colors {
				t.Errorf("edge expr %v has %d atoms, spec allows %d", expr, expr.Len(), spec.Colors)
			}
			for _, a := range expr.Atoms() {
				if a.Max != rex.Unbounded && a.Max > spec.Bound {
					t.Errorf("atom %v exceeds bound %d", a, spec.Bound)
				}
			}
		}
		for u := 0; u < q.NumNodes(); u++ {
			if q.Node(u).Pred.Size() > spec.Preds {
				t.Errorf("node %d has %d predicates, spec %d", u, q.Node(u).Pred.Size(), spec.Preds)
			}
		}
	}
}
