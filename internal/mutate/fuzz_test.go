package mutate

import (
	"encoding/json"
	"errors"
	"io"
	"strings"
	"testing"
)

// FuzzDecode throws arbitrary multi-line input at the mutation decoder.
// Invariants: the decoder never panics; every error is either io.EOF, a
// recoverable *LineError (after which Next keeps working), or a
// stream-level failure that is sticky; accepted ops validate and
// round-trip through both their JSON and text renderings.
func FuzzDecode(f *testing.F) {
	f.Add(`{"op":"add_node","node":"alice","attrs":{"job":"doctor"}}`)
	f.Add("add_node bob age=41\nadd_edge alice bob fn\nremove_edge alice bob fn")
	f.Add("# comment\n\nset_attr alice job=surgeon\n{\"id\":7,\"op\":\"add_edge\",\"from\":\"a\",\"to\":\"b\",\"color\":\"c\"}")
	f.Add("{broken\nadd_node ok\nfrobnicate\nadd_edge a b _\n")
	f.Add(`set_attr n status="on leave" k=""`)
	f.Add("{\"op\":\"add_edge\",\"from\":\"a\"}\nadd_node after")
	f.Fuzz(func(t *testing.T, input string) {
		dec := NewDecoder(strings.NewReader(input))
		for i := 0; i < 10000; i++ {
			op, err := dec.Next()
			if err == io.EOF {
				return
			}
			var le *LineError
			if err != nil {
				if errors.As(err, &le) {
					continue // recoverable: keep decoding
				}
				// Stream-level failure must be sticky.
				if _, err2 := dec.Next(); err2 == nil {
					t.Fatalf("stream error %v followed by successful Next", err)
				}
				return
			}
			if op.ID == nil {
				t.Fatalf("accepted op without id: %+v", op)
			}
			if verr := op.Validate(); verr != nil {
				t.Fatalf("decoder returned invalid op %+v: %v", op, verr)
			}
			// JSON round-trip.
			b, merr := json.Marshal(op)
			if merr != nil {
				t.Fatalf("marshal %+v: %v", op, merr)
			}
			var back Op
			if uerr := json.Unmarshal(b, &back); uerr != nil {
				t.Fatalf("unmarshal %s: %v", b, uerr)
			}
			// Text round-trip: rendered line must decode to the same
			// fields (id is ordinal-assigned, so compare the rest).
			line := op.Text()
			d2 := NewDecoder(strings.NewReader(line))
			got, terr := d2.Next()
			if terr != nil {
				t.Fatalf("op %+v rendered %q fails to decode: %v", op, line, terr)
			}
			got.ID, op.ID = nil, nil
			if got.Verb != op.Verb || got.Node != op.Node || got.From != op.From ||
				got.To != op.To || got.Color != op.Color || len(got.Attrs) != len(op.Attrs) {
				t.Fatalf("text round-trip drift: %+v -> %q -> %+v", op, line, got)
			}
			for k, v := range op.Attrs {
				if got.Attrs[k] != v {
					t.Fatalf("text round-trip attr drift at %q: %+v -> %q -> %+v", k, op, line, got)
				}
			}
		}
	})
}
