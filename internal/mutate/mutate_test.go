package mutate

import (
	"bytes"
	"errors"
	"flag"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the mutation-schema golden files")

func u64(v uint64) *uint64 { return &v }

// goldenOps are the canonical mutation request lines: every verb, with
// and without explicit ids. Pinned byte-for-byte by testdata/ops.golden.
func goldenOps() []Op {
	return []Op{
		{Verb: VerbAddNode, Node: "alice", Attrs: map[string]string{"job": "doctor"}},
		{Verb: VerbAddNode, Node: "bob"},
		{ID: u64(7), Verb: VerbSetAttr, Node: "alice", Attrs: map[string]string{"job": "surgeon"}},
		{Verb: VerbAddEdge, From: "alice", To: "bob", Color: "fn"},
		{ID: u64(9), Verb: VerbRemoveEdge, From: "alice", To: "bob", Color: "fn"},
	}
}

// goldenAcks are the canonical response lines: success, per-op failure,
// and the trailing summary. Pinned by testdata/acks.golden.
func goldenAcks() []any {
	return []any{
		Ack{ID: 0, Verb: VerbAddNode, Gen: 3},
		Ack{ID: 1, Verb: VerbAddEdge, Err: `mutate: unknown node "zz"`},
		Summary{Kind: SummaryKind, Gen: 3, Applied: 1, Failed: 1, Nodes: 9, Edges: 12},
		Summary{Kind: SummaryKind, Gen: 0, Err: "mutate: read-only engine"},
	}
}

func goldenCompare(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s: mutation schema drifted.\n got:\n%s\nwant:\n%s", name, got, want)
	}
}

// TestGoldenOps pins the request schema: fixtures encode to the golden
// bytes, and the golden bytes decode back to the fixtures.
func TestGoldenOps(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	for _, o := range goldenOps() {
		if err := enc.Encode(o); err != nil {
			t.Fatal(err)
		}
	}
	goldenCompare(t, "ops.golden", buf.Bytes())

	data, err := os.ReadFile(filepath.Join("testdata", "ops.golden"))
	if err != nil {
		t.Fatal(err)
	}
	dec := NewDecoder(bytes.NewReader(data))
	want := goldenOps()
	// Decoding fills the id-less fixtures with their line ordinals.
	want[0].ID = u64(0)
	want[1].ID = u64(1)
	want[3].ID = u64(3)
	for i := range want {
		got, err := dec.Next()
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want[i]) {
			t.Errorf("op %d: decoded %+v, want %+v", i, got, want[i])
		}
	}
	if _, err := dec.Next(); err != io.EOF {
		t.Fatalf("trailing Next() = %v, want io.EOF", err)
	}
}

// TestGoldenAcks pins the ack and summary schema byte for byte.
func TestGoldenAcks(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	for _, a := range goldenAcks() {
		if err := enc.Encode(a); err != nil {
			t.Fatal(err)
		}
	}
	goldenCompare(t, "acks.golden", buf.Bytes())
}

// TestDecoderMixedForms: JSON lines, text lines, comments and blanks
// interleave in one stream; ordinals count ops, not physical lines.
func TestDecoderMixedForms(t *testing.T) {
	in := strings.Join([]string{
		"# a mutation script",
		`{"op":"add_node","node":"alice","attrs":{"job":"doctor"}}`,
		"",
		"add_node bob age=41",
		`add_edge alice bob fn`,
		"   # indented comment",
		`{"id":99,"op":"remove_edge","from":"alice","to":"bob","color":"fn"}`,
		`set_attr bob status="on leave"`,
	}, "\n")
	dec := NewDecoder(strings.NewReader(in))
	want := []Op{
		{ID: u64(0), Verb: VerbAddNode, Node: "alice", Attrs: map[string]string{"job": "doctor"}},
		{ID: u64(1), Verb: VerbAddNode, Node: "bob", Attrs: map[string]string{"age": "41"}},
		{ID: u64(2), Verb: VerbAddEdge, From: "alice", To: "bob", Color: "fn"},
		{ID: u64(99), Verb: VerbRemoveEdge, From: "alice", To: "bob", Color: "fn"},
		{ID: u64(4), Verb: VerbSetAttr, Node: "bob", Attrs: map[string]string{"status": "on leave"}},
	}
	for i, w := range want {
		got, err := dec.Next()
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		if got.Attrs != nil && len(got.Attrs) == 0 {
			got.Attrs = nil
		}
		if !reflect.DeepEqual(got, w) {
			t.Errorf("op %d: %+v, want %+v", i, got, w)
		}
	}
	if _, err := dec.Next(); err != io.EOF {
		t.Fatalf("trailing Next() = %v, want io.EOF", err)
	}
}

// TestDecoderRecoverableErrors: malformed lines yield *LineError with
// the right line number and an op carrying the assigned ordinal, and the
// stream continues.
func TestDecoderRecoverableErrors(t *testing.T) {
	in := strings.Join([]string{
		`{"op":"add_node","node":"a"}`,                      // line 1, id 0: ok
		`{broken json`,                                      // line 2, id 1: JSON error
		`frobnicate x`,                                      // line 3, id 2: unknown verb
		`{"op":"add_edge","from":"a"}`,                      // line 4, id 3: validation error
		`{"op":"add_edge","from":"a","to":"b","color":"_"}`, // line 5, id 4: wildcard color
		`add_node b`,                                        // line 6, id 5: ok
	}, "\n")
	dec := NewDecoder(strings.NewReader(in))

	op, err := dec.Next()
	if err != nil || *op.ID != 0 {
		t.Fatalf("op 0: %+v, %v", op, err)
	}
	for _, want := range []struct {
		line int
		id   uint64
	}{{2, 1}, {3, 2}, {4, 3}, {5, 4}} {
		op, err := dec.Next()
		var le *LineError
		if !errors.As(err, &le) {
			t.Fatalf("line %d: err = %v, want *LineError", want.line, err)
		}
		if le.Line != want.line {
			t.Errorf("LineError.Line = %d, want %d", le.Line, want.line)
		}
		if op.ID == nil || *op.ID != want.id {
			t.Errorf("failed op id = %v, want %d", op.ID, want.id)
		}
	}
	op, err = dec.Next()
	if err != nil || *op.ID != 5 || op.Node != "b" {
		t.Fatalf("recovery op: %+v, %v", op, err)
	}
	if _, err := dec.Next(); err != io.EOF {
		t.Fatalf("trailing Next() = %v, want io.EOF", err)
	}
}

// TestDecoderOversizedLine: a line past MaxLineBytes is a stream-level
// failure, not a recoverable one (the reader cannot resynchronize).
func TestDecoderOversizedLine(t *testing.T) {
	in := `{"op":"add_node","node":"` + strings.Repeat("x", MaxLineBytes) + `"}`
	dec := NewDecoder(strings.NewReader(in))
	_, err := dec.Next()
	if err == nil || err == io.EOF {
		t.Fatalf("err = %v, want stream error", err)
	}
	var le *LineError
	if errors.As(err, &le) {
		t.Fatalf("oversized line reported as recoverable: %v", err)
	}
}

func TestValidate(t *testing.T) {
	bad := []Op{
		{},
		{Verb: "nope"},
		{Verb: VerbAddNode},
		{Verb: VerbAddNode, Node: "a", From: "b"},
		{Verb: VerbSetAttr, Node: "a"},
		{Verb: VerbSetAttr, Attrs: map[string]string{"k": "v"}},
		{Verb: VerbSetAttr, Node: "a", Attrs: map[string]string{"k": "v"}, Color: "c"},
		{Verb: VerbAddEdge, From: "a", To: "b"},
		{Verb: VerbAddEdge, From: "a", To: "b", Color: "_"},
		{Verb: VerbAddEdge, From: "a", To: "b", Color: "c", Node: "x"},
		{Verb: VerbRemoveEdge, To: "b", Color: "c"},
		{Verb: VerbRemoveEdge, From: "a", To: "b", Color: "c", Attrs: map[string]string{"k": "v"}},
	}
	for _, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", o)
		}
	}
	good := []Op{
		{Verb: VerbAddNode, Node: "a"},
		{Verb: VerbAddNode, Node: "a", Attrs: map[string]string{"k": "v"}},
		{Verb: VerbSetAttr, Node: "a", Attrs: map[string]string{"k": ""}},
		{Verb: VerbAddEdge, From: "a", To: "b", Color: "c"},
		{Verb: VerbRemoveEdge, From: "a", To: "b", Color: "c"},
	}
	for _, o := range good {
		if err := o.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", o, err)
		}
	}
}

// TestOpText: ops render to the text form and decode back identically.
func TestOpText(t *testing.T) {
	for i, o := range goldenOps() {
		line := o.Text()
		dec := NewDecoder(strings.NewReader(line))
		got, err := dec.Next()
		if err != nil {
			t.Fatalf("op %d: text %q: %v", i, line, err)
		}
		want := o
		want.ID = u64(0) // text form carries no id; decoder assigns ordinal
		if got.Attrs != nil && len(got.Attrs) == 0 {
			got.Attrs = nil
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("op %d: %+v -> %q -> %+v", i, o, line, got)
		}
	}
}
